// Reproduces the modeling-flaw discussion of Sec. 5 (Figure 4) on a small
// instance: the CTMC approximation of the FTWC — nondeterministic repair
// decisions replaced by high-rate races — consistently *over*estimates the
// worst-case probability computed on the faithful CTMDP model.
#include <cstdio>
#include <cstdlib>

#include "core/analysis.hpp"
#include "ctmc/transient.hpp"
#include "ftwc/ctmc_variant.hpp"
#include "ftwc/direct.hpp"

using namespace unicon;

int main(int argc, char** argv) {
  unsigned n = 2;
  if (argc > 1) n = static_cast<unsigned>(std::strtoul(argv[1], nullptr, 10));

  ftwc::Parameters params;
  params.n = n;

  auto faithful = ftwc::build_direct(params);
  auto approx = ftwc::build_ctmc_variant(params);
  std::printf("FTWC N=%u: CTMDP route %zu states, CTMC route %zu states (Gamma = %.0f)\n\n", n,
              faithful.uimc.num_states(), approx.ctmc.num_states(), params.decision_rate);

  std::printf("%10s  %16s  %16s  %10s\n", "t (hours)", "CTMDP worst", "CTMC", "CTMC-CTMDP");
  for (double t : {10.0, 50.0, 100.0, 500.0, 1000.0, 5000.0}) {
    UimcAnalysisOptions options;
    options.reachability.epsilon = 1e-6;
    const double worst = analyze_timed_reachability(faithful.uimc, faithful.goal, t, options).value;

    const auto ctmc = timed_reachability(approx.ctmc, approx.goal, t, TransientOptions{1e-6});
    const double approx_p = ctmc.probabilities[approx.ctmc.initial()];

    std::printf("%10.0f  %16.8f  %16.8f  %+10.2e\n", t, worst, approx_p, approx_p - worst);
  }
  std::printf(
      "\nThe CTMC's high-rate decision races admit paths (e.g. extra failures\n"
      "while the 'decision' is pending) that the nondeterministic model\n"
      "resolves instantaneously — hence the overestimation.\n");
  return 0;
}
