// Quickstart: the full "uniformity by construction" pipeline on a small
// hand-built model.
//
// Two redundant servers keep a service alive; each fails after an
// exponential delay (mean 100 h) and takes an exponential repair (mean
// 2 h).  A single technician repairs one server at a time — *which* failed
// server to repair first is a nondeterministic decision.  We ask for the
// worst-case probability that both servers are ever down simultaneously
// within a mission time of t hours.
//
// Pipeline:  LTS components  --elapse-->  uniform IMCs  --parallel/hide-->
//            closed uIMC  --minimize-->  smaller uIMC  --transform-->
//            uCTMDP  --Algorithm 1-->  worst-case probability.
#include <cstdio>

#include "bisim/bisimulation.hpp"
#include "core/analysis.hpp"
#include "core/time_constraint.hpp"
#include "imc/compose.hpp"
#include "lts/lts.hpp"

using namespace unicon;

namespace {

/// A server: up --fail--> down --grab_i--> repairing --repair--> up.
Lts server_lts(const std::shared_ptr<ActionTable>& actions, const std::string& id) {
  LtsBuilder b(actions);
  const StateId up = b.add_state("up");
  const StateId down = b.add_state("down");
  const StateId repairing = b.add_state("down");  // still down while repaired
  b.set_initial(up);
  b.add_transition(up, "fail", down);
  b.add_transition(down, "grab_" + id, repairing);
  b.add_transition(repairing, "repair_done_" + id, up);
  return b.build();
}

Imc server_imc(const std::shared_ptr<ActionTable>& actions, const std::string& id) {
  const Lts lts = server_lts(actions, id);
  std::vector<TimeConstraint> constraints;
  // Failure delay runs from the start and re-arms when the repair is done.
  constraints.emplace_back(PhaseType::exponential(1.0 / 100.0), "fail", "repair_done_" + id,
                           /*running=*/true);
  // Repair delay starts when the technician picks the server up.
  constraints.emplace_back(PhaseType::exponential(0.5), "repair_done_" + id, "grab_" + id);
  ExploreOptions options;
  options.record_names = true;
  Imc composed = apply_time_constraints(lts, constraints, options);
  return composed.hide({actions->intern("fail")});
}

}  // namespace

int main() {
  auto actions = std::make_shared<ActionTable>();

  // 1. Components: two servers (uniform IMCs by construction) and the
  //    technician, who serves one grab/done cycle at a time.
  Imc server_a = server_imc(actions, "a");
  Imc server_b = server_imc(actions, "b");

  LtsBuilder tech_builder(actions);
  const StateId idle = tech_builder.add_state("idle");
  const StateId busy_a = tech_builder.add_state("busy_a");
  const StateId busy_b = tech_builder.add_state("busy_b");
  tech_builder.set_initial(idle);
  tech_builder.add_transition(idle, "grab_a", busy_a);
  tech_builder.add_transition(busy_a, "repair_done_a", idle);
  tech_builder.add_transition(idle, "grab_b", busy_b);
  tech_builder.add_transition(busy_b, "repair_done_b", idle);
  Imc technician = imc_from_lts(tech_builder.build());

  std::printf("server IMC: %zu states, uniform (open view): %s\n", server_a.num_states(),
              server_a.is_uniform() ? "yes" : "no");

  // 2. Composition: servers interleaved, synchronized with the technician.
  std::unordered_set<Action> sync;
  for (const char* a : {"grab_a", "grab_b", "repair_done_a", "repair_done_b"}) {
    sync.insert(actions->intern(a));
  }
  CompositionExpr expr = CompositionExpr::parallel(
      CompositionExpr::interleave(CompositionExpr::leaf(server_a), CompositionExpr::leaf(server_b)),
      std::move(sync), CompositionExpr::leaf(technician));

  ExploreOptions explore;
  explore.record_names = true;
  explore.urgent = true;  // complete system: urgency applies
  Imc system = expr.explore(explore);
  std::printf("composed system: %zu states, %zu interactive + %zu Markov transitions\n",
              system.num_states(), system.num_interactive_transitions(),
              system.num_markov_transitions());
  std::printf("uniform by construction (closed view): %s, rate E = %.4f\n",
              system.is_uniform(UniformityView::Closed, 1e-6) ? "yes" : "no",
              *system.uniform_rate(UniformityView::Closed, 1e-6));

  // 3. The property: both servers down simultaneously.  Component state
  //    names were chosen so the composite names expose the status.
  std::vector<bool> goal(system.num_states());
  for (StateId s = 0; s < system.num_states(); ++s) {
    const std::string& name = system.state_name(s);
    // Name layout: (serverA..., serverB..., technician); each server
    // contributes "up"/"down" plus its two timer states.
    std::size_t downs = 0;
    for (std::size_t pos = name.find("down"); pos != std::string::npos;
         pos = name.find("down", pos + 1)) {
      ++downs;
    }
    goal[s] = downs >= 2;
  }

  // 4. Transform to a uCTMDP and run the timed reachability algorithm.
  for (double t : {24.0, 72.0, 168.0, 720.0}) {
    UimcAnalysisOptions options;
    options.reachability.epsilon = 1e-6;
    const UimcAnalysisResult worst = analyze_timed_reachability(system, goal, t, options);
    options.reachability.objective = Objective::Minimize;
    const UimcAnalysisResult best = analyze_timed_reachability(system, goal, t, options);
    std::printf(
        "t = %6.0f h: worst-case P(outage) = %.6f   best-case = %.6f   "
        "(CTMDP: %zu states, %zu transitions, k = %llu iterations)\n",
        t, worst.value, best.value, worst.transformed.ctmdp.num_states(),
        worst.transformed.ctmdp.num_transitions(),
        static_cast<unsigned long long>(worst.reachability.iterations_planned));
  }

  // 5. Minimization (stochastic branching bisimulation, Def. 6) respecting
  //    the goal predicate gives the same answer on a smaller model.
  std::vector<std::uint32_t> labels(system.num_states());
  for (StateId s = 0; s < system.num_states(); ++s) labels[s] = goal[s] ? 1 : 0;
  const Imc hidden = system.hide_all();
  const Partition partition = branching_bisimulation(hidden, &labels);
  const Imc minimized = quotient(hidden, partition);
  std::vector<bool> minimized_goal(minimized.num_states());
  for (StateId s = 0; s < system.num_states(); ++s) {
    if (goal[s]) minimized_goal[partition.block_of[s]] = true;
  }
  const double t = 168.0;
  const double original = analyze_timed_reachability(system, goal, t).value;
  const double reduced = analyze_timed_reachability(minimized, minimized_goal, t).value;
  std::printf(
      "\nminimized (goal-respecting stochastic branching bisimulation): "
      "%zu -> %zu states, P at t=%.0fh: %.8f vs %.8f\n",
      system.num_states(), minimized.num_states(), t, original, reduced);
  return 0;
}
