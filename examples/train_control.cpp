// A train-control safety study, echoing the paper's motivation: its
// authors used the same machinery to verify STATEMATE train-control models
// against properties like "the probability to hit a safety-critical
// configuration within a mission time of 3 hours is at most 0.01".
//
// The system: trains pass a level crossing.  A sensor announces each
// approach so the gate closes in time; both sensor and gate can fail and a
// single maintenance crew repairs one of them at a time — *which* one first
// is a nondeterministic decision.  A passage while the sensor or the gate
// is broken is safety-critical.
//
// The example also demonstrates the CSL-style query layer on the
// transformed CTMDP.
#include <cstdio>
#include <string>

#include "core/analysis.hpp"
#include "core/time_constraint.hpp"
#include "imc/compose.hpp"
#include "lts/lts.hpp"
#include "props/property.hpp"

using namespace unicon;

namespace {

/// Trains: away --approach--> crossing --pass--> away.
Lts train_lts(const std::shared_ptr<ActionTable>& actions) {
  LtsBuilder b(actions);
  const StateId away = b.add_state("away");
  const StateId crossing = b.add_state("crossing");
  b.set_initial(away);
  b.add_transition(away, "approach", crossing);
  b.add_transition(crossing, "pass", away);
  return b.build();
}

/// A repairable unit (sensor / gate): ok --fail_u--> broken --grab_u-->
/// fixing --fixed_u--> ok.
Lts unit_lts(const std::shared_ptr<ActionTable>& actions, const std::string& u) {
  LtsBuilder b(actions);
  const StateId ok = b.add_state("ok");
  const StateId broken = b.add_state("broken_" + u);
  const StateId fixing = b.add_state("broken_" + u);
  b.set_initial(ok);
  b.add_transition(ok, "fail_" + u, broken);
  b.add_transition(broken, "grab_" + u, fixing);
  b.add_transition(fixing, "fixed_" + u, ok);
  return b.build();
}

Imc unit_imc(const std::shared_ptr<ActionTable>& actions, const std::string& u,
             double fail_rate, double repair_rate) {
  std::vector<TimeConstraint> constraints;
  constraints.emplace_back(PhaseType::exponential(fail_rate), "fail_" + u, "fixed_" + u,
                           /*running=*/true);
  constraints.emplace_back(PhaseType::exponential(repair_rate), "fixed_" + u, "grab_" + u);
  ExploreOptions options;
  options.record_names = true;
  Imc composed = apply_time_constraints(unit_lts(actions, u), constraints, options);
  return composed.hide({actions->intern("fail_" + u)});
}

}  // namespace

int main() {
  auto actions = std::make_shared<ActionTable>();

  // Trains arrive every 2 h on average; a passage takes ~3 min.
  std::vector<TimeConstraint> train_timing;
  train_timing.emplace_back(PhaseType::exponential(0.5), "approach", "pass", /*running=*/true);
  train_timing.emplace_back(PhaseType::exponential(20.0), "pass", "approach");
  ExploreOptions comp_options;
  comp_options.record_names = true;
  const Imc trains = apply_time_constraints(train_lts(actions), train_timing, comp_options);

  // Two redundant sensors (MTTF 50 h, repair 1 h) and the gate (MTTF
  // 100 h, repair 2 h).  The crew queue is what makes the dispatch a real
  // decision: while one unit is under repair others may break, and on
  // release the crew must pick.
  const Imc sensor1 = unit_imc(actions, "sen1", 1.0 / 50.0, 1.0);
  const Imc sensor2 = unit_imc(actions, "sen2", 1.0 / 50.0, 1.0);
  const Imc gate = unit_imc(actions, "gate", 1.0 / 100.0, 0.5);

  // One maintenance crew, nondeterministic dispatch.
  LtsBuilder crew_builder(actions);
  const StateId idle = crew_builder.add_state("idle");
  crew_builder.set_initial(idle);
  for (const char* u : {"sen1", "sen2", "gate"}) {
    const StateId at = crew_builder.add_state(std::string("at_") + u);
    crew_builder.add_transition(idle, std::string("grab_") + u, at);
    crew_builder.add_transition(at, std::string("fixed_") + u, idle);
  }
  const Imc crew = imc_from_lts(crew_builder.build());

  std::unordered_set<Action> crew_sync;
  for (const char* u : {"sen1", "sen2", "gate"}) {
    crew_sync.insert(actions->intern(std::string("grab_") + u));
    crew_sync.insert(actions->intern(std::string("fixed_") + u));
  }
  CompositionExpr expr = CompositionExpr::parallel(
      CompositionExpr::interleave(
          CompositionExpr::interleave(
              CompositionExpr::interleave(CompositionExpr::leaf(trains),
                                          CompositionExpr::leaf(sensor1)),
              CompositionExpr::leaf(sensor2)),
          CompositionExpr::leaf(gate)),
      std::move(crew_sync), CompositionExpr::leaf(crew));

  ExploreOptions explore;
  explore.record_names = true;
  explore.urgent = true;
  const Imc system = expr.explore(explore);
  std::printf("train-control system: %zu states, uniform rate E = %.4f (by construction)\n",
              system.num_states(), *system.uniform_rate(UniformityView::Closed, 1e-6));

  // Safety-critical: a train on the crossing while the gate is broken or
  // both (redundant) sensors are down.
  BitVector unsafe(system.num_states());
  for (StateId s = 0; s < system.num_states(); ++s) {
    const std::string& name = system.state_name(s);
    const bool crossing = name.find("crossing") != std::string::npos;
    const bool gate_broken = name.find("broken_gate") != std::string::npos;
    const bool sensors_down = name.find("broken_sen1") != std::string::npos &&
                              name.find("broken_sen2") != std::string::npos;
    unsafe[s] = crossing && (gate_broken || sensors_down);
  }

  const auto transformed = transform_to_ctmdp(system, &unsafe);
  std::printf("uCTMDP: %zu states, %zu transitions\n\n", transformed.ctmdp.num_states(),
              transformed.ctmdp.num_transitions());

  // Query layer on the transformed model.
  LabelSet labels(transformed.ctmdp.num_states());
  labels.define("unsafe", transformed.goal.to_vector_bool());

  std::printf("%-44s %14s\n", "query", "value");
  for (const char* query :
       {"Pmax=? [ F<=3 unsafe ]", "Pmin=? [ F<=3 unsafe ]", "Pmax=? [ F<=24 unsafe ]",
        "Pmax=? [ F<=168 unsafe ]", "Pmin=? [ F<=168 unsafe ]", "Tmax=? [ F unsafe ]",
        "Tmin=? [ F unsafe ]"}) {
    const QueryResult r = check(transformed.ctmdp, labels, query);
    std::printf("%-44s %14.8f\n", query, r.value);
  }

  const double mission = check(transformed.ctmdp, labels, "Pmax=? [ F<=3 unsafe ]").value;
  std::printf("\nsafety requirement \"P(hit safety-critical within 3 h) <= 0.01\": %s\n",
              mission <= 0.01 ? "SATISFIED (worst case)" : "VIOLATED");
  return 0;
}
