// A job shop with Erlang service times and a nondeterministic scheduler.
//
// One machine, four pending jobs: two *light* jobs (service time
// Erlang(2, 8.0), mean 0.25) and two *heavy* jobs (Erlang(4, 2.0),
// mean 2.0).  Whenever the machine is free the scheduler picks the class of
// the next job — a genuine nondeterministic decision.  We compute the best-
// and worst-case probability that BOTH LIGHT JOBS are finished within t:
// a light-first policy maximizes it, a heavy-first policy minimizes it.
//
// The example exercises multi-phase (non-exponential) time constraints via
// the elapse operator: the composed system is uniform by construction even
// though the service times are far from memoryless.
#include <cstdio>
#include <string>

#include "core/analysis.hpp"
#include "core/time_constraint.hpp"
#include "imc/compose.hpp"
#include "lts/lts.hpp"

using namespace unicon;

namespace {

constexpr unsigned kLight = 2;
constexpr unsigned kHeavy = 2;

/// Machine: free --start_light--> busy --done_light--> free, same for heavy.
Lts machine_lts(const std::shared_ptr<ActionTable>& actions) {
  LtsBuilder b(actions);
  const StateId free_state = b.add_state("free");
  const StateId busy_light = b.add_state("busy_light");
  const StateId busy_heavy = b.add_state("busy_heavy");
  b.set_initial(free_state);
  b.add_transition(free_state, "start_light", busy_light);
  b.add_transition(busy_light, "done_light", free_state);
  b.add_transition(free_state, "start_heavy", busy_heavy);
  b.add_transition(busy_heavy, "done_heavy", free_state);
  return b.build();
}

/// Job pool: tracks pending starts per class and completed light jobs.
Lts pool_lts(const std::shared_ptr<ActionTable>& actions) {
  LtsBuilder b(actions);
  // State (lp, hp, ld): light/heavy pending, light done.
  std::vector<StateId> ids((kLight + 1) * (kHeavy + 1) * (kLight + 1), kNoState);
  auto idx = [](unsigned lp, unsigned hp, unsigned ld) {
    return (lp * (kHeavy + 1) + hp) * (kLight + 1) + ld;
  };
  for (unsigned lp = 0; lp <= kLight; ++lp) {
    for (unsigned hp = 0; hp <= kHeavy; ++hp) {
      for (unsigned ld = 0; ld + lp <= kLight; ++ld) {
        ids[idx(lp, hp, ld)] =
            b.add_state(ld == kLight ? "lights_done" : "lp" + std::to_string(lp));
      }
    }
  }
  b.set_initial(ids[idx(kLight, kHeavy, 0)]);
  for (unsigned lp = 0; lp <= kLight; ++lp) {
    for (unsigned hp = 0; hp <= kHeavy; ++hp) {
      for (unsigned ld = 0; ld + lp <= kLight; ++ld) {
        const StateId from = ids[idx(lp, hp, ld)];
        if (lp > 0) b.add_transition(from, "start_light", ids[idx(lp - 1, hp, ld)]);
        if (hp > 0) b.add_transition(from, "start_heavy", ids[idx(lp, hp - 1, ld)]);
        if (ld + lp < kLight) b.add_transition(from, "done_light", ids[idx(lp, hp, ld + 1)]);
        b.add_transition(from, "done_heavy", from);  // heavy completions just free the machine
      }
    }
  }
  return b.build();
}

}  // namespace

int main() {
  auto actions = std::make_shared<ActionTable>();

  const Lts machine = machine_lts(actions);
  std::vector<TimeConstraint> constraints;
  constraints.emplace_back(PhaseType::erlang(2, 8.0), "done_light", "start_light");
  constraints.emplace_back(PhaseType::erlang(4, 2.0), "done_heavy", "start_heavy");
  ExploreOptions opts;
  opts.record_names = true;
  const Imc machine_imc = apply_time_constraints(machine, constraints, opts);

  std::unordered_set<Action> sync;
  for (const char* a : {"start_light", "start_heavy", "done_light", "done_heavy"}) {
    sync.insert(actions->intern(a));
  }
  CompositionExpr expr =
      CompositionExpr::parallel(CompositionExpr::leaf(machine_imc), std::move(sync),
                                CompositionExpr::leaf(imc_from_lts(pool_lts(actions))));

  ExploreOptions explore;
  explore.record_names = true;
  explore.urgent = true;  // closed system
  const Imc system = expr.explore(explore);
  std::printf(
      "job shop: %zu states, uniform rate E = %.3f "
      "(light Erlang(2,8), heavy Erlang(4,2), %u + %u jobs)\n",
      system.num_states(), *system.uniform_rate(UniformityView::Closed, 1e-6), kLight, kHeavy);

  std::vector<bool> goal(system.num_states());
  for (StateId s = 0; s < system.num_states(); ++s) {
    goal[s] = system.state_name(s).find("lights_done") != std::string::npos;
  }

  std::printf("\n%8s  %22s  %22s\n", "t", "best (light first)", "worst (heavy first)");
  for (double t : {0.5, 1.0, 2.0, 3.0, 4.0, 6.0}) {
    UimcAnalysisOptions options;
    options.reachability.epsilon = 1e-8;
    const double best = analyze_timed_reachability(system, goal, t, options).value;
    options.reachability.objective = Objective::Minimize;
    const double worst = analyze_timed_reachability(system, goal, t, options).value;
    std::printf("%8.1f  %22.8f  %22.8f\n", t, best, worst);
  }
  std::printf(
      "\nsup/inf over all time-abstract schedulers of P(both light jobs done\n"
      "within t); the gap is the price of serving heavy jobs first.\n");
  return 0;
}
