// FTWC worst-case analysis (the paper's Sec. 5 study as a CLI).
//
// Usage: ftwc_analysis [N] [t_hours] [direct|compositional]
//
// Builds the fault-tolerant workstation cluster with N workstations per
// sub-cluster, transforms the uniform IMC into a uniform CTMDP and computes
// the worst-case probability that premium service is not guaranteed within
// t hours, together with the optimal repair policy's first decisions.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "core/analysis.hpp"
#include "ftwc/compositional.hpp"
#include "ftwc/direct.hpp"

using namespace unicon;

int main(int argc, char** argv) {
  unsigned n = 4;
  double t = 100.0;
  bool compositional = false;
  if (argc > 1) n = static_cast<unsigned>(std::strtoul(argv[1], nullptr, 10));
  if (argc > 2) t = std::strtod(argv[2], nullptr);
  if (argc > 3) compositional = std::strcmp(argv[3], "compositional") == 0;

  ftwc::Parameters params;
  params.n = n;

  Imc model;
  BitVector goal;
  double rate = 0.0;
  if (compositional) {
    std::printf("building FTWC N=%u compositionally (elapse + parallel + minimize)...\n", n);
    const auto built = ftwc::build_compositional(params);
    for (const auto& stage : built.stages) {
      std::printf("  stage %-16s: %zu states (pre-minimization: %zu)\n", stage.stage.c_str(),
                  stage.states, stage.states_before_minimization);
    }
    model = built.uimc;
    goal = built.goal;
    rate = built.uniform_rate;
  } else {
    std::printf("building FTWC N=%u by direct state-space generation...\n", n);
    auto built = ftwc::build_direct(params);
    model = std::move(built.uimc);
    goal = std::move(built.goal);
    rate = built.uniform_rate;
  }

  std::printf("closed uIMC: %zu states, %zu interactive + %zu Markov transitions, E = %.6f\n",
              model.num_states(), model.num_interactive_transitions(),
              model.num_markov_transitions(), rate);

  UimcAnalysisOptions options;
  options.reachability.epsilon = 1e-6;
  options.reachability.extract_scheduler = true;
  const UimcAnalysisResult result = analyze_timed_reachability(model, goal, t, options);

  std::printf("uCTMDP: %zu states, %zu transitions (%.2f MB), transformed in %.2f s\n",
              result.transform.interactive_states, result.transform.interactive_transitions,
              static_cast<double>(result.transform.memory_bytes) / (1024.0 * 1024.0),
              result.transform.seconds);
  std::printf("Algorithm 1: k = %llu iterations at epsilon 1e-6\n",
              static_cast<unsigned long long>(result.reachability.iterations_planned));
  std::printf("\nworst-case P(premium service lost within %.0f h) = %.8f\n", t, result.value);

  // Show a few optimal first decisions: what should the repair unit grab?
  std::printf("\noptimal first decisions (sample):\n");
  const Ctmdp& ctmdp = result.transformed.ctmdp;
  int shown = 0;
  for (StateId s = 0; s < ctmdp.num_states() && shown < 8; ++s) {
    if (ctmdp.num_transitions_of(s) < 2) continue;  // no real decision
    const std::uint64_t choice = result.reachability.initial_decision[s];
    if (choice == kNoTransition) continue;
    std::printf("  ctmdp state %-6u: take '%s'\n", s,
                ctmdp.words().str(ctmdp.label(choice), ctmdp.actions()).c_str());
    ++shown;
  }
  return 0;
}
