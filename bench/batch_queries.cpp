// Multi-horizon batch solves vs. repeated single-t runs (DESIGN.md Sec. 11).
//
// Cost model (and why the workload shape matters): the bitwise-equivalence
// contract pins every horizon's per-state arithmetic to its single-t run's,
// so a CTMDP batch executes exactly sum_j k_j sweeps — horizon j's sweeps
// are only the last k_j of the global countdown.  What the batch amortizes
// is everything *around* the sweeps: kernel construction, vector setup, and
// the per-block kernel stream shared by all active horizons.  The ratio
// batch / largest-single is therefore ~ (sum_j k_j) / k_max, and a horizon
// with bound t_j costs its full Poisson window k_j ~ e*t_j + c*sqrt(e*t_j)
// even when t_j is tiny (the sqrt window-width floor).
//
// The acceptance target of the analysis-server work: a *clustered* batch of
// 16 bounds — 15 short probe queries riding along with one t=400 solve, the
// server's coalescing shape — on the FTWC N=64 row costs <= 1.3x the single
// largest-t run, for the serial and the SIMD backend.  That holds exactly
// when the probes' summed windows stay below 0.3 * k_max, which is the
// regime coalescing targets: cheap probes of a hot model drafting behind an
// expensive solve.
//
// A *geometric* ladder (bounds spread multiplicatively up to the same
// largest t) is reported as well, honestly: its mid-sized bounds are active
// for a large share of the steps, so its ratio is workload-dependent and
// NOT covered by the 1.3x target — the 16 separate solves it replaces are
// the real baseline there (see sum16).
//
// Records land in BENCH_batch.json (override with BENCH_JSON):
//   {"bench": "batch_queries/<model>/<workload>/<backend>",
//    "states": ..., "bounds": 16, "k_max": ..., "seconds": ...,
//    "single_seconds": ..., "ratio": ..., "sum_single_seconds": ...}
#include <cmath>
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/analysis.hpp"
#include "ctmc/transient.hpp"
#include "ftwc/ctmc_variant.hpp"
#include "ftwc/direct.hpp"
#include "support/telemetry.hpp"

using namespace unicon;

namespace {

constexpr double kLargestBound = 400.0;

std::vector<double> clustered_bounds() {
  // 15 short probes (the server's common case: many small-t queries of a
  // hot model) plus the expensive t=400 solve they coalesce with.  At the
  // FTWC N=64 uniform rate the probes' Poisson windows sum to well under
  // 0.3x the big bound's k, which is the regime the 1.3x target covers
  // (see the cost model in the header comment).
  std::vector<double> bounds;
  for (int i = 1; i <= 15; ++i) bounds.push_back(0.05 * i);  // 0.05 .. 0.75
  bounds.push_back(kLargestBound);
  return bounds;
}

std::vector<double> geometric_bounds() {
  // 16 bounds, multiplicative ladder from 1 to the same largest t.
  std::vector<double> bounds;
  for (int i = 0; i < 16; ++i) {
    bounds.push_back(std::pow(kLargestBound, static_cast<double>(i) / 15.0));
  }
  return bounds;
}

struct Comparison {
  double batch_s = 0.0;
  double largest_single_s = 0.0;
  double sum_single_s = 0.0;
  std::uint64_t k_max = 0;
  std::uint64_t k_sum = 0;
};

/// One timed run of @p fn, folded into the running minimum @p best.  The
/// minimum is the noise-robust estimator: scheduler jitter, steal time and
/// frequency excursions only ever add time, so the smallest observation is
/// the closest to the true cost.  Callers alternate the two sides under
/// comparison inside one rep loop so slow machine phases hit both sides
/// rather than biasing whichever happened to run first — one-shot timings
/// on a shared box swing far more than the 1.3x margin this harness gates
/// on.
template <typename Fn>
void fold_min(double& best, Fn&& fn) {
  Stopwatch timer;
  fn();
  const double s = timer.seconds();
  if (best == 0.0 || s < best) best = s;
}

}  // namespace

int main() {
  telemetry::BenchJson json("BENCH_batch.json", "BENCH_JSON");
  const unsigned n = 64;

  std::printf("Batch multi-horizon solves vs single-t runs (FTWC N=%u)\n\n", n);

  ftwc::Parameters params;
  params.n = n;
  const auto built = ftwc::build_direct(params);
  const auto transformed = transform_to_ctmdp(built.uimc, &built.goal);
  const Ctmdp& model = transformed.ctmdp;
  const BitVector& goal = transformed.goal;
  std::printf("CTMDP: %zu states, %zu transitions\n\n", model.num_states(),
              model.num_transitions());

  const struct {
    const char* name;
    Backend backend;
  } backends[] = {{"serial", Backend::Serial}, {"simd", Backend::Simd}};
  const struct {
    const char* name;
    std::vector<double> bounds;
    bool target;  ///< covered by the 1.3x acceptance target
  } workloads[] = {{"clustered", clustered_bounds(), true},
                   {"geometric", geometric_bounds(), false}};

  std::printf("%-10s %-10s %10s %12s %12s %10s %8s %12s\n", "workload", "backend", "batch(s)",
              "largest1(s)", "ratio", "ksum/kmax", "target", "sum16(s)");

  bool target_met = true;
  for (const auto& workload : workloads) {
    // The largest bound dominates; find it for the single-solve baseline.
    double t_max = 0.0;
    for (const double t : workload.bounds) t_max = t > t_max ? t : t_max;

    for (const auto& backend : backends) {
      TimedReachabilityOptions options;
      options.epsilon = 1e-6;
      options.threads = 1;
      options.backend = backend.backend;

      Comparison c;
      // The target workload is measured min-of-5 with batch and single
      // interleaved per rep; the informational ones once (the geometric
      // ladder's serial leg alone runs for seconds).
      const int reps = workload.target ? 5 : 1;
      for (int r = 0; r < reps; ++r) {
        fold_min(c.batch_s, [&] {
          const auto results = timed_reachability_batch(model, goal, workload.bounds, options);
          c.k_sum = 0;
          for (const auto& res : results) {
            c.k_max = res.iterations_planned > c.k_max ? res.iterations_planned : c.k_max;
            c.k_sum += res.iterations_planned;
          }
        });
        fold_min(c.largest_single_s,
                 [&] { (void)timed_reachability(model, goal, t_max, options); });
      }
      for (const double t : workload.bounds) {
        Stopwatch timer;
        (void)timed_reachability(model, goal, t, options);
        c.sum_single_s += timer.seconds();
      }

      const double ratio = c.largest_single_s > 0.0 ? c.batch_s / c.largest_single_s : 0.0;
      // Sweep-count ratio: the cost model's prediction for the wall-clock
      // ratio (see header).  A measured ratio far above it means harness or
      // machine trouble, not batching overhead.
      const double k_ratio =
          c.k_max > 0 ? static_cast<double>(c.k_sum) / static_cast<double>(c.k_max) : 0.0;
      const bool ok = !workload.target || ratio <= 1.3;
      if (!ok) target_met = false;
      std::printf("%-10s %-10s %10.3f %12.3f %12.2fx %10.2f %8s %12.3f\n", workload.name,
                  backend.name, c.batch_s, c.largest_single_s, ratio, k_ratio,
                  workload.target ? (ok ? "<=1.3 ok" : "MISSED") : "-", c.sum_single_s);
      std::fflush(stdout);

      telemetry::BenchRecord rec;
      rec.bench = std::string("batch_queries/ftwc_n64/") + workload.name + "/" + backend.name;
      rec.add("states", model.num_states())
          .add("bounds", workload.bounds.size())
          .add("k_max", c.k_max)
          .add("k_sum", c.k_sum)
          .add("seconds", c.batch_s)
          .add("single_seconds", c.largest_single_s)
          .add("ratio", ratio)
          .add("sum_single_seconds", c.sum_single_s);
      json.record(std::move(rec));
    }
  }

  // CTMC side: the shared-sweep batch (one set of step vectors, one
  // accumulator per horizon) on the FTWC CTMC approximation.
  {
    const auto approx = ftwc::build_ctmc_variant(ftwc::Parameters{.n = 8});
    const std::vector<double> bounds = clustered_bounds();
    double t_max = 0.0;
    for (const double t : bounds) t_max = t > t_max ? t : t_max;

    TransientOptions options;
    options.epsilon = 1e-6;
    options.threads = 1;
    options.early_termination = true;
    options.early_termination_delta = 1e-10;

    Stopwatch batch_timer;
    const auto results = timed_reachability_batch(approx.ctmc, approx.goal, bounds, options);
    const double batch_s = batch_timer.seconds();
    std::uint64_t k_max = 0;
    for (const auto& r : results) k_max = r.iterations > k_max ? r.iterations : k_max;

    Stopwatch single_timer;
    (void)timed_reachability(approx.ctmc, approx.goal, t_max, options);
    const double single_s = single_timer.seconds();
    const double ratio = single_s > 0.0 ? batch_s / single_s : 0.0;

    std::printf("%-10s %-10s %10.3f %12.3f %12.2fx %10s %8s %12s\n", "ctmc_n8", "serial",
                batch_s, single_s, ratio, "-", "-", "-");

    telemetry::BenchRecord rec;
    rec.bench = "batch_queries/ftwc_ctmc_n8/clustered/serial";
    rec.add("states", approx.ctmc.num_states())
        .add("bounds", bounds.size())
        .add("k_max", k_max)
        .add("seconds", batch_s)
        .add("single_seconds", single_s)
        .add("ratio", ratio);
    json.record(std::move(rec));
  }

  std::printf("\n%s\n", target_met
                            ? "Acceptance target met: clustered batch-16 <= 1.3x the largest "
                              "single-t run on both backends."
                            : "ACCEPTANCE TARGET MISSED — see ratios above.");
  return target_met ? 0 : 1;
}
