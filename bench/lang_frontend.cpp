// Language frontend cost on the FTWC family: parse, semantic-check and
// build (composition + exploration) seconds versus explored state count.
//
// The harness synthesizes the ftwc.uni model text in memory for a growing
// total number of workstations W (split across the two sub-clusters) and
// times each frontend stage separately.  Unlike the programmatic
// build_compositional, the language build explores the full product
// without intermediate minimization, so the state count grows quickly;
// the default sweep stops at W = 5 and FTWC_FULL=1 extends it to the
// paper-family W = 8 (multi-million-state exploration).  Results land in
// BENCH_lang.json:
//   [{"bench": "lang_frontend/W=3", "states": ..., "parse_seconds": ...,
//     "check_seconds": ..., "build_seconds": ...}, ...]
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "lang/build.hpp"
#include "lang/parser.hpp"
#include "lang/sema.hpp"
#include "support/errors.hpp"
#include "support/telemetry.hpp"

using namespace unicon;

namespace {

void append_unit(std::string& out, const std::string& name, const std::string& cls) {
  out += "component " + name + " {\n";
  out += "  states o, d, ir, rp;\n  initial o;\n";
  out += "  label " + name + "_up: o, rp;\n";
  out += "  fail: o -> d;\n";
  out += "  g_" + cls + ": d -> ir;\n";
  out += "  repair: ir -> rp;\n";
  out += "  r_" + cls + ": rp -> o;\n";
  out += "}\n";
}

void append_timed_let(std::string& out, const std::string& name, const std::string& cls,
                      const std::string& fail_timing, const std::string& repair_timing) {
  out += "let " + name + "_t = hide {fail, repair} in\n";
  out += "  (" + name + " |[fail, g_" + cls + ", repair, r_" + cls + "]|\n";
  out += "   (elapse(fail, r_" + cls + ", " + fail_timing + ", running) ||| elapse(repair, g_" +
         cls + ", " + repair_timing + ")));\n";
}

/// The ftwc.uni model with @p workstations total workstations, alternately
/// assigned to the left and right sub-cluster classes.
std::string ftwc_source(unsigned workstations) {
  std::string out = "model ftwc_bench;\n";
  std::vector<std::string> units, classes;
  for (unsigned i = 0; i < workstations; ++i) {
    units.push_back("ws" + std::to_string(i + 1));
    classes.push_back(i % 2 == 0 ? "wsL" : "wsR");
    append_unit(out, units.back(), classes.back());
  }
  append_unit(out, "swL", "swL");
  append_unit(out, "swR", "swR");
  append_unit(out, "bb", "bb");

  out += "component repair_unit {\n  states idle, b_wsL, b_wsR, b_swL, b_swR, b_bb;\n"
         "  initial idle;\n";
  for (const char* cls : {"wsL", "wsR", "swL", "swR", "bb"}) {
    out += std::string("  g_") + cls + ": idle -> b_" + cls + ";\n";
    out += std::string("  r_") + cls + ": b_" + cls + " -> idle;\n";
  }
  out += "}\n";

  out += "timing ws_fail = exponential(0.002);\ntiming ws_repair = exponential(2);\n"
         "timing sw_fail = exponential(0.00025);\ntiming sw_repair = exponential(0.25);\n"
         "timing bb_fail = exponential(0.0002);\ntiming bb_repair = exponential(0.125);\n";

  for (unsigned i = 0; i < workstations; ++i) {
    append_timed_let(out, units[i], classes[i], "ws_fail", "ws_repair");
  }
  append_timed_let(out, "swL", "swL", "sw_fail", "sw_repair");
  append_timed_let(out, "swR", "swR", "sw_fail", "sw_repair");
  append_timed_let(out, "bb", "bb", "bb_fail", "bb_repair");

  out += "system = (";
  for (const std::string& u : units) out += u + "_t ||| ";
  out += "swL_t ||| swR_t ||| bb_t)\n"
         "  |[g_wsL, r_wsL, g_wsR, r_wsR, g_swL, r_swL, g_swR, r_swR, g_bb, r_bb]|\n"
         "  repair_unit;\n";

  out += "prop all_up =";
  for (std::size_t i = 0; i < units.size(); ++i) {
    out += (i == 0 ? " " : " & ") + units[i] + "_up";
  }
  out += ";\nprop goal = !all_up;\n";
  return out;
}

struct Record {
  unsigned workstations = 0;
  std::size_t states = 0;
  double parse_seconds = 0.0;
  double check_seconds = 0.0;
  double build_seconds = 0.0;
};

}  // namespace

int main() {
  const unsigned max_w = bench::full_sweep() ? 8 : 5;
  std::vector<Record> records;

  std::printf("%4s  %10s  %12s  %12s  %12s\n", "W", "states", "parse s", "check s", "build s");
  for (unsigned w = 1; w <= max_w; ++w) {
    const std::string source = ftwc_source(w);

    Record r;
    r.workstations = w;
    Stopwatch parse_timer;
    lang::Model ast = lang::parse_model(source, "ftwc_bench.uni");
    r.parse_seconds = parse_timer.seconds();

    Stopwatch check_timer;
    const std::vector<lang::Diagnostic> diags = lang::check_model(ast);
    r.check_seconds = check_timer.seconds();
    if (!diags.empty()) {
      std::fprintf(stderr, "unexpected diagnostic: %s\n",
                   diags.front().str("ftwc_bench.uni").c_str());
      return 1;
    }

    lang::BuildOptions options;
    options.max_states = 5000000;
    Stopwatch build_timer;
    try {
      const lang::BuiltModel built = lang::build_model(ast, options);
      r.build_seconds = build_timer.seconds();
      r.states = built.system.num_states();
    } catch (const ModelError& e) {
      std::printf("%4u  exploration aborted (%s) — stopping the sweep here\n", w, e.what());
      break;
    }

    std::printf("%4u  %10zu  %12.4f  %12.4f  %12.4f\n", w, r.states, r.parse_seconds,
                r.check_seconds, r.build_seconds);
    records.push_back(r);
  }

  telemetry::BenchJson json("BENCH_lang.json", "BENCH_JSON");
  for (const Record& r : records) {
    telemetry::BenchRecord rec;
    rec.bench = "lang_frontend/W=" + std::to_string(r.workstations);
    rec.add("states", r.states)
        .add("parse_seconds", r.parse_seconds)
        .add("check_seconds", r.check_seconds)
        .add("build_seconds", r.build_seconds);
    json.record(std::move(rec));
  }
  json.write();
  return 0;
}
