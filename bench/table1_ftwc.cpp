// Reproduces Table 1 of the paper: FTWC model sizes, memory usage,
// transformation time, and Algorithm-1 runtime / iteration counts for the
// strictly alternating IMCs, per N, at time bounds 100 h and 30 000 h with
// precision 1e-6.
//
// The model is generated via the direct route (the paper's PRISM route for
// large N) and uniformized at the maximal exit rate; the resulting uniform
// rates E ~ 2.0-2.6 match the iteration counts the paper reports.
//
// Defaults keep the run short; FTWC_FULL=1 enables the full paper sweep
// (N up to 128 and the 30 000 h column for every N).
#include <cmath>
#include <cstdio>
#include <vector>

#include <string>

#include "bench_util.hpp"
#include "core/analysis.hpp"
#include "ftwc/direct.hpp"
#include "support/parallel.hpp"
#include "support/telemetry.hpp"

using namespace unicon;

namespace {

struct Row {
  unsigned n = 0;
  std::size_t inter_states = 0, markov_states = 0;
  std::size_t inter_trans = 0, markov_trans = 0;
  std::size_t mem = 0;
  double build_s = 0.0, transform_s = 0.0;
  double run_100 = -1.0, run_30000 = -1.0;
  std::uint64_t iter_100 = 0, iter_30000 = 0;
  double p_100 = 0.0, p_30000 = 0.0;
  double rate = 0.0;
};

}  // namespace

int main() {
  const bool full = bench::full_sweep();
  bench::ReachabilityJson json;
  const unsigned auto_threads = resolve_threads(0);
  std::vector<unsigned> ns{1, 2, 4, 8, 16, 32, 64};
  if (full) ns.push_back(128);
  // The 30000 h column used to stop at N=16 by default, silently dropping
  // the N=32/N=64 rows from BENCH_reachability.json; with auto truncation
  // and convergence locking the long solves are cheap enough to always run
  // the full default grid.  Skips (full-sweep N=128 never skips) are logged
  // below rather than dropped silently.
  const unsigned long_horizon_cap = full ? 128 : 64;

  std::printf("Table 1 — FTWC strictly alternating IMC sizes and timed reachability\n");
  std::printf("(precision 1e-6; property: premium service not guaranteed within t)\n");
  if (!full) {
    std::printf("(default sweep: N <= 64, 30000 h column for N <= %u; FTWC_FULL=1 for the full "
                "paper grid)\n",
                long_horizon_cap);
  }
  std::printf("\n%4s %9s %9s %9s %9s %10s %8s %9s %11s %8s %9s %11s %11s %6s\n", "N", "Inter.st",
              "Markov.st", "Inter.tr", "Markov.tr", "Mem", "Tr.time", "t=100h", "t=30000h",
              "it.100", "it.30000", "P(100h)", "P(30000h)", "E");

  for (unsigned n : ns) {
    Row row;
    row.n = n;

    Stopwatch build_timer;
    ftwc::Parameters params;
    params.n = n;
    const auto built = ftwc::build_direct(params);
    row.build_s = build_timer.seconds();
    row.rate = built.uniform_rate;

    // Table 1 reports the *alternating* uIMC (interactive vs Markov states
    // and transitions) — "precisely what needs to be stored for the
    // corresponding CTMDP".  The generator applies urgency already, so
    // built.uimc is that alternating IMC.
    for (StateId s = 0; s < built.uimc.num_states(); ++s) {
      if (built.uimc.has_interactive(s)) {
        ++row.inter_states;
      } else if (built.uimc.has_markov(s)) {
        ++row.markov_states;
      }
    }
    row.inter_trans = built.uimc.num_interactive_transitions();
    row.markov_trans = built.uimc.num_markov_transitions();
    row.mem = built.uimc.memory_bytes();

    const auto transformed = transform_to_ctmdp(built.uimc, &built.goal);
    row.transform_s = transformed.stats.seconds;

    {
      Stopwatch timer;
      const auto r = timed_reachability(transformed.ctmdp, transformed.goal, 100.0);
      row.run_100 = timer.seconds();
      row.iter_100 = r.iterations_planned;
      row.p_100 = r.values[transformed.ctmdp.initial()];
      json.record({"table1_ftwc/N=" + std::to_string(n) + "/t=100",
                   transformed.ctmdp.num_states(), r.iterations_planned, row.run_100,
                   auto_threads});
    }
    if (n <= long_horizon_cap) {
      Stopwatch timer;
      const auto r = timed_reachability(transformed.ctmdp, transformed.goal, 30000.0);
      row.run_30000 = timer.seconds();
      row.iter_30000 = r.iterations_planned;
      row.p_30000 = r.values[transformed.ctmdp.initial()];
      json.record({"table1_ftwc/N=" + std::to_string(n) + "/t=30000",
                   transformed.ctmdp.num_states(), r.iterations_planned, row.run_30000,
                   auto_threads});
    } else {
      std::printf("  (skipping N=%u t=30000: beyond the long-horizon budget cap %u; "
                  "set FTWC_FULL=1)\n",
                  n, long_horizon_cap);
    }

    std::printf("%4u %9zu %9zu %9zu %9zu %10s %8.2f %9.2f ", row.n, row.inter_states,
                row.markov_states, row.inter_trans, row.markov_trans,
                bench::human_bytes(row.mem).c_str(), row.transform_s, row.run_100);
    if (row.run_30000 >= 0.0) {
      std::printf("%11.2f %8llu %9llu %11.6f %11.6f %6.3f\n", row.run_30000,
                  static_cast<unsigned long long>(row.iter_100),
                  static_cast<unsigned long long>(row.iter_30000), row.p_100, row.p_30000,
                  row.rate);
    } else {
      std::printf("%11s %8llu %9s %11.6f %11s %6.3f\n", "-",
                  static_cast<unsigned long long>(row.iter_100), "-", row.p_100, "-", row.rate);
    }
    std::fflush(stdout);
  }

  // Serial-vs-parallel sweep on the largest instance of the run: the
  // perf-trajectory record behind the parallel Algorithm-1 hot path.
  {
    const unsigned n = ns.back();
    ftwc::Parameters params;
    params.n = n;
    const auto built = ftwc::build_direct(params);
    const auto transformed = transform_to_ctmdp(built.uimc, &built.goal);
    const std::string label = "table1_ftwc/largest/N=" + std::to_string(n) + "/t=100";

    TimedReachabilityOptions serial;
    serial.threads = 1;
    Stopwatch serial_timer;
    const auto serial_r = timed_reachability(transformed.ctmdp, transformed.goal, 100.0, serial);
    const double serial_s = serial_timer.seconds();
    json.record({label + "/serial", transformed.ctmdp.num_states(),
                 serial_r.iterations_planned, serial_s, 1});

    TimedReachabilityOptions parallel;
    parallel.threads = 0;  // hardware_concurrency
    Stopwatch parallel_timer;
    const auto parallel_r =
        timed_reachability(transformed.ctmdp, transformed.goal, 100.0, parallel);
    const double parallel_s = parallel_timer.seconds();
    json.record({label + "/parallel", transformed.ctmdp.num_states(),
                 parallel_r.iterations_planned, parallel_s, auto_threads});

    double max_diff = 0.0;
    for (std::size_t s = 0; s < serial_r.values.size(); ++s) {
      const double d = std::abs(serial_r.values[s] - parallel_r.values[s]);
      if (d > max_diff) max_diff = d;
    }
    std::printf("\nParallel sweep, largest instance (N=%u, %zu states, k=%llu):\n", n,
                transformed.ctmdp.num_states(),
                static_cast<unsigned long long>(serial_r.iterations_planned));
    std::printf("  threads=1: %.2f s   threads=%u: %.2f s   speedup: %.2fx   max |diff|: %.2e\n",
                serial_s, auto_threads, parallel_s,
                parallel_s > 0.0 ? serial_s / parallel_s : 0.0, max_diff);
  }

  std::printf(
      "\nThe four structural columns match the paper's Table 1 EXACTLY for every N\n"
      "(e.g. N=128: 597010 / 463885 states and 927763 / 2444312 transitions).\n"
      "Iteration counts land slightly below the paper's at equal precision because\n"
      "the Poisson window uses optimal truncation instead of the conservative\n"
      "Fox-Glynn corollary bounds (e.g. N=1 at 30000 h: 61283 vs 62161).\n");
  return 0;
}
