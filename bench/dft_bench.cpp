// DFT frontend cost trajectory: Galileo parse -> IMC composition ->
// bisimulation minimization -> transform -> Algorithm 1 on the shipped zoo,
// dominated by the largest model (cas.dft, ~4k composed states minimizing
// to a few dozen).  The interesting ratio is lower+minimize vs. solve: the
// composition is a one-off per tree while every additional time bound pays
// only the (post-minimization) sweep, which is why the analysis server
// caches the lowered model, not the solve.
//
// Records land in BENCH_dft.json (override with BENCH_JSON):
//   {"bench": "dft/<model>/t=<t>/<objective>", "raw_states": ...,
//    "states": ..., "transitions": ..., "k": ..., "lower_seconds": ...,
//    "minimize_seconds": ..., "solve_seconds": ..., "seconds": ...,
//    "value": ...}
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/analysis.hpp"
#include "dft/lower.hpp"
#include "dft/parser.hpp"
#include "dft/sema.hpp"
#include "lang/build.hpp"
#include "support/telemetry.hpp"

using namespace unicon;

namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in.good()) {
    std::fprintf(stderr, "dft_bench: cannot open %s\n", path.c_str());
    std::exit(2);
  }
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

struct Case {
  const char* model;
  double time;
  Objective objective;
};

}  // namespace

int main() {
  telemetry::BenchJson out("BENCH_dft.json", "BENCH_JSON");
  const std::string dir = UNICON_DFT_DIR;

  // The zoo's two extremes: the largest composition (cas) at a short and a
  // long horizon, and the nondeterministic showcase (fdep_pand) where the
  // sup/inf scheduler gap is genuine.
  const Case cases[] = {
      {"cas", 1.0, Objective::Maximize},
      {"cas", 10.0, Objective::Maximize},
      {"cas", 10.0, Objective::Minimize},
      {"fdep_pand", 10.0, Objective::Maximize},
      {"fdep_pand", 10.0, Objective::Minimize},
  };

  for (const Case& c : cases) {
    const std::string source = read_file(dir + "/" + std::string(c.model) + ".dft");
    Stopwatch total;

    Stopwatch lower_watch;
    const dft::CheckedDft checked = dft::parse_and_check_dft(source);
    lang::BuiltModel built = dft::lower_dft(checked);
    const double lower_s = lower_watch.seconds();
    const std::size_t raw_states = built.system.num_states();

    Stopwatch minimize_watch;
    built = lang::minimize_model(built);
    const double minimize_s = minimize_watch.seconds();

    UimcAnalysisOptions options;
    options.reachability.objective = c.objective;
    options.reachability.backend = Backend::Serial;
    options.reachability.threads = 1;
    Stopwatch solve_watch;
    const UimcAnalysisResult result =
        analyze_timed_reachability(built.system, built.mask("failed"), c.time, options);
    const double solve_s = solve_watch.seconds();

    const char* objective = c.objective == Objective::Maximize ? "max" : "min";
    std::printf("%-10s t=%-4g %s raw=%zu min=%zu k=%llu %s=%.10f "
                "(lower %.3fs, minimize %.3fs, solve %.3fs)\n",
                c.model, c.time, objective, raw_states, built.system.num_states(),
                static_cast<unsigned long long>(result.reachability.iterations_planned),
                c.objective == Objective::Maximize ? "sup" : "inf", result.value, lower_s,
                minimize_s, solve_s);

    telemetry::BenchRecord rec;
    char bound[32];
    std::snprintf(bound, sizeof bound, "%g", c.time);
    rec.bench = "dft/" + std::string(c.model) + "/t=" + bound + "/" + objective;
    rec.add("raw_states", raw_states)
        .add("states", built.system.num_states())
        .add("transitions", result.transformed.ctmdp.num_transitions())
        .add("k", result.reachability.iterations_planned)
        .add("lower_seconds", lower_s)
        .add("minimize_seconds", minimize_s)
        .add("solve_seconds", solve_s)
        .add("seconds", total.seconds())
        .add("value", result.value);
    out.record(std::move(rec));
  }

  out.write();
  std::printf("wrote %s\n", out.path().c_str());
  return 0;
}
