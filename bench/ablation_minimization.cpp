// Ablation for the paper's "Technicalities" paragraph (Sec. 5): the
// compositional route depends on minimizing intermediate state spaces —
// without stochastic branching bisimulation the interleaved workstation
// groups explode combinatorially, with it they collapse to counting
// abstractions.
//
// Prints per-stage sizes with and without minimization, and the agreement
// of the resulting worst-case probabilities with the direct generator.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/analysis.hpp"
#include "ftwc/compositional.hpp"
#include "ftwc/direct.hpp"
#include "support/errors.hpp"
#include "support/telemetry.hpp"

using namespace unicon;

int main() {
  const bool full = bench::full_sweep();
  std::vector<unsigned> ns{1, 2, 3, 4};
  if (full) ns.insert(ns.end(), {6, 8});

  std::printf("Compositional construction ablation (Sec. 5 Technicalities)\n\n");

  for (unsigned n : ns) {
    ftwc::Parameters params;
    params.n = n;

    Stopwatch with_timer;
    ftwc::CompositionalOptions with;
    const auto minimized = ftwc::build_compositional(params, with);
    const double with_s = with_timer.seconds();

    Stopwatch without_timer;
    ftwc::CompositionalOptions without;
    without.minimize = false;
    without.max_states = 2'000'000;
    std::size_t unminimized_states = 0;
    double without_s = -1.0;
    bool exploded = false;
    try {
      const auto raw = ftwc::build_compositional(params, without);
      unminimized_states = raw.uimc.num_states();
      without_s = without_timer.seconds();
    } catch (const Error&) {
      exploded = true;
    }

    std::printf("N=%u: minimized system %zu states (%.2f s)", n, minimized.uimc.num_states(),
                with_s);
    if (exploded) {
      std::printf(", unminimized exceeds 2e6 states\n");
    } else {
      std::printf(", unminimized %zu states (%.2f s)\n", unminimized_states, without_s);
    }
    for (const auto& stage : minimized.stages) {
      std::printf("    %-22s %8zu -> %8zu states\n", stage.stage.c_str(),
                  stage.states_before_minimization, stage.states);
    }

    // Cross-check against the direct generator.
    const auto direct = ftwc::build_direct(params);
    const double t = 100.0;
    const double p_comp = analyze_timed_reachability(minimized.uimc, minimized.goal, t).value;
    const double p_direct = analyze_timed_reachability(direct.uimc, direct.goal, t).value;
    std::printf("    worst-case P(t=100h): compositional %.8f vs direct %.8f (delta %.2e)\n\n",
                p_comp, p_direct, p_comp - p_direct);
    std::fflush(stdout);
  }

  std::printf(
      "The paper reports the same effect at scale: N=14 gave an intermediate space of\n"
      "5e6 states / 6e7 transitions that minimization reduces to 6e4 / 5e5, and N=16\n"
      "was not constructible compositionally at all (2 GB intermediate).\n");
  return 0;
}
