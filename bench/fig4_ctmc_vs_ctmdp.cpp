// Reproduces Figure 4 of the paper: worst-case probabilities from the
// CTMDP analysis vs. the probabilities of the CTMC approximation (repair
// decisions as high-rate races), for a small and a large N, over mission
// time t.  The CTMC consistently *over*estimates.
//
// Default: N = 4 and N = 8; FTWC_FULL=1 uses N = 4 and N = 128 as in the
// paper (significantly slower — the *CTMC* side is stiff, see below).
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/analysis.hpp"
#include "ctmc/transient.hpp"
#include "ftwc/ctmc_variant.hpp"
#include "ftwc/direct.hpp"

using namespace unicon;

namespace {

// The CTMC side is stiff: its uniformization rate is dominated by the
// artificial decision rate Gamma, so lambda = Gamma * t.  Steady-state
// detection keeps the cost bounded, but each long-horizon point on a large
// instance still takes minutes — which is itself a point the paper makes in
// favour of the nondeterministic model.
void series(unsigned n, const std::vector<double>& horizons) {
  ftwc::Parameters params;
  params.n = n;

  const auto faithful = ftwc::build_direct(params);
  const auto transformed = transform_to_ctmdp(faithful.uimc, &faithful.goal);
  const auto approx = ftwc::build_ctmc_variant(params);

  std::printf("\nFTWC N=%u  (CTMDP: %zu states / %zu transitions, CTMC: %zu states, Gamma=%g)\n",
              n, transformed.ctmdp.num_states(), transformed.ctmdp.num_transitions(),
              approx.ctmc.num_states(), params.decision_rate);
  std::printf("%10s  %16s  %16s  %12s\n", "t (h)", "CTMDP worst", "CTMC approx", "overest.");

  for (double t : horizons) {
    TimedReachabilityOptions mdp_options;
    mdp_options.epsilon = 1e-6;
    mdp_options.early_termination = true;  // values converge long before k
    const auto worst = timed_reachability(transformed.ctmdp, transformed.goal, t, mdp_options);
    const double p_mdp = worst.values[transformed.ctmdp.initial()];

    TransientOptions ctmc_options;
    ctmc_options.epsilon = 1e-6;
    ctmc_options.early_termination = true;
    ctmc_options.early_termination_delta = 1e-10;
    const auto ctmc = timed_reachability(approx.ctmc, approx.goal, t, ctmc_options);
    const double p_ctmc = ctmc.probabilities[approx.ctmc.initial()];

    std::printf("%10.0f  %16.8f  %16.8f  %+12.3e\n", t, p_mdp, p_ctmc, p_ctmc - p_mdp);
    std::fflush(stdout);
  }
}

}  // namespace

int main() {
  const bool full = bench::full_sweep();
  std::printf("Figure 4 — worst-case CTMDP probability vs CTMC approximation\n");
  if (!full) {
    std::printf("(default: N=4 and N=8; FTWC_FULL=1 for the paper's N=4 and N=128)\n");
  }

  const std::vector<double> horizons{10, 50, 100, 500, 1000, 5000, 10000, 30000};
  const std::vector<double> short_horizons{10, 50, 100, 500, 1000};
  series(4, horizons);
  series(full ? 128 : 8, full ? horizons : short_horizons);

  std::printf(
      "\nAs in the paper, the CTMC overestimates at every horizon: the high-rate\n"
      "races admit (low-probability) failure paths that cannot occur when the\n"
      "repair unit is assigned nondeterministically and urgently.\n");
  return 0;
}
