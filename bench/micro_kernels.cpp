// Micro-benchmarks (google-benchmark) for the numeric kernels and the
// pipeline stages: Poisson window computation, the Algorithm-1 value
// iteration, CTMC transient analysis, on-the-fly composition, and the
// uIMC -> uCTMDP transformation.
#include <benchmark/benchmark.h>

#include "bench_util.hpp"
#include "core/transform.hpp"
#include "ctmc/transient.hpp"
#include "ctmdp/reachability.hpp"
#include "ftwc/ctmc_variant.hpp"
#include "ftwc/direct.hpp"
#include "support/fox_glynn.hpp"
#include "support/parallel.hpp"
#include "support/telemetry.hpp"

using namespace unicon;

namespace {

void BM_PoissonWindow(benchmark::State& state) {
  const double lambda = static_cast<double>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(PoissonWindow::compute(lambda, 1e-6));
  }
}
BENCHMARK(BM_PoissonWindow)->Arg(10)->Arg(1000)->Arg(77000);

void BM_PoissonPmfReference(benchmark::State& state) {
  for (auto _ : state) {
    double acc = 0.0;
    for (std::uint64_t i = 900; i < 1100; ++i) acc += poisson_pmf(i, 1000.0);
    benchmark::DoNotOptimize(acc);
  }
}
BENCHMARK(BM_PoissonPmfReference);

void BM_FtwcGeneration(benchmark::State& state) {
  ftwc::Parameters params;
  params.n = static_cast<unsigned>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(ftwc::build_direct(params));
  }
}
BENCHMARK(BM_FtwcGeneration)->Arg(2)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_Transformation(benchmark::State& state) {
  ftwc::Parameters params;
  params.n = static_cast<unsigned>(state.range(0));
  const auto built = ftwc::build_direct(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(transform_to_ctmdp(built.uimc, &built.goal));
  }
}
BENCHMARK(BM_Transformation)->Arg(2)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

void BM_Algorithm1(benchmark::State& state) {
  ftwc::Parameters params;
  params.n = static_cast<unsigned>(state.range(0));
  const auto built = ftwc::build_direct(params);
  const auto transformed = transform_to_ctmdp(built.uimc, &built.goal);
  TimedReachabilityOptions options;
  options.threads = static_cast<unsigned>(state.range(1));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        timed_reachability(transformed.ctmdp, transformed.goal, 100.0, options));
  }
  state.counters["states"] = static_cast<double>(transformed.ctmdp.num_states());
  state.counters["threads"] = static_cast<double>(resolve_threads(options.threads));
}
BENCHMARK(BM_Algorithm1)
    ->ArgsProduct({{2, 8, 16}, {1, 0}})  // threads: 1 = serial, 0 = hardware_concurrency
    ->ArgNames({"N", "threads"})
    ->Unit(benchmark::kMillisecond);

/// Single-thread backend comparison on the value-iteration sweep: the
/// historical serial engine versus the dense SIMD kernel (AVX2 when
/// compiled in and supported, portable striped lanes otherwise).  The N=64
/// row is the tentpole speedup pin (>=2x, DESIGN.md Sec. 10).
void BM_Algorithm1Backend(benchmark::State& state) {
  ftwc::Parameters params;
  params.n = static_cast<unsigned>(state.range(0));
  const auto built = ftwc::build_direct(params);
  const auto transformed = transform_to_ctmdp(built.uimc, &built.goal);
  const Backend backends[] = {Backend::Serial, Backend::Simd, Backend::SimdPortable};
  TimedReachabilityOptions options;
  options.threads = 1;
  options.backend = backends[state.range(1)];
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        timed_reachability(transformed.ctmdp, transformed.goal, 100.0, options));
  }
  state.counters["states"] = static_cast<double>(transformed.ctmdp.num_states());
  state.SetLabel(backend_name(options.backend));
}
BENCHMARK(BM_Algorithm1Backend)
    ->ArgsProduct({{16, 64}, {0, 1, 2}})  // backend: 0 = serial, 1 = simd, 2 = simd-portable
    ->ArgNames({"N", "backend"})
    ->Unit(benchmark::kMillisecond);

void BM_CtmcTransient(benchmark::State& state) {
  ftwc::Parameters params;
  params.n = static_cast<unsigned>(state.range(0));
  const auto built = ftwc::build_ctmc_variant(params);
  for (auto _ : state) {
    benchmark::DoNotOptimize(timed_reachability(built.ctmc, built.goal, 100.0));
  }
}
BENCHMARK(BM_CtmcTransient)->Arg(2)->Arg(8)->Arg(16)->Unit(benchmark::kMillisecond);

/// Cost of the execution-control polling in the Algorithm-1 hot loop: an
/// armed-but-idle RunGuard (deadline far away) versus the null-guard path.
/// The contract is <2% overhead — the guard adds one pointer test per
/// iteration plus one sweep check per ~2k states.
void BM_Algorithm1Guarded(benchmark::State& state) {
  ftwc::Parameters params;
  params.n = 16;
  const auto built = ftwc::build_direct(params);
  const auto transformed = transform_to_ctmdp(built.uimc, &built.goal);
  RunGuard guard;
  guard.set_deadline(3600.0);
  TimedReachabilityOptions options;
  options.threads = static_cast<unsigned>(state.range(1));
  options.guard = state.range(0) != 0 ? &guard : nullptr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        timed_reachability(transformed.ctmdp, transformed.goal, 100.0, options));
  }
}
BENCHMARK(BM_Algorithm1Guarded)
    ->ArgsProduct({{0, 1}, {1, 0}})
    ->ArgNames({"guarded", "threads"})
    ->Unit(benchmark::kMillisecond);

/// Cost of telemetry in the Algorithm-1 hot loop: an attached registry (the
/// "reachability" span plus per-worker row counters) versus the null
/// telemetry path.  Same <2% contract as the guard — instrumentation is one
/// pointer test per solve plus one relaxed fetch_add per worker per sweep;
/// metrics are recorded once outside the loop.
void BM_Algorithm1Telemetry(benchmark::State& state) {
  ftwc::Parameters params;
  params.n = 16;
  const auto built = ftwc::build_direct(params);
  const auto transformed = transform_to_ctmdp(built.uimc, &built.goal);
  Telemetry telemetry;
  TimedReachabilityOptions options;
  options.threads = static_cast<unsigned>(state.range(1));
  options.telemetry = state.range(0) != 0 ? &telemetry : nullptr;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        timed_reachability(transformed.ctmdp, transformed.goal, 100.0, options));
  }
}
BENCHMARK(BM_Algorithm1Telemetry)
    ->ArgsProduct({{0, 1}, {1, 0}})
    ->ArgNames({"telemetry", "threads"})
    ->Unit(benchmark::kMillisecond);

/// One explicitly timed Algorithm-1 solve per thread count for the
/// BENCH_reachability.json perf trajectory (google-benchmark keeps its
/// timings to itself, so the JSON records come from a dedicated run).
void emit_reachability_json() {
  bench::ReachabilityJson json;
  ftwc::Parameters params;
  params.n = 16;
  const auto built = ftwc::build_direct(params);
  const auto transformed = transform_to_ctmdp(built.uimc, &built.goal);
  for (unsigned threads : {1u, 0u}) {
    TimedReachabilityOptions options;
    options.threads = threads;
    Stopwatch timer;
    const auto r = timed_reachability(transformed.ctmdp, transformed.goal, 100.0, options);
    json.record({threads == 1 ? "micro_kernels/algorithm1/N=16/serial"
                              : "micro_kernels/algorithm1/N=16/parallel",
                 transformed.ctmdp.num_states(), r.iterations_planned, timer.seconds(),
                 resolve_threads(threads)});
  }
  // Guarded-vs-unguarded record: the same serial solve with an idle guard
  // armed, so the perf trajectory catches polling regressions (>2% over the
  // null-guard record above is a regression).
  RunGuard guard;
  guard.set_deadline(3600.0);
  TimedReachabilityOptions guarded_options;
  guarded_options.threads = 1;
  guarded_options.guard = &guard;
  Stopwatch timer;
  const auto r =
      timed_reachability(transformed.ctmdp, transformed.goal, 100.0, guarded_options);
  json.record({"micro_kernels/algorithm1/N=16/serial-guarded",
               transformed.ctmdp.num_states(), r.iterations_planned, timer.seconds(), 1});

  // Serial-vs-SIMD pin at N=64, single thread: the two rows share one model
  // and horizon, so serial seconds / simd seconds is the backend speedup the
  // tentpole promises (>=2x; FP tolerance in DESIGN.md Sec. 10).  Best of
  // three solves per backend to keep the record robust against scheduler
  // noise on shared runners.
  ftwc::Parameters big;
  big.n = 64;
  const auto big_built = ftwc::build_direct(big);
  const auto big_transformed = transform_to_ctmdp(big_built.uimc, &big_built.goal);
  double backend_seconds[2] = {0.0, 0.0};
  const Backend backends[] = {Backend::Serial, Backend::Simd};
  const char* labels[] = {"micro_kernels/algorithm1/N=64/serial",
                          "micro_kernels/algorithm1/N=64/simd"};
  for (int bi = 0; bi < 2; ++bi) {
    TimedReachabilityOptions backend_options;
    backend_options.threads = 1;
    backend_options.backend = backends[bi];
    double best = 0.0;
    std::uint64_t k = 0;
    for (int rep = 0; rep < 3; ++rep) {
      Stopwatch solve_timer;
      const auto solve =
          timed_reachability(big_transformed.ctmdp, big_transformed.goal, 100.0, backend_options);
      const double seconds = solve_timer.seconds();
      if (rep == 0 || seconds < best) best = seconds;
      k = solve.iterations_planned;
    }
    backend_seconds[bi] = best;
    json.record({labels[bi], big_transformed.ctmdp.num_states(), k, best, 1});
  }
  std::fprintf(stderr, "N=64 serial-vs-simd (%s): %.3fs / %.3fs = %.2fx\n",
               simd_uses_avx2() ? "avx2" : "portable", backend_seconds[0], backend_seconds[1],
               backend_seconds[0] / backend_seconds[1]);
}

}  // namespace

int main(int argc, char** argv) {
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  emit_reachability_json();
  return 0;
}
