// Ablation: truncation-bound provider and convergence locking on
// long-horizon solves (DESIGN.md Sec. 14).
//
// Two model families, each at a horizon where the Poisson window is tens of
// thousands of steps wide:
//
//  * FTWC at t = 30000 h — the paper's slow-mixing worst case.  The
//    Lyapunov certificate probes and disengages (the survival supremum
//    stays near 1), so the win here comes from convergence locking: the
//    bitwise-frozen goal region stops being swept, crushing the number of
//    row relaxations per state ("eff.sweeps" = state_updates / states).
//  * A fast-absorbing drift chain (CTMC and a two-choice CTMDP analog)
//    with lambda*t = 8000 — the certificate's best case: the survival
//    supremum decays geometrically, the series bound certifies after a few
//    dozen steps and the solve stops at k_lyapunov << k_foxglynn.
//
// Three variants per row: fox-glynn without locking (the historical
// baseline), fox-glynn with locking, and auto (Lyapunov engaged) with
// locking.  Values are bit-identical across all variants by construction;
// only the work differs.  Records land in BENCH_reachability.json.
#include <cstdio>
#include <string>
#include <vector>

#include "bench_util.hpp"
#include "core/analysis.hpp"
#include "ctmc/ctmc.hpp"
#include "ctmc/transient.hpp"
#include "ctmdp/ctmdp.hpp"
#include "ctmdp/reachability.hpp"
#include "ftwc/direct.hpp"
#include "support/parallel.hpp"
#include "support/telemetry.hpp"

using namespace unicon;

namespace {

struct Variant {
  const char* name;
  Truncation truncation;
  bool locking;
};

constexpr Variant kVariants[] = {
    {"fox-glynn", Truncation::FoxGlynn, false},
    {"fox-glynn+locking", Truncation::FoxGlynn, true},
    {"auto+locking", Truncation::Auto, true},
};

struct Measurement {
  std::uint64_t planned = 0;
  std::uint64_t executed = 0;
  std::uint64_t k_lyapunov = 0;
  std::uint64_t state_updates = 0;
  std::uint64_t locked_final = 0;
  double seconds = 0.0;
  double value = 0.0;
};

void report(telemetry::BenchJson& json, const std::string& label, std::size_t states,
            unsigned threads, const Measurement& m, const Measurement& baseline) {
  const double eff = static_cast<double>(m.state_updates) / static_cast<double>(states);
  const double base_eff =
      static_cast<double>(baseline.state_updates) / static_cast<double>(states);
  std::printf("  %-20s k=%6llu/%6llu  lyap=%6llu  locked=%7llu  eff.sweeps=%8.1f (%5.2fx)  %7.3f s\n",
              label.substr(label.rfind('/') + 1).c_str(),
              static_cast<unsigned long long>(m.executed),
              static_cast<unsigned long long>(m.planned),
              static_cast<unsigned long long>(m.k_lyapunov),
              static_cast<unsigned long long>(m.locked_final), eff,
              eff > 0.0 ? base_eff / eff : 0.0, m.seconds);
  telemetry::BenchRecord rec;
  rec.bench = label;
  rec.add("states", states)
      .add("k", m.executed)
      .add("k_planned", m.planned)
      .add("k_lyapunov", m.k_lyapunov)
      .add("state_updates", m.state_updates)
      .add("updates_per_state", eff)
      .add("seconds", m.seconds)
      .add("threads", threads);
  json.record(std::move(rec));
}

Measurement run_ctmdp(const Ctmdp& model, const BitVector& goal, double t,
                      const Variant& variant) {
  TimedReachabilityOptions options;
  options.truncation = variant.truncation;
  options.locking = variant.locking;
  Stopwatch timer;
  const TimedReachabilityResult r = timed_reachability(model, goal, t, options);
  Measurement m;
  m.seconds = timer.seconds();
  m.planned = r.iterations_planned;
  m.executed = r.iterations_executed;
  m.k_lyapunov = r.k_lyapunov;
  m.state_updates = r.state_updates;
  m.locked_final = r.locked_final;
  m.value = r.values[model.initial()];
  return m;
}

Measurement run_ctmc(const Ctmc& chain, const BitVector& goal, double t,
                     const Variant& variant) {
  TransientOptions options;
  options.truncation = variant.truncation;
  options.locking = variant.locking;
  Stopwatch timer;
  const TransientResult r = timed_reachability(chain, goal, t, options);
  Measurement m;
  m.seconds = timer.seconds();
  m.planned = r.iterations;
  m.executed = r.iterations_executed;
  m.k_lyapunov = r.k_lyapunov;
  m.state_updates = r.state_updates;
  m.locked_final = r.locked_final;
  m.value = r.probabilities[chain.initial()];
  return m;
}

/// Fast-absorbing drift chain: every state feeds the absorbing goal at rate
/// 3 and the next state at rate 1, so the survival supremum decays by ~4x
/// per uniformized jump and the Lyapunov certificate fires almost at once.
Ctmc drift_ctmc(std::size_t n) {
  CtmcBuilder b(n);
  const StateId goal = static_cast<StateId>(n - 1);
  for (StateId s = 0; s + 1 < n; ++s) {
    b.add_transition(s, 3.0, goal);
    b.add_transition(s, 1.0, std::min<StateId>(s + 1, goal));
  }
  b.set_initial(0);
  return b.build();
}

/// The two-choice CTMDP analog (uniform rate 4): choice "a" drains to the
/// goal faster, choice "b" drifts further — a real decision per state.
Ctmdp drift_ctmdp(std::size_t n) {
  CtmdpBuilder b;
  b.ensure_states(n);
  const StateId goal = static_cast<StateId>(n - 1);
  for (StateId s = 0; s + 1 < n; ++s) {
    b.begin_transition(s, "a");
    b.add_rate(goal, 3.0);
    b.add_rate(std::min<StateId>(s + 1, goal), 1.0);
    b.begin_transition(s, "b");
    b.add_rate(goal, 2.5);
    b.add_rate(std::min<StateId>(s + 1, goal), 1.5);
  }
  b.set_initial(0);
  return b.build();
}

}  // namespace

int main() {
  const bool full = bench::full_sweep();
  telemetry::BenchJson json("BENCH_reachability.json", "BENCH_JSON");
  const unsigned auto_threads = resolve_threads(0);

  std::printf("Ablation — truncation provider x convergence locking (precision 1e-6)\n");

  std::vector<unsigned> ns{4, 8, 16};
  if (full) ns.push_back(32);
  for (const unsigned n : ns) {
    ftwc::Parameters params;
    params.n = n;
    const auto built = ftwc::build_direct(params);
    const auto transformed = transform_to_ctmdp(built.uimc, &built.goal);
    const std::size_t states = transformed.ctmdp.num_states();
    std::printf("\nFTWC N=%u (%zu states), t=30000:\n", n, states);
    Measurement baseline;
    for (const Variant& variant : kVariants) {
      const Measurement m =
          run_ctmdp(transformed.ctmdp, transformed.goal, 30000.0, variant);
      if (variant.truncation == Truncation::FoxGlynn && !variant.locking) baseline = m;
      report(json,
             "ablation_truncation/ftwc/N=" + std::to_string(n) + "/t=30000/" + variant.name,
             states, auto_threads, m, baseline);
    }
    std::fflush(stdout);
  }

  const std::size_t drift_states = 20000;
  const double drift_t = 2000.0;  // lambda * t = 8000

  {
    const Ctmc chain = drift_ctmc(drift_states);
    BitVector goal(drift_states, false);
    goal[drift_states - 1] = true;
    std::printf("\nDrift CTMC (%zu states), t=%g:\n", drift_states, drift_t);
    Measurement baseline;
    for (const Variant& variant : kVariants) {
      const Measurement m = run_ctmc(chain, goal, drift_t, variant);
      if (variant.truncation == Truncation::FoxGlynn && !variant.locking) baseline = m;
      report(json, std::string("ablation_truncation/drift_ctmc/t=2000/") + variant.name,
             drift_states, auto_threads, m, baseline);
    }
  }

  {
    const Ctmdp model = drift_ctmdp(drift_states);
    BitVector goal(drift_states, false);
    goal[drift_states - 1] = true;
    std::printf("\nDrift CTMDP (%zu states, 2 choices/state), t=%g:\n", drift_states, drift_t);
    Measurement baseline;
    for (const Variant& variant : kVariants) {
      const Measurement m = run_ctmdp(model, goal, drift_t, variant);
      if (variant.truncation == Truncation::FoxGlynn && !variant.locking) baseline = m;
      report(json, std::string("ablation_truncation/drift_ctmdp/t=2000/") + variant.name,
             drift_states, auto_threads, m, baseline);
    }
  }

  std::printf(
      "\nAll variants return bit-identical probabilities; only the work differs.\n"
      "On FTWC the certificate disengages (slow mixing) and locking carries the\n"
      "win; on the drift models the certificate stops the solve outright at\n"
      "k_lyapunov << k_foxglynn.\n");
  return 0;
}
