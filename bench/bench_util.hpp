// Shared helpers for the benchmark harnesses.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <string>

namespace unicon::bench {

/// True when the paper-scale sweep was requested via FTWC_FULL=1.
inline bool full_sweep() {
  const char* env = std::getenv("FTWC_FULL");
  return env != nullptr && env[0] == '1';
}

inline std::string human_bytes(std::size_t bytes) {
  char buffer[32];
  if (bytes >= 10ull * 1024 * 1024) {
    std::snprintf(buffer, sizeof buffer, "%.1f MB", static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else if (bytes >= 10ull * 1024) {
    std::snprintf(buffer, sizeof buffer, "%.1f KB", static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buffer, sizeof buffer, "%zu B", bytes);
  }
  return buffer;
}

}  // namespace unicon::bench
