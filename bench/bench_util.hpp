// Shared helpers for the benchmark harnesses.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <vector>

namespace unicon::bench {

/// True when the paper-scale sweep was requested via FTWC_FULL=1.
inline bool full_sweep() {
  const char* env = std::getenv("FTWC_FULL");
  return env != nullptr && env[0] == '1';
}

/// One timed Algorithm-1 (or uniformization) solve for the perf trajectory.
struct ReachabilityRecord {
  std::string bench;       // harness + case label, e.g. "table1_ftwc/N=64/t=100"
  std::size_t states = 0;  // CTMDP/CTMC states swept per iteration
  std::uint64_t k = 0;     // value-iteration steps (Poisson right bound)
  double seconds = 0.0;    // wall-clock solve time
  unsigned threads = 0;    // resolved worker count for the sweep
};

/// Collects ReachabilityRecords and writes them as a JSON array on write()
/// (or destruction) to BENCH_reachability.json in the working directory;
/// override the path with the BENCH_JSON environment variable.  Format:
///   [{"bench": "...", "states": 123, "k": 456, "seconds": 0.789,
///     "threads": 4}, ...]
class ReachabilityJson {
 public:
  explicit ReachabilityJson(std::string default_path = "BENCH_reachability.json") {
    const char* env = std::getenv("BENCH_JSON");
    path_ = env != nullptr && env[0] != '\0' ? env : std::move(default_path);
  }
  ~ReachabilityJson() { write(); }

  void record(ReachabilityRecord r) { records_.push_back(std::move(r)); }

  void write() {
    if (records_.empty()) return;
    std::FILE* f = std::fopen(path_.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "warning: cannot write %s\n", path_.c_str());
      return;
    }
    std::fprintf(f, "[\n");
    for (std::size_t i = 0; i < records_.size(); ++i) {
      const ReachabilityRecord& r = records_[i];
      std::fprintf(f,
                   "  {\"bench\": \"%s\", \"states\": %zu, \"k\": %llu, "
                   "\"seconds\": %.6f, \"threads\": %u}%s\n",
                   r.bench.c_str(), r.states, static_cast<unsigned long long>(r.k), r.seconds,
                   r.threads, i + 1 < records_.size() ? "," : "");
    }
    std::fprintf(f, "]\n");
    std::fclose(f);
    std::printf("wrote %zu reachability records to %s\n", records_.size(), path_.c_str());
    records_.clear();
  }

 private:
  std::string path_;
  std::vector<ReachabilityRecord> records_;
};

inline std::string human_bytes(std::size_t bytes) {
  char buffer[32];
  if (bytes >= 10ull * 1024 * 1024) {
    std::snprintf(buffer, sizeof buffer, "%.1f MB", static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else if (bytes >= 10ull * 1024) {
    std::snprintf(buffer, sizeof buffer, "%.1f KB", static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buffer, sizeof buffer, "%zu B", bytes);
  }
  return buffer;
}

}  // namespace unicon::bench
