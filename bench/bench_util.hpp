// Shared helpers for the benchmark harnesses.
#pragma once

#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <string>
#include <utility>

#include "support/telemetry.hpp"

namespace unicon::bench {

/// True when the paper-scale sweep was requested via FTWC_FULL=1.
inline bool full_sweep() {
  const char* env = std::getenv("FTWC_FULL");
  return env != nullptr && env[0] == '1';
}

/// One timed Algorithm-1 (or uniformization) solve for the perf trajectory.
struct ReachabilityRecord {
  std::string bench;       // harness + case label, e.g. "table1_ftwc/N=64/t=100"
  std::size_t states = 0;  // CTMDP/CTMC states swept per iteration
  std::uint64_t k = 0;     // value-iteration steps (Poisson right bound)
  double seconds = 0.0;    // wall-clock solve time
  unsigned threads = 0;    // resolved worker count for the sweep
};

/// Typed facade over the shared telemetry::BenchJson emitter for the solver
/// harnesses: records land in BENCH_reachability.json (override with the
/// BENCH_JSON environment variable) with the keys
///   {"bench": "...", "states": 123, "k": 456, "seconds": 0.789,
///    "threads": 4}
class ReachabilityJson {
 public:
  explicit ReachabilityJson(std::string default_path = "BENCH_reachability.json")
      : out_(std::move(default_path), "BENCH_JSON") {}

  void record(ReachabilityRecord r) {
    telemetry::BenchRecord rec;
    rec.bench = std::move(r.bench);
    rec.add("states", r.states).add("k", r.k).add("seconds", r.seconds).add("threads", r.threads);
    out_.record(std::move(rec));
  }

  void write() { out_.write(); }

 private:
  telemetry::BenchJson out_;
};

inline std::string human_bytes(std::size_t bytes) {
  char buffer[32];
  if (bytes >= 10ull * 1024 * 1024) {
    std::snprintf(buffer, sizeof buffer, "%.1f MB", static_cast<double>(bytes) / (1024.0 * 1024.0));
  } else if (bytes >= 10ull * 1024) {
    std::snprintf(buffer, sizeof buffer, "%.1f KB", static_cast<double>(bytes) / 1024.0);
  } else {
    std::snprintf(buffer, sizeof buffer, "%zu B", bytes);
  }
  return buffer;
}

}  // namespace unicon::bench
