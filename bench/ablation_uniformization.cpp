// Ablation: the cost of over-uniformization.  Algorithm 1 runs
// k = k(eps, E, t) iterations, and k grows linearly with the uniform rate
// E.  Uniformity *by construction* lets the modeler keep E at the maximal
// exit rate; padding the model to larger E (e.g. a careless global rate
// choice, or the rate sums a deeply nested composition would produce)
// multiplies iteration counts and runtime while leaving the computed
// probabilities essentially unchanged on this model.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/analysis.hpp"
#include "ftwc/direct.hpp"
#include "support/telemetry.hpp"

using namespace unicon;

int main() {
  const bool full = bench::full_sweep();
  ftwc::Parameters params;
  params.n = full ? 8 : 4;
  const double t = 1000.0;

  const auto built = ftwc::build_direct(params);
  const auto transformed = transform_to_ctmdp(built.uimc, &built.goal);
  const double base_rate = built.uniform_rate;

  std::printf("Uniformization-rate ablation (FTWC N=%u, t=%.0f h, eps=1e-6)\n\n", params.n, t);
  std::printf("%10s %10s %12s %12s %16s\n", "E", "E/E_min", "iterations", "runtime(s)",
              "P(worst case)");

  for (double factor : std::vector<double>{1.0, 2.0, 4.0, 8.0, 16.0}) {
    const Ctmdp padded = transformed.ctmdp.uniformize(base_rate * factor);
    Stopwatch timer;
    const auto r = timed_reachability(padded, transformed.goal, t);
    std::printf("%10.3f %10.1f %12llu %12.3f %16.8f\n", base_rate * factor, factor,
                static_cast<unsigned long long>(r.iterations_planned), timer.seconds(),
                r.values[padded.initial()]);
    std::fflush(stdout);
  }

  std::printf(
      "\nNote: uniformizing a CTMDP after the fact is not behaviour-preserving in\n"
      "general (time-abstract schedulers can observe the inserted self-loops);\n"
      "on the FTWC the worst-case values coincide, which is why the paper's\n"
      "PRISM route could uniformize at the maximal exit rate.  The principled\n"
      "way is the paper's contribution: keep the model uniform *by construction*.\n");
  return 0;
}
