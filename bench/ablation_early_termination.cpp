// Ablation: steady-state detection in Algorithm 1.  For long horizons the
// Poisson window [L, R] covers only O(sqrt(E t)) of the k = R iterations;
// below L the backward operator receives no new Poisson mass and converges
// geometrically, so iteration can stop early.  This compares the faithful
// run (as in the paper's implementation) against early termination.
#include <cstdio>
#include <vector>

#include "bench_util.hpp"
#include "core/analysis.hpp"
#include "ftwc/direct.hpp"
#include "support/telemetry.hpp"

using namespace unicon;

int main() {
  const bool full = bench::full_sweep();
  ftwc::Parameters params;
  params.n = full ? 16 : 4;

  const auto built = ftwc::build_direct(params);
  const auto transformed = transform_to_ctmdp(built.uimc, &built.goal);

  std::printf("Early-termination ablation (FTWC N=%u, eps=1e-6)\n\n", params.n);
  std::printf("%10s %12s %12s %10s %10s %14s %14s\n", "t (h)", "k (plan)", "k (exec)",
              "full (s)", "early (s)", "P full", "P early");

  for (double t : std::vector<double>{100, 1000, 10000, 30000}) {
    TimedReachabilityOptions faithful;
    Stopwatch full_timer;
    const auto full_run = timed_reachability(transformed.ctmdp, transformed.goal, t, faithful);
    const double full_s = full_timer.seconds();

    TimedReachabilityOptions early = faithful;
    early.early_termination = true;
    Stopwatch early_timer;
    const auto early_run = timed_reachability(transformed.ctmdp, transformed.goal, t, early);
    const double early_s = early_timer.seconds();

    std::printf("%10.0f %12llu %12llu %10.3f %10.3f %14.8f %14.8f\n", t,
                static_cast<unsigned long long>(full_run.iterations_planned),
                static_cast<unsigned long long>(early_run.iterations_executed), full_s, early_s,
                full_run.values[transformed.ctmdp.initial()],
                early_run.values[transformed.ctmdp.initial()]);
    std::fflush(stdout);
  }
  return 0;
}
