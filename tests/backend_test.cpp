// Backend and BitVector test suite.
//
// Three concerns live here:
//  * unit coverage for support/bit_vector (the packed set type the solvers
//    migrated to) and the saturating decision-table sizing,
//  * the bit-consistency matrix: for every solver entry point, each backend
//    must be bit-identical to itself across all thread counts, the AVX2 and
//    portable SIMD kernels must agree bitwise with each other, and SIMD
//    must agree with the historical serial engine up to the FP-reassociation
//    tolerance documented in DESIGN.md Sec. 10,
//  * regressions for the scheduler-resume decision merge and the
//    early-termination window gate at huge Poisson parameters.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <limits>
#include <vector>

#include "ctmc/transient.hpp"
#include "ctmdp/reachability.hpp"
#include "support/backend.hpp"
#include "support/bit_vector.hpp"
#include "support/errors.hpp"
#include "support/numerics.hpp"
#include "support/rng.hpp"
#include "support/run_guard.hpp"
#include "testing/generate.hpp"
#include "test_util.hpp"

namespace unicon {
namespace {

// ------------------------------------------------------------- BitVector

TEST(BitVector, ConstructionAndBasicAccess) {
  BitVector empty;
  EXPECT_EQ(empty.size(), 0u);
  EXPECT_TRUE(empty.empty());
  EXPECT_TRUE(empty.none());
  EXPECT_TRUE(empty.all());  // vacuously

  BitVector zeros(70);
  EXPECT_EQ(zeros.size(), 70u);
  EXPECT_EQ(zeros.count(), 0u);
  EXPECT_FALSE(zeros.any());

  BitVector ones(70, true);
  EXPECT_EQ(ones.count(), 70u);
  EXPECT_TRUE(ones.all());

  const BitVector lit{true, false, true, true};
  EXPECT_EQ(lit.size(), 4u);
  EXPECT_TRUE(lit[0]);
  EXPECT_FALSE(lit[1]);
  EXPECT_EQ(lit.count(), 3u);
}

TEST(BitVector, VectorBoolBridgeRoundTrips) {
  std::vector<bool> src(131);
  for (std::size_t i = 0; i < src.size(); i += 7) src[i] = true;
  const BitVector v = src;  // implicit bridge
  EXPECT_EQ(v.size(), src.size());
  for (std::size_t i = 0; i < src.size(); ++i) EXPECT_EQ(v[i], src[i]) << i;
  EXPECT_EQ(v.to_vector_bool(), src);
  EXPECT_TRUE(v == src);  // mixed comparison through the implicit ctor
}

TEST(BitVector, SetGetAndReferenceProxy) {
  BitVector v(130);
  v.set(0);
  v.set(63);
  v.set(64);
  v.set(129);
  EXPECT_TRUE(v[0] && v[63] && v[64] && v[129]);
  EXPECT_EQ(v.count(), 4u);
  v.set(63, false);
  EXPECT_FALSE(v.get(63));
  v[7] = true;  // proxy write
  EXPECT_TRUE(v[7]);
  v[7] = false;
  EXPECT_FALSE(v[7]);
}

TEST(BitVector, NextSetAndNextUnsetScanWordBoundaries) {
  BitVector v(200);
  for (std::size_t i : {0u, 5u, 63u, 64u, 127u, 128u, 199u}) v.set(i);
  std::vector<std::size_t> seen;
  for (std::size_t i = v.next_set(0); i != BitVector::npos; i = v.next_set(i + 1)) {
    seen.push_back(i);
  }
  EXPECT_EQ(seen, (std::vector<std::size_t>{0, 5, 63, 64, 127, 128, 199}));
  EXPECT_EQ(v.next_set(200), BitVector::npos);

  EXPECT_EQ(v.next_unset(0), 1u);
  EXPECT_EQ(v.next_unset(63), 65u);
  BitVector full(64, true);
  EXPECT_EQ(full.next_unset(0), BitVector::npos);
  EXPECT_EQ(full.next_set(0), 0u);
}

TEST(BitVector, WordOpsAndTailInvariant) {
  BitVector a(70, true);
  BitVector b(70);
  for (std::size_t i = 0; i < 70; i += 2) b.set(i);

  BitVector and_result = a;
  and_result &= b;
  EXPECT_EQ(and_result, b);

  BitVector or_result = b;
  or_result |= a;
  EXPECT_EQ(or_result, a);

  BitVector xor_result = a;
  xor_result ^= b;
  EXPECT_EQ(xor_result.count(), 70u - b.count());

  BitVector diff = a;
  diff.and_not(b);
  for (std::size_t i = 0; i < 70; ++i) EXPECT_EQ(diff[i], i % 2 == 1) << i;

  // flip keeps the tail bits beyond size() clear — word-level consumers
  // (the SIMD backend) rely on this.
  BitVector f(70);
  f.flip();
  EXPECT_TRUE(f.all());
  ASSERT_EQ(f.num_words(), 2u);
  EXPECT_EQ(f.word(1) >> (70 - 64), 0u);

  BitVector wrong_size(69);
  EXPECT_THROW(a &= wrong_size, ModelError);
  EXPECT_THROW(a |= wrong_size, ModelError);
  EXPECT_THROW(a ^= wrong_size, ModelError);
  EXPECT_THROW(a.and_not(wrong_size), ModelError);
}

TEST(BitVector, ResizePushBackAndTailClearing) {
  BitVector v;
  for (std::size_t i = 0; i < 100; ++i) v.push_back(i % 3 == 0);
  EXPECT_EQ(v.size(), 100u);
  EXPECT_EQ(v.count(), 34u);

  v.resize(64);  // shrink across a word boundary
  EXPECT_EQ(v.size(), 64u);
  v.resize(128, true);
  EXPECT_EQ(v.count(), 22u + 64u);

  // Shrinking must clear the abandoned tail so a later grow sees zeros.
  BitVector w(70, true);
  w.resize(3);
  w.resize(70);
  EXPECT_EQ(w.count(), 3u);
  for (std::size_t word = 0; word < w.num_words(); ++word) {
    if (word == 0) {
      EXPECT_EQ(w.word(0), 0b111u);
    } else {
      EXPECT_EQ(w.word(word), 0u);
    }
  }
}

TEST(BitVector, EqualityAndAssign) {
  BitVector a(65);
  a.set(64);
  BitVector b(65);
  EXPECT_NE(a, b);
  b.set(64);
  EXPECT_EQ(a, b);
  b.assign(65, false);
  EXPECT_NE(a, b);
  EXPECT_NE(a, BitVector(64));  // same prefix, different size
}

// ------------------------------------------- decision-table sizing satellite

TEST(SaturatingMul, BoundaryCases) {
  constexpr std::uint64_t kMax = std::numeric_limits<std::uint64_t>::max();
  EXPECT_EQ(saturating_mul(0, 0), 0u);
  EXPECT_EQ(saturating_mul(0, kMax), 0u);
  EXPECT_EQ(saturating_mul(kMax, 0), 0u);
  EXPECT_EQ(saturating_mul(1, kMax), kMax);
  EXPECT_EQ(saturating_mul(kMax, 1), kMax);
  EXPECT_EQ(saturating_mul(2, kMax / 2), kMax - 1);  // exact, just below the edge
  EXPECT_EQ(saturating_mul(2, kMax / 2 + 1), kMax);  // first overflowing product
  EXPECT_EQ(saturating_mul(kMax, kMax), kMax);
  EXPECT_EQ(saturating_mul(1u << 31, 1u << 31), std::uint64_t{1} << 62);
  EXPECT_EQ(saturating_mul(std::uint64_t{1} << 32, std::uint64_t{1} << 32), kMax);
}

TEST(DecisionTable, OversizedTableDegradesToInitialDecisionOnly) {
  Rng rng(7);
  const Ctmdp model = testing::random_uniform_ctmdp(rng, {.num_states = 12});
  const BitVector goal = testing::random_goal(rng, model.num_states());

  TimedReachabilityOptions options;
  options.extract_scheduler = true;
  const auto full = timed_reachability(model, goal, 1.5, options);
  ASSERT_GT(full.iterations_planned, 1u);
  EXPECT_EQ(full.decisions.size(), full.iterations_planned);
  EXPECT_EQ(full.initial_decision.size(), model.num_states());

  // A cap below k*n disables the full table but must keep the i = 1 row,
  // and must not wrap around: a cap that an overflowing k*n product would
  // appear to satisfy stays disabled thanks to the saturating multiply.
  options.max_decision_entries = full.iterations_planned;  // < k*n for n > 1
  const auto capped = timed_reachability(model, goal, 1.5, options);
  EXPECT_TRUE(capped.decisions.empty());
  EXPECT_EQ(capped.initial_decision, full.initial_decision);
  EXPECT_EQ(capped.values, full.values);
}

// ------------------------------------------------------ bit-consistency suite

/// Sizes chosen to cover every residue that matters to the kernels: the
/// 4-lane stripes (n mod 4), the AVX2 gather width (n mod 8) and the
/// cache-block granularity (n mod 16), plus the single-word and
/// word-boundary BitVector cases.
const std::size_t kSizes[] = {1, 3, 4, 5, 7, 8, 12, 13, 16, 17, 29, 33, 64, 67};

const Backend kBackends[] = {Backend::Serial, Backend::Simd, Backend::SimdPortable};
const unsigned kThreadCounts[] = {1, 2, 3, 8};

/// Absolute tolerance for serial-vs-SIMD value differences.  Values live in
/// [0, 1]; the reassociation error of the striped dot product is a few ulps
/// per step and the sweeps run O(100) steps here (DESIGN.md Sec. 10).
constexpr double kReassocTol = 1e-12;

double max_abs_diff_vec(const std::vector<double>& a, const std::vector<double>& b) {
  EXPECT_EQ(a.size(), b.size());
  double m = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) m = std::max(m, std::fabs(a[i] - b[i]));
  return m;
}

struct CtmdpCase {
  Ctmdp model;
  BitVector goal;
  BitVector avoid;
};

CtmdpCase make_ctmdp_case(std::uint64_t seed, std::size_t n) {
  Rng rng(seed);
  CtmdpCase c;
  c.model = testing::random_uniform_ctmdp(
      rng, {.num_states = n, .uniform_rate = 2.0, .max_transitions_per_state = 3});
  n = c.model.num_states();  // the generator clamps tiny sizes up to 2
  c.goal = testing::random_goal(rng, n);
  c.avoid = BitVector(n);
  // Sparse avoid set disjoint from the goal, never the initial state.
  for (std::size_t s = 1; s < n; ++s) {
    if (!c.goal[s] && rng.next_double() < 0.15) c.avoid.set(s);
  }
  return c;
}

TEST(BitConsistency, TimedReachabilityAcrossBackendsAndThreads) {
  for (std::size_t n : kSizes) {
    const CtmdpCase c = make_ctmdp_case(1000 + n, n);
    std::vector<std::vector<double>> per_backend;
    for (Backend backend : kBackends) {
      TimedReachabilityOptions options;
      options.backend = backend;
      options.avoid = c.avoid;
      options.threads = 1;
      const auto reference = timed_reachability(c.model, c.goal, 1.25, options);
      for (unsigned threads : kThreadCounts) {
        options.threads = threads;
        const auto run = timed_reachability(c.model, c.goal, 1.25, options);
        EXPECT_EQ(run.values, reference.values)
            << "thread-variance in " << backend_name(backend) << " n=" << n
            << " threads=" << threads;
      }
      per_backend.push_back(reference.values);
    }
    // Simd and SimdPortable share the striped-lane contract bit-for-bit.
    EXPECT_EQ(per_backend[1], per_backend[2]) << "simd vs simd-portable, n=" << n;
    // Serial differs by reassociation only.
    EXPECT_LE(max_abs_diff_vec(per_backend[0], per_backend[1]), kReassocTol) << "n=" << n;
  }
}

TEST(BitConsistency, EvaluateSchedulerAcrossBackendsAndThreads) {
  for (std::size_t n : kSizes) {
    const CtmdpCase c = make_ctmdp_case(2000 + n, n);
    TimedReachabilityOptions extract;
    extract.extract_scheduler = true;
    const auto optimal = timed_reachability(c.model, c.goal, 1.0, extract);
    std::vector<std::uint64_t> choice = optimal.initial_decision;
    for (auto& t : choice) {
      if (t == kNoTransition) t = 0;
    }

    std::vector<std::vector<double>> per_backend;
    for (Backend backend : kBackends) {
      TimedReachabilityOptions options;
      options.backend = backend;
      options.threads = 1;
      const auto reference = evaluate_scheduler(c.model, c.goal, 1.0, choice, options);
      for (unsigned threads : kThreadCounts) {
        options.threads = threads;
        const auto run = evaluate_scheduler(c.model, c.goal, 1.0, choice, options);
        EXPECT_EQ(run.values, reference.values)
            << "thread-variance in " << backend_name(backend) << " n=" << n
            << " threads=" << threads;
      }
      per_backend.push_back(reference.values);
    }
    EXPECT_EQ(per_backend[1], per_backend[2]) << "simd vs simd-portable, n=" << n;
    EXPECT_LE(max_abs_diff_vec(per_backend[0], per_backend[1]), kReassocTol) << "n=" << n;
  }
}

TEST(BitConsistency, StepBoundedReachabilityAcrossBackendsAndThreads) {
  for (std::size_t n : kSizes) {
    const CtmdpCase c = make_ctmdp_case(3000 + n, n);
    std::vector<std::vector<double>> per_backend;
    for (Backend backend : kBackends) {
      const auto reference = step_bounded_reachability(c.model, c.goal, 25, Objective::Maximize,
                                                       /*threads=*/1, nullptr, backend);
      for (unsigned threads : kThreadCounts) {
        const auto run = step_bounded_reachability(c.model, c.goal, 25, Objective::Maximize,
                                                   threads, nullptr, backend);
        EXPECT_EQ(run, reference) << "thread-variance in " << backend_name(backend) << " n=" << n
                                  << " threads=" << threads;
      }
      per_backend.push_back(reference);
    }
    EXPECT_EQ(per_backend[1], per_backend[2]) << "simd vs simd-portable, n=" << n;
    EXPECT_LE(max_abs_diff_vec(per_backend[0], per_backend[1]), kReassocTol) << "n=" << n;
  }
}

TEST(BitConsistency, CtmcReachabilityAndTransientAcrossBackendsAndThreads) {
  for (std::size_t n : kSizes) {
    Rng rng(4000 + n);
    const Ctmc chain = testing::random_ctmc(rng, {.num_states = n});
    const BitVector goal = testing::random_goal(rng, chain.num_states());

    std::vector<std::vector<double>> reach_per_backend;
    std::vector<std::vector<double>> trans_per_backend;
    for (Backend backend : kBackends) {
      TransientOptions options;
      options.backend = backend;
      options.threads = 1;
      const auto reach_ref = timed_reachability(chain, goal, 0.8, options);
      const auto trans_ref = transient_distribution(chain, 0.8, options);
      for (unsigned threads : kThreadCounts) {
        options.threads = threads;
        const auto reach = timed_reachability(chain, goal, 0.8, options);
        const auto trans = transient_distribution(chain, 0.8, options);
        EXPECT_EQ(reach.probabilities, reach_ref.probabilities)
            << "thread-variance in " << backend_name(backend) << " n=" << n
            << " threads=" << threads;
        EXPECT_EQ(trans.probabilities, trans_ref.probabilities)
            << "thread-variance in " << backend_name(backend) << " n=" << n
            << " threads=" << threads;
      }
      reach_per_backend.push_back(reach_ref.probabilities);
      trans_per_backend.push_back(trans_ref.probabilities);
    }
    EXPECT_EQ(reach_per_backend[1], reach_per_backend[2]) << "simd vs simd-portable, n=" << n;
    EXPECT_EQ(trans_per_backend[1], trans_per_backend[2]) << "simd vs simd-portable, n=" << n;
    EXPECT_LE(max_abs_diff_vec(reach_per_backend[0], reach_per_backend[1]), kReassocTol)
        << "n=" << n;
    EXPECT_LE(max_abs_diff_vec(trans_per_backend[0], trans_per_backend[1]), kReassocTol)
        << "n=" << n;
  }
}

TEST(BitConsistency, AvxKernelReportsAvailability) {
  // On an AVX2 host with UNICON_AVX2 compiled in, Backend::Simd must use the
  // vector kernel (otherwise the benchmark record would silently measure
  // the portable stripes).  Elsewhere it must fall back, not fail.
  if (cpu_supports_avx2()) {
    EXPECT_EQ(simd_uses_avx2(), avx2_kernel_ops() != nullptr);
  } else {
    EXPECT_FALSE(simd_uses_avx2());
  }
  EXPECT_THROW(kernel_ops(Backend::Serial), ModelError);
  EXPECT_NE(kernel_ops(Backend::SimdPortable).relax_rows, nullptr);
  EXPECT_NE(kernel_ops(Backend::Simd).gather_rows, nullptr);
}

// ------------------------------------- convergence-locking consistency

/// Convergence locking must be invisible in the results: for every backend
/// and thread count, a locked run is bitwise identical to the same
/// backend's unlocked run (the locking criterion only freezes exact
/// fixpoints of their own row — DESIGN.md Sec. 14).  The horizon is long
/// enough (lambda = 20, ~80 sweeps) for tail values to freeze bitwise and
/// locks to actually engage.
TEST(BitConsistency, LockingOnOffBitwiseAcrossBackendsAndThreads) {
  for (std::size_t n : {5u, 13u, 33u, 67u}) {
    const CtmdpCase c = make_ctmdp_case(5000 + n, n);
    for (Backend backend : kBackends) {
      TimedReachabilityOptions options;
      options.backend = backend;
      options.avoid = c.avoid;
      options.threads = 1;
      options.locking = false;
      const auto unlocked = timed_reachability(c.model, c.goal, 10.0, options);
      for (bool locking : {false, true}) {
        for (unsigned threads : kThreadCounts) {
          options.locking = locking;
          options.threads = threads;
          const auto run = timed_reachability(c.model, c.goal, 10.0, options);
          EXPECT_EQ(run.values, unlocked.values)
              << backend_name(backend) << " n=" << n << " threads=" << threads
              << " locking=" << locking;
          EXPECT_EQ(run.iterations_planned, unlocked.iterations_planned);
        }
      }
    }
  }
}

TEST(BitConsistency, CtmcLockingOnOffBitwiseAcrossBackendsAndThreads) {
  for (std::size_t n : {5u, 29u, 67u}) {
    Rng rng(6000 + n);
    const Ctmc chain = testing::random_ctmc(rng, {.num_states = n});
    const BitVector goal = testing::random_goal(rng, chain.num_states());
    for (Backend backend : kBackends) {
      TransientOptions options;
      options.backend = backend;
      options.threads = 1;
      options.locking = false;
      const auto unlocked = timed_reachability(chain, goal, 8.0, options);
      for (bool locking : {false, true}) {
        for (unsigned threads : kThreadCounts) {
          options.locking = locking;
          options.threads = threads;
          const auto run = timed_reachability(chain, goal, 8.0, options);
          EXPECT_EQ(run.probabilities, unlocked.probabilities)
              << backend_name(backend) << " n=" << n << " threads=" << threads
              << " locking=" << locking;
        }
      }
    }
  }
}

// --------------------------------------------- scheduler-resume regression

TEST(SchedulerResume, MergesPreInterruptionDecisions) {
  Rng rng(99);
  const Ctmdp model = testing::random_uniform_ctmdp(rng, {.num_states = 14});
  const BitVector goal = testing::random_goal(rng, model.num_states());

  TimedReachabilityOptions options;
  options.extract_scheduler = true;
  const auto reference = timed_reachability(model, goal, 2.0, options);
  ASSERT_EQ(reference.status, RunStatus::Converged);
  ASSERT_EQ(reference.decisions.size(), reference.iterations_planned);

  // Interrupt mid-iteration at several depths; the resumed run must
  // reconstruct the identical artifact, including the decision rows
  // recorded before the interruption.
  for (std::uint64_t polls : {2u, 5u, 9u}) {
    RunGuard guard;
    guard.cancel_after_polls(polls);
    TimedReachabilityOptions interrupted = options;
    interrupted.guard = &guard;
    const auto partial = timed_reachability(model, goal, 2.0, interrupted);
    if (partial.status == RunStatus::Converged) continue;  // cancelled too late
    ASSERT_FALSE(partial.iterate.empty());

    TimedReachabilityOptions resume_options = options;
    resume_options.resume = &partial;
    const auto resumed = timed_reachability(model, goal, 2.0, resume_options);
    EXPECT_EQ(resumed.status, RunStatus::Converged);
    EXPECT_EQ(resumed.values, reference.values) << "polls=" << polls;
    EXPECT_EQ(resumed.initial_decision, reference.initial_decision) << "polls=" << polls;
    EXPECT_EQ(resumed.decisions, reference.decisions) << "polls=" << polls;
  }
}

// -------------------------------------- early-termination window regression

/// Two-state chain as a CTMDP: 0 -> 1 at half the uniform rate.  At huge
/// E*t the Poisson window's left truncation point is far above 1, and the
/// iterate converges long before the window is exhausted — exactly the
/// regime where a psi-underflow-based early-exit check used to fire inside
/// the window and truncate real probability mass.
Ctmdp huge_lambda_model() {
  CtmdpBuilder b;
  b.ensure_states(2);
  b.set_initial(0);
  b.begin_transition(0, "go");
  b.add_rate(1, 200.0);
  b.add_rate(0, 200.0);
  b.begin_transition(1, "stay");
  b.add_rate(1, 400.0);
  return b.build();
}

TEST(EarlyTermination, GatedOnWindowBoundsAtHugeLambda) {
  const Ctmdp model = huge_lambda_model();
  const BitVector goal{false, true};
  const double t = 10.0;  // lambda = 4000, left bound ~ 3600

  TimedReachabilityOptions full_options;
  full_options.epsilon = 1e-9;
  const auto full = timed_reachability(model, goal, t, full_options);

  // An infinite delta makes the window gate the *only* thing standing
  // between the solver and an immediate bogus exit: if the gate ever fires
  // with psi mass still below the current step, the value collapses.
  TimedReachabilityOptions early_options = full_options;
  early_options.early_termination = true;
  early_options.early_termination_delta = std::numeric_limits<double>::max();
  const auto early = timed_reachability(model, goal, t, early_options);
  EXPECT_LT(early.iterations_executed, early.iterations_planned);  // it did fire
  EXPECT_NEAR(early.values[0], full.values[0], 1e-8);
  EXPECT_DOUBLE_EQ(early.values[1], 1.0);

  // Same gate in the policy-evaluation sweep.
  const std::vector<std::uint64_t> choice{0, 0};
  const auto eval_full = evaluate_scheduler(model, goal, t, choice, full_options);
  const auto eval_early = evaluate_scheduler(model, goal, t, choice, early_options);
  EXPECT_LT(eval_early.iterations_executed, eval_early.iterations_planned);
  EXPECT_NEAR(eval_early.values[0], eval_full.values[0], 1e-8);

  // With a realistic delta the answer must stay within delta + epsilon of
  // the exact run on every backend.
  early_options.early_termination_delta = 1e-9;
  for (Backend backend : kBackends) {
    early_options.backend = backend;
    const auto run = timed_reachability(model, goal, t, early_options);
    EXPECT_NEAR(run.values[0], full.values[0], 1e-8) << backend_name(backend);
  }
}

}  // namespace
}  // namespace unicon
