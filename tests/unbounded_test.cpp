#include <gtest/gtest.h>

#include <cmath>

#include "core/transform.hpp"
#include "ctmdp/unbounded.hpp"
#include "support/errors.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace unicon {
namespace {

/// 0 can go toward goal 2 (via 1) or escape to trap 3.
Ctmdp escape_model() {
  CtmdpBuilder b;
  b.ensure_states(4);
  b.set_initial(0);
  b.begin_transition(0, "toward");
  b.add_rate(1, 2.0);
  b.begin_transition(0, "escape");
  b.add_rate(3, 2.0);
  b.begin_transition(1, "go");
  b.add_rate(2, 1.0);  // half the mass reaches the goal ...
  b.add_rate(3, 1.0);  // ... half falls into the trap
  b.begin_transition(2, "stay");
  b.add_rate(2, 2.0);
  b.begin_transition(3, "stay");
  b.add_rate(3, 2.0);
  return b.build();
}

TEST(ZeroStates, MaximizeMeansNoPathToGoal) {
  const Ctmdp c = escape_model();
  const std::vector<bool> goal{false, false, true, false};
  const auto zero = zero_states(c, goal, Objective::Maximize);
  EXPECT_FALSE(zero[0]);
  EXPECT_FALSE(zero[1]);
  EXPECT_FALSE(zero[2]);
  EXPECT_TRUE(zero[3]);  // the trap has no path out
}

TEST(ZeroStates, MinimizeMeansSomeSchedulerAvoids) {
  const Ctmdp c = escape_model();
  const std::vector<bool> goal{false, false, true, false};
  const auto zero = zero_states(c, goal, Objective::Minimize);
  EXPECT_TRUE(zero[0]);   // "escape" avoids the goal forever
  EXPECT_FALSE(zero[1]);  // any transition of 1 may hit the goal
  EXPECT_FALSE(zero[2]);
  EXPECT_TRUE(zero[3]);
}

TEST(ZeroStates, AbsorbingNonGoalAvoidsTrivially) {
  CtmdpBuilder b;
  b.ensure_states(2);
  b.begin_transition(0, "go");
  b.add_rate(1, 1.0);
  const Ctmdp c = b.build();  // state 1 transitionless
  const std::vector<bool> goal{false, false};
  const auto zero = zero_states(c, goal, Objective::Minimize);
  EXPECT_TRUE(zero[1]);
}

TEST(UnboundedReachability, MaxAndMinValues) {
  const Ctmdp c = escape_model();
  const std::vector<bool> goal{false, false, true, false};
  const auto max_r = unbounded_reachability(c, goal);
  // Best: go toward, then 50/50 at state 1.
  EXPECT_NEAR(max_r.values[0], 0.5, 1e-9);
  EXPECT_NEAR(max_r.values[1], 0.5, 1e-9);
  EXPECT_DOUBLE_EQ(max_r.values[2], 1.0);
  EXPECT_DOUBLE_EQ(max_r.values[3], 0.0);

  UnboundedOptions min_options;
  min_options.objective = Objective::Minimize;
  const auto min_r = unbounded_reachability(c, goal, min_options);
  EXPECT_DOUBLE_EQ(min_r.values[0], 0.0);
  EXPECT_NEAR(min_r.values[1], 0.5, 1e-9);
}

TEST(UnboundedReachability, RetryLoopReachesAlmostSurely) {
  // 0 -> goal w.p. 1/3, else back to 0: eventually 1.
  CtmdpBuilder b;
  b.ensure_states(2);
  b.begin_transition(0, "try");
  b.add_rate(1, 1.0);
  b.add_rate(0, 2.0);
  b.begin_transition(1, "stay");
  b.add_rate(1, 3.0);
  const Ctmdp c = b.build();
  const auto r = unbounded_reachability(c, {false, true});
  EXPECT_NEAR(r.values[0], 1.0, 1e-9);
}

TEST(UnboundedReachability, DominatesTimedReachability) {
  Rng rng(31);
  const Imc m = testutil::random_uniform_imc(rng);
  (void)m;  // documented relationship checked on a fixed model below
  const Ctmdp c = escape_model();
  const std::vector<bool> goal{false, false, true, false};
  const double unbounded = unbounded_reachability(c, goal).values[0];
  const double timed = timed_reachability(c, goal, 3.0).values[0];
  EXPECT_GE(unbounded + 1e-9, timed);
}

TEST(UnboundedReachability, SizeMismatchThrows) {
  const Ctmdp c = escape_model();
  EXPECT_THROW(unbounded_reachability(c, {true}), ModelError);
}

TEST(AlmostSure, MaximizeIsProb1E) {
  const Ctmdp c = escape_model();
  const std::vector<bool> goal{false, false, true, false};
  const auto p1e = almost_sure_states(c, goal, Objective::Maximize);
  // Even the best scheduler loses half the mass to the trap at state 1.
  EXPECT_FALSE(p1e[0]);
  EXPECT_FALSE(p1e[1]);
  EXPECT_TRUE(p1e[2]);
  EXPECT_FALSE(p1e[3]);
}

TEST(AlmostSure, MinimizeIsProb1A) {
  // 0 -> goal w.p. 1/3 else retry: every scheduler (there is only one)
  // reaches the goal almost surely.
  CtmdpBuilder b;
  b.ensure_states(2);
  b.begin_transition(0, "try");
  b.add_rate(1, 1.0);
  b.add_rate(0, 2.0);
  b.begin_transition(1, "stay");
  b.add_rate(1, 3.0);
  const Ctmdp c = b.build();
  const auto p1a = almost_sure_states(c, {false, true}, Objective::Minimize);
  EXPECT_TRUE(p1a[0]);
  EXPECT_TRUE(p1a[1]);
}

TEST(AlmostSure, Prob1EWithRecoveryLoop) {
  // The retry loop makes the goal almost-sure reachable for the scheduler
  // that keeps trying — Prob1E holds although a single attempt can fail.
  CtmdpBuilder b;
  b.ensure_states(3);
  b.begin_transition(0, "try");
  b.add_rate(2, 1.0);
  b.add_rate(1, 1.0);
  b.begin_transition(0, "give_up");
  b.add_rate(1, 2.0);
  b.begin_transition(1, "retry");
  b.add_rate(0, 2.0);
  b.begin_transition(2, "stay");
  b.add_rate(2, 2.0);
  const Ctmdp c = b.build();
  const std::vector<bool> goal{false, false, true};
  const auto p1e = almost_sure_states(c, goal, Objective::Maximize);
  EXPECT_TRUE(p1e[0]);
  EXPECT_TRUE(p1e[1]);
  // But not for every scheduler: "give_up" + "retry" cycles forever.
  const auto p1a = almost_sure_states(c, goal, Objective::Minimize);
  EXPECT_FALSE(p1a[0]);
  EXPECT_FALSE(p1a[1]);
}

// -------------------------------------------------------- expected time

TEST(ExpectedTime, SingleExponentialStep) {
  CtmdpBuilder b;
  b.ensure_states(2);
  b.begin_transition(0, "go");
  b.add_rate(1, 4.0);
  b.begin_transition(1, "stay");
  b.add_rate(1, 4.0);
  const Ctmdp c = b.build();
  const auto r = expected_reachability_time(c, {false, true});
  EXPECT_NEAR(r.values[0], 0.25, 1e-9);
  EXPECT_DOUBLE_EQ(r.values[1], 0.0);
}

TEST(ExpectedTime, GeometricRetryMatchesClosedForm) {
  // Per jump (rate E=3): success probability 1/3 => expected jumps 3,
  // expected time 3 / 3 = 1.
  CtmdpBuilder b;
  b.ensure_states(2);
  b.begin_transition(0, "try");
  b.add_rate(1, 1.0);
  b.add_rate(0, 2.0);
  b.begin_transition(1, "stay");
  b.add_rate(1, 3.0);
  const Ctmdp c = b.build();
  const auto r = expected_reachability_time(c, {false, true});
  EXPECT_NEAR(r.values[0], 1.0, 1e-8);
}

TEST(ExpectedTime, MinPrefersTheFastRoute) {
  // Choice: direct (1 jump) or detour (2 jumps); E = 2 everywhere.
  CtmdpBuilder b;
  b.ensure_states(3);
  b.begin_transition(0, "direct");
  b.add_rate(2, 2.0);
  b.begin_transition(0, "detour");
  b.add_rate(1, 2.0);
  b.begin_transition(1, "go");
  b.add_rate(2, 2.0);
  b.begin_transition(2, "stay");
  b.add_rate(2, 2.0);
  const Ctmdp c = b.build();
  const std::vector<bool> goal{false, false, true};
  UnboundedOptions min_options;
  min_options.objective = Objective::Minimize;
  EXPECT_NEAR(expected_reachability_time(c, goal, min_options).values[0], 0.5, 1e-9);
  // Max takes the detour: two mean-1/2 jumps.
  EXPECT_NEAR(expected_reachability_time(c, goal).values[0], 1.0, 1e-9);
}

TEST(ExpectedTime, InfiniteWhenAvoidancePossible) {
  const Ctmdp c = escape_model();
  const std::vector<bool> goal{false, false, true, false};
  // Max: the escape scheduler never reaches the goal -> infinite sup.
  const auto max_r = expected_reachability_time(c, goal);
  EXPECT_TRUE(std::isinf(max_r.values[0]));
  // Min: even the best scheduler loses half the mass to the trap.
  UnboundedOptions min_options;
  min_options.objective = Objective::Minimize;
  const auto min_r = expected_reachability_time(c, goal, min_options);
  EXPECT_TRUE(std::isinf(min_r.values[0]));
  EXPECT_TRUE(std::isinf(min_r.values[3]));
}

TEST(ExpectedTime, RequiresUniformModel) {
  CtmdpBuilder b;
  b.ensure_states(2);
  b.begin_transition(0, "a");
  b.add_rate(1, 1.0);
  b.begin_transition(1, "b");
  b.add_rate(0, 5.0);
  EXPECT_THROW(expected_reachability_time(b.build(), {false, true}), UniformityError);
}

// ---------------------------------------------------- degenerate inputs
//
// Table of boundary models where every objective and every horizon must
// agree on the exact answer: a goal set covering everything, a goal with
// no incoming path, and single-state systems.

/// Uniform single-action model: every state has a rate-2 self-loop.
Ctmdp self_loops(std::size_t n) {
  CtmdpBuilder b;
  b.ensure_states(n);
  for (StateId s = 0; s < n; ++s) {
    b.begin_transition(s, "stay");
    b.add_rate(s, 2.0);
  }
  return b.build();
}

struct DegenerateCase {
  const char* name;
  Ctmdp model;
  std::vector<bool> goal;
  std::vector<double> expected;  // exact value per state, any objective / t
};

std::vector<DegenerateCase> degenerate_cases() {
  std::vector<DegenerateCase> cases;
  cases.push_back({"goal_is_everything", self_loops(3), {true, true, true}, {1.0, 1.0, 1.0}});
  cases.push_back({"unreachable_goal", self_loops(2), {false, true}, {0.0, 1.0}});
  cases.push_back({"single_state_goal", self_loops(1), {true}, {1.0}});
  cases.push_back({"single_state_non_goal", self_loops(1), {false}, {0.0}});
  return cases;
}

TEST(DegenerateInputs, UnboundedTimedAndZeroStatesAgreeExactly) {
  for (const DegenerateCase& c : degenerate_cases()) {
    SCOPED_TRACE(c.name);
    for (Objective obj : {Objective::Maximize, Objective::Minimize}) {
      UnboundedOptions options;
      options.objective = obj;
      const auto unbounded = unbounded_reachability(c.model, c.goal, options);
      const auto zero = zero_states(c.model, c.goal, obj);
      TimedReachabilityOptions timed_options;
      timed_options.objective = obj;
      const auto timed = timed_reachability(c.model, c.goal, 1.0, timed_options);
      for (StateId s = 0; s < c.model.num_states(); ++s) {
        SCOPED_TRACE(s);
        EXPECT_DOUBLE_EQ(unbounded.values[s], c.expected[s]);
        EXPECT_EQ(zero[s], c.expected[s] == 0.0);
        EXPECT_DOUBLE_EQ(timed.values[s], c.expected[s]);
      }
    }
  }
}

TEST(DegenerateInputs, TransitionlessSingleState) {
  CtmdpBuilder b;
  b.ensure_states(1);
  const Ctmdp c = b.build();
  EXPECT_DOUBLE_EQ(unbounded_reachability(c, {true}).values[0], 1.0);
  EXPECT_DOUBLE_EQ(unbounded_reachability(c, {false}).values[0], 0.0);
  EXPECT_FALSE(zero_states(c, {true}, Objective::Maximize)[0]);
  EXPECT_TRUE(zero_states(c, {false}, Objective::Minimize)[0]);
}

TEST(DegenerateInputs, TimeZeroIsTheGoalIndicator) {
  const Ctmdp c = escape_model();
  const std::vector<bool> goal{false, false, true, false};
  const auto r = timed_reachability(c, goal, 0.0);
  EXPECT_DOUBLE_EQ(r.values[0], 0.0);
  EXPECT_DOUBLE_EQ(r.values[2], 1.0);
}

class UnboundedConsistency : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UnboundedConsistency, StepBoundedConvergesToUnbounded) {
  Rng rng(GetParam());
  testutil::RandomImcConfig config;
  config.num_states = 10;
  const Imc m = testutil::random_uniform_imc(rng, config);
  const BitVector goal = testutil::random_goal(rng, m.num_states());
  const auto transformed = transform_to_ctmdp(m, &goal);
  const Ctmdp& c = transformed.ctmdp;
  for (Objective obj : {Objective::Maximize, Objective::Minimize}) {
    UnboundedOptions options;
    options.objective = obj;
    const auto unbounded = unbounded_reachability(c, transformed.goal, options);
    const auto bounded = step_bounded_reachability(c, transformed.goal, 4000, obj);
    for (StateId s = 0; s < c.num_states(); ++s) {
      EXPECT_NEAR(unbounded.values[s], bounded[s], 1e-6) << "state " << s;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, UnboundedConsistency, ::testing::Range<std::uint64_t>(0, 6));

}  // namespace
}  // namespace unicon
