#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "ctmc/transient.hpp"
#include "ftwc/components.hpp"
#include "ftwc/compositional.hpp"
#include "ftwc/ctmc_variant.hpp"
#include "ftwc/direct.hpp"
#include "ftwc/parameters.hpp"
#include "support/errors.hpp"

namespace unicon::ftwc {
namespace {

// ----------------------------------------------------------- property

TEST(Premium, AllUpIsPremium) {
  EXPECT_TRUE(premium(Config{}, 4));
}

TEST(Premium, OneSubClusterSuffices) {
  Config c;
  c.failed_right = 4;
  c.sw_right_up = false;
  c.backbone_up = false;
  EXPECT_TRUE(premium(c, 4));  // left cluster complete behind its switch
}

TEST(Premium, SwitchFailureDisconnectsItsCluster) {
  Config c;
  c.sw_left_up = false;  // left cluster unreachable; right is complete
  EXPECT_TRUE(premium(c, 4));
  c.sw_right_up = false;
  EXPECT_FALSE(premium(c, 4));
}

TEST(Premium, BackbonePoolsBothClusters) {
  Config c;
  c.failed_left = 2;
  c.failed_right = 2;
  EXPECT_TRUE(premium(c, 4));  // 2 + 2 = 4 via the backbone
  c.backbone_up = false;
  EXPECT_FALSE(premium(c, 4));
}

TEST(Premium, CountsMustReachN) {
  Config c;
  c.failed_left = 1;
  c.failed_right = 4;
  EXPECT_FALSE(premium(c, 4));  // 3 + 0 < 4
  c.failed_right = 3;
  EXPECT_TRUE(premium(c, 4));  // 3 + 1 = 4
}

TEST(Premium, QualityLevelsAreMonotone) {
  Config c;
  c.failed_left = 2;
  c.failed_right = 1;
  for (unsigned k = 1; k < 8; ++k) {
    if (!quality(c, 8, k)) {
      // Once a level fails, all higher levels fail as well.
      for (unsigned j = k; j <= 8; ++j) EXPECT_FALSE(quality(c, 8, j));
      break;
    }
  }
  EXPECT_TRUE(quality(c, 8, 1));
  EXPECT_TRUE(premium(Config{}, 8));
  EXPECT_EQ(premium(c, 8), quality(c, 8, 8));
}

TEST(Parameters, RatesMatchFigure1) {
  const Parameters p;
  EXPECT_DOUBLE_EQ(p.fail_rate(Component::WsLeft), 1.0 / 500.0);
  EXPECT_DOUBLE_EQ(p.fail_rate(Component::SwRight), 1.0 / 4000.0);
  EXPECT_DOUBLE_EQ(p.fail_rate(Component::Backbone), 1.0 / 5000.0);
  EXPECT_DOUBLE_EQ(p.repair_rate(Component::WsRight), 2.0);
  EXPECT_DOUBLE_EQ(p.repair_rate(Component::SwLeft), 0.25);
  EXPECT_DOUBLE_EQ(p.repair_rate(Component::Backbone), 0.125);
}

TEST(Parameters, Tags) {
  EXPECT_STREQ(tag(Component::WsLeft), "wsL");
  EXPECT_STREQ(tag(Component::Backbone), "bb");
}

// ----------------------------------------------------- direct generator

TEST(Direct, SmallInstanceBasics) {
  Parameters params;
  params.n = 1;
  const DirectResult r = build_direct(params);
  EXPECT_GT(r.uimc.num_states(), 10u);
  EXPECT_TRUE(r.uimc.is_uniform(UniformityView::Closed, 1e-9));
  EXPECT_GT(r.uniform_rate, 2.0);  // dominated by the ws repair rate
  EXPECT_LT(r.uniform_rate, 2.2);
  ASSERT_EQ(r.goal.size(), r.uimc.num_states());
  ASSERT_EQ(r.configs.size(), r.uimc.num_states());
  // Initial state: everything up -> premium.
  EXPECT_FALSE(r.goal[r.uimc.initial()]);
}

TEST(Direct, GoalMatchesPremiumPredicate) {
  Parameters params;
  params.n = 2;
  const DirectResult r = build_direct(params);
  for (StateId s = 0; s < r.uimc.num_states(); ++s) {
    EXPECT_EQ(r.goal[s], !premium(r.configs[s], params.n));
  }
}

TEST(Direct, InteractiveStatesHaveNoMarkovTransitions) {
  Parameters params;
  params.n = 2;
  const DirectResult r = build_direct(params);
  for (StateId s = 0; s < r.uimc.num_states(); ++s) {
    if (r.uimc.has_interactive(s)) {
      EXPECT_FALSE(r.uimc.has_markov(s));
    }
  }
}

TEST(Direct, StateCountGrowsQuadratically) {
  Parameters params;
  params.n = 2;
  const std::size_t n2 = build_direct(params).uimc.num_states();
  params.n = 4;
  const std::size_t n4 = build_direct(params).uimc.num_states();
  EXPECT_GT(n4, 2 * n2);
  EXPECT_LT(n4, 10 * n2);
}

TEST(Direct, WithoutReleaseIsSmaller) {
  Parameters with;
  with.n = 2;
  Parameters without = with;
  without.with_release = false;
  EXPECT_GT(build_direct(with).uimc.num_states(), build_direct(without).uimc.num_states());
}

TEST(Direct, ReleaseVariantsAgreeOnWorstCase) {
  // The release handshake is instantaneous; it must not change the
  // worst-case probability.
  Parameters with;
  with.n = 1;
  Parameters without = with;
  without.with_release = false;
  const auto a = build_direct(with);
  const auto b = build_direct(without);
  for (double t : {20.0, 100.0}) {
    const double pa = analyze_timed_reachability(a.uimc, a.goal, t).value;
    const double pb = analyze_timed_reachability(b.uimc, b.goal, t).value;
    EXPECT_NEAR(pa, pb, 1e-6) << t;
  }
}

TEST(Direct, RecordNamesProducesParsableTuples) {
  Parameters params;
  params.n = 1;
  const DirectResult r = build_direct(params, /*record_names=*/true);
  EXPECT_EQ(r.uimc.state_name(r.uimc.initial()), "(0,0,o,o,o,idle)");
}

// ------------------------------------- Table 1 structural reproduction

struct Table1Row {
  unsigned n;
  std::size_t inter_states, markov_states, inter_trans, markov_trans;
};

class Table1Pin : public ::testing::TestWithParam<Table1Row> {};

TEST_P(Table1Pin, AlternatingImcSizesMatchThePaperExactly) {
  // The paper's Table 1 columns 2-5 for the alternating uIMC.  These are
  // structural invariants of the FTWC semantics; any drift in the
  // generator, the urgency cut or the uniformization breaks this pin.
  const Table1Row expected = GetParam();
  Parameters params;
  params.n = expected.n;
  const DirectResult r = build_direct(params);

  std::size_t inter_states = 0, markov_states = 0;
  for (StateId s = 0; s < r.uimc.num_states(); ++s) {
    if (r.uimc.has_interactive(s)) {
      ++inter_states;
    } else if (r.uimc.has_markov(s)) {
      ++markov_states;
    }
  }
  EXPECT_EQ(inter_states, expected.inter_states);
  EXPECT_EQ(markov_states, expected.markov_states);
  EXPECT_EQ(r.uimc.num_interactive_transitions(), expected.inter_trans);
  EXPECT_EQ(r.uimc.num_markov_transitions(), expected.markov_trans);
}

INSTANTIATE_TEST_SUITE_P(PaperRows, Table1Pin,
                         ::testing::Values(Table1Row{1, 110, 81, 155, 324},
                                           Table1Row{2, 274, 205, 403, 920},
                                           Table1Row{4, 818, 621, 1235, 3000},
                                           Table1Row{8, 2770, 2125, 4243, 10712}));

// --------------------------------------------------- CTMC (Gamma) model

TEST(CtmcVariant, BasicShape) {
  Parameters params;
  params.n = 1;
  const CtmcResult r = build_ctmc_variant(params);
  EXPECT_GT(r.ctmc.num_states(), 10u);
  EXPECT_EQ(r.goal.size(), r.ctmc.num_states());
  EXPECT_FALSE(r.goal[r.ctmc.initial()]);
}

TEST(CtmcVariant, RejectsBadParameters) {
  Parameters params;
  params.n = 0;
  EXPECT_THROW(build_ctmc_variant(params), ModelError);
  params.n = 1;
  params.decision_rate = 0.0;
  EXPECT_THROW(build_ctmc_variant(params), ModelError);
}

class CtmcOverestimation : public ::testing::TestWithParam<double> {};

TEST_P(CtmcOverestimation, CtmcIsAboveCtmdpWorstCase) {
  // The paper's headline observation (Fig. 4): the Gamma-race CTMC
  // overestimates the faithful worst case.
  const double t = GetParam();
  Parameters params;
  params.n = 2;
  const auto faithful = build_direct(params);
  const auto approx = build_ctmc_variant(params);

  const double worst = analyze_timed_reachability(faithful.uimc, faithful.goal, t).value;
  const double ctmc =
      timed_reachability(approx.ctmc, approx.goal, t, TransientOptions{1e-6})
          .probabilities[approx.ctmc.initial()];
  EXPECT_GE(ctmc, worst - 1e-7) << "t=" << t;
}

INSTANTIATE_TEST_SUITE_P(Horizons, CtmcOverestimation,
                         ::testing::Values(10.0, 100.0, 1000.0));

TEST(CtmcVariant, OverestimationShrinksWithFasterDecisions) {
  // As Gamma grows the race approximates the urgent nondeterministic
  // decision better, so the gap to the CTMDP worst case shrinks (it never
  // vanishes: the nondeterministic model has no race at all).
  Parameters params;
  params.n = 2;
  const auto faithful = build_direct(params);
  const double t = 500.0;
  const double worst = analyze_timed_reachability(faithful.uimc, faithful.goal, t).value;

  double previous_gap = 1.0;
  for (double gamma : {20.0, 100.0, 500.0}) {
    Parameters variant = params;
    variant.decision_rate = gamma;
    const auto approx = build_ctmc_variant(variant);
    const double p = timed_reachability(approx.ctmc, approx.goal, t, TransientOptions{1e-8})
                         .probabilities[approx.ctmc.initial()];
    const double gap = p - worst;
    EXPECT_GT(gap, -1e-7) << gamma;   // still an overestimate
    EXPECT_LT(gap, previous_gap + 1e-9) << gamma;  // and shrinking
    previous_gap = gap;
  }
}

TEST(Direct, QualityGoalsAreMonotoneInLevel) {
  // Lower quality thresholds are easier to keep: P(lose quality k within
  // t) decreases as k decreases.
  Parameters params;
  params.n = 4;
  const DirectResult r = build_direct(params);
  double prev = -1.0;
  for (unsigned k : {1u, 2u, 3u, 4u}) {
    std::vector<bool> goal(r.uimc.num_states());
    for (StateId s = 0; s < r.uimc.num_states(); ++s) {
      goal[s] = !quality(r.configs[s], params.n, k);
    }
    const double p = analyze_timed_reachability(r.uimc, goal, 1000.0).value;
    EXPECT_GE(p + 1e-9, prev) << "k=" << k;
    prev = p;
  }
}

TEST(Direct, ExitRatesOfMarkovStatesEqualUniformRate) {
  Parameters params;
  params.n = 2;
  const DirectResult r = build_direct(params);
  for (StateId s = 0; s < r.uimc.num_states(); ++s) {
    if (!r.uimc.has_interactive(s)) {
      EXPECT_NEAR(r.uimc.exit_rate(s), r.uniform_rate, 1e-9) << s;
    }
  }
}

// ---------------------------------------------------- compositional path

TEST(Compositional, ComponentImcIsUniform) {
  auto actions = std::make_shared<ActionTable>();
  const Parameters params;
  const Imc ws = component_imc(Component::WsLeft, params, actions);
  EXPECT_TRUE(ws.is_uniform(UniformityView::Open, 1e-9));
  EXPECT_NEAR(*ws.uniform_rate(UniformityView::Open, 1e-9),
              params.ws_fail + params.ws_repair, 1e-12);
}

TEST(Compositional, RepairUnitShape) {
  auto actions = std::make_shared<ActionTable>();
  const Lts ru = repair_unit_lts(actions);
  EXPECT_EQ(ru.num_states(), 6u);
  EXPECT_EQ(ru.num_transitions(), 10u);
}

TEST(Compositional, BuildsUniformModel) {
  Parameters params;
  params.n = 1;
  const CompositionalResult r = build_compositional(params);
  EXPECT_TRUE(r.uimc.is_uniform(UniformityView::Closed, 1e-6));
  EXPECT_GT(r.uniform_rate, 0.0);
  EXPECT_EQ(r.goal.size(), r.uimc.num_states());
  EXPECT_FALSE(r.goal[r.uimc.initial()]);
  EXPECT_FALSE(r.stages.empty());
}

TEST(Compositional, MinimizationShrinksStages) {
  Parameters params;
  params.n = 2;
  CompositionalOptions with;
  CompositionalOptions without;
  without.minimize = false;
  const auto small = build_compositional(params, with);
  const auto large = build_compositional(params, without);
  EXPECT_LE(small.uimc.num_states(), large.uimc.num_states());
}

TEST(Compositional, ParseConfigRoundTrip) {
  const Config c = parse_config("(2,0,o,d,o,idle)", 4);
  EXPECT_EQ(c.failed_left, 2u);
  EXPECT_EQ(c.failed_right, 0u);
  EXPECT_TRUE(c.sw_left_up);
  EXPECT_FALSE(c.sw_right_up);
  EXPECT_TRUE(c.backbone_up);
  EXPECT_THROW(parse_config("(1,2)", 4), ModelError);
  EXPECT_THROW(parse_config("(9,0,o,o,o,idle)", 4), ModelError);
}

class RouteAgreement : public ::testing::TestWithParam<std::tuple<unsigned, double>> {};

TEST_P(RouteAgreement, CompositionalAndDirectAgree) {
  // The two construction routes model the same system ("equivalent models
  // ... up to uniformity", Sec. 5); worst-case probabilities must agree.
  const auto [n, t] = GetParam();
  Parameters params;
  params.n = n;
  const auto direct = build_direct(params);
  const auto comp = build_compositional(params);

  UimcAnalysisOptions options;
  options.reachability.epsilon = 1e-8;
  const double via_direct = analyze_timed_reachability(direct.uimc, direct.goal, t, options).value;
  const double via_comp = analyze_timed_reachability(comp.uimc, comp.goal, t, options).value;
  EXPECT_NEAR(via_direct, via_comp, 1e-5) << "n=" << n << " t=" << t;
}

INSTANTIATE_TEST_SUITE_P(SmallInstances, RouteAgreement,
                         ::testing::Combine(::testing::Values(1u, 2u),
                                            ::testing::Values(50.0, 200.0)));

}  // namespace
}  // namespace unicon::ftwc
