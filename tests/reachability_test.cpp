#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <limits>

#include "ctmc/transient.hpp"
#include "ctmdp/reachability.hpp"
#include "support/errors.hpp"
#include "support/rng.hpp"
#include "testing/generate.hpp"
#include "test_util.hpp"

namespace unicon {
namespace {

/// Deterministic single-path model: 0 --rate--> 1 (goal self-loops at the
/// same rate to stay uniform).
Ctmdp single_path(double rate) {
  CtmdpBuilder b;
  b.ensure_states(2);
  b.set_initial(0);
  b.begin_transition(0, "go");
  b.add_rate(1, rate);
  b.begin_transition(1, "stay");
  b.add_rate(1, rate);
  return b.build();
}

/// State 0 chooses between a direct route to the goal (rate mass split
/// toward goal 2) and a detour; uniform rate 4.
Ctmdp choice_model() {
  CtmdpBuilder b;
  b.ensure_states(3);
  b.set_initial(0);
  b.begin_transition(0, "good");  // hits the goal with prob 3/4 per step
  b.add_rate(2, 3.0);
  b.add_rate(1, 1.0);
  b.begin_transition(0, "bad");  // never hits the goal directly
  b.add_rate(1, 4.0);
  b.begin_transition(1, "back");
  b.add_rate(0, 4.0);
  b.begin_transition(2, "stay");
  b.add_rate(2, 4.0);
  return b.build();
}

TEST(TimedReachability, ExponentialSingleStep) {
  const Ctmdp c = single_path(0.5);
  const std::vector<bool> goal{false, true};
  for (double t : {0.5, 2.0, 8.0}) {
    const auto r = timed_reachability(c, goal, t, {.epsilon = 1e-9});
    EXPECT_NEAR(r.values[0], 1.0 - std::exp(-0.5 * t), 1e-7) << t;
    EXPECT_DOUBLE_EQ(r.values[1], 1.0);
  }
}

TEST(TimedReachability, NonUniformModelRejected) {
  CtmdpBuilder b;
  b.ensure_states(2);
  b.begin_transition(0, "a");
  b.add_rate(1, 1.0);
  b.begin_transition(1, "b");
  b.add_rate(0, 7.0);
  EXPECT_THROW(timed_reachability(b.build(), {false, true}, 1.0), UniformityError);
}

TEST(TimedReachability, InputValidation) {
  const Ctmdp c = single_path(1.0);
  EXPECT_THROW(timed_reachability(c, {true}, 1.0), ModelError);
  EXPECT_THROW(timed_reachability(c, {false, true}, -2.0), ModelError);
}

TEST(TimedReachability, MaxPicksTheBetterTransition) {
  const Ctmdp c = choice_model();
  const std::vector<bool> goal{false, false, true};
  TimedReachabilityOptions options;
  options.epsilon = 1e-9;
  options.extract_scheduler = true;
  const auto max_r = timed_reachability(c, goal, 1.0, options);
  options.objective = Objective::Minimize;
  const auto min_r = timed_reachability(c, goal, 1.0, options);
  EXPECT_GT(max_r.values[0], min_r.values[0] + 0.1);
  // The min scheduler can avoid the goal entirely via "bad".
  EXPECT_NEAR(min_r.values[0], 0.0, 1e-9);
  // The max scheduler's first decision in state 0 is transition 0 ("good").
  EXPECT_EQ(max_r.initial_decision[0], 0u);
  EXPECT_EQ(min_r.initial_decision[0], 1u);
  EXPECT_EQ(max_r.initial_decision[2], kNoTransition);  // goal state
}

TEST(TimedReachability, MaxEqualsCtmcForDeterministicModels) {
  const Ctmdp c = single_path(2.0);
  const Ctmc chain = testutil::ctmc_from_deterministic_ctmdp(c);
  const std::vector<bool> goal{false, true};
  for (double t : {0.3, 1.0, 4.0}) {
    const auto mdp = timed_reachability(c, goal, t, {.epsilon = 1e-9});
    const auto ctmc = timed_reachability(chain, goal, t, TransientOptions{1e-9});
    EXPECT_NEAR(mdp.values[0], ctmc.probabilities[0], 1e-7);
  }
}

TEST(TimedReachability, GoalStatesReportOne) {
  const Ctmdp c = single_path(1.0);
  const auto r = timed_reachability(c, {true, false}, 0.5);
  EXPECT_DOUBLE_EQ(r.values[0], 1.0);
}

TEST(TimedReachability, TimeZeroOnlyGoalStatesCount) {
  const Ctmdp c = choice_model();
  const auto r = timed_reachability(c, {false, false, true}, 0.0);
  EXPECT_DOUBLE_EQ(r.values[0], 0.0);
  EXPECT_DOUBLE_EQ(r.values[2], 1.0);
  EXPECT_EQ(r.iterations_planned, 0u);
}

TEST(TimedReachability, MonotoneInTime) {
  const Ctmdp c = choice_model();
  const std::vector<bool> goal{false, false, true};
  double prev = -1.0;
  for (double t : {0.1, 0.5, 1.0, 3.0, 10.0}) {
    const double p = timed_reachability(c, goal, t).values[0];
    EXPECT_GE(p + 1e-9, prev);
    prev = p;
  }
}

TEST(TimedReachability, IterationCountsReported) {
  const Ctmdp c = single_path(2.0);
  const auto r =
      timed_reachability(c, {false, true}, 10.0, {.epsilon = 1e-6, .locking = false});
  EXPECT_EQ(r.iterations_planned, r.iterations_executed);
  EXPECT_GT(r.iterations_planned, 20u);  // lambda = 20
  EXPECT_DOUBLE_EQ(r.uniform_rate, 2.0);
  EXPECT_DOUBLE_EQ(r.lambda, 20.0);
  EXPECT_FALSE(r.exact_fixpoint);
  // With locking (the default) the same solve may break at the exact
  // fixpoint below the window: bit-identical values, fewer sweeps.
  const auto locked = timed_reachability(c, {false, true}, 10.0, {.epsilon = 1e-6});
  EXPECT_EQ(locked.iterations_planned, r.iterations_planned);
  EXPECT_LE(locked.iterations_executed, r.iterations_executed);
  EXPECT_EQ(locked.values, r.values);
}

TEST(TimedReachability, EarlyTerminationMatchesFullRun) {
  const Ctmdp c = choice_model();
  const std::vector<bool> goal{false, false, true};
  TimedReachabilityOptions options;
  options.epsilon = 1e-7;
  const auto full = timed_reachability(c, goal, 50.0, options);
  options.early_termination = true;
  const auto early = timed_reachability(c, goal, 50.0, options);
  EXPECT_LE(early.iterations_executed, full.iterations_executed);
  EXPECT_NEAR(full.values[0], early.values[0], 1e-6);
  EXPECT_NEAR(full.values[1], early.values[1], 1e-6);
}

TEST(TimedReachability, EarlyTerminationAgreesWithinDelta) {
  // With a tight convergence delta the early-terminated run agrees with the
  // full run far below the truncation precision: the residual error is the
  // remaining Poisson mass times the converged delta.
  const Ctmdp c = choice_model();
  const std::vector<bool> goal{false, false, true};
  TimedReachabilityOptions options;
  options.epsilon = 1e-9;
  const auto full = timed_reachability(c, goal, 80.0, options);
  options.early_termination = true;
  options.early_termination_delta = 1e-12;
  const auto early = timed_reachability(c, goal, 80.0, options);
  EXPECT_LT(early.iterations_executed, full.iterations_executed);
  for (StateId s = 0; s < c.num_states(); ++s) {
    EXPECT_NEAR(full.values[s], early.values[s], 1e-9) << s;
  }
}

TEST(TimedReachability, FullDecisionTableRecorded) {
  const Ctmdp c = choice_model();
  TimedReachabilityOptions options;
  options.extract_scheduler = true;
  const auto r = timed_reachability(c, {false, false, true}, 1.0, options);
  ASSERT_EQ(r.decisions.size(), r.iterations_planned);
  // Decisions at the final step equal the reported initial decision.
  EXPECT_EQ(r.decisions.front(), r.initial_decision);
}

TEST(TimedReachability, TransitionlessStateHasValueZero) {
  CtmdpBuilder b;
  b.ensure_states(3);
  b.set_initial(0);
  b.begin_transition(0, "go");
  b.add_rate(1, 1.0);
  // state 1: no transitions (absorbing, non-goal); state 2 goal.
  const Ctmdp c = b.build();
  const auto r = timed_reachability(c, {false, false, true}, 5.0);
  EXPECT_DOUBLE_EQ(r.values[1], 0.0);
  EXPECT_DOUBLE_EQ(r.values[0], 0.0);
}

// ------------------ truncation provider & locking (DESIGN.md Sec. 14)

/// Fast-absorbing drift model (uniform rate 4): every state feeds the
/// absorbing goal at rate 3 and the next state at rate 1, so the survival
/// probability contracts geometrically per uniformized jump and the
/// Lyapunov certificate fires within a few dozen below-window sweeps.
Ctmdp drift_model(std::size_t n) {
  CtmdpBuilder b;
  b.ensure_states(n);
  b.set_initial(0);
  const StateId goal = static_cast<StateId>(n - 1);
  for (StateId s = 0; s + 1 < n; ++s) {
    b.begin_transition(s, "a");
    b.add_rate(goal, 3.0);
    b.add_rate(std::min<StateId>(s + 1, goal), 1.0);
    b.begin_transition(s, "b");
    b.add_rate(goal, 2.5);
    b.add_rate(std::min<StateId>(s + 1, goal), 1.5);
  }
  return b.build();
}

BitVector last_state_goal(std::size_t n) {
  BitVector goal(n);
  goal.set(n - 1);
  return goal;
}

TEST(Truncation, LyapunovMatchesFoxGlynnWithinEpsilon) {
  const Ctmdp c = drift_model(20);
  const BitVector goal = last_state_goal(c.num_states());
  const double t = 50.0;  // lambda = 200: left > 1 but below the auto gate

  TimedReachabilityOptions exact;
  exact.epsilon = 1e-12;
  exact.truncation = Truncation::FoxGlynn;
  exact.locking = false;
  const auto reference = timed_reachability(c, goal, t, exact);

  // Locking off on both sides so the comparison isolates the provider (the
  // exact-fixpoint break would otherwise stop the Fox-Glynn run early too).
  TimedReachabilityOptions fox;
  fox.truncation = Truncation::FoxGlynn;
  fox.locking = false;
  const auto fox_run = timed_reachability(c, goal, t, fox);
  EXPECT_EQ(fox_run.truncation, Truncation::FoxGlynn);
  EXPECT_EQ(fox_run.k_lyapunov, 0u);
  EXPECT_EQ(fox_run.iterations_executed, fox_run.iterations_planned);

  TimedReachabilityOptions lyap = fox;
  lyap.truncation = Truncation::Lyapunov;
  const auto lyap_run = timed_reachability(c, goal, t, lyap);
  EXPECT_EQ(lyap_run.truncation, Truncation::Lyapunov);
  EXPECT_GT(lyap_run.k_lyapunov, 0u);
  EXPECT_LT(lyap_run.iterations_executed, fox_run.iterations_executed);

  // Both providers stay within the shared 1e-6 budget of the converged
  // answer: the certificate's forfeited tail is part of the epsilon split,
  // not an extra error term.
  for (StateId s = 0; s < c.num_states(); ++s) {
    EXPECT_NEAR(fox_run.values[s], reference.values[s], 1e-6) << s;
    EXPECT_NEAR(lyap_run.values[s], reference.values[s], 1e-6) << s;
  }
}

TEST(Truncation, AutoEngagesOnlyOnLongHorizons) {
  const Ctmdp c = drift_model(20);
  const BitVector goal = last_state_goal(c.num_states());

  // Short horizon (lambda = 8): auto resolves to Fox-Glynn and the whole
  // solve is bit-identical to an explicit Fox-Glynn request.
  TimedReachabilityOptions fox;
  fox.truncation = Truncation::FoxGlynn;
  TimedReachabilityOptions aut;
  aut.truncation = Truncation::Auto;
  const auto fox_short = timed_reachability(c, goal, 2.0, fox);
  const auto auto_short = timed_reachability(c, goal, 2.0, aut);
  EXPECT_EQ(auto_short.truncation, Truncation::FoxGlynn);
  EXPECT_EQ(auto_short.values, fox_short.values);
  EXPECT_EQ(auto_short.iterations_executed, fox_short.iterations_executed);

  // Long horizon (lambda = 1600, window left > 1024): auto engages the
  // certificate, stops early, and still agrees within the combined budget.
  const double t = 400.0;
  const auto auto_long = timed_reachability(c, goal, t, aut);
  EXPECT_EQ(auto_long.truncation, Truncation::Lyapunov);
  EXPECT_GT(auto_long.k_lyapunov, 0u);
  EXPECT_LT(auto_long.iterations_executed, auto_long.iterations_planned);
  const auto fox_long = timed_reachability(c, goal, t, fox);
  for (StateId s = 0; s < c.num_states(); ++s) {
    EXPECT_NEAR(auto_long.values[s], fox_long.values[s], 2e-6) << s;
  }
}

TEST(Truncation, CtmcCertificateMatchesFoxGlynn) {
  CtmcBuilder b(20);
  const StateId last = 19;
  for (StateId s = 0; s < last; ++s) {
    b.add_transition(s, 3.0, last);
    b.add_transition(s, 1.0, std::min<StateId>(s + 1, last));
  }
  b.set_initial(0);
  const Ctmc chain = b.build();
  const BitVector goal = last_state_goal(20);
  const double t = 50.0;  // lambda = 200

  TransientOptions fox;
  fox.truncation = Truncation::FoxGlynn;
  fox.locking = false;
  const auto fox_run = timed_reachability(chain, goal, t, fox);
  EXPECT_EQ(fox_run.truncation, Truncation::FoxGlynn);
  EXPECT_EQ(fox_run.k_lyapunov, 0u);

  TransientOptions lyap = fox;
  lyap.truncation = Truncation::Lyapunov;
  const auto lyap_run = timed_reachability(chain, goal, t, lyap);
  EXPECT_EQ(lyap_run.truncation, Truncation::Lyapunov);
  EXPECT_GT(lyap_run.k_lyapunov, 0u);
  EXPECT_LT(lyap_run.iterations_executed, fox_run.iterations_executed);
  for (StateId s = 0; s < chain.num_states(); ++s) {
    EXPECT_NEAR(lyap_run.probabilities[s], fox_run.probabilities[s], 2e-6) << s;
  }
}

TEST(Truncation, EarlyTerminationWithLockingKeepsResidualSound) {
  // The three error sources — truncation epsilon, the certificate's
  // forfeited tail and the early-termination delta — must all be covered
  // by the reported residual_bound, with locking on.
  const Ctmdp c = drift_model(20);
  const BitVector goal = last_state_goal(c.num_states());
  const double t = 400.0;

  TimedReachabilityOptions exact;
  exact.epsilon = 1e-12;
  exact.truncation = Truncation::FoxGlynn;
  exact.locking = false;
  const auto reference = timed_reachability(c, goal, t, exact);

  for (const Truncation mode : {Truncation::FoxGlynn, Truncation::Auto}) {
    TimedReachabilityOptions options;
    options.truncation = mode;
    options.early_termination = true;
    options.early_termination_delta = 1e-9;
    const auto run = timed_reachability(c, goal, t, options);
    ASSERT_EQ(run.status, RunStatus::Converged);
    // The bound reports the error actually accounted for — for an engaged
    // plan the window half plus the certified stop error, which can land
    // below the requested epsilon — but never exceeds the total budget.
    EXPECT_GT(run.residual_bound, 0.0) << truncation_name(mode);
    EXPECT_LE(run.residual_bound,
              options.epsilon + options.early_termination_delta)
        << truncation_name(mode);
    for (StateId s = 0; s < c.num_states(); ++s) {
      EXPECT_LE(std::fabs(run.values[s] - reference.values[s]), run.residual_bound + 1e-12)
          << truncation_name(mode) << " state " << s;
    }
  }
}

TEST(GuardedReachability, ResumeWithCertificateAndLockingIsBitIdentical) {
  // Long horizon: the auto plan engages the certificate (lambda = 1600)
  // and locking is on.  A cancel mid-sweep must leave a resumable iterate
  // that reproduces the uninterrupted run bit-for-bit — the resume replays
  // the survival series so every stop decision lands on the same step.
  const Ctmdp c = drift_model(20);
  const BitVector goal = last_state_goal(c.num_states());
  const double t = 400.0;
  const TimedReachabilityOptions options;  // auto truncation + locking
  const auto reference = timed_reachability(c, goal, t, options);
  ASSERT_EQ(reference.truncation, Truncation::Lyapunov);
  ASSERT_LT(reference.iterations_executed, reference.iterations_planned);

  for (const std::uint64_t stop_at :
       {std::uint64_t{3}, reference.iterations_executed / 2,
        reference.iterations_executed - 1}) {
    RunGuard guard;
    guard.cancel_after_polls(stop_at);
    TimedReachabilityOptions guarded = options;
    guarded.guard = &guard;
    const auto partial = timed_reachability(c, goal, t, guarded);
    ASSERT_EQ(partial.status, RunStatus::Cancelled) << stop_at;
    ASSERT_FALSE(partial.iterate.empty());

    TimedReachabilityOptions resume_options = options;
    resume_options.resume = &partial;
    const auto resumed = timed_reachability(c, goal, t, resume_options);
    ASSERT_EQ(resumed.status, RunStatus::Converged) << stop_at;
    EXPECT_EQ(resumed.values, reference.values) << stop_at;
    EXPECT_EQ(resumed.truncation, reference.truncation) << stop_at;
  }
}

TEST(GuardedReachability, CheckpointObserverKeepsLockedSweepBitIdentical) {
  // Publishing a checkpoint drops the locked set (the published iterate
  // must be a trustworthy full vector and external writes may invalidate
  // the frozen twin buffer).  A pure observer must therefore slow the
  // sweep down at most — never change the values.
  const Ctmdp c = drift_model(20);
  const BitVector goal = last_state_goal(c.num_states());
  const double t = 400.0;
  const TimedReachabilityOptions options;
  const auto reference = timed_reachability(c, goal, t, options);

  RunGuard guard;
  std::uint64_t checkpoints = 0;
  guard.set_checkpoint([&](const RunCheckpoint&) { ++checkpoints; }, /*stride=*/7);
  TimedReachabilityOptions observed = options;
  observed.guard = &guard;
  const auto run = timed_reachability(c, goal, t, observed);
  ASSERT_EQ(run.status, RunStatus::Converged);
  EXPECT_GT(checkpoints, 0u);
  EXPECT_EQ(run.values, reference.values);
  EXPECT_EQ(run.truncation, reference.truncation);
}

// ------------------------------------------------- constrained (until)

TEST(UntilReachability, AvoidBlocksIndirectRoute) {
  // 0 can reach goal 2 only through 1; forbidding 1 pins the value to 0.
  CtmdpBuilder b;
  b.ensure_states(3);
  b.set_initial(0);
  b.begin_transition(0, "step");
  b.add_rate(1, 2.0);
  b.begin_transition(1, "step");
  b.add_rate(2, 2.0);
  b.begin_transition(2, "stay");
  b.add_rate(2, 2.0);
  const Ctmdp c = b.build();
  const std::vector<bool> goal{false, false, true};

  TimedReachabilityOptions options;
  const double unconstrained = timed_reachability(c, goal, 5.0, options).values[0];
  EXPECT_GT(unconstrained, 0.5);

  options.avoid = {false, true, false};
  const auto constrained = timed_reachability(c, goal, 5.0, options);
  EXPECT_DOUBLE_EQ(constrained.values[0], 0.0);
  EXPECT_DOUBLE_EQ(constrained.values[1], 0.0);
  EXPECT_DOUBLE_EQ(constrained.values[2], 1.0);
}

TEST(UntilReachability, GoalWinsOverAvoid) {
  const Ctmdp c = single_path(1.0);
  TimedReachabilityOptions options;
  options.avoid = {false, true};
  const auto r = timed_reachability(c, {false, true}, 2.0, options);
  EXPECT_DOUBLE_EQ(r.values[1], 1.0);
  EXPECT_GT(r.values[0], 0.5);
}

TEST(UntilReachability, AvoidSteersTheOptimalScheduler) {
  // With the direct route forbidden, the max scheduler must take "bad",
  // which never reaches the goal.
  const Ctmdp c = choice_model();
  TimedReachabilityOptions options;
  options.avoid = {false, false, false};
  const std::vector<bool> goal{false, false, true};
  const double free_route = timed_reachability(c, goal, 1.0, options).values[0];
  options.avoid = {false, true, false};  // forbid the detour state 1
  const double blocked = timed_reachability(c, goal, 1.0, options).values[0];
  // Forbidding state 1 removes the recycle path; the "good" transition's
  // goal mass remains available, so the value drops but stays positive.
  EXPECT_LT(blocked, free_route);
  EXPECT_GT(blocked, 0.0);
}

TEST(UntilReachability, SizeMismatchThrows) {
  const Ctmdp c = single_path(1.0);
  TimedReachabilityOptions options;
  options.avoid = {true};
  EXPECT_THROW(timed_reachability(c, {false, true}, 1.0, options), ModelError);
}

// ------------------------------------------------- scheduler evaluation

TEST(EvaluateScheduler, MatchesInducedCtmc) {
  const Ctmdp c = choice_model();
  const std::vector<bool> goal{false, false, true};
  for (std::uint64_t pick : {0u, 1u}) {
    const std::vector<std::uint64_t> choice{pick, 2, 3};
    const auto eval = evaluate_scheduler(c, goal, 2.0, choice, {.epsilon = 1e-9});
    const Ctmc induced = testutil::induced_ctmc(c, choice);
    const auto ctmc = timed_reachability(induced, goal, 2.0, TransientOptions{1e-9});
    EXPECT_NEAR(eval.values[0], ctmc.probabilities[0], 1e-7) << "pick=" << pick;
  }
}

TEST(EvaluateScheduler, BadChoiceThrows) {
  const Ctmdp c = choice_model();
  const std::vector<bool> goal{false, false, true};
  EXPECT_THROW(evaluate_scheduler(c, goal, 1.0, {5, 2, 3}), ModelError);
  EXPECT_THROW(evaluate_scheduler(c, goal, 1.0, {0}), ModelError);
}

class SchedulerDominance : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(SchedulerDominance, OptimumDominatesRandomStationarySchedulers) {
  // sup over all schedulers >= any stationary scheduler >= inf.
  Rng rng(GetParam());
  const Ctmdp c = choice_model();
  const std::vector<bool> goal{false, false, true};
  const double t = 0.7;
  const double sup = timed_reachability(c, goal, t).values[0];
  const double inf =
      timed_reachability(c, goal, t, {.objective = Objective::Minimize}).values[0];
  std::vector<std::uint64_t> choice{rng.next_below(2), 2, 3};
  const double fixed = evaluate_scheduler(c, goal, t, choice).values[0];
  EXPECT_LE(fixed, sup + 1e-9);
  EXPECT_GE(fixed, inf - 1e-9);
}

INSTANTIATE_TEST_SUITE_P(Seeds, SchedulerDominance, ::testing::Range<std::uint64_t>(0, 8));

TEST(TimedReachability, PrecisionScalesWithEpsilon) {
  const Ctmdp c = choice_model();
  const std::vector<bool> goal{false, false, true};
  const double exact =
      timed_reachability(c, goal, 2.0, {.epsilon = 1e-12}).values[0];
  for (double eps : {1e-3, 1e-6, 1e-9}) {
    const double approx = timed_reachability(c, goal, 2.0, {.epsilon = eps}).values[0];
    EXPECT_NEAR(approx, exact, eps) << eps;
  }
}

TEST(TimedReachability, SameActionDifferentRateFunctions) {
  // The "mild variation" of Def. 1: two transitions with the SAME action
  // but different rate functions are distinct scheduler choices.
  CtmdpBuilder b;
  b.ensure_states(3);
  b.set_initial(0);
  b.begin_transition(0, "a");
  b.add_rate(2, 2.0);  // straight to the goal
  b.begin_transition(0, "a");
  b.add_rate(1, 2.0);  // away from it
  b.begin_transition(1, "a");
  b.add_rate(1, 2.0);
  b.begin_transition(2, "a");
  b.add_rate(2, 2.0);
  const Ctmdp c = b.build();
  const std::vector<bool> goal{false, false, true};
  const double best = timed_reachability(c, goal, 1.0).values[0];
  const double worst =
      timed_reachability(c, goal, 1.0, {.objective = Objective::Minimize}).values[0];
  EXPECT_GT(best, 0.5);
  EXPECT_DOUBLE_EQ(worst, 0.0);
}

TEST(EvaluateScheduler, ExtractedSchedulerRoundTrip) {
  // The optimal decision in choice_model is time-independent, so evaluating
  // the extracted initial decision as a stationary scheduler reproduces the
  // maximal value within the truncation precision.
  const Ctmdp c = choice_model();
  const std::vector<bool> goal{false, false, true};
  TimedReachabilityOptions options;
  options.epsilon = 1e-9;
  options.extract_scheduler = true;
  for (double t : {0.4, 1.0, 3.0}) {
    const auto opt = timed_reachability(c, goal, t, options);
    const auto eval = evaluate_scheduler(c, goal, t, opt.initial_decision, options);
    for (StateId s = 0; s < c.num_states(); ++s) {
      EXPECT_NEAR(eval.values[s], opt.values[s], 1e-7) << "t=" << t << " s=" << s;
    }
  }
}

// ------------------------------------------------- edge-case models

TEST(TimedReachability, ZeroTransitionModelDoesNotCrash) {
  // A CTMDP without any transition used to derive a base pointer from
  // rates(0), one past the entry storage.  Uniform rate 0 means lambda 0.
  CtmdpBuilder b;
  b.ensure_states(3);
  b.set_initial(0);
  const Ctmdp c = b.build();
  const std::vector<bool> goal{false, true, false};

  const auto r = timed_reachability(c, goal, 5.0);
  EXPECT_DOUBLE_EQ(r.values[0], 0.0);
  EXPECT_DOUBLE_EQ(r.values[1], 1.0);
  EXPECT_EQ(r.iterations_planned, 0u);

  const auto v = step_bounded_reachability(c, goal, 7);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[1], 1.0);

  const auto eval = evaluate_scheduler(c, goal, 5.0, {kNoTransition, kNoTransition, kNoTransition});
  EXPECT_DOUBLE_EQ(eval.values[0], 0.0);
  EXPECT_DOUBLE_EQ(eval.values[1], 1.0);
}

TEST(TimedReachability, SingleStateModelsDoNotCrash) {
  for (bool is_goal : {false, true}) {
    CtmdpBuilder b;
    b.ensure_states(1);
    b.set_initial(0);
    const Ctmdp c = b.build();
    const auto r = timed_reachability(c, {is_goal}, 2.0);
    EXPECT_DOUBLE_EQ(r.values[0], is_goal ? 1.0 : 0.0);
    EXPECT_DOUBLE_EQ(step_bounded_reachability(c, {is_goal}, 3)[0], is_goal ? 1.0 : 0.0);
  }
  // Single state with a self-loop: never reaches a (nonexistent) goal.
  CtmdpBuilder b;
  b.ensure_states(1);
  b.begin_transition(0, "loop");
  b.add_rate(0, 1.5);
  const auto r = timed_reachability(b.build(), {false}, 2.0);
  EXPECT_DOUBLE_EQ(r.values[0], 0.0);
}

// ------------------------------------------------- parallel sweeps

TEST(TimedReachability, ParallelMatchesSerial) {
  const Ctmdp c = choice_model();
  const std::vector<bool> goal{false, false, true};
  for (double t : {0.5, 2.0, 20.0}) {
    TimedReachabilityOptions serial;
    serial.epsilon = 1e-9;
    serial.threads = 1;
    serial.extract_scheduler = true;
    TimedReachabilityOptions parallel = serial;
    parallel.threads = 4;
    const auto a = timed_reachability(c, goal, t, serial);
    const auto b = timed_reachability(c, goal, t, parallel);
    ASSERT_EQ(a.values.size(), b.values.size());
    for (StateId s = 0; s < c.num_states(); ++s) {
      EXPECT_NEAR(a.values[s], b.values[s], 1e-12) << "t=" << t << " s=" << s;
    }
    EXPECT_EQ(a.initial_decision, b.initial_decision);
    EXPECT_EQ(a.iterations_executed, b.iterations_executed);
  }
}

TEST(TimedReachability, ParallelMatchesSerialWithEarlyTermination) {
  const Ctmdp c = choice_model();
  const std::vector<bool> goal{false, false, true};
  TimedReachabilityOptions serial;
  serial.epsilon = 1e-7;
  serial.early_termination = true;
  serial.threads = 1;
  TimedReachabilityOptions parallel = serial;
  parallel.threads = 3;
  const auto a = timed_reachability(c, goal, 50.0, serial);
  const auto b = timed_reachability(c, goal, 50.0, parallel);
  // The delta is a max-reduction over disjoint slices, so the parallel run
  // terminates on exactly the same iteration with identical values.
  EXPECT_EQ(a.iterations_executed, b.iterations_executed);
  for (StateId s = 0; s < c.num_states(); ++s) {
    EXPECT_DOUBLE_EQ(a.values[s], b.values[s]) << s;
  }
}

TEST(EvaluateScheduler, ParallelMatchesSerial) {
  const Ctmdp c = choice_model();
  const std::vector<bool> goal{false, false, true};
  const std::vector<std::uint64_t> choice{0, 2, 3};
  TimedReachabilityOptions serial;
  serial.threads = 1;
  TimedReachabilityOptions parallel;
  parallel.threads = 4;
  const auto a = evaluate_scheduler(c, goal, 2.0, choice, serial);
  const auto b = evaluate_scheduler(c, goal, 2.0, choice, parallel);
  for (StateId s = 0; s < c.num_states(); ++s) {
    EXPECT_NEAR(a.values[s], b.values[s], 1e-12) << s;
  }
}

TEST(StepBounded, ParallelMatchesSerial) {
  const Ctmdp c = choice_model();
  const std::vector<bool> goal{false, false, true};
  const auto a = step_bounded_reachability(c, goal, 25, Objective::Maximize, 1);
  const auto b = step_bounded_reachability(c, goal, 25, Objective::Maximize, 4);
  for (StateId s = 0; s < c.num_states(); ++s) {
    EXPECT_NEAR(a[s], b[s], 1e-12) << s;
  }
}

// ------------------------------------------------- step-bounded variant

TEST(StepBounded, ZeroStepsIsGoalIndicator) {
  const Ctmdp c = choice_model();
  const auto v = step_bounded_reachability(c, {false, false, true}, 0);
  EXPECT_DOUBLE_EQ(v[0], 0.0);
  EXPECT_DOUBLE_EQ(v[2], 1.0);
}

TEST(StepBounded, OneStepIsBestSingleJumpProbability) {
  const Ctmdp c = choice_model();
  const auto v = step_bounded_reachability(c, {false, false, true}, 1);
  EXPECT_NEAR(v[0], 0.75, 1e-12);  // "good": 3 of 4 rate mass to the goal
  const auto w =
      step_bounded_reachability(c, {false, false, true}, 1, Objective::Minimize);
  EXPECT_DOUBLE_EQ(w[0], 0.0);  // "bad" avoids it
}

TEST(StepBounded, MonotoneInSteps) {
  const Ctmdp c = choice_model();
  double prev = -1.0;
  for (std::uint64_t k : {0u, 1u, 2u, 5u, 20u}) {
    const double p = step_bounded_reachability(c, {false, false, true}, k)[0];
    EXPECT_GE(p + 1e-12, prev);
    prev = p;
  }
}

TEST(StepBounded, ConvergesToUnboundedReachability) {
  const Ctmdp c = choice_model();
  const double p = step_bounded_reachability(c, {false, false, true}, 500)[0];
  EXPECT_NEAR(p, 1.0, 1e-9);  // max scheduler eventually reaches the goal
}

// --------------------------------------------------- execution control

TEST(GuardedReachability, IdleGuardIsBitIdenticalToUnguarded) {
  const Ctmdp c = choice_model();
  const std::vector<bool> goal{false, false, true};
  const auto plain = timed_reachability(c, goal, 2.0, {.epsilon = 1e-9});
  RunGuard guard;
  TimedReachabilityOptions options;
  options.epsilon = 1e-9;
  options.guard = &guard;
  const auto guarded = timed_reachability(c, goal, 2.0, options);
  ASSERT_EQ(guarded.status, RunStatus::Converged);
  ASSERT_EQ(guarded.values.size(), plain.values.size());
  for (std::size_t s = 0; s < plain.values.size(); ++s) {
    EXPECT_EQ(guarded.values[s], plain.values[s]) << s;  // exact, not NEAR
  }
  EXPECT_EQ(guard.polls(), plain.iterations_planned);
}

TEST(GuardedReachability, ThreadCountsAgreeBitIdentically) {
  Rng rng(11);
  const Ctmdp c = testing::random_uniform_ctmdp(rng);
  const auto goal = testing::random_goal(rng, c.num_states());
  TimedReachabilityOptions options;
  options.epsilon = 1e-9;
  options.threads = 1;
  const auto serial = timed_reachability(c, goal, 1.5, options);
  options.threads = 4;
  const auto parallel = timed_reachability(c, goal, 1.5, options);
  for (std::size_t s = 0; s < serial.values.size(); ++s) {
    EXPECT_EQ(serial.values[s], parallel.values[s]) << s;
  }
}

TEST(GuardedReachability, CancelYieldsSoundPartialAndBitIdenticalResume) {
  Rng rng(23);
  const Ctmdp c = testing::random_uniform_ctmdp(rng);
  const auto goal = testing::random_goal(rng, c.num_states());
  const double t = 2.0;
  TimedReachabilityOptions options;
  options.epsilon = 1e-10;
  const auto reference = timed_reachability(c, goal, t, options);
  ASSERT_GT(reference.iterations_planned, 4u);

  for (const std::uint64_t stop_at :
       {std::uint64_t{1}, reference.iterations_planned / 2, reference.iterations_planned}) {
    RunGuard guard;
    guard.cancel_after_polls(stop_at);
    options.guard = &guard;
    const auto partial = timed_reachability(c, goal, t, options);
    ASSERT_EQ(partial.status, RunStatus::Cancelled) << stop_at;
    ASSERT_FALSE(partial.iterate.empty());
    EXPECT_LT(partial.iterations_executed, partial.iterations_planned);
    // Soundness: the reported values deviate from the converged answer by
    // no more than the advertised residual bound.
    for (std::size_t s = 0; s < reference.values.size(); ++s) {
      EXPECT_LE(std::fabs(partial.values[s] - reference.values[s]),
                partial.residual_bound + 1e-12)
          << "state " << s << " stop " << stop_at;
    }
    // Resume: continuing from the partial iterate reproduces the reference
    // bit-for-bit.
    TimedReachabilityOptions resume_options;
    resume_options.epsilon = options.epsilon;
    resume_options.resume = &partial;
    const auto resumed = timed_reachability(c, goal, t, resume_options);
    ASSERT_EQ(resumed.status, RunStatus::Converged);
    for (std::size_t s = 0; s < reference.values.size(); ++s) {
      EXPECT_EQ(resumed.values[s], reference.values[s]) << "state " << s << " stop " << stop_at;
    }
  }
}

TEST(GuardedReachability, ResumeValidatesTheHorizon) {
  const Ctmdp c = choice_model();
  const std::vector<bool> goal{false, false, true};
  RunGuard guard;
  guard.cancel_after_polls(1);
  TimedReachabilityOptions options;
  options.guard = &guard;
  const auto partial = timed_reachability(c, goal, 2.0, options);
  ASSERT_EQ(partial.status, RunStatus::Cancelled);
  TimedReachabilityOptions resume_options;
  resume_options.resume = &partial;
  // Different t => different planned horizon: resume must refuse.
  EXPECT_THROW(timed_reachability(c, goal, 9.0, resume_options), ModelError);
  // A converged result is not resumable either.
  const auto done = timed_reachability(c, goal, 2.0);
  resume_options.resume = &done;
  EXPECT_THROW(timed_reachability(c, goal, 2.0, resume_options), ModelError);
}

TEST(GuardedReachability, CheckpointPoisonIsCaughtAsNumericError) {
  const Ctmdp c = choice_model();
  const std::vector<bool> goal{false, false, true};
  // The checkpoint span is a trust boundary: a non-finite write must raise
  // NumericError no matter where in the run it lands.  Interior steps are
  // the dangerous case — the action comparisons skip NaN candidates (NaN
  // compares false both ways), so without boundary validation the poison
  // would decay into finite wrong values instead of being detected.
  for (const std::uint64_t target : {std::uint64_t{1}, std::uint64_t{0}}) {
    RunGuard guard;
    guard.set_checkpoint([target](const RunCheckpoint& cp) {
      const std::uint64_t at = target == 0 ? cp.planned : target;
      if (cp.step == at) cp.values[0] = std::numeric_limits<double>::quiet_NaN();
    });
    TimedReachabilityOptions options;
    options.guard = &guard;
    EXPECT_THROW(timed_reachability(c, goal, 2.0, options), NumericError);
  }
}

TEST(GuardedReachability, ResumePoisonIsCaughtAsNumericError) {
  const Ctmdp c = choice_model();
  const std::vector<bool> goal{false, false, true};
  RunGuard guard;
  guard.cancel_after_polls(2);
  TimedReachabilityOptions options;
  options.guard = &guard;
  TimedReachabilityResult partial = timed_reachability(c, goal, 2.0, options);
  ASSERT_EQ(partial.status, RunStatus::Cancelled);
  ASSERT_FALSE(partial.iterate.empty());
  partial.iterate[0] = std::numeric_limits<double>::infinity();
  TimedReachabilityOptions resume_options;
  resume_options.resume = &partial;
  EXPECT_THROW(timed_reachability(c, goal, 2.0, resume_options), NumericError);
}

TEST(GuardedReachability, StepBoundedThrowsBudgetErrorOnCancel) {
  const Ctmdp c = choice_model();
  RunGuard guard;
  guard.cancel_after_polls(2);
  try {
    step_bounded_reachability(c, {false, false, true}, 50, Objective::Maximize, 1, &guard);
    FAIL() << "expected BudgetError";
  } catch (const BudgetError& e) {
    EXPECT_EQ(e.code(), ErrorCode::Cancelled);
  }
}

}  // namespace
}  // namespace unicon
