#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "ctmc/ctmc.hpp"
#include "ctmc/transient.hpp"
#include "support/errors.hpp"

namespace unicon {
namespace {

/// The simplest birth-death chain: 0 --lambda--> 1 --mu--> 0.
Ctmc two_state_chain(double lambda, double mu) {
  CtmcBuilder b(2);
  b.ensure_states(2);
  b.set_initial(0);
  b.add_transition(0, lambda, 1);
  b.add_transition(1, mu, 0);
  return b.build();
}

TEST(Ctmc, BuilderBasics) {
  const Ctmc c = two_state_chain(1.0, 2.0);
  EXPECT_EQ(c.num_states(), 2u);
  EXPECT_EQ(c.num_transitions(), 2u);
  EXPECT_DOUBLE_EQ(c.exit_rate(0), 1.0);
  EXPECT_DOUBLE_EQ(c.exit_rate(1), 2.0);
  EXPECT_DOUBLE_EQ(c.max_exit_rate(), 2.0);
}

TEST(Ctmc, RejectsNonPositiveRates) {
  CtmcBuilder b(2);
  EXPECT_THROW(b.add_transition(0, 0.0, 1), ModelError);
  EXPECT_THROW(b.add_transition(0, -1.0, 1), ModelError);
}

TEST(Ctmc, EmptyBuildThrows) {
  CtmcBuilder b;
  EXPECT_THROW(b.build(), ModelError);
}

TEST(Ctmc, ParallelTransitionsAccumulate) {
  CtmcBuilder b(2);
  b.ensure_states(2);
  b.add_transition(0, 1.0, 1);
  b.add_transition(0, 2.0, 1);
  const Ctmc c = b.build();
  EXPECT_EQ(c.num_transitions(), 1u);
  EXPECT_DOUBLE_EQ(c.exit_rate(0), 3.0);
}

TEST(Ctmc, UniformRateDetection) {
  EXPECT_FALSE(two_state_chain(1.0, 2.0).is_uniform());
  EXPECT_TRUE(two_state_chain(2.0, 2.0).is_uniform());
  EXPECT_DOUBLE_EQ(*two_state_chain(2.0, 2.0).uniform_rate(), 2.0);
}

TEST(Ctmc, NoTransitionsIsUniformAtZero) {
  CtmcBuilder b(1);
  b.ensure_states(1);
  EXPECT_DOUBLE_EQ(*b.build().uniform_rate(), 0.0);
}

TEST(Ctmc, UniformizeAddsSelfLoops) {
  const Ctmc u = two_state_chain(1.0, 2.0).uniformize();
  EXPECT_TRUE(u.is_uniform());
  EXPECT_DOUBLE_EQ(*u.uniform_rate(), 2.0);
  // State 0 gained a self-loop with the missing mass.
  double self_loop = 0.0;
  for (const SparseEntry& t : u.out(0)) {
    if (t.col == 0) self_loop = t.value;
  }
  EXPECT_DOUBLE_EQ(self_loop, 1.0);
}

TEST(Ctmc, UniformizeWithExplicitRate) {
  const Ctmc u = two_state_chain(1.0, 2.0).uniformize(5.0);
  EXPECT_DOUBLE_EQ(*u.uniform_rate(), 5.0);
}

TEST(Ctmc, UniformizeBelowMaxThrows) {
  EXPECT_THROW(two_state_chain(1.0, 2.0).uniformize(1.5), UniformityError);
}

TEST(Ctmc, MakeAbsorbingRemovesOutgoing) {
  const Ctmc c = two_state_chain(1.0, 2.0).make_absorbing({false, true});
  EXPECT_DOUBLE_EQ(c.exit_rate(1), 0.0);
  EXPECT_DOUBLE_EQ(c.exit_rate(0), 1.0);
}

// ---------------------------------------------------------- transient

TEST(Transient, SingleStateStaysPut) {
  CtmcBuilder b(1);
  b.ensure_states(1);
  const auto r = transient_distribution(b.build(), 10.0);
  ASSERT_EQ(r.probabilities.size(), 1u);
  EXPECT_NEAR(r.probabilities[0], 1.0, 1e-9);
}

TEST(Transient, PureDecayMatchesExponential) {
  // 0 --lambda--> 1 (absorbing): P(in 1 at t) = 1 - e^{-lambda t}.
  CtmcBuilder b(2);
  b.ensure_states(2);
  b.add_transition(0, 0.7, 1);
  const Ctmc c = b.build();
  for (double t : {0.1, 1.0, 3.0, 10.0}) {
    const auto r = transient_distribution(c, t);
    EXPECT_NEAR(r.probabilities[1], 1.0 - std::exp(-0.7 * t), 1e-6) << t;
  }
}

TEST(Transient, TwoStateChainMatchesClosedForm) {
  // Closed form: P(in 1 at t | start 0) = l/(l+m) (1 - e^{-(l+m)t}).
  const double l = 1.5, m = 0.5;
  const Ctmc c = two_state_chain(l, m);
  for (double t : {0.2, 1.0, 5.0}) {
    const auto r = transient_distribution(c, t, TransientOptions{1e-9});
    const double expected = l / (l + m) * (1.0 - std::exp(-(l + m) * t));
    EXPECT_NEAR(r.probabilities[1], expected, 1e-7) << t;
  }
}

TEST(Transient, DistributionSumsToOne) {
  const Ctmc c = two_state_chain(1.0, 2.0);
  const auto r = transient_distribution(c, 3.0);
  EXPECT_NEAR(std::accumulate(r.probabilities.begin(), r.probabilities.end(), 0.0), 1.0, 1e-6);
}

TEST(Transient, TimeZeroIsInitialDistribution) {
  const Ctmc c = two_state_chain(1.0, 2.0);
  const auto r = transient_distribution(c, 0.0);
  EXPECT_NEAR(r.probabilities[0], 1.0, 1e-12);
  EXPECT_NEAR(r.probabilities[1], 0.0, 1e-12);
}

TEST(Transient, NegativeTimeThrows) {
  EXPECT_THROW(transient_distribution(two_state_chain(1.0, 1.0), -1.0), ModelError);
}

class UniformizationInvariance : public ::testing::TestWithParam<double> {};

TEST_P(UniformizationInvariance, TransientUnaffectedByRateChoice) {
  // Jensen [19]: uniformization at any admissible rate leaves transient
  // probabilities unchanged.
  const double rate = GetParam();
  const Ctmc base = two_state_chain(1.0, 2.0);
  const Ctmc uni = base.uniformize(rate);
  for (double t : {0.5, 2.0, 8.0}) {
    const auto r0 = transient_distribution(base, t);
    const auto r1 = transient_distribution(uni, t);
    EXPECT_NEAR(r0.probabilities[0], r1.probabilities[0], 1e-7);
    EXPECT_NEAR(r0.probabilities[1], r1.probabilities[1], 1e-7);
  }
}

INSTANTIATE_TEST_SUITE_P(Rates, UniformizationInvariance,
                         ::testing::Values(2.0, 3.0, 5.0, 10.0, 50.0));

// ---------------------------------------------------- timed reachability

TEST(TimedReachability, SingleStepMatchesExponentialCdf) {
  CtmcBuilder b(2);
  b.ensure_states(2);
  b.add_transition(0, 0.3, 1);
  const Ctmc c = b.build();
  const std::vector<bool> goal{false, true};
  for (double t : {0.5, 2.0, 10.0}) {
    const auto r = timed_reachability(c, goal, t, TransientOptions{1e-9});
    EXPECT_NEAR(r.probabilities[0], 1.0 - std::exp(-0.3 * t), 1e-7);
    EXPECT_DOUBLE_EQ(r.probabilities[1], 1.0);
  }
}

TEST(TimedReachability, GoalStatesAreSticky) {
  // Even though the chain could leave state 1, reachability counts the
  // first visit: make-absorbing semantics.
  const Ctmc c = two_state_chain(1.0, 100.0);
  const std::vector<bool> goal{false, true};
  const auto r = timed_reachability(c, goal, 50.0);
  EXPECT_NEAR(r.probabilities[0], 1.0, 1e-6);
}

TEST(TimedReachability, MonotoneInTime) {
  const Ctmc c = two_state_chain(0.2, 0.1);
  const std::vector<bool> goal{false, true};
  double prev = -1.0;
  for (double t : {0.0, 1.0, 5.0, 20.0, 100.0}) {
    const double p = timed_reachability(c, goal, t).probabilities[0];
    EXPECT_GE(p, prev);
    prev = p;
  }
}

TEST(TimedReachability, UnreachableGoalStaysZero) {
  CtmcBuilder b(3);
  b.ensure_states(3);
  b.add_transition(0, 1.0, 1);
  b.add_transition(1, 1.0, 0);
  b.add_transition(2, 1.0, 0);  // state 2 reaches others, but not vice versa
  const Ctmc c = b.build();
  const std::vector<bool> goal{false, false, true};
  EXPECT_DOUBLE_EQ(timed_reachability(c, goal, 100.0).probabilities[0], 0.0);
}

TEST(TimedReachability, GoalSizeMismatchThrows) {
  EXPECT_THROW(timed_reachability(two_state_chain(1.0, 1.0), {true}, 1.0), ModelError);
}

TEST(TimedReachability, ErlangChainMatchesClosedForm) {
  // 3-stage Erlang with rate 2: P(absorbed by t) = 1 - e^{-2t} sum_{k<3} (2t)^k/k!.
  CtmcBuilder b(4);
  b.ensure_states(4);
  for (StateId s = 0; s < 3; ++s) b.add_transition(s, 2.0, s + 1);
  const Ctmc c = b.build();
  const std::vector<bool> goal{false, false, false, true};
  for (double t : {0.5, 1.0, 2.0, 4.0}) {
    double tail = 0.0;
    double term = 1.0;
    for (int k = 0; k < 3; ++k) {
      tail += term;
      term *= 2.0 * t / (k + 1);
    }
    const double expected = 1.0 - std::exp(-2.0 * t) * tail;
    EXPECT_NEAR(timed_reachability(c, goal, t, TransientOptions{1e-9}).probabilities[0], expected,
                1e-7)
        << t;
  }
}

TEST(IntervalReachability, ZeroLeftBoundMatchesTimedReachability) {
  const Ctmc c = two_state_chain(0.4, 0.2);
  const std::vector<bool> goal{false, true};
  const auto interval = interval_reachability(c, goal, 0.0, 3.0, TransientOptions{1e-9});
  const auto plain = timed_reachability(c, goal, 3.0, TransientOptions{1e-9});
  EXPECT_NEAR(interval.probabilities[0], plain.probabilities[0], 1e-9);
}

TEST(IntervalReachability, PointIntervalIsOccupancyProbability) {
  // [t, t]: the chain must BE in the goal at exactly t — the transient
  // occupancy (no absorption beforehand).
  const double l = 1.0, m = 0.5;
  const Ctmc c = two_state_chain(l, m);
  const std::vector<bool> goal{false, true};
  for (double t : {0.5, 2.0, 10.0}) {
    const auto r = interval_reachability(c, goal, t, t, TransientOptions{1e-10});
    const double expected = l / (l + m) * (1.0 - std::exp(-(l + m) * t));
    EXPECT_NEAR(r.probabilities[0], expected, 1e-7) << t;
  }
}

TEST(IntervalReachability, WiderIntervalGivesLargerProbability) {
  const Ctmc c = two_state_chain(0.3, 5.0);
  const std::vector<bool> goal{false, true};
  const double narrow = interval_reachability(c, goal, 2.0, 2.5).probabilities[0];
  const double wide = interval_reachability(c, goal, 2.0, 8.0).probabilities[0];
  EXPECT_LE(narrow, wide + 1e-9);
}

TEST(IntervalReachability, CanBeSmallerThanTimeBoundedAtT2) {
  // With a fast return rate the chain may visit the goal before t1 and be
  // back: Pr([t1,t2]) < Pr([0,t2]).
  const Ctmc c = two_state_chain(0.3, 5.0);
  const std::vector<bool> goal{false, true};
  const double interval = interval_reachability(c, goal, 4.0, 5.0).probabilities[0];
  const double bounded = timed_reachability(c, goal, 5.0).probabilities[0];
  EXPECT_LT(interval, bounded);
}

TEST(IntervalReachability, ValidatesArguments) {
  const Ctmc c = two_state_chain(1.0, 1.0);
  EXPECT_THROW(interval_reachability(c, {false, true}, 2.0, 1.0), ModelError);
  EXPECT_THROW(interval_reachability(c, {false, true}, -1.0, 1.0), ModelError);
  EXPECT_THROW(interval_reachability(c, {true}, 0.0, 1.0), ModelError);
}

TEST(Transient, EarlyTerminationMatchesFullRunOnLongHorizon) {
  const Ctmc c = two_state_chain(1.0, 2.0);
  TransientOptions options;
  options.epsilon = 1e-8;
  const auto full = transient_distribution(c, 500.0, options);
  options.early_termination = true;
  const auto early = transient_distribution(c, 500.0, options);
  EXPECT_LT(early.iterations_executed, full.iterations_executed);
  EXPECT_NEAR(full.probabilities[0], early.probabilities[0], 1e-7);
  EXPECT_NEAR(full.probabilities[1], early.probabilities[1], 1e-7);
}

TEST(TimedReachability, EarlyTerminationMatchesFullRunOnLongHorizon) {
  const Ctmc c = two_state_chain(0.5, 0.25);
  const std::vector<bool> goal{false, true};
  TransientOptions options;
  options.epsilon = 1e-8;
  const auto full = timed_reachability(c, goal, 400.0, options);
  options.early_termination = true;
  const auto early = timed_reachability(c, goal, 400.0, options);
  EXPECT_LT(early.iterations_executed, full.iterations_executed);
  EXPECT_NEAR(full.probabilities[0], early.probabilities[0], 1e-7);
}

TEST(TimedReachability, IterationCountEqualsPoissonRightBound) {
  const Ctmc c = two_state_chain(1.0, 2.0);
  const auto r = timed_reachability(c, {false, true}, 10.0, TransientOptions{1e-6});
  // The goal state is made absorbing first, so E = max exit of the
  // absorbing chain = 1; lambda = 10 and the right bound is lambda + O(sqrt).
  EXPECT_GT(r.iterations, 10u);
  EXPECT_LT(r.iterations, 60u);
  EXPECT_DOUBLE_EQ(r.uniform_rate, 1.0);
}

// ------------------------------------------------- parallel sweeps

/// A ring with a shortcut, enough states for several worker slices.
Ctmc ring_chain(std::size_t n) {
  CtmcBuilder b(n);
  b.ensure_states(n);
  b.set_initial(0);
  for (std::size_t s = 0; s < n; ++s) {
    b.add_transition(s, 1.0 + 0.1 * static_cast<double>(s % 3), (s + 1) % n);
    if (s % 5 == 0) b.add_transition(s, 0.5, (s + 7) % n);
  }
  return b.build();
}

TEST(Transient, ParallelMatchesSerial) {
  const Ctmc c = ring_chain(97);
  TransientOptions serial;
  serial.threads = 1;
  TransientOptions parallel;
  parallel.threads = 4;
  const auto a = transient_distribution(c, 3.0, serial);
  const auto b = transient_distribution(c, 3.0, parallel);
  ASSERT_EQ(a.probabilities.size(), b.probabilities.size());
  for (std::size_t s = 0; s < a.probabilities.size(); ++s) {
    EXPECT_NEAR(a.probabilities[s], b.probabilities[s], 1e-12) << s;
  }
}

TEST(TimedReachability, ParallelMatchesSerialOnCtmc) {
  const Ctmc c = ring_chain(61);
  std::vector<bool> goal(61, false);
  goal[42] = true;
  TransientOptions serial;
  serial.threads = 1;
  TransientOptions parallel;
  parallel.threads = 4;
  const auto a = timed_reachability(c, goal, 5.0, serial);
  const auto b = timed_reachability(c, goal, 5.0, parallel);
  for (std::size_t s = 0; s < a.probabilities.size(); ++s) {
    EXPECT_NEAR(a.probabilities[s], b.probabilities[s], 1e-12) << s;
  }
}

TEST(IntervalReachability, ParallelMatchesSerialOnCtmc) {
  const Ctmc c = ring_chain(45);
  std::vector<bool> goal(45, false);
  goal[10] = goal[30] = true;
  TransientOptions serial;
  serial.threads = 1;
  TransientOptions parallel;
  parallel.threads = 3;
  const auto a = interval_reachability(c, goal, 1.0, 4.0, serial);
  const auto b = interval_reachability(c, goal, 1.0, 4.0, parallel);
  for (std::size_t s = 0; s < a.probabilities.size(); ++s) {
    EXPECT_NEAR(a.probabilities[s], b.probabilities[s], 1e-12) << s;
  }
}

}  // namespace
}  // namespace unicon
