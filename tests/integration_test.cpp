// End-to-end pipeline tests: composition -> uniformity by construction ->
// minimization -> transformation -> Algorithm 1, cross-checked between
// independent code paths.
#include <gtest/gtest.h>

#include <cmath>

#include "bisim/bisimulation.hpp"
#include "core/analysis.hpp"
#include "core/time_constraint.hpp"
#include "ctmc/transient.hpp"
#include "ctmdp/simulate.hpp"
#include "ctmdp/unbounded.hpp"
#include "ftwc/direct.hpp"
#include "imc/compose.hpp"
#include "support/errors.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace unicon {
namespace {

/// A machine that alternates between working (mean 1/lambda) and broken
/// (mean 1/mu), built through the full compositional pipeline.
Imc machine_system(double lambda, double mu, std::shared_ptr<ActionTable> actions) {
  LtsBuilder lb(actions);
  const StateId up = lb.add_state("up");
  const StateId down = lb.add_state("down");
  lb.set_initial(up);
  lb.add_transition(up, "break", down);
  lb.add_transition(down, "fix", up);
  const Lts lts = lb.build();

  std::vector<TimeConstraint> constraints;
  constraints.emplace_back(PhaseType::exponential(lambda), "break", "fix", /*running=*/true);
  constraints.emplace_back(PhaseType::exponential(mu), "fix", "break");
  ExploreOptions explore;
  explore.record_names = true;
  explore.urgent = true;
  return apply_time_constraints(lts, constraints, explore);
}

TEST(Pipeline, MachineAvailabilityMatchesBirthDeathFormula) {
  // P(down within t) from the up state of an alternating machine equals
  // the two-state CTMC first-passage: 1 - e^{-lambda t}.
  auto actions = std::make_shared<ActionTable>();
  const double lambda = 0.1, mu = 2.0;
  const Imc system = machine_system(lambda, mu, actions);
  ASSERT_TRUE(system.is_uniform(UniformityView::Closed, 1e-9));

  std::vector<bool> goal(system.num_states());
  for (StateId s = 0; s < system.num_states(); ++s) {
    goal[s] = system.state_name(s).find("down") != std::string::npos;
  }
  for (double t : {1.0, 5.0, 20.0}) {
    const double p = analyze_timed_reachability(system, goal, t).value;
    EXPECT_NEAR(p, 1.0 - std::exp(-lambda * t), 1e-6) << t;
  }
}

TEST(Pipeline, AnalysisRejectsNonUniformInput) {
  ImcBuilder b;
  b.add_state();
  b.add_state();
  b.set_initial(0);
  b.add_markov(0, 1.0, 1);
  b.add_markov(1, 5.0, 0);
  const Imc m = b.build();
  EXPECT_THROW(analyze_timed_reachability(m, {false, true}, 1.0), UniformityError);
  UimcAnalysisOptions options;
  options.check_uniformity = false;
  // Bypassing the check still fails at the algorithm level.
  EXPECT_THROW(analyze_timed_reachability(m, {false, true}, 1.0, options), UniformityError);
}

TEST(Pipeline, FtwcOptimalSchedulerDominatesHeuristics) {
  // Algorithm 1's optimum must dominate stationary heuristic policies
  // (always grab the first / last failed class).
  ftwc::Parameters params;
  params.n = 2;
  const auto built = ftwc::build_direct(params);
  const auto transformed = transform_to_ctmdp(built.uimc, &built.goal);
  const Ctmdp& c = transformed.ctmdp;
  const double t = 500.0;

  const auto optimal = timed_reachability(c, transformed.goal, t);

  for (bool first : {true, false}) {
    std::vector<std::uint64_t> choice(c.num_states());
    for (StateId s = 0; s < c.num_states(); ++s) {
      const auto [lo, hi] = c.transition_range(s);
      choice[s] = lo == hi ? 0 : (first ? lo : hi - 1);
    }
    const auto fixed = evaluate_scheduler(c, transformed.goal, t, choice);
    EXPECT_LE(fixed.values[c.initial()], optimal.values[c.initial()] + 1e-9);
  }
}

TEST(Pipeline, FtwcWorstCaseMatchesSimulationOfExtractedScheduler) {
  // Extract the optimal decisions at step 1 and simulate them as a
  // stationary policy: the simulated estimate must not exceed the worst
  // case by more than Monte-Carlo noise (it is a valid scheduler).
  ftwc::Parameters params;
  params.n = 1;
  const auto built = ftwc::build_direct(params);
  const auto transformed = transform_to_ctmdp(built.uimc, &built.goal);
  const Ctmdp& c = transformed.ctmdp;
  const double t = 200.0;

  TimedReachabilityOptions options;
  options.extract_scheduler = true;
  const auto optimal = timed_reachability(c, transformed.goal, t, options);

  std::vector<std::uint64_t> choice(c.num_states());
  for (StateId s = 0; s < c.num_states(); ++s) {
    const auto [lo, hi] = c.transition_range(s);
    choice[s] = optimal.initial_decision[s] != kNoTransition ? optimal.initial_decision[s] : lo;
    if (lo == hi) choice[s] = 0;
  }
  SimulationOptions sim;
  sim.num_runs = 20000;
  const auto estimate = simulate_reachability(c, transformed.goal, t, choice, sim);
  EXPECT_LE(estimate.estimate, optimal.values[c.initial()] + estimate.half_width + 0.01);
}

TEST(Pipeline, HidingDoesNotChangeProbabilities) {
  // Closed-system analysis is invariant under hiding (urgency treats
  // visible and internal actions alike).
  Rng rng(77);
  testutil::RandomImcConfig config;
  config.num_states = 14;
  config.tau_bias = 0.3;
  const Imc m = testutil::random_uniform_imc(rng, config);
  const BitVector goal = testutil::random_goal(rng, m.num_states());
  const Imc hidden = m.hide_all();
  for (double t : {0.5, 3.0}) {
    const double a = analyze_timed_reachability(m, goal, t).value;
    const double b = analyze_timed_reachability(hidden, goal, t).value;
    EXPECT_NEAR(a, b, 1e-7);
  }
}

TEST(Pipeline, MinimizedFtwcAgreesWithFull) {
  ftwc::Parameters params;
  params.n = 2;
  const auto built = ftwc::build_direct(params);
  std::vector<std::uint32_t> labels(built.uimc.num_states());
  for (StateId s = 0; s < built.uimc.num_states(); ++s) labels[s] = built.goal[s] ? 1 : 0;
  const Imc hidden = built.uimc.hide_all();
  const Partition p = branching_bisimulation(hidden, &labels);
  const Imc q = quotient(hidden, p);
  std::vector<bool> qgoal(q.num_states(), false);
  for (StateId s = 0; s < hidden.num_states(); ++s) {
    if (built.goal[s]) qgoal[p.block_of[s]] = true;
  }
  EXPECT_LT(q.num_states(), built.uimc.num_states());

  const double t = 100.0;
  const double full = analyze_timed_reachability(built.uimc, built.goal, t).value;
  const double reduced = analyze_timed_reachability(q, qgoal, t).value;
  EXPECT_NEAR(full, reduced, 1e-6);
}

TEST(Pipeline, FtwcExpectedTimeToPremiumLoss) {
  // Worst- and best-case mean time until premium service is lost.  Both
  // are finite (components keep failing no matter what the repair unit
  // does) and the worst case is at most the best case.
  ftwc::Parameters params;
  params.n = 2;
  const auto built = ftwc::build_direct(params);
  const auto transformed = transform_to_ctmdp(built.uimc, &built.goal);

  // The expected loss time is huge (tens of thousands of hours), and
  // value iteration converges on that time scale; a capped run still
  // certifies finiteness (graph-based) and gives monotone lower bounds.
  UnboundedOptions options;
  options.max_iterations = 20000;
  const auto worst = expected_reachability_time(transformed.ctmdp, transformed.goal, options);
  options.objective = Objective::Minimize;
  const auto best = expected_reachability_time(transformed.ctmdp, transformed.goal, options);

  const StateId init = transformed.ctmdp.initial();
  ASSERT_TRUE(std::isfinite(worst.values[init]));
  ASSERT_TRUE(std::isfinite(best.values[init]));
  // Objective::Minimize minimizes the expected time (reaches the bad set
  // sooner); Maximize is the prudent repair policy that staves it off.
  EXPECT_LE(best.values[init], worst.values[init] + 1e-6);
  EXPECT_GT(best.values[init], 100.0);  // losing premium takes a while
}

TEST(Pipeline, SupIsMonotoneInGoalSet) {
  Rng rng(5);
  const Imc m = testutil::random_uniform_imc(rng);
  BitVector small = testutil::random_goal(rng, m.num_states(), 0.15);
  BitVector large = small;
  for (std::size_t s = 1; s < large.size(); s += 2) large[s] = true;
  const double t = 1.5;
  const double p_small = analyze_timed_reachability(m, small, t).value;
  const double p_large = analyze_timed_reachability(m, large, t).value;
  EXPECT_LE(p_small, p_large + 1e-9);
}

}  // namespace
}  // namespace unicon
