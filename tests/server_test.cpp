// Analysis service and JSONL session layer: correctness under concurrency.
//
// The stress tests run many client threads against one service with mixed
// models, mid-flight cancellations and fault plans, with zero tolerance for
// a crash, a hang (gtest TIMEOUT), a wrong answer (bitwise comparison
// against direct solves) or cross-request bleed (per-request telemetry
// registries, per-model canonical hashes).  The deterministic tests pin
// fair-share ordering, coalescing, admission control and the session
// protocol.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <chrono>
#include <cstdint>
#include <future>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ctmc/transient.hpp"
#include "ctmdp/reachability.hpp"
#include "io/tra.hpp"
#include "support/json.hpp"
#include "server/model_cache.hpp"
#include "server/server.hpp"
#include "server/service.hpp"
#include "support/rng.hpp"
#include "support/telemetry.hpp"
#include "testing/generate.hpp"

namespace unicon {
namespace {

namespace gen = unicon::testing;
using server::AnalysisService;
using unicon::Json;
using unicon::JsonArray;
using server::ModelKind;
using server::QueryRequest;
using server::QueryResponse;
using server::ServiceOptions;
using server::ServiceStats;

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

std::string serialize_ctmdp(const Ctmdp& model) {
  std::ostringstream out;
  io::write_ctmdp(out, model);
  return out.str();
}

std::string serialize_ctmc(const Ctmc& chain) {
  std::ostringstream out;
  io::write_ctmc(out, chain);
  return out.str();
}

std::string serialize_goal(const BitVector& goal) {
  std::ostringstream out;
  io::write_goal(out, goal);
  return out.str();
}

/// One test model with its expected per-horizon answers precomputed by a
/// direct (cache-free, service-free) solve.
struct Fixture {
  ModelKind kind = ModelKind::CtmdpFile;
  std::string source;
  std::string labels;
  std::vector<double> times;
  Objective objective = Objective::Maximize;
  std::vector<double> expected;  ///< value at the initial state per time
};

Fixture make_ctmdp_fixture(std::uint64_t seed, std::size_t num_states,
                           std::vector<double> times, Objective objective) {
  Rng rng(seed);
  gen::RandomCtmdpConfig config;
  config.num_states = num_states;
  const Ctmdp model = gen::random_uniform_ctmdp(rng, config);
  const BitVector goal = gen::random_goal(rng, model.num_states(), 0.3);

  Fixture fixture;
  fixture.kind = ModelKind::CtmdpFile;
  fixture.source = serialize_ctmdp(model);
  fixture.labels = serialize_goal(goal);
  fixture.times = std::move(times);
  fixture.objective = objective;
  TimedReachabilityOptions options;
  options.objective = objective;
  options.backend = Backend::Serial;
  for (const double t : fixture.times) {
    fixture.expected.push_back(
        timed_reachability(model, goal, t, options).values[model.initial()]);
  }
  return fixture;
}

Fixture make_ctmc_fixture(std::uint64_t seed, std::size_t num_states,
                          std::vector<double> times) {
  Rng rng(seed);
  gen::RandomCtmcConfig config;
  config.num_states = num_states;
  const Ctmc chain = gen::random_ctmc(rng, config);
  const BitVector goal = gen::random_goal(rng, chain.num_states(), 0.3);

  Fixture fixture;
  fixture.kind = ModelKind::CtmcFile;
  fixture.source = serialize_ctmc(chain);
  fixture.labels = serialize_goal(goal);
  fixture.times = std::move(times);
  TransientOptions options;
  options.backend = Backend::Serial;
  for (const double t : fixture.times) {
    fixture.expected.push_back(
        timed_reachability(chain, goal, t, options).probabilities[chain.initial()]);
  }
  return fixture;
}

QueryRequest request_for(const Fixture& fixture, std::string client, std::string id) {
  QueryRequest request;
  request.client = std::move(client);
  request.id = std::move(id);
  request.kind = fixture.kind;
  request.source = fixture.source;
  request.labels = fixture.labels;
  request.times = fixture.times;
  request.objective = fixture.objective;
  request.backend = Backend::Serial;
  return request;
}

void expect_matches_fixture(const QueryResponse& response, const Fixture& fixture) {
  ASSERT_EQ(response.error, ErrorCode::Ok) << response.message;
  ASSERT_EQ(response.results.size(), fixture.expected.size());
  for (std::size_t j = 0; j < fixture.expected.size(); ++j) {
    EXPECT_EQ(bits(response.results[j].value), bits(fixture.expected[j]))
        << "horizon " << j << ": " << response.results[j].value << " vs "
        << fixture.expected[j];
    EXPECT_EQ(response.results[j].status, RunStatus::Converged);
  }
}

/// A request sized to occupy a worker for >= ~100 ms, used to pin queue
/// contents deterministically while other requests are submitted.
QueryRequest make_blocker(std::string client, std::string id) {
  Rng rng(0xb10cce5u);
  gen::RandomCtmdpConfig config;
  config.num_states = 600;
  config.uniform_rate = 3.0;
  const Ctmdp model = gen::random_uniform_ctmdp(rng, config);
  const BitVector goal = gen::random_goal(rng, model.num_states(), 0.1);

  QueryRequest request;
  request.client = std::move(client);
  request.id = std::move(id);
  request.kind = ModelKind::CtmdpFile;
  request.source = serialize_ctmdp(model);
  request.labels = serialize_goal(goal);
  request.times = {400.0, 401.0, 402.0, 403.0};
  request.epsilon = 1e-12;
  request.backend = Backend::Serial;
  return request;
}

/// Polls until the service has dispatched @p batches groups (the blocker is
/// running, the queue is otherwise empty).
void wait_for_batches(AnalysisService& service, std::uint64_t batches) {
  for (int i = 0; i < 20000; ++i) {
    if (service.stats().batches >= batches) return;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  FAIL() << "service never dispatched batch " << batches;
}

TEST(ServerTest, QueryMatchesDirectSolveBitwise) {
  const Fixture sup = make_ctmdp_fixture(11, 24, {0.5, 1.5, 3.0}, Objective::Maximize);
  const Fixture inf = make_ctmdp_fixture(11, 24, {0.5, 1.5, 3.0}, Objective::Minimize);
  const Fixture ctmc = make_ctmc_fixture(12, 18, {0.25, 2.0});

  AnalysisService service(ServiceOptions{.workers = 2});
  expect_matches_fixture(service.query(request_for(sup, "a", "1")), sup);
  expect_matches_fixture(service.query(request_for(inf, "a", "2")), inf);
  expect_matches_fixture(service.query(request_for(ctmc, "a", "3")), ctmc);

  // sup and inf share the lowered model (one entry, two kernel memos).
  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.completed, 3u);
  EXPECT_EQ(stats.cache.entries, 2u);
  EXPECT_GE(stats.cache.source_hits, 1u);
}

TEST(ServerTest, ConcurrentStressMixedModelsCancellationsAndFaults) {
  constexpr std::size_t kClients = 8;
  constexpr std::size_t kQueriesPerClient = 12;

  const std::vector<Fixture> fixtures = {
      make_ctmdp_fixture(21, 20, {0.5, 1.0}, Objective::Maximize),
      make_ctmdp_fixture(22, 26, {1.5}, Objective::Minimize),
      make_ctmdp_fixture(23, 32, {0.75, 2.0, 4.0}, Objective::Maximize),
      make_ctmc_fixture(24, 22, {0.5, 1.25}),
  };

  AnalysisService service(ServiceOptions{.workers = 4, .max_pending = 4096});

  std::mutex mutex;
  std::map<std::string, std::vector<std::string>> hashes_by_fixture;
  std::atomic<std::uint64_t> ok_answers{0};
  std::atomic<std::uint64_t> cancelled_answers{0};
  std::atomic<std::uint64_t> fault_stops{0};
  std::atomic<bool> wrong{false};

  std::vector<std::thread> clients;
  for (std::size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      const std::string client = "client-" + std::to_string(c);
      for (std::size_t q = 0; q < kQueriesPerClient; ++q) {
        const Fixture& fixture = fixtures[(c + q) % fixtures.size()];
        const std::string id = std::to_string(q);
        QueryRequest request = request_for(fixture, client, id);
        Telemetry telemetry;
        request.telemetry = &telemetry;

        // Mode per query: plain / fault plan / submit-then-cancel.
        const int mode = static_cast<int>((c * 31 + q) % 5);
        if (mode == 3) request.cancel_after_polls = 1;

        QueryResponse response;
        if (mode == 4) {
          std::promise<void> done;
          service.submit(std::move(request), [&](QueryResponse r) {
            response = std::move(r);
            done.set_value();
          });
          service.cancel(client, id);  // may race completion: both are legal
          done.get_future().wait();
        } else {
          response = service.query(std::move(request));
        }

        if (response.error == ErrorCode::Cancelled) {
          ++cancelled_answers;
        } else if (response.error == ErrorCode::Ok) {
          ++ok_answers;
          if (response.results.size() != fixture.expected.size()) {
            wrong = true;
            continue;
          }
          for (std::size_t j = 0; j < fixture.expected.size(); ++j) {
            if (response.results[j].status == RunStatus::Cancelled) {
              // Fault-plan stop: partial result, never a wrong value.
              ++fault_stops;
            } else if (bits(response.results[j].value) != bits(fixture.expected[j])) {
              wrong = true;
            }
          }
          std::lock_guard<std::mutex> lock(mutex);
          hashes_by_fixture[fixture.source].push_back(response.model_hash);
        } else {
          wrong = true;
        }

        // Telemetry isolation: this request's registry observed at most its
        // own serve.query span (none if cancelled while queued), never a
        // co-running request's.
        const std::string json = telemetry.to_json();
        std::size_t spans = 0;
        for (std::size_t pos = json.find("serve.query"); pos != std::string::npos;
             pos = json.find("serve.query", pos + 1)) {
          ++spans;
        }
        if (response.error == ErrorCode::Ok ? spans != 1 : spans > 1) wrong = true;
      }
    });
  }
  for (std::thread& client : clients) client.join();

  EXPECT_FALSE(wrong.load()) << "a response carried a wrong answer or bled telemetry";
  EXPECT_GT(ok_answers.load(), 0u);

  // Cache bleed check: every response for one fixture reported the same
  // canonical hash, and distinct fixtures never shared one.
  std::vector<std::string> distinct;
  for (const auto& [source, hashes] : hashes_by_fixture) {
    for (const std::string& hash : hashes) EXPECT_EQ(hash, hashes.front());
    distinct.push_back(hashes.front());
  }
  for (std::size_t i = 0; i < distinct.size(); ++i) {
    for (std::size_t j = i + 1; j < distinct.size(); ++j) {
      EXPECT_NE(distinct[i], distinct[j]);
    }
  }

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.submitted, kClients * kQueriesPerClient);
  EXPECT_EQ(stats.completed, kClients * kQueriesPerClient);
  EXPECT_EQ(stats.rejected, 0u);
  EXPECT_EQ(stats.cache.entries, 4u);
}

TEST(ServerTest, CancelQueuedJobsAnswersImmediately) {
  AnalysisService service(ServiceOptions{.workers = 1});

  std::promise<void> blocker_done;
  service.submit(make_blocker("zz", "blocker"),
                 [&](QueryResponse) { blocker_done.set_value(); });
  wait_for_batches(service, 1);

  const Fixture fixture = make_ctmdp_fixture(31, 16, {1.0}, Objective::Maximize);
  std::vector<std::future<QueryResponse>> answers;
  std::vector<std::shared_ptr<std::promise<QueryResponse>>> promises;
  for (int i = 0; i < 5; ++i) {
    auto promise = std::make_shared<std::promise<QueryResponse>>();
    answers.push_back(promise->get_future());
    promises.push_back(promise);
    service.submit(request_for(fixture, "a", std::to_string(i)),
                   [promise](QueryResponse r) { promise->set_value(std::move(r)); });
  }
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(service.cancel("a", std::to_string(i)));
  }
  for (auto& answer : answers) {
    const QueryResponse response = answer.get();
    EXPECT_EQ(response.error, ErrorCode::Cancelled);
    EXPECT_TRUE(response.results.empty());
  }
  EXPECT_FALSE(service.cancel("a", "0"));        // already answered
  EXPECT_FALSE(service.cancel("a", "nosuch"));   // never submitted
  EXPECT_GE(service.stats().cancelled, 5u);
  blocker_done.get_future().wait();
}

TEST(ServerTest, CoalescingAnswersEveryMemberBitwiseIdentically) {
  AnalysisService service(ServiceOptions{.workers = 1, .max_batch = 16});

  std::promise<void> blocker_done;
  service.submit(make_blocker("zz", "blocker"),
                 [&](QueryResponse) { blocker_done.set_value(); });
  wait_for_batches(service, 1);

  // Four clients, identical query -> one solve key -> one batch group.
  const Fixture fixture = make_ctmdp_fixture(41, 28, {0.5, 1.5}, Objective::Maximize);
  constexpr std::size_t kMembers = 4;
  std::vector<std::future<QueryResponse>> answers;
  for (std::size_t m = 0; m < kMembers; ++m) {
    auto promise = std::make_shared<std::promise<QueryResponse>>();
    answers.push_back(promise->get_future());
    service.submit(request_for(fixture, "client-" + std::to_string(m), "q"),
                   [promise](QueryResponse r) { promise->set_value(std::move(r)); });
  }
  for (auto& answer : answers) {
    const QueryResponse response = answer.get();
    EXPECT_EQ(response.batched_with, kMembers);
    expect_matches_fixture(response, fixture);
  }
  blocker_done.get_future().wait();

  const ServiceStats stats = service.stats();
  EXPECT_EQ(stats.batches, 2u);  // blocker + the coalesced group
  EXPECT_EQ(stats.coalesced, kMembers - 1);
}

TEST(ServerTest, FaultPlansNeverCoalesceAndDeadlinesStopTheirOwnSolve) {
  AnalysisService service(ServiceOptions{.workers = 1});

  // cancel_after_polls stops the guarded solve; the answer is a sound
  // partial result, not an error, and rode in its own group.
  const Fixture fixture = make_ctmdp_fixture(51, 40, {50.0}, Objective::Maximize);
  QueryRequest faulty = request_for(fixture, "a", "fault");
  faulty.cancel_after_polls = 1;
  const QueryResponse response = service.query(std::move(faulty));
  ASSERT_EQ(response.error, ErrorCode::Ok) << response.message;
  EXPECT_EQ(response.batched_with, 1u);
  ASSERT_EQ(response.results.size(), 1u);
  EXPECT_EQ(response.results[0].status, RunStatus::Cancelled);
  EXPECT_LT(response.results[0].iterations_executed, response.results[0].iterations_planned);

  QueryRequest deadline = request_for(fixture, "a", "deadline");
  deadline.deadline = 1e-9;
  const QueryResponse late = service.query(std::move(deadline));
  // The lowering may already trip the deadline (typed error) or the solve
  // stops with a partial — both are sound; a full result is impossible.
  if (late.error == ErrorCode::Ok) {
    ASSERT_EQ(late.results.size(), 1u);
    EXPECT_EQ(late.results[0].status, RunStatus::DeadlineExceeded);
  } else {
    EXPECT_EQ(late.error, ErrorCode::Deadline);
  }
}

TEST(ServerTest, FairShareAlternatesAcrossClients) {
  AnalysisService service(ServiceOptions{.workers = 1});

  std::promise<void> blocker_done;
  service.submit(make_blocker("zz", "blocker"),
                 [&](QueryResponse) { blocker_done.set_value(); });
  wait_for_batches(service, 1);

  // Client a floods 3 jobs before client b's 3; with per-client buckets the
  // dispatch order must still alternate a, b, a, b, a, b.  Distinct epsilon
  // per job keeps the solve keys distinct (no coalescing).
  const Fixture fixture = make_ctmdp_fixture(61, 14, {1.0}, Objective::Maximize);
  std::mutex mutex;
  std::vector<std::string> order;
  std::vector<std::future<void>> done;
  for (const char* client : {"a", "a", "a", "b", "b", "b"}) {
    QueryRequest request = request_for(fixture, client, "q" + std::to_string(done.size()));
    request.epsilon = 1e-6 * static_cast<double>(done.size() + 1);
    auto promise = std::make_shared<std::promise<void>>();
    done.push_back(promise->get_future());
    const std::string tag = client;
    service.submit(std::move(request), [&, tag, promise](QueryResponse r) {
      EXPECT_EQ(r.error, ErrorCode::Ok);
      std::lock_guard<std::mutex> lock(mutex);
      order.push_back(tag);
      promise->set_value();
    });
  }
  for (auto& d : done) d.wait();
  blocker_done.get_future().wait();
  ASSERT_EQ(order.size(), 6u);
  EXPECT_EQ(order, (std::vector<std::string>{"a", "b", "a", "b", "a", "b"}));
}

TEST(ServerTest, AdmissionControlRejectsWithOverloaded) {
  AnalysisService service(ServiceOptions{.workers = 1, .max_pending = 2});

  std::promise<void> blocker_done;
  service.submit(make_blocker("zz", "blocker"),
                 [&](QueryResponse) { blocker_done.set_value(); });
  wait_for_batches(service, 1);

  const Fixture fixture = make_ctmdp_fixture(71, 14, {1.0}, Objective::Maximize);
  std::vector<std::future<QueryResponse>> queued;
  for (int i = 0; i < 2; ++i) {
    auto promise = std::make_shared<std::promise<QueryResponse>>();
    queued.push_back(promise->get_future());
    QueryRequest request = request_for(fixture, "a", std::to_string(i));
    request.epsilon = 1e-6 * (i + 1);  // distinct keys: no coalescing
    service.submit(std::move(request),
                   [promise](QueryResponse r) { promise->set_value(std::move(r)); });
  }

  // Queue is full: the next submit is rejected inline with the stable code.
  QueryResponse rejected;
  bool inline_answer = false;
  service.submit(request_for(fixture, "a", "over"), [&](QueryResponse r) {
    rejected = std::move(r);
    inline_answer = true;
  });
  ASSERT_TRUE(inline_answer);
  EXPECT_EQ(rejected.error, ErrorCode::Overloaded);
  EXPECT_EQ(static_cast<int>(rejected.error), 24);

  for (auto& q : queued) EXPECT_EQ(q.get().error, ErrorCode::Ok);
  blocker_done.get_future().wait();
  EXPECT_EQ(service.stats().rejected, 1u);
}

TEST(ServerTest, ErrorsComeBackTyped) {
  AnalysisService service(ServiceOptions{.workers = 1});

  QueryRequest bad;
  bad.client = "a";
  bad.id = "parse";
  bad.kind = ModelKind::Uni;
  bad.source = "component C {";  // unterminated
  bad.times = {1.0};
  const QueryResponse response = service.query(std::move(bad));
  EXPECT_EQ(response.error, ErrorCode::Parse);
  EXPECT_FALSE(response.message.empty());
  EXPECT_TRUE(response.results.empty());
}

TEST(ServerTest, DftQueriesResolveThroughTheCache) {
  AnalysisService service(ServiceOptions{.workers = 1});
  const std::string tree =
      "toplevel \"top\";\n"
      "\"top\" pand \"a\" \"b\";\n"
      "\"a\" lambda=1.0;\n\"b\" lambda=1.0;\n\"t\" lambda=5.0;\n"
      "\"dep\" fdep \"t\" \"a\" \"b\";\n";

  const auto ask = [&](const std::string& id, Objective objective, const std::string& source) {
    QueryRequest query;
    query.client = "a";
    query.id = id;
    query.kind = ModelKind::Dft;
    query.source = source;
    query.times = {1.0};
    query.objective = objective;
    query.backend = Backend::Serial;
    return service.query(std::move(query));
  };

  const QueryResponse sup = ask("sup", Objective::Maximize, tree);
  ASSERT_EQ(sup.error, ErrorCode::Ok);
  EXPECT_FALSE(sup.cache_hit);

  // Same tree, different spelling: the canonical Galileo print dedups it
  // onto the first entry.
  const QueryResponse again =
      ask("again", Objective::Maximize, "// respelled\n" + tree);
  ASSERT_EQ(again.error, ErrorCode::Ok);
  EXPECT_TRUE(again.cache_hit);
  EXPECT_EQ(again.model_hash, sup.model_hash);
  EXPECT_EQ(bits(again.results[0].value), bits(sup.results[0].value));

  // The fdep/pand race makes the scheduler matter: inf < sup, and the
  // min objective rides the universal goal transfer of the same entry.
  const QueryResponse inf = ask("inf", Objective::Minimize, tree);
  ASSERT_EQ(inf.error, ErrorCode::Ok);
  EXPECT_TRUE(inf.cache_hit);
  EXPECT_LT(inf.results[0].value + 0.5, sup.results[0].value);

  QueryRequest bad;
  bad.client = "a";
  bad.id = "bad";
  bad.kind = ModelKind::Dft;
  bad.source = "toplevel \"top\";\n\"top\" and \"a\" \"top\";\n\"a\" lambda=1.0;\n";
  bad.times = {1.0};
  const QueryResponse cyclic = service.query(std::move(bad));
  EXPECT_EQ(cyclic.error, ErrorCode::Parse);
}

// ---------------------------------------------------------------------------
// Session layer: the JSONL protocol over in-process streams.

std::vector<Json> run_jsonl(AnalysisService& service, const std::string& input,
                            bool allow_fault_plans = false) {
  std::istringstream in(input);
  std::ostringstream out;
  server::SessionOptions options;
  options.client = "test";
  options.timing = false;
  options.allow_fault_plans = allow_fault_plans;
  server::run_session(in, out, service, options);
  std::vector<Json> lines;
  std::istringstream parse(out.str());
  std::string line;
  while (std::getline(parse, line)) lines.push_back(Json::parse(line));
  // Every session opens with the protocol hello line; validate and strip
  // it so the callers' line counts stay about the actual responses.
  if (!lines.empty()) {
    EXPECT_EQ(lines.front().get_string("hello", ""), "unicon-serve");
    EXPECT_EQ(lines.front().get_number("version", 0.0), 1.0);
    lines.erase(lines.begin());
  }
  return lines;
}

TEST(SessionTest, QueryStatsShutdownRoundTrip) {
  const Fixture fixture = make_ctmdp_fixture(81, 16, {0.5, 1.0}, Objective::Maximize);
  AnalysisService service(ServiceOptions{.workers = 1});

  Json model;
  model.set("kind", "ctmdp");
  model.set("source", fixture.source);
  model.set("labels", fixture.labels);
  Json query;
  query.set("id", "q1");
  query.set("op", "query");
  query.set("model", std::move(model));
  JsonArray times;
  for (const double t : fixture.times) times.push_back(Json(t));
  query.set("times", Json(std::move(times)));
  query.set("backend", "serial");

  Json stats;
  stats.set("id", "s1");
  stats.set("op", "stats");
  Json bye;
  bye.set("id", "b1");
  bye.set("op", "shutdown");

  const std::string input = query.dump() + "\n" + stats.dump() + "\n" + bye.dump() + "\n";
  const std::vector<Json> lines = run_jsonl(service, input);
  ASSERT_EQ(lines.size(), 3u);

  EXPECT_EQ(lines[0].get_string("id", ""), "q1");
  EXPECT_EQ(lines[0].get_number("version", 0.0), 1.0);
  EXPECT_TRUE(lines[0].get_bool("ok", false));
  const Json* results = lines[0].find("results");
  ASSERT_NE(results, nullptr);
  ASSERT_EQ(results->as_array().size(), fixture.expected.size());
  for (std::size_t j = 0; j < fixture.expected.size(); ++j) {
    EXPECT_EQ(bits(results->as_array()[j].get_number("value", -1.0)),
              bits(fixture.expected[j]));
  }
  EXPECT_EQ(lines[0].get_number("seconds", -1.0), 0.0);  // --no-timing pinned

  EXPECT_TRUE(lines[1].get_bool("ok", false));
  ASSERT_NE(lines[1].find("stats"), nullptr);
  EXPECT_TRUE(lines[2].get_bool("bye", false));
}

TEST(SessionTest, MalformedAndUnknownInputsAnswerWithErrorObjects) {
  AnalysisService service(ServiceOptions{.workers = 1});
  const std::vector<Json> lines = run_jsonl(
      service,
      "this is not json\n"
      "{\"id\":\"x\",\"op\":\"nope\"}\n"
      "{\"id\":\"y\",\"op\":\"query\"}\n"
      "{\"id\":\"c\",\"op\":\"cancel\",\"target\":\"nosuch\"}\n");
  ASSERT_EQ(lines.size(), 4u);
  for (int i = 0; i < 3; ++i) {
    EXPECT_FALSE(lines[i].get_bool("ok", true));
    const Json* error = lines[i].find("error");
    ASSERT_NE(error, nullptr) << "line " << i;
    EXPECT_EQ(error->get_string("code", ""), "parse");
    EXPECT_EQ(error->get_number("exit", 0.0), 13.0);
  }
  EXPECT_TRUE(lines[3].get_bool("ok", false));
  EXPECT_FALSE(lines[3].get_bool("cancelled", true));
}

TEST(SessionTest, FaultPlanFieldsRequireTheServerOptIn) {
  const Fixture fixture = make_ctmdp_fixture(83, 12, {0.5}, Objective::Maximize);
  Json model;
  model.set("kind", "ctmdp");
  model.set("source", fixture.source);
  model.set("labels", fixture.labels);
  Json query;
  query.set("id", "f1");
  query.set("op", "query");
  query.set("model", std::move(model));
  JsonArray times;
  times.push_back(Json(0.5));
  query.set("times", Json(std::move(times)));
  query.set("fault_throw", true);
  const std::string input = query.dump() + "\n";

  // Default session: an untrusted client's fault plan is refused outright
  // with a diagnostic naming the gate — it must never reach the service.
  {
    AnalysisService service(ServiceOptions{.workers = 1});
    const std::vector<Json> lines = run_jsonl(service, input);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_FALSE(lines[0].get_bool("ok", true));
    const Json* error = lines[0].find("error");
    ASSERT_NE(error, nullptr);
    EXPECT_EQ(error->get_string("code", ""), "parse");
    EXPECT_NE(error->get_string("message", "").find("fault plans are disabled"),
              std::string::npos);
    EXPECT_EQ(service.stats().submitted, 0u);
  }

  // Opted-in session (unicon_serve --enable-fault-plans): the same request
  // is admitted and the injected worker fault answers typed Internal.
  {
    AnalysisService service(ServiceOptions{.workers = 1});
    const std::vector<Json> lines = run_jsonl(service, input, /*allow_fault_plans=*/true);
    ASSERT_EQ(lines.size(), 1u);
    EXPECT_FALSE(lines[0].get_bool("ok", true));
    const Json* error = lines[0].find("error");
    ASSERT_NE(error, nullptr);
    EXPECT_EQ(error->get_string("code", ""), "internal");
    EXPECT_NE(error->get_string("message", "").find("fault plan"), std::string::npos);
  }
}

TEST(SessionTest, SessionOutputIsDeterministic) {
  const Fixture fixture = make_ctmdp_fixture(91, 20, {0.5, 2.0}, Objective::Maximize);
  Json model;
  model.set("kind", "ctmdp");
  model.set("source", fixture.source);
  model.set("labels", fixture.labels);
  Json query;
  query.set("id", "q");
  query.set("op", "query");
  query.set("model", std::move(model));
  JsonArray times;
  for (const double t : fixture.times) times.push_back(Json(t));
  query.set("times", Json(std::move(times)));
  query.set("backend", "serial");
  const std::string input = query.dump() + "\n";

  // Byte-identical replay across sessions AND across fresh services (the
  // golden-replay CI job depends on exactly this property).
  std::string first;
  for (int round = 0; round < 2; ++round) {
    AnalysisService service(ServiceOptions{.workers = 1});
    std::istringstream in(input);
    std::ostringstream out;
    server::SessionOptions options;
    options.timing = false;
    server::run_session(in, out, service, options);
    if (round == 0) {
      first = out.str();
      EXPECT_FALSE(first.empty());
    } else {
      EXPECT_EQ(out.str(), first);
    }
  }
}

TEST(ServerTest, AllocFaultNeverFailsAConcurrentCleanRequest) {
  const Fixture fixture = make_ctmdp_fixture(87, 14, {0.8}, Objective::Maximize);
  AnalysisService service(ServiceOptions{.workers = 2});

  // A clean, allocation-heavy solve occupies the other worker for the
  // whole faulted stream below.
  std::promise<QueryResponse> clean_promise;
  auto clean_future = clean_promise.get_future();
  service.submit(make_blocker("clean", "blocker"),
                 [&](QueryResponse r) { clean_promise.set_value(std::move(r)); });
  wait_for_batches(service, 1);

  // Each faulted request is answered for itself — typed OutOfMemory, or Ok
  // when the armed Nth lies beyond its own allocations.  The injected
  // bad_alloc must never land on the clean request's thread, even though
  // that thread allocates continuously while the fault is armed.
  for (int i = 0; i < 20; ++i) {
    QueryRequest faulted = request_for(fixture, "chaos", "f" + std::to_string(i));
    faulted.fault_alloc_nth = 1 + static_cast<std::uint64_t>(i) * 7;
    const QueryResponse r = service.query(std::move(faulted));
    EXPECT_TRUE(r.error == ErrorCode::OutOfMemory || r.error == ErrorCode::Ok)
        << "faulted request " << i << ": " << r.message;
  }

  const QueryResponse clean = clean_future.get();
  ASSERT_EQ(clean.error, ErrorCode::Ok) << clean.message;
  for (const server::HorizonAnswer& h : clean.results) {
    EXPECT_EQ(h.status, RunStatus::Converged);
  }
}

TEST(ServerTest, OverloadedResponsesCarryABoundedRetryHint) {
  AnalysisService service(ServiceOptions{.workers = 1, .max_pending = 2});

  std::promise<void> blocker_done;
  service.submit(make_blocker("zz", "blocker"),
                 [&](QueryResponse) { blocker_done.set_value(); });
  wait_for_batches(service, 1);

  const Fixture fixture = make_ctmdp_fixture(97, 14, {1.0}, Objective::Maximize);
  std::vector<std::future<QueryResponse>> queued;
  for (int i = 0; i < 2; ++i) {
    auto promise = std::make_shared<std::promise<QueryResponse>>();
    queued.push_back(promise->get_future());
    QueryRequest request = request_for(fixture, "a", std::to_string(i));
    request.epsilon = 1e-6 * (i + 1);
    service.submit(std::move(request),
                   [promise](QueryResponse r) { promise->set_value(std::move(r)); });
  }

  QueryResponse rejected = service.query(request_for(fixture, "a", "over"));
  EXPECT_EQ(rejected.error, ErrorCode::Overloaded);
  // The hint is clamped to [100ms, 60s]: never zero (clients would
  // hot-spin) and never absurd (clients would give up).
  EXPECT_GE(rejected.retry_after_ms, 100u);
  EXPECT_LE(rejected.retry_after_ms, 60000u);

  for (auto& q : queued) EXPECT_EQ(q.get().error, ErrorCode::Ok);
  blocker_done.get_future().wait();
}

TEST(ServerTest, DrainRefusesNewWorkAndFinishesInFlight) {
  AnalysisService service(ServiceOptions{.workers = 1});

  std::promise<void> blocker_done;
  service.submit(make_blocker("zz", "blocker"),
                 [&](QueryResponse r) {
                   EXPECT_EQ(r.error, ErrorCode::Ok);
                   blocker_done.set_value();
                 });
  wait_for_batches(service, 1);

  const Fixture fixture = make_ctmdp_fixture(98, 14, {1.0}, Objective::Maximize);
  auto queued_promise = std::make_shared<std::promise<QueryResponse>>();
  auto queued = queued_promise->get_future();
  service.submit(request_for(fixture, "a", "queued"),
                 [queued_promise](QueryResponse r) { queued_promise->set_value(std::move(r)); });

  service.begin_drain();
  EXPECT_TRUE(service.draining());

  // Late arrivals are refused with the stable Overloaded code, a message
  // that names the drain, and a retry hint — but nothing already admitted
  // is abandoned.
  const QueryResponse late = service.query(request_for(fixture, "a", "late"));
  EXPECT_EQ(late.error, ErrorCode::Overloaded);
  EXPECT_NE(late.message.find("draining"), std::string::npos) << late.message;
  EXPECT_GT(late.retry_after_ms, 0u);

  EXPECT_EQ(queued.get().error, ErrorCode::Ok);
  blocker_done.get_future().wait();
  service.wait_drained();
  const ServiceStats stats = service.stats();
  EXPECT_TRUE(stats.draining);
  EXPECT_EQ(stats.pending, 0u);
  EXPECT_EQ(stats.rejected, 1u);
}

TEST(ServerTest, FaultPlanRidesAloneWhileIdenticalCleanPairCoalesces) {
  AnalysisService service(ServiceOptions{.workers = 1, .max_batch = 16});

  std::promise<void> blocker_done;
  service.submit(make_blocker("zz", "blocker"),
                 [&](QueryResponse) { blocker_done.set_value(); });
  wait_for_batches(service, 1);

  // Three requests with the *same* solve key queued behind the blocker:
  // two clean (distinct clients) and one carrying a fault plan whose
  // threshold is far beyond the solve's poll count — semantically a
  // no-op, but its presence alone must veto coalescing.
  const Fixture fixture = make_ctmdp_fixture(99, 20, {0.5, 1.5}, Objective::Maximize);
  std::vector<std::future<QueryResponse>> answers;
  for (const char* client : {"a", "b"}) {
    auto promise = std::make_shared<std::promise<QueryResponse>>();
    answers.push_back(promise->get_future());
    service.submit(request_for(fixture, client, "clean"),
                   [promise](QueryResponse r) { promise->set_value(std::move(r)); });
  }
  QueryRequest faulty = request_for(fixture, "c", "faulty");
  faulty.cancel_after_polls = 1000000;  // armed but unreachable
  auto fault_promise = std::make_shared<std::promise<QueryResponse>>();
  auto fault_answer = fault_promise->get_future();
  service.submit(std::move(faulty),
                 [fault_promise](QueryResponse r) { fault_promise->set_value(std::move(r)); });

  for (auto& answer : answers) {
    const QueryResponse response = answer.get();
    EXPECT_EQ(response.batched_with, 2u);  // the clean pair shared one solve
    expect_matches_fixture(response, fixture);
  }
  const QueryResponse fault_response = fault_answer.get();
  EXPECT_EQ(fault_response.batched_with, 1u);  // the fault plan rode alone
  expect_matches_fixture(fault_response, fixture);
  blocker_done.get_future().wait();
  EXPECT_EQ(service.stats().coalesced, 1u);
}

TEST(SessionTest, HostileLinesAnswerTypedErrorsAndTheSessionResyncs) {
  const Fixture fixture = make_ctmdp_fixture(96, 12, {1.0}, Objective::Maximize);
  AnalysisService service(ServiceOptions{.workers = 1});

  Json model;
  model.set("kind", "ctmdp");
  model.set("source", fixture.source);
  model.set("labels", fixture.labels);
  Json good;
  good.set("id", "good");
  good.set("op", "query");
  good.set("model", std::move(model));
  good.set("time", Json(1.0));
  good.set("backend", "serial");

  std::string nul_line = "{\"id\":\"n?l\"}";
  nul_line[8] = '\0';

  std::string input;
  input += std::string(70000, 'a') + "\n";                                  // oversized
  input += nul_line + "\n";                                                 // embedded NUL
  input += "{\"id\":\"\xFF\xFE\"}\n";                                       // invalid UTF-8
  input += std::string(200, '[') + "\n";                                    // 200-deep nesting
  input += "{\"id\":\"k\",\"op\":\"query\",\"bogus\":true}\n";              // unknown field
  input += "{\"id\":\"m\",\"op\":\"query\",\"model\":{\"kind\":\"uni\",\"source\":7}}\n";
  input += good.dump() + "\n";

  std::istringstream in(input);
  std::ostringstream out;
  server::SessionOptions options;
  options.client = "hostile";
  options.timing = false;
  options.max_line_bytes = 65536;  // far above any line here but the probe
  server::run_session(in, out, service, options);

  std::vector<Json> lines;
  std::istringstream parse(out.str());
  std::string line;
  while (std::getline(parse, line)) lines.push_back(Json::parse(line));
  ASSERT_EQ(lines.size(), 8u);  // hello + 6 errors + 1 answer
  lines.erase(lines.begin());

  const char* expected_fragment[] = {
      "exceeds the 65536-byte limit", "NUL byte",      "not valid UTF-8",
      "nesting deeper than",         "unknown field", "expected a string",
  };
  for (int i = 0; i < 6; ++i) {
    EXPECT_FALSE(lines[i].get_bool("ok", true)) << "line " << i;
    const Json* error = lines[i].find("error");
    ASSERT_NE(error, nullptr) << "line " << i;
    EXPECT_EQ(error->get_string("code", ""), "parse") << "line " << i;
    EXPECT_NE(error->get_string("message", "").find(expected_fragment[i]), std::string::npos)
        << "line " << i << ": " << error->get_string("message", "");
  }

  // The hostile prefix consumed, the session answers the clean query
  // bit-identically to a direct solve — framing never desynchronizes.
  EXPECT_TRUE(lines[6].get_bool("ok", false));
  const Json* results = lines[6].find("results");
  ASSERT_NE(results, nullptr);
  EXPECT_EQ(bits(results->as_array()[0].get_number("value", -1.0)), bits(fixture.expected[0]));
}

TEST(SessionTest, AsyncSubmitAcceptsThenDelivers) {
  const Fixture fixture = make_ctmdp_fixture(95, 16, {1.0}, Objective::Maximize);
  AnalysisService service(ServiceOptions{.workers = 1});

  Json model;
  model.set("kind", "ctmdp");
  model.set("source", fixture.source);
  model.set("labels", fixture.labels);
  Json query;
  query.set("id", "async");
  query.set("op", "query");
  query.set("model", std::move(model));
  query.set("time", Json(1.0));
  query.set("backend", "serial");
  query.set("wait", false);

  const std::vector<Json> lines = run_jsonl(service, query.dump() + "\n");
  // Ack first, result as a later line (run_session drains at EOF).
  ASSERT_EQ(lines.size(), 2u);
  EXPECT_TRUE(lines[0].get_bool("accepted", false));
  EXPECT_TRUE(lines[1].get_bool("ok", false));
  const Json* results = lines[1].find("results");
  ASSERT_NE(results, nullptr);
  EXPECT_EQ(bits(results->as_array()[0].get_number("value", -1.0)), bits(fixture.expected[0]));
}

}  // namespace
}  // namespace unicon
