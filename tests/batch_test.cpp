// Batch-equivalence property suite: every answer of a multi-horizon batch
// solve must be *bitwise identical* to an independent single-t run — values,
// residual bounds, iteration counts, scheduler tables — across backends and
// thread counts (the batch fuses horizons around per-horizon arithmetic, so
// this is testable exact equality, not a tolerance check).
#include <gtest/gtest.h>

#include <algorithm>
#include <bit>
#include <cstdint>
#include <vector>

#include "ctmc/transient.hpp"
#include "ctmdp/backend.hpp"
#include "ctmdp/reachability.hpp"
#include "support/rng.hpp"
#include "testing/generate.hpp"
#include "testing/oracle.hpp"

namespace unicon {
namespace {

namespace gen = unicon::testing;

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

void expect_bitwise(const std::vector<double>& a, const std::vector<double>& b,
                    const char* what) {
  ASSERT_EQ(a.size(), b.size()) << what;
  for (std::size_t i = 0; i < a.size(); ++i) {
    ASSERT_EQ(bits(a[i]), bits(b[i])) << what << " differs at index " << i << ": " << a[i]
                                      << " vs " << b[i];
  }
}

void expect_same_result(const TimedReachabilityResult& batch,
                        const TimedReachabilityResult& single) {
  expect_bitwise(batch.values, single.values, "values");
  ASSERT_EQ(bits(batch.residual_bound), bits(single.residual_bound));
  ASSERT_EQ(batch.iterations_planned, single.iterations_planned);
  ASSERT_EQ(batch.iterations_executed, single.iterations_executed);
  ASSERT_EQ(bits(batch.uniform_rate), bits(single.uniform_rate));
  ASSERT_EQ(bits(batch.lambda), bits(single.lambda));
  ASSERT_EQ(batch.status, single.status);
  ASSERT_EQ(batch.initial_decision, single.initial_decision);
  ASSERT_EQ(batch.decisions, single.decisions);
}

std::vector<Backend> backends_under_test() {
  return {Backend::Serial, Backend::Simd, Backend::SimdPortable};
}

TEST(BatchTest, CtmdpBatchMatchesSingleRunsBitwise) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(derive_seed(0xba7c4u, seed));
    gen::RandomCtmdpConfig config;
    config.num_states = 20 + seed * 4;
    config.uniform_rate = 2.0;
    Ctmdp model = gen::random_uniform_ctmdp(rng, config);
    const BitVector goal = gen::random_goal(rng, model.num_states(), 0.3);

    // Unsorted, with duplicates and a zero: results must come back in
    // input order regardless of the internal bottom-aligned fusion.
    const std::vector<double> times = {2.5, 0.5, 4.0, 0.5, 0.0, 1.25};

    for (Backend backend : backends_under_test()) {
      for (unsigned threads : {1u, 3u}) {
        TimedReachabilityOptions options;
        options.backend = backend;
        options.threads = threads;
        options.objective = seed % 2 == 0 ? Objective::Minimize : Objective::Maximize;
        options.extract_scheduler = true;
        if (seed % 3 == 0) options.avoid = gen::random_goal(rng, model.num_states(), 0.15);

        const auto batch = timed_reachability_batch(model, goal, times, options);
        ASSERT_EQ(batch.size(), times.size());
        for (std::size_t j = 0; j < times.size(); ++j) {
          const auto single = timed_reachability(model, goal, times[j], options);
          SCOPED_TRACE("seed " + std::to_string(seed) + " backend " +
                       std::string(backend_name(backend)) + " threads " +
                       std::to_string(threads) + " t " + std::to_string(times[j]));
          expect_same_result(batch[j], single);
        }
      }
    }
  }
}

TEST(BatchTest, CtmdpBatchEarlyTerminationMatchesSingle) {
  Rng rng(0x5eedu);
  gen::RandomCtmdpConfig config;
  config.num_states = 24;
  config.uniform_rate = 3.0;
  config.absorbing_density = 0.3;
  Ctmdp model = gen::random_uniform_ctmdp(rng, config);
  const BitVector goal = gen::random_goal(rng, model.num_states(), 0.25);
  const std::vector<double> times = {30.0, 6.0, 12.0, 1.0};

  for (Backend backend : backends_under_test()) {
    TimedReachabilityOptions options;
    options.backend = backend;
    options.threads = 2;
    options.early_termination = true;
    options.early_termination_delta = 1e-10;
    options.extract_scheduler = true;
    const auto batch = timed_reachability_batch(model, goal, times, options);
    for (std::size_t j = 0; j < times.size(); ++j) {
      const auto single = timed_reachability(model, goal, times[j], options);
      SCOPED_TRACE("backend " + std::string(backend_name(backend)) + " t " +
                   std::to_string(times[j]));
      // Early termination must fire at the same step (shared value
      // sequence), so even the executed counts agree exactly.
      expect_same_result(batch[j], single);
    }
  }
}

TEST(BatchTest, CtmdpBatchGuardStopYieldsSoundResumablePartials) {
  Rng rng(0x90afu);
  gen::RandomCtmdpConfig config;
  config.num_states = 18;
  config.uniform_rate = 2.0;
  Ctmdp model = gen::random_uniform_ctmdp(rng, config);
  const BitVector goal = gen::random_goal(rng, model.num_states(), 0.25);
  const std::vector<double> times = {5.0, 1.0, 3.0};

  for (Backend backend : {Backend::Serial, Backend::SimdPortable}) {
    TimedReachabilityOptions options;
    options.backend = backend;
    options.threads = 1;

    RunGuard guard;
    guard.cancel_after_polls(4);
    TimedReachabilityOptions guarded = options;
    guarded.guard = &guard;
    const auto batch = timed_reachability_batch(model, goal, times, guarded);

    bool saw_partial = false;
    for (std::size_t j = 0; j < times.size(); ++j) {
      const auto single = timed_reachability(model, goal, times[j], options);
      if (batch[j].status == RunStatus::Converged) {
        expect_bitwise(batch[j].values, single.values, "converged horizon values");
        continue;
      }
      saw_partial = true;
      EXPECT_EQ(batch[j].status, RunStatus::Cancelled);
      EXPECT_EQ(batch[j].iterate.size(), model.num_states());
      // The per-horizon residual bound must cover the distance to the
      // fully converged answer.
      for (std::size_t s = 0; s < model.num_states(); ++s) {
        EXPECT_LE(std::abs(batch[j].values[s] - single.values[s]),
                  batch[j].residual_bound + 1e-12);
      }
      // The interrupted horizon's iterate is exactly the single run's at
      // the same step, so resuming it must land bitwise on the
      // uninterrupted answer.
      TimedReachabilityOptions resume_options = options;
      resume_options.resume = &batch[j];
      const auto resumed = timed_reachability(model, goal, times[j], resume_options);
      expect_bitwise(resumed.values, single.values, "resumed values");
    }
    EXPECT_TRUE(saw_partial);
  }
}

TEST(BatchTest, CtmdpBatchAcceptsInjectedKernels) {
  Rng rng(0x7e57u);
  Ctmdp model = gen::random_uniform_ctmdp(rng);
  const BitVector goal = gen::random_goal(rng, model.num_states(), 0.3);
  const std::vector<double> times = {1.0, 2.0};

  const DiscreteKernel discrete(model, goal);
  const DenseKernel dense(model, goal, BitVector{});

  for (Backend backend : backends_under_test()) {
    TimedReachabilityOptions plain;
    plain.backend = backend;
    TimedReachabilityOptions injected = plain;
    injected.discrete_kernel = &discrete;
    injected.dense_kernel = &dense;
    const auto a = timed_reachability_batch(model, goal, times, plain);
    const auto b = timed_reachability_batch(model, goal, times, injected);
    for (std::size_t j = 0; j < times.size(); ++j) {
      expect_bitwise(a[j].values, b[j].values, "injected-kernel values");
    }
    // Single-horizon runs accept the same cached kernels.
    const auto s1 = timed_reachability(model, goal, times[0], plain);
    const auto s2 = timed_reachability(model, goal, times[0], injected);
    expect_bitwise(s1.values, s2.values, "injected-kernel single values");
  }
}

TEST(BatchTest, CtmdpBatchRejectsBadInputs) {
  Rng rng(0xbadu);
  Ctmdp model = gen::random_uniform_ctmdp(rng);
  const BitVector goal = gen::random_goal(rng, model.num_states(), 0.3);

  EXPECT_TRUE(timed_reachability_batch(model, goal, {}).empty());
  EXPECT_THROW(timed_reachability_batch(model, goal, {1.0, -2.0}), ModelError);

  TimedReachabilityResult partial;
  partial.status = RunStatus::Cancelled;
  partial.iterate.assign(model.num_states(), 0.0);
  TimedReachabilityOptions options;
  options.resume = &partial;
  EXPECT_THROW(timed_reachability_batch(model, goal, {1.0}, options), ModelError);

  const DiscreteKernel other_kernel(Ctmdp{}, BitVector{});
  TimedReachabilityOptions bad_kernel;
  bad_kernel.backend = Backend::Serial;
  bad_kernel.discrete_kernel = &other_kernel;
  EXPECT_THROW(timed_reachability_batch(model, goal, {1.0}, bad_kernel), ModelError);
}

TEST(BatchTest, CtmdpBatchValuesAgreeWithDenseOracle) {
  for (std::uint64_t seed = 1; seed <= 3; ++seed) {
    Rng rng(derive_seed(0x0aacu, seed));
    gen::RandomCtmdpConfig config;
    config.num_states = 12;
    Ctmdp model = gen::random_uniform_ctmdp(rng, config);
    const BitVector goal = gen::random_goal(rng, model.num_states(), 0.3);
    const std::vector<double> times = {0.75, 2.0, 3.5};
    TimedReachabilityOptions options;
    options.epsilon = 1e-9;
    const auto batch = timed_reachability_batch(model, goal, times, options);
    const gen::DenseModel dense = gen::dense_from_ctmdp(model);
    for (std::size_t j = 0; j < times.size(); ++j) {
      const auto oracle = gen::naive_timed_reachability(dense, goal, times[j], 1e-12);
      for (std::size_t s = 0; s < model.num_states(); ++s) {
        EXPECT_NEAR(batch[j].values[s], oracle[s], 1e-7);
      }
    }
  }
}

TEST(BatchTest, CtmcBatchMatchesSingleRunsBitwise) {
  for (std::uint64_t seed = 1; seed <= 6; ++seed) {
    Rng rng(derive_seed(0xc7dcu, seed));
    gen::RandomCtmcConfig config;
    config.num_states = 20 + seed * 3;
    Ctmc chain = gen::random_ctmc(rng, config);
    const BitVector goal = gen::random_goal(rng, chain.num_states(), 0.3);
    const std::vector<double> times = {3.0, 0.5, 3.0, 0.0, 1.75};

    for (Backend backend : backends_under_test()) {
      for (unsigned threads : {1u, 3u}) {
        TransientOptions options;
        options.backend = backend;
        options.threads = threads;
        const auto batch = timed_reachability_batch(chain, goal, times, options);
        ASSERT_EQ(batch.size(), times.size());
        for (std::size_t j = 0; j < times.size(); ++j) {
          const auto single = timed_reachability(chain, goal, times[j], options);
          SCOPED_TRACE("seed " + std::to_string(seed) + " backend " +
                       std::string(backend_name(backend)) + " threads " +
                       std::to_string(threads) + " t " + std::to_string(times[j]));
          expect_bitwise(batch[j].probabilities, single.probabilities, "probabilities");
          ASSERT_EQ(bits(batch[j].residual_bound), bits(single.residual_bound));
          ASSERT_EQ(batch[j].iterations, single.iterations);
          ASSERT_EQ(batch[j].iterations_executed, single.iterations_executed);
          ASSERT_EQ(batch[j].status, single.status);
        }
      }
    }
  }
}

TEST(BatchTest, CtmcBatchEarlyTerminationMatchesSingle) {
  Rng rng(0xeaa1u);
  gen::RandomCtmcConfig config;
  config.num_states = 16;
  config.absorbing_density = 0.3;
  Ctmc chain = gen::random_ctmc(rng, config);
  const BitVector goal = gen::random_goal(rng, chain.num_states(), 0.25);
  const std::vector<double> times = {40.0, 5.0, 15.0};

  TransientOptions options;
  options.early_termination = true;
  options.early_termination_delta = 1e-10;
  const auto batch = timed_reachability_batch(chain, goal, times, options);
  for (std::size_t j = 0; j < times.size(); ++j) {
    const auto single = timed_reachability(chain, goal, times[j], options);
    SCOPED_TRACE("t " + std::to_string(times[j]));
    expect_bitwise(batch[j].probabilities, single.probabilities, "probabilities");
    ASSERT_EQ(bits(batch[j].residual_bound), bits(single.residual_bound));
    ASSERT_EQ(batch[j].iterations_executed, single.iterations_executed);
  }
}

// ------------------------- certificate stops inside a fused batch

/// Fast-absorbing drift model: survival contracts geometrically, so the
/// Lyapunov certificate stops each horizon a few dozen steps below its
/// Poisson window (see the truncation tests in reachability_test.cpp).
Ctmdp batch_drift_model(std::size_t n) {
  CtmdpBuilder b;
  b.ensure_states(n);
  b.set_initial(0);
  const StateId goal = static_cast<StateId>(n - 1);
  for (StateId s = 0; s + 1 < n; ++s) {
    b.begin_transition(s, "a");
    b.add_rate(goal, 3.0);
    b.add_rate(std::min<StateId>(s + 1, goal), 1.0);
    b.begin_transition(s, "b");
    b.add_rate(goal, 2.5);
    b.add_rate(std::min<StateId>(s + 1, goal), 1.5);
  }
  return b.build();
}

TEST(BatchTest, CtmdpBatchHorizonsCertifyAtDifferentSweeps) {
  // Three long horizons, all above the auto-engage threshold (lambda =
  // 1280/1600/2000): in the bottom-aligned fusion each keeps its own
  // survival-series age, so each stops at a different absolute sweep —
  // and at exactly the sweep its single-t run stops at.
  const Ctmdp model = batch_drift_model(24);
  BitVector goal(model.num_states());
  goal.set(model.num_states() - 1);
  const std::vector<double> times = {320.0, 400.0, 500.0};

  TimedReachabilityOptions options;  // auto truncation + locking defaults
  const auto batch = timed_reachability_batch(model, goal, times, options);
  ASSERT_EQ(batch.size(), times.size());
  for (std::size_t j = 0; j < times.size(); ++j) {
    const auto single = timed_reachability(model, goal, times[j], options);
    SCOPED_TRACE("t " + std::to_string(times[j]));
    ASSERT_EQ(single.truncation, Truncation::Lyapunov);
    ASSERT_GT(single.k_lyapunov, 0u);
    expect_bitwise(batch[j].values, single.values, "values");
    ASSERT_EQ(bits(batch[j].residual_bound), bits(single.residual_bound));
    ASSERT_EQ(batch[j].iterations_planned, single.iterations_planned);
    ASSERT_EQ(batch[j].iterations_executed, single.iterations_executed);
    ASSERT_EQ(batch[j].truncation, single.truncation);
    ASSERT_EQ(batch[j].k_lyapunov, single.k_lyapunov);
    ASSERT_LT(batch[j].iterations_executed, batch[j].iterations_planned);
  }
  // The stop decisions are genuinely per-horizon, not one shared cut.
  EXPECT_NE(batch[0].iterations_executed, batch[1].iterations_executed);
  EXPECT_NE(batch[1].iterations_executed, batch[2].iterations_executed);
}

TEST(BatchTest, CtmcBatchHorizonsCertifyAtDifferentSweeps) {
  CtmcBuilder b(24);
  const StateId last = 23;
  for (StateId s = 0; s < last; ++s) {
    b.add_transition(s, 3.0, last);
    b.add_transition(s, 1.0, std::min<StateId>(s + 1, last));
  }
  b.set_initial(0);
  const Ctmc chain = b.build();
  BitVector goal(chain.num_states());
  goal.set(chain.num_states() - 1);
  // The CTMC fold runs bottom-up, so engaged horizons certify at the same
  // low absolute step; a short un-engaged horizon in the mix guarantees
  // genuinely different per-horizon stop decisions inside one batch.
  const std::vector<double> times = {2.0, 400.0, 500.0};

  TransientOptions options;
  const auto batch = timed_reachability_batch(chain, goal, times, options);
  ASSERT_EQ(batch.size(), times.size());
  for (std::size_t j = 0; j < times.size(); ++j) {
    const auto single = timed_reachability(chain, goal, times[j], options);
    SCOPED_TRACE("t " + std::to_string(times[j]));
    ASSERT_EQ(single.truncation,
              j == 0 ? Truncation::FoxGlynn : Truncation::Lyapunov);
    expect_bitwise(batch[j].probabilities, single.probabilities, "probabilities");
    ASSERT_EQ(bits(batch[j].residual_bound), bits(single.residual_bound));
    ASSERT_EQ(batch[j].iterations_executed, single.iterations_executed);
    ASSERT_EQ(batch[j].truncation, single.truncation);
    ASSERT_EQ(batch[j].k_lyapunov, single.k_lyapunov);
    if (j > 0) {
      ASSERT_GT(batch[j].k_lyapunov, 0u);
      ASSERT_LT(batch[j].iterations_executed, batch[j].iterations);
    }
  }
  EXPECT_NE(batch[0].iterations_executed, batch[1].iterations_executed);
}

TEST(BatchTest, CtmcBatchGuardStopKeepsFinishedHorizonsConverged) {
  Rng rng(0x6a2du);
  Ctmc chain = gen::random_ctmc(rng);
  const BitVector goal = gen::random_goal(rng, chain.num_states(), 0.3);
  const std::vector<double> times = {6.0, 0.5, 2.5};

  RunGuard guard;
  guard.cancel_after_polls(5);
  TransientOptions guarded;
  guarded.guard = &guard;
  const auto batch = timed_reachability_batch(chain, goal, times, guarded);

  bool saw_partial = false;
  for (std::size_t j = 0; j < times.size(); ++j) {
    const auto single = timed_reachability(chain, goal, times[j]);
    if (batch[j].status == RunStatus::Converged) {
      expect_bitwise(batch[j].probabilities, single.probabilities, "converged probabilities");
      continue;
    }
    saw_partial = true;
    EXPECT_EQ(batch[j].status, RunStatus::Cancelled);
    for (std::size_t s = 0; s < chain.num_states(); ++s) {
      EXPECT_LE(std::abs(batch[j].probabilities[s] - single.probabilities[s]),
                batch[j].residual_bound + 1e-12);
    }
  }
  EXPECT_TRUE(saw_partial);
}

}  // namespace
}  // namespace unicon
