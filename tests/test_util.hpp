// Shared helpers for the unicon test suite: random model generators and
// cross-check utilities.
#pragma once

#include <memory>
#include <vector>

#include "ctmc/ctmc.hpp"
#include "ctmdp/ctmdp.hpp"
#include "imc/imc.hpp"
#include "support/rng.hpp"

namespace unicon::testutil {

struct RandomImcConfig {
  std::size_t num_states = 12;
  double uniform_rate = 3.0;
  /// Probability that a state is interactive (otherwise Markov).
  double interactive_bias = 0.4;
  /// Max outgoing transitions per state.
  unsigned max_fanout = 3;
  /// Emit only one interactive transition per interactive state, making the
  /// scheduler trivial (used for Theorem-1 style cross checks).
  bool deterministic = false;
  /// Share of tau labels among interactive transitions (the rest draw from
  /// a small visible alphabet).
  double tau_bias = 0.5;
};

/// Generates a random *closed* uniform IMC that is reachable from state 0,
/// free of interactive cycles (interactive transitions only lead to
/// strictly larger state ids, the last state is Markov) and free of
/// zero-time deadlocks.  Every stable state — Markov states and
/// visible-only (hybrid) interactive states, which receive a Markov
/// self-loop like the elapse operator's idle states — has exit rate exactly
/// config.uniform_rate, so the model is uniform in both views.
Imc random_uniform_imc(Rng& rng, const RandomImcConfig& config = {});

/// Random goal mask with roughly the given density (at least one goal
/// state, never the initial state).
std::vector<bool> random_goal(Rng& rng, std::size_t num_states, double density = 0.25);

/// Interprets a CTMDP in which every state has at most one transition as a
/// CTMC (states without transitions become absorbing).  Throws if some
/// state has two or more transitions.
Ctmc ctmc_from_deterministic_ctmdp(const Ctmdp& model);

/// Builds the CTMC induced by a stationary scheduler choice on a CTMDP.
Ctmc induced_ctmc(const Ctmdp& model, const std::vector<std::uint64_t>& choice);

}  // namespace unicon::testutil
