// Shared helpers for the unicon test suite.  The implementations moved to
// the library's testing subsystem (src/testing) so that the fuzz driver and
// the unit tests share one set of generators and oracles; this header keeps
// the historical unicon::testutil spelling alive for the tests.
#pragma once

#include "testing/generate.hpp"
#include "testing/oracle.hpp"

namespace unicon::testutil {

using testing::RandomImcConfig;
using testing::ctmc_from_deterministic_ctmdp;
using testing::induced_ctmc;
using testing::random_goal;
using testing::random_uniform_imc;

}  // namespace unicon::testutil
