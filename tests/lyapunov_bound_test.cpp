// Unit tests for the Lyapunov-certificate truncation support
// (support/lyapunov_bound.hpp): name parsing, plan resolution and the
// scalar series-bound arithmetic the solvers' stop decisions rest on.
#include "support/lyapunov_bound.hpp"

#include <gtest/gtest.h>

#include <cmath>
#include <limits>

#include "support/errors.hpp"

using namespace unicon;

TEST(TruncationNames, RoundTrip) {
  for (const Truncation mode :
       {Truncation::Auto, Truncation::FoxGlynn, Truncation::Lyapunov}) {
    EXPECT_EQ(parse_truncation(truncation_name(mode)), mode);
  }
  EXPECT_THROW(parse_truncation("foxglynn"), ModelError);
  EXPECT_THROW(parse_truncation(""), ModelError);
  EXPECT_THROW(parse_truncation("AUTO"), ModelError);
}

TEST(TruncationPlan, FoxGlynnNeverEngages) {
  const TruncationPlan plan = plan_truncation(Truncation::FoxGlynn, 5000.0, 1e-6);
  EXPECT_EQ(plan.resolved, Truncation::FoxGlynn);
  EXPECT_FALSE(plan.engaged());
  EXPECT_EQ(plan.window_epsilon, 1e-6);
  EXPECT_EQ(plan.stop_epsilon, 0.0);
  EXPECT_EQ(plan.window.left(), plan.fox_glynn_left);
  EXPECT_EQ(plan.window.right(), plan.fox_glynn_right);
}

TEST(TruncationPlan, AutoStaysFoxGlynnOnShortHorizons) {
  // lambda = 100: the window starts near 0, far below the engage threshold.
  const TruncationPlan plan = plan_truncation(Truncation::Auto, 100.0, 1e-6);
  EXPECT_EQ(plan.resolved, Truncation::FoxGlynn);
  EXPECT_LE(plan.window.left(), kLyapunovAutoEngageLeft);
  EXPECT_EQ(plan.window_epsilon, 1e-6);
}

TEST(TruncationPlan, AutoEngagesOnLongHorizons) {
  // lambda = 2000: left ~ 1700 > 1024.
  const TruncationPlan plan = plan_truncation(Truncation::Auto, 2000.0, 1e-6);
  ASSERT_GT(plan.fox_glynn_left, kLyapunovAutoEngageLeft);
  EXPECT_EQ(plan.resolved, Truncation::Lyapunov);
  EXPECT_TRUE(plan.engaged());
  EXPECT_EQ(plan.window_epsilon, 5e-7);
  EXPECT_EQ(plan.stop_epsilon, 5e-7);
  // The half-epsilon window is recomputed: it can only be wider, and the
  // recorded baseline still reflects the full-epsilon Fox-Glynn window.
  EXPECT_LE(plan.window.left(), plan.fox_glynn_left);
  EXPECT_GE(plan.window.right(), plan.fox_glynn_right);
  // The epsilon split keeps the total budget: window + stop == requested.
  EXPECT_DOUBLE_EQ(plan.window_epsilon + plan.stop_epsilon, 1e-6);
}

TEST(TruncationPlan, ExplicitLyapunovEngagesAboveLeftOne) {
  // lambda = 30 is far below the auto threshold but has left > 1.
  const TruncationPlan explicit_plan = plan_truncation(Truncation::Lyapunov, 30.0, 1e-6);
  ASSERT_GT(explicit_plan.fox_glynn_left, 1u);
  EXPECT_EQ(explicit_plan.resolved, Truncation::Lyapunov);

  const TruncationPlan auto_plan = plan_truncation(Truncation::Auto, 30.0, 1e-6);
  EXPECT_EQ(auto_plan.resolved, Truncation::FoxGlynn);

  // A window pinned at left <= 1 has no below-window sweeps to save: even
  // an explicit request degrades to Fox-Glynn.
  const TruncationPlan tiny = plan_truncation(Truncation::Lyapunov, 0.5, 1e-6);
  ASSERT_LE(tiny.fox_glynn_left, 1u);
  EXPECT_EQ(tiny.resolved, Truncation::FoxGlynn);
  EXPECT_EQ(tiny.window_epsilon, 1e-6);
}

TEST(LyapunovSeries, SeriesBoundMatchesGeometricDecay) {
  LyapunovSeries series(1e-6);
  // ubar_j = 2^-j: submultiplicative, contracting.
  series.record(0.5);
  series.record(0.25);
  series.record(0.125);
  ASSERT_EQ(series.size(), 3u);
  EXPECT_DOUBLE_EQ(series.ubar(1), 0.5);
  EXPECT_DOUBLE_EQ(series.ubar(3), 0.125);
  // bound(age) = (sum_{m<age} ubar_m) / (1 - ubar_age), ubar_0 = 1: the
  // geometric tail majorant from the last observed contraction factor.
  EXPECT_DOUBLE_EQ(series.series_bound(1), 1.0 / (1.0 - 0.5));
  EXPECT_DOUBLE_EQ(series.series_bound(3), (1.0 + 0.5 + 0.25) / (1.0 - 0.125));
  // The true series sum is 2; on exactly geometric decay the majorant is
  // tight, so every bound must dominate it and age 1 already attains it.
  EXPECT_GE(series.series_bound(1), 2.0);
  EXPECT_GE(series.series_bound(3), 2.0);
}

TEST(LyapunovSeries, CertifiesOnlyWithinStopBudget) {
  LyapunovSeries series(1e-6);
  series.record(0.5);  // bound = 1 / (1 - 0.5) = 2
  EXPECT_TRUE(series.certifies(1e-7, 1));   // 2e-7 <= 1e-6
  EXPECT_FALSE(series.certifies(1e-6, 1));  // 2e-6 > 1e-6
  EXPECT_DOUBLE_EQ(series.stop_error(1e-7, 1), 2e-7);
  // Zero delta certifies at any age with zero forfeited error.
  EXPECT_TRUE(series.certifies(0.0, 1));
  EXPECT_EQ(series.stop_error(0.0, 1), 0.0);
}

TEST(LyapunovSeries, NoContractionNeverCertifies) {
  LyapunovSeries series(1e-6);
  series.record(1.0);
  EXPECT_EQ(series.series_bound(1), std::numeric_limits<double>::infinity());
  EXPECT_FALSE(series.certifies(1e-300, 1));
  series.record(1.5);  // super-stochastic garbage must not certify either
  EXPECT_FALSE(series.certifies(0.0, 2) && series.series_bound(2) < 1.0e308);
}

TEST(LyapunovSeries, NanPoisonNeverCertifies) {
  const double nan = std::numeric_limits<double>::quiet_NaN();
  LyapunovSeries series(1e-6);
  series.record(nan);
  EXPECT_TRUE(std::isinf(series.series_bound(1)));
  EXPECT_FALSE(series.certifies(0.0, 1));
  // A NaN delta against a healthy record must not certify.
  LyapunovSeries healthy(1e-6);
  healthy.record(0.25);
  EXPECT_FALSE(healthy.certifies(nan, 1));
}

TEST(LyapunovSeries, DisengagesAtProbeCapWithoutContraction) {
  LyapunovSeries slow(1e-6, /*probe_cap=*/4);
  for (int i = 0; i < 4; ++i) slow.record(0.99);
  EXPECT_FALSE(slow.should_disengage(3));
  EXPECT_TRUE(slow.should_disengage(4));

  LyapunovSeries fast(1e-6, /*probe_cap=*/4);
  for (int i = 0; i < 4; ++i) fast.record(0.4);
  EXPECT_FALSE(fast.should_disengage(4));  // contracted: keep certifying
}
