// Dynamic fault trees end to end: the malformed-Galileo table (every
// rejection carries its 1-based line), closed-form gate goldens against the
// full lower -> minimize -> transform -> Algorithm 1 pipeline, the shipped
// zoo differentially checked against the brute-force oracle, cross-backend
// agreement, genuine min < max nondeterminism, and the scheduler-artifact
// round trip (export -> JSON -> re-read -> replay reproduces the optimal
// value bit-identically).
#include <bit>
#include <cmath>
#include <cstdint>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "ctmdp/reachability.hpp"
#include "ctmdp/scheduler.hpp"
#include "dft/lower.hpp"
#include "dft/parser.hpp"
#include "dft/sema.hpp"
#include "io/scheduler_json.hpp"
#include "lang/build.hpp"
#include "lang/diagnostics.hpp"
#include "support/errors.hpp"
#include "testing/dft_oracle.hpp"

using namespace unicon;
// unicon::testing clashes with gtest's ::testing under the using-directive.
namespace fuzzdft = unicon::testing;

namespace {

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

struct Pipeline {
  UimcAnalysisResult result;
  std::size_t raw_states = 0;
  std::size_t minimized_states = 0;
};

// Parse -> check -> lower -> (optionally) minimize -> analyze, serial
// backend so values are reproducible bit-for-bit.
Pipeline run_dft(const std::string& source, double t, Objective objective, double eps = 1e-10,
                 bool minimize = true, bool extract_scheduler = false,
                 Backend backend = Backend::Serial, unsigned threads = 1) {
  const dft::CheckedDft checked = dft::parse_and_check_dft(source);
  lang::BuiltModel built = dft::lower_dft(checked);
  Pipeline out;
  out.raw_states = built.system.num_states();
  if (minimize) built = lang::minimize_model(built);
  out.minimized_states = built.system.num_states();
  UimcAnalysisOptions options;
  options.reachability.epsilon = eps;
  options.reachability.objective = objective;
  options.reachability.backend = backend;
  options.reachability.threads = threads;
  options.reachability.extract_scheduler = extract_scheduler;
  out.result = analyze_timed_reachability(built.system, built.mask("failed"), t, options);
  return out;
}

double unreliability(const std::string& source, double t, Objective objective) {
  return run_dft(source, t, objective).result.value;
}

// ---------------------------------------------------------------------------
// Malformed inputs: one entry per rule of dft/sema.hpp (plus lexer and
// parser rejections), each reported with category and exact 1-based line.

struct BadDft {
  const char* name;
  const char* source;
  lang::Diagnostic::Category category;
  std::uint32_t line;
  const char* message_part;
};

const BadDft kBadDfts[] = {
    {"unexpected_character", "toplevel \"a\";\n$\n", lang::Diagnostic::Category::Lex, 2,
     "unexpected character"},
    {"unterminated_quoted_name", "toplevel \"a\";\n\"a lambda=1;\n",
     lang::Diagnostic::Category::Lex, 2, "unterminated quoted name"},
    {"malformed_number", "toplevel \"a\";\n\"a\" lambda=1.2.3;\n",
     lang::Diagnostic::Category::Lex, 2, "malformed number"},
    {"missing_toplevel", "\"a\" lambda=1;\n", lang::Diagnostic::Category::Parse, 1,
     "expected 'toplevel' declaration first"},
    {"duplicate_toplevel", "toplevel \"a\";\ntoplevel \"a\";\n\"a\" lambda=1;\n",
     lang::Diagnostic::Category::Parse, 2, "duplicate 'toplevel'"},
    {"unknown_gate_type", "toplevel \"t\";\n\"t\" nand \"a\" \"b\";\n\"a\" lambda=1;\n\"b\" "
                          "lambda=1;\n",
     lang::Diagnostic::Category::Parse, 2, "expected gate type"},
    {"vot_zero_threshold", "toplevel \"t\";\n\"t\" 0of2 \"a\" \"b\";\n\"a\" lambda=1;\n\"b\" "
                           "lambda=1;\n",
     lang::Diagnostic::Category::Parse, 2, "must satisfy 1 <= k <= n"},
    {"vot_arity_mismatch", "toplevel \"t\";\n\"t\" 2of3 \"a\" \"b\";\n\"a\" lambda=1;\n\"b\" "
                           "lambda=1;\n",
     lang::Diagnostic::Category::Parse, 2, "declares 3 inputs but lists 2"},
    {"duplicate_lambda", "toplevel \"a\";\n\"a\" lambda=1 lambda=2;\n",
     lang::Diagnostic::Category::Parse, 2, "duplicate lambda"},
    {"duplicate_element", "toplevel \"a\";\n\"a\" lambda=1;\n\"a\" lambda=2;\n",
     lang::Diagnostic::Category::Semantic, 3, "duplicate element name"},
    {"undeclared_toplevel", "toplevel \"ghost\";\n\"a\" lambda=1;\n",
     lang::Diagnostic::Category::Semantic, 1, "is not declared"},
    {"undeclared_child", "toplevel \"t\";\n\"t\" and \"a\" \"ghost\";\n\"a\" lambda=1;\n",
     lang::Diagnostic::Category::Semantic, 2, "references undeclared element 'ghost'"},
    {"duplicate_child", "toplevel \"t\";\n\"t\" and \"a\" \"a\";\n\"a\" lambda=1;\n",
     lang::Diagnostic::Category::Semantic, 2, "lists child 'a' twice"},
    {"missing_lambda", "toplevel \"a\";\n\"a\" dorm=0.5;\n", lang::Diagnostic::Category::Semantic,
     2, "has no failure rate"},
    {"nonpositive_lambda", "toplevel \"a\";\n\"a\" lambda=0;\n",
     lang::Diagnostic::Category::Semantic, 2, "finite failure rate > 0"},
    {"dorm_out_of_range", "toplevel \"t\";\n\"t\" wsp \"p\" \"s\";\n\"p\" lambda=1;\n\"s\" "
                          "lambda=1 dorm=1.5;\n",
     lang::Diagnostic::Category::Semantic, 4, "must lie in [0, 1]"},
    {"dorm_without_spare_gate", "toplevel \"a\";\n\"a\" lambda=1 dorm=0.5;\n",
     lang::Diagnostic::Category::Semantic, 2, "is not the spare of any gate"},
    {"cycle", "toplevel \"t\";\n\"t\" and \"u\" \"a\";\n\"u\" and \"t\" \"a\";\n\"a\" "
              "lambda=1;\n",
     lang::Diagnostic::Category::Semantic, 3, "cycle through"},
    {"spare_gate_arity", "toplevel \"t\";\n\"t\" csp \"p\";\n\"p\" lambda=1;\n",
     lang::Diagnostic::Category::Semantic, 2, "needs a primary and at least one spare"},
    {"spare_shared_by_two_gates",
     "toplevel \"t\";\n\"t\" and \"g1\" \"g2\";\n\"g1\" csp \"p1\" \"s\";\n\"g2\" csp \"p2\" "
     "\"s\";\n\"p1\" lambda=1;\n\"p2\" lambda=1;\n\"s\" lambda=1;\n",
     lang::Diagnostic::Category::Semantic, 3, "cannot also be the input of another gate"},
    {"cold_spare_with_dorm",
     "toplevel \"t\";\n\"t\" csp \"p\" \"s\";\n\"p\" lambda=1;\n\"s\" lambda=1 dorm=0.5;\n",
     lang::Diagnostic::Category::Semantic, 4, "cold spare 's' must not declare dorm != 0"},
    {"warm_spare_without_dorm",
     "toplevel \"t\";\n\"t\" wsp \"p\" \"s\";\n\"p\" lambda=1;\n\"s\" lambda=1;\n",
     lang::Diagnostic::Category::Semantic, 4, "needs an explicit dorm"},
    {"fdep_dependent_not_basic",
     "toplevel \"t\";\n\"t\" and \"a\" \"b\";\n\"g\" and \"a\" \"b\";\n\"a\" lambda=1;\n\"b\" "
     "lambda=1;\n\"d\" fdep \"a\" \"g\";\n",
     lang::Diagnostic::Category::Semantic, 6, "must be a basic event"},
    {"fdep_as_gate_input",
     "toplevel \"t\";\n\"t\" and \"d\" \"b\";\n\"a\" lambda=1;\n\"b\" lambda=1;\n\"d\" fdep "
     "\"a\" \"b\";\n",
     lang::Diagnostic::Category::Semantic, 5, "cannot be the input of a gate"},
    {"disconnected_element",
     "toplevel \"t\";\n\"t\" and \"a\" \"b\";\n\"a\" lambda=1;\n\"b\" lambda=1;\n\"c\" "
     "lambda=1;\n",
     lang::Diagnostic::Category::Semantic, 5, "is not connected to the toplevel"},
};

TEST(DftDiagnostics, MalformedInputsReportExactLines) {
  for (const BadDft& c : kBadDfts) {
    SCOPED_TRACE(c.name);
    bool threw = false;
    try {
      (void)dft::parse_and_check_dft(c.source, "bad.dft");
    } catch (const lang::LangError& e) {
      threw = true;
      const lang::Diagnostic& d = e.diagnostic();
      EXPECT_EQ(static_cast<int>(d.category), static_cast<int>(c.category))
          << lang::category_name(d.category) << " — " << d.message;
      EXPECT_EQ(d.loc.line, c.line) << d.message;
      EXPECT_NE(d.message.find(c.message_part), std::string::npos) << d.message;
      // Rendered as file:line:col: category: message, so CLI users can jump
      // straight to the offending element.
      const std::string prefix = "bad.dft:" + std::to_string(c.line) + ":";
      EXPECT_EQ(std::string(e.what()).rfind(prefix, 0), 0u) << e.what();
    }
    EXPECT_TRUE(threw) << "input unexpectedly accepted";
  }
}

TEST(DftParser, GalileoPrintIsCanonical) {
  const std::string spelled =
      "toplevel \"top\";\n"
      "\"top\" pand \"a\" \"b\";\n"
      "\"a\" lambda=1.0;\n\"b\" lambda=1.0;\n\"t\" lambda=5.0;\n"
      "\"dep\" fdep \"t\" \"a\" \"b\";\n";
  const std::string respelled =
      "/* same tree */ toplevel \"top\";\n"
      "  \"top\" pand \"a\" \"b\";  // priority-and\n"
      "\"a\" lambda=1;\n\"b\" lambda=1;\n\"t\" lambda=5;\n"
      "\"dep\" fdep \"t\" \"a\" \"b\";\n";
  const std::string canonical = dft::to_galileo(dft::parse_dft(spelled));
  EXPECT_EQ(canonical, dft::to_galileo(dft::parse_dft(respelled)));
  // The canonical print re-parses to itself (fixpoint).
  EXPECT_EQ(canonical, dft::to_galileo(dft::parse_dft(canonical)));
}

// ---------------------------------------------------------------------------
// Closed-form gate goldens through the full production pipeline.

constexpr double kEps = 1e-10;
constexpr double kTol = 1e-8;

TEST(DftGolden, AndOfTwoExponentials) {
  const std::string source =
      "toplevel \"t\";\n\"t\" and \"a\" \"b\";\n\"a\" lambda=1;\n\"b\" lambda=2;\n";
  for (const double t : {0.3, 1.0, 2.5}) {
    const double expected = (1 - std::exp(-t)) * (1 - std::exp(-2 * t));
    EXPECT_NEAR(unreliability(source, t, Objective::Maximize), expected, kTol) << "t=" << t;
    // A static gate has no scheduler choices: inf == sup.
    EXPECT_NEAR(unreliability(source, t, Objective::Minimize), expected, kTol) << "t=" << t;
  }
}

TEST(DftGolden, OrIsMinimumOfFailureTimes) {
  const std::string source =
      "toplevel \"t\";\n\"t\" or \"a\" \"b\";\n\"a\" lambda=1;\n\"b\" lambda=2;\n";
  for (const double t : {0.3, 1.0, 2.5}) {
    const double expected = 1 - std::exp(-3 * t);
    EXPECT_NEAR(unreliability(source, t, Objective::Maximize), expected, kTol) << "t=" << t;
  }
}

TEST(DftGolden, VotingTwoOfThree) {
  const std::string source =
      "toplevel \"t\";\n\"t\" 2of3 \"a\" \"b\" \"c\";\n"
      "\"a\" lambda=1;\n\"b\" lambda=1;\n\"c\" lambda=1;\n";
  for (const double t : {0.5, 1.0}) {
    const double p = 1 - std::exp(-t);
    const double expected = 3 * p * p - 2 * p * p * p;
    EXPECT_NEAR(unreliability(source, t, Objective::Maximize), expected, kTol) << "t=" << t;
  }
}

TEST(DftGolden, PriorityAndOrdersFailures) {
  // P(A fails before B, both within t) for A ~ Exp(l1), B ~ Exp(l2).
  const double l1 = 1.0, l2 = 2.0;
  const std::string source =
      "toplevel \"t\";\n\"t\" pand \"a\" \"b\";\n\"a\" lambda=1;\n\"b\" lambda=2;\n";
  for (const double t : {0.5, 1.0, 2.0}) {
    const double expected = l1 / (l1 + l2) * (1 - std::exp(-(l1 + l2) * t)) -
                            std::exp(-l2 * t) * (1 - std::exp(-l1 * t));
    EXPECT_NEAR(unreliability(source, t, Objective::Maximize), expected, kTol) << "t=" << t;
    EXPECT_NEAR(unreliability(source, t, Objective::Minimize), expected, kTol) << "t=" << t;
  }
}

TEST(DftGolden, ColdSpareIsErlang) {
  const std::string source =
      "toplevel \"t\";\n\"t\" csp \"p\" \"s\";\n\"p\" lambda=1;\n\"s\" lambda=1;\n";
  for (const double t : {0.5, 1.0, 3.0}) {
    const double expected = 1 - std::exp(-t) * (1 + t);  // Erlang(2, 1)
    EXPECT_NEAR(unreliability(source, t, Objective::Maximize), expected, kTol) << "t=" << t;
  }
}

TEST(DftGolden, WarmSpareMatchesHandSolvedChain) {
  // Primary at rate 1, spare dormant at 0.5 and active at 1: the induced
  // 4-state chain solves to U(t) = 1 - 3 e^{-t} + 2 e^{-1.5 t}.
  const std::string source =
      "toplevel \"t\";\n\"t\" wsp \"p\" \"s\";\n\"p\" lambda=1;\n\"s\" lambda=1 dorm=0.5;\n";
  for (const double t : {0.5, 1.0, 2.0}) {
    const double expected = 1 - 3 * std::exp(-t) + 2 * std::exp(-1.5 * t);
    EXPECT_NEAR(unreliability(source, t, Objective::Maximize), expected, kTol) << "t=" << t;
    EXPECT_NEAR(unreliability(source, t, Objective::Minimize), expected, kTol) << "t=" << t;
  }
}

TEST(DftGolden, HotSpareBehavesLikeAnd) {
  const std::string source =
      "toplevel \"t\";\n\"t\" hsp \"p\" \"s\";\n\"p\" lambda=1;\n\"s\" lambda=2;\n";
  const double expected = (1 - std::exp(-1.0)) * (1 - std::exp(-2.0));
  EXPECT_NEAR(unreliability(source, 1.0, Objective::Maximize), expected, kTol);
}

TEST(DftGolden, FdepForcesDependentsOnTrigger) {
  // top = and(a, b) with fdep(t -> a, b): top fails once the trigger fires
  // or both leaves fail on their own.
  const std::string source =
      "toplevel \"top\";\n\"top\" and \"a\" \"b\";\n"
      "\"a\" lambda=1;\n\"b\" lambda=1;\n\"t\" lambda=2;\n"
      "\"dep\" fdep \"t\" \"a\" \"b\";\n";
  // By inclusion-exclusion over the trigger: U = P(T<=t) + P(T>t)*P(A<=t)P(B<=t)
  // is wrong (A, B can fail before T); instead condition on the trigger time.
  // Easier: failure time is min(T, max(A, B)), all independent.
  // P(min(T, max(A,B)) <= t) = 1 - P(T > t) P(max(A,B) > t)
  //                          = 1 - e^{-2t} (1 - (1-e^{-t})^2).
  const double t = 1.0;
  const double pmax = (1 - std::exp(-t)) * (1 - std::exp(-t));
  const double expected = 1 - std::exp(-2 * t) * (1 - pmax);
  EXPECT_NEAR(unreliability(source, t, Objective::Maximize), expected, kTol);
  EXPECT_NEAR(unreliability(source, t, Objective::Minimize), expected, kTol);
}

// ---------------------------------------------------------------------------
// Nondeterminism: the showcase tree has genuinely different inf and sup.

TEST(DftNondeterminism, ShowcaseHasStrictSchedulerGap) {
  const std::string source = fuzzdft::dft_nondeterministic_showcase();
  const double sup = unreliability(source, 1.0, Objective::Maximize);
  const double inf = unreliability(source, 1.0, Objective::Minimize);
  EXPECT_LT(inf + 0.5, sup) << "inf=" << inf << " sup=" << sup;
  // Both bounds sandwich the oracle's matching objective.
  const dft::CheckedDft checked = dft::parse_and_check_dft(source);
  EXPECT_NEAR(fuzzdft::dft_oracle_unreliability(checked, 1.0, 1e-12, Objective::Maximize), sup,
              1e-9);
  EXPECT_NEAR(fuzzdft::dft_oracle_unreliability(checked, 1.0, 1e-12, Objective::Minimize), inf,
              1e-9);
}

TEST(DftNondeterminism, MinimizationPreservesBothBounds) {
  const std::string source = fuzzdft::dft_nondeterministic_showcase();
  for (const Objective objective : {Objective::Maximize, Objective::Minimize}) {
    const Pipeline minimized = run_dft(source, 1.0, objective, kEps, /*minimize=*/true);
    const Pipeline raw = run_dft(source, 1.0, objective, kEps, /*minimize=*/false);
    EXPECT_LT(minimized.minimized_states, raw.raw_states);
    EXPECT_NEAR(minimized.result.value, raw.result.value, 1e-9);
  }
}

// ---------------------------------------------------------------------------
// The shipped zoo, differentially against the brute-force oracle chain.

TEST(DftZoo, EveryShippedModelAgreesWithTheOracle) {
  const std::filesystem::path dir(UNICON_DFT_DIR);
  ASSERT_TRUE(std::filesystem::is_directory(dir)) << dir;
  fuzzdft::DftFuzzConfig config;
  config.time = 1.0;
  config.epsilon = 1e-12;
  config.tolerance = 1e-9;
  config.backend = Backend::Serial;
  std::size_t models = 0;
  for (const auto& entry : std::filesystem::directory_iterator(dir)) {
    if (entry.path().extension() != ".dft") continue;
    SCOPED_TRACE(entry.path().filename().string());
    std::ifstream in(entry.path());
    ASSERT_TRUE(in.good());
    std::ostringstream buffer;
    buffer << in.rdbuf();
    std::uint64_t checks = 0;
    const std::string failure = fuzzdft::check_dft_source(buffer.str(), config, &checks);
    EXPECT_EQ(failure, "");
    EXPECT_GT(checks, 0u);
    ++models;
  }
  EXPECT_GE(models, 7u) << "zoo unexpectedly small";
}

TEST(DftZoo, LargestModelMinimizesSubstantially) {
  const std::filesystem::path path = std::filesystem::path(UNICON_DFT_DIR) / "cas.dft";
  std::ifstream in(path);
  ASSERT_TRUE(in.good()) << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const Pipeline p = run_dft(buffer.str(), 1.0, Objective::Maximize);
  EXPECT_GT(p.raw_states, 1000u);
  EXPECT_LT(p.minimized_states * 10, p.raw_states);
  EXPECT_GT(p.result.value, 0.0);
  EXPECT_LT(p.result.value, 1.0);
}

// ---------------------------------------------------------------------------
// Backends and threads.

TEST(DftBackends, SerialAndSimdAgreeAndAreThreadStable) {
  const std::string source = fuzzdft::dft_nondeterministic_showcase();
  for (const Objective objective : {Objective::Maximize, Objective::Minimize}) {
    const double serial1 =
        run_dft(source, 1.0, objective, kEps, true, false, Backend::Serial, 1).result.value;
    const double serial2 =
        run_dft(source, 1.0, objective, kEps, true, false, Backend::Serial, 2).result.value;
    const double simd1 =
        run_dft(source, 1.0, objective, kEps, true, false, Backend::Simd, 1).result.value;
    const double simd2 =
        run_dft(source, 1.0, objective, kEps, true, false, Backend::Simd, 2).result.value;
    // Each backend is bit-identical to itself across thread counts; the two
    // backends differ by FP reassociation only.
    EXPECT_EQ(bits(serial1), bits(serial2));
    EXPECT_EQ(bits(simd1), bits(simd2));
    EXPECT_NEAR(serial1, simd1, 1e-9);
  }
}

// ---------------------------------------------------------------------------
// Scheduler artifacts: export, JSON round trip, bit-identical replay.

TEST(DftScheduler, ArtifactRoundTripReproducesOptimalValueBitIdentically) {
  const std::string source = fuzzdft::dft_nondeterministic_showcase();
  const double t = 1.0;
  const double eps = 1e-8;
  for (const Objective objective : {Objective::Maximize, Objective::Minimize}) {
    SCOPED_TRACE(objective == Objective::Maximize ? "max" : "min");
    const Pipeline p = run_dft(source, t, objective, eps, /*minimize=*/true,
                               /*extract_scheduler=*/true);
    const TimedReachabilityResult& solve = p.result.reachability;
    ASSERT_FALSE(solve.decisions.empty());
    ASSERT_EQ(solve.decisions.size(), solve.iterations_planned);

    const io::SchedulerArtifact artifact =
        io::scheduler_artifact_from_result(solve, objective, t, eps, p.result.value);
    EXPECT_EQ(artifact.states, solve.values.size());
    EXPECT_EQ(artifact.steps, solve.decisions.size());
    EXPECT_EQ(bits(artifact.uniform_rate), bits(solve.uniform_rate));

    // JSON round trip is exact: re-serializing the parsed artifact gives
    // the same bytes, and all tables survive.
    const std::string json = io::scheduler_to_json(artifact);
    const io::SchedulerArtifact back = io::scheduler_from_json(json);
    EXPECT_EQ(io::scheduler_to_json(back), json);
    EXPECT_EQ(back.decisions, artifact.decisions);
    EXPECT_EQ(back.initial_decision, artifact.initial_decision);
    EXPECT_EQ(bits(back.value), bits(artifact.value));

    // Replaying the re-read table through the policy evaluator reproduces
    // the optimizing solve's value at the initial state bit-identically —
    // for the minimizing scheduler too, against the universal goal
    // transfer the min objective solved on.
    const Ctmdp& ctmdp = p.result.transformed.ctmdp;
    const BitVector& goal = objective == Objective::Maximize ? p.result.transformed.goal
                                                             : p.result.transformed.goal_universal;
    TimedReachabilityOptions eval;
    eval.epsilon = eps;
    const TimedReachabilityResult replay =
        evaluate_countdown_scheduler(ctmdp, goal, t, back.scheduler(), eval);
    EXPECT_EQ(bits(replay.values[ctmdp.initial()]), bits(p.result.value));

    // A fixed first-transition scheduler does not beat the optimum.
    std::vector<std::uint64_t> row(solve.values.size(), kNoTransition);
    for (std::size_t s = 0; s < row.size(); ++s) {
      const auto [lo, hi] = ctmdp.transition_range(s);
      if (lo != hi) row[s] = lo;
    }
    std::vector<std::vector<std::uint64_t>> first(solve.decisions.size(), row);
    const TimedReachabilityResult fixed = evaluate_countdown_scheduler(
        ctmdp, goal, t, CountdownScheduler(std::move(first)), eval);
    const double slack = 1e-12;
    if (objective == Objective::Maximize) {
      EXPECT_LE(fixed.values[ctmdp.initial()], p.result.value + slack);
    } else {
      EXPECT_GE(fixed.values[ctmdp.initial()], p.result.value - slack);
    }
  }
}

TEST(DftScheduler, MalformedArtifactsAreRejected) {
  const Pipeline p = run_dft(fuzzdft::dft_nondeterministic_showcase(), 1.0, Objective::Maximize,
                             1e-8, true, /*extract_scheduler=*/true);
  const io::SchedulerArtifact artifact = io::scheduler_artifact_from_result(
      p.result.reachability, Objective::Maximize, 1.0, 1e-8, p.result.value);
  const std::string json = io::scheduler_to_json(artifact);

  EXPECT_THROW((void)io::scheduler_from_json("not json"), ParseError);
  EXPECT_THROW((void)io::scheduler_from_json("{}"), ParseError);

  std::string wrong_schema = json;
  const std::string::size_type at = wrong_schema.find("unicon-scheduler-v1");
  ASSERT_NE(at, std::string::npos);
  wrong_schema.replace(at, std::string("unicon-scheduler-v1").size(), "unicon-scheduler-v9");
  EXPECT_THROW((void)io::scheduler_from_json(wrong_schema), ParseError);
}

// ---------------------------------------------------------------------------
// Lowering guard rails.

TEST(DftLower, StateBudgetIsEnforced) {
  const dft::CheckedDft checked = dft::parse_and_check_dft(fuzzdft::dft_nondeterministic_showcase());
  dft::LowerOptions options;
  options.max_states = 3;
  EXPECT_THROW((void)dft::lower_dft(checked, options), ModelError);
}

TEST(DftLower, ComposedSystemIsUniformByConstruction) {
  const dft::CheckedDft checked = dft::parse_and_check_dft(fuzzdft::dft_nondeterministic_showcase());
  const lang::BuiltModel built = dft::lower_dft(checked);
  // Uniform rate is the sum of all basic-event lambdas (1 + 1 + 5).
  EXPECT_DOUBLE_EQ(built.uniform_rate, checked.total_rate);
  EXPECT_DOUBLE_EQ(built.uniform_rate, 7.0);
}

}  // namespace
