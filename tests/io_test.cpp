#include <gtest/gtest.h>

#include <sstream>

#include "core/transform.hpp"
#include "ctmdp/reachability.hpp"
#include "ftwc/direct.hpp"
#include "io/dot.hpp"
#include "io/tra.hpp"
#include "support/errors.hpp"

namespace unicon {
namespace {

Ctmc sample_ctmc() {
  CtmcBuilder b(3);
  b.ensure_states(3);
  b.set_initial(1);
  b.add_transition(0, 1.5, 1);
  b.add_transition(1, 0.25, 2);
  b.add_transition(2, 3.0, 0);
  b.add_transition(2, 1.0, 2);
  return b.build();
}

Ctmdp sample_ctmdp() {
  CtmdpBuilder b;
  b.ensure_states(2);
  b.set_initial(0);
  const std::vector<Action> word{b.intern_action("r_a"), b.intern_action("g_b")};
  b.begin_transition(0, b.intern_word(word));
  b.add_rate(1, 2.0);
  b.begin_transition(0, "tau");
  b.add_rate(0, 1.0);
  b.add_rate(1, 1.0);
  b.begin_transition(1, "stay");
  b.add_rate(1, 2.0);
  return b.build();
}

TEST(TraIo, CtmcRoundTrip) {
  const Ctmc original = sample_ctmc();
  std::stringstream buffer;
  io::write_ctmc(buffer, original);
  const Ctmc loaded = io::read_ctmc(buffer);
  ASSERT_EQ(loaded.num_states(), original.num_states());
  ASSERT_EQ(loaded.num_transitions(), original.num_transitions());
  EXPECT_EQ(loaded.initial(), original.initial());
  for (StateId s = 0; s < original.num_states(); ++s) {
    EXPECT_DOUBLE_EQ(loaded.exit_rate(s), original.exit_rate(s));
  }
}

TEST(TraIo, CtmdpRoundTrip) {
  const Ctmdp original = sample_ctmdp();
  std::stringstream buffer;
  io::write_ctmdp(buffer, original);
  const Ctmdp loaded = io::read_ctmdp(buffer);
  ASSERT_EQ(loaded.num_states(), original.num_states());
  ASSERT_EQ(loaded.num_transitions(), original.num_transitions());
  for (std::uint64_t t = 0; t < original.num_transitions(); ++t) {
    EXPECT_EQ(loaded.source(t), original.source(t));
    EXPECT_DOUBLE_EQ(loaded.exit_rate(t), original.exit_rate(t));
    EXPECT_EQ(loaded.words().str(loaded.label(t), loaded.actions()),
              original.words().str(original.label(t), original.actions()));
  }
}

TEST(TraIo, ImcRoundTrip) {
  ImcBuilder b;
  b.add_state();
  b.add_state();
  b.add_state();
  b.set_initial(1);
  b.add_interactive(0, "grab", 1);
  b.add_interactive(1, kTau, 2);
  b.add_markov(2, 3.5, 0);
  b.add_markov(2, 0.5, 2);
  const Imc original = b.build();

  std::stringstream buffer;
  io::write_imc(buffer, original);
  const Imc loaded = io::read_imc(buffer);
  ASSERT_EQ(loaded.num_states(), original.num_states());
  EXPECT_EQ(loaded.initial(), original.initial());
  EXPECT_EQ(loaded.num_interactive_transitions(), original.num_interactive_transitions());
  EXPECT_EQ(loaded.num_markov_transitions(), original.num_markov_transitions());
  EXPECT_TRUE(loaded.has_tau(1));
  EXPECT_DOUBLE_EQ(loaded.exit_rate(2), 4.0);
  EXPECT_EQ(loaded.actions().name(loaded.out_interactive(0)[0].action), "grab");
}

TEST(TraIo, ImcMissingEndThrows) {
  std::stringstream buffer("STATES 1\nINITIAL 0\n");
  EXPECT_THROW(io::read_imc(buffer), ParseError);
}

TEST(TraIo, ImcBadLineKindThrows) {
  std::stringstream buffer("STATES 1\nINITIAL 0\nX 0 1 0\nEND\n");
  EXPECT_THROW(io::read_imc(buffer), ParseError);
}

TEST(TraIo, GoalRoundTrip) {
  const std::vector<bool> goal{false, true, true, false};
  std::stringstream buffer;
  io::write_goal(buffer, goal);
  EXPECT_EQ(io::read_goal(buffer, 4), goal);
}

TEST(TraIo, GoalOutOfRangeThrows) {
  std::stringstream buffer("7 goal\n");
  EXPECT_THROW(io::read_goal(buffer, 4), ParseError);
}

TEST(TraIo, BadHeaderThrows) {
  std::stringstream buffer("NOTSTATES 2\n");
  EXPECT_THROW(io::read_ctmc(buffer), ParseError);
}

TEST(TraIo, TruncatedBodyThrows) {
  std::stringstream buffer("STATES 2\nTRANSITIONS 2\nINITIAL 0\n0 1 1.0\n");
  EXPECT_THROW(io::read_ctmc(buffer), ParseError);
}

TEST(TraIo, MalformedInputsRejectedWithLineNumbers) {
  enum class Format { Ctmc, Imc, Ctmdp, Labels };
  struct Case {
    const char* name;
    Format format;
    const char* text;
    const char* needle;  // expected substring of the message
    std::size_t line;    // expected reported line (0 = don't check)
  };
  const Case cases[] = {
      {"ctmc nan rate", Format::Ctmc, "STATES 2\nTRANSITIONS 1\nINITIAL 0\n0 1 nan\n",
       "not finite", 4},
      {"ctmc inf rate", Format::Ctmc, "STATES 2\nTRANSITIONS 1\nINITIAL 0\n0 1 inf\n",
       "not finite", 4},
      {"ctmc negative rate", Format::Ctmc, "STATES 2\nTRANSITIONS 1\nINITIAL 0\n0 1 -2.0\n",
       "must be positive", 4},
      {"ctmc zero rate", Format::Ctmc, "STATES 2\nTRANSITIONS 1\nINITIAL 0\n0 1 0.0\n",
       "must be positive", 4},
      {"ctmc duplicate transition", Format::Ctmc,
       "STATES 2\nTRANSITIONS 2\nINITIAL 0\n0 1 1.0\n0 1 2.0\n", "duplicate transition", 5},
      {"ctmc target out of range", Format::Ctmc, "STATES 2\nTRANSITIONS 1\nINITIAL 0\n0 5 1.0\n",
       "out of range", 4},
      {"ctmc initial out of range", Format::Ctmc, "STATES 2\nTRANSITIONS 0\nINITIAL 7\n",
       "out of range", 3},
      {"ctmc rate not a number", Format::Ctmc, "STATES 2\nTRANSITIONS 1\nINITIAL 0\n0 1 fast\n",
       "bad rate", 4},
      {"ctmc garbage state id", Format::Ctmc, "STATES 2\nTRANSITIONS 1\nINITIAL 0\n0 x1 1.0\n",
       "bad target state", 4},
      {"ctmc truncated body", Format::Ctmc, "STATES 2\nTRANSITIONS 2\nINITIAL 0\n0 1 1.0\n",
       "unexpected end of file", 0},
      {"imc markov nan rate", Format::Imc, "STATES 2\nINITIAL 0\nM 0 nan 1\nEND\n", "not finite",
       3},
      {"imc state out of range", Format::Imc, "STATES 2\nINITIAL 0\nI 0 a 9\nEND\n",
       "out of range", 3},
      {"ctmdp inf rate", Format::Ctmdp,
       "STATES 2\nTRANSITIONS 1\nINITIAL 0\n0 tau 1 1 inf\n", "not finite", 4},
      {"ctmdp duplicate rate target", Format::Ctmdp,
       "STATES 2\nTRANSITIONS 1\nINITIAL 0\n0 tau 2 1 1.0 1 2.0\n", "duplicate rate entry", 4},
      {"ctmdp target out of range", Format::Ctmdp,
       "STATES 2\nTRANSITIONS 1\nINITIAL 0\n0 tau 1 9 1.0\n", "out of range", 4},
      {"labels state out of range", Format::Labels, "0 goal\n\n9 goal\n", "out of range", 3},
  };
  for (const Case& c : cases) {
    SCOPED_TRACE(c.name);
    std::stringstream in(c.text);
    try {
      switch (c.format) {
        case Format::Ctmc:
          io::read_ctmc(in);
          break;
        case Format::Imc:
          io::read_imc(in);
          break;
        case Format::Ctmdp:
          io::read_ctmdp(in);
          break;
        case Format::Labels:
          io::read_labels(in, 4);
          break;
      }
      FAIL() << "expected ParseError";
    } catch (const ParseError& e) {
      EXPECT_EQ(e.code(), ErrorCode::Parse);
      EXPECT_NE(std::string(e.what()).find(c.needle), std::string::npos) << e.what();
      if (c.line != 0) {
        EXPECT_EQ(e.line(), c.line);
      }
    }
  }
}

TEST(TraIo, FtwcCtmdpRoundTripPreservesAnalysis) {
  ftwc::Parameters params;
  params.n = 1;
  const auto built = ftwc::build_direct(params);
  const auto transformed = transform_to_ctmdp(built.uimc, &built.goal);

  std::stringstream buffer;
  io::write_ctmdp(buffer, transformed.ctmdp);
  const Ctmdp loaded = io::read_ctmdp(buffer);

  const auto before = timed_reachability(transformed.ctmdp, transformed.goal, 100.0);
  const auto after = timed_reachability(loaded, transformed.goal, 100.0);
  EXPECT_NEAR(before.values[transformed.ctmdp.initial()], after.values[loaded.initial()], 1e-9);
}

TEST(TraIo, FileHelpersWorkAndThrowOnBadPaths) {
  const Ctmc c = sample_ctmc();
  const std::string path = ::testing::TempDir() + "/unicon_io_test.tra";
  io::save_ctmc(path, c);
  const Ctmc loaded = io::load_ctmc(path);
  EXPECT_EQ(loaded.num_states(), c.num_states());
  EXPECT_THROW(io::load_ctmc("/nonexistent/dir/x.tra"), ParseError);
  EXPECT_THROW(io::save_ctmc("/nonexistent/dir/x.tra", c), ParseError);
}

TEST(Dot, ImcExportMentionsStatesAndRates) {
  ImcBuilder b;
  b.add_state("start");
  b.add_state("stop");
  b.set_initial(0);
  b.add_interactive(0, "a", 1);
  b.add_markov(1, 2.5, 0);
  std::stringstream out;
  io::write_dot(out, b.build());
  const std::string dot = out.str();
  EXPECT_NE(dot.find("digraph imc"), std::string::npos);
  EXPECT_NE(dot.find("start"), std::string::npos);
  EXPECT_NE(dot.find("label=\"a\""), std::string::npos);
  EXPECT_NE(dot.find("2.5"), std::string::npos);
}

TEST(Dot, CtmdpExportHasTransitionBoxes) {
  std::stringstream out;
  io::write_dot(out, sample_ctmdp());
  const std::string dot = out.str();
  EXPECT_NE(dot.find("digraph ctmdp"), std::string::npos);
  EXPECT_NE(dot.find("shape=box"), std::string::npos);
  EXPECT_NE(dot.find("r_a.g_b"), std::string::npos);
}

}  // namespace
}  // namespace unicon
