// Tests for the differential verification subsystem itself: the oracles
// must agree with hand-computable facts, a clean corpus must pass, and —
// the mutation gate — every deliberately injected solver bug must be
// caught by at least one differential check.
#include <gtest/gtest.h>

#include <cmath>
#include <filesystem>

#include "core/transform.hpp"
#include "ctmdp/reachability.hpp"
#include "support/errors.hpp"
#include "support/rng.hpp"
#include "testing/differential.hpp"
#include "testing/generate.hpp"
#include "testing/oracle.hpp"

namespace unicon {
namespace {

using testing::DifferentialConfig;
using testing::DifferentialReport;
using testing::Mutation;
using testing::audit_uniformity;
using testing::bruteforce_transform;
using testing::check_transform;
using testing::dense_from_ctmdp;
using testing::naive_timed_reachability;
using testing::random_composed_uimc;
using testing::random_goal;
using testing::random_uniform_ctmdp;
using testing::random_uniform_imc;
using testing::run_differential;

DifferentialConfig small_corpus() {
  DifferentialConfig config;
  config.base_seed = 7000;
  config.num_seeds = 4;
  config.mc_runs = 2000;
  config.shrink = false;
  return config;
}

TEST(Oracle, NaiveValueIterationMatchesClosedForm) {
  // Two-state chain 0 --E--> 1(goal): P(reach within t) = 1 - e^{-E t}.
  CtmdpBuilder b;
  b.ensure_states(2);
  b.set_initial(0);
  b.begin_transition(0, "go");
  b.add_rate(1, 2.0);
  b.begin_transition(1, "stay");
  b.add_rate(1, 2.0);
  const Ctmdp model = b.build();
  const auto dense = dense_from_ctmdp(model);
  const auto values = naive_timed_reachability(dense, {false, true}, 0.7, 1e-13);
  EXPECT_NEAR(values[0], 1.0 - std::exp(-2.0 * 0.7), 1e-10);
  EXPECT_DOUBLE_EQ(values[1], 1.0);
}

TEST(Oracle, BruteforceTransformMatchesLibraryOnRandomModels) {
  Rng rng(515);
  for (int i = 0; i < 20; ++i) {
    const Imc m = random_uniform_imc(rng);
    const BitVector goal = random_goal(rng, m.num_states());
    const TransformResult tr = transform_to_ctmdp(m, &goal);
    const auto brute = bruteforce_transform(m, goal);
    EXPECT_EQ(brute.model.num_states, tr.ctmdp.num_states()) << "model #" << i;
    EXPECT_EQ(check_transform(m, goal, tr), std::nullopt) << "model #" << i;
  }
}

TEST(Oracle, BruteforceTransformRejectsZenoCycle) {
  ImcBuilder b;
  b.add_state();
  b.add_state();
  b.add_state();
  b.set_initial(0);
  b.add_interactive(0, kTau, 1);
  b.add_interactive(1, kTau, 0);  // interactive cycle
  b.add_markov(2, 1.0, 2);
  b.add_interactive(1, kTau, 2);
  const Imc m = b.build();
  EXPECT_THROW(bruteforce_transform(m, {false, false, true}), ZenoError);
  EXPECT_THROW(transform_to_ctmdp(m), ZenoError);
}

TEST(Oracle, AuditAcceptsConstructedUniformity) {
  Rng rng(616);
  const auto composed = random_composed_uimc(rng);
  const auto audit = audit_uniformity(composed.system, UniformityView::Closed, 1e-6);
  EXPECT_TRUE(audit.uniform);
  EXPECT_NEAR(audit.rate, composed.expected_rate, 1e-6);
}

TEST(Oracle, AuditFlagsBrokenUniformity) {
  ImcBuilder b;
  b.add_state();
  b.add_state();
  b.set_initial(0);
  b.add_markov(0, 2.0, 1);
  b.add_markov(1, 3.0, 0);  // different exit rate
  const auto audit = audit_uniformity(b.build(), UniformityView::Closed, 1e-9);
  EXPECT_FALSE(audit.uniform);
  EXPECT_GT(audit.max_deviation, 0.4);
}

TEST(Fuzz, CleanCorpusPasses) {
  const DifferentialReport report = run_differential(small_corpus());
  EXPECT_EQ(report.seeds_run, 4u);
  EXPECT_GT(report.checks_run, 50u);
  for (const auto& failure : report.failures) {
    ADD_FAILURE() << "seed " << failure.seed << " [" << failure.scenario
                  << "]: " << failure.message;
  }
}

class FuzzMutations : public ::testing::TestWithParam<Mutation> {};

TEST_P(FuzzMutations, InjectedBugIsCaught) {
  DifferentialConfig config = small_corpus();
  config.mutation = GetParam();
  const DifferentialReport report = run_differential(config);
  EXPECT_FALSE(report.ok()) << "mutation " << testing::mutation_name(GetParam())
                            << " survived the differential checks";
}

INSTANTIATE_TEST_SUITE_P(All, FuzzMutations,
                         ::testing::Values(Mutation::PerturbValue, Mutation::SwapObjective,
                                           Mutation::CoarsePoisson, Mutation::StaleGoal));

TEST(Fuzz, ShrinkReducesFailingSeedAndWritesArtifacts) {
  const std::filesystem::path dir =
      std::filesystem::temp_directory_path() / "unicon_fuzz_test_artifacts";
  std::filesystem::remove_all(dir);

  DifferentialConfig config = small_corpus();
  config.num_seeds = 1;
  config.mutation = Mutation::PerturbValue;  // guaranteed failure on every seed
  config.shrink = true;
  config.artifact_dir = dir.string();
  const DifferentialReport report = run_differential(config);
  ASSERT_FALSE(report.ok());
  const auto& failure = report.failures.front();
  // PerturbValue fails at every size, so the shrinker must reach the
  // smallest level of the config ladder.
  EXPECT_GE(failure.level, 1);
  ASSERT_FALSE(failure.artifacts.empty());
  for (const auto& path : failure.artifacts) {
    EXPECT_TRUE(std::filesystem::exists(path)) << path;
  }
  std::filesystem::remove_all(dir);
}

TEST(Fuzz, SeedReplayIsDeterministic) {
  DifferentialConfig config = small_corpus();
  std::uint64_t checks_a = 0, checks_b = 0;
  const auto a = testing::run_seed(config.base_seed, config, 0, checks_a);
  const auto b = testing::run_seed(config.base_seed, config, 0, checks_b);
  EXPECT_EQ(checks_a, checks_b);
  EXPECT_EQ(a.has_value(), b.has_value());
}

}  // namespace
}  // namespace unicon
