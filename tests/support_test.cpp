#include <gtest/gtest.h>

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstdint>
#include <numeric>
#include <tuple>
#include <vector>

#include "support/errors.hpp"
#include "support/fox_glynn.hpp"
#include "support/numerics.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/sparse.hpp"
#include "support/symbols.hpp"

namespace unicon {
namespace {

// ---------------------------------------------------------------- symbols

TEST(ActionTable, TauIsPreInterned) {
  ActionTable t;
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.name(kTau), "tau");
  EXPECT_EQ(t.id("tau"), kTau);
}

TEST(ActionTable, InternIsIdempotent) {
  ActionTable t;
  const Action a = t.intern("fail");
  EXPECT_EQ(t.intern("fail"), a);
  EXPECT_EQ(t.name(a), "fail");
  EXPECT_EQ(t.size(), 2u);
}

TEST(ActionTable, DistinctNamesGetDistinctIds) {
  ActionTable t;
  EXPECT_NE(t.intern("a"), t.intern("b"));
}

TEST(ActionTable, UnknownNameThrows) {
  ActionTable t;
  EXPECT_THROW(t.id("nope"), ModelError);
  EXPECT_FALSE(t.contains("nope"));
}

TEST(ActionTable, OutOfRangeIdThrows) {
  ActionTable t;
  EXPECT_THROW(t.name(99), ModelError);
}

TEST(WordTable, SingleActionWord) {
  ActionTable actions;
  WordTable words;
  const Action a = actions.intern("go");
  const WordId w = words.intern_single(a);
  ASSERT_EQ(words.actions(w).size(), 1u);
  EXPECT_EQ(words.actions(w)[0], a);
  EXPECT_EQ(words.str(w, actions), "go");
}

TEST(WordTable, InternIsIdempotent) {
  WordTable words;
  const std::vector<Action> w1{1, 2, 3};
  const std::vector<Action> w2{1, 2};
  EXPECT_EQ(words.intern(w1), words.intern(w1));
  EXPECT_NE(words.intern(w1), words.intern(w2));
  EXPECT_EQ(words.size(), 2u);
}

TEST(WordTable, EmptyWordRejected) {
  WordTable words;
  EXPECT_THROW(words.intern({}), ModelError);
}

TEST(WordTable, StrJoinsWithDots) {
  ActionTable actions;
  WordTable words;
  const std::vector<Action> w{actions.intern("r_wsL"), actions.intern("g_bb")};
  EXPECT_EQ(words.str(words.intern(w), actions), "r_wsL.g_bb");
}

// ----------------------------------------------------------------- sparse

TEST(CsrBuilder, BuildsSortedRows) {
  CsrBuilder b(3);
  b.add(1, 2, 0.5);
  b.add(1, 0, 0.25);
  b.add(0, 1, 1.0);
  const CsrMatrix m = b.finish();
  EXPECT_EQ(m.rows(), 3u);
  EXPECT_EQ(m.entries(), 3u);
  ASSERT_EQ(m.row(1).size(), 2u);
  EXPECT_EQ(m.row(1)[0].col, 0u);
  EXPECT_EQ(m.row(1)[1].col, 2u);
  EXPECT_TRUE(m.row(2).empty());
}

TEST(CsrBuilder, MergesDuplicateCoordinates) {
  CsrBuilder b(2);
  b.add(0, 1, 0.5);
  b.add(0, 1, 0.25);
  const CsrMatrix m = b.finish();
  ASSERT_EQ(m.row(0).size(), 1u);
  EXPECT_DOUBLE_EQ(m.row(0)[0].value, 0.75);
}

TEST(CsrBuilder, GrowsRowsOnDemand) {
  CsrBuilder b;
  b.add(5, 0, 1.0);
  const CsrMatrix m = b.finish();
  EXPECT_EQ(m.rows(), 6u);
}

TEST(CsrMatrix, RowSum) {
  CsrBuilder b(1);
  b.add(0, 0, 1.5);
  b.add(0, 3, 2.5);
  EXPECT_DOUBLE_EQ(b.finish().row_sum(0), 4.0);
}

TEST(CsrMatrix, MultiplyMatchesManual) {
  CsrBuilder b(2);
  b.add(0, 0, 2.0);
  b.add(0, 1, 1.0);
  b.add(1, 0, 0.5);
  const CsrMatrix m = b.finish();
  const std::vector<double> x{1.0, 3.0};
  std::vector<double> y(2);
  m.multiply(x, y);
  EXPECT_DOUBLE_EQ(y[0], 5.0);
  EXPECT_DOUBLE_EQ(y[1], 0.5);
}

TEST(CsrMatrix, TransposedMultiplyMatchesManual) {
  CsrBuilder b(2);
  b.add(0, 0, 2.0);
  b.add(0, 1, 1.0);
  b.add(1, 0, 0.5);
  const CsrMatrix m = b.finish();
  const std::vector<double> x{1.0, 3.0};
  std::vector<double> y(2);
  m.multiply_transposed(x, y);
  EXPECT_DOUBLE_EQ(y[0], 3.5);  // 2*1 + 0.5*3
  EXPECT_DOUBLE_EQ(y[1], 1.0);
}

TEST(CsrMatrix, EmptyMatrix) {
  CsrBuilder b;
  const CsrMatrix m = b.finish();
  EXPECT_EQ(m.rows(), 0u);
  EXPECT_EQ(m.entries(), 0u);
}

// -------------------------------------------------------------- fox-glynn

TEST(PoissonPmf, MatchesDirectFormulaSmall) {
  EXPECT_NEAR(poisson_pmf(0, 2.0), std::exp(-2.0), 1e-12);
  EXPECT_NEAR(poisson_pmf(1, 2.0), 2.0 * std::exp(-2.0), 1e-12);
  EXPECT_NEAR(poisson_pmf(2, 2.0), 2.0 * std::exp(-2.0), 1e-12);
}

TEST(PoissonWindow, ZeroLambdaIsDegenerate) {
  const auto w = PoissonWindow::compute(0.0, 1e-6);
  EXPECT_EQ(w.left(), 0u);
  EXPECT_EQ(w.right(), 0u);
  EXPECT_DOUBLE_EQ(w.psi(0), 1.0);
  EXPECT_DOUBLE_EQ(w.psi(1), 0.0);
}

TEST(PoissonWindow, InvalidArgumentsThrow) {
  EXPECT_THROW(PoissonWindow::compute(-1.0, 1e-6), ModelError);
  EXPECT_THROW(PoissonWindow::compute(1.0, 0.0), ModelError);
  EXPECT_THROW(PoissonWindow::compute(1.0, 1.0), ModelError);
}

TEST(PoissonWindow, ZeroOutsideWindow) {
  const auto w = PoissonWindow::compute(100.0, 1e-6);
  EXPECT_GT(w.left(), 0u);
  EXPECT_DOUBLE_EQ(w.psi(w.left() - 1), 0.0);
  EXPECT_DOUBLE_EQ(w.psi(w.right() + 1), 0.0);
  EXPECT_GT(w.psi(100), 0.0);
}

TEST(PoissonWindow, TailMassDecreases) {
  const auto w = PoissonWindow::compute(50.0, 1e-8);
  EXPECT_NEAR(w.tail_mass(0), w.total_mass(), 1e-15);
  EXPECT_GT(w.tail_mass(40), w.tail_mass(60));
  EXPECT_DOUBLE_EQ(w.tail_mass(w.right() + 1), 0.0);
}

TEST(PoissonWindow, TailMassBoundaryValues) {
  // Window-restricted semantics: everything at or below the left truncation
  // point sees the full window mass (exactly total_mass(), not a re-summed
  // approximation of it), everything beyond the right point sees zero.
  const auto w = PoissonWindow::compute(100.0, 1e-6);
  ASSERT_GT(w.left(), 0u);
  EXPECT_DOUBLE_EQ(w.tail_mass(0), w.total_mass());
  EXPECT_DOUBLE_EQ(w.tail_mass(w.left() - 1), w.total_mass());
  EXPECT_DOUBLE_EQ(w.tail_mass(w.left()), w.total_mass());
  EXPECT_GT(w.tail_mass(w.left() + 1), 0.0);
  EXPECT_LT(w.tail_mass(w.left() + 1), w.total_mass());
  EXPECT_DOUBLE_EQ(w.tail_mass(w.right()), w.psi(w.right()));
  EXPECT_DOUBLE_EQ(w.tail_mass(w.right() + 1), 0.0);
}

TEST(PoissonWindow, TailMassDegenerateWindow) {
  // lambda == 0: the window is the single point {0} with mass 1.
  const auto w = PoissonWindow::compute(0.0, 1e-6);
  EXPECT_DOUBLE_EQ(w.tail_mass(0), 1.0);
  EXPECT_DOUBLE_EQ(w.tail_mass(w.left()), 1.0);
  EXPECT_DOUBLE_EQ(w.tail_mass(w.right() + 1), 0.0);
}

class PoissonWindowSweep : public ::testing::TestWithParam<double> {};

TEST_P(PoissonWindowSweep, MassIsWithinEpsilon) {
  const double lambda = GetParam();
  const double epsilon = 1e-6;
  const auto w = PoissonWindow::compute(lambda, epsilon);
  EXPECT_GE(w.total_mass(), 1.0 - epsilon);
  EXPECT_LE(w.total_mass(), 1.0 + 1e-9);
}

TEST_P(PoissonWindowSweep, WeightsMatchReferencePmf) {
  const double lambda = GetParam();
  const auto w = PoissonWindow::compute(lambda, 1e-6);
  // Compare a handful of points against the lgamma-based reference.
  const std::uint64_t mid = (w.left() + w.right()) / 2;
  for (std::uint64_t i : {w.left(), mid, w.right()}) {
    const double ref = poisson_pmf(i, lambda);
    EXPECT_NEAR(w.psi(i), ref, 1e-9 + 1e-6 * ref) << "lambda=" << lambda << " i=" << i;
  }
}

TEST_P(PoissonWindowSweep, WindowBracketsTheMode) {
  const double lambda = GetParam();
  const auto w = PoissonWindow::compute(lambda, 1e-6);
  const auto mode = static_cast<std::uint64_t>(lambda);
  EXPECT_LE(w.left(), mode);
  EXPECT_GE(w.right(), mode);
}

INSTANTIATE_TEST_SUITE_P(Lambdas, PoissonWindowSweep,
                         ::testing::Values(1e-3, 0.1, 1.0, 5.0, 25.0, 205.0, 1000.0, 10000.0,
                                           77000.0));

TEST(PoissonWindow, HugeLambdaStaysAccurateAndNarrow) {
  // lambda = 1e6: the window is O(sqrt(lambda) * sqrt(log 1/eps)) wide and
  // the weights still match the reference pmf.
  const double lambda = 1e6;
  const auto w = PoissonWindow::compute(lambda, 1e-6);
  EXPECT_LT(w.right() - w.left(), 20000u);
  EXPECT_GE(w.total_mass(), 1.0 - 1e-6);
  const auto mode = static_cast<std::uint64_t>(lambda);
  EXPECT_NEAR(w.psi(mode), poisson_pmf(mode, lambda), 1e-12);
}

TEST(PoissonWindow, RightGrowsWithLambda) {
  const auto w1 = PoissonWindow::compute(10.0, 1e-6);
  const auto w2 = PoissonWindow::compute(1000.0, 1e-6);
  EXPECT_LT(w1.right(), w2.right());
}

TEST(PoissonWindow, TighterEpsilonWidensWindow) {
  const auto loose = PoissonWindow::compute(100.0, 1e-4);
  const auto tight = PoissonWindow::compute(100.0, 1e-12);
  EXPECT_LE(tight.left(), loose.left());
  EXPECT_GE(tight.right(), loose.right());
}

TEST(PoissonWindow, EpsilonBelowAccuracyFloorThrowsNumericError) {
  // At lambda = 1000 the frontier pmf underflows before the window mass can
  // certify 1 - 1e-14: compute must refuse with a typed NumericError naming
  // the achievable floor, never silently return a degraded window (which
  // would invalidate every downstream residual bound).
  try {
    PoissonWindow::compute(1000.0, 1e-14);
    FAIL() << "expected NumericError";
  } catch (const NumericError& e) {
    EXPECT_EQ(e.code(), ErrorCode::Numeric);
    const std::string msg = e.what();
    EXPECT_NE(msg.find("accuracy floor"), std::string::npos) << msg;
    EXPECT_NE(msg.find("truncation error"), std::string::npos) << msg;
  }
  EXPECT_THROW(PoissonWindow::compute(25.0, 1e-15), NumericError);
  // The same epsilons are fine where the floor is lower.
  EXPECT_GE(PoissonWindow::compute(1.0, 1e-14).total_mass(), 1.0 - 1e-14);
}

// ---------------------------------------------- fox-glynn stress (extreme)

namespace {

/// Smallest k with cumulative Poisson mass >= 1 - eps, by compensated
/// summation of the reference pmf.  poisson_pmf evaluates
/// exp(-lambda + n log lambda - lgamma(n+1)); for lambda ~ 1e5+ the three
/// O(1e6) terms cancel, leaving a relative error of order
/// lambda*log(lambda)*ulp (~1e-9 at lambda = 2.5e5).  When eps is below
/// that floor the cumulative sum can plateau short of 1 - eps, so stop
/// once the pmf underflows past the mode instead of looping forever.
std::uint64_t reference_truncation(double lambda, double eps) {
  KahanSum cumulative;
  for (std::uint64_t k = 0;; ++k) {
    const double p = poisson_pmf(k, lambda);
    cumulative.add(p);
    if (cumulative.value() >= 1.0 - eps) return k;
    if (p == 0.0 && static_cast<double>(k) > lambda) return k;  // fp plateau
  }
}

/// Double-precision accuracy floor for Poisson masses at rate lambda: no
/// eps below this is achievable, so assertions on 1 - eps targets must
/// allow it.  Scales like the cancellation error described above.
double poisson_fp_slack(double lambda) {
  return 1e-12 + 4e-15 * lambda * std::max(1.0, std::log(std::max(lambda, 2.0)));
}

}  // namespace

/// (lambda, epsilon) grid covering the regimes the paper's models hit:
/// E*t < 1 (short horizons), moderate, and E*t >= 1e5 at eps <= 1e-12.
class PoissonWindowStress : public ::testing::TestWithParam<std::tuple<double, double>> {};

TEST_P(PoissonWindowStress, WeightsAreNormalized) {
  const auto [lambda, eps] = GetParam();
  const auto w = PoissonWindow::compute(lambda, eps);
  KahanSum sum;
  for (const double weight : w.weights()) {
    EXPECT_GE(weight, 0.0);
    sum.add(weight);
  }
  const double slack = poisson_fp_slack(lambda);
  EXPECT_NEAR(sum.value(), w.total_mass(), 1e-12);
  EXPECT_GE(w.total_mass(), 1.0 - eps - slack);
  EXPECT_LE(w.total_mass(), 1.0 + slack);
}

TEST_P(PoissonWindowStress, TailMassIsMonotoneNonIncreasing) {
  const auto [lambda, eps] = GetParam();
  const auto w = PoissonWindow::compute(lambda, eps);
  // Sample the window densely enough to catch any inversion without
  // quadratic cost at lambda = 2.5e5.
  const std::uint64_t width = w.right() - w.left() + 1;
  const std::uint64_t stride = std::max<std::uint64_t>(1, width / 512);
  double previous = w.tail_mass(w.left());
  for (std::uint64_t n = w.left(); n <= w.right(); n += stride) {
    const double mass = w.tail_mass(n);
    EXPECT_LE(mass, previous + 1e-15) << "lambda=" << lambda << " n=" << n;
    previous = mass;
  }
  EXPECT_DOUBLE_EQ(w.tail_mass(w.right() + 1), 0.0);
}

TEST_P(PoissonWindowStress, TruncationPointMatchesReferenceBound) {
  const auto [lambda, eps] = GetParam();
  const auto w = PoissonWindow::compute(lambda, eps);
  const double slack = poisson_fp_slack(lambda);
  // Window mass >= 1 - eps forces cumulative(right) >= 1 - eps (modulo the
  // fp floor), so right can never undercut the one-sided reference point.
  EXPECT_GE(w.right(), reference_truncation(lambda, eps + slack));
  if (w.total_mass() >= 1.0 - eps) {
    // The target was reachable in double precision, so the outward scan
    // stopped at the optimal point: within a few steps of the reference
    // (a factor of 100 in eps moves the Gaussian-decay tail by O(1) steps).
    EXPECT_LE(w.right(), reference_truncation(lambda, eps / 100.0) + 10);
  }
}

TEST_P(PoissonWindowStress, WeightsMatchReferencePmfAtExtremes) {
  const auto [lambda, eps] = GetParam();
  const auto w = PoissonWindow::compute(lambda, eps);
  const std::uint64_t mode = static_cast<std::uint64_t>(lambda);
  for (const std::uint64_t n :
       {w.left(), (w.left() + mode) / 2, mode, (mode + w.right()) / 2, w.right()}) {
    if (n < w.left() || n > w.right()) continue;
    // The window weights come from ratio recurrences off the mode while the
    // reference evaluates lgamma at n; their errors are independent, so the
    // comparison is only meaningful up to the fp floor.
    const double ref = poisson_pmf(n, lambda);
    EXPECT_NEAR(w.psi(n), ref, 1e-15 + 100.0 * poisson_fp_slack(lambda) * ref)
        << "lambda=" << lambda << " n=" << n;
  }
}

INSTANTIATE_TEST_SUITE_P(
    Extremes, PoissonWindowStress,
    ::testing::Combine(::testing::Values(0.05, 0.9, 4.5, 1e5, 2.5e5),
                       ::testing::Values(1e-6, 1e-12, 1e-13)));

// --------------------------------------------------------------- parallel

TEST(WorkerPool, SerialPoolRunsInline) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  std::vector<int> hits(10, 0);
  pool.run(hits.size(), [&](unsigned worker, std::size_t begin, std::size_t end) {
    EXPECT_EQ(worker, 0u);
    for (std::size_t i = begin; i < end; ++i) ++hits[i];
  });
  for (int h : hits) EXPECT_EQ(h, 1);
}

TEST(WorkerPool, ChunksPartitionTheRange) {
  WorkerPool pool(4);
  std::vector<std::atomic<int>> hits(1023);
  for (int round = 0; round < 3; ++round) {  // pool survives repeated sweeps
    pool.run(hits.size(), [&](unsigned, std::size_t begin, std::size_t end) {
      for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
    });
  }
  for (const auto& h : hits) EXPECT_EQ(h.load(), 3);
}

TEST(WorkerPool, MoreWorkersThanRows) {
  WorkerPool pool(8);
  std::vector<std::atomic<int>> hits(3);
  pool.run(hits.size(), [&](unsigned, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) hits[i].fetch_add(1);
  });
  for (const auto& h : hits) EXPECT_EQ(h.load(), 1);
  pool.run(0, [&](unsigned, std::size_t begin, std::size_t end) { EXPECT_EQ(begin, end); });
}

TEST(WorkerPool, ReduceMaxOverSlots) {
  std::vector<WorkerPool::Slot> slots(3);
  slots[0].value = 0.25;
  slots[1].value = 2.0;
  slots[2].value = 1.0;
  EXPECT_DOUBLE_EQ(WorkerPool::reduce_max(slots), 2.0);
  EXPECT_DOUBLE_EQ(WorkerPool::reduce_max({}), 0.0);
}

TEST(ResolveThreads, ZeroPicksHardwareConcurrency) {
  EXPECT_GE(resolve_threads(0), 1u);
  EXPECT_EQ(resolve_threads(1), 1u);
  EXPECT_EQ(resolve_threads(6), 6u);
}

// --------------------------------------------------------------- numerics

TEST(KahanSum, CompensatesSmallAddends) {
  KahanSum sum;
  sum.add(1.0);
  for (int i = 0; i < 10000000; ++i) sum.add(1e-16);
  EXPECT_NEAR(sum.value(), 1.0 + 1e-9, 1e-12);
}

TEST(Numerics, MaxAbsDiff) {
  const std::vector<double> a{1.0, 2.0, 3.0};
  const std::vector<double> b{1.0, 2.5, 2.0};
  EXPECT_DOUBLE_EQ(max_abs_diff(a, b), 1.0);
}

TEST(Numerics, Clamp01) {
  EXPECT_DOUBLE_EQ(clamp01(-0.1), 0.0);
  EXPECT_DOUBLE_EQ(clamp01(1.1), 1.0);
  EXPECT_DOUBLE_EQ(clamp01(0.5), 0.5);
}

// -------------------------------------------------------------------- rng

TEST(Rng, DeterministicForSeed) {
  Rng a(7), b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DoublesInUnitInterval) {
  Rng rng(1);
  for (int i = 0; i < 1000; ++i) {
    const double x = rng.next_double();
    EXPECT_GE(x, 0.0);
    EXPECT_LT(x, 1.0);
  }
}

TEST(Rng, NextBelowRespectsBound) {
  Rng rng(2);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(rng.next_below(7), 7u);
  EXPECT_THROW(rng.next_below(0), ModelError);
}

TEST(Rng, ExponentialMeanApproximatesInverseRate) {
  Rng rng(3);
  double sum = 0.0;
  const int n = 200000;
  for (int i = 0; i < n; ++i) sum += rng.next_exponential(4.0);
  EXPECT_NEAR(sum / n, 0.25, 0.01);
}

TEST(Rng, DiscreteRespectsWeights) {
  Rng rng(4);
  const std::vector<double> weights{1.0, 3.0};
  int counts[2] = {0, 0};
  const int n = 100000;
  for (int i = 0; i < n; ++i) ++counts[rng.next_discrete(weights)];
  EXPECT_NEAR(static_cast<double>(counts[1]) / n, 0.75, 0.02);
  EXPECT_THROW(rng.next_discrete({}), ModelError);
}

}  // namespace
}  // namespace unicon
