// Content-addressed model cache: canonical deduplication of textually
// different sources, miss on semantic edits, alias maps, LRU eviction under
// a byte budget that can never invalidate an in-flight query, and lazy
// kernel memoization.
#include <gtest/gtest.h>

#include <atomic>
#include <bit>
#include <cstdint>
#include <memory>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "ctmc/transient.hpp"
#include "ctmdp/reachability.hpp"
#include "io/tra.hpp"
#include "server/model_cache.hpp"
#include "support/rng.hpp"
#include "testing/generate.hpp"

namespace unicon {
namespace {

namespace gen = unicon::testing;
using server::CachedModel;
using server::CacheStats;
using server::ModelCache;
using server::ModelKind;

// A minimal uniform UNI model (all exit rates 1).
const char* kModelA =
    "component C {\n"
    "  states s0, s1, s2;\n"
    "  initial s0;\n"
    "  label done: s2;\n"
    "  rate 1: s0 -> s1;\n"
    "  rate 1: s1 -> s2;\n"
    "  rate 1: s2 -> s2;\n"
    "}\n"
    "system = C;\n"
    "prop goal = done;\n";

// kModelA with different spelling — comments, blank lines, whitespace.
// Lowers to the identical CTMDP, so it must share kModelA's cache entry.
const char* kModelASpelled =
    "// same three-state chain, spelled differently\n"
    "\n"
    "component C {\n"
    "    states s0, s1, s2;\n"
    "    initial s0;\n"
    "    label done: s2;\n"
    "    rate 1:   s0 -> s1;   // hop\n"
    "    rate 1:   s1 -> s2;\n"
    "    rate 1:   s2 -> s2;\n"
    "}\n"
    "\n"
    "system = C;\n"
    "prop goal = done;\n";

// One rate edit (uniform rate 2 instead of 1) — semantically different,
// must occupy its own entry.
const char* kModelARate2 =
    "component C {\n"
    "  states s0, s1, s2;\n"
    "  initial s0;\n"
    "  label done: s2;\n"
    "  rate 2: s0 -> s1;\n"
    "  rate 2: s1 -> s2;\n"
    "  rate 2: s2 -> s2;\n"
    "}\n"
    "system = C;\n"
    "prop goal = done;\n";

std::string serialize_ctmdp(const Ctmdp& model) {
  std::ostringstream out;
  io::write_ctmdp(out, model);
  return out.str();
}

std::string serialize_ctmc(const Ctmc& chain) {
  std::ostringstream out;
  io::write_ctmc(out, chain);
  return out.str();
}

std::string serialize_goal(const BitVector& goal) {
  std::ostringstream out;
  io::write_goal(out, goal);
  return out.str();
}

TEST(ContentHashTest, StableAndSensitive) {
  const std::string hash = server::content_hash("hello");
  EXPECT_EQ(hash.size(), 32u);
  EXPECT_EQ(hash, server::content_hash("hello"));
  EXPECT_NE(hash, server::content_hash("hello "));
  EXPECT_NE(hash, server::content_hash("hellp"));
  EXPECT_NE(server::content_hash(""), server::content_hash(std::string(1, '\0')));
}

TEST(CacheTest, SourceHitReturnsSameEntry) {
  ModelCache cache;
  const auto first = cache.resolve(ModelKind::Uni, kModelA, "", "goal");
  EXPECT_FALSE(first.hit);
  const auto second = cache.resolve(ModelKind::Uni, kModelA, "", "goal");
  EXPECT_TRUE(second.hit);
  EXPECT_EQ(first.model.get(), second.model.get());

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.source_hits, 1u);
  EXPECT_EQ(stats.canonical_hits, 0u);
  EXPECT_EQ(stats.entries, 1u);
}

TEST(CacheTest, TextuallyDifferentSourcesShareCanonicalEntry) {
  ModelCache cache;
  const auto a = cache.resolve(ModelKind::Uni, kModelA, "", "goal");
  const auto spelled = cache.resolve(ModelKind::Uni, kModelASpelled, "", "goal");
  EXPECT_TRUE(spelled.hit);
  EXPECT_EQ(a.model.get(), spelled.model.get());
  EXPECT_EQ(a.model->canonical_hash(), spelled.model->canonical_hash());

  CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 1u);
  EXPECT_EQ(stats.canonical_hits, 1u);
  EXPECT_EQ(stats.entries, 1u);

  // The new spelling is aliased at the source level: resubmitting it is a
  // cheap level-1 hit, no lowering.
  const auto again = cache.resolve(ModelKind::Uni, kModelASpelled, "", "goal");
  EXPECT_TRUE(again.hit);
  stats = cache.stats();
  EXPECT_EQ(stats.source_hits, 1u);
}

TEST(CacheTest, RateEditMisses) {
  ModelCache cache;
  const auto a = cache.resolve(ModelKind::Uni, kModelA, "", "goal");
  const auto edited = cache.resolve(ModelKind::Uni, kModelARate2, "", "goal");
  EXPECT_FALSE(edited.hit);
  EXPECT_NE(a.model.get(), edited.model.get());
  EXPECT_NE(a.model->canonical_hash(), edited.model->canonical_hash());

  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.misses, 2u);
  EXPECT_EQ(stats.entries, 2u);
}

TEST(CacheTest, FileKindsRoundTrip) {
  Rng rng(0xcac4e1u);
  gen::RandomCtmdpConfig config;
  config.num_states = 12;
  const Ctmdp model = gen::random_uniform_ctmdp(rng, config);
  const BitVector goal = gen::random_goal(rng, model.num_states(), 0.3);

  ModelCache cache;
  const auto resolved = cache.resolve(ModelKind::CtmdpFile, serialize_ctmdp(model),
                                      serialize_goal(goal), "goal");
  EXPECT_FALSE(resolved.hit);
  EXPECT_EQ(resolved.model->ctmdp().num_states(), model.num_states());
  EXPECT_EQ(resolved.model->goal_for(Objective::Maximize), goal);
  // File-based masks apply to both objectives (no Sec. 4.1 transfer).
  EXPECT_EQ(resolved.model->goal_for(Objective::Minimize), goal);

  gen::RandomCtmcConfig ctmc_config;
  ctmc_config.num_states = 10;
  const Ctmc chain = gen::random_ctmc(rng, ctmc_config);
  const BitVector chain_goal = gen::random_goal(rng, chain.num_states(), 0.3);
  const auto ctmc_entry = cache.resolve(ModelKind::CtmcFile, serialize_ctmc(chain),
                                        serialize_goal(chain_goal), "goal");
  EXPECT_TRUE(ctmc_entry.model->is_ctmc());
  EXPECT_EQ(ctmc_entry.model->chain().num_states(), chain.num_states());
  EXPECT_NE(ctmc_entry.model->canonical_hash(), resolved.model->canonical_hash());
}

TEST(CacheTest, KindIsPartOfTheKey) {
  // A CTMC .tra and the same bytes submitted as a CTMDP must never share an
  // entry even if the serializations collided; the kind prefixes both keys.
  Rng rng(0x51de01u);
  gen::RandomCtmcConfig config;
  config.num_states = 6;
  const Ctmc chain = gen::random_ctmc(rng, config);
  const std::string source = serialize_ctmc(chain);
  const std::string labels = serialize_goal(gen::random_goal(rng, chain.num_states(), 0.4));

  ModelCache cache;
  const auto as_ctmc = cache.resolve(ModelKind::CtmcFile, source, labels, "goal");
  EXPECT_TRUE(as_ctmc.model->is_ctmc());
  EXPECT_EQ(cache.stats().entries, 1u);
}

TEST(CacheTest, EvictionNeverCorruptsInFlightQueries) {
  Rng rng(0xe51c7u);
  gen::RandomCtmdpConfig config;
  config.num_states = 30;
  const Ctmdp model_a = gen::random_uniform_ctmdp(rng, config);
  const BitVector goal_a = gen::random_goal(rng, model_a.num_states(), 0.3);
  const Ctmdp model_b = gen::random_uniform_ctmdp(rng, config);
  const BitVector goal_b = gen::random_goal(rng, model_b.num_states(), 0.3);
  const std::string source_a = serialize_ctmdp(model_a);
  const std::string labels_a = serialize_goal(goal_a);

  // A 1-byte budget forces eviction down to a single entry on every insert.
  ModelCache cache(1);
  const auto a = cache.resolve(ModelKind::CtmdpFile, source_a, labels_a, "goal");
  // Touch the kernel memo so the in-flight handle owns more than the model.
  (void)a.model->discrete_kernel(Objective::Maximize);

  const auto b = cache.resolve(ModelKind::CtmdpFile, serialize_ctmdp(model_b),
                               serialize_goal(goal_b), "goal");
  CacheStats stats = cache.stats();
  EXPECT_GE(stats.evictions, 1u);
  EXPECT_EQ(stats.entries, 1u);

  // The evicted handle is still fully usable: solve through its memoized
  // kernel and compare bitwise against a fresh direct solve.
  TimedReachabilityOptions options;
  options.epsilon = 1e-10;
  options.backend = Backend::Serial;
  TimedReachabilityOptions cached_options = options;
  cached_options.discrete_kernel = &a.model->discrete_kernel(Objective::Maximize);
  const TimedReachabilityResult via_cache =
      timed_reachability(a.model->ctmdp(), a.model->goal_for(Objective::Maximize), 1.5,
                         cached_options);
  const TimedReachabilityResult direct = timed_reachability(model_a, goal_a, 1.5, options);
  ASSERT_EQ(via_cache.values.size(), direct.values.size());
  for (std::size_t s = 0; s < direct.values.size(); ++s) {
    EXPECT_EQ(std::bit_cast<std::uint64_t>(via_cache.values[s]),
              std::bit_cast<std::uint64_t>(direct.values[s]))
        << "state " << s;
  }

  // Re-resolving the evicted model is a miss (its aliases were dropped
  // with the entry), and produces the same canonical hash.
  const auto a_again = cache.resolve(ModelKind::CtmdpFile, source_a, labels_a, "goal");
  EXPECT_FALSE(a_again.hit);
  EXPECT_EQ(a_again.model->canonical_hash(), a.model->canonical_hash());
}

TEST(CacheTest, KernelMemoizationAccountsBytes) {
  ModelCache cache;
  const auto resolved = cache.resolve(ModelKind::Uni, kModelA, "", "goal");
  const std::size_t before = resolved.model->bytes();
  const DiscreteKernel& k1 = resolved.model->discrete_kernel(Objective::Maximize);
  const DiscreteKernel& k2 = resolved.model->discrete_kernel(Objective::Maximize);
  EXPECT_EQ(&k1, &k2);
  EXPECT_GT(resolved.model->bytes(), before);
  // The universal-transfer mask backs the Minimize kernel — distinct memo slot.
  const DiscreteKernel& k3 = resolved.model->discrete_kernel(Objective::Minimize);
  EXPECT_NE(&k1, &k3);
}

TEST(CacheTest, GoalNameIsPartOfTheKey) {
  const std::string two_props =
      "component C {\n"
      "  states s0, s1;\n"
      "  initial s0;\n"
      "  label first: s0;\n"
      "  label second: s1;\n"
      "  rate 1: s0 -> s1;\n"
      "  rate 1: s1 -> s0;\n"
      "}\n"
      "system = C;\n"
      "prop goal = second;\n"
      "prop start = first;\n";
  ModelCache cache;
  const auto goal_entry = cache.resolve(ModelKind::Uni, two_props, "", "goal");
  const auto start_entry = cache.resolve(ModelKind::Uni, two_props, "", "start");
  EXPECT_FALSE(start_entry.hit);
  EXPECT_NE(goal_entry.model->canonical_hash(), start_entry.model->canonical_hash());
  EXPECT_NE(goal_entry.model->goal_for(Objective::Maximize),
            start_entry.model->goal_for(Objective::Maximize));
}

TEST(CacheTest, ConcurrentIdenticalResolvesShareOneEntry) {
  // N threads race the same source through an empty cache.  Lowering runs
  // outside the cache lock, so several threads may lower concurrently —
  // but insertion must converge on a single canonical entry that every
  // thread ends up sharing, and later resolves must be level-1 hits.
  constexpr int kThreads = 8;
  ModelCache cache;
  std::vector<std::shared_ptr<const CachedModel>> models(kThreads);
  std::atomic<int> ready{0};
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int i = 0; i < kThreads; ++i) {
    threads.emplace_back([&, i] {
      ready.fetch_add(1);
      while (ready.load() < kThreads) {
      }  // line up the race
      models[i] = cache.resolve(ModelKind::Uni, kModelA, "", "goal").model;
    });
  }
  for (auto& thread : threads) thread.join();

  for (int i = 0; i < kThreads; ++i) {
    ASSERT_NE(models[i], nullptr);
    // Every thread holds the same entry the cache retained: one canonical
    // model, regardless of how many racers lowered it redundantly.
    EXPECT_EQ(models[i].get(), models[0].get()) << "thread " << i;
  }
  const CacheStats stats = cache.stats();
  EXPECT_EQ(stats.entries, 1u);
  // Exactly one racer wins the insert; the rest land as hits on either
  // cache level once the winner has published the entry.
  EXPECT_EQ(stats.misses + stats.source_hits + stats.canonical_hits,
            static_cast<std::uint64_t>(kThreads));
  EXPECT_GE(stats.misses, 1u);

  const auto after = cache.resolve(ModelKind::Uni, kModelA, "", "goal");
  EXPECT_TRUE(after.hit);
  EXPECT_EQ(after.model.get(), models[0].get());
}

}  // namespace
}  // namespace unicon
