// Crash-safe cache persistence: unicon-cache-v1 round trips, deterministic
// bytes, checksum/corruption detection with partial recovery, truncation
// handling, atomic publication, and bit-identical warm-started answers.
#include <gtest/gtest.h>

#include <bit>
#include <cstdint>
#include <cstdio>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include "ctmdp/reachability.hpp"
#include "io/tra.hpp"
#include "server/model_cache.hpp"
#include "server/service.hpp"
#include "server/snapshot.hpp"
#include "support/rng.hpp"
#include "testing/generate.hpp"

namespace unicon {
namespace {

namespace gen = unicon::testing;
using server::AnalysisService;
using server::ModelCache;
using server::ModelKind;
using server::QueryRequest;
using server::QueryResponse;
using server::ServiceOptions;
using server::SnapshotStats;

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

std::string serialize_ctmdp(const Ctmdp& model) {
  std::ostringstream out;
  io::write_ctmdp(out, model);
  return out.str();
}

std::string serialize_ctmc(const Ctmc& chain) {
  std::ostringstream out;
  io::write_ctmc(out, chain);
  return out.str();
}

std::string serialize_goal(const BitVector& goal) {
  std::ostringstream out;
  io::write_goal(out, goal);
  return out.str();
}

/// A cache with two entries (a CTMDP and a CTMC) and one extra source
/// alias on the CTMDP entry.
struct SeededCache {
  explicit SeededCache(std::uint64_t seed = 0x5a4b) {
    Rng rng(seed);
    gen::RandomCtmdpConfig config;
    config.num_states = 9;
    const Ctmdp model = gen::random_uniform_ctmdp(rng, config);
    ctmdp_source = serialize_ctmdp(model);
    ctmdp_labels = serialize_goal(gen::random_goal(rng, model.num_states(), 0.3));
    // Same model, respelled with a trailing comment: a second source key
    // aliased onto the same canonical entry.
    ctmdp_source_alias = ctmdp_source + "# respelled\n";

    gen::RandomCtmcConfig ctmc_config;
    ctmc_config.num_states = 7;
    const Ctmc chain = gen::random_ctmc(rng, ctmc_config);
    ctmc_source = serialize_ctmc(chain);
    ctmc_labels = serialize_goal(gen::random_goal(rng, chain.num_states(), 0.3));

    cache.resolve(ModelKind::CtmdpFile, ctmdp_source, ctmdp_labels, "goal");
    cache.resolve(ModelKind::CtmdpFile, ctmdp_source_alias, ctmdp_labels, "goal");
    cache.resolve(ModelKind::CtmcFile, ctmc_source, ctmc_labels, "goal");
  }

  ModelCache cache;
  std::string ctmdp_source, ctmdp_source_alias, ctmdp_labels;
  std::string ctmc_source, ctmc_labels;
};

std::string snapshot_of(const ModelCache& cache) {
  std::ostringstream out;
  cache.save_snapshot(out);
  return out.str();
}

SnapshotStats load_from(ModelCache& cache, const std::string& text) {
  std::istringstream in(text);
  return cache.load_snapshot(in);
}

TEST(SnapshotTest, RoundTripRestoresEntriesAndAliases) {
  SeededCache seeded;
  std::ostringstream out;
  const SnapshotStats saved = seeded.cache.save_snapshot(out);
  EXPECT_EQ(saved.entries_written, 2u);

  ModelCache restored;
  const SnapshotStats loaded = load_from(restored, out.str());
  EXPECT_EQ(loaded.entries_loaded, 2u);
  EXPECT_GE(loaded.aliases_loaded, 3u);  // two ctmdp spellings + the ctmc
  EXPECT_EQ(loaded.entries_corrupt, 0u);
  EXPECT_FALSE(loaded.truncated);

  // Every source key known to the writer is a warm level-1 hit, including
  // the respelled alias — no lowering happens on the restored cache.
  const auto a = restored.resolve(ModelKind::CtmdpFile, seeded.ctmdp_source,
                                  seeded.ctmdp_labels, "goal");
  const auto alias = restored.resolve(ModelKind::CtmdpFile, seeded.ctmdp_source_alias,
                                      seeded.ctmdp_labels, "goal");
  const auto c = restored.resolve(ModelKind::CtmcFile, seeded.ctmc_source,
                                  seeded.ctmc_labels, "goal");
  EXPECT_TRUE(a.hit);
  EXPECT_TRUE(alias.hit);
  EXPECT_TRUE(c.hit);
  EXPECT_EQ(a.model.get(), alias.model.get());
  EXPECT_EQ(restored.stats().source_hits, 3u);
  EXPECT_EQ(restored.stats().misses, 0u);

  // The restored lowered models carry the same canonical identity and
  // goal masks as the originals.
  const auto original = seeded.cache.resolve(ModelKind::CtmdpFile, seeded.ctmdp_source,
                                             seeded.ctmdp_labels, "goal");
  EXPECT_EQ(a.model->canonical_hash(), original.model->canonical_hash());
  EXPECT_EQ(a.model->goal_for(Objective::Maximize), original.model->goal_for(Objective::Maximize));
}

TEST(SnapshotTest, SnapshotBytesAreDeterministic) {
  SeededCache first;
  SeededCache second;
  const std::string bytes = snapshot_of(first.cache);
  EXPECT_EQ(bytes, snapshot_of(second.cache));
  // Save -> load -> save is a fixed point: the restored cache re-snapshots
  // to byte-identical output (what makes warm restarts auditable).
  ModelCache restored;
  load_from(restored, bytes);
  EXPECT_EQ(bytes, snapshot_of(restored));
}

TEST(SnapshotTest, ChecksumFailureSkipsOnlyTheDamagedRecord) {
  SeededCache seeded;
  std::string bytes = snapshot_of(seeded.cache);

  // Flip one bit inside the first record's body (just past its header).
  const std::size_t first_entry = bytes.find("entry ");
  ASSERT_NE(first_entry, std::string::npos);
  const std::size_t body = bytes.find('\n', first_entry) + 40;
  ASSERT_LT(body, bytes.size());
  bytes[body] = static_cast<char>(bytes[body] ^ 0x08);

  ModelCache restored;
  const SnapshotStats loaded = load_from(restored, bytes);
  EXPECT_EQ(loaded.entries_corrupt, 1u);
  EXPECT_EQ(loaded.entries_loaded, 1u);  // the other record authenticates
  EXPECT_EQ(restored.stats().entries, 1u);
}

TEST(SnapshotTest, MalformedHeaderResyncsToNextRecord) {
  SeededCache seeded;
  std::string bytes = snapshot_of(seeded.cache);
  // Stomp the first header line itself — length and checksum unreadable,
  // the loader must scan forward to the next record boundary.
  const std::size_t first_entry = bytes.find("entry ");
  ASSERT_NE(first_entry, std::string::npos);
  bytes.replace(first_entry, 6, "ENTRY?");

  ModelCache restored;
  const SnapshotStats loaded = load_from(restored, bytes);
  EXPECT_GE(loaded.entries_corrupt, 1u);
  EXPECT_EQ(loaded.entries_loaded, 1u);
}

TEST(SnapshotTest, TruncationLoadsTheAuthenticatedPrefix) {
  SeededCache seeded;
  const std::string bytes = snapshot_of(seeded.cache);
  const std::size_t second_entry = bytes.find("entry ", bytes.find("entry ") + 1);
  ASSERT_NE(second_entry, std::string::npos);

  // Cut mid-way through the second record: the first still loads.
  ModelCache restored;
  const SnapshotStats loaded = load_from(restored, bytes.substr(0, second_entry + 30));
  EXPECT_TRUE(loaded.truncated);
  EXPECT_EQ(loaded.entries_loaded, 1u);

  // Cut before any record: empty warm start, flagged truncated.
  ModelCache empty;
  const SnapshotStats nothing = load_from(empty, bytes.substr(0, 5));
  EXPECT_TRUE(nothing.truncated);
  EXPECT_EQ(nothing.entries_loaded, 0u);
}

TEST(SnapshotTest, BadMagicOrTrailingGarbageIsFlagged) {
  SeededCache seeded;
  const std::string bytes = snapshot_of(seeded.cache);

  ModelCache wrong_magic;
  const SnapshotStats rejected = load_from(wrong_magic, "not-a-snapshot\n" + bytes);
  EXPECT_TRUE(rejected.truncated);
  EXPECT_EQ(rejected.entries_loaded, 0u);
  EXPECT_EQ(wrong_magic.stats().entries, 0u);

  ModelCache trailing;
  const SnapshotStats dirty = load_from(trailing, bytes + "leftover bytes\n");
  EXPECT_TRUE(dirty.truncated);
  EXPECT_EQ(dirty.entries_loaded, 2u);  // the valid prefix still restores
}

TEST(SnapshotTest, ExistingEntriesWinOverSnapshotRecords) {
  // Loading a snapshot into a cache that already resolved one of the
  // models must not replace the live entry (in-flight queries may hold it).
  SeededCache seeded;
  const std::string bytes = snapshot_of(seeded.cache);

  ModelCache busy;
  const auto live = busy.resolve(ModelKind::CtmdpFile, seeded.ctmdp_source,
                                 seeded.ctmdp_labels, "goal");
  load_from(busy, bytes);
  const auto after = busy.resolve(ModelKind::CtmdpFile, seeded.ctmdp_source,
                                  seeded.ctmdp_labels, "goal");
  EXPECT_EQ(live.model.get(), after.model.get());
}

TEST(SnapshotTest, FileSaveIsAtomicAndLoadsBack) {
  SeededCache seeded;
  const std::string path = ::testing::TempDir() + "unicon_snapshot_test.v1";
  const SnapshotStats saved = server::save_cache_snapshot(seeded.cache, path);
  EXPECT_EQ(saved.entries_written, 2u);

  // The temp file never survives a successful publish.
  std::ifstream tmp(path + ".tmp");
  EXPECT_FALSE(tmp.good());

  // The published bytes are exactly the stream serialization.
  std::ifstream in(path, std::ios::binary);
  std::stringstream published;
  published << in.rdbuf();
  EXPECT_EQ(published.str(), snapshot_of(seeded.cache));

  ModelCache restored;
  const SnapshotStats loaded = server::load_cache_snapshot(restored, path);
  EXPECT_EQ(loaded.entries_loaded, 2u);
  std::remove(path.c_str());

  // A missing file is a cold start, not an error.
  ModelCache cold;
  const SnapshotStats missing = server::load_cache_snapshot(cold, path + ".does-not-exist");
  EXPECT_EQ(missing.entries_loaded, 0u);
  EXPECT_FALSE(missing.truncated);
  EXPECT_EQ(missing.entries_corrupt, 0u);
}

TEST(SnapshotTest, WarmStartedServiceAnswersBitIdentically) {
  Rng rng(0x77a3);
  gen::RandomCtmdpConfig config;
  config.num_states = 12;
  const Ctmdp model = gen::random_uniform_ctmdp(rng, config);
  const BitVector goal = gen::random_goal(rng, model.num_states(), 0.3);

  QueryRequest request;
  request.client = "snap";
  request.id = "q";
  request.kind = ModelKind::CtmdpFile;
  request.source = serialize_ctmdp(model);
  request.labels = serialize_goal(goal);
  request.times = {0.5, 1.5};
  request.backend = Backend::Serial;

  const std::string path = ::testing::TempDir() + "unicon_snapshot_service.v1";
  QueryResponse cold;
  {
    AnalysisService service(ServiceOptions{.workers = 1});
    cold = service.query(request);
    ASSERT_EQ(cold.error, ErrorCode::Ok);
    service.save_cache(path);
  }

  AnalysisService warm(ServiceOptions{.workers = 1});
  const SnapshotStats loaded = warm.load_cache(path);
  EXPECT_EQ(loaded.entries_loaded, 1u);
  const QueryResponse reheated = warm.query(request);
  std::remove(path.c_str());
  ASSERT_EQ(reheated.error, ErrorCode::Ok);
  EXPECT_TRUE(reheated.cache_hit);
  ASSERT_EQ(reheated.results.size(), cold.results.size());
  for (std::size_t j = 0; j < cold.results.size(); ++j) {
    EXPECT_EQ(bits(reheated.results[j].value), bits(cold.results[j].value));
    EXPECT_EQ(bits(reheated.results[j].residual_bound), bits(cold.results[j].residual_bound));
    EXPECT_EQ(reheated.results[j].iterations_executed, cold.results[j].iterations_executed);
  }
}

}  // namespace
}  // namespace unicon
