#include "test_util.hpp"

#include <algorithm>
#include <string>

#include "support/errors.hpp"

namespace unicon::testutil {

Imc random_uniform_imc(Rng& rng, const RandomImcConfig& config) {
  const std::size_t n = std::max<std::size_t>(config.num_states, 2);
  ImcBuilder b;
  const Action visible_a = b.intern("a");
  const Action visible_b = b.intern("b");
  for (std::size_t s = 0; s < n; ++s) b.add_state("s" + std::to_string(s));
  b.set_initial(0);

  // Decide kinds: last state is Markov so interactive chains terminate.
  std::vector<bool> interactive(n, false);
  for (std::size_t s = 0; s + 1 < n; ++s) {
    interactive[s] = rng.next_double() < config.interactive_bias;
  }

  for (std::size_t s = 0; s < n; ++s) {
    if (interactive[s]) {
      // Interactive transitions lead strictly forward (no Zeno cycles).
      const unsigned fanout =
          config.deterministic ? 1u : 1u + static_cast<unsigned>(rng.next_below(config.max_fanout));
      bool has_tau = false;
      for (unsigned i = 0; i < fanout; ++i) {
        const StateId to = static_cast<StateId>(s + 1 + rng.next_below(n - s - 1));
        const Action a = rng.next_double() < config.tau_bias
                             ? kTau
                             : (rng.next_double() < 0.5 ? visible_a : visible_b);
        has_tau = has_tau || a == kTau;
        b.add_interactive(static_cast<StateId>(s), a, to);
      }
      // A visible-only interactive state is *stable* (Def. 4) and must
      // carry exit rate E to keep the model uniform — the same device the
      // elapse operator uses for its idle/done states.
      if (!has_tau) {
        b.add_markov(static_cast<StateId>(s), config.uniform_rate, static_cast<StateId>(s));
      }
    } else {
      // Markov state: random targets anywhere, rates normalized to the
      // uniform rate.
      const unsigned fanout = 1u + static_cast<unsigned>(rng.next_below(config.max_fanout));
      std::vector<double> weights(fanout);
      double total = 0.0;
      for (double& w : weights) {
        w = 0.1 + rng.next_double();
        total += w;
      }
      for (unsigned i = 0; i < fanout; ++i) {
        const StateId to = static_cast<StateId>(rng.next_below(n));
        b.add_markov(static_cast<StateId>(s), config.uniform_rate * weights[i] / total, to);
      }
    }
  }

  // Connectivity: give every state an incoming edge from a smaller state by
  // adding Markov mass is impossible without breaking uniformity, so
  // instead wire unreachable states via an extra interactive successor of
  // state 0 when it is interactive, or accept the reachable restriction.
  Imc built = b.build().reachable();
  return built;
}

std::vector<bool> random_goal(Rng& rng, std::size_t num_states, double density) {
  std::vector<bool> goal(num_states, false);
  bool any = false;
  for (std::size_t s = 1; s < num_states; ++s) {
    if (rng.next_double() < density) {
      goal[s] = true;
      any = true;
    }
  }
  if (!any && num_states > 1) goal[num_states - 1] = true;
  return goal;
}

Ctmc ctmc_from_deterministic_ctmdp(const Ctmdp& model) {
  CtmcBuilder b(model.num_states());
  b.ensure_states(model.num_states());
  b.set_initial(model.initial());
  for (StateId s = 0; s < model.num_states(); ++s) {
    const auto [first, last] = model.transition_range(s);
    if (last - first > 1) {
      throw ModelError("ctmc_from_deterministic_ctmdp: state has a choice");
    }
    if (first == last) continue;
    for (const SparseEntry& e : model.rates(first)) b.add_transition(s, e.value, e.col);
  }
  return b.build();
}

Ctmc induced_ctmc(const Ctmdp& model, const std::vector<std::uint64_t>& choice) {
  CtmcBuilder b(model.num_states());
  b.ensure_states(model.num_states());
  b.set_initial(model.initial());
  for (StateId s = 0; s < model.num_states(); ++s) {
    const auto [first, last] = model.transition_range(s);
    if (first == last) continue;
    const std::uint64_t tr = choice[s];
    if (tr < first || tr >= last) throw ModelError("induced_ctmc: bad choice");
    for (const SparseEntry& e : model.rates(tr)) b.add_transition(s, e.value, e.col);
  }
  return b.build();
}

}  // namespace unicon::testutil
