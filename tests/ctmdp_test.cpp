#include <gtest/gtest.h>

#include "ctmdp/ctmdp.hpp"
#include "support/errors.hpp"

namespace unicon {
namespace {

/// Two states; state 0 has two transitions (fast/slow), state 1 loops.
Ctmdp two_choice_model() {
  CtmdpBuilder b;
  b.ensure_states(2);
  b.set_initial(0);
  b.begin_transition(0, "fast");
  b.add_rate(1, 3.0);
  b.begin_transition(0, "slow");
  b.add_rate(0, 2.0);
  b.add_rate(1, 1.0);
  b.begin_transition(1, "loop");
  b.add_rate(1, 3.0);
  return b.build();
}

TEST(Ctmdp, BuilderBasics) {
  const Ctmdp c = two_choice_model();
  EXPECT_EQ(c.num_states(), 2u);
  EXPECT_EQ(c.num_transitions(), 3u);
  EXPECT_EQ(c.num_transitions_of(0), 2u);
  EXPECT_EQ(c.num_transitions_of(1), 1u);
  EXPECT_EQ(c.initial(), 0u);
}

TEST(Ctmdp, ExitRatesCached) {
  const Ctmdp c = two_choice_model();
  const auto [first, last] = c.transition_range(0);
  ASSERT_EQ(last - first, 2u);
  EXPECT_DOUBLE_EQ(c.exit_rate(first), 3.0);
  EXPECT_DOUBLE_EQ(c.exit_rate(first + 1), 3.0);
}

TEST(Ctmdp, SourcesAndLabels) {
  const Ctmdp c = two_choice_model();
  EXPECT_EQ(c.source(0), 0u);
  EXPECT_EQ(c.source(2), 1u);
  EXPECT_EQ(c.words().str(c.label(0), c.actions()), "fast");
  EXPECT_EQ(c.words().str(c.label(2), c.actions()), "loop");
}

TEST(Ctmdp, DuplicateTargetsMergeWithinTransition) {
  CtmdpBuilder b;
  b.ensure_states(2);
  b.begin_transition(0, "a");
  b.add_rate(1, 1.0);
  b.add_rate(1, 2.0);
  const Ctmdp c = b.build();
  ASSERT_EQ(c.rates(0).size(), 1u);
  EXPECT_DOUBLE_EQ(c.rates(0)[0].value, 3.0);
  EXPECT_DOUBLE_EQ(c.exit_rate(0), 3.0);
}

TEST(Ctmdp, EmptyTransitionRejected) {
  CtmdpBuilder b;
  b.ensure_states(1);
  b.begin_transition(0, "a");
  EXPECT_THROW(b.build(), ModelError);
}

TEST(Ctmdp, RateWithoutTransitionRejected) {
  CtmdpBuilder b;
  EXPECT_THROW(b.add_rate(0, 1.0), ModelError);
}

TEST(Ctmdp, NonPositiveRateRejected) {
  CtmdpBuilder b;
  b.begin_transition(0, "a");
  EXPECT_THROW(b.add_rate(1, 0.0), ModelError);
  EXPECT_THROW(b.add_rate(1, -2.0), ModelError);
}

TEST(Ctmdp, UniformRateDetection) {
  EXPECT_TRUE(two_choice_model().is_uniform());
  EXPECT_DOUBLE_EQ(*two_choice_model().uniform_rate(), 3.0);

  CtmdpBuilder b;
  b.ensure_states(2);
  b.begin_transition(0, "a");
  b.add_rate(1, 1.0);
  b.begin_transition(1, "a");
  b.add_rate(0, 2.0);
  EXPECT_FALSE(b.build().is_uniform());
}

TEST(Ctmdp, EmptyModelUniformAtZero) {
  CtmdpBuilder b;
  b.ensure_states(1);
  EXPECT_DOUBLE_EQ(*b.build().uniform_rate(), 0.0);
}

TEST(Ctmdp, UniformizePadsPerTransitionSelfLoops) {
  CtmdpBuilder b;
  b.ensure_states(2);
  b.set_initial(0);
  b.begin_transition(0, "a");
  b.add_rate(1, 1.0);
  b.begin_transition(1, "b");
  b.add_rate(0, 4.0);
  const Ctmdp u = b.build().uniformize();
  EXPECT_TRUE(u.is_uniform());
  EXPECT_DOUBLE_EQ(*u.uniform_rate(), 4.0);
  // Transition 0 gained a self-loop of rate 3 at its source.
  bool found = false;
  for (const SparseEntry& e : u.rates(0)) {
    if (e.col == u.source(0)) {
      found = true;
      EXPECT_DOUBLE_EQ(e.value, 3.0);
    }
  }
  EXPECT_TRUE(found);
}

TEST(Ctmdp, UniformizeBelowExitThrows) {
  EXPECT_THROW(two_choice_model().uniformize(2.0), UniformityError);
}

TEST(Ctmdp, MemoryBytesPositive) {
  EXPECT_GT(two_choice_model().memory_bytes(), 0u);
}

TEST(Ctmdp, WordLabelsSupported) {
  CtmdpBuilder b;
  b.ensure_states(2);
  const Action r = b.intern_action("r_wsL");
  const Action g = b.intern_action("g_bb");
  const std::vector<Action> word{r, g};
  b.begin_transition(0, b.intern_word(word));
  b.add_rate(1, 1.0);
  const Ctmdp c = b.build();
  EXPECT_EQ(c.words().str(c.label(0), c.actions()), "r_wsL.g_bb");
}

TEST(Ctmdp, TransitionsGroupedBySource) {
  // Insertion order interleaves sources; build() groups them.
  CtmdpBuilder b;
  b.ensure_states(3);
  b.begin_transition(2, "x");
  b.add_rate(0, 1.0);
  b.begin_transition(0, "y");
  b.add_rate(1, 1.0);
  b.begin_transition(2, "z");
  b.add_rate(1, 1.0);
  const Ctmdp c = b.build();
  EXPECT_EQ(c.num_transitions_of(0), 1u);
  EXPECT_EQ(c.num_transitions_of(1), 0u);
  EXPECT_EQ(c.num_transitions_of(2), 2u);
  const auto [first, last] = c.transition_range(2);
  for (std::uint64_t t = first; t < last; ++t) EXPECT_EQ(c.source(t), 2u);
}

TEST(Ctmdp, BadInitialRejected) {
  CtmdpBuilder b;
  b.ensure_states(1);
  b.set_initial(5);
  EXPECT_THROW(b.build(), ModelError);
}

}  // namespace
}  // namespace unicon
