#include <gtest/gtest.h>

#include "bisim/bisimulation.hpp"
#include "core/analysis.hpp"
#include "imc/imc.hpp"
#include "support/errors.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace unicon {
namespace {

// ------------------------------------------------------------ strong

TEST(StrongBisim, IdenticalBranchesMerge) {
  // 0 -a-> 1, 0 -a-> 2 where 1 and 2 behave identically.
  ImcBuilder b;
  for (int i = 0; i < 4; ++i) b.add_state();
  b.set_initial(0);
  b.add_interactive(0, "a", 1);
  b.add_interactive(0, "a", 2);
  b.add_interactive(1, "b", 3);
  b.add_interactive(2, "b", 3);
  const Imc m = b.build();
  const Partition p = strong_bisimulation(m);
  EXPECT_EQ(p.num_blocks, 3u);
  EXPECT_TRUE(p.same(1, 2));
  EXPECT_FALSE(p.same(0, 1));
}

TEST(StrongBisim, DifferentActionsSeparate) {
  ImcBuilder b;
  for (int i = 0; i < 4; ++i) b.add_state();
  b.set_initial(0);
  b.add_interactive(0, "a", 2);
  b.add_interactive(1, "b", 3);
  const Imc m = b.build();
  const Partition p = strong_bisimulation(m);
  EXPECT_FALSE(p.same(0, 1));
  EXPECT_TRUE(p.same(2, 3));  // both absorbing
}

TEST(StrongBisim, MarkovRatesAreLumped) {
  // States 1 and 2 both move to {3} with total rate 2 (via different
  // splittings); strong bisimulation lumps them.
  ImcBuilder b;
  for (int i = 0; i < 4; ++i) b.add_state();
  b.set_initial(0);
  b.add_markov(0, 1.0, 1);
  b.add_markov(0, 1.0, 2);
  b.add_markov(1, 2.0, 3);
  b.add_markov(2, 1.2, 3);
  b.add_markov(2, 0.8, 3);
  const Imc m = b.build();
  const Partition p = strong_bisimulation(m);
  EXPECT_TRUE(p.same(1, 2));
}

TEST(StrongBisim, DifferentRatesSeparate) {
  ImcBuilder b;
  for (int i = 0; i < 3; ++i) b.add_state();
  b.set_initial(0);
  b.add_markov(0, 1.0, 2);
  b.add_markov(1, 2.0, 2);
  const Imc m = b.build();
  EXPECT_FALSE(strong_bisimulation(m).same(0, 1));
}

TEST(StrongBisim, RatesOfUnstableStatesIgnored) {
  // Maximal progress: both states do tau to 2; their (different) rates are
  // preempted and must not split them.
  ImcBuilder b;
  for (int i = 0; i < 3; ++i) b.add_state();
  b.set_initial(0);
  b.add_interactive(0, kTau, 2);
  b.add_interactive(1, kTau, 2);
  b.add_markov(0, 5.0, 2);
  b.add_markov(1, 50.0, 2);
  const Imc m = b.build();
  EXPECT_TRUE(strong_bisimulation(m).same(0, 1));
}

TEST(StrongBisim, QuotientKeepsTauSelfLoop) {
  // A two-state tau cycle of equivalent states must stay unstable in the
  // strong quotient.
  ImcBuilder b;
  b.add_state();
  b.add_state();
  b.set_initial(0);
  b.add_interactive(0, kTau, 1);
  b.add_interactive(1, kTau, 0);
  const Imc m = b.build();
  const Partition p = strong_bisimulation(m);
  ASSERT_TRUE(p.same(0, 1));
  const Imc q = quotient(m, p, QuotientStyle::Strong);
  EXPECT_EQ(q.num_states(), 1u);
  EXPECT_TRUE(q.has_tau(0));
}

// ---------------------------------------------------------- branching

TEST(BranchingBisim, InertTauCollapses) {
  // 0 -tau-> 1 -a-> 2: state 0 and 1 are branching bisimilar.
  ImcBuilder b;
  for (int i = 0; i < 3; ++i) b.add_state();
  b.set_initial(0);
  b.add_interactive(0, kTau, 1);
  b.add_interactive(1, "a", 2);
  const Imc m = b.build();
  const Partition p = branching_bisimulation(m);
  EXPECT_TRUE(p.same(0, 1));
  EXPECT_FALSE(p.same(0, 2));
}

TEST(BranchingBisim, ObservableTauIsKept) {
  // 0 -tau-> 1 where 1 loses the ability to do b: tau is NOT inert.
  ImcBuilder b;
  for (int i = 0; i < 3; ++i) b.add_state();
  b.set_initial(0);
  b.add_interactive(0, kTau, 1);
  b.add_interactive(0, "b", 2);
  b.add_interactive(1, "a", 2);
  const Imc m = b.build();
  EXPECT_FALSE(branching_bisimulation(m).same(0, 1));
}

TEST(BranchingBisim, TauCycleMembersMergeWhenOptionsShared) {
  ImcBuilder b;
  for (int i = 0; i < 3; ++i) b.add_state();
  b.set_initial(0);
  b.add_interactive(0, kTau, 1);
  b.add_interactive(1, kTau, 0);
  b.add_interactive(0, "a", 2);
  b.add_interactive(1, "a", 2);
  const Imc m = b.build();
  EXPECT_TRUE(branching_bisimulation(m).same(0, 1));
}

TEST(BranchingBisim, TauCycleMembersMergeViaInertReachability) {
  // 0 <-tau-> 1 but only 1 offers a: 0 still reaches the a inertly, so in
  // divergence-blind branching bisimulation the cycle states merge.
  ImcBuilder b;
  for (int i = 0; i < 3; ++i) b.add_state();
  b.set_initial(0);
  b.add_interactive(0, kTau, 1);
  b.add_interactive(1, kTau, 0);
  b.add_interactive(1, "a", 2);
  const Imc m = b.build();
  EXPECT_TRUE(branching_bisimulation(m).same(0, 1));
}

TEST(BranchingBisim, StableStateRateVectorsMatter) {
  ImcBuilder b;
  for (int i = 0; i < 3; ++i) b.add_state();
  b.set_initial(0);
  b.add_markov(0, 1.0, 2);
  b.add_markov(1, 3.0, 2);
  const Imc m = b.build();
  EXPECT_FALSE(branching_bisimulation(m).same(0, 1));
}

TEST(BranchingBisim, UnstableStateInheritsStablePartner) {
  // 1 is unstable but inertly reaches stable 2; its own rates are
  // preempted (condition 2 of Def. 6 only looks at stable states).
  ImcBuilder b;
  for (int i = 0; i < 4; ++i) b.add_state();
  b.set_initial(0);
  b.add_markov(0, 1.0, 1);
  b.add_interactive(1, kTau, 2);
  b.add_markov(1, 99.0, 3);  // preempted
  b.add_markov(2, 2.0, 3);
  const Imc m = b.build();
  EXPECT_TRUE(branching_bisimulation(m).same(1, 2));
}

TEST(BranchingBisim, LabelSeedingSeparatesGoalStates) {
  // Without labels everything here is equivalent; goal labels force a split.
  ImcBuilder b;
  b.add_state();
  b.add_state();
  b.set_initial(0);
  b.add_markov(0, 1.0, 1);
  b.add_markov(1, 1.0, 0);
  const Imc m = b.build();
  EXPECT_EQ(branching_bisimulation(m).num_blocks, 1u);
  const std::vector<std::uint32_t> labels{0, 1};
  const Partition p = branching_bisimulation(m, &labels);
  EXPECT_EQ(p.num_blocks, 2u);
  EXPECT_FALSE(p.same(0, 1));
}

TEST(BranchingBisim, LabelSizeMismatchThrows) {
  ImcBuilder b;
  b.add_state();
  const Imc m = b.build();
  const std::vector<std::uint32_t> labels{0, 1};
  EXPECT_THROW(branching_bisimulation(m, &labels), ModelError);
}

// ----------------------------------------------------------- quotient

TEST(Quotient, PartitionSizeMismatchThrows) {
  ImcBuilder b;
  b.add_state();
  const Imc m = b.build();
  Partition p;
  p.block_of = {0, 0};
  p.num_blocks = 1;
  EXPECT_THROW(quotient(m, p), ModelError);
}

TEST(Quotient, LumpsRatesIntoBlocks) {
  ImcBuilder b;
  for (int i = 0; i < 4; ++i) b.add_state();
  b.set_initial(0);
  b.add_markov(0, 1.0, 1);
  b.add_markov(0, 1.0, 2);
  b.add_markov(1, 2.0, 3);
  b.add_markov(2, 2.0, 3);
  const Imc m = b.build();
  const Imc q = minimize_strong(m);
  EXPECT_EQ(q.num_states(), 3u);
  // The merged middle block receives the summed incoming rate.
  EXPECT_DOUBLE_EQ(q.exit_rate(q.initial()), 2.0);
}

TEST(Quotient, PreservesInitialBlock) {
  Rng rng(11);
  const Imc m = testutil::random_uniform_imc(rng);
  const Partition p = branching_bisimulation(m);
  const Imc q = quotient(m, p);
  EXPECT_EQ(q.initial(), p.block_of[m.initial()]);
}

// ----------------------------- Lemma 3 / Corollary 1 (property sweeps)

class MinimizationProperties : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(MinimizationProperties, QuotientPreservesUniformity) {
  // Corollary 1: M uniform iff StoBraBi(M) uniform.
  Rng rng(GetParam());
  testutil::RandomImcConfig config;
  config.num_states = 14;
  config.uniform_rate = 2.5;
  const Imc m = testutil::random_uniform_imc(rng, config);
  ASSERT_TRUE(m.is_uniform(UniformityView::Open, 1e-9));
  const Imc q = minimize_branching(m);
  EXPECT_TRUE(q.is_uniform(UniformityView::Open, 1e-6));
  EXPECT_LE(q.num_states(), m.num_states());
}

TEST_P(MinimizationProperties, QuotientPreservesTimedReachability) {
  // Goal-respecting quotienting must not change sup/inf reachability.
  Rng rng(GetParam() + 500);
  testutil::RandomImcConfig config;
  config.num_states = 12;
  config.uniform_rate = 2.0;
  const Imc m = testutil::random_uniform_imc(rng, config);
  const BitVector goal = testutil::random_goal(rng, m.num_states());

  std::vector<std::uint32_t> labels(m.num_states());
  for (StateId s = 0; s < m.num_states(); ++s) labels[s] = goal[s] ? 1 : 0;
  const Partition p = branching_bisimulation(m, &labels);
  const Imc q = quotient(m, p);
  std::vector<bool> qgoal(q.num_states(), false);
  for (StateId s = 0; s < m.num_states(); ++s) {
    if (goal[s]) qgoal[p.block_of[s]] = true;
  }

  for (double t : {0.5, 2.0}) {
    UimcAnalysisOptions options;
    options.reachability.epsilon = 1e-8;
    const double full = analyze_timed_reachability(m, goal, t, options).value;
    const double reduced = analyze_timed_reachability(q, qgoal, t, options).value;
    EXPECT_NEAR(full, reduced, 1e-6) << "t=" << t;
  }
}

TEST_P(MinimizationProperties, QuotientIsIdempotent) {
  Rng rng(GetParam() + 900);
  const Imc m = testutil::random_uniform_imc(rng);
  const Imc q1 = minimize_branching(m);
  const Imc q2 = minimize_branching(q1);
  EXPECT_EQ(q1.num_states(), q2.num_states());
  EXPECT_EQ(q1.num_interactive_transitions(), q2.num_interactive_transitions());
}

TEST_P(MinimizationProperties, StrongRefinesBranching) {
  // Every strongly bisimilar pair is branching bisimilar: the strong
  // partition refines the branching one.
  Rng rng(GetParam() + 1300);
  testutil::RandomImcConfig config;
  config.num_states = 16;
  const Imc m = testutil::random_uniform_imc(rng, config);
  const Partition strong = strong_bisimulation(m);
  const Partition branching = branching_bisimulation(m);
  EXPECT_GE(strong.num_blocks, branching.num_blocks);
  for (StateId a = 0; a < m.num_states(); ++a) {
    for (StateId b = a + 1; b < m.num_states(); ++b) {
      if (strong.same(a, b)) {
        EXPECT_TRUE(branching.same(a, b)) << a << "," << b;
      }
    }
  }
}

TEST_P(MinimizationProperties, LabeledPartitionRefinesLabelClasses) {
  Rng rng(GetParam() + 1700);
  const Imc m = testutil::random_uniform_imc(rng);
  std::vector<std::uint32_t> labels(m.num_states());
  for (StateId s = 0; s < m.num_states(); ++s) labels[s] = s % 3;
  const Partition p = branching_bisimulation(m, &labels);
  for (StateId a = 0; a < m.num_states(); ++a) {
    for (StateId b = a + 1; b < m.num_states(); ++b) {
      if (p.same(a, b)) {
        EXPECT_EQ(labels[a], labels[b]);
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, MinimizationProperties, ::testing::Range<std::uint64_t>(0, 15));

}  // namespace
}  // namespace unicon
