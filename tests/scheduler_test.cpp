#include <gtest/gtest.h>

#include "ctmc/transient.hpp"
#include "ctmdp/reachability.hpp"
#include "ctmdp/scheduler.hpp"
#include "support/errors.hpp"

namespace unicon {
namespace {

Ctmdp choice_model() {
  CtmdpBuilder b;
  b.ensure_states(3);
  b.set_initial(0);
  b.begin_transition(0, "good");
  b.add_rate(2, 3.0);
  b.add_rate(1, 1.0);
  b.begin_transition(0, "bad");
  b.add_rate(1, 4.0);
  b.begin_transition(1, "back");
  b.add_rate(0, 4.0);
  b.begin_transition(2, "stay");
  b.add_rate(2, 4.0);
  return b.build();
}

TEST(StationaryScheduler, FirstTransitionDefaults) {
  const Ctmdp c = choice_model();
  const auto s = StationaryScheduler::first_transition(c);
  EXPECT_EQ(s.choice(0), 0u);
  EXPECT_EQ(s.choice(1), 2u);
  EXPECT_NO_THROW(s.validate(c));
}

TEST(StationaryScheduler, ValidateCatchesBadChoices) {
  const Ctmdp c = choice_model();
  StationaryScheduler s({5, 2, 3});
  EXPECT_THROW(s.validate(c), ModelError);
  StationaryScheduler wrong_size({0});
  EXPECT_THROW(wrong_size.validate(c), ModelError);
}

TEST(StationaryScheduler, InducedCtmcMatchesEvaluation) {
  const Ctmdp c = choice_model();
  const std::vector<bool> goal{false, false, true};
  for (std::uint64_t pick : {0u, 1u}) {
    StationaryScheduler s({pick, 2, 3});
    const Ctmc induced = s.induced_ctmc(c);
    const auto via_ctmc = timed_reachability(induced, goal, 1.5, TransientOptions{1e-9});
    const auto via_eval = evaluate_scheduler(c, goal, 1.5, s.choices(), {.epsilon = 1e-9});
    EXPECT_NEAR(via_ctmc.probabilities[0], via_eval.values[0], 1e-8) << pick;
  }
}

TEST(StationaryScheduler, FromInitialDecisionsPicksTheOptimum) {
  const Ctmdp c = choice_model();
  const std::vector<bool> goal{false, false, true};
  TimedReachabilityOptions options;
  options.extract_scheduler = true;
  const auto result = timed_reachability(c, goal, 1.0, options);
  const auto s = StationaryScheduler::from_initial_decisions(c, result);
  EXPECT_EQ(s.choice(0), 0u);  // "good"
  // Goal state falls back to its first transition.
  EXPECT_EQ(s.choice(2), 3u);
}

TEST(StationaryScheduler, FromInitialDecisionsRequiresExtraction) {
  const Ctmdp c = choice_model();
  const auto result = timed_reachability(c, {false, false, true}, 1.0);
  EXPECT_THROW(StationaryScheduler::from_initial_decisions(c, result), ModelError);
}

TEST(CountdownScheduler, ReplaysDecisionTable) {
  const Ctmdp c = choice_model();
  const std::vector<bool> goal{false, false, true};
  TimedReachabilityOptions options;
  options.extract_scheduler = true;
  const auto result = timed_reachability(c, goal, 1.0, options);
  ASSERT_FALSE(result.decisions.empty());
  const auto s = CountdownScheduler::from_result(result);
  EXPECT_EQ(s.num_steps(), result.iterations_planned);
  EXPECT_EQ(s.choice(1, 0), result.initial_decision[0]);
  // Steps beyond the table clamp to the last row.
  EXPECT_NO_THROW(s.choice(s.num_steps() + 100, 0));
  EXPECT_THROW(s.choice(0, 0), ModelError);
}

TEST(CountdownScheduler, RequiresDecisionTable) {
  const Ctmdp c = choice_model();
  const auto result = timed_reachability(c, {false, false, true}, 1.0);
  EXPECT_THROW(CountdownScheduler::from_result(result), ModelError);
}

}  // namespace
}  // namespace unicon
