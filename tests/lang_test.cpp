// UNI language frontend: diagnostics, golden models, lowering, fuzzing.
//
// The malformed-input table asserts that every lex/parse/semantic error is
// reported with its exact 1-based line and column; the golden tests check
// that the shipped .uni files reproduce the programmatic models' timed
// reachability to 1e-9.
#include <cmath>
#include <fstream>
#include <regex>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "core/time_constraint.hpp"
#include "ftwc/compositional.hpp"
#include "imc/compose.hpp"
#include "io/tra.hpp"
#include "lang/build.hpp"
#include "lang/fuzz.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "lang/sema.hpp"
#include "lts/lts.hpp"
#include "support/telemetry.hpp"

using namespace unicon;
using namespace unicon::lang;

namespace {

std::string read_model_file(const std::string& name) {
  const std::string path = std::string(UNICON_MODELS_DIR) + "/" + name;
  std::ifstream in(path);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

// ---------------------------------------------------------------------------
// Malformed inputs: every rejection carries category + exact line:col.

struct BadCase {
  const char* name;
  const char* source;
  Diagnostic::Category category;
  std::uint32_t line;
  std::uint32_t col;
  const char* message_part;
};

const BadCase kBadCases[] = {
    {"malformed_number",
     "component C {\n"
     "  states s0;\n"
     "  initial s0;\n"
     "  rate 1.2.3: s0 -> s0;\n"
     "}\n"
     "system = C;\n",
     Diagnostic::Category::Lex, 4, 8, "malformed number"},
    {"stray_dash", "system = a -- b;\n", Diagnostic::Category::Lex, 1, 12, "stray '-'"},
    {"stray_bracket", "system = a ] b;\n", Diagnostic::Category::Lex, 1, 12, "stray ']'"},
    {"unexpected_character", "component C@ {}\n", Diagnostic::Category::Lex, 1, 12,
     "unexpected character"},
    {"missing_semicolon",
     "component C {\n"
     "  states s0\n"
     "}\n",
     Diagnostic::Category::Parse, 3, 1, "expected"},
    {"missing_expression", "system = ;\n", Diagnostic::Category::Parse, 1, 10, "expected"},
    {"erlang_zero_phases", "timing t = erlang(0, 3);\n", Diagnostic::Category::Parse, 1, 19,
     "positive integer"},
    {"undeclared_state",
     "component C {\n"
     "  states s0;\n"
     "  initial s0;\n"
     "  go: s0 ->\n"
     "    s9;\n"
     "}\n"
     "system = C;\n",
     Diagnostic::Category::Semantic, 5, 5, "undeclared state 's9'"},
    {"tau_in_sync_set",
     "component C {\n"
     "  states s0;\n"
     "  initial s0;\n"
     "  a: s0 -> s0;\n"
     "}\n"
     "system = C |[\n"
     "  tau]| C;\n",
     Diagnostic::Category::Semantic, 7, 3, "tau cannot appear in a synchronization set"},
    {"tau_hidden",
     "component C {\n"
     "  states s0;\n"
     "  initial s0;\n"
     "  a: s0 -> s0;\n"
     "}\n"
     "system = hide {tau} in C;\n",
     Diagnostic::Category::Semantic, 6, 16, "tau cannot be hidden"},
    {"non_uniform_elapse_rate",
     "component C {\n"
     "  states s0, s1;\n"
     "  initial s0;\n"
     "  go: s0 -> s1;\n"
     "  back: s1 -> s0;\n"
     "}\n"
     "timing t = erlang(2, 4);\n"
     "system = C |[go, back]| elapse(go, back, t, running,\n"
     "  rate 1.5);\n",
     Diagnostic::Category::Semantic, 9, 8, "non-uniform time constraint"},
    {"undeclared_component", "system = nosuch;\n", Diagnostic::Category::Semantic, 1, 10,
     "undeclared component"},
    {"non_uniform_component",
     "component C {\n"
     "  states s0, s1;\n"
     "  initial s0;\n"
     "  rate 1: s0 -> s1;\n"
     "  rate 2: s1 -> s0;\n"
     "}\n"
     "system = C;\n",
     Diagnostic::Category::Semantic, 1, 11, "not uniform"},
    {"no_system",
     "component C {\n"
     "  states s0;\n"
     "  initial s0;\n"
     "}\n",
     Diagnostic::Category::Semantic, 1, 1, "no 'system'"},
    {"redeclared_name",
     "component C {\n"
     "  states s0;\n"
     "  initial s0;\n"
     "}\n"
     "timing C = exponential(1);\n"
     "system = C;\n",
     Diagnostic::Category::Semantic, 5, 8, "redeclares"},
    {"let_used_before_definition",
     "component C {\n"
     "  states s0;\n"
     "  initial s0;\n"
     "  a: s0 -> s0;\n"
     "}\n"
     "let x = y ||| C;\n"
     "let y = C;\n"
     "system = x;\n",
     Diagnostic::Category::Semantic, 6, 9, "before its definition"},
};

TEST(LangDiagnostics, MalformedInputsReportExactLocations) {
  for (const BadCase& c : kBadCases) {
    SCOPED_TRACE(c.name);
    bool threw = false;
    try {
      (void)parse_and_check(c.source, "bad.uni");
    } catch (const LangError& e) {
      threw = true;
      const Diagnostic& d = e.diagnostic();
      EXPECT_EQ(static_cast<int>(d.category), static_cast<int>(c.category))
          << "category: " << category_name(d.category) << " — " << d.message;
      EXPECT_EQ(d.loc.line, c.line) << d.message;
      EXPECT_EQ(d.loc.col, c.col) << d.message;
      EXPECT_NE(d.message.find(c.message_part), std::string::npos) << d.message;
      // The rendered message is file:line:col: category: message.
      const std::string expected_prefix = "bad.uni:" + std::to_string(c.line) + ":" +
                                          std::to_string(c.col) + ": " +
                                          category_name(d.category);
      EXPECT_EQ(std::string(e.what()).rfind(expected_prefix, 0), 0u) << e.what();
    }
    EXPECT_TRUE(threw) << "input unexpectedly accepted";
  }
}

TEST(LangDiagnostics, CollectsMultipleSemanticErrors) {
  const char* source =
      "component C {\n"
      "  states s0;\n"
      "  initial s0;\n"
      "  a: s0 -> s1;\n"
      "  b: s2 -> s0;\n"
      "}\n"
      "system = C;\n";
  const std::vector<Diagnostic> diags = check_model(parse_model(source));
  ASSERT_EQ(diags.size(), 2u);
  EXPECT_NE(diags[0].message.find("undeclared state 's1'"), std::string::npos);
  EXPECT_NE(diags[1].message.find("undeclared state 's2'"), std::string::npos);
}

// ---------------------------------------------------------------------------
// Printer round-trips on the shipped models.

TEST(LangPrinter, ShippedModelsRoundTrip) {
  for (const char* name : {"quickstart.uni", "erlang_job_shop.uni", "ftwc.uni"}) {
    SCOPED_TRACE(name);
    const std::string source = read_model_file(name);
    const Model m = parse_and_check(source, name);
    const std::string printed = print_model(m);
    const Model reparsed = parse_and_check(printed, name);
    EXPECT_EQ(print_model(reparsed), printed) << "printing is not idempotent";
  }
}

// ---------------------------------------------------------------------------
// Golden tests: the shipped .uni files match the programmatic models.

double analyze(const Imc& system, const BitVector& goal, double t,
               Objective objective = Objective::Maximize) {
  UimcAnalysisOptions options;
  options.reachability.epsilon = 1e-12;
  options.reachability.objective = objective;
  return analyze_timed_reachability(system, goal, t, options).value;
}

/// The quickstart model built directly against the library API (a twin of
/// examples/quickstart.cpp).
Imc programmatic_quickstart(std::vector<bool>* goal) {
  auto actions = std::make_shared<ActionTable>();
  auto server = [&](const std::string& id) {
    LtsBuilder b(actions);
    const StateId up = b.add_state("up");
    const StateId down = b.add_state("down");
    const StateId repairing = b.add_state("down");
    b.set_initial(up);
    b.add_transition(up, "fail", down);
    b.add_transition(down, "grab_" + id, repairing);
    b.add_transition(repairing, "repair_done_" + id, up);
    std::vector<TimeConstraint> constraints;
    constraints.emplace_back(PhaseType::exponential(0.01), "fail", "repair_done_" + id,
                             /*running=*/true);
    constraints.emplace_back(PhaseType::exponential(0.5), "repair_done_" + id, "grab_" + id);
    ExploreOptions options;
    options.record_names = true;
    return apply_time_constraints(b.build(), constraints, options)
        .hide({actions->intern("fail")});
  };
  const Imc server_a = server("a");
  const Imc server_b = server("b");

  LtsBuilder tech(actions);
  const StateId idle = tech.add_state("idle");
  const StateId busy_a = tech.add_state("busy_a");
  const StateId busy_b = tech.add_state("busy_b");
  tech.set_initial(idle);
  tech.add_transition(idle, "grab_a", busy_a);
  tech.add_transition(busy_a, "repair_done_a", idle);
  tech.add_transition(idle, "grab_b", busy_b);
  tech.add_transition(busy_b, "repair_done_b", idle);

  std::unordered_set<Action> sync;
  for (const char* a : {"grab_a", "grab_b", "repair_done_a", "repair_done_b"}) {
    sync.insert(actions->intern(a));
  }
  CompositionExpr expr = CompositionExpr::parallel(
      CompositionExpr::interleave(CompositionExpr::leaf(server_a), CompositionExpr::leaf(server_b)),
      std::move(sync), CompositionExpr::leaf(imc_from_lts(tech.build())));
  ExploreOptions explore;
  explore.record_names = true;
  explore.urgent = true;
  Imc system = expr.explore(explore);

  goal->assign(system.num_states(), false);
  for (StateId s = 0; s < system.num_states(); ++s) {
    const std::string& name = system.state_name(s);
    std::size_t downs = 0;
    for (std::size_t pos = name.find("down"); pos != std::string::npos;
         pos = name.find("down", pos + 1)) {
      ++downs;
    }
    (*goal)[s] = downs >= 2;
  }
  return system;
}

TEST(LangGolden, QuickstartMatchesProgrammaticModel) {
  const Model ast = parse_and_check(read_model_file("quickstart.uni"), "quickstart.uni");
  const BuiltModel built = build_model(ast);

  std::vector<bool> goal;
  const Imc twin = programmatic_quickstart(&goal);
  EXPECT_EQ(built.system.num_states(), twin.num_states());
  EXPECT_NEAR(built.uniform_rate, *twin.uniform_rate(UniformityView::Closed, 1e-6), 1e-12);

  for (double t : {24.0, 168.0}) {
    EXPECT_NEAR(analyze(built.system, built.mask("goal"), t), analyze(twin, goal, t), 1e-9);
    EXPECT_NEAR(analyze(built.system, built.mask("goal"), t, Objective::Minimize),
                analyze(twin, goal, t, Objective::Minimize), 1e-9);
  }
}

/// Twin of examples/erlang_job_shop.cpp (2 light + 2 heavy jobs).
Imc programmatic_job_shop(std::vector<bool>* goal) {
  constexpr unsigned kLight = 2, kHeavy = 2;
  auto actions = std::make_shared<ActionTable>();

  LtsBuilder machine(actions);
  const StateId free_state = machine.add_state("free");
  const StateId busy_light = machine.add_state("busy_light");
  const StateId busy_heavy = machine.add_state("busy_heavy");
  machine.set_initial(free_state);
  machine.add_transition(free_state, "start_light", busy_light);
  machine.add_transition(busy_light, "done_light", free_state);
  machine.add_transition(free_state, "start_heavy", busy_heavy);
  machine.add_transition(busy_heavy, "done_heavy", free_state);

  std::vector<TimeConstraint> constraints;
  constraints.emplace_back(PhaseType::erlang(2, 8.0), "done_light", "start_light");
  constraints.emplace_back(PhaseType::erlang(4, 2.0), "done_heavy", "start_heavy");
  ExploreOptions opts;
  opts.record_names = true;
  const Imc machine_imc = apply_time_constraints(machine.build(), constraints, opts);

  LtsBuilder pool(actions);
  std::vector<StateId> ids((kLight + 1) * (kHeavy + 1) * (kLight + 1), kNoState);
  auto idx = [](unsigned lp, unsigned hp, unsigned ld) {
    return (lp * (kHeavy + 1) + hp) * (kLight + 1) + ld;
  };
  for (unsigned lp = 0; lp <= kLight; ++lp) {
    for (unsigned hp = 0; hp <= kHeavy; ++hp) {
      for (unsigned ld = 0; ld + lp <= kLight; ++ld) {
        ids[idx(lp, hp, ld)] =
            pool.add_state(ld == kLight ? "lights_done" : "lp" + std::to_string(lp));
      }
    }
  }
  pool.set_initial(ids[idx(kLight, kHeavy, 0)]);
  for (unsigned lp = 0; lp <= kLight; ++lp) {
    for (unsigned hp = 0; hp <= kHeavy; ++hp) {
      for (unsigned ld = 0; ld + lp <= kLight; ++ld) {
        const StateId from = ids[idx(lp, hp, ld)];
        if (lp > 0) pool.add_transition(from, "start_light", ids[idx(lp - 1, hp, ld)]);
        if (hp > 0) pool.add_transition(from, "start_heavy", ids[idx(lp, hp - 1, ld)]);
        if (ld + lp < kLight) pool.add_transition(from, "done_light", ids[idx(lp, hp, ld + 1)]);
        pool.add_transition(from, "done_heavy", from);
      }
    }
  }

  std::unordered_set<Action> sync;
  for (const char* a : {"start_light", "start_heavy", "done_light", "done_heavy"}) {
    sync.insert(actions->intern(a));
  }
  CompositionExpr expr =
      CompositionExpr::parallel(CompositionExpr::leaf(machine_imc), std::move(sync),
                                CompositionExpr::leaf(imc_from_lts(pool.build())));
  ExploreOptions explore;
  explore.record_names = true;
  explore.urgent = true;
  Imc system = expr.explore(explore);

  goal->assign(system.num_states(), false);
  for (StateId s = 0; s < system.num_states(); ++s) {
    (*goal)[s] = system.state_name(s).find("lights_done") != std::string::npos;
  }
  return system;
}

TEST(LangGolden, ErlangJobShopMatchesProgrammaticModel) {
  const Model ast =
      parse_and_check(read_model_file("erlang_job_shop.uni"), "erlang_job_shop.uni");
  const BuiltModel built = build_model(ast);

  std::vector<bool> goal;
  const Imc twin = programmatic_job_shop(&goal);
  EXPECT_EQ(built.system.num_states(), twin.num_states());
  EXPECT_NEAR(built.uniform_rate, *twin.uniform_rate(UniformityView::Closed, 1e-6), 1e-12);

  for (double t : {1.0, 3.0}) {
    EXPECT_NEAR(analyze(built.system, built.mask("goal"), t), analyze(twin, goal, t), 1e-9);
    EXPECT_NEAR(analyze(built.system, built.mask("goal"), t, Objective::Minimize),
                analyze(twin, goal, t, Objective::Minimize), 1e-9);
  }
}

TEST(LangGolden, FtwcMatchesCompositionalBuild) {
  const Model ast = parse_and_check(read_model_file("ftwc.uni"), "ftwc.uni");
  BuiltModel built = build_model(ast);
  // The programmatic build minimizes along the way; quotient the language
  // build too so Algorithm 1 runs on a comparable state count.
  built = minimize_model(built);

  ftwc::Parameters params;
  params.n = 2;
  const ftwc::CompositionalResult twin = ftwc::build_compositional(params);
  EXPECT_NEAR(built.uniform_rate, twin.uniform_rate, 1e-9);

  const double t = 10.0;
  EXPECT_NEAR(analyze(built.system, built.mask("goal"), t), analyze(twin.uimc, twin.goal, t),
              1e-9);
}

// ---------------------------------------------------------------------------
// Lowering details.

TEST(LangBuild, MinimizationPreservesValuesAndProps) {
  const Model ast = parse_and_check(read_model_file("quickstart.uni"), "quickstart.uni");
  const BuiltModel built = build_model(ast);
  const BuiltModel reduced = minimize_model(built);

  // Quickstart happens to be bisimulation-minimal already, so only require
  // that the quotient never grows; value/prop preservation is the point.
  EXPECT_LE(reduced.system.num_states(), built.system.num_states());
  EXPECT_EQ(reduced.prop_names, built.prop_names);
  const double t = 72.0;
  EXPECT_NEAR(analyze(reduced.system, reduced.mask("goal"), t),
              analyze(built.system, built.mask("goal"), t), 1e-9);
}

TEST(LangBuild, PropsFollowLeafStates) {
  const char* source =
      "component C {\n"
      "  states s0, s1;\n"
      "  initial s0;\n"
      "  label at_start: s0;\n"
      "  rate 1: s0 -> s1;\n"
      "  rate 1: s1 -> s0;\n"
      "}\n"
      "component D {\n"
      "  states t0, t1;\n"
      "  initial t0;\n"
      "  label d_moved: t1;\n"
      "  rate 2: t0 -> t1;\n"
      "  rate 2: t1 -> t0;\n"
      "}\n"
      "system = C ||| D;\n"
      "prop both = at_start & d_moved;\n";
  const BuiltModel built = build_model(parse_and_check(source));
  EXPECT_EQ(built.system.num_states(), 4u);
  EXPECT_NEAR(built.uniform_rate, 3.0, 1e-12);
  std::size_t count_start = 0, count_both = 0;
  for (StateId s = 0; s < built.system.num_states(); ++s) {
    count_start += built.mask("at_start")[s] ? 1 : 0;
    count_both += built.mask("both")[s] ? 1 : 0;
  }
  EXPECT_EQ(count_start, 2u);
  EXPECT_EQ(count_both, 1u);
  EXPECT_TRUE(built.has_prop("d_moved"));
  EXPECT_FALSE(built.has_prop("nonexistent"));
}

// ---------------------------------------------------------------------------
// io: arbitrary named propositions in .lab files.

TEST(IoLabels, WriteReadRoundTrip) {
  io::LabelMasks labels;
  labels.emplace_back("goal", std::vector<bool>{false, true, false, true});
  labels.emplace_back("init", std::vector<bool>{true, false, false, false});
  labels.emplace_back("never", std::vector<bool>{false, false, false, false});

  std::stringstream file;
  io::write_labels(file, labels);
  const io::LabelMasks reread = io::read_labels(file, 4);

  // All-false masks are not representable; the other props come back in
  // first-seen order.
  ASSERT_EQ(reread.size(), 2u);
  EXPECT_EQ(reread[0].first, "init");
  EXPECT_EQ(reread[0].second, labels[1].second);
  EXPECT_EQ(reread[1].first, "goal");
  EXPECT_EQ(reread[1].second, labels[0].second);
}

TEST(IoLabels, ReadGoalIsAThinWrapper) {
  std::stringstream file;
  io::write_goal(file, std::vector<bool>{false, true, true});
  EXPECT_EQ(io::read_goal(file, 3), (std::vector<bool>{false, true, true}));

  std::stringstream no_goal("0 other\n");
  EXPECT_EQ(io::read_goal(no_goal, 2), (std::vector<bool>{false, false}));
}

TEST(IoLabels, MalformedLinesThrow) {
  std::stringstream bad("not_a_state goal\n");
  EXPECT_THROW((void)io::read_labels(bad, 3), ParseError);

  std::stringstream out_of_range("7 goal\n");
  EXPECT_THROW((void)io::read_labels(out_of_range, 3), ParseError);
}

// ---------------------------------------------------------------------------
// Language fuzzing smoke: generated models round-trip cleanly.

TEST(LangFuzz, RoundTripSmoke) {
  LangFuzzConfig config;
  config.num_seeds = 6;
  config.base_seed = 1;
  const LangFuzzReport report = run_lang_fuzz(config);
  EXPECT_EQ(report.seeds_run, 6u);
  for (const LangFuzzFailure& f : report.failures) {
    ADD_FAILURE() << "seed " << f.seed << ": " << f.message;
  }
}

TEST(LangFuzz, GeneratorIsDeterministic) {
  EXPECT_EQ(print_model(random_model(42)), print_model(random_model(42)));
  EXPECT_NE(print_model(random_model(42)), print_model(random_model(43)));
}

// ---------------------------------------------------------------------------
// Pipeline telemetry golden: the quickstart model end to end with a live
// registry.  Pins the whole observable surface — span tree shape (build >
// compose, minimize > bisim, transform, reachability), the structural
// counters of every stage, the word-length histogram and the per-worker
// row counter.  Everything here is deterministic at threads = 1; only the
// wall-clock seconds are canonicalized away.

TEST(PipelineTelemetry, QuickstartGoldenSpanTree) {
  const Model ast = parse_and_check(read_model_file("quickstart.uni"), "quickstart.uni");
  Telemetry telemetry;
  BuildOptions build_options;
  build_options.telemetry = &telemetry;
  BuiltModel built = build_model(ast, build_options);
  built = minimize_model(built, nullptr, &telemetry);
  UimcAnalysisOptions options;
  options.reachability.threads = 1;
  // The golden tree pins the serial engine's observables (the dense SIMD
  // backend adds a dense_rows metric and sweeps fewer rows), so the backend
  // is fixed rather than inherited from UNICON_BACKEND.
  options.reachability.backend = Backend::Serial;
  options.reachability.telemetry = &telemetry;
  const auto result =
      analyze_timed_reachability(built.system, built.mask("goal"), 1.0, options);
  EXPECT_EQ(result.reachability.status, RunStatus::Converged);

  static const std::regex seconds_re("\"seconds\": [0-9.]+");
  const std::string json =
      std::regex_replace(telemetry.to_json(), seconds_re, "\"seconds\": T");
  const std::string expected =
      "{\n"
      "  \"schema\": \"unicon-telemetry-v1\",\n"
      "  \"spans\": [\n"
      "    {\"name\": \"build\", \"seconds\": T, \"open\": false, \"metrics\": "
      "{\"states\": 15, \"leaves\": 7, \"uniform_rate\": 1.02, \"labels\": 2, \"props\": 3}, "
      "\"children\": [\n"
      "      {\"name\": \"compose\", \"seconds\": T, \"open\": false, \"metrics\": "
      "{\"leaves\": 7, \"states\": 15, \"interactive_transitions\": 10, "
      "\"markov_transitions\": 20, \"dedup_hits\": 16, \"peak_frontier\": 4}, "
      "\"children\": []}\n"
      "    ]},\n"
      "    {\"name\": \"minimize\", \"seconds\": T, \"open\": false, \"metrics\": "
      "{\"input_states\": 15, \"output_states\": 15, \"prop_classes\": 4}, \"children\": [\n"
      "      {\"name\": \"bisim\", \"seconds\": T, \"open\": false, \"metrics\": "
      "{\"states\": 15, \"rounds\": 3, \"splitters\": 11, \"final_blocks\": 15}, "
      "\"children\": []}\n"
      "    ]},\n"
      "    {\"name\": \"transform\", \"seconds\": T, \"open\": false, \"metrics\": "
      "{\"input_states\": 15, \"interactive_states\": 14, \"markov_states\": 5, "
      "\"interactive_transitions\": 14, \"markov_transitions\": 13, "
      "\"words_deduplicated\": 0, \"markov_transitions_cut\": 0, \"pair_states_added\": 5, "
      "\"memory_bytes\": 528}, \"children\": []},\n"
      "    {\"name\": \"reachability\", \"seconds\": T, \"open\": false, \"metrics\": "
      "{\"states\": 14, \"transitions\": 14, \"uniform_rate\": 1.02, \"lambda\": 1.02, "
      "\"poisson_left\": 0, \"poisson_right\": 9, \"poisson_width\": 10, "
      "\"iterations_planned\": 9, \"iterations_executed\": 9, \"early_termination_step\": 0, "
      "\"threads\": 1, \"residual_bound\": 9.9999999999999995e-07, "
      "\"truncation.k_fox_glynn\": 9, \"truncation.k_effective\": 9, "
      "\"truncation.k_lyapunov\": 0, \"truncation.locked_final\": 0, "
      "\"truncation.state_updates\": 126}, \"children\": []}\n"
      "  ],\n"
      "  \"counters\": {\n"
      "    \"reachability.rows.worker0\": 126\n"
      "  },\n"
      "  \"gauges\": {},\n"
      "  \"histograms\": {\n"
      "    \"transform.word_length\": {\"count\": 13, \"sum\": 8, \"min\": 0, \"max\": 2, "
      "\"buckets\": [{\"bucket\": 0, \"count\": 7}, {\"bucket\": 1, \"count\": 4}, "
      "{\"bucket\": 2, \"count\": 2}]}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(json, expected);
}

// ---------------------------------------------------------------------------
// Zeno rejection: an untimed interactive cycle must surface as a typed
// ZenoError (stable code 11) from the analysis, not as a hang or a wrong
// number.

TEST(LangZeno, UntimedInteractiveCycleIsRejectedWithZenoError) {
  const std::string source = [] {
    const std::string path = std::string(UNICON_TEST_MODELS_DIR) + "/zeno_cycle.uni";
    std::ifstream in(path);
    EXPECT_TRUE(in.good()) << "cannot open " << path;
    std::ostringstream buffer;
    buffer << in.rdbuf();
    return buffer.str();
  }();
  const Model ast = parse_and_check(source, "zeno_cycle.uni");
  const BuiltModel built = build_model(ast);  // exploration itself is fine
  EXPECT_GT(built.system.num_interactive_transitions(), 0u);
  try {
    (void)analyze_timed_reachability(built.system, built.mask("goal"), 1.0);
    FAIL() << "expected ZenoError";
  } catch (const ZenoError& e) {
    EXPECT_EQ(e.code(), ErrorCode::Zeno);
    EXPECT_EQ(e.exit_code(), 11);
    EXPECT_NE(std::string(e.what()).find("Zeno"), std::string::npos) << e.what();
  }
}

}  // namespace
