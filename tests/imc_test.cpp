#include <gtest/gtest.h>

#include "imc/imc.hpp"
#include "support/errors.hpp"

namespace unicon {
namespace {

/// A small IMC covering all four state kinds:
/// 0 hybrid (tau + rate), 1 interactive (visible), 2 Markov, 3 absorbing.
Imc all_kinds_imc() {
  ImcBuilder b;
  b.add_state("hybrid");
  b.add_state("interactive");
  b.add_state("markov");
  b.add_state("absorbing");
  b.set_initial(0);
  b.add_interactive(0, kTau, 1);
  b.add_markov(0, 1.0, 2);
  b.add_interactive(1, "a", 2);
  b.add_markov(2, 2.0, 3);
  return b.build();
}

TEST(Imc, StateKinds) {
  const Imc m = all_kinds_imc();
  EXPECT_EQ(m.kind(0), StateKind::Hybrid);
  EXPECT_EQ(m.kind(1), StateKind::Interactive);
  EXPECT_EQ(m.kind(2), StateKind::Markov);
  EXPECT_EQ(m.kind(3), StateKind::Absorbing);
}

TEST(Imc, StabilityIsTauBased) {
  const Imc m = all_kinds_imc();
  EXPECT_FALSE(m.stable(0));  // has tau
  EXPECT_TRUE(m.stable(1));   // visible action only: stable per Def. 4
  EXPECT_TRUE(m.stable(2));
  EXPECT_TRUE(m.stable(3));
}

TEST(Imc, ExitAndCumulativeRates) {
  ImcBuilder b;
  b.add_state();
  b.add_state();
  b.add_markov(0, 1.0, 1);
  b.add_markov(0, 2.0, 1);  // parallel Markov transitions coexist
  b.add_markov(0, 0.5, 0);
  const Imc m = b.build();
  EXPECT_EQ(m.num_markov_transitions(), 3u);
  EXPECT_DOUBLE_EQ(m.exit_rate(0), 3.5);
  EXPECT_DOUBLE_EQ(m.rate(0, 1), 3.0);
  EXPECT_DOUBLE_EQ(m.rate(0, 0), 0.5);
}

TEST(Imc, RejectsBadRatesAndIds) {
  ImcBuilder b;
  b.add_state();
  EXPECT_THROW(b.add_markov(0, 0.0, 0), ModelError);
  b.add_interactive(0, kTau, 7);
  EXPECT_THROW(b.build(), ModelError);
}

TEST(Imc, UniformityOpenView) {
  // Stable states 1 (rate 2) and 2 (rate 2): uniform.  Unstable state 0's
  // rate is unconstrained.
  ImcBuilder b;
  b.add_state();
  b.add_state();
  b.add_state();
  b.set_initial(0);
  b.add_interactive(0, kTau, 1);
  b.add_markov(0, 17.0, 1);  // irrelevant: 0 is unstable
  b.add_markov(1, 2.0, 2);
  b.add_markov(2, 2.0, 1);
  const Imc m = b.build();
  EXPECT_TRUE(m.is_uniform(UniformityView::Open));
  EXPECT_DOUBLE_EQ(*m.uniform_rate(UniformityView::Open), 2.0);
}

TEST(Imc, UniformityClosedViewIgnoresVisibleActionStates) {
  // State 1 has a visible action -> closed view exempts it, open view
  // does not.
  ImcBuilder b;
  b.add_state();
  b.add_state();
  b.add_state();
  b.set_initial(0);
  b.add_markov(0, 2.0, 1);
  b.add_interactive(1, "a", 2);
  b.add_markov(1, 99.0, 2);  // hybrid with visible action
  b.add_markov(2, 2.0, 0);
  const Imc m = b.build();
  EXPECT_FALSE(m.is_uniform(UniformityView::Open));
  EXPECT_TRUE(m.is_uniform(UniformityView::Closed));
}

TEST(Imc, UniformityIgnoresUnreachableStates) {
  ImcBuilder b;
  b.add_state();
  b.add_state();
  b.add_state("unreachable");
  b.set_initial(0);
  b.add_markov(0, 1.0, 1);
  b.add_markov(1, 1.0, 0);
  b.add_markov(2, 123.0, 0);  // unreachable, arbitrary rate
  const Imc m = b.build();
  EXPECT_TRUE(m.is_uniform(UniformityView::Open));
  EXPECT_DOUBLE_EQ(*m.uniform_rate(UniformityView::Open), 1.0);
}

TEST(Imc, LtsEmbeddingIsUniformAtZero) {
  LtsBuilder lb;
  lb.add_state();
  lb.add_state();
  lb.add_transition(0, "a", 1);
  const Imc m = imc_from_lts(lb.build());
  EXPECT_TRUE(m.is_uniform());
  EXPECT_DOUBLE_EQ(*m.uniform_rate(), 0.0);
  EXPECT_EQ(m.num_markov_transitions(), 0u);
}

TEST(Imc, CtmcEmbeddingHasNoInteractive) {
  CtmcBuilder cb(2);
  cb.ensure_states(2);
  cb.add_transition(0, 1.5, 1);
  const Imc m = imc_from_ctmc(cb.build());
  EXPECT_EQ(m.num_interactive_transitions(), 0u);
  EXPECT_DOUBLE_EQ(m.exit_rate(0), 1.5);
}

TEST(Imc, UniformizePadsSelfLoops) {
  ImcBuilder b;
  b.add_state();
  b.add_state();
  b.set_initial(0);
  b.add_markov(0, 1.0, 1);
  b.add_markov(1, 3.0, 0);
  const Imc u = b.build().uniformize(0.0, UniformityView::Closed);
  EXPECT_TRUE(u.is_uniform(UniformityView::Closed));
  EXPECT_DOUBLE_EQ(*u.uniform_rate(UniformityView::Closed), 3.0);
  EXPECT_DOUBLE_EQ(u.rate(0, 0), 2.0);
}

TEST(Imc, UniformizeBelowExitRateThrows) {
  ImcBuilder b;
  b.add_state();
  b.add_markov(0, 3.0, 0);
  EXPECT_THROW(b.build().uniformize(1.0, UniformityView::Closed), UniformityError);
}

TEST(Imc, HidePreservesMarkovTransitions) {
  const Imc m = all_kinds_imc();
  const Action a = m.actions().id("a");
  const Imc h = m.hide({a});
  EXPECT_EQ(h.num_markov_transitions(), m.num_markov_transitions());
  EXPECT_TRUE(h.has_tau(1));
}

TEST(Imc, HideAllLeavesOnlyTau) {
  const Imc h = all_kinds_imc().hide_all();
  for (const LtsTransition& t : h.interactive_transitions()) EXPECT_EQ(t.action, kTau);
}

TEST(Imc, RelabelChangesVisibleActions) {
  const Imc m = all_kinds_imc();
  const Action a = m.actions().id("a");
  ImcBuilder helper(m.action_table());
  const Action c = helper.intern("c");
  const Imc r = m.relabel({{a, c}});
  bool found = false;
  for (const LtsTransition& t : r.interactive_transitions()) {
    if (t.action == c) found = true;
  }
  EXPECT_TRUE(found);
}

TEST(Imc, ReachableDropsUnreachable) {
  ImcBuilder b;
  b.add_state("a");
  b.add_state("b");
  b.add_state("island");
  b.set_initial(0);
  b.add_interactive(0, kTau, 1);
  b.add_markov(2, 1.0, 0);
  const Imc m = b.build().reachable();
  EXPECT_EQ(m.num_states(), 2u);
}

TEST(Imc, VisibleAlphabet) {
  const Imc m = all_kinds_imc();
  const auto alphabet = m.visible_alphabet();
  ASSERT_EQ(alphabet.size(), 1u);
  EXPECT_EQ(m.actions().name(alphabet[0]), "a");
}

TEST(Imc, RenameStates) {
  const Imc m = all_kinds_imc().rename_states({"w", "x", "y", "z"});
  EXPECT_EQ(m.state_name(2), "y");
  EXPECT_THROW(all_kinds_imc().rename_states({"too", "few"}), ModelError);
}

TEST(Imc, MemoryBytesTracksTransitions) {
  const Imc m = all_kinds_imc();
  EXPECT_GT(m.memory_bytes(), 0u);
}

TEST(Imc, DuplicateInteractiveTransitionsCollapse) {
  ImcBuilder b;
  b.add_state();
  b.add_state();
  b.add_interactive(0, "a", 1);
  b.add_interactive(0, "a", 1);
  EXPECT_EQ(b.build().num_interactive_transitions(), 1u);
}

}  // namespace
}  // namespace unicon
