#include <gtest/gtest.h>

#include <cstring>
#include <regex>
#include <stdexcept>
#include <string>
#include <vector>

#include "core/transform.hpp"
#include "ctmdp/reachability.hpp"
#include "support/parallel.hpp"
#include "support/rng.hpp"
#include "support/telemetry.hpp"
#include "test_util.hpp"

namespace unicon {
namespace {

// ----------------------------------------------------------- instruments

TEST(TelemetryCounter, ConcurrentIncrementsFromWorkerPool) {
  Telemetry telemetry;
  Counter& shared = telemetry.counter("shared");
  // Per-worker handles resolved up front, as the solvers do.
  WorkerPool pool = make_worker_pool(0, 1u << 16);
  std::vector<Counter*> per_worker;
  for (unsigned w = 0; w < pool.size(); ++w) {
    per_worker.push_back(&telemetry.counter("worker" + std::to_string(w)));
  }
  constexpr std::size_t kItems = 1u << 16;
  pool.run(kItems, [&](unsigned worker, std::size_t begin, std::size_t end) {
    for (std::size_t i = begin; i < end; ++i) shared.add();
    per_worker[worker]->add(end - begin);
  });
  EXPECT_EQ(shared.value(), kItems);
  std::uint64_t total = 0;
  for (const Counter* c : per_worker) total += c->value();
  EXPECT_EQ(total, kItems);
}

TEST(TelemetryCounter, HandleIsAddressStable) {
  Telemetry telemetry;
  Counter& a = telemetry.counter("a");
  // Creating many more instruments must not move the first.
  for (int i = 0; i < 100; ++i) telemetry.counter("c" + std::to_string(i));
  EXPECT_EQ(&a, &telemetry.counter("a"));
}

TEST(TelemetryGauge, SetAndMonotoneMax) {
  Telemetry telemetry;
  Gauge& g = telemetry.gauge("g");
  g.set(3.0);
  g.set_max(1.0);  // lower: no effect
  EXPECT_DOUBLE_EQ(g.value(), 3.0);
  g.set_max(7.5);
  EXPECT_DOUBLE_EQ(g.value(), 7.5);
  g.set(2.0);  // plain set may lower
  EXPECT_DOUBLE_EQ(g.value(), 2.0);
}

TEST(TelemetryHistogram, Log2Buckets) {
  Telemetry telemetry;
  Histogram& h = telemetry.histogram("h");
  EXPECT_EQ(h.min(), ~0ull);  // empty sentinel
  h.observe(0);
  h.observe(1);
  h.observe(2);
  h.observe(3);
  h.observe(1000);
  EXPECT_EQ(h.count(), 5u);
  EXPECT_EQ(h.sum(), 1006u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 1000u);
  EXPECT_EQ(h.bucket(0), 1u);   // sample 0
  EXPECT_EQ(h.bucket(1), 1u);   // sample 1
  EXPECT_EQ(h.bucket(2), 2u);   // samples 2, 3
  EXPECT_EQ(h.bucket(10), 1u);  // 1000 in [512, 1024)
}

// ----------------------------------------------------------------- spans

/// Collapses the run-dependent seconds so span JSON can be golden-tested.
std::string canonical_seconds(const std::string& json) {
  static const std::regex seconds("\"seconds\": [0-9.]+");
  return std::regex_replace(json, seconds, "\"seconds\": T");
}

TEST(TelemetrySpan, NestingFollowsOpenOrder) {
  Telemetry telemetry;
  {
    Telemetry::Span outer = telemetry.span("outer");
    {
      Telemetry::Span inner = telemetry.span("inner");
      inner.metric("k", 42);
    }
    Telemetry::Span sibling = telemetry.span("sibling");
  }
  Telemetry::Span root2 = telemetry.span("root2");
  root2.close();

  const std::string expected =
      "{\n"
      "  \"schema\": \"unicon-telemetry-v1\",\n"
      "  \"spans\": [\n"
      "    {\"name\": \"outer\", \"seconds\": T, \"open\": false, \"metrics\": {}, "
      "\"children\": [\n"
      "      {\"name\": \"inner\", \"seconds\": T, \"open\": false, \"metrics\": {\"k\": 42}, "
      "\"children\": []},\n"
      "      {\"name\": \"sibling\", \"seconds\": T, \"open\": false, \"metrics\": {}, "
      "\"children\": []}\n"
      "    ]},\n"
      "    {\"name\": \"root2\", \"seconds\": T, \"open\": false, \"metrics\": {}, "
      "\"children\": []}\n"
      "  ],\n"
      "  \"counters\": {},\n"
      "  \"gauges\": {},\n"
      "  \"histograms\": {}\n"
      "}\n";
  EXPECT_EQ(canonical_seconds(telemetry.to_json()), expected);
}

TEST(TelemetrySpan, StillOpenSpansExportPartialTree) {
  // The budget-trip story: flushing with spans still open must emit them
  // with "open": true and their elapsed-so-far time.
  Telemetry telemetry;
  Telemetry::Span stage = telemetry.span("stage");
  const std::string json = telemetry.to_json();
  EXPECT_NE(json.find("\"name\": \"stage\", \"seconds\": "), std::string::npos);
  EXPECT_NE(json.find("\"open\": true"), std::string::npos);
  stage.close();
  EXPECT_EQ(telemetry.to_json().find("\"open\": true"), std::string::npos);
}

TEST(TelemetrySpan, CloseIsIdempotentAndMoveTransfersOwnership) {
  Telemetry telemetry;
  Telemetry::Span a = telemetry.span("a");
  Telemetry::Span b = std::move(a);
  b.close();
  b.close();  // second close: no-op
  a.close();  // moved-from: no-op
  const std::string json = telemetry.to_json();
  // Exactly one "a" span, closed.
  EXPECT_EQ(json.find("\"name\": \"a\""), json.rfind("\"name\": \"a\""));
  EXPECT_EQ(json.find("\"open\": true"), std::string::npos);
}

TEST(TelemetrySpan, ExceptionUnwindingClosesSpans) {
  Telemetry telemetry;
  try {
    Telemetry::Span stage = telemetry.span("doomed");
    throw std::runtime_error("budget tripped");
  } catch (const std::runtime_error&) {
  }
  Telemetry::Span next = telemetry.span("next");  // sibling, not a child
  next.close();
  const std::string json = canonical_seconds(telemetry.to_json());
  EXPECT_NE(
      json.find("{\"name\": \"doomed\", \"seconds\": T, \"open\": false, \"metrics\": {}, "
                "\"children\": []},"),
      std::string::npos);
  EXPECT_EQ(json.find("\"open\": true"), std::string::npos);
}

// ------------------------------------------------------------ JSON schema

TEST(TelemetryJson, GoldenSchemaAcrossAllSections) {
  Telemetry telemetry;
  {
    Telemetry::Span stage = telemetry.span("stage");
    stage.metric("states", std::size_t{7});
    stage.metric("rate", 1.5);
  }
  telemetry.counter("events").add(3);
  telemetry.gauge("level").set(0.25);
  telemetry.histogram("sizes").observe(5);

  const std::string expected =
      "{\n"
      "  \"schema\": \"unicon-telemetry-v1\",\n"
      "  \"spans\": [\n"
      "    {\"name\": \"stage\", \"seconds\": T, \"open\": false, "
      "\"metrics\": {\"states\": 7, \"rate\": 1.5}, \"children\": []}\n"
      "  ],\n"
      "  \"counters\": {\n"
      "    \"events\": 3\n"
      "  },\n"
      "  \"gauges\": {\n"
      "    \"level\": 0.25\n"
      "  },\n"
      "  \"histograms\": {\n"
      "    \"sizes\": {\"count\": 1, \"sum\": 5, \"min\": 5, \"max\": 5, "
      "\"buckets\": [{\"bucket\": 3, \"count\": 1}]}\n"
      "  }\n"
      "}\n";
  EXPECT_EQ(canonical_seconds(telemetry.to_json()), expected);
}

TEST(TelemetryJson, InstrumentsSortedByName) {
  Telemetry telemetry;
  telemetry.counter("zeta").add(1);
  telemetry.counter("alpha").add(2);
  const std::string json = telemetry.to_json();
  EXPECT_LT(json.find("\"alpha\""), json.find("\"zeta\""));
}

TEST(TelemetryJson, EscapesMetricAndSpanNames) {
  Telemetry telemetry;
  telemetry.counter("quote\"backslash\\").add(1);
  const std::string json = telemetry.to_json();
  EXPECT_NE(json.find("\"quote\\\"backslash\\\\\": 1"), std::string::npos);
  EXPECT_EQ(telemetry::json_escape("a\nb\tc\x01"), "a\\nb\\tc\\u0001");
}

TEST(TelemetryBench, RecordRendersIntegersAsIntegers) {
  telemetry::BenchRecord r;
  r.bench = "suite/case";
  r.add("states", std::size_t{12}).add("seconds", 0.125).add("k", std::uint64_t{9});
  ASSERT_EQ(r.metrics.size(), 3u);
  EXPECT_EQ(r.metrics[0].second, "12");
  EXPECT_EQ(r.metrics[1].second, "0.125000");
  EXPECT_EQ(r.metrics[2].second, "9");
}

// ----------------------------------------------------------- determinism

/// Algorithm 1 must be bit-identical with telemetry on/off and across
/// thread counts — the registry only observes.
TEST(TelemetryDeterminism, SolverBitIdenticalOnOffAndAcrossThreads) {
  Rng rng(7);
  testutil::RandomImcConfig config;
  config.num_states = 40;
  const Imc m = testutil::random_uniform_imc(rng, config);
  const BitVector imc_goal = testutil::random_goal(rng, m.num_states());
  const auto transformed = transform_to_ctmdp(m, &imc_goal);

  TimedReachabilityOptions base;
  base.threads = 1;
  // The rows-per-sweep accounting below is the serial engine's (states *
  // sweeps; the dense SIMD backend sweeps only non-goal rows), so the
  // backend is fixed rather than inherited from UNICON_BACKEND.
  base.backend = Backend::Serial;
  const auto reference = timed_reachability(transformed.ctmdp, transformed.goal, 2.5, base);

  for (unsigned threads : {1u, 0u}) {
    Telemetry telemetry;
    TimedReachabilityOptions options;
    options.threads = threads;
    options.backend = Backend::Serial;
    options.telemetry = &telemetry;
    const auto observed = timed_reachability(transformed.ctmdp, transformed.goal, 2.5, options);
    ASSERT_EQ(observed.values.size(), reference.values.size());
    EXPECT_EQ(std::memcmp(observed.values.data(), reference.values.data(),
                          reference.values.size() * sizeof(double)),
              0)
        << "threads=" << threads;
    // The observation itself must be there: a closed span with the solver
    // metrics and one row counter per worker summing to states * sweeps.
    const std::string json = telemetry.to_json();
    EXPECT_NE(json.find("\"name\": \"reachability\""), std::string::npos);
    EXPECT_NE(json.find("\"iterations_executed\": "), std::string::npos);
    std::uint64_t rows = 0;
    const unsigned workers = resolve_threads(threads);
    for (unsigned w = 0; w < workers; ++w) {
      rows += telemetry.counter("reachability.rows.worker" + std::to_string(w)).value();
    }
    EXPECT_EQ(rows, static_cast<std::uint64_t>(transformed.ctmdp.num_states()) *
                        observed.iterations_executed);
  }
}

}  // namespace
}  // namespace unicon
