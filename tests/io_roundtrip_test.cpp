// Property tests for the io layer: serialization must be canonical, i.e.
// write -> read -> write reproduces the first serialization byte for byte.
// The builders stable-sort and merge transitions, so any model that went
// through a builder once serializes identically after a round trip.
#include <gtest/gtest.h>

#include <sstream>
#include <string>

#include "io/dot.hpp"
#include "io/tra.hpp"
#include "support/rng.hpp"
#include "testing/generate.hpp"

namespace unicon {
namespace {

using testing::RandomCtmcConfig;
using testing::RandomCtmdpConfig;
using testing::RandomImcConfig;
using testing::random_ctmc;
using testing::random_goal;
using testing::random_uniform_ctmdp;
using testing::random_uniform_imc;

template <typename Model, typename Write, typename Read>
void expect_roundtrip(const Model& model, Write write, Read read, const std::string& what) {
  // One initial round trip normalizes action interning to file order; after
  // that, write -> read -> write must be byte-identical.
  std::ostringstream raw;
  write(raw, model);
  std::istringstream raw_in(raw.str());
  const Model normalized = read(raw_in);

  std::ostringstream first;
  write(first, normalized);
  std::istringstream in(first.str());
  const Model reloaded = read(in);
  std::ostringstream second;
  write(second, reloaded);
  EXPECT_EQ(first.str(), second.str()) << what << " round trip is not byte-identical";
}

TEST(IoRoundtrip, RandomCtmcsAreByteStable) {
  Rng rng(2024);
  for (int i = 0; i < 25; ++i) {
    RandomCtmcConfig config;
    config.num_states = 2 + rng.next_below(20);
    const Ctmc chain = random_ctmc(rng, config);
    expect_roundtrip(chain, io::write_ctmc, io::read_ctmc, "ctmc #" + std::to_string(i));
  }
}

TEST(IoRoundtrip, RandomCtmdpsAreByteStable) {
  Rng rng(2025);
  for (int i = 0; i < 25; ++i) {
    RandomCtmdpConfig config;
    config.num_states = 2 + rng.next_below(15);
    const Ctmdp model = random_uniform_ctmdp(rng, config);
    expect_roundtrip(model, io::write_ctmdp, io::read_ctmdp, "ctmdp #" + std::to_string(i));
  }
}

TEST(IoRoundtrip, RandomImcsAreByteStable) {
  Rng rng(2026);
  for (int i = 0; i < 25; ++i) {
    RandomImcConfig config;
    config.num_states = 2 + rng.next_below(15);
    const Imc m = random_uniform_imc(rng, config);
    expect_roundtrip(m, io::write_imc, io::read_imc, "imc #" + std::to_string(i));
  }
}

TEST(IoRoundtrip, GoalMasksAreByteStable) {
  Rng rng(2027);
  for (int i = 0; i < 25; ++i) {
    const std::size_t n = 1 + rng.next_below(40);
    const BitVector goal = random_goal(rng, n, 0.3);
    std::ostringstream first;
    io::write_goal(first, goal);
    std::istringstream in(first.str());
    const BitVector reloaded = io::read_goal(in, n);
    EXPECT_EQ(goal, reloaded);
    std::ostringstream second;
    io::write_goal(second, reloaded);
    EXPECT_EQ(first.str(), second.str());
  }
}

TEST(IoRoundtrip, ExtremeRatesSurviveExactly) {
  // setprecision(17) must reproduce doubles exactly, including values that
  // do not have short decimal representations.
  CtmcBuilder b(3);
  b.set_initial(0);
  b.add_transition(0, 1.0 / 3.0, 1);
  b.add_transition(0, 1e-17, 2);
  b.add_transition(1, 12345.678901234567, 2);
  const Ctmc chain = b.build();
  expect_roundtrip(chain, io::write_ctmc, io::read_ctmc, "extreme rates");
  std::ostringstream out;
  io::write_ctmc(out, chain);
  std::istringstream in(out.str());
  const Ctmc reloaded = io::read_ctmc(in);
  EXPECT_EQ(reloaded.out(0)[0].value, 1.0 / 3.0);
  EXPECT_EQ(reloaded.out(0)[1].value, 1e-17);
  EXPECT_EQ(reloaded.out(1)[0].value, 12345.678901234567);
}

TEST(IoRoundtrip, SingleStateModels) {
  CtmcBuilder cb(1);
  cb.ensure_states(1);
  cb.set_initial(0);
  expect_roundtrip(cb.build(), io::write_ctmc, io::read_ctmc, "single-state ctmc");

  CtmdpBuilder db;
  db.ensure_states(1);
  db.set_initial(0);
  expect_roundtrip(db.build(), io::write_ctmdp, io::read_ctmdp, "single-state ctmdp");

  ImcBuilder ib;
  ib.add_state("only");
  ib.set_initial(0);
  expect_roundtrip(ib.build(), io::write_imc, io::read_imc, "single-state imc");
}

TEST(IoRoundtrip, EmptyTransitionModels) {
  // Several states, no transitions at all.
  CtmcBuilder cb(4);
  cb.ensure_states(4);
  cb.set_initial(2);
  const Ctmc chain = cb.build();
  expect_roundtrip(chain, io::write_ctmc, io::read_ctmc, "transitionless ctmc");

  CtmdpBuilder db;
  db.ensure_states(4);
  db.set_initial(1);
  const Ctmdp model = db.build();
  EXPECT_EQ(model.num_transitions(), 0u);
  expect_roundtrip(model, io::write_ctmdp, io::read_ctmdp, "transitionless ctmdp");

  std::ostringstream out;
  io::write_goal(out, std::vector<bool>(4, false));
  std::istringstream in(out.str());
  EXPECT_EQ(io::read_goal(in, 4), std::vector<bool>(4, false));
}

TEST(IoRoundtrip, DotOutputSmoke) {
  Rng rng(2028);
  const Imc m = random_uniform_imc(rng);
  std::ostringstream imc_dot;
  io::write_dot(imc_dot, m);
  EXPECT_NE(imc_dot.str().find("digraph"), std::string::npos);
  EXPECT_NE(imc_dot.str().find("->"), std::string::npos);

  const Ctmdp model = random_uniform_ctmdp(rng);
  std::ostringstream ctmdp_dot;
  io::write_dot(ctmdp_dot, model);
  EXPECT_NE(ctmdp_dot.str().find("digraph"), std::string::npos);
  // Deterministic: same model, same bytes.
  std::ostringstream again;
  io::write_dot(again, model);
  EXPECT_EQ(ctmdp_dot.str(), again.str());
}

}  // namespace
}  // namespace unicon
