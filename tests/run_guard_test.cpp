#include <gtest/gtest.h>

#include <chrono>
#include <cstdint>
#include <new>
#include <thread>
#include <vector>

#include "support/errors.hpp"
#include "support/run_guard.hpp"

namespace unicon {
namespace {

// ------------------------------------------------------------ basic states

TEST(RunGuard, FreshGuardIsIdle) {
  RunGuard guard;
  EXPECT_FALSE(guard.stopped());
  EXPECT_EQ(guard.status(), RunStatus::Converged);
  EXPECT_EQ(guard.poll(), RunStatus::Converged);
  EXPECT_FALSE(guard.should_abort_sweep());
  guard.check("stage");  // must not throw
}

TEST(RunGuard, StatusNamesAndCodesAreStable) {
  EXPECT_STREQ(run_status_name(RunStatus::Converged), "converged");
  EXPECT_STREQ(run_status_name(RunStatus::DeadlineExceeded), "deadline-exceeded");
  EXPECT_STREQ(run_status_name(RunStatus::MemoryBudgetExceeded), "mem-budget-exceeded");
  EXPECT_STREQ(run_status_name(RunStatus::Cancelled), "cancelled");
  EXPECT_EQ(run_status_code(RunStatus::Converged), ErrorCode::Ok);
  EXPECT_EQ(run_status_code(RunStatus::DeadlineExceeded), ErrorCode::Deadline);
  EXPECT_EQ(run_status_code(RunStatus::MemoryBudgetExceeded), ErrorCode::MemoryBudget);
  EXPECT_EQ(run_status_code(RunStatus::Cancelled), ErrorCode::Cancelled);
}

// ----------------------------------------------------------- cancellation

TEST(RunGuard, RequestCancelIsStickyAndVisibleEverywhere) {
  RunGuard guard;
  guard.request_cancel();
  EXPECT_EQ(guard.poll(), RunStatus::Cancelled);
  EXPECT_TRUE(guard.stopped());
  EXPECT_TRUE(guard.should_abort_sweep());
  EXPECT_EQ(guard.status(), RunStatus::Cancelled);
  // Sticky: later polls keep reporting the same terminal status.
  EXPECT_EQ(guard.poll(), RunStatus::Cancelled);
}

TEST(RunGuard, CancelAfterPollsFiresOnTheExactPoll) {
  RunGuard guard;
  guard.cancel_after_polls(3);
  EXPECT_EQ(guard.poll(), RunStatus::Converged);
  EXPECT_EQ(guard.poll(), RunStatus::Converged);
  EXPECT_FALSE(guard.stopped());
  EXPECT_EQ(guard.poll(), RunStatus::Cancelled);
  EXPECT_TRUE(guard.stopped());
  EXPECT_EQ(guard.polls(), 3u);
}

TEST(RunGuard, WorkerSweepChecksDoNotAdvanceThePollCounter) {
  RunGuard guard;
  guard.cancel_after_polls(2);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(guard.should_abort_sweep());
  EXPECT_EQ(guard.poll(), RunStatus::Converged);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(guard.should_abort_sweep());
  EXPECT_EQ(guard.poll(), RunStatus::Cancelled);
}

TEST(RunGuard, CheckThrowsTypedBudgetErrorNamingTheStage) {
  RunGuard guard;
  guard.request_cancel();
  try {
    guard.check("bisimulation");
    FAIL() << "expected BudgetError";
  } catch (const BudgetError& e) {
    EXPECT_EQ(e.code(), ErrorCode::Cancelled);
    EXPECT_NE(std::string(e.what()).find("bisimulation"), std::string::npos) << e.what();
  }
}

// ---------------------------------------------------------------- deadline

TEST(RunGuard, DeadlineInThePastFiresOnFirstPoll) {
  RunGuard guard;
  guard.set_deadline(1e-9);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(guard.poll(), RunStatus::DeadlineExceeded);
  EXPECT_TRUE(guard.should_abort_sweep());
}

TEST(RunGuard, GenerousDeadlineDoesNotFire) {
  RunGuard guard;
  guard.set_deadline(3600.0);
  EXPECT_EQ(guard.poll(), RunStatus::Converged);
  EXPECT_FALSE(guard.should_abort_sweep());
}

TEST(RunGuard, FirstViolationWins) {
  // Cancel before an already-expired deadline is observed: the first
  // latched status must survive subsequent violations.
  RunGuard guard;
  guard.request_cancel();
  guard.set_deadline(1e-9);
  std::this_thread::sleep_for(std::chrono::milliseconds(2));
  EXPECT_EQ(guard.poll(), RunStatus::Cancelled);
  EXPECT_EQ(guard.poll(), RunStatus::Cancelled);
}

// ------------------------------------------------------------- checkpoints

TEST(RunGuard, CheckpointRespectsStrideAndExposesWritableValues) {
  RunGuard guard;
  std::vector<std::uint64_t> steps;
  guard.set_checkpoint(
      [&](const RunCheckpoint& cp) {
        steps.push_back(cp.step);
        EXPECT_STREQ(cp.stage, "stage");
        EXPECT_EQ(cp.planned, 10u);
        if (!cp.values.empty()) cp.values[0] = 42.0;  // writable span
      },
      /*stride=*/3);
  std::vector<double> iterate{0.0, 1.0};
  for (std::uint64_t step = 1; step <= 10; ++step) {
    EXPECT_EQ(guard.wants_checkpoint(step), step % 3 == 0);
    if (guard.wants_checkpoint(step)) {
      guard.checkpoint("stage", step, 10, 0.5, std::span<double>(iterate));
    }
  }
  EXPECT_EQ(steps, (std::vector<std::uint64_t>{3, 6, 9}));
  EXPECT_DOUBLE_EQ(iterate[0], 42.0);
}

TEST(RunGuard, NoCallbackMeansNoCheckpointWanted) {
  RunGuard guard;
  EXPECT_FALSE(guard.wants_checkpoint(1));
  // checkpoint() with no callback installed is a no-op, not an error.
  std::vector<double> iterate{0.0};
  guard.checkpoint("stage", 1, 1, 0.0, std::span<double>(iterate));
}

TEST(RunGuard, CancelBudgetAloneNeverWantsCheckpoints) {
  // The solvers' convergence locking drops its locked set exactly on the
  // steps where wants_checkpoint() is true (a published iterate must be a
  // full trustworthy vector, and external writes would invalidate the
  // frozen twin buffer).  A guard used purely for cancellation or deadline
  // budgets must therefore never want a checkpoint — otherwise locking
  // would be silently disabled for every guarded run.
  RunGuard guard;
  guard.cancel_after_polls(100);
  guard.set_deadline(3600.0);
  for (std::uint64_t step = 1; step <= 16; ++step) {
    EXPECT_FALSE(guard.wants_checkpoint(step)) << step;
  }
  // Once a callback exists, stride <= 1 means every step is due.
  guard.set_checkpoint([](const RunCheckpoint&) {}, /*stride=*/0);
  EXPECT_TRUE(guard.wants_checkpoint(1));
  EXPECT_TRUE(guard.wants_checkpoint(7));
}

// -------------------------------------------------------- memory accounting

TEST(RunGuardMemory, ScopeChargesNetLiveBytes) {
  RunGuard guard;
  {
    MemoryAccountingScope scope(guard);
    const std::int64_t before = guard.memory_in_use();
    auto* block = new std::vector<double>(1 << 16);
    EXPECT_GE(guard.memory_in_use() - before, static_cast<std::int64_t>(sizeof(double) << 16));
    delete block;
    // Net live bytes return to (roughly) the pre-allocation level.
    EXPECT_LT(guard.memory_in_use() - before, 1 << 12);
    EXPECT_GT(accounted_allocations(), 0u);
  }
  EXPECT_EQ(accounted_allocations(), 0u);  // idle once the scope closes
}

TEST(RunGuardMemory, BudgetViolationTripsTheGuard) {
  RunGuard guard;
  guard.set_memory_budget(1 << 10);
  MemoryAccountingScope scope(guard);
  std::vector<std::vector<double>*> blocks;
  RunStatus status = RunStatus::Converged;
  for (int i = 0; i < 64 && status == RunStatus::Converged; ++i) {
    blocks.push_back(new std::vector<double>(1 << 12));
    status = guard.poll();
  }
  for (auto* b : blocks) delete b;
  EXPECT_EQ(status, RunStatus::MemoryBudgetExceeded);
  EXPECT_TRUE(guard.stopped());
}

TEST(RunGuardMemory, NestingScopesThrows) {
  RunGuard a;
  RunGuard b;
  MemoryAccountingScope outer(a);
  EXPECT_THROW(MemoryAccountingScope inner(b), ModelError);
}

TEST(RunGuardMemory, ArmedAllocationFailureThrowsBadAlloc) {
  RunGuard guard;
  MemoryAccountingScope scope(guard);
  arm_allocation_failure(1);  // counting restarts at arming
  EXPECT_THROW(static_cast<void>(new std::vector<double>(16)), std::bad_alloc);
  // Only the exact nth allocation fails; later ones succeed.
  auto* block = new std::vector<double>(16);
  delete block;
}

}  // namespace
}  // namespace unicon
