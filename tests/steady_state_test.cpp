#include <gtest/gtest.h>

#include <cmath>

#include "ctmc/steady_state.hpp"
#include "ctmc/transient.hpp"
#include "support/errors.hpp"

namespace unicon {
namespace {

Ctmc birth_death(double lambda, double mu) {
  CtmcBuilder b(2);
  b.ensure_states(2);
  b.set_initial(0);
  b.add_transition(0, lambda, 1);
  b.add_transition(1, mu, 0);
  return b.build();
}

TEST(SteadyState, TwoStateClosedForm) {
  // pi = (mu, lambda) / (lambda + mu).
  const double lambda = 1.5, mu = 0.5;
  const auto r = steady_state(birth_death(lambda, mu));
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.distribution[0], mu / (lambda + mu), 1e-9);
  EXPECT_NEAR(r.distribution[1], lambda / (lambda + mu), 1e-9);
}

TEST(SteadyState, AbsorbingChainConcentratesOnAbsorbingState) {
  CtmcBuilder b(2);
  b.ensure_states(2);
  b.set_initial(0);
  b.add_transition(0, 2.0, 1);
  const auto r = steady_state(b.build());
  ASSERT_TRUE(r.converged);
  EXPECT_NEAR(r.distribution[1], 1.0, 1e-9);
}

TEST(SteadyState, SingleStateIsTrivial) {
  CtmcBuilder b(1);
  b.ensure_states(1);
  const auto r = steady_state(b.build());
  ASSERT_TRUE(r.converged);
  EXPECT_DOUBLE_EQ(r.distribution[0], 1.0);
}

TEST(SteadyState, AgreesWithLongHorizonTransient) {
  // Three-state cycle with distinct rates.
  CtmcBuilder b(3);
  b.ensure_states(3);
  b.set_initial(0);
  b.add_transition(0, 1.0, 1);
  b.add_transition(1, 2.0, 2);
  b.add_transition(2, 4.0, 0);
  const Ctmc c = b.build();

  const auto pi = steady_state(c);
  ASSERT_TRUE(pi.converged);
  TransientOptions options;
  options.epsilon = 1e-10;
  options.early_termination = true;
  const auto late = transient_distribution(c, 500.0, options);
  for (StateId s = 0; s < 3; ++s) {
    EXPECT_NEAR(pi.distribution[s], late.probabilities[s], 1e-6) << s;
  }
  // Balance check: pi_i * rate_i equal around the cycle.
  EXPECT_NEAR(pi.distribution[0] * 1.0, pi.distribution[1] * 2.0, 1e-9);
  EXPECT_NEAR(pi.distribution[1] * 2.0, pi.distribution[2] * 4.0, 1e-9);
}

TEST(SteadyState, DistributionIsNormalized) {
  CtmcBuilder b(4);
  b.ensure_states(4);
  b.set_initial(0);
  b.add_transition(0, 1.0, 1);
  b.add_transition(1, 1.0, 2);
  b.add_transition(2, 1.0, 3);
  b.add_transition(3, 1.0, 0);
  const auto r = steady_state(b.build());
  double total = 0.0;
  for (double p : r.distribution) total += p;
  EXPECT_NEAR(total, 1.0, 1e-9);
  for (double p : r.distribution) EXPECT_NEAR(p, 0.25, 1e-8);
}

TEST(SteadyState, ExplicitRateBelowMaxThrows) {
  SteadyStateOptions options;
  options.uniform_rate = 0.1;
  EXPECT_THROW(steady_state(birth_death(1.0, 2.0), options), UniformityError);
}

}  // namespace
}  // namespace unicon
