#include <gtest/gtest.h>

#include <cmath>

#include "ctmc/phase_type.hpp"
#include "support/errors.hpp"

namespace unicon {
namespace {

TEST(PhaseType, ExponentialBasics) {
  const PhaseType ph = PhaseType::exponential(2.0);
  EXPECT_EQ(ph.num_phases(), 1u);
  EXPECT_DOUBLE_EQ(ph.absorption_rate(0), 2.0);
  EXPECT_DOUBLE_EQ(ph.exit_rate(0), 2.0);
  EXPECT_DOUBLE_EQ(ph.max_exit_rate(), 2.0);
  EXPECT_NEAR(ph.mean(), 0.5, 1e-12);
}

TEST(PhaseType, ExponentialCdfMatchesClosedForm) {
  const PhaseType ph = PhaseType::exponential(0.5);
  for (double t : {0.1, 1.0, 4.0, 10.0}) {
    EXPECT_NEAR(ph.cdf(t), 1.0 - std::exp(-0.5 * t), 1e-7) << t;
  }
}

TEST(PhaseType, InvalidRatesThrow) {
  EXPECT_THROW(PhaseType::exponential(0.0), ModelError);
  EXPECT_THROW(PhaseType::exponential(-1.0), ModelError);
  EXPECT_THROW(PhaseType::erlang(0, 1.0), ModelError);
  EXPECT_THROW(PhaseType::hypoexponential({}), ModelError);
  EXPECT_THROW(PhaseType::hypoexponential({1.0, -2.0}), ModelError);
}

class ErlangSweep : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(ErlangSweep, MeanIsKOverLambda) {
  const auto [k, lambda] = GetParam();
  const PhaseType ph = PhaseType::erlang(k, lambda);
  EXPECT_EQ(ph.num_phases(), static_cast<std::size_t>(k));
  EXPECT_NEAR(ph.mean(), k / lambda, 1e-10);
}

TEST_P(ErlangSweep, CdfMatchesClosedForm) {
  const auto [k, lambda] = GetParam();
  const PhaseType ph = PhaseType::erlang(k, lambda);
  for (double t : {0.3, 1.0, 2.5}) {
    double tail = 0.0;
    double term = 1.0;
    for (int i = 0; i < k; ++i) {
      tail += term;
      term *= lambda * t / (i + 1);
    }
    const double expected = 1.0 - std::exp(-lambda * t) * tail;
    EXPECT_NEAR(ph.cdf(t), expected, 1e-7) << "k=" << k << " t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Shapes, ErlangSweep,
                         ::testing::Combine(::testing::Values(1, 2, 3, 5, 10),
                                            ::testing::Values(0.5, 2.0, 8.0)));

TEST(PhaseType, HypoexponentialMeanIsSumOfStageMeans) {
  const PhaseType ph = PhaseType::hypoexponential({1.0, 2.0, 4.0});
  EXPECT_NEAR(ph.mean(), 1.0 + 0.5 + 0.25, 1e-10);
}

TEST(PhaseType, CoxianValidation) {
  EXPECT_THROW(PhaseType::coxian({1.0}, {0.5}), ModelError);          // last exit != 1
  EXPECT_THROW(PhaseType::coxian({1.0, 2.0}, {1.5, 1.0}), ModelError);  // prob > 1
  EXPECT_THROW(PhaseType::coxian({1.0}, {}), ModelError);
}

TEST(PhaseType, CoxianWithImmediateExitIsExponential) {
  const PhaseType ph = PhaseType::coxian({3.0}, {1.0});
  for (double t : {0.5, 2.0}) {
    EXPECT_NEAR(ph.cdf(t), 1.0 - std::exp(-3.0 * t), 1e-7);
  }
}

TEST(PhaseType, CoxianMeanMatchesManualComputation) {
  // Phase 1 rate 2, exit prob 0.5; phase 2 rate 1, exit prob 1.
  // mean = 1/2 + 0.5 * 1 = 1.0
  const PhaseType ph = PhaseType::coxian({2.0, 1.0}, {0.5, 1.0});
  EXPECT_NEAR(ph.mean(), 1.0, 1e-10);
}

TEST(PhaseType, CdfIsMonotoneAndBounded) {
  const PhaseType ph = PhaseType::coxian({4.0, 2.0, 1.0}, {0.3, 0.2, 1.0});
  double prev = -1.0;
  for (double t : {0.0, 0.1, 0.5, 1.0, 3.0, 10.0, 100.0}) {
    const double p = ph.cdf(t);
    EXPECT_GE(p, prev);
    EXPECT_GE(p, 0.0);
    EXPECT_LE(p, 1.0);
    prev = p;
  }
  EXPECT_NEAR(ph.cdf(1000.0), 1.0, 1e-6);
  EXPECT_DOUBLE_EQ(ph.cdf(-1.0), 0.0);
}

TEST(PhaseType, ErlangHasLowerVarianceThanExponential) {
  // Sanity via CDF shape: at the common mean, Erlang(4) is more
  // concentrated, so its CDF below the mean grows more slowly early on.
  const PhaseType exp1 = PhaseType::exponential(1.0);    // mean 1
  const PhaseType erl4 = PhaseType::erlang(4, 4.0);      // mean 1
  EXPECT_LT(erl4.cdf(0.2), exp1.cdf(0.2));
  EXPECT_GT(erl4.cdf(2.5), exp1.cdf(2.5));
}

TEST(PhaseType, ToCtmcShape) {
  const PhaseType ph = PhaseType::erlang(3, 2.0);
  const Ctmc c = ph.to_ctmc();
  EXPECT_EQ(c.num_states(), 4u);
  EXPECT_EQ(c.initial(), 0u);
  EXPECT_DOUBLE_EQ(c.exit_rate(3), 0.0);  // absorbing
  EXPECT_DOUBLE_EQ(c.exit_rate(0), 2.0);
}

TEST(PhaseType, DeterministicApproxHasRequestedMean) {
  const PhaseType ph = PhaseType::deterministic_approx(2.5, 32);
  EXPECT_NEAR(ph.mean(), 2.5, 1e-9);
  EXPECT_EQ(ph.num_phases(), 32u);
  EXPECT_THROW(PhaseType::deterministic_approx(0.0), ModelError);
  EXPECT_THROW(PhaseType::deterministic_approx(1.0, 0), ModelError);
}

TEST(PhaseType, DeterministicApproxSharpensWithPhases) {
  // More phases: CDF closer to the unit step at the mean.
  const PhaseType coarse = PhaseType::deterministic_approx(1.0, 2);
  const PhaseType sharp = PhaseType::deterministic_approx(1.0, 64);
  EXPECT_LT(sharp.cdf(0.5), coarse.cdf(0.5));
  EXPECT_GT(sharp.cdf(1.5), coarse.cdf(1.5));
}

TEST(PhaseType, MaxExitRateOverPhases) {
  const PhaseType ph = PhaseType::hypoexponential({1.0, 5.0, 2.0});
  EXPECT_DOUBLE_EQ(ph.max_exit_rate(), 5.0);
}

}  // namespace
}  // namespace unicon
