#include <gtest/gtest.h>

#include "imc/compose.hpp"
#include "imc/imc.hpp"
#include "support/errors.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace unicon {
namespace {

Imc single_action_imc(const std::shared_ptr<ActionTable>& actions, const std::string& a) {
  ImcBuilder b(actions);
  b.add_state("p0");
  b.add_state("p1");
  b.set_initial(0);
  b.add_interactive(0, a, 1);
  return b.build();
}

Imc single_rate_imc(const std::shared_ptr<ActionTable>& actions, double rate) {
  ImcBuilder b(actions);
  b.add_state("m0");
  b.add_state("m1");
  b.set_initial(0);
  b.add_markov(0, rate, 1);
  return b.build();
}

// ------------------------------------------------------ SOS rule checks

TEST(Compose, InterleavingIndependentActions) {
  auto actions = std::make_shared<ActionTable>();
  const Imc left = single_action_imc(actions, "a");
  const Imc right = single_action_imc(actions, "b");
  const Imc prod = parallel_compose(left, {}, right);
  // Diamond: 2x2 states, a and b in either order.
  EXPECT_EQ(prod.num_states(), 4u);
  EXPECT_EQ(prod.num_interactive_transitions(), 4u);
}

TEST(Compose, SynchronizedActionFiresJointly) {
  auto actions = std::make_shared<ActionTable>();
  const Imc left = single_action_imc(actions, "a");
  const Imc right = single_action_imc(actions, "a");
  const Imc prod = parallel_compose(left, {actions->id("a")}, right);
  // Only the joint a-step: 2 states, 1 transition.
  EXPECT_EQ(prod.num_states(), 2u);
  EXPECT_EQ(prod.num_interactive_transitions(), 1u);
}

TEST(Compose, SynchronizationBlocksWhenPartnerCannot) {
  auto actions = std::make_shared<ActionTable>();
  const Imc left = single_action_imc(actions, "a");
  const Imc right = single_action_imc(actions, "b");  // never offers a
  const Imc prod = parallel_compose(left, {actions->id("a")}, right);
  // a blocked forever; only b fires.
  EXPECT_EQ(prod.num_interactive_transitions(), 1u);
}

TEST(Compose, TauInSyncSetRejected) {
  auto actions = std::make_shared<ActionTable>();
  EXPECT_THROW(CompositionExpr::parallel(CompositionExpr::leaf(single_action_imc(actions, "a")),
                                         {kTau},
                                         CompositionExpr::leaf(single_action_imc(actions, "a"))),
               ModelError);
}

TEST(Compose, MarkovTransitionsInterleave) {
  auto actions = std::make_shared<ActionTable>();
  const Imc left = single_rate_imc(actions, 1.0);
  const Imc right = single_rate_imc(actions, 2.0);
  const Imc prod = parallel_compose(left, {}, right);
  EXPECT_EQ(prod.num_states(), 4u);
  EXPECT_EQ(prod.num_markov_transitions(), 4u);
  // Initial state carries both rates.
  EXPECT_DOUBLE_EQ(prod.exit_rate(prod.initial()), 3.0);
}

TEST(Compose, DifferentActionTablesRejected) {
  const Imc left = single_action_imc(std::make_shared<ActionTable>(), "a");
  const Imc right = single_action_imc(std::make_shared<ActionTable>(), "a");
  EXPECT_THROW(parallel_compose(left, {}, right), ModelError);
}

TEST(Compose, HideNodeRenamesToTau) {
  auto actions = std::make_shared<ActionTable>();
  const Imc leaf = single_action_imc(actions, "a");
  auto expr = CompositionExpr::hide(CompositionExpr::leaf(leaf), {actions->id("a")});
  const Imc m = expr.explore();
  ASSERT_EQ(m.num_interactive_transitions(), 1u);
  EXPECT_EQ(m.interactive_transitions()[0].action, kTau);
}

TEST(Compose, HideAllNode) {
  auto actions = std::make_shared<ActionTable>();
  auto expr = CompositionExpr::hide_all(CompositionExpr::parallel(
      CompositionExpr::leaf(single_action_imc(actions, "a")), {},
      CompositionExpr::leaf(single_action_imc(actions, "b"))));
  const Imc m = expr.explore();
  for (const LtsTransition& t : m.interactive_transitions()) EXPECT_EQ(t.action, kTau);
}

TEST(Compose, HiddenActionNoLongerSynchronizes) {
  // Hiding below a parallel node makes the action internal; the outer sync
  // set cannot capture it.
  auto actions = std::make_shared<ActionTable>();
  const Imc left_leaf = single_action_imc(actions, "a");
  const Imc right_leaf = single_action_imc(actions, "a");
  auto hidden_left = CompositionExpr::hide(CompositionExpr::leaf(left_leaf), {actions->id("a")});
  auto expr = CompositionExpr::parallel(std::move(hidden_left), {actions->id("a")},
                                        CompositionExpr::leaf(right_leaf));
  const Imc m = expr.explore();
  // Left moves independently via tau; right's a is blocked forever.
  EXPECT_EQ(m.num_states(), 2u);
  EXPECT_EQ(m.num_interactive_transitions(), 1u);
  EXPECT_EQ(m.interactive_transitions()[0].action, kTau);
}

TEST(Compose, UrgentExplorationCutsMarkovAtInteractiveStates) {
  auto actions = std::make_shared<ActionTable>();
  ImcBuilder b(actions);
  b.add_state();
  b.add_state();
  b.add_state();
  b.set_initial(0);
  b.add_interactive(0, "a", 1);
  b.add_markov(0, 5.0, 2);
  const Imc hybrid = b.build();

  ExploreOptions urgent;
  urgent.urgent = true;
  const Imc closed = CompositionExpr::leaf(hybrid).explore(urgent);
  EXPECT_EQ(closed.num_markov_transitions(), 0u);
  EXPECT_EQ(closed.num_states(), 2u);  // Markov successor never materialized
}

TEST(Compose, MaxStatesGuard) {
  auto actions = std::make_shared<ActionTable>();
  const Imc left = single_rate_imc(actions, 1.0);
  const Imc right = single_rate_imc(actions, 2.0);
  ExploreOptions options;
  options.max_states = 2;
  EXPECT_THROW(parallel_compose(left, {}, right, options), ModelError);
}

TEST(Compose, RecordNamesBuildsTuples) {
  auto actions = std::make_shared<ActionTable>();
  ExploreOptions options;
  options.record_names = true;
  const Imc prod =
      parallel_compose(single_action_imc(actions, "a"), {}, single_action_imc(actions, "b"),
                       options);
  EXPECT_EQ(prod.state_name(prod.initial()), "(p0,p0)");
}

TEST(Compose, OnlyReachableProductStatesMaterialize) {
  auto actions = std::make_shared<ActionTable>();
  // Sync on a: the right component needs b first, which is blocked by sync
  // on b with a left component that never offers it -> deadlock; only the
  // initial state exists.
  ImcBuilder rb(actions);
  rb.add_state();
  rb.add_state();
  rb.add_state();
  rb.set_initial(0);
  rb.add_interactive(0, "b", 1);
  rb.add_interactive(1, "a", 2);
  const Imc right = rb.build();
  const Imc left = single_action_imc(actions, "a");
  const Imc prod =
      parallel_compose(left, {actions->id("a"), actions->id("b")}, right);
  EXPECT_EQ(prod.num_states(), 1u);
  EXPECT_EQ(prod.num_interactive_transitions(), 0u);
}

TEST(Compose, ThreeWayncSynchronizationThroughNesting) {
  // a |[x]| (b |[x]| c): action x fires only when all three agree.
  auto actions = std::make_shared<ActionTable>();
  const Imc a = single_action_imc(actions, "x");
  const Imc b = single_action_imc(actions, "x");
  const Imc c = single_action_imc(actions, "x");
  const Action x = actions->id("x");
  auto expr = CompositionExpr::parallel(
      CompositionExpr::leaf(a), {x},
      CompositionExpr::parallel(CompositionExpr::leaf(b), {x}, CompositionExpr::leaf(c)));
  const Imc prod = expr.explore();
  EXPECT_EQ(prod.num_states(), 2u);
  EXPECT_EQ(prod.num_interactive_transitions(), 1u);
}

TEST(Compose, InterleaveIsAssociativeOnStateCounts) {
  auto actions = std::make_shared<ActionTable>();
  const Imc a = single_action_imc(actions, "a");
  const Imc b = single_rate_imc(actions, 1.0);
  const Imc c = single_action_imc(actions, "c");
  const Imc left = CompositionExpr::interleave(
                       CompositionExpr::interleave(CompositionExpr::leaf(a), CompositionExpr::leaf(b)),
                       CompositionExpr::leaf(c))
                       .explore();
  const Imc right = CompositionExpr::interleave(
                        CompositionExpr::leaf(a),
                        CompositionExpr::interleave(CompositionExpr::leaf(b), CompositionExpr::leaf(c)))
                        .explore();
  EXPECT_EQ(left.num_states(), right.num_states());
  EXPECT_EQ(left.num_interactive_transitions(), right.num_interactive_transitions());
  EXPECT_EQ(left.num_markov_transitions(), right.num_markov_transitions());
}

TEST(Compose, RatesAddAcrossManyComponents) {
  auto actions = std::make_shared<ActionTable>();
  CompositionExpr expr = CompositionExpr::leaf(single_rate_imc(actions, 0.5));
  for (int i = 0; i < 4; ++i) {
    expr = CompositionExpr::interleave(std::move(expr),
                                       CompositionExpr::leaf(single_rate_imc(actions, 0.5)));
  }
  const Imc prod = expr.explore();
  EXPECT_DOUBLE_EQ(prod.exit_rate(prod.initial()), 2.5);
  EXPECT_EQ(prod.num_states(), 32u);
}

TEST(Compose, SynchronizedMarkovNeverHappens) {
  // Markov transitions always interleave even if both components carry the
  // same rates: the initial product state has both exit rates summed, not
  // a "joint" transition.
  auto actions = std::make_shared<ActionTable>();
  const Imc a = single_rate_imc(actions, 2.0);
  const Imc b = single_rate_imc(actions, 2.0);
  const Imc prod = parallel_compose(a, {}, b);
  const auto out = prod.out_markov(prod.initial());
  EXPECT_EQ(out.size(), 2u);
}

// ------------------------------------- Lemmas 1 and 2 (property sweeps)

class UniformityPreservation : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(UniformityPreservation, ParallelCompositionAddsUniformRates) {
  // Lemma 2: M |[A]| N is uniform whenever M and N are; rates add up.
  Rng rng(GetParam());
  testutil::RandomImcConfig config;
  config.num_states = 8;
  config.uniform_rate = 2.0;

  ImcBuilder shared_builder;  // to share an action table across components
  auto actions = shared_builder.action_table();

  const Imc m = testutil::random_uniform_imc(rng, config);
  config.uniform_rate = 3.0;
  const Imc n = testutil::random_uniform_imc(rng, config);
  // Rebuild n over m's table so they can be composed.
  ImcBuilder rebuild(m.action_table());
  for (StateId s = 0; s < n.num_states(); ++s) rebuild.add_state();
  rebuild.set_initial(n.initial());
  for (const LtsTransition& t : n.interactive_transitions()) {
    rebuild.add_interactive(t.from, m.action_table()->intern(n.actions().name(t.action)), t.to);
  }
  for (const MarkovTransition& t : n.markov_transitions()) {
    rebuild.add_markov(t.from, t.rate, t.to);
  }
  const Imc n2 = rebuild.build();

  ASSERT_TRUE(m.is_uniform(UniformityView::Open, 1e-9));
  ASSERT_TRUE(n2.is_uniform(UniformityView::Open, 1e-9));

  const Imc prod = parallel_compose(m, {m.action_table()->id("a")}, n2);
  ASSERT_TRUE(prod.is_uniform(UniformityView::Open, 1e-6));
  EXPECT_NEAR(*prod.uniform_rate(UniformityView::Open, 1e-6), 5.0, 1e-9);
}

TEST_P(UniformityPreservation, HidingPreservesUniformity) {
  // Lemma 1: hide a in (M) is uniform whenever M is.
  Rng rng(GetParam() + 1000);
  testutil::RandomImcConfig config;
  config.num_states = 10;
  config.uniform_rate = 4.0;
  config.tau_bias = 0.2;  // mostly visible actions so hiding does something
  const Imc m = testutil::random_uniform_imc(rng, config);
  ASSERT_TRUE(m.is_uniform(UniformityView::Open, 1e-9));
  const Imc h = m.hide({m.action_table()->id("a")});
  EXPECT_TRUE(h.is_uniform(UniformityView::Open, 1e-6));
}

INSTANTIATE_TEST_SUITE_P(Seeds, UniformityPreservation, ::testing::Range<std::uint64_t>(0, 20));

}  // namespace
}  // namespace unicon
