#include <gtest/gtest.h>

#include "core/analysis.hpp"
#include "core/transform.hpp"
#include "ctmc/transient.hpp"
#include "support/errors.hpp"
#include "support/rng.hpp"
#include "test_util.hpp"

namespace unicon {
namespace {

// ------------------------------------------------------------ step (1)

TEST(MakeAlternating, CutsMarkovTransitionsOfHybridStates) {
  ImcBuilder b;
  for (int i = 0; i < 3; ++i) b.add_state();
  b.set_initial(0);
  b.add_interactive(0, "a", 1);
  b.add_markov(0, 3.0, 2);  // urgency: cut
  b.add_markov(1, 1.0, 2);
  const Imc m = make_alternating(b.build());
  EXPECT_FALSE(m.has_markov(0));
  EXPECT_TRUE(m.has_markov(1));
  EXPECT_EQ(m.num_markov_transitions(), 1u);
  for (StateId s = 0; s < m.num_states(); ++s) EXPECT_NE(m.kind(s), StateKind::Hybrid);
}

TEST(MakeAlternating, PureModelsUntouched) {
  ImcBuilder b;
  b.add_state();
  b.add_state();
  b.set_initial(0);
  b.add_markov(0, 1.0, 1);
  b.add_interactive(1, kTau, 0);
  const Imc before = b.build();
  const Imc after = make_alternating(before);
  EXPECT_EQ(after.num_markov_transitions(), before.num_markov_transitions());
  EXPECT_EQ(after.num_interactive_transitions(), before.num_interactive_transitions());
}

// ------------------------------------------------------------ step (2)

TEST(MakeMarkovAlternating, SplitsMarkovToMarkovEdges) {
  // 0 (Markov) --1.0--> 1 (Markov) --2.0--> 2 (interactive).
  ImcBuilder b;
  for (int i = 0; i < 3; ++i) b.add_state();
  b.set_initial(0);
  b.add_markov(0, 1.0, 1);
  b.add_markov(1, 2.0, 2);
  b.add_interactive(2, kTau, 0);
  const Imc m = make_markov_alternating(b.build());
  // One fresh state (0,1) with a tau to 1.
  EXPECT_EQ(m.num_states(), 4u);
  const StateId fresh = 3;
  EXPECT_TRUE(m.has_interactive(fresh));
  EXPECT_DOUBLE_EQ(m.rate(0, fresh), 1.0);
  EXPECT_DOUBLE_EQ(m.rate(0, 1), 0.0);
  // Every Markov transition now ends in an interactive state.
  for (const MarkovTransition& t : m.markov_transitions()) {
    EXPECT_TRUE(m.has_interactive(t.to));
  }
}

TEST(MakeMarkovAlternating, ParallelEdgesShareOneFreshState) {
  ImcBuilder b;
  b.add_state();
  b.add_state();
  b.set_initial(0);
  b.add_markov(0, 1.0, 1);
  b.add_markov(0, 2.0, 1);
  b.add_markov(1, 1.0, 0);
  const Imc m = make_markov_alternating(b.build());
  // Fresh states (0,1) and (1,0): 2 + 2 = 4.
  EXPECT_EQ(m.num_states(), 4u);
}

TEST(MakeMarkovAlternating, SelfLoopsAreSplitToo) {
  // A Markov self-loop is a Markov->Markov edge and gains a pair state —
  // this is how uniformization self-loops thread through the pipeline.
  ImcBuilder b;
  b.add_state();
  b.add_state();
  b.set_initial(0);
  b.add_markov(0, 1.0, 0);
  b.add_markov(0, 1.0, 1);
  b.add_interactive(1, kTau, 0);
  const Imc m = make_markov_alternating(b.build());
  EXPECT_EQ(m.num_states(), 3u);
  EXPECT_DOUBLE_EQ(m.rate(0, 2), 1.0);  // via pair state (0,0)
}

TEST(MakeMarkovAlternating, HybridInputRejected) {
  ImcBuilder b;
  b.add_state();
  b.add_state();
  b.add_interactive(0, "a", 1);
  b.add_markov(0, 1.0, 1);
  EXPECT_THROW(make_markov_alternating(b.build()), ModelError);
}

// --------------------------------------------- step (3) and the CTMDP

TEST(Transform, WordCompression) {
  // Markov 0 --> interactive chain 1 -a-> 2 -b-> 3 (Markov).
  ImcBuilder b;
  for (int i = 0; i < 4; ++i) b.add_state();
  b.set_initial(0);
  b.add_markov(0, 1.0, 1);
  b.add_interactive(1, "a", 2);
  b.add_interactive(2, "b", 3);
  b.add_markov(3, 1.0, 1);
  const auto result = transform_to_ctmdp(b.build());
  const Ctmdp& c = result.ctmdp;
  // States: fresh initial (for the Markov initial state) and 1.
  EXPECT_EQ(c.num_states(), 2u);
  bool found_ab = false;
  for (std::uint64_t t = 0; t < c.num_transitions(); ++t) {
    if (c.words().str(c.label(t), c.actions()) == "a.b") found_ab = true;
  }
  EXPECT_TRUE(found_ab);
}

TEST(Transform, TauOnlyPathsYieldTauWord) {
  ImcBuilder b;
  for (int i = 0; i < 3; ++i) b.add_state();
  b.set_initial(0);
  b.add_markov(0, 2.0, 1);
  b.add_interactive(1, kTau, 2);
  b.add_markov(2, 2.0, 1);
  const auto result = transform_to_ctmdp(b.build());
  const Ctmdp& c = result.ctmdp;
  for (std::uint64_t t = 0; t < c.num_transitions(); ++t) {
    EXPECT_EQ(c.words().str(c.label(t), c.actions()), "tau");
  }
}

TEST(Transform, BranchingChoicesBecomeSeparateTransitions) {
  // An interactive state with two distinct zero-time resolutions gives the
  // CTMDP state two transitions (the scheduler's choice).
  ImcBuilder b;
  for (int i = 0; i < 5; ++i) b.add_state();
  b.set_initial(0);
  b.add_markov(0, 1.0, 1);
  b.add_interactive(1, "a", 2);
  b.add_interactive(1, "b", 3);
  b.add_markov(2, 1.0, 1);
  b.add_markov(3, 4.0, 4);
  b.add_interactive(4, kTau, 1);
  const auto result = transform_to_ctmdp(b.build());
  const Ctmdp& c = result.ctmdp;
  const StateId s1 = 1;  // interactive state 1 keeps its role as a CTMDP state
  bool found_two = false;
  for (StateId s = 0; s < c.num_states(); ++s) {
    if (c.num_transitions_of(s) == 2) found_two = true;
  }
  EXPECT_TRUE(found_two);
  (void)s1;
}

TEST(Transform, DuplicateWordsToSameMarkovStateAreDeduplicated) {
  // Two tau paths from the same entry to the same Markov state carry the
  // same rate function; only one transition is emitted.
  ImcBuilder b;
  for (int i = 0; i < 5; ++i) b.add_state();
  b.set_initial(0);
  b.add_markov(0, 1.0, 1);
  b.add_interactive(1, kTau, 2);
  b.add_interactive(1, kTau, 3);
  b.add_interactive(2, kTau, 4);
  b.add_interactive(3, kTau, 4);
  b.add_markov(4, 1.0, 1);
  const auto result = transform_to_ctmdp(b.build());
  EXPECT_EQ(result.stats.words_deduplicated, 1u);
  EXPECT_EQ(result.ctmdp.num_transitions(), 2u);  // fresh-initial tau + entry
}

TEST(Transform, ZenoCycleDetected) {
  ImcBuilder b;
  for (int i = 0; i < 3; ++i) b.add_state();
  b.set_initial(0);
  b.add_markov(0, 1.0, 1);
  b.add_interactive(1, kTau, 2);
  b.add_interactive(2, kTau, 1);
  EXPECT_THROW(transform_to_ctmdp(b.build()), ZenoError);
}

TEST(Transform, ZeroTimeDeadlockDetected) {
  ImcBuilder b;
  for (int i = 0; i < 3; ++i) b.add_state();
  b.set_initial(0);
  b.add_markov(0, 1.0, 1);
  b.add_interactive(1, "a", 2);  // state 2 is absorbing
  EXPECT_THROW(transform_to_ctmdp(b.build()), ModelError);
}

TEST(Transform, AbsorbingInitialRejected) {
  ImcBuilder b;
  b.add_state();
  EXPECT_THROW(transform_to_ctmdp(b.build()), ModelError);
}

TEST(Transform, MarkovInitialGetsFreshPreInitial) {
  ImcBuilder b;
  b.add_state();
  b.add_state();
  b.set_initial(0);
  b.add_markov(0, 1.0, 1);
  b.add_interactive(1, kTau, 0);
  const auto result = transform_to_ctmdp(b.build());
  const Ctmdp& c = result.ctmdp;
  EXPECT_EQ(c.num_transitions_of(c.initial()), 1u);
  EXPECT_EQ(result.origin_of[c.initial()], 0u);
}

TEST(Transform, StatsCountStrictlyAlternatingSizes) {
  ImcBuilder b;
  for (int i = 0; i < 3; ++i) b.add_state();
  b.set_initial(0);
  b.add_markov(0, 1.0, 1);
  b.add_interactive(1, "a", 2);
  b.add_markov(2, 1.0, 1);
  const auto result = transform_to_ctmdp(b.build());
  EXPECT_EQ(result.stats.interactive_states, result.ctmdp.num_states());
  EXPECT_EQ(result.stats.interactive_transitions, result.ctmdp.num_transitions());
  EXPECT_EQ(result.stats.markov_states, 2u);
  EXPECT_GT(result.stats.memory_bytes, 0u);
  EXPECT_GE(result.stats.seconds, 0.0);
}

// ----------------------------------------------------- goal transfer

TEST(Transform, GoalTransferExistentialAndUniversal) {
  // From entry 1 the scheduler may go to goal Markov state 3 or non-goal 4.
  ImcBuilder b;
  for (int i = 0; i < 5; ++i) b.add_state();
  b.set_initial(0);
  b.add_markov(0, 1.0, 1);
  b.add_interactive(1, "a", 3);
  b.add_interactive(1, "b", 4);
  b.add_markov(3, 1.0, 1);
  b.add_markov(4, 1.0, 1);
  const BitVector goal{false, false, false, true, false};
  const auto result = transform_to_ctmdp(b.build(), &goal);
  ASSERT_EQ(result.goal.size(), result.ctmdp.num_states());
  // Find the CTMDP state for original state 1.
  StateId one = kNoState;
  for (StateId s = 0; s < result.ctmdp.num_states(); ++s) {
    if (result.origin_of[s] == 1) one = s;
  }
  ASSERT_NE(one, kNoState);
  EXPECT_TRUE(result.goal[one]);            // can zero-reach the goal
  EXPECT_FALSE(result.goal_universal[one]);  // but is not forced to
}

TEST(Transform, GoalOnInteractiveEntryState) {
  ImcBuilder b;
  for (int i = 0; i < 3; ++i) b.add_state();
  b.set_initial(0);
  b.add_markov(0, 1.0, 1);
  b.add_interactive(1, kTau, 2);
  b.add_markov(2, 1.0, 1);
  const BitVector goal{false, true, false};
  const auto result = transform_to_ctmdp(b.build(), &goal);
  StateId one = kNoState;
  for (StateId s = 0; s < result.ctmdp.num_states(); ++s) {
    if (result.origin_of[s] == 1) one = s;
  }
  ASSERT_NE(one, kNoState);
  EXPECT_TRUE(result.goal[one]);
  EXPECT_TRUE(result.goal_universal[one]);
}

TEST(Transform, GoalSizeMismatchThrows) {
  ImcBuilder b;
  b.add_state();
  b.add_markov(0, 1.0, 0);
  const Imc m = b.build();
  const BitVector goal{true, false};
  EXPECT_THROW(transform_to_ctmdp(m, &goal), ModelError);
}

// --------------------------- Theorem 1 style cross-checks (properties)

class TransformCrossCheck : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(TransformCrossCheck, DeterministicUimcMatchesCtmcAnalysis) {
  // For a closed uIMC without any scheduler choice, the transformed CTMDP
  // is deterministic and timed reachability must equal plain CTMC
  // analysis of the induced chain (Theorem 1 collapses to an equality).
  Rng rng(GetParam());
  testutil::RandomImcConfig config;
  config.num_states = 15;
  config.deterministic = true;
  config.uniform_rate = 2.0;
  const Imc m = testutil::random_uniform_imc(rng, config);
  const BitVector goal = testutil::random_goal(rng, m.num_states());

  const auto transformed = transform_to_ctmdp(m, &goal);
  const Ctmc chain = testutil::ctmc_from_deterministic_ctmdp(transformed.ctmdp);

  for (double t : {0.4, 1.5, 6.0}) {
    TimedReachabilityOptions options;
    options.epsilon = 1e-9;
    const auto via_mdp = timed_reachability(transformed.ctmdp, transformed.goal, t, options);
    const auto via_ctmc = timed_reachability(chain, transformed.goal, t, TransientOptions{1e-9});
    EXPECT_NEAR(via_mdp.values[transformed.ctmdp.initial()],
                via_ctmc.probabilities[chain.initial()], 1e-6)
        << "t=" << t;
  }
}

TEST_P(TransformCrossCheck, SupIsAtLeastInf) {
  Rng rng(GetParam() + 300);
  testutil::RandomImcConfig config;
  config.num_states = 14;
  const Imc m = testutil::random_uniform_imc(rng, config);
  const BitVector goal = testutil::random_goal(rng, m.num_states());
  UimcAnalysisOptions options;
  const double sup = analyze_timed_reachability(m, goal, 2.0, options).value;
  options.reachability.objective = Objective::Minimize;
  const double inf = analyze_timed_reachability(m, goal, 2.0, options).value;
  EXPECT_GE(sup + 1e-9, inf);
}

TEST_P(TransformCrossCheck, TransformedModelIsUniform) {
  Rng rng(GetParam() + 600);
  const Imc m = testutil::random_uniform_imc(rng);
  const auto result = transform_to_ctmdp(m);
  EXPECT_TRUE(result.ctmdp.is_uniform(1e-6));
}

INSTANTIATE_TEST_SUITE_P(Seeds, TransformCrossCheck, ::testing::Range<std::uint64_t>(0, 15));

}  // namespace
}  // namespace unicon
