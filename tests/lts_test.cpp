#include <gtest/gtest.h>

#include "lts/lts.hpp"
#include "support/errors.hpp"

namespace unicon {
namespace {

Lts three_state_lts() {
  LtsBuilder b;
  const StateId s0 = b.add_state("zero");
  const StateId s1 = b.add_state("one");
  const StateId s2 = b.add_state("two");
  b.set_initial(s0);
  b.add_transition(s0, "a", s1);
  b.add_transition(s1, "b", s2);
  b.add_transition(s2, "a", s0);
  return b.build();
}

TEST(Lts, BuilderBasics) {
  const Lts lts = three_state_lts();
  EXPECT_EQ(lts.num_states(), 3u);
  EXPECT_EQ(lts.num_transitions(), 3u);
  EXPECT_EQ(lts.initial(), 0u);
  EXPECT_EQ(lts.state_name(1), "one");
}

TEST(Lts, OutTransitionsSortedAndIndexed) {
  LtsBuilder b;
  b.add_state();
  b.add_state();
  b.add_transition(0, "b", 1);
  b.add_transition(0, "a", 1);
  b.add_transition(0, "a", 0);
  const Lts lts = b.build();
  // Transitions sort by action *id* (interning order: b before a here),
  // then by target.
  const auto out = lts.out(0);
  ASSERT_EQ(out.size(), 3u);
  EXPECT_EQ(lts.actions().name(out[0].action), "b");
  EXPECT_EQ(out[0].to, 1u);
  EXPECT_EQ(lts.actions().name(out[1].action), "a");
  EXPECT_EQ(out[1].to, 0u);
  EXPECT_EQ(out[2].to, 1u);
}

TEST(Lts, DuplicateTransitionsCollapse) {
  LtsBuilder b;
  b.add_state();
  b.add_state();
  b.add_transition(0, "a", 1);
  b.add_transition(0, "a", 1);
  EXPECT_EQ(b.build().num_transitions(), 1u);
}

TEST(Lts, EmptyBuildThrows) {
  LtsBuilder b;
  EXPECT_THROW(b.build(), ModelError);
}

TEST(Lts, DanglingTransitionThrows) {
  LtsBuilder b;
  b.add_state();
  b.add_transition(0, "a", 5);
  EXPECT_THROW(b.build(), ModelError);
}

TEST(Lts, BadInitialThrows) {
  LtsBuilder b;
  b.add_state();
  b.set_initial(3);
  EXPECT_THROW(b.build(), ModelError);
}

TEST(Lts, HideTurnsActionsIntoTau) {
  const Lts lts = three_state_lts();
  const Action a = lts.actions().id("a");
  const Lts hidden = lts.hide({a});
  int taus = 0;
  for (const LtsTransition& t : hidden.transitions()) {
    if (t.action == kTau) ++taus;
  }
  EXPECT_EQ(taus, 2);
}

TEST(Lts, RelabelRenamesActions) {
  const Lts lts = three_state_lts();
  const Action a = lts.actions().id("a");
  LtsBuilder helper(lts.action_table());
  const Action c = helper.intern("c");
  const Lts renamed = lts.relabel({{a, c}});
  int cs = 0;
  for (const LtsTransition& t : renamed.transitions()) {
    if (t.action == c) ++cs;
  }
  EXPECT_EQ(cs, 2);
}

TEST(Lts, ReachableDropsIsolatedStates) {
  LtsBuilder b;
  b.add_state("init");
  b.add_state("next");
  b.add_state("island");
  b.add_transition(0, "a", 1);
  b.add_transition(2, "a", 0);  // island is never entered
  const Lts lts = b.build().reachable();
  EXPECT_EQ(lts.num_states(), 2u);
  EXPECT_EQ(lts.state_name(0), "init");
}

TEST(Lts, ReachablePreservesInitialAndTransitions) {
  const Lts lts = three_state_lts().reachable();
  EXPECT_EQ(lts.num_states(), 3u);
  EXPECT_EQ(lts.num_transitions(), 3u);
}

TEST(Lts, DeterministicDetection) {
  EXPECT_TRUE(three_state_lts().deterministic());
  LtsBuilder b;
  b.add_state();
  b.add_state();
  b.add_state();
  b.add_transition(0, "a", 1);
  b.add_transition(0, "a", 2);
  EXPECT_FALSE(b.build().deterministic());
}

TEST(Lts, SharedActionTable) {
  auto table = std::make_shared<ActionTable>();
  LtsBuilder b1(table), b2(table);
  b1.add_state();
  b2.add_state();
  const Action a1 = b1.intern("shared");
  const Action a2 = b2.intern("shared");
  EXPECT_EQ(a1, a2);
}

TEST(Lts, EnsureStatesGrows) {
  LtsBuilder b;
  b.ensure_states(4);
  EXPECT_EQ(b.build().num_states(), 4u);
}

}  // namespace
}  // namespace unicon
