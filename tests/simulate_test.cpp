#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <vector>

#include "ctmdp/reachability.hpp"
#include "ctmdp/simulate.hpp"
#include "support/errors.hpp"

namespace unicon {
namespace {

Ctmdp chain_model() {
  // 0 -> 1 -> 2 (goal), all exit rates 2.0; state 0 also has a slow branch.
  CtmdpBuilder b;
  b.ensure_states(3);
  b.set_initial(0);
  b.begin_transition(0, "fast");
  b.add_rate(1, 2.0);
  b.begin_transition(0, "slow");
  b.add_rate(0, 1.5);
  b.add_rate(1, 0.5);
  b.begin_transition(1, "go");
  b.add_rate(2, 2.0);
  b.begin_transition(2, "stay");
  b.add_rate(2, 2.0);
  return b.build();
}

TEST(Simulate, ValidatesInputs) {
  const Ctmdp c = chain_model();
  EXPECT_THROW(simulate_reachability(c, {true}, 1.0, {0, 2, 3}), ModelError);
  EXPECT_THROW(simulate_reachability(c, {false, false, true}, 1.0, {0}), ModelError);
  EXPECT_THROW(simulate_reachability(c, {false, false, true}, 1.0, {9, 2, 3}), ModelError);
}

TEST(Simulate, DeterministicSeedsReproduce) {
  const Ctmdp c = chain_model();
  const std::vector<bool> goal{false, false, true};
  const std::vector<std::uint64_t> choice{0, 2, 3};
  SimulationOptions options;
  options.num_runs = 2000;
  const auto a = simulate_reachability(c, goal, 1.5, choice, options);
  const auto b = simulate_reachability(c, goal, 1.5, choice, options);
  EXPECT_DOUBLE_EQ(a.estimate, b.estimate);
}

class SimulateVsAnalytic : public ::testing::TestWithParam<std::tuple<int, double>> {};

TEST_P(SimulateVsAnalytic, EstimateWithinConfidenceBand) {
  const auto [pick, t] = GetParam();
  const Ctmdp c = chain_model();
  const std::vector<bool> goal{false, false, true};
  const std::vector<std::uint64_t> choice{static_cast<std::uint64_t>(pick), 2, 3};

  const double analytic = evaluate_scheduler(c, goal, t, choice, {.epsilon = 1e-9}).values[0];

  SimulationOptions options;
  options.num_runs = 40000;
  options.seed = 12345 + static_cast<std::uint64_t>(pick);
  const auto sim = simulate_reachability(c, goal, t, choice, options);

  // 1.96-sigma half width plus slack; failures here indicate a genuine
  // semantics mismatch, not noise.
  EXPECT_NEAR(sim.estimate, analytic, sim.half_width + 0.01)
      << "pick=" << pick << " t=" << t;
}

INSTANTIATE_TEST_SUITE_P(Grid, SimulateVsAnalytic,
                         ::testing::Combine(::testing::Values(0, 1),
                                            ::testing::Values(0.25, 1.0, 3.0)));

TEST(Simulate, ThreadCountDoesNotChangeTheEstimate) {
  // Every run has its own derived-seed generator, so the estimate is a pure
  // function of (seed, num_runs): bit-identical for every thread count.
  const Ctmdp c = chain_model();
  const std::vector<bool> goal{false, false, true};
  const std::vector<std::uint64_t> choice{1, 2, 3};
  SimulationOptions options;
  options.num_runs = 5000;
  options.seed = 99;
  options.threads = 1;
  const auto baseline = simulate_reachability(c, goal, 1.5, choice, options);
  for (const unsigned threads : {2u, 3u, 8u, 0u}) {
    options.threads = threads;
    const auto r = simulate_reachability(c, goal, 1.5, choice, options);
    EXPECT_DOUBLE_EQ(r.estimate, baseline.estimate) << "threads=" << threads;
    EXPECT_DOUBLE_EQ(r.half_width, baseline.half_width) << "threads=" << threads;
  }
}

TEST(Simulate, DistinctSeedsDistinctButWithinConfidenceBand) {
  const Ctmdp c = chain_model();
  const std::vector<bool> goal{false, false, true};
  const std::vector<std::uint64_t> choice{0, 2, 3};
  const double t = 1.0;
  const double analytic = evaluate_scheduler(c, goal, t, choice, {.epsilon = 1e-9}).values[0];

  SimulationOptions options;
  options.num_runs = 20000;
  options.threads = 2;
  std::vector<double> estimates;
  for (const std::uint64_t seed : {11u, 22u, 33u, 44u}) {
    options.seed = seed;
    const auto r = simulate_reachability(c, goal, t, choice, options);
    // 99% band plus slack; a miss indicates a semantics bug, not noise.
    EXPECT_NEAR(r.estimate, analytic, 2.5758 / 1.96 * r.half_width + 0.01) << "seed=" << seed;
    estimates.push_back(r.estimate);
  }
  // Different seeds draw different trajectories: not all estimates collapse
  // onto one value.
  EXPECT_FALSE(std::all_of(estimates.begin(), estimates.end(),
                           [&](double e) { return e == estimates.front(); }));
}

TEST(Simulate, GoalAtStartCountsImmediately) {
  const Ctmdp c = chain_model();
  const std::vector<bool> goal{true, false, false};
  const auto r = simulate_reachability(c, goal, 0.0, {0, 2, 3});
  EXPECT_DOUBLE_EQ(r.estimate, 1.0);
  EXPECT_DOUBLE_EQ(r.half_width, 0.0);
}

TEST(Simulate, ZeroTimeNonGoalNeverHits) {
  const Ctmdp c = chain_model();
  const std::vector<bool> goal{false, false, true};
  const auto r = simulate_reachability(c, goal, 0.0, {0, 2, 3});
  EXPECT_DOUBLE_EQ(r.estimate, 0.0);
}

TEST(Simulate, AbsorbingNonGoalTerminatesRuns) {
  CtmdpBuilder b;
  b.ensure_states(2);
  b.set_initial(0);
  b.begin_transition(0, "go");
  b.add_rate(1, 1.0);
  // State 1 has no transitions.
  const Ctmdp c = b.build();
  const auto r = simulate_reachability(c, {false, false}, 100.0, {0, 0});
  EXPECT_DOUBLE_EQ(r.estimate, 0.0);
}

}  // namespace
}  // namespace unicon
