#include <gtest/gtest.h>

#include <cmath>

#include "core/analysis.hpp"
#include "core/time_constraint.hpp"
#include "imc/compose.hpp"
#include "imc/elapse.hpp"
#include "support/errors.hpp"

namespace unicon {
namespace {

TEST(Elapse, ExponentialStructure) {
  auto actions = std::make_shared<ActionTable>();
  const Imc el = elapse(PhaseType::exponential(2.0), "fire", "go", actions);
  // idle + 1 phase + done.
  EXPECT_EQ(el.num_states(), 3u);
  EXPECT_EQ(el.initial(), 0u);  // idle by default
  EXPECT_EQ(el.num_interactive_transitions(), 2u);
  // Every state has exit rate E = 2.
  for (StateId s = 0; s < el.num_states(); ++s) EXPECT_DOUBLE_EQ(el.exit_rate(s), 2.0);
}

TEST(Elapse, IsUniformByConstruction) {
  auto actions = std::make_shared<ActionTable>();
  const Imc el = elapse(PhaseType::erlang(4, 3.0), "fire", "go", actions);
  EXPECT_TRUE(el.is_uniform(UniformityView::Open, 1e-9));
  EXPECT_DOUBLE_EQ(*el.uniform_rate(UniformityView::Open, 1e-9), 3.0);
}

TEST(Elapse, InitiallyRunningStartsInPhase) {
  auto actions = std::make_shared<ActionTable>();
  ElapseOptions options;
  options.initially_running = true;
  const Imc el = elapse(PhaseType::exponential(1.0), "fire", "go", actions, options);
  EXPECT_EQ(el.initial(), 1u);
}

TEST(Elapse, ExplicitUniformRatePadsPhases) {
  auto actions = std::make_shared<ActionTable>();
  ElapseOptions options;
  options.uniform_rate = 10.0;
  const Imc el = elapse(PhaseType::exponential(2.0), "fire", "go", actions, options);
  for (StateId s = 0; s < el.num_states(); ++s) EXPECT_DOUBLE_EQ(el.exit_rate(s), 10.0);
}

TEST(Elapse, RateBelowPhaseExitThrows) {
  auto actions = std::make_shared<ActionTable>();
  ElapseOptions options;
  options.uniform_rate = 1.0;
  EXPECT_THROW(elapse(PhaseType::exponential(2.0), "fire", "go", actions, options),
               UniformityError);
}

TEST(Elapse, TauActionsRejected) {
  auto actions = std::make_shared<ActionTable>();
  EXPECT_THROW(elapse(PhaseType::exponential(1.0), kTau, actions->intern("go"), actions),
               ModelError);
}

TEST(Elapse, NullActionTableRejected) {
  EXPECT_THROW(elapse(PhaseType::exponential(1.0), "fire", "go", nullptr), ModelError);
}

TEST(Elapse, FireTriggerCycle) {
  auto actions = std::make_shared<ActionTable>();
  const Imc el = elapse(PhaseType::exponential(1.0), "fire", "go", actions);
  // idle --go--> phase, done --fire--> idle.
  const auto idle_out = el.out_interactive(0);
  ASSERT_EQ(idle_out.size(), 1u);
  EXPECT_EQ(el.actions().name(idle_out[0].action), "go");
  EXPECT_EQ(idle_out[0].to, 1u);
  const auto done_out = el.out_interactive(2);
  ASSERT_EQ(done_out.size(), 1u);
  EXPECT_EQ(el.actions().name(done_out[0].action), "fire");
  EXPECT_EQ(done_out[0].to, 0u);
}

// ------------------------------------------- semantic check via analysis

/// The delay enforced by an elapse constraint equals the phase-type CDF:
/// compose a one-shot LTS (start --go--> wait --fire--> finished) with
/// El(Ph, fire, go) and measure P(finished within t).
class ElapseDelaySemantics : public ::testing::TestWithParam<int> {};

TEST_P(ElapseDelaySemantics, ReachabilityEqualsPhaseTypeCdf) {
  PhaseType ph = [&]() -> PhaseType {
    switch (GetParam()) {
      case 0: return PhaseType::exponential(1.3);
      case 1: return PhaseType::erlang(3, 4.0);
      case 2: return PhaseType::hypoexponential({1.0, 2.0, 3.0});
      default: return PhaseType::coxian({2.0, 1.0}, {0.4, 1.0});
    }
  }();

  auto actions = std::make_shared<ActionTable>();
  LtsBuilder lb(actions);
  const StateId start = lb.add_state("start");
  const StateId wait = lb.add_state("wait");
  const StateId finished = lb.add_state("finished");
  lb.set_initial(start);
  lb.add_transition(start, "go", wait);
  lb.add_transition(wait, "fire", finished);
  const Lts lts = lb.build();

  std::vector<TimeConstraint> constraints;
  constraints.emplace_back(ph, "fire", "go");
  ExploreOptions explore;
  explore.record_names = true;
  explore.urgent = true;
  const Imc system = apply_time_constraints(lts, constraints, explore);

  std::vector<bool> goal(system.num_states());
  for (StateId s = 0; s < system.num_states(); ++s) {
    goal[s] = system.state_name(s).find("finished") != std::string::npos;
  }

  for (double t : {0.2, 0.8, 2.0, 5.0}) {
    UimcAnalysisOptions options;
    options.reachability.epsilon = 1e-9;
    const double via_imc = analyze_timed_reachability(system, goal, t, options).value;
    EXPECT_NEAR(via_imc, ph.cdf(t, 1e-10), 1e-6) << "t=" << t;
  }
}

INSTANTIATE_TEST_SUITE_P(Distributions, ElapseDelaySemantics, ::testing::Range(0, 4));

TEST(TimeConstraint, EmptyConstraintListGivesPlainLts) {
  auto actions = std::make_shared<ActionTable>();
  LtsBuilder lb(actions);
  lb.add_state();
  lb.add_state();
  lb.add_transition(0, "x", 1);
  const Imc m = apply_time_constraints(lb.build(), {});
  EXPECT_EQ(m.num_states(), 2u);
  EXPECT_EQ(m.num_markov_transitions(), 0u);
}

TEST(TimeConstraint, MultipleConstraintsSumRates) {
  auto actions = std::make_shared<ActionTable>();
  LtsBuilder lb(actions);
  const StateId s0 = lb.add_state();
  const StateId s1 = lb.add_state();
  lb.add_transition(s0, "f1", s1);
  lb.add_transition(s1, "f2", s0);
  const Lts lts = lb.build();

  std::vector<TimeConstraint> constraints;
  constraints.emplace_back(PhaseType::exponential(2.0), "f1", "f2", /*running=*/true);
  constraints.emplace_back(PhaseType::exponential(3.0), "f2", "f1", /*running=*/false);
  const Imc m = apply_time_constraints(lts, constraints);
  EXPECT_TRUE(m.is_uniform(UniformityView::Open, 1e-9));
  EXPECT_NEAR(*m.uniform_rate(UniformityView::Open, 1e-9), 5.0, 1e-12);
}

}  // namespace
}  // namespace unicon
