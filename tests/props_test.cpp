#include <gtest/gtest.h>

#include <cmath>

#include "ctmc/transient.hpp"
#include "ctmdp/reachability.hpp"
#include "props/property.hpp"
#include "support/errors.hpp"

namespace unicon {
namespace {

// ------------------------------------------------------------- parsing

TEST(QueryParser, BoundedReachability) {
  const Query q = parse_query("Pmax=? [ F<=100 \"unsafe\" ]");
  EXPECT_EQ(q.kind, Query::Kind::ProbBounded);
  EXPECT_EQ(q.objective, Objective::Maximize);
  EXPECT_EQ(q.left, "true");
  EXPECT_EQ(q.goal, "unsafe");
  EXPECT_DOUBLE_EQ(q.t2, 100.0);
}

TEST(QueryParser, BoundedUntil) {
  const Query q = parse_query("Pmin=? [ up U<=50 goal ]");
  EXPECT_EQ(q.kind, Query::Kind::ProbBounded);
  EXPECT_EQ(q.objective, Objective::Minimize);
  EXPECT_EQ(q.left, "up");
  EXPECT_EQ(q.goal, "goal");
  EXPECT_DOUBLE_EQ(q.t2, 50.0);
}

TEST(QueryParser, UnboundedForms) {
  EXPECT_EQ(parse_query("Pmax=? [ F goal ]").kind, Query::Kind::ProbUnbounded);
  const Query u = parse_query("Pmin=? [ safe U goal ]");
  EXPECT_EQ(u.kind, Query::Kind::ProbUnbounded);
  EXPECT_EQ(u.left, "safe");
}

TEST(QueryParser, IntervalForm) {
  const Query q = parse_query("P=? [ F[10,20.5] goal ]");
  EXPECT_EQ(q.kind, Query::Kind::ProbInterval);
  EXPECT_DOUBLE_EQ(q.t1, 10.0);
  EXPECT_DOUBLE_EQ(q.t2, 20.5);
}

TEST(QueryParser, ExpectedTimeAndSteadyState) {
  const Query t = parse_query("Tmin=? [ F goal ]");
  EXPECT_EQ(t.kind, Query::Kind::ExpectedTime);
  EXPECT_EQ(t.objective, Objective::Minimize);
  const Query s = parse_query("S=? [ goal ]");
  EXPECT_EQ(s.kind, Query::Kind::SteadyState);
}

TEST(QueryParser, Rejections) {
  EXPECT_THROW(parse_query("Qmax=? [ F goal ]"), ParseError);
  EXPECT_THROW(parse_query("Pmax=? [ F<=ten goal ]"), ParseError);
  EXPECT_THROW(parse_query("Pmax=? [ F goal"), ParseError);
  EXPECT_THROW(parse_query("Tmax=? [ up U goal ]"), ParseError);
  EXPECT_THROW(parse_query("P=? [ up U[1,2] goal ]"), ParseError);
  EXPECT_THROW(parse_query("Pmax=? [ \"unterminated ]"), ParseError);
}

// ---------------------------------------------------------- evaluation

/// 0 --(choice: good 3/4 to goal, bad never)--> ..., uniform rate 4.
Ctmdp choice_model() {
  CtmdpBuilder b;
  b.ensure_states(3);
  b.set_initial(0);
  b.begin_transition(0, "good");
  b.add_rate(2, 3.0);
  b.add_rate(1, 1.0);
  b.begin_transition(0, "bad");
  b.add_rate(1, 4.0);
  b.begin_transition(1, "back");
  b.add_rate(0, 4.0);
  b.begin_transition(2, "stay");
  b.add_rate(2, 4.0);
  return b.build();
}

LabelSet choice_labels() {
  LabelSet labels(3);
  labels.define("goal", {false, false, true});
  labels.define("start", {true, false, false});
  return labels;
}

TEST(Evaluate, CtmdpBoundedMatchesDirectCall) {
  const Ctmdp c = choice_model();
  const LabelSet labels = choice_labels();
  const auto via_query = check(c, labels, "Pmax=? [ F<=1 goal ]");
  const auto direct = timed_reachability(c, labels.mask("goal"), 1.0);
  EXPECT_NEAR(via_query.value, direct.values[0], 1e-12);
}

TEST(Evaluate, CtmdpUnboundedMaxIsOne) {
  const Ctmdp c = choice_model();
  const auto r = check(c, choice_labels(), "Pmax=? [ F goal ]");
  EXPECT_NEAR(r.value, 1.0, 1e-9);
  const auto rmin = check(c, choice_labels(), "Pmin=? [ F goal ]");
  EXPECT_NEAR(rmin.value, 0.0, 1e-9);
}

TEST(Evaluate, CtmdpBoundedUntilRespectsLeftLabel) {
  // start U<=t goal: leaving `start` (i.e. visiting state 1) loses.
  const Ctmdp c = choice_model();
  const auto constrained = check(c, choice_labels(), "Pmax=? [ start U<=1 goal ]");
  const auto free_form = check(c, choice_labels(), "Pmax=? [ F<=1 goal ]");
  EXPECT_LT(constrained.value, free_form.value);
  EXPECT_GT(constrained.value, 0.0);
}

TEST(Evaluate, CtmdpExpectedTime) {
  const Ctmdp c = choice_model();
  const auto r = check(c, choice_labels(), "Tmin=? [ F goal ]");
  // Best policy: "good" repeatedly; success chance 3/4 per jump, mean jump
  // time 1/4 -> expected jumps 4/3 ... with returns through state 1.
  EXPECT_TRUE(std::isfinite(r.value));
  EXPECT_GT(r.value, 0.0);
  const auto rmax = check(c, choice_labels(), "Tmax=? [ F goal ]");
  EXPECT_TRUE(std::isinf(rmax.value));  // "bad" forever avoids the goal
}

TEST(Evaluate, CtmdpRejectsCtmcOnlyQueries) {
  const Ctmdp c = choice_model();
  EXPECT_THROW(check(c, choice_labels(), "P=? [ F[1,2] goal ]"), ModelError);
  EXPECT_THROW(check(c, choice_labels(), "S=? [ goal ]"), ModelError);
}

TEST(Evaluate, LabelErrors) {
  const Ctmdp c = choice_model();
  EXPECT_THROW(check(c, choice_labels(), "Pmax=? [ F<=1 nolabel ]"), ModelError);
  LabelSet wrong(2);
  EXPECT_THROW(check(c, wrong, "Pmax=? [ F<=1 goal ]"), ModelError);
  LabelSet l(3);
  EXPECT_THROW(l.define("true", {true, true, true}), ModelError);
  EXPECT_THROW(l.define("goal", {true}), ModelError);
}

// --------------------------------------------------------- CTMC queries

Ctmc two_state_chain(double lambda, double mu) {
  CtmcBuilder b(2);
  b.ensure_states(2);
  b.set_initial(0);
  b.add_transition(0, lambda, 1);
  b.add_transition(1, mu, 0);
  return b.build();
}

TEST(Evaluate, CtmcBoundedReachability) {
  const Ctmc c = two_state_chain(0.5, 0.0001);
  LabelSet labels(2);
  labels.define("down", {false, true});
  const auto r = check(c, labels, "P=? [ F<=2 down ]");
  EXPECT_NEAR(r.value, 1.0 - std::exp(-0.5 * 2.0), 1e-5);
}

TEST(Evaluate, CtmcIntervalQuery) {
  const Ctmc c = two_state_chain(1.0, 0.5);
  LabelSet labels(2);
  labels.define("down", {false, true});
  const auto point = check(c, labels, "P=? [ F[2,2] down ]");
  const double expected = 1.0 / 1.5 * (1.0 - std::exp(-1.5 * 2.0));
  EXPECT_NEAR(point.value, expected, 1e-6);
}

TEST(Evaluate, CtmcUnboundedAndExpectedTime) {
  const Ctmc c = two_state_chain(0.25, 1.0);
  LabelSet labels(2);
  labels.define("down", {false, true});
  EXPECT_NEAR(check(c, labels, "Pmax=? [ F down ]").value, 1.0, 1e-9);
  EXPECT_NEAR(check(c, labels, "Tmax=? [ F down ]").value, 4.0, 1e-6);
}

TEST(Evaluate, CtmcSteadyState) {
  const Ctmc c = two_state_chain(1.0, 3.0);
  LabelSet labels(2);
  labels.define("down", {false, true});
  const auto r = check(c, labels, "S=? [ down ]");
  EXPECT_NEAR(r.value, 0.25, 1e-8);
}

TEST(Evaluate, CtmcBoundedUntil) {
  // Three states: 0 -> 1 -> 2; "left" excludes 1, so goal 2 is unreachable
  // without leaving left.
  CtmcBuilder b(3);
  b.ensure_states(3);
  b.set_initial(0);
  b.add_transition(0, 1.0, 1);
  b.add_transition(1, 1.0, 2);
  const Ctmc c = b.build();
  LabelSet labels(3);
  labels.define("left", {true, false, true});
  labels.define("goal", {false, false, true});
  EXPECT_DOUBLE_EQ(check(c, labels, "P=? [ left U<=10 goal ]").value, 0.0);
  EXPECT_GT(check(c, labels, "P=? [ F<=10 goal ]").value, 0.9);
}

}  // namespace
}  // namespace unicon
