file(REMOVE_RECURSE
  "CMakeFiles/unicon_ftwc.dir/components.cpp.o"
  "CMakeFiles/unicon_ftwc.dir/components.cpp.o.d"
  "CMakeFiles/unicon_ftwc.dir/compositional.cpp.o"
  "CMakeFiles/unicon_ftwc.dir/compositional.cpp.o.d"
  "CMakeFiles/unicon_ftwc.dir/ctmc_variant.cpp.o"
  "CMakeFiles/unicon_ftwc.dir/ctmc_variant.cpp.o.d"
  "CMakeFiles/unicon_ftwc.dir/direct.cpp.o"
  "CMakeFiles/unicon_ftwc.dir/direct.cpp.o.d"
  "CMakeFiles/unicon_ftwc.dir/parameters.cpp.o"
  "CMakeFiles/unicon_ftwc.dir/parameters.cpp.o.d"
  "libunicon_ftwc.a"
  "libunicon_ftwc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unicon_ftwc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
