# Empty dependencies file for unicon_ftwc.
# This may be replaced when dependencies are built.
