file(REMOVE_RECURSE
  "libunicon_ftwc.a"
)
