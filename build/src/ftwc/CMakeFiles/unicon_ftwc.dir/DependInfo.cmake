
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ftwc/components.cpp" "src/ftwc/CMakeFiles/unicon_ftwc.dir/components.cpp.o" "gcc" "src/ftwc/CMakeFiles/unicon_ftwc.dir/components.cpp.o.d"
  "/root/repo/src/ftwc/compositional.cpp" "src/ftwc/CMakeFiles/unicon_ftwc.dir/compositional.cpp.o" "gcc" "src/ftwc/CMakeFiles/unicon_ftwc.dir/compositional.cpp.o.d"
  "/root/repo/src/ftwc/ctmc_variant.cpp" "src/ftwc/CMakeFiles/unicon_ftwc.dir/ctmc_variant.cpp.o" "gcc" "src/ftwc/CMakeFiles/unicon_ftwc.dir/ctmc_variant.cpp.o.d"
  "/root/repo/src/ftwc/direct.cpp" "src/ftwc/CMakeFiles/unicon_ftwc.dir/direct.cpp.o" "gcc" "src/ftwc/CMakeFiles/unicon_ftwc.dir/direct.cpp.o.d"
  "/root/repo/src/ftwc/parameters.cpp" "src/ftwc/CMakeFiles/unicon_ftwc.dir/parameters.cpp.o" "gcc" "src/ftwc/CMakeFiles/unicon_ftwc.dir/parameters.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/unicon_core.dir/DependInfo.cmake"
  "/root/repo/build/src/bisim/CMakeFiles/unicon_bisim.dir/DependInfo.cmake"
  "/root/repo/build/src/imc/CMakeFiles/unicon_imc.dir/DependInfo.cmake"
  "/root/repo/build/src/lts/CMakeFiles/unicon_lts.dir/DependInfo.cmake"
  "/root/repo/build/src/ctmdp/CMakeFiles/unicon_ctmdp.dir/DependInfo.cmake"
  "/root/repo/build/src/ctmc/CMakeFiles/unicon_ctmc.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/unicon_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
