# Empty compiler generated dependencies file for unicon_support.
# This may be replaced when dependencies are built.
