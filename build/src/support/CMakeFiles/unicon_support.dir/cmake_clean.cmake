file(REMOVE_RECURSE
  "CMakeFiles/unicon_support.dir/fox_glynn.cpp.o"
  "CMakeFiles/unicon_support.dir/fox_glynn.cpp.o.d"
  "CMakeFiles/unicon_support.dir/numerics.cpp.o"
  "CMakeFiles/unicon_support.dir/numerics.cpp.o.d"
  "CMakeFiles/unicon_support.dir/rng.cpp.o"
  "CMakeFiles/unicon_support.dir/rng.cpp.o.d"
  "CMakeFiles/unicon_support.dir/sparse.cpp.o"
  "CMakeFiles/unicon_support.dir/sparse.cpp.o.d"
  "CMakeFiles/unicon_support.dir/symbols.cpp.o"
  "CMakeFiles/unicon_support.dir/symbols.cpp.o.d"
  "libunicon_support.a"
  "libunicon_support.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unicon_support.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
