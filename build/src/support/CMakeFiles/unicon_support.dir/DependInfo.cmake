
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/support/fox_glynn.cpp" "src/support/CMakeFiles/unicon_support.dir/fox_glynn.cpp.o" "gcc" "src/support/CMakeFiles/unicon_support.dir/fox_glynn.cpp.o.d"
  "/root/repo/src/support/numerics.cpp" "src/support/CMakeFiles/unicon_support.dir/numerics.cpp.o" "gcc" "src/support/CMakeFiles/unicon_support.dir/numerics.cpp.o.d"
  "/root/repo/src/support/rng.cpp" "src/support/CMakeFiles/unicon_support.dir/rng.cpp.o" "gcc" "src/support/CMakeFiles/unicon_support.dir/rng.cpp.o.d"
  "/root/repo/src/support/sparse.cpp" "src/support/CMakeFiles/unicon_support.dir/sparse.cpp.o" "gcc" "src/support/CMakeFiles/unicon_support.dir/sparse.cpp.o.d"
  "/root/repo/src/support/symbols.cpp" "src/support/CMakeFiles/unicon_support.dir/symbols.cpp.o" "gcc" "src/support/CMakeFiles/unicon_support.dir/symbols.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
