file(REMOVE_RECURSE
  "libunicon_support.a"
)
