file(REMOVE_RECURSE
  "CMakeFiles/unicon_ctmc.dir/ctmc.cpp.o"
  "CMakeFiles/unicon_ctmc.dir/ctmc.cpp.o.d"
  "CMakeFiles/unicon_ctmc.dir/phase_type.cpp.o"
  "CMakeFiles/unicon_ctmc.dir/phase_type.cpp.o.d"
  "CMakeFiles/unicon_ctmc.dir/steady_state.cpp.o"
  "CMakeFiles/unicon_ctmc.dir/steady_state.cpp.o.d"
  "CMakeFiles/unicon_ctmc.dir/transient.cpp.o"
  "CMakeFiles/unicon_ctmc.dir/transient.cpp.o.d"
  "libunicon_ctmc.a"
  "libunicon_ctmc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unicon_ctmc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
