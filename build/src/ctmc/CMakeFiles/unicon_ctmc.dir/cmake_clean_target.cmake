file(REMOVE_RECURSE
  "libunicon_ctmc.a"
)
