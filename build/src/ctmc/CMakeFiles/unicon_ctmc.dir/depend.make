# Empty dependencies file for unicon_ctmc.
# This may be replaced when dependencies are built.
