file(REMOVE_RECURSE
  "CMakeFiles/unicon_ctmdp.dir/ctmdp.cpp.o"
  "CMakeFiles/unicon_ctmdp.dir/ctmdp.cpp.o.d"
  "CMakeFiles/unicon_ctmdp.dir/reachability.cpp.o"
  "CMakeFiles/unicon_ctmdp.dir/reachability.cpp.o.d"
  "CMakeFiles/unicon_ctmdp.dir/scheduler.cpp.o"
  "CMakeFiles/unicon_ctmdp.dir/scheduler.cpp.o.d"
  "CMakeFiles/unicon_ctmdp.dir/simulate.cpp.o"
  "CMakeFiles/unicon_ctmdp.dir/simulate.cpp.o.d"
  "CMakeFiles/unicon_ctmdp.dir/unbounded.cpp.o"
  "CMakeFiles/unicon_ctmdp.dir/unbounded.cpp.o.d"
  "libunicon_ctmdp.a"
  "libunicon_ctmdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unicon_ctmdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
