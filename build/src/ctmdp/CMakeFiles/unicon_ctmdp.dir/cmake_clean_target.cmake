file(REMOVE_RECURSE
  "libunicon_ctmdp.a"
)
