
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ctmdp/ctmdp.cpp" "src/ctmdp/CMakeFiles/unicon_ctmdp.dir/ctmdp.cpp.o" "gcc" "src/ctmdp/CMakeFiles/unicon_ctmdp.dir/ctmdp.cpp.o.d"
  "/root/repo/src/ctmdp/reachability.cpp" "src/ctmdp/CMakeFiles/unicon_ctmdp.dir/reachability.cpp.o" "gcc" "src/ctmdp/CMakeFiles/unicon_ctmdp.dir/reachability.cpp.o.d"
  "/root/repo/src/ctmdp/scheduler.cpp" "src/ctmdp/CMakeFiles/unicon_ctmdp.dir/scheduler.cpp.o" "gcc" "src/ctmdp/CMakeFiles/unicon_ctmdp.dir/scheduler.cpp.o.d"
  "/root/repo/src/ctmdp/simulate.cpp" "src/ctmdp/CMakeFiles/unicon_ctmdp.dir/simulate.cpp.o" "gcc" "src/ctmdp/CMakeFiles/unicon_ctmdp.dir/simulate.cpp.o.d"
  "/root/repo/src/ctmdp/unbounded.cpp" "src/ctmdp/CMakeFiles/unicon_ctmdp.dir/unbounded.cpp.o" "gcc" "src/ctmdp/CMakeFiles/unicon_ctmdp.dir/unbounded.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/support/CMakeFiles/unicon_support.dir/DependInfo.cmake"
  "/root/repo/build/src/ctmc/CMakeFiles/unicon_ctmc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
