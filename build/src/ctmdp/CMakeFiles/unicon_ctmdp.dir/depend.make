# Empty dependencies file for unicon_ctmdp.
# This may be replaced when dependencies are built.
