file(REMOVE_RECURSE
  "CMakeFiles/unicon_lts.dir/lts.cpp.o"
  "CMakeFiles/unicon_lts.dir/lts.cpp.o.d"
  "libunicon_lts.a"
  "libunicon_lts.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unicon_lts.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
