# Empty dependencies file for unicon_lts.
# This may be replaced when dependencies are built.
