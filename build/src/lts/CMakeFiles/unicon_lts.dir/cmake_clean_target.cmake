file(REMOVE_RECURSE
  "libunicon_lts.a"
)
