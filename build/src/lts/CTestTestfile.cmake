# CMake generated Testfile for 
# Source directory: /root/repo/src/lts
# Build directory: /root/repo/build/src/lts
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
