file(REMOVE_RECURSE
  "CMakeFiles/unicon_imc.dir/compose.cpp.o"
  "CMakeFiles/unicon_imc.dir/compose.cpp.o.d"
  "CMakeFiles/unicon_imc.dir/elapse.cpp.o"
  "CMakeFiles/unicon_imc.dir/elapse.cpp.o.d"
  "CMakeFiles/unicon_imc.dir/imc.cpp.o"
  "CMakeFiles/unicon_imc.dir/imc.cpp.o.d"
  "libunicon_imc.a"
  "libunicon_imc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unicon_imc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
