# Empty compiler generated dependencies file for unicon_imc.
# This may be replaced when dependencies are built.
