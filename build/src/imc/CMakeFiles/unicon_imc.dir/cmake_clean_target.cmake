file(REMOVE_RECURSE
  "libunicon_imc.a"
)
