file(REMOVE_RECURSE
  "CMakeFiles/unicon_core.dir/analysis.cpp.o"
  "CMakeFiles/unicon_core.dir/analysis.cpp.o.d"
  "CMakeFiles/unicon_core.dir/time_constraint.cpp.o"
  "CMakeFiles/unicon_core.dir/time_constraint.cpp.o.d"
  "CMakeFiles/unicon_core.dir/transform.cpp.o"
  "CMakeFiles/unicon_core.dir/transform.cpp.o.d"
  "libunicon_core.a"
  "libunicon_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unicon_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
