# Empty compiler generated dependencies file for unicon_core.
# This may be replaced when dependencies are built.
