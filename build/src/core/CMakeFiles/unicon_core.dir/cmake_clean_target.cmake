file(REMOVE_RECURSE
  "libunicon_core.a"
)
