# Empty compiler generated dependencies file for unicon_bisim.
# This may be replaced when dependencies are built.
