file(REMOVE_RECURSE
  "libunicon_bisim.a"
)
