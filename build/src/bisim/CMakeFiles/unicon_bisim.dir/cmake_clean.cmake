file(REMOVE_RECURSE
  "CMakeFiles/unicon_bisim.dir/bisimulation.cpp.o"
  "CMakeFiles/unicon_bisim.dir/bisimulation.cpp.o.d"
  "CMakeFiles/unicon_bisim.dir/partition.cpp.o"
  "CMakeFiles/unicon_bisim.dir/partition.cpp.o.d"
  "libunicon_bisim.a"
  "libunicon_bisim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unicon_bisim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
