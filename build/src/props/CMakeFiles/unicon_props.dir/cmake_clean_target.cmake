file(REMOVE_RECURSE
  "libunicon_props.a"
)
