# Empty compiler generated dependencies file for unicon_props.
# This may be replaced when dependencies are built.
