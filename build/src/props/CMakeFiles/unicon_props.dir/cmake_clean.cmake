file(REMOVE_RECURSE
  "CMakeFiles/unicon_props.dir/property.cpp.o"
  "CMakeFiles/unicon_props.dir/property.cpp.o.d"
  "libunicon_props.a"
  "libunicon_props.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unicon_props.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
