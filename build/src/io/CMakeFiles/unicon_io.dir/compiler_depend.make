# Empty compiler generated dependencies file for unicon_io.
# This may be replaced when dependencies are built.
