file(REMOVE_RECURSE
  "CMakeFiles/unicon_io.dir/dot.cpp.o"
  "CMakeFiles/unicon_io.dir/dot.cpp.o.d"
  "CMakeFiles/unicon_io.dir/tra.cpp.o"
  "CMakeFiles/unicon_io.dir/tra.cpp.o.d"
  "libunicon_io.a"
  "libunicon_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unicon_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
