file(REMOVE_RECURSE
  "libunicon_io.a"
)
