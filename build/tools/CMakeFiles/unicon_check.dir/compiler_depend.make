# Empty compiler generated dependencies file for unicon_check.
# This may be replaced when dependencies are built.
