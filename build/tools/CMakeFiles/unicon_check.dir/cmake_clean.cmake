file(REMOVE_RECURSE
  "CMakeFiles/unicon_check.dir/unicon_check.cpp.o"
  "CMakeFiles/unicon_check.dir/unicon_check.cpp.o.d"
  "unicon_check"
  "unicon_check.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unicon_check.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
