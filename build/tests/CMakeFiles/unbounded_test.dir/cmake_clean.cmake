file(REMOVE_RECURSE
  "CMakeFiles/unbounded_test.dir/unbounded_test.cpp.o"
  "CMakeFiles/unbounded_test.dir/unbounded_test.cpp.o.d"
  "unbounded_test"
  "unbounded_test.pdb"
  "unbounded_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unbounded_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
