file(REMOVE_RECURSE
  "CMakeFiles/ftwc_test.dir/ftwc_test.cpp.o"
  "CMakeFiles/ftwc_test.dir/ftwc_test.cpp.o.d"
  "ftwc_test"
  "ftwc_test.pdb"
  "ftwc_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftwc_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
