# Empty compiler generated dependencies file for ftwc_test.
# This may be replaced when dependencies are built.
