file(REMOVE_RECURSE
  "CMakeFiles/unicon_testutil.dir/test_util.cpp.o"
  "CMakeFiles/unicon_testutil.dir/test_util.cpp.o.d"
  "libunicon_testutil.a"
  "libunicon_testutil.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/unicon_testutil.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
