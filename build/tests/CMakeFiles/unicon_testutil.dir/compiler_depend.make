# Empty compiler generated dependencies file for unicon_testutil.
# This may be replaced when dependencies are built.
