file(REMOVE_RECURSE
  "libunicon_testutil.a"
)
