
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ctmc_test.cpp" "tests/CMakeFiles/ctmc_test.dir/ctmc_test.cpp.o" "gcc" "tests/CMakeFiles/ctmc_test.dir/ctmc_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/tests/CMakeFiles/unicon_testutil.dir/DependInfo.cmake"
  "/root/repo/build/src/ctmc/CMakeFiles/unicon_ctmc.dir/DependInfo.cmake"
  "/root/repo/build/src/imc/CMakeFiles/unicon_imc.dir/DependInfo.cmake"
  "/root/repo/build/src/lts/CMakeFiles/unicon_lts.dir/DependInfo.cmake"
  "/root/repo/build/src/ctmdp/CMakeFiles/unicon_ctmdp.dir/DependInfo.cmake"
  "/root/repo/build/src/support/CMakeFiles/unicon_support.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
