# Empty compiler generated dependencies file for props_test.
# This may be replaced when dependencies are built.
