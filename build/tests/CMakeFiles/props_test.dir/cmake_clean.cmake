file(REMOVE_RECURSE
  "CMakeFiles/props_test.dir/props_test.cpp.o"
  "CMakeFiles/props_test.dir/props_test.cpp.o.d"
  "props_test"
  "props_test.pdb"
  "props_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/props_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
