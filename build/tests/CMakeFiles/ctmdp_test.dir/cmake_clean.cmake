file(REMOVE_RECURSE
  "CMakeFiles/ctmdp_test.dir/ctmdp_test.cpp.o"
  "CMakeFiles/ctmdp_test.dir/ctmdp_test.cpp.o.d"
  "ctmdp_test"
  "ctmdp_test.pdb"
  "ctmdp_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctmdp_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
