# Empty dependencies file for ctmdp_test.
# This may be replaced when dependencies are built.
