file(REMOVE_RECURSE
  "CMakeFiles/elapse_test.dir/elapse_test.cpp.o"
  "CMakeFiles/elapse_test.dir/elapse_test.cpp.o.d"
  "elapse_test"
  "elapse_test.pdb"
  "elapse_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/elapse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
