# Empty dependencies file for elapse_test.
# This may be replaced when dependencies are built.
