file(REMOVE_RECURSE
  "CMakeFiles/bisim_test.dir/bisim_test.cpp.o"
  "CMakeFiles/bisim_test.dir/bisim_test.cpp.o.d"
  "bisim_test"
  "bisim_test.pdb"
  "bisim_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bisim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
