# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/support_test[1]_include.cmake")
include("/root/repo/build/tests/lts_test[1]_include.cmake")
include("/root/repo/build/tests/ctmc_test[1]_include.cmake")
include("/root/repo/build/tests/phase_type_test[1]_include.cmake")
include("/root/repo/build/tests/imc_test[1]_include.cmake")
include("/root/repo/build/tests/compose_test[1]_include.cmake")
include("/root/repo/build/tests/elapse_test[1]_include.cmake")
include("/root/repo/build/tests/bisim_test[1]_include.cmake")
include("/root/repo/build/tests/transform_test[1]_include.cmake")
include("/root/repo/build/tests/ctmdp_test[1]_include.cmake")
include("/root/repo/build/tests/reachability_test[1]_include.cmake")
include("/root/repo/build/tests/unbounded_test[1]_include.cmake")
include("/root/repo/build/tests/steady_state_test[1]_include.cmake")
include("/root/repo/build/tests/props_test[1]_include.cmake")
include("/root/repo/build/tests/simulate_test[1]_include.cmake")
include("/root/repo/build/tests/scheduler_test[1]_include.cmake")
include("/root/repo/build/tests/ftwc_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/integration_test[1]_include.cmake")
