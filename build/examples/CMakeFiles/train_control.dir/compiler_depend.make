# Empty compiler generated dependencies file for train_control.
# This may be replaced when dependencies are built.
