file(REMOVE_RECURSE
  "CMakeFiles/train_control.dir/train_control.cpp.o"
  "CMakeFiles/train_control.dir/train_control.cpp.o.d"
  "train_control"
  "train_control.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_control.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
