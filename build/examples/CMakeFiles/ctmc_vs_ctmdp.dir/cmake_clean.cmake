file(REMOVE_RECURSE
  "CMakeFiles/ctmc_vs_ctmdp.dir/ctmc_vs_ctmdp.cpp.o"
  "CMakeFiles/ctmc_vs_ctmdp.dir/ctmc_vs_ctmdp.cpp.o.d"
  "ctmc_vs_ctmdp"
  "ctmc_vs_ctmdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ctmc_vs_ctmdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
