# Empty compiler generated dependencies file for ctmc_vs_ctmdp.
# This may be replaced when dependencies are built.
