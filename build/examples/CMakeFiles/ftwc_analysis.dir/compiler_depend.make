# Empty compiler generated dependencies file for ftwc_analysis.
# This may be replaced when dependencies are built.
