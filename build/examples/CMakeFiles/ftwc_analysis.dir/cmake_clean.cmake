file(REMOVE_RECURSE
  "CMakeFiles/ftwc_analysis.dir/ftwc_analysis.cpp.o"
  "CMakeFiles/ftwc_analysis.dir/ftwc_analysis.cpp.o.d"
  "ftwc_analysis"
  "ftwc_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ftwc_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
