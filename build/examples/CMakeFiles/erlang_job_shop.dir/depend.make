# Empty dependencies file for erlang_job_shop.
# This may be replaced when dependencies are built.
