file(REMOVE_RECURSE
  "CMakeFiles/erlang_job_shop.dir/erlang_job_shop.cpp.o"
  "CMakeFiles/erlang_job_shop.dir/erlang_job_shop.cpp.o.d"
  "erlang_job_shop"
  "erlang_job_shop.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/erlang_job_shop.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
