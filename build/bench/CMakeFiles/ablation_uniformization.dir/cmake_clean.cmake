file(REMOVE_RECURSE
  "CMakeFiles/ablation_uniformization.dir/ablation_uniformization.cpp.o"
  "CMakeFiles/ablation_uniformization.dir/ablation_uniformization.cpp.o.d"
  "ablation_uniformization"
  "ablation_uniformization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ablation_uniformization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
