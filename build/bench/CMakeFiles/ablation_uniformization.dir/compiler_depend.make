# Empty compiler generated dependencies file for ablation_uniformization.
# This may be replaced when dependencies are built.
