file(REMOVE_RECURSE
  "CMakeFiles/table1_ftwc.dir/table1_ftwc.cpp.o"
  "CMakeFiles/table1_ftwc.dir/table1_ftwc.cpp.o.d"
  "table1_ftwc"
  "table1_ftwc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table1_ftwc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
