# Empty dependencies file for table1_ftwc.
# This may be replaced when dependencies are built.
