file(REMOVE_RECURSE
  "CMakeFiles/fig4_ctmc_vs_ctmdp.dir/fig4_ctmc_vs_ctmdp.cpp.o"
  "CMakeFiles/fig4_ctmc_vs_ctmdp.dir/fig4_ctmc_vs_ctmdp.cpp.o.d"
  "fig4_ctmc_vs_ctmdp"
  "fig4_ctmc_vs_ctmdp.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_ctmc_vs_ctmdp.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
