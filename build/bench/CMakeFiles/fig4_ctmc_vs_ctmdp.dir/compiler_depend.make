# Empty compiler generated dependencies file for fig4_ctmc_vs_ctmdp.
# This may be replaced when dependencies are built.
