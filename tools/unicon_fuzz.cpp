// unicon_fuzz — differential fuzzing driver for the analysis pipeline.
//
// Usage:
//   unicon_fuzz [--seeds N] [--base-seed S] [--seed S] [--time T] [--eps E]
//               [--tol D] [--mc-runs N] [--no-shrink] [--mutate NAME]
//               [--out DIR] [--self-check] [-v]
//
// Per seed, five model families are generated and every optimized code path
// is cross-checked against the independent oracles of src/testing (see
// DESIGN.md, "Testing & differential verification").  Exit code 0 iff every
// check of every seed passed.
//
//   --seed S       replay a single seed (equivalent to --base-seed S
//                  --seeds 1); combine with --out to dump its models
//   --mutate NAME  inject a deliberate solver bug (perturb-value,
//                  swap-objective, coarse-poisson, stale-goal) — the run
//                  must then FAIL, which --self-check automates
//   --self-check   verify the driver catches every mutation on a small
//                  corpus, then run the clean corpus
//   --backend B    force the solver backend (serial, simd, simd-portable;
//                  default auto = UNICON_BACKEND env or serial) in every
//                  differential solve — run the self-check once per backend
//                  to differentially certify each kernel implementation
//   --out DIR      write shrunk counterexample models (.imc/.ctmdp/.tra +
//                  .lab + replay note) into DIR
//   --lang         fuzz the UNI language frontend instead: random generated
//                  models are round-tripped print -> parse -> check -> build
//                  and both builds must agree exactly (see lang/fuzz.hpp)
//   --faults       run the fault-injection harness instead: seeded budget
//                  cancellations, allocation failures, NaN poisoning and
//                  file corruption, asserting every fault yields a correct
//                  result, a sound partial result, or a typed error (see
//                  testing/fault_injection.hpp); --threads sets the worker
//                  count of the guarded solves
//   --dft          run the dynamic-fault-tree differential instead: per seed
//                  a random Galileo tree is lowered through the production
//                  pipeline (compose/minimize/transform/Algorithm 1, sup and
//                  inf) and checked against the independent brute-force
//                  product-enumeration oracle (testing/dft_oracle.hpp),
//                  plus thread-count bit-identity; with --self-check the
//                  perturb-value and swap-objective mutations must be caught
//   --server       run the analysis-server robustness harness instead: per
//                  seed a valid JSONL request stream is mutated (bit flips,
//                  truncation, NUL bytes, garbage, pathological nesting,
//                  oversized lines, unknown/mistyped fields) and replayed
//                  through a live session — the session must answer every
//                  untouched request bit-identically to a clean replay and
//                  re-synchronize past every mutation; then the chaos
//                  scenarios inject fault plans (cancel-mid-sweep, alloc
//                  failure, NaN poisoning, worker death), torn and pristine
//                  cache snapshots, and overload + drain into live services
//                  (see testing/server_fuzz.hpp); --out sets the snapshot
//                  scratch directory
//   --batch        run the multi-horizon differential instead: per seed a
//                  random CTMDP (sup and inf) and CTMC are solved through
//                  timed_reachability_batch on a random bound set (unsorted,
//                  duplicates, zeros) and each horizon is checked bitwise
//                  against its independent single-t solve plus the dense
//                  oracle; seed shrinking, --out and --self-check work as in
//                  normal mode
//   --truncation   run the truncation differential instead: per seed a
//                  random CTMDP (sup and inf) and CTMC are solved at a short
//                  and a long horizon (lambda*t = 1500, so the Lyapunov
//                  certificate engages) under every truncation provider
//                  (fox-glynn, lyapunov, auto) with convergence locking on
//                  and off; locking must be bitwise invisible, providers
//                  must agree within tolerance, and every variant must match
//                  the dense oracle; seed shrinking, --out and --self-check
//                  work as in normal mode
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "lang/fuzz.hpp"
#include "support/backend.hpp"
#include "support/errors.hpp"
#include "support/telemetry.hpp"
#include "testing/dft_oracle.hpp"
#include "testing/differential.hpp"
#include "testing/fault_injection.hpp"
#include "testing/server_fuzz.hpp"

using namespace unicon;
using namespace unicon::testing;

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: unicon_fuzz [--seeds N] [--base-seed S] [--seed S] [--time T]\n"
               "                   [--eps E] [--tol D] [--mc-runs N] [--no-shrink]\n"
               "                   [--mutate perturb-value|swap-objective|coarse-poisson|"
               "stale-goal]\n"
               "                   [--out DIR] [--self-check] [--lang] [--faults] [--batch]\n"
               "                   [--truncation] [--dft] [--server]\n"
               "                   [--backend auto|serial|simd|simd-portable]\n"
               "                   [--threads N] [-v]\n");
  std::exit(2);
}

int run_fault_mode(const DifferentialConfig& config, unsigned threads, bool verbose) {
  FaultConfig fault_config;
  fault_config.num_seeds = config.num_seeds;
  fault_config.base_seed = config.base_seed;
  fault_config.time = config.time;
  fault_config.epsilon = config.epsilon;
  fault_config.tolerance = config.tolerance;
  fault_config.threads = threads;
  fault_config.backend = config.backend;
  fault_config.artifact_dir = config.artifact_dir;
  const FaultLogFn log = [](const std::string& line) { std::printf("%s\n", line.c_str()); };
  Stopwatch timer;
  const FaultReport report = run_fault_injection(fault_config, verbose ? log : FaultLogFn{});
  std::printf("%llu seeds, %llu checks, %llu faults injected, %zu failures\n",
              static_cast<unsigned long long>(report.seeds_run),
              static_cast<unsigned long long>(report.checks_run),
              static_cast<unsigned long long>(report.faults_injected), report.failures.size());
  for (const FaultFailure& f : report.failures) {
    std::printf("FAIL seed %llu [%s]: %s\n", static_cast<unsigned long long>(f.seed),
                f.scenario.c_str(), f.message.c_str());
    for (const std::string& path : f.artifacts) std::printf("  artifact: %s\n", path.c_str());
  }
  std::printf("%.1f s\n", timer.seconds());
  return report.ok() ? 0 : 1;
}

int run_server_mode(const DifferentialConfig& config, bool verbose) {
  ServerFuzzConfig server_config;
  server_config.num_seeds = config.num_seeds;
  server_config.base_seed = config.base_seed;
  if (!config.artifact_dir.empty()) server_config.scratch_dir = config.artifact_dir;
  const ServerFuzzLogFn log = [](const ServerFuzzFailure& f) {
    std::printf("FAIL seed %llu [%s]: %s\n", static_cast<unsigned long long>(f.seed),
                f.scenario.c_str(), f.message.c_str());
  };
  Stopwatch timer;

  std::printf("wire-protocol mutation fuzz:\n");
  const ServerFuzzReport wire = run_server_fuzz(server_config, log);
  std::printf("%llu seeds, %llu checks, %llu mutations, %zu failures\n",
              static_cast<unsigned long long>(wire.seeds_run),
              static_cast<unsigned long long>(wire.checks_run),
              static_cast<unsigned long long>(wire.faults_injected), wire.failures.size());

  std::printf("chaos scenarios:\n");
  const ServerFuzzReport chaos = run_server_chaos(server_config, log);
  std::printf("%llu seeds, %llu checks, %llu faults injected, %zu failures\n",
              static_cast<unsigned long long>(chaos.seeds_run),
              static_cast<unsigned long long>(chaos.checks_run),
              static_cast<unsigned long long>(chaos.faults_injected), chaos.failures.size());

  (void)verbose;  // failures always print; there is no extra per-seed chatter
  std::printf("%.1f s\n", timer.seconds());
  return wire.ok() && chaos.ok() ? 0 : 1;
}

int run_lang_mode(const DifferentialConfig& config, bool verbose) {
  lang::LangFuzzConfig lang_config;
  lang_config.num_seeds = config.num_seeds;
  lang_config.base_seed = config.base_seed;
  lang_config.time = config.time;
  lang_config.epsilon = config.epsilon;
  const lang::LangLogFn log = [](const std::string& line) { std::printf("%s\n", line.c_str()); };
  Stopwatch timer;
  const lang::LangFuzzReport report =
      lang::run_lang_fuzz(lang_config, verbose ? log : lang::LangLogFn{});
  std::printf("%llu seeds, %llu checks, %zu failures\n",
              static_cast<unsigned long long>(report.seeds_run),
              static_cast<unsigned long long>(report.checks_run), report.failures.size());
  for (const lang::LangFuzzFailure& f : report.failures) {
    std::printf("FAIL seed %llu: %s\n", static_cast<unsigned long long>(f.seed),
                f.message.c_str());
  }
  std::printf("%.1f s\n", timer.seconds());
  return report.ok() ? 0 : 1;
}

int report_dft_outcome(const DftFuzzReport& report) {
  std::printf("%llu seeds, %llu checks, %zu failures\n",
              static_cast<unsigned long long>(report.seeds_run),
              static_cast<unsigned long long>(report.checks_run), report.failures.size());
  for (const DftFuzzFailure& f : report.failures) {
    std::printf("FAIL seed %llu [dft, shrink level %d]: %s\n%s",
                static_cast<unsigned long long>(f.seed), f.level, f.message.c_str(),
                f.source.c_str());
    for (const std::string& path : f.artifacts) std::printf("  artifact: %s\n", path.c_str());
  }
  return report.ok() ? 0 : 1;
}

int run_dft_mode(const DifferentialConfig& config, bool run_self_check, bool verbose) {
  DftFuzzConfig dft_config;
  dft_config.num_seeds = config.num_seeds;
  dft_config.base_seed = config.base_seed;
  dft_config.time = config.time;
  dft_config.epsilon = config.epsilon;
  dft_config.tolerance = config.tolerance;
  dft_config.backend = config.backend;
  dft_config.mutation = config.mutation;
  dft_config.shrink = config.shrink;
  dft_config.artifact_dir = config.artifact_dir;
  const DftLogFn log = [](const std::string& line) { std::printf("%s\n", line.c_str()); };
  Stopwatch timer;
  if (run_self_check) {
    dft_config.num_seeds = 6;
    dft_config.shrink = false;
    dft_config.artifact_dir.clear();
    for (const Mutation m : {Mutation::PerturbValue, Mutation::SwapObjective}) {
      dft_config.mutation = m;
      if (run_dft_fuzz(dft_config).ok()) {
        std::printf("self-check FAILED: mutation %s not caught on %llu dft seeds\n",
                    mutation_name(m), static_cast<unsigned long long>(dft_config.num_seeds));
        return 1;
      }
      std::printf("self-check: mutation %s caught\n", mutation_name(m));
    }
    // The clean run below still honours the requested corpus shape.
    dft_config.mutation = Mutation::None;
    dft_config.num_seeds = config.num_seeds;
    dft_config.shrink = config.shrink;
    dft_config.artifact_dir = config.artifact_dir;
  }
  const DftFuzzReport report = run_dft_fuzz(dft_config, verbose ? log : DftLogFn{});
  const int exit_code = report_dft_outcome(report);
  std::printf("%.1f s\n", timer.seconds());
  return exit_code;
}

int report_outcome(const DifferentialReport& report) {
  std::printf("%llu seeds, %llu checks, %zu failures\n",
              static_cast<unsigned long long>(report.seeds_run),
              static_cast<unsigned long long>(report.checks_run), report.failures.size());
  for (const Failure& f : report.failures) {
    std::printf("FAIL seed %llu [%s, shrink level %d]: %s\n",
                static_cast<unsigned long long>(f.seed), f.scenario.c_str(), f.level,
                f.message.c_str());
    for (const std::string& path : f.artifacts) std::printf("  artifact: %s\n", path.c_str());
  }
  return report.ok() ? 0 : 1;
}

/// Every mutation must be caught on a small corpus, and the clean run of the
/// same corpus must pass — the mutation-testing acceptance gate.
int self_check(DifferentialConfig config) {
  config.num_seeds = 8;
  config.shrink = false;
  config.artifact_dir.clear();
  for (const Mutation m : {Mutation::PerturbValue, Mutation::SwapObjective,
                           Mutation::CoarsePoisson, Mutation::StaleGoal}) {
    config.mutation = m;
    const DifferentialReport report = run_differential(config);
    if (report.ok()) {
      std::printf("self-check FAILED: mutation %s not caught on %llu seeds\n", mutation_name(m),
                  static_cast<unsigned long long>(config.num_seeds));
      return 1;
    }
    std::printf("self-check: mutation %s caught (%zu failing seeds)\n", mutation_name(m),
                report.failures.size());
  }
  config.mutation = Mutation::None;
  const DifferentialReport clean = run_differential(config);
  if (!clean.ok()) {
    std::printf("self-check FAILED: clean corpus has failures\n");
    return report_outcome(clean);
  }
  std::printf("self-check passed\n");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  DifferentialConfig config;
  bool verbose = false;
  bool run_self_check = false;
  bool lang_mode = false;
  bool fault_mode = false;
  bool dft_mode = false;
  bool server_mode = false;
  unsigned threads = 2;

  for (int i = 1; i < argc; ++i) {
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--seeds") == 0) {
      config.num_seeds = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--base-seed") == 0) {
      config.base_seed = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--seed") == 0) {
      config.base_seed = std::strtoull(value(), nullptr, 10);
      config.num_seeds = 1;
      verbose = true;
    } else if (std::strcmp(argv[i], "--time") == 0) {
      config.time = std::strtod(value(), nullptr);
    } else if (std::strcmp(argv[i], "--eps") == 0) {
      config.epsilon = std::strtod(value(), nullptr);
    } else if (std::strcmp(argv[i], "--tol") == 0) {
      config.tolerance = std::strtod(value(), nullptr);
    } else if (std::strcmp(argv[i], "--mc-runs") == 0) {
      config.mc_runs = std::strtoull(value(), nullptr, 10);
    } else if (std::strcmp(argv[i], "--no-shrink") == 0) {
      config.shrink = false;
    } else if (std::strcmp(argv[i], "--mutate") == 0) {
      const auto mutation = parse_mutation(value());
      if (!mutation) usage();
      config.mutation = *mutation;
    } else if (std::strcmp(argv[i], "--out") == 0) {
      config.artifact_dir = value();
    } else if (std::strcmp(argv[i], "--self-check") == 0) {
      run_self_check = true;
    } else if (std::strcmp(argv[i], "--lang") == 0) {
      lang_mode = true;
    } else if (std::strcmp(argv[i], "--faults") == 0) {
      fault_mode = true;
    } else if (std::strcmp(argv[i], "--batch") == 0) {
      config.batch = true;
    } else if (std::strcmp(argv[i], "--truncation") == 0) {
      config.truncation = true;
    } else if (std::strcmp(argv[i], "--dft") == 0) {
      dft_mode = true;
    } else if (std::strcmp(argv[i], "--server") == 0) {
      server_mode = true;
    } else if (std::strcmp(argv[i], "--backend") == 0) {
      try {
        config.backend = parse_backend(value());
      } catch (const ModelError& e) {
        std::fprintf(stderr, "%s\n", e.what());
        usage();
      }
    } else if (std::strcmp(argv[i], "--threads") == 0) {
      threads = static_cast<unsigned>(std::strtoul(value(), nullptr, 10));
    } else if (std::strcmp(argv[i], "-v") == 0) {
      verbose = true;
    } else {
      usage();
    }
  }

  if (server_mode) return run_server_mode(config, verbose);
  if (fault_mode) return run_fault_mode(config, threads, verbose);
  if (lang_mode) return run_lang_mode(config, verbose);
  if (dft_mode) return run_dft_mode(config, run_self_check, verbose);
  if (run_self_check) return self_check(config);

  const LogFn log = [](const std::string& line) { std::printf("%s\n", line.c_str()); };
  Stopwatch timer;
  const DifferentialReport report = run_differential(config, verbose ? log : LogFn{});
  const int exit_code = report_outcome(report);
  std::printf("%.1f s\n", timer.seconds());
  if (config.mutation != Mutation::None) {
    std::printf("note: mutation %s active — a failing run is the expected outcome\n",
                mutation_name(config.mutation));
  }
  return exit_code;
}
