#!/usr/bin/env bash
# Smoke-checks every shipped UNI model: runs `unicon_check model` for each
# line of examples/models/SMOKE and compares the reported probability with
# the checked-in expected value.  Fails on a nonzero exit, a missing
# probability line, drift beyond the tolerance, or a model file with no
# SMOKE coverage at all.
#
# Usage: tools/examples_smoke.sh <build-dir> [tolerance]
set -u

builddir=${1:?usage: tools/examples_smoke.sh <build-dir> [tolerance]}
tol=${2:-1e-6}

repo=$(cd "$(dirname "$0")/.." && pwd)
models="$repo/examples/models"
check="$builddir/tools/unicon_check"

if [ ! -x "$check" ]; then
  echo "examples_smoke: $check not found or not executable" >&2
  exit 2
fi

fail=0

# Every shipped model must be exercised by at least one SMOKE line; a new
# .uni file without expectations should fail loudly, not get skipped.
for f in "$models"/*.uni; do
  base=$(basename "$f")
  if ! grep -q "^$base " "$models/SMOKE"; then
    echo "FAIL $base has no entry in examples/models/SMOKE" >&2
    fail=1
  fi
done

while read -r file t goal expected flags; do
  case $file in '' | '#'*) continue ;; esac

  # shellcheck disable=SC2086  # flags are intentionally word-split
  out=$("$check" model "$models/$file" "$t" --goal "$goal" $flags 2>&1)
  status=$?
  prob=$(printf '%s\n' "$out" |
    sed -n 's/^\(sup\|inf\) P(reach .* within .*) = \([0-9.eE+-]*\)$/\2/p')

  label="$file t=$t goal=$goal${flags:+ $flags}"
  if [ $status -ne 0 ] || [ -z "$prob" ]; then
    echo "FAIL $label: exit=$status"
    printf '%s\n' "$out" | sed 's/^/  | /'
    fail=1
    continue
  fi

  if awk -v a="$prob" -v b="$expected" -v tol="$tol" \
    'BEGIN { d = a - b; if (d < 0) d = -d; exit !(d <= tol) }'; then
    echo "ok   $label: $prob"
  else
    echo "FAIL $label: got $prob, want $expected (tolerance $tol)"
    fail=1
  fi
done <"$models/SMOKE"

exit $fail
