#!/usr/bin/env bash
# Kill-and-warm-restart smoke for the analysis server's snapshot path.
#
# Four legs over the golden JSONL session (answers are compared on their
# "results" lines only, with cache_hit normalized — a warm cache answers
# hit where a cold one answers miss, but the numbers must be bitwise
# identical):
#
#   A cold    serve with --snapshot; the session's shutdown drains and
#             publishes the snapshot atomically.
#   B warm    serve again from the published snapshot; answers must be
#             byte-identical to the cold run and stderr must announce the
#             warm start.
#   C torn    stomp bytes inside the snapshot; the server must detect the
#             corruption, degrade to a cold start and still answer
#             byte-identically.
#   D kill    serve off a FIFO, kill -9 mid-session; the previously
#             published snapshot must be untouched (write-temp-then-rename
#             never exposes a torn file) and a fresh warm restart must
#             still answer byte-identically.
#
# Usage: tools/server_restart_smoke.sh <build-dir>
set -u

builddir=${1:?usage: tools/server_restart_smoke.sh <build-dir>}
repo=$(cd "$(dirname "$0")/.." && pwd)
serve="$builddir/tools/unicon_serve"
session="$repo/tests/golden/server_session.jsonl"

if [ ! -x "$serve" ]; then
  echo "server_restart_smoke: $serve not found or not executable" >&2
  exit 2
fi

work=$(mktemp -d)
trap 'rm -rf "$work"' EXIT
snap="$work/cache.snap"
fail=0

note() { echo "server_restart_smoke: $*"; }
flunk() {
  echo "FAIL $*" >&2
  fail=1
}

answers() { grep '"results"' "$1" | sed 's/"cache_hit":[a-z]*/"cache_hit":_/g'; }

# --- leg A: cold run publishes a snapshot -------------------------------
"$serve" --no-timing --snapshot "$snap" <"$session" >"$work/cold.out" 2>"$work/cold.err"
status=$?
[ $status -eq 0 ] || flunk "leg A: cold run exited $status"
[ -s "$snap" ] || flunk "leg A: no snapshot published at $snap"
grep -q 'snapshot saved' "$work/cold.err" || flunk "leg A: shutdown did not report the snapshot save"
head -n 1 "$snap" | grep -q '^unicon-cache-v1$' || flunk "leg A: snapshot missing the format magic"
answers "$work/cold.out" >"$work/cold.answers"
[ -s "$work/cold.answers" ] || flunk "leg A: cold run produced no answers"

# --- leg B: warm restart is bit-identical -------------------------------
"$serve" --no-timing --snapshot "$snap" <"$session" >"$work/warm.out" 2>"$work/warm.err"
[ $? -eq 0 ] || flunk "leg B: warm run exited nonzero"
grep -q 'warm start' "$work/warm.err" || flunk "leg B: server did not announce the warm start"
grep -q ' 0 corrupt' "$work/warm.err" || flunk "leg B: pristine snapshot reported corruption"
answers "$work/warm.out" >"$work/warm.answers"
if ! diff -u "$work/cold.answers" "$work/warm.answers" >&2; then
  flunk "leg B: warm answers differ from the cold run"
fi
cp "$snap" "$work/published.snap"

# --- leg C: torn snapshot is detected and degrades to cold start --------
printf 'CORRUPTCORRUPT!!' | dd of="$snap" bs=1 seek=24 conv=notrunc 2>/dev/null
"$serve" --no-timing --snapshot "$snap" <"$session" >"$work/torn.out" 2>"$work/torn.err"
[ $? -eq 0 ] || flunk "leg C: server crashed on a torn snapshot"
if grep -q ' 0 corrupt' "$work/torn.err" && ! grep -q 'truncated' "$work/torn.err"; then
  flunk "leg C: corruption was not detected"
fi
answers "$work/torn.out" >"$work/torn.answers"
if ! diff -u "$work/cold.answers" "$work/torn.answers" >&2; then
  flunk "leg C: answers after a torn snapshot differ from the cold run"
fi

# --- leg D: kill -9 mid-session leaves the published snapshot intact ----
cp "$work/published.snap" "$snap"
fifo="$work/requests.fifo"
mkfifo "$fifo"
"$serve" --no-timing --snapshot "$snap" <"$fifo" >"$work/kill.out" 2>"$work/kill.err" &
pid=$!
disown "$pid" 2>/dev/null || true  # keep bash's "Killed" job notice out of the logs
exec 3>"$fifo"
head -n 1 "$session" >&3
answered=0
for _ in $(seq 1 100); do
  if grep -q '"results"' "$work/kill.out" 2>/dev/null; then
    answered=1
    break
  fi
  sleep 0.1
done
[ $answered -eq 1 ] || flunk "leg D: server never answered over the FIFO"
kill -9 "$pid" 2>/dev/null
for _ in $(seq 1 100); do
  kill -0 "$pid" 2>/dev/null || break
  sleep 0.1
done
exec 3>&-
if ! cmp -s "$work/published.snap" "$snap"; then
  flunk "leg D: kill -9 modified the published snapshot"
fi
if ls "$snap".tmp* >/dev/null 2>&1; then
  flunk "leg D: a torn temp file was left behind"
fi
"$serve" --no-timing --snapshot "$snap" <"$session" >"$work/after.out" 2>"$work/after.err"
[ $? -eq 0 ] || flunk "leg D: warm restart after kill exited nonzero"
grep -q 'warm start' "$work/after.err" || flunk "leg D: restart after kill was not warm"
answers "$work/after.out" >"$work/after.answers"
if ! diff -u "$work/cold.answers" "$work/after.answers" >&2; then
  flunk "leg D: answers after kill + warm restart differ from the cold run"
fi

if [ $fail -eq 0 ]; then
  note "all legs passed (cold, warm, torn, kill -9 + warm restart)"
fi
exit $fail
