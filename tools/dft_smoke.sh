#!/usr/bin/env bash
# Smoke-checks every shipped Galileo DFT model: runs `unicon_check dft`
# for each line of examples/dft/SMOKE and compares the reported
# unreliability with the checked-in expected value.  Fails on a nonzero
# exit, a missing unreliability line, drift beyond the tolerance, or a
# model file with no SMOKE coverage at all.
#
# Usage: tools/dft_smoke.sh <build-dir> [tolerance]
set -u

builddir=${1:?usage: tools/dft_smoke.sh <build-dir> [tolerance]}
tol=${2:-1e-6}

repo=$(cd "$(dirname "$0")/.." && pwd)
models="$repo/examples/dft"
check="$builddir/tools/unicon_check"

if [ ! -x "$check" ]; then
  echo "dft_smoke: $check not found or not executable" >&2
  exit 2
fi

fail=0

# Every shipped tree must be exercised by at least one SMOKE line; a new
# .dft file without expectations should fail loudly, not get skipped.
for f in "$models"/*.dft; do
  base=$(basename "$f")
  if ! grep -q "^$base " "$models/SMOKE"; then
    echo "FAIL $base has no entry in examples/dft/SMOKE" >&2
    fail=1
  fi
done

while read -r file t objective expected; do
  case $file in '' | '#'*) continue ;; esac

  out=$("$check" dft "$models/$file" "$t" --objective "$objective" 2>&1)
  status=$?
  prob=$(printf '%s\n' "$out" |
    sed -n 's/^\(sup\|inf\) unreliability(.*) = \([0-9.eE+-]*\)$/\2/p')

  label="$file t=$t objective=$objective"
  if [ $status -ne 0 ] || [ -z "$prob" ]; then
    echo "FAIL $label: exit=$status"
    printf '%s\n' "$out" | sed 's/^/  | /'
    fail=1
    continue
  fi

  if awk -v a="$prob" -v b="$expected" -v tol="$tol" \
    'BEGIN { d = a - b; if (d < 0) d = -d; exit !(d <= tol) }'; then
    echo "ok   $label: $prob"
  else
    echo "FAIL $label: got $prob, want $expected (tolerance $tol)"
    fail=1
  fi
done <"$models/SMOKE"

exit $fail
