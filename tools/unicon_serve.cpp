// unicon_serve — the analysis server.
//
// Usage:
//   unicon_serve [--socket PATH] [--workers N] [--max-pending N]
//                [--max-batch N] [--cache-budget BYTES[K|M|G]]
//                [--snapshot PATH] [--max-line BYTES[K|M|G]]
//                [--io-timeout SECONDS] [--default-deadline SECONDS]
//                [--enable-fault-plans] [--no-timing] [--client NAME]
//
// Speaks newline-delimited JSON (one request/response object per line, see
// server/server.hpp for the schema; failures reuse the unicon_check
// --json-errors error object).  By default a single session is served over
// stdin/stdout — `unicon_serve < queries.jsonl` is a batch evaluator, and
// the golden-replay CI job diffs exactly that (with --no-timing so the
// "seconds" fields stay constant).  With --socket an AF_UNIX listener is
// bound at PATH and every connection gets its own session thread; all
// sessions share one AnalysisService, so the model cache, fair-share
// queue, coalescing and admission control work across clients.
//
// Robustness controls:
//   --snapshot PATH     warm-start the model cache from PATH at boot
//                       (missing/corrupt files degrade to a cold start)
//                       and persist it atomically on shutdown.
//   --max-line BYTES    per-request line cap (default 8M); longer lines
//                       are answered with a parse error, never buffered.
//   --io-timeout SECS   socket read/write timeout — connections idle (or
//                       too slow to accept their responses) for this long
//                       are evicted.  0 = never (default).
//   --default-deadline  wall-clock cap applied to every query that does
//                       not set its own "deadline", so one hostile request
//                       cannot pin a worker forever.  0 = off (default).
//   --enable-fault-plans
//                       accept chaos fault-plan fields (fault_alloc_nth,
//                       fault_poison_step, fault_throw) in query
//                       envelopes.  Off by default: fault plans are for
//                       chaos testing a server you own, not something an
//                       untrusted client may send — without the flag such
//                       requests are answered with a parse error.
//
// SIGTERM/SIGINT start a graceful drain: stop accepting connections and
// requests, finish in-flight queries, flush the cache snapshot and a final
// stats line to stderr, then exit; a second signal exits immediately
// (status 128+signo).
#include <cerrno>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <istream>
#include <memory>
#include <mutex>
#include <ostream>
#include <streambuf>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/time.h>
#include <sys/un.h>
#include <unistd.h>

#include "server/server.hpp"
#include "server/service.hpp"
#include "support/errors.hpp"

using namespace unicon;

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: unicon_serve [--socket PATH] [--workers N] [--max-pending N]\n"
               "                    [--max-batch N] [--cache-budget BYTES[K|M|G]]\n"
               "                    [--snapshot PATH] [--max-line BYTES[K|M|G]]\n"
               "                    [--io-timeout SECONDS] [--default-deadline SECONDS]\n"
               "                    [--enable-fault-plans] [--no-timing] [--client NAME]\n");
  std::exit(2);
}

std::uint64_t parse_count(const char* arg, const char* what) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(arg, &end, 10);
  if (end == arg || *end != '\0' || value == 0) {
    std::fprintf(stderr, "error: %s must be a positive integer, got '%s'\n", what, arg);
    std::exit(2);
  }
  return value;
}

double parse_seconds(const char* arg, const char* what) {
  char* end = nullptr;
  const double value = std::strtod(arg, &end);
  if (end == arg || *end != '\0' || !(value >= 0.0)) {
    std::fprintf(stderr, "error: %s must be a non-negative number of seconds, got '%s'\n", what,
                 arg);
    std::exit(2);
  }
  return value;
}

std::uint64_t parse_bytes(const char* arg, const char* what) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(arg, &end, 10);
  std::uint64_t scale = 1;
  if (end != arg && *end != '\0' && end[1] == '\0') {
    switch (*end) {
      case 'K': case 'k': scale = 1ull << 10; break;
      case 'M': case 'm': scale = 1ull << 20; break;
      case 'G': case 'g': scale = 1ull << 30; break;
      default: end = const_cast<char*>(arg); break;
    }
  }
  if (end == arg || (*end != '\0' && scale == 1) || value == 0) {
    std::fprintf(stderr, "error: %s must be a positive byte count, got '%s'\n", what, arg);
    std::exit(2);
  }
  return static_cast<std::uint64_t>(value) * scale;
}

/// Minimal bidirectional streambuf over a connected socket fd, so
/// run_session's iostream interface works unchanged for --socket clients.
/// A read/write that fails (EOF, error, or an SO_RCVTIMEO/SO_SNDTIMEO
/// expiry on an evicted slow client) surfaces as stream EOF, which ends
/// the session cleanly.
class FdStreambuf : public std::streambuf {
 public:
  explicit FdStreambuf(int fd) : fd_(fd) {
    setg(in_, in_, in_);
    setp(out_, out_ + sizeof out_);
  }
  ~FdStreambuf() override { sync(); }

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    const ssize_t n = ::read(fd_, in_, sizeof in_);
    if (n <= 0) return traits_type::eof();
    setg(in_, in_, in_ + n);
    return traits_type::to_int_type(*gptr());
  }

  int_type overflow(int_type c) override {
    if (sync() != 0) return traits_type::eof();
    if (!traits_type::eq_int_type(c, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(c);
      pbump(1);
    }
    return traits_type::not_eof(c);
  }

  int sync() override {
    const char* p = pbase();
    while (p < pptr()) {
      const ssize_t n = ::write(fd_, p, static_cast<std::size_t>(pptr() - p));
      if (n <= 0) return -1;
      p += n;
    }
    setp(out_, out_ + sizeof out_);
    return 0;
  }

 private:
  int fd_;
  char in_[4096];
  char out_[4096];
};

volatile std::sig_atomic_t g_stop = 0;
extern "C" void handle_stop_signal(int sig) {
  // Second signal: the drain is wedged (or the operator is impatient) —
  // exit right now with the conventional 128+signo status.  _exit is
  // async-signal-safe; nothing to unwind that a kill -9 would preserve.
  if (g_stop != 0) ::_exit(128 + sig);
  g_stop = 1;
}

/// sigaction without SA_RESTART: a SIGTERM/SIGINT must interrupt the
/// blocking accept()/read() with EINTR so the drain starts immediately —
/// glibc's std::signal would set SA_RESTART and the process would only
/// notice the signal at the next client byte.
void install_stop_handlers() {
  struct sigaction action{};
  action.sa_handler = handle_stop_signal;
  sigemptyset(&action.sa_mask);
  action.sa_flags = 0;
  ::sigaction(SIGINT, &action, nullptr);
  ::sigaction(SIGTERM, &action, nullptr);
}

/// Open connection fds, so the drain can shutdown(SHUT_RD) every session's
/// read side: blocked readers wake with EOF, flush their outstanding async
/// responses over the still-open write side, and exit.
struct ConnectionRegistry {
  std::mutex mutex;
  std::vector<int> fds;

  void add(int fd) {
    std::lock_guard<std::mutex> lock(mutex);
    fds.push_back(fd);
  }
  void remove(int fd) {
    std::lock_guard<std::mutex> lock(mutex);
    for (auto it = fds.begin(); it != fds.end(); ++it) {
      if (*it == fd) {
        fds.erase(it);
        break;
      }
    }
  }
  void shutdown_reads() {
    std::lock_guard<std::mutex> lock(mutex);
    for (const int fd : fds) ::shutdown(fd, SHUT_RD);
  }
};

struct ServeConfig {
  std::string snapshot_path;
  std::size_t max_line_bytes = std::size_t{8} << 20;
  double io_timeout = 0.0;
  bool timing = true;
  bool allow_fault_plans = false;
};

void apply_io_timeout(int fd, double seconds) {
  if (seconds <= 0.0) return;
  timeval tv{};
  tv.tv_sec = static_cast<time_t>(seconds);
  tv.tv_usec = static_cast<suseconds_t>((seconds - static_cast<double>(tv.tv_sec)) * 1e6);
  ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof tv);
  ::setsockopt(fd, SOL_SOCKET, SO_SNDTIMEO, &tv, sizeof tv);
}

void log_stats(const server::ServiceStats& stats) {
  std::fprintf(stderr,
               "unicon_serve: final stats submitted=%llu completed=%llu rejected=%llu "
               "cancelled=%llu batches=%llu coalesced=%llu cache_entries=%zu "
               "cache_hits=%llu cache_misses=%llu\n",
               static_cast<unsigned long long>(stats.submitted),
               static_cast<unsigned long long>(stats.completed),
               static_cast<unsigned long long>(stats.rejected),
               static_cast<unsigned long long>(stats.cancelled),
               static_cast<unsigned long long>(stats.batches),
               static_cast<unsigned long long>(stats.coalesced), stats.cache.entries,
               static_cast<unsigned long long>(stats.cache.source_hits + stats.cache.canonical_hits),
               static_cast<unsigned long long>(stats.cache.misses));
}

/// Graceful shutdown tail shared by both serving modes: refuse new work,
/// wait out in-flight jobs, persist the cache, flush final telemetry.
void drain_and_flush(server::AnalysisService& service, const ServeConfig& config) {
  service.begin_drain();
  service.wait_drained();
  if (!config.snapshot_path.empty()) {
    try {
      const server::SnapshotStats saved = service.save_cache(config.snapshot_path);
      std::fprintf(stderr, "unicon_serve: snapshot saved to %s (%zu entries)\n",
                   config.snapshot_path.c_str(), saved.entries_written);
    } catch (const std::exception& e) {
      std::fprintf(stderr, "unicon_serve: snapshot save failed: %s\n", e.what());
    }
  }
  log_stats(service.stats());
}

int serve_socket(const std::string& path, server::AnalysisService& service,
                 const ServeConfig& config) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("socket");
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    std::fprintf(stderr, "error: socket path too long: %s\n", path.c_str());
    return 2;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listener, 16) != 0) {
    std::perror("bind/listen");
    ::close(listener);
    return 1;
  }
  std::fprintf(stderr, "unicon_serve: listening on %s\n", path.c_str());

  ConnectionRegistry registry;
  std::vector<std::thread> sessions;
  unsigned next_client = 0;
  while (g_stop == 0) {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) {
      if (errno == EINTR && g_stop == 0) continue;  // unrelated signal
      break;  // stop signal or listener error
    }
    if (g_stop != 0) {
      ::close(conn);
      break;
    }
    apply_io_timeout(conn, config.io_timeout);
    registry.add(conn);
    const std::string client = "conn-" + std::to_string(next_client++);
    sessions.emplace_back([conn, client, &service, &config, &registry] {
      FdStreambuf buffer(conn);
      std::istream in(&buffer);
      std::ostream out(&buffer);
      server::SessionOptions options;
      options.client = client;
      options.timing = config.timing;
      options.max_line_bytes = config.max_line_bytes;
      options.stop = &g_stop;
      options.allow_fault_plans = config.allow_fault_plans;
      server::run_session(in, out, service, options);
      registry.remove(conn);
      ::close(conn);
    });
  }
  ::close(listener);
  ::unlink(path.c_str());
  // Drain: sessions blocked in read() wake with EOF, answer what they owe
  // over the still-open write side, and exit; the service refuses new
  // submissions meanwhile.
  service.begin_drain();
  registry.shutdown_reads();
  for (std::thread& session : sessions) session.join();
  drain_and_flush(service, config);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string client = "stdin";
  server::ServiceOptions options;
  options.workers = 2;
  ServeConfig config;

  for (int i = 1; i < argc; ++i) {
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--socket") == 0) {
      socket_path = value();
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      options.workers = static_cast<unsigned>(parse_count(value(), "--workers"));
    } else if (std::strcmp(argv[i], "--max-pending") == 0) {
      options.max_pending = parse_count(value(), "--max-pending");
    } else if (std::strcmp(argv[i], "--max-batch") == 0) {
      options.max_batch = parse_count(value(), "--max-batch");
    } else if (std::strcmp(argv[i], "--cache-budget") == 0) {
      options.cache_budget = parse_bytes(value(), "--cache-budget");
    } else if (std::strcmp(argv[i], "--snapshot") == 0) {
      config.snapshot_path = value();
    } else if (std::strcmp(argv[i], "--max-line") == 0) {
      config.max_line_bytes = parse_bytes(value(), "--max-line");
    } else if (std::strcmp(argv[i], "--io-timeout") == 0) {
      config.io_timeout = parse_seconds(value(), "--io-timeout");
    } else if (std::strcmp(argv[i], "--default-deadline") == 0) {
      options.default_deadline = parse_seconds(value(), "--default-deadline");
    } else if (std::strcmp(argv[i], "--enable-fault-plans") == 0) {
      config.allow_fault_plans = true;
    } else if (std::strcmp(argv[i], "--no-timing") == 0) {
      config.timing = false;
    } else if (std::strcmp(argv[i], "--client") == 0) {
      client = value();
    } else {
      usage();
    }
  }

  install_stop_handlers();
  server::AnalysisService service(options);

  if (!config.snapshot_path.empty()) {
    const server::SnapshotStats loaded = service.load_cache(config.snapshot_path);
    if (loaded.entries_loaded > 0 || loaded.entries_corrupt > 0 || loaded.truncated) {
      std::fprintf(stderr,
                   "unicon_serve: warm start from %s: %zu entries, %zu aliases, "
                   "%zu corrupt record(s) skipped%s\n",
                   config.snapshot_path.c_str(), loaded.entries_loaded, loaded.aliases_loaded,
                   loaded.entries_corrupt, loaded.truncated ? " (snapshot truncated)" : "");
    }
  }

  if (!socket_path.empty()) return serve_socket(socket_path, service, config);

  server::SessionOptions session;
  session.client = client;
  session.timing = config.timing;
  session.max_line_bytes = config.max_line_bytes;
  session.stop = &g_stop;
  session.allow_fault_plans = config.allow_fault_plans;
  server::run_session(std::cin, std::cout, service, session);
  drain_and_flush(service, config);
  return 0;
}
