// unicon_serve — the analysis server.
//
// Usage:
//   unicon_serve [--socket PATH] [--workers N] [--max-pending N]
//                [--max-batch N] [--cache-budget BYTES[K|M|G]]
//                [--no-timing] [--client NAME]
//
// Speaks newline-delimited JSON (one request/response object per line, see
// server/server.hpp for the schema; failures reuse the unicon_check
// --json-errors error object).  By default a single session is served over
// stdin/stdout — `unicon_serve < queries.jsonl` is a batch evaluator, and
// the golden-replay CI job diffs exactly that (with --no-timing so the
// "seconds" fields stay constant).  With --socket an AF_UNIX listener is
// bound at PATH and every connection gets its own session thread; all
// sessions share one AnalysisService, so the model cache, fair-share
// queue, coalescing and admission control work across clients.
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <iostream>
#include <istream>
#include <memory>
#include <ostream>
#include <streambuf>
#include <string>
#include <thread>
#include <vector>

#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include "server/server.hpp"
#include "server/service.hpp"

using namespace unicon;

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: unicon_serve [--socket PATH] [--workers N] [--max-pending N]\n"
               "                    [--max-batch N] [--cache-budget BYTES[K|M|G]]\n"
               "                    [--no-timing] [--client NAME]\n");
  std::exit(2);
}

std::uint64_t parse_count(const char* arg, const char* what) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(arg, &end, 10);
  if (end == arg || *end != '\0' || value == 0) {
    std::fprintf(stderr, "error: %s must be a positive integer, got '%s'\n", what, arg);
    std::exit(2);
  }
  return value;
}

std::uint64_t parse_bytes(const char* arg) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(arg, &end, 10);
  std::uint64_t scale = 1;
  if (end != arg && *end != '\0' && end[1] == '\0') {
    switch (*end) {
      case 'K': case 'k': scale = 1ull << 10; break;
      case 'M': case 'm': scale = 1ull << 20; break;
      case 'G': case 'g': scale = 1ull << 30; break;
      default: end = const_cast<char*>(arg); break;
    }
  }
  if (end == arg || (*end != '\0' && scale == 1) || value == 0) {
    std::fprintf(stderr, "error: --cache-budget must be a positive byte count, got '%s'\n", arg);
    std::exit(2);
  }
  return static_cast<std::uint64_t>(value) * scale;
}

/// Minimal bidirectional streambuf over a connected socket fd, so
/// run_session's iostream interface works unchanged for --socket clients.
class FdStreambuf : public std::streambuf {
 public:
  explicit FdStreambuf(int fd) : fd_(fd) {
    setg(in_, in_, in_);
    setp(out_, out_ + sizeof out_);
  }
  ~FdStreambuf() override { sync(); }

 protected:
  int_type underflow() override {
    if (gptr() < egptr()) return traits_type::to_int_type(*gptr());
    const ssize_t n = ::read(fd_, in_, sizeof in_);
    if (n <= 0) return traits_type::eof();
    setg(in_, in_, in_ + n);
    return traits_type::to_int_type(*gptr());
  }

  int_type overflow(int_type c) override {
    if (sync() != 0) return traits_type::eof();
    if (!traits_type::eq_int_type(c, traits_type::eof())) {
      *pptr() = traits_type::to_char_type(c);
      pbump(1);
    }
    return traits_type::not_eof(c);
  }

  int sync() override {
    const char* p = pbase();
    while (p < pptr()) {
      const ssize_t n = ::write(fd_, p, static_cast<std::size_t>(pptr() - p));
      if (n <= 0) return -1;
      p += n;
    }
    setp(out_, out_ + sizeof out_);
    return 0;
  }

 private:
  int fd_;
  char in_[4096];
  char out_[4096];
};

volatile std::sig_atomic_t g_stop = 0;
extern "C" void handle_sigint(int) { g_stop = 1; }

int serve_socket(const std::string& path, server::AnalysisService& service, bool timing) {
  const int listener = ::socket(AF_UNIX, SOCK_STREAM, 0);
  if (listener < 0) {
    std::perror("socket");
    return 1;
  }
  sockaddr_un addr{};
  addr.sun_family = AF_UNIX;
  if (path.size() >= sizeof addr.sun_path) {
    std::fprintf(stderr, "error: socket path too long: %s\n", path.c_str());
    return 2;
  }
  std::strncpy(addr.sun_path, path.c_str(), sizeof addr.sun_path - 1);
  ::unlink(path.c_str());
  if (::bind(listener, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0 ||
      ::listen(listener, 16) != 0) {
    std::perror("bind/listen");
    ::close(listener);
    return 1;
  }
  std::fprintf(stderr, "unicon_serve: listening on %s\n", path.c_str());

  std::vector<std::thread> sessions;
  unsigned next_client = 0;
  while (g_stop == 0) {
    const int conn = ::accept(listener, nullptr, nullptr);
    if (conn < 0) break;  // interrupted (SIGINT) or listener error
    const std::string client = "conn-" + std::to_string(next_client++);
    sessions.emplace_back([conn, client, &service, timing] {
      FdStreambuf buffer(conn);
      std::istream in(&buffer);
      std::ostream out(&buffer);
      server::SessionOptions options;
      options.client = client;
      options.timing = timing;
      server::run_session(in, out, service, options);
      ::close(conn);
    });
  }
  ::close(listener);
  ::unlink(path.c_str());
  for (std::thread& session : sessions) session.join();
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string socket_path;
  std::string client = "stdin";
  server::ServiceOptions options;
  options.workers = 2;
  bool timing = true;

  for (int i = 1; i < argc; ++i) {
    const auto value = [&]() -> const char* {
      if (i + 1 >= argc) usage();
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--socket") == 0) {
      socket_path = value();
    } else if (std::strcmp(argv[i], "--workers") == 0) {
      options.workers = static_cast<unsigned>(parse_count(value(), "--workers"));
    } else if (std::strcmp(argv[i], "--max-pending") == 0) {
      options.max_pending = parse_count(value(), "--max-pending");
    } else if (std::strcmp(argv[i], "--max-batch") == 0) {
      options.max_batch = parse_count(value(), "--max-batch");
    } else if (std::strcmp(argv[i], "--cache-budget") == 0) {
      options.cache_budget = parse_bytes(value());
    } else if (std::strcmp(argv[i], "--no-timing") == 0) {
      timing = false;
    } else if (std::strcmp(argv[i], "--client") == 0) {
      client = value();
    } else {
      usage();
    }
  }

  std::signal(SIGINT, handle_sigint);
  server::AnalysisService service(options);

  if (!socket_path.empty()) return serve_socket(socket_path, service, timing);

  server::SessionOptions session;
  session.client = client;
  session.timing = timing;
  server::run_session(std::cin, std::cout, service, session);
  return 0;
}
