// unicon_check — command-line timed reachability.
//
// Usage:
//   unicon_check model <model.uni> <t> [--goal NAME] [--objective min|max]
//                [--eps E] [--early] [--no-minimize] [--export PREFIX]
//                [--export-scheduler PATH] [common]
//   unicon_check dft   <tree.dft> <t> [--objective min|max] [--eps E]
//                [--early] [--no-minimize] [--export-scheduler PATH] [common]
//   unicon_check ctmdp <model.ctmdp> <goal.lab> <t> [--objective min|max]
//                [--eps E] [--early] [--scheduler] [common]
//   unicon_check ctmc  <model.tra>   <goal.lab> <t> [--eps E] [--early]
//                [common]
//
// --min is a backward-compatible alias for --objective min.  The "dft" mode
// parses a Galileo-format dynamic fault tree, lowers it onto the IMC
// composition pipeline (src/dft/) and reports the unreliability bound
// sup/inf P(top event fails within t).  --export-scheduler writes the
// optimal step-dependent scheduler as a unicon-scheduler-v1 JSON artifact
// (see io/scheduler_json.hpp); it requires a single-bound converged solve.
//
// Batch mode (every kind): --times T1,T2,... answers several time bounds
// with ONE fused multi-horizon solve (the positional <t> is ignored).
// Each bound's value, residual bound and iteration counts are bit-identical
// to a separate single-bound run; the exit code is that of the first
// unconverged bound (0 when all converged).
//
// Common execution-control flags (every mode):
//   --backend NAME     compute backend for the solver sweeps: auto (default;
//                      honours UNICON_BACKEND, else serial), serial, simd,
//                      or simd-portable — see DESIGN.md Sec. 10
//   --truncation NAME  truncation-bound provider: auto (default; Lyapunov
//                      certificate on long horizons, Fox–Glynn otherwise),
//                      fox-glynn, or lyapunov — see DESIGN.md Sec. 14
//   --no-locking       disable on-the-fly convergence locking (values are
//                      bit-identical either way; this exists for A/B timing)
//   --deadline S       wall-clock budget in seconds
//   --mem-budget B     heap budget in bytes (K/M/G suffixes accepted)
//   --json-errors      machine-readable error/partial diagnostics on stderr
//   --telemetry PATH   write pipeline telemetry JSON to PATH ("-" = stderr);
//                      flushed on every exit path, so a budget-tripped run
//                      still emits its partial span tree
//
// The "model" mode drives the whole uniform-by-construction pipeline from a
// UNI source file: parse -> semantic check -> compose/elapse -> branching
// bisimulation minimization -> Sec. 4.1 transformation -> Algorithm 1.  The
// serialized-model modes consume the io library's formats (see io/tra.hpp);
// goal.lab marks goal states with the proposition "goal".  All modes print
// the optimal probability at the initial state plus solver statistics.
//
// Budgets and SIGINT cancel cooperatively through a RunGuard: the solvers
// return a partial value tagged with its status and a sound residual bound,
// structural stages stop with a typed BudgetError.  The process exit code
// is the stable ErrorCode of whatever ended the run (see support/errors.hpp;
// 0 = converged, 2 = usage, 20/21/22 = deadline/mem-budget/cancelled).
#include <cmath>
#include <csignal>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <memory>
#include <new>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "core/analysis.hpp"
#include "ctmc/transient.hpp"
#include "support/backend.hpp"
#include "ctmdp/reachability.hpp"
#include "ctmdp/scheduler.hpp"
#include "dft/lower.hpp"
#include "dft/sema.hpp"
#include "io/scheduler_json.hpp"
#include "io/tra.hpp"
#include "lang/build.hpp"
#include "lang/diagnostics.hpp"
#include "lang/parser.hpp"
#include "support/errors.hpp"
#include "support/run_guard.hpp"
#include "support/telemetry.hpp"

using namespace unicon;

namespace {

// File scope so the SIGINT handler can reach it; request_cancel is
// async-signal-safe (lock-free atomic stores only).
RunGuard g_guard;

extern "C" void handle_sigint(int) { g_guard.request_cancel(); }

/// Process-wide telemetry registry; armed (threaded into the pipeline and
/// flushed) only when --telemetry is given.
Telemetry g_telemetry;

/// Execution-control options shared by every mode.
struct GuardFlags {
  double deadline = 0.0;        // seconds; 0 = none
  std::uint64_t mem_budget = 0; // bytes; 0 = none
  bool json_errors = false;
  std::string telemetry_path;   // empty = telemetry off; "-" = stderr
  Backend backend = Backend::Auto;
  Truncation truncation = Truncation::Auto;
  bool locking = true;
  std::vector<double> times;    // non-empty = batch mode (--times)
};

/// The registry to thread through the pipeline: null when --telemetry was
/// not given, so the unobserved path stays branch-per-site cheap.
Telemetry* telemetry_of(const GuardFlags& flags) {
  return flags.telemetry_path.empty() ? nullptr : &g_telemetry;
}

/// Flushes the telemetry JSON on destruction — every exit path of a mode,
/// including exception unwinding (the stage spans RAII-close first, and
/// write_json_file emits still-open spans with elapsed-so-far time), so a
/// budget-tripped or failed run still writes a truthful partial tree.
struct TelemetryFlusher {
  explicit TelemetryFlusher(const GuardFlags& f) : flags(f) {}
  ~TelemetryFlusher() {
    if (!flags.telemetry_path.empty()) g_telemetry.write_json_file(flags.telemetry_path);
  }
  const GuardFlags& flags;
};

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: unicon_check model <model.uni> <t> [--goal NAME] [--objective min|max] "
               "[--eps E] [--early] [--no-minimize] [--export PREFIX] "
               "[--export-scheduler PATH] [common]\n"
               "       unicon_check dft   <tree.dft> <t> [--objective min|max] [--eps E] "
               "[--early] [--no-minimize] [--export-scheduler PATH] [common]\n"
               "       unicon_check ctmdp <model.ctmdp> <goal.lab> <t> [--objective min|max] "
               "[--eps E] [--early] [--scheduler] [common]\n"
               "       unicon_check ctmc  <model.tra>   <goal.lab> <t> [--eps E] [--early] "
               "[common]\n"
               "common: [--times T1,T2,...] [--backend auto|serial|simd|simd-portable] "
               "[--truncation auto|fox-glynn|lyapunov] [--no-locking] "
               "[--deadline S] [--mem-budget BYTES[K|M|G]] [--json-errors] "
               "[--telemetry PATH]\n");
  std::exit(2);
}

/// --objective value: "min"/"max" (the --min flag remains as an alias).
bool parse_objective_flag(const char* arg) {
  if (std::strcmp(arg, "min") == 0) return true;
  if (std::strcmp(arg, "max") == 0) return false;
  std::fprintf(stderr, "error: --objective must be 'min' or 'max', got '%s'\n", arg);
  std::exit(2);
}

/// Strict numeric argument parsing: the whole string must be a finite,
/// non-negative number (strtod's silent 0.0 on garbage hid typos before).
double parse_nonnegative(const char* arg, const char* what) {
  char* end = nullptr;
  const double value = std::strtod(arg, &end);
  if (end == arg || *end != '\0' || !std::isfinite(value) || value < 0.0) {
    std::fprintf(stderr, "error: %s must be a non-negative number, got '%s'\n", what, arg);
    std::exit(2);
  }
  return value;
}

double parse_positive(const char* arg, const char* what) {
  const double value = parse_nonnegative(arg, what);
  if (value == 0.0) {
    std::fprintf(stderr, "error: %s must be positive, got '%s'\n", what, arg);
    std::exit(2);
  }
  return value;
}

/// "64M" -> 64 << 20; bare numbers are bytes.
std::uint64_t parse_mem_budget(const char* arg) {
  char* end = nullptr;
  const unsigned long long value = std::strtoull(arg, &end, 10);
  std::uint64_t scale = 1;
  if (end != arg && *end != '\0' && end[1] == '\0') {
    switch (*end) {
      case 'K': case 'k': scale = 1ull << 10; break;
      case 'M': case 'm': scale = 1ull << 20; break;
      case 'G': case 'g': scale = 1ull << 30; break;
      default: end = const_cast<char*>(arg); break;
    }
  }
  if (end == arg || (*end != '\0' && scale == 1) || value == 0) {
    std::fprintf(stderr, "error: --mem-budget must be a positive byte count, got '%s'\n", arg);
    std::exit(2);
  }
  return static_cast<std::uint64_t>(value) * scale;
}

/// "0.5,2,8" -> {0.5, 2, 8}; every entry must be a non-negative number.
std::vector<double> parse_times(const char* arg) {
  std::vector<double> times;
  const std::string list = arg;
  std::size_t start = 0;
  while (start <= list.size()) {
    std::size_t comma = list.find(',', start);
    if (comma == std::string::npos) comma = list.size();
    const std::string token = list.substr(start, comma - start);
    times.push_back(parse_nonnegative(token.c_str(), "--times entry"));
    start = comma + 1;
  }
  return times;
}

/// Consumes a common flag at argv[i] (advancing i past its value) or
/// returns false so the caller can try its mode-specific flags.
bool parse_common_flag(int argc, char** argv, int& i, GuardFlags& flags) {
  if (std::strcmp(argv[i], "--times") == 0 && i + 1 < argc) {
    flags.times = parse_times(argv[++i]);
    return true;
  }
  if (std::strcmp(argv[i], "--deadline") == 0 && i + 1 < argc) {
    flags.deadline = parse_positive(argv[++i], "--deadline");
    return true;
  }
  if (std::strcmp(argv[i], "--mem-budget") == 0 && i + 1 < argc) {
    flags.mem_budget = parse_mem_budget(argv[++i]);
    return true;
  }
  if (std::strcmp(argv[i], "--json-errors") == 0) {
    flags.json_errors = true;
    return true;
  }
  if (std::strcmp(argv[i], "--telemetry") == 0 && i + 1 < argc) {
    flags.telemetry_path = argv[++i];
    return true;
  }
  if (std::strcmp(argv[i], "--backend") == 0 && i + 1 < argc) {
    try {
      flags.backend = parse_backend(argv[++i]);
    } catch (const Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      std::exit(2);
    }
    return true;
  }
  if (std::strcmp(argv[i], "--truncation") == 0 && i + 1 < argc) {
    try {
      flags.truncation = parse_truncation(argv[++i]);
    } catch (const Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      std::exit(2);
    }
    return true;
  }
  if (std::strcmp(argv[i], "--no-locking") == 0) {
    flags.locking = false;
    return true;
  }
  return false;
}

/// Printed after the iteration counts of a single-bound solve, only when
/// the Lyapunov provider was actually resolved (auto stays silent on the
/// Fox–Glynn path so historical output is unchanged).
void report_truncation(Truncation resolved, std::uint64_t k_lyapunov) {
  if (resolved != Truncation::Lyapunov) return;
  std::printf("truncation: lyapunov (certificate stop at step %llu)\n",
              static_cast<unsigned long long>(k_lyapunov));
}

using telemetry::json_escape;

/// Prints the error (JSON or plain) and returns its stable exit code.
int report_error(const Error& e, const GuardFlags& flags) {
  if (flags.json_errors) {
    std::fprintf(stderr, "{\"error\":{\"code\":\"%s\",\"exit\":%d,\"message\":\"%s\"}}\n",
                 error_code_name(e.code()), e.exit_code(), json_escape(e.what()).c_str());
  } else {
    std::fprintf(stderr, "error: %s\n", e.what());
  }
  return e.exit_code();
}

/// One row of a --times batch answer, normalized across solver kinds.
struct BoundSummary {
  double time = 0.0;
  double value = 0.0;
  std::uint64_t planned = 0;
  std::uint64_t executed = 0;
  RunStatus status = RunStatus::Converged;
  double residual = 0.0;
};

/// Batch-mode tail shared by every kind: one value line per bound, partial
/// diagnostics for unconverged bounds, exit code of the first unconverged
/// bound (0 when the whole batch converged).
int report_batch(const char* objective, const std::string& goal_desc,
                 const std::vector<BoundSummary>& bounds, const GuardFlags& flags) {
  int exit_code = 0;
  for (const BoundSummary& b : bounds) {
    std::printf("%s%sP(reach %s within %g) = %.10f   (iterations: %llu planned, %llu executed)\n",
                objective, objective[0] != '\0' ? " " : "", goal_desc.c_str(), b.time, b.value,
                static_cast<unsigned long long>(b.planned),
                static_cast<unsigned long long>(b.executed));
    if (b.status != RunStatus::Converged) {
      std::printf("  status: %s (partial result), residual bound: %.3e\n",
                  run_status_name(b.status), b.residual);
      if (flags.json_errors) {
        std::fprintf(stderr,
                     "{\"partial\":{\"time\":%.17g,\"status\":\"%s\",\"residual_bound\":%.17g}}\n",
                     b.time, run_status_name(b.status), b.residual);
      }
      if (exit_code == 0) exit_code = static_cast<int>(run_status_code(b.status));
    }
  }
  return exit_code;
}

/// Reports a budget-stopped partial solver result and returns the exit
/// code of its status (0 when the run actually converged).
int report_partial(RunStatus status, double residual_bound, const GuardFlags& flags) {
  if (status == RunStatus::Converged) return 0;
  std::printf("status: %s (partial result)\n", run_status_name(status));
  std::printf("residual bound: %.3e\n", residual_bound);
  if (flags.json_errors) {
    std::fprintf(stderr, "{\"partial\":{\"status\":\"%s\",\"residual_bound\":%.17g}}\n",
                 run_status_name(status), residual_bound);
  }
  return static_cast<int>(run_status_code(status));
}

/// Arms g_guard per the flags and opens the accounting scope a heap budget
/// needs.  SIGINT cancellation is armed unconditionally.  With --telemetry
/// the solver checkpoints also update live progress gauges, so a budget- or
/// signal-tripped run's flushed JSON records how far Algorithm 1 got.
std::unique_ptr<MemoryAccountingScope> arm_guard(const GuardFlags& flags) {
  std::signal(SIGINT, handle_sigint);
  if (flags.deadline > 0.0) g_guard.set_deadline(flags.deadline);
  if (!flags.telemetry_path.empty()) {
    g_guard.set_checkpoint(
        [](const RunCheckpoint& cp) {
          g_telemetry.gauge("checkpoint.step").set(static_cast<double>(cp.step));
          g_telemetry.gauge("checkpoint.planned").set(static_cast<double>(cp.planned));
          g_telemetry.gauge("checkpoint.residual_bound").set(cp.residual_bound);
        },
        32);
  }
  if (flags.mem_budget > 0) {
    g_guard.set_memory_budget(flags.mem_budget);
    return std::make_unique<MemoryAccountingScope>(g_guard);
  }
  return nullptr;
}

BitVector load_goal(const std::string& path, std::size_t num_states) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open goal file: " + path);
  return io::read_goal(in, num_states);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open model file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

/// Writes the extracted decision table of a converged single-bound solve as
/// a unicon-scheduler-v1 artifact.
void export_scheduler_artifact(const std::string& path, const UimcAnalysisResult& result,
                               Objective objective, double t, double eps) {
  if (result.reachability.status != RunStatus::Converged) {
    std::fprintf(stderr, "warning: solve did not converge, skipping scheduler export\n");
    return;
  }
  const io::SchedulerArtifact artifact =
      io::scheduler_artifact_from_result(result.reachability, objective, t, eps, result.value);
  std::ofstream out(path);
  if (!out) throw ParseError("cannot open scheduler output file: " + path);
  out << io::scheduler_to_json(artifact);
  std::printf("exported scheduler artifact (%llu steps x %llu states) to %s\n",
              static_cast<unsigned long long>(artifact.steps),
              static_cast<unsigned long long>(artifact.states), path.c_str());
}

int run_model(const std::string& path, double t, const std::string& goal_name, bool minimize_flag,
              bool minimize, double eps, bool early, const std::string& export_prefix,
              const std::string& scheduler_path, const GuardFlags& flags) {
  Stopwatch total;
  Telemetry* const tel = telemetry_of(flags);
  std::optional<Telemetry::Span> parse_span;
  if (tel != nullptr) parse_span.emplace(tel->span("parse"));
  const lang::Model ast = lang::parse_and_check(read_file(path), path);
  parse_span.reset();

  lang::BuildOptions build_options;
  build_options.guard = &g_guard;
  build_options.telemetry = tel;
  lang::BuiltModel built = lang::build_model(ast, build_options);
  std::printf("system: %zu states, %zu interactive + %zu Markov transitions, "
              "uniform rate %.6f (%zu leaves)\n",
              built.system.num_states(), built.system.num_interactive_transitions(),
              built.system.num_markov_transitions(), built.uniform_rate, built.num_leaves);
  if (minimize) {
    built = lang::minimize_model(built, &g_guard, tel);
    std::printf("minimized: %zu states, %zu interactive + %zu Markov transitions\n",
                built.system.num_states(), built.system.num_interactive_transitions(),
                built.system.num_markov_transitions());
  }

  if (!built.has_prop(goal_name)) {
    std::string available;
    for (const std::string& name : built.prop_names) {
      if (!available.empty()) available += ", ";
      available += name;
    }
    throw ModelError("model has no proposition '" + goal_name +
                     "' (available: " + (available.empty() ? "none" : available) + ")");
  }

  if (!export_prefix.empty()) {
    std::ofstream imc_out(export_prefix + ".imc");
    io::write_imc(imc_out, built.system);
    io::LabelMasks labels;
    for (std::size_t p = 0; p < built.prop_names.size(); ++p) {
      labels.emplace_back(built.prop_names[p], built.prop_masks[p]);
    }
    std::ofstream lab_out(export_prefix + ".lab");
    io::write_labels(lab_out, labels);
    std::printf("exported %s.imc and %s.lab\n", export_prefix.c_str(), export_prefix.c_str());
  }

  UimcAnalysisOptions options;
  options.reachability.epsilon = eps;
  options.reachability.objective = minimize_flag ? Objective::Minimize : Objective::Maximize;
  options.reachability.early_termination = early;
  options.reachability.backend = flags.backend;
  options.reachability.truncation = flags.truncation;
  options.reachability.locking = flags.locking;
  options.reachability.guard = &g_guard;
  options.reachability.telemetry = tel;
  options.reachability.extract_scheduler = !scheduler_path.empty();
  if (!flags.times.empty()) {
    if (!scheduler_path.empty()) {
      std::fprintf(stderr, "error: --export-scheduler requires a single time bound\n");
      std::exit(2);
    }
    const auto result =
        analyze_timed_reachability_batch(built.system, built.mask(goal_name), flags.times, options);
    std::printf("ctmdp: %zu states, %zu transitions\n", result.transformed.ctmdp.num_states(),
                result.transformed.ctmdp.num_transitions());
    std::vector<BoundSummary> bounds;
    for (std::size_t j = 0; j < flags.times.size(); ++j) {
      const auto& r = result.reachability[j];
      bounds.push_back({flags.times[j], result.values[j], r.iterations_planned,
                        r.iterations_executed, r.status, r.residual_bound});
    }
    const int exit_code = report_batch(minimize_flag ? "inf" : "sup", goal_name, bounds, flags);
    std::printf("%zu bounds in one batch solve, %.3f s total\n", flags.times.size(),
                total.seconds());
    return exit_code;
  }

  const auto result = analyze_timed_reachability(built.system, built.mask(goal_name), t, options);
  std::printf("ctmdp: %zu states, %zu transitions\n", result.transformed.ctmdp.num_states(),
              result.transformed.ctmdp.num_transitions());
  std::printf("%s P(reach %s within %g) = %.10f\n", minimize_flag ? "inf" : "sup",
              goal_name.c_str(), t, result.value);
  std::printf("iterations: %llu planned, %llu executed, %.3f s total\n",
              static_cast<unsigned long long>(result.reachability.iterations_planned),
              static_cast<unsigned long long>(result.reachability.iterations_executed),
              total.seconds());
  report_truncation(result.reachability.truncation, result.reachability.k_lyapunov);
  if (!scheduler_path.empty()) {
    export_scheduler_artifact(scheduler_path, result,
                              minimize_flag ? Objective::Minimize : Objective::Maximize, t, eps);
  }
  return report_partial(result.reachability.status, result.reachability.residual_bound, flags);
}

int run_dft(const std::string& path, double t, bool minimize_flag, bool minimize, double eps,
            bool early, const std::string& scheduler_path, const GuardFlags& flags) {
  Stopwatch total;
  Telemetry* const tel = telemetry_of(flags);
  std::optional<Telemetry::Span> parse_span;
  if (tel != nullptr) parse_span.emplace(tel->span("parse"));
  const dft::CheckedDft checked = dft::parse_and_check_dft(read_file(path), path);
  parse_span.reset();

  dft::LowerOptions lower_options;
  lower_options.guard = &g_guard;
  lower_options.telemetry = tel;
  lang::BuiltModel built = dft::lower_dft(checked, lower_options);
  std::printf("dft: %zu elements (%zu basic events), total failure rate %.6f\n",
              checked.ast.elements.size(), static_cast<std::size_t>(checked.num_basic_events),
              checked.total_rate);
  std::printf("system: %zu states, %zu interactive + %zu Markov transitions, "
              "uniform rate %.6f (%zu leaves)\n",
              built.system.num_states(), built.system.num_interactive_transitions(),
              built.system.num_markov_transitions(), built.uniform_rate, built.num_leaves);
  if (minimize) {
    built = lang::minimize_model(built, &g_guard, tel);
    std::printf("minimized: %zu states, %zu interactive + %zu Markov transitions\n",
                built.system.num_states(), built.system.num_interactive_transitions(),
                built.system.num_markov_transitions());
  }

  UimcAnalysisOptions options;
  options.reachability.epsilon = eps;
  options.reachability.objective = minimize_flag ? Objective::Minimize : Objective::Maximize;
  options.reachability.early_termination = early;
  options.reachability.backend = flags.backend;
  options.reachability.truncation = flags.truncation;
  options.reachability.locking = flags.locking;
  options.reachability.guard = &g_guard;
  options.reachability.telemetry = tel;
  options.reachability.extract_scheduler = !scheduler_path.empty();
  if (!flags.times.empty()) {
    if (!scheduler_path.empty()) {
      std::fprintf(stderr, "error: --export-scheduler requires a single time bound\n");
      std::exit(2);
    }
    const auto result =
        analyze_timed_reachability_batch(built.system, built.mask("failed"), flags.times, options);
    std::printf("ctmdp: %zu states, %zu transitions\n", result.transformed.ctmdp.num_states(),
                result.transformed.ctmdp.num_transitions());
    std::vector<BoundSummary> bounds;
    for (std::size_t j = 0; j < flags.times.size(); ++j) {
      const auto& r = result.reachability[j];
      bounds.push_back({flags.times[j], result.values[j], r.iterations_planned,
                        r.iterations_executed, r.status, r.residual_bound});
    }
    const int exit_code = report_batch(minimize_flag ? "inf" : "sup", "failed", bounds, flags);
    std::printf("%zu bounds in one batch solve, %.3f s total\n", flags.times.size(),
                total.seconds());
    return exit_code;
  }

  const auto result = analyze_timed_reachability(built.system, built.mask("failed"), t, options);
  std::printf("ctmdp: %zu states, %zu transitions\n", result.transformed.ctmdp.num_states(),
              result.transformed.ctmdp.num_transitions());
  std::printf("%s unreliability(%g) = %.10f\n", minimize_flag ? "inf" : "sup", t, result.value);
  std::printf("iterations: %llu planned, %llu executed, %.3f s total\n",
              static_cast<unsigned long long>(result.reachability.iterations_planned),
              static_cast<unsigned long long>(result.reachability.iterations_executed),
              total.seconds());
  report_truncation(result.reachability.truncation, result.reachability.k_lyapunov);
  if (!scheduler_path.empty()) {
    export_scheduler_artifact(scheduler_path, result,
                              minimize_flag ? Objective::Minimize : Objective::Maximize, t, eps);
  }
  return report_partial(result.reachability.status, result.reachability.residual_bound, flags);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string kind = argv[1];
  GuardFlags flags;

  if (kind == "model" || kind == "dft") {
    if (argc < 4) usage();
    const std::string model_path = argv[2];
    const double t = parse_nonnegative(argv[3], "time bound <t>");
    bool minimize_objective = false, early = false, minimize = true;
    double eps = 1e-6;
    std::string goal_name = "goal", export_prefix, scheduler_path;
    for (int i = 4; i < argc; ++i) {
      if (parse_common_flag(argc, argv, i, flags)) {
        continue;
      } else if (std::strcmp(argv[i], "--min") == 0) {
        minimize_objective = true;
      } else if (std::strcmp(argv[i], "--objective") == 0 && i + 1 < argc) {
        minimize_objective = parse_objective_flag(argv[++i]);
      } else if (std::strcmp(argv[i], "--early") == 0) {
        early = true;
      } else if (std::strcmp(argv[i], "--no-minimize") == 0) {
        minimize = false;
      } else if (std::strcmp(argv[i], "--eps") == 0 && i + 1 < argc) {
        eps = parse_positive(argv[++i], "--eps");
      } else if (kind == "model" && std::strcmp(argv[i], "--goal") == 0 && i + 1 < argc) {
        goal_name = argv[++i];
      } else if (kind == "model" && std::strcmp(argv[i], "--export") == 0 && i + 1 < argc) {
        export_prefix = argv[++i];
      } else if (std::strcmp(argv[i], "--export-scheduler") == 0 && i + 1 < argc) {
        scheduler_path = argv[++i];
      } else {
        usage();
      }
    }
    try {
      const auto accounting = arm_guard(flags);
      const TelemetryFlusher flusher(flags);
      if (kind == "dft") {
        return run_dft(model_path, t, minimize_objective, minimize, eps, early, scheduler_path,
                       flags);
      }
      return run_model(model_path, t, goal_name, minimize_objective, minimize, eps, early,
                       export_prefix, scheduler_path, flags);
    } catch (const Error& e) {
      return report_error(e, flags);
    } catch (const std::bad_alloc&) {
      return report_error(Error(ErrorCode::OutOfMemory, "allocation failure (std::bad_alloc)"),
                          flags);
    } catch (const std::exception& e) {
      return report_error(Error(ErrorCode::Internal, e.what()), flags);
    }
  }

  if (argc < 5) usage();
  const std::string model_path = argv[2];
  const std::string goal_path = argv[3];
  const double t = parse_nonnegative(argv[4], "time bound <t>");

  bool minimize = false, early = false, scheduler = false;
  double eps = 1e-6;
  for (int i = 5; i < argc; ++i) {
    if (parse_common_flag(argc, argv, i, flags)) {
      continue;
    } else if (std::strcmp(argv[i], "--min") == 0) {
      minimize = true;
    } else if (std::strcmp(argv[i], "--objective") == 0 && i + 1 < argc) {
      minimize = parse_objective_flag(argv[++i]);
    } else if (std::strcmp(argv[i], "--early") == 0) {
      early = true;
    } else if (std::strcmp(argv[i], "--scheduler") == 0) {
      scheduler = true;
    } else if (std::strcmp(argv[i], "--eps") == 0 && i + 1 < argc) {
      eps = parse_positive(argv[++i], "--eps");
    } else {
      usage();
    }
  }

  try {
    const auto accounting = arm_guard(flags);
    const TelemetryFlusher flusher(flags);
    if (kind == "ctmdp") {
      const Ctmdp model = io::load_ctmdp(model_path);
      const BitVector goal = load_goal(goal_path, model.num_states());
      TimedReachabilityOptions options;
      options.epsilon = eps;
      options.objective = minimize ? Objective::Minimize : Objective::Maximize;
      options.early_termination = early;
      options.extract_scheduler = scheduler;
      options.backend = flags.backend;
      options.truncation = flags.truncation;
      options.locking = flags.locking;
      options.guard = &g_guard;
      options.telemetry = telemetry_of(flags);
      Stopwatch timer;
      if (!flags.times.empty()) {
        const auto results = timed_reachability_batch(model, goal, flags.times, options);
        std::printf("model: %zu states, %zu transitions, uniform rate %.6f\n",
                    model.num_states(), model.num_transitions(), results.front().uniform_rate);
        std::vector<BoundSummary> bounds;
        for (std::size_t j = 0; j < flags.times.size(); ++j) {
          const auto& r = results[j];
          bounds.push_back({flags.times[j], r.values[model.initial()], r.iterations_planned,
                            r.iterations_executed, r.status, r.residual_bound});
        }
        const int exit_code = report_batch(minimize ? "inf" : "sup", "goal", bounds, flags);
        std::printf("%zu bounds in one batch solve, %.3f s\n", flags.times.size(),
                    timer.seconds());
        return exit_code;
      }
      const auto result = timed_reachability(model, goal, t, options);
      std::printf("model: %zu states, %zu transitions, uniform rate %.6f\n", model.num_states(),
                  model.num_transitions(), result.uniform_rate);
      std::printf("%s P(reach goal within %g) = %.10f\n", minimize ? "inf" : "sup", t,
                  result.values[model.initial()]);
      std::printf("iterations: %llu planned, %llu executed, %.3f s\n",
                  static_cast<unsigned long long>(result.iterations_planned),
                  static_cast<unsigned long long>(result.iterations_executed), timer.seconds());
      report_truncation(result.truncation, result.k_lyapunov);
      if (scheduler && result.status == RunStatus::Converged) {
        std::printf("optimal first decisions (states with a real choice):\n");
        for (StateId s = 0; s < model.num_states(); ++s) {
          if (model.num_transitions_of(s) < 2) continue;
          const auto choice = result.initial_decision[s];
          if (choice == kNoTransition) continue;
          std::printf("  %u: %s\n", s,
                      model.words().str(model.label(choice), model.actions()).c_str());
        }
      }
      return report_partial(result.status, result.residual_bound, flags);
    } else if (kind == "ctmc") {
      const Ctmc model = io::load_ctmc(model_path);
      const BitVector goal = load_goal(goal_path, model.num_states());
      TransientOptions options;
      options.epsilon = eps;
      options.early_termination = early;
      options.backend = flags.backend;
      options.truncation = flags.truncation;
      options.locking = flags.locking;
      options.guard = &g_guard;
      options.telemetry = telemetry_of(flags);
      Stopwatch timer;
      if (!flags.times.empty()) {
        const auto results = timed_reachability_batch(model, goal, flags.times, options);
        std::printf("model: %zu states, %zu transitions, uniformized at %.6f\n",
                    model.num_states(), model.num_transitions(), results.front().uniform_rate);
        std::vector<BoundSummary> bounds;
        for (std::size_t j = 0; j < flags.times.size(); ++j) {
          const auto& r = results[j];
          bounds.push_back({flags.times[j], r.probabilities[model.initial()], r.iterations,
                            r.iterations_executed, r.status, r.residual_bound});
        }
        const int exit_code = report_batch("", "goal", bounds, flags);
        std::printf("%zu bounds in one batch solve, %.3f s\n", flags.times.size(),
                    timer.seconds());
        return exit_code;
      }
      const auto result = timed_reachability(model, goal, t, options);
      std::printf("model: %zu states, %zu transitions, uniformized at %.6f\n", model.num_states(),
                  model.num_transitions(), result.uniform_rate);
      std::printf("P(reach goal within %g) = %.10f\n", t,
                  result.probabilities[model.initial()]);
      std::printf("iterations: %llu planned, %llu executed, %.3f s\n",
                  static_cast<unsigned long long>(result.iterations),
                  static_cast<unsigned long long>(result.iterations_executed), timer.seconds());
      report_truncation(result.truncation, result.k_lyapunov);
      return report_partial(result.status, result.residual_bound, flags);
    } else {
      usage();
    }
  } catch (const Error& e) {
    return report_error(e, flags);
  } catch (const std::bad_alloc&) {
    return report_error(Error(ErrorCode::OutOfMemory, "allocation failure (std::bad_alloc)"),
                        flags);
  } catch (const std::exception& e) {
    return report_error(Error(ErrorCode::Internal, e.what()), flags);
  }
  return 0;
}
