// unicon_check — command-line timed reachability for serialized models.
//
// Usage:
//   unicon_check ctmdp <model.ctmdp> <goal.lab> <t> [--min] [--eps E]
//                [--early] [--scheduler]
//   unicon_check ctmc  <model.tra>   <goal.lab> <t> [--eps E] [--early]
//
// The model formats are those written by the io library (see io/tra.hpp);
// goal.lab lists goal states, one "state goal" line each.  Prints the
// optimal probability at the initial state plus solver statistics.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <string>

#include "ctmc/transient.hpp"
#include "ctmdp/reachability.hpp"
#include "io/tra.hpp"
#include "support/errors.hpp"
#include "support/stopwatch.hpp"

using namespace unicon;

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: unicon_check ctmdp <model.ctmdp> <goal.lab> <t> [--min] [--eps E] "
               "[--early] [--scheduler]\n"
               "       unicon_check ctmc  <model.tra>   <goal.lab> <t> [--eps E] [--early]\n");
  std::exit(2);
}

std::vector<bool> load_goal(const std::string& path, std::size_t num_states) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open goal file: " + path);
  return io::read_goal(in, num_states);
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 5) usage();
  const std::string kind = argv[1];
  const std::string model_path = argv[2];
  const std::string goal_path = argv[3];
  const double t = std::strtod(argv[4], nullptr);

  bool minimize = false, early = false, scheduler = false;
  double eps = 1e-6;
  for (int i = 5; i < argc; ++i) {
    if (std::strcmp(argv[i], "--min") == 0) {
      minimize = true;
    } else if (std::strcmp(argv[i], "--early") == 0) {
      early = true;
    } else if (std::strcmp(argv[i], "--scheduler") == 0) {
      scheduler = true;
    } else if (std::strcmp(argv[i], "--eps") == 0 && i + 1 < argc) {
      eps = std::strtod(argv[++i], nullptr);
    } else {
      usage();
    }
  }

  try {
    if (kind == "ctmdp") {
      const Ctmdp model = io::load_ctmdp(model_path);
      const std::vector<bool> goal = load_goal(goal_path, model.num_states());
      TimedReachabilityOptions options;
      options.epsilon = eps;
      options.objective = minimize ? Objective::Minimize : Objective::Maximize;
      options.early_termination = early;
      options.extract_scheduler = scheduler;
      Stopwatch timer;
      const auto result = timed_reachability(model, goal, t, options);
      std::printf("model: %zu states, %zu transitions, uniform rate %.6f\n", model.num_states(),
                  model.num_transitions(), result.uniform_rate);
      std::printf("%s P(reach goal within %g) = %.10f\n", minimize ? "inf" : "sup", t,
                  result.values[model.initial()]);
      std::printf("iterations: %llu planned, %llu executed, %.3f s\n",
                  static_cast<unsigned long long>(result.iterations_planned),
                  static_cast<unsigned long long>(result.iterations_executed), timer.seconds());
      if (scheduler) {
        std::printf("optimal first decisions (states with a real choice):\n");
        for (StateId s = 0; s < model.num_states(); ++s) {
          if (model.num_transitions_of(s) < 2) continue;
          const auto choice = result.initial_decision[s];
          if (choice == kNoTransition) continue;
          std::printf("  %u: %s\n", s,
                      model.words().str(model.label(choice), model.actions()).c_str());
        }
      }
    } else if (kind == "ctmc") {
      const Ctmc model = io::load_ctmc(model_path);
      const std::vector<bool> goal = load_goal(goal_path, model.num_states());
      TransientOptions options;
      options.epsilon = eps;
      options.early_termination = early;
      Stopwatch timer;
      const auto result = timed_reachability(model, goal, t, options);
      std::printf("model: %zu states, %zu transitions, uniformized at %.6f\n", model.num_states(),
                  model.num_transitions(), result.uniform_rate);
      std::printf("P(reach goal within %g) = %.10f\n", t,
                  result.probabilities[model.initial()]);
      std::printf("iterations: %llu planned, %llu executed, %.3f s\n",
                  static_cast<unsigned long long>(result.iterations),
                  static_cast<unsigned long long>(result.iterations_executed), timer.seconds());
    } else {
      usage();
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
