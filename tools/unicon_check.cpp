// unicon_check — command-line timed reachability.
//
// Usage:
//   unicon_check model <model.uni> <t> [--goal NAME] [--min] [--eps E]
//                [--early] [--no-minimize] [--export PREFIX]
//   unicon_check ctmdp <model.ctmdp> <goal.lab> <t> [--min] [--eps E]
//                [--early] [--scheduler]
//   unicon_check ctmc  <model.tra>   <goal.lab> <t> [--eps E] [--early]
//
// The "model" mode drives the whole uniform-by-construction pipeline from a
// UNI source file: parse -> semantic check -> compose/elapse -> branching
// bisimulation minimization -> Sec. 4.1 transformation -> Algorithm 1.  The
// serialized-model modes consume the io library's formats (see io/tra.hpp);
// goal.lab marks goal states with the proposition "goal".  All modes print
// the optimal probability at the initial state plus solver statistics.
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <sstream>
#include <string>

#include "core/analysis.hpp"
#include "ctmc/transient.hpp"
#include "ctmdp/reachability.hpp"
#include "io/tra.hpp"
#include "lang/build.hpp"
#include "lang/diagnostics.hpp"
#include "lang/parser.hpp"
#include "support/errors.hpp"
#include "support/stopwatch.hpp"

using namespace unicon;

namespace {

[[noreturn]] void usage() {
  std::fprintf(stderr,
               "usage: unicon_check model <model.uni> <t> [--goal NAME] [--min] [--eps E] "
               "[--early] [--no-minimize] [--export PREFIX]\n"
               "       unicon_check ctmdp <model.ctmdp> <goal.lab> <t> [--min] [--eps E] "
               "[--early] [--scheduler]\n"
               "       unicon_check ctmc  <model.tra>   <goal.lab> <t> [--eps E] [--early]\n");
  std::exit(2);
}

/// Strict numeric argument parsing: the whole string must be a finite,
/// non-negative number (strtod's silent 0.0 on garbage hid typos before).
double parse_nonnegative(const char* arg, const char* what) {
  char* end = nullptr;
  const double value = std::strtod(arg, &end);
  if (end == arg || *end != '\0' || !std::isfinite(value) || value < 0.0) {
    std::fprintf(stderr, "error: %s must be a non-negative number, got '%s'\n", what, arg);
    std::exit(2);
  }
  return value;
}

double parse_positive(const char* arg, const char* what) {
  const double value = parse_nonnegative(arg, what);
  if (value == 0.0) {
    std::fprintf(stderr, "error: %s must be positive, got '%s'\n", what, arg);
    std::exit(2);
  }
  return value;
}

std::vector<bool> load_goal(const std::string& path, std::size_t num_states) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open goal file: " + path);
  return io::read_goal(in, num_states);
}

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open model file: " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  return buffer.str();
}

int run_model(const std::string& path, double t, const std::string& goal_name, bool minimize_flag,
              bool minimize, double eps, bool early, const std::string& export_prefix) {
  Stopwatch total;
  lang::Model ast;
  try {
    ast = lang::parse_and_check(read_file(path), path);
  } catch (const lang::LangError& e) {
    std::fprintf(stderr, "%s\n", e.what());
    return 1;
  }

  lang::BuiltModel built = lang::build_model(ast);
  std::printf("system: %zu states, %zu interactive + %zu Markov transitions, "
              "uniform rate %.6f (%zu leaves)\n",
              built.system.num_states(), built.system.num_interactive_transitions(),
              built.system.num_markov_transitions(), built.uniform_rate, built.num_leaves);
  if (minimize) {
    built = lang::minimize_model(built);
    std::printf("minimized: %zu states, %zu interactive + %zu Markov transitions\n",
                built.system.num_states(), built.system.num_interactive_transitions(),
                built.system.num_markov_transitions());
  }

  if (!built.has_prop(goal_name)) {
    std::string available;
    for (const std::string& name : built.prop_names) {
      if (!available.empty()) available += ", ";
      available += name;
    }
    std::fprintf(stderr, "error: model has no proposition '%s' (available: %s)\n",
                 goal_name.c_str(), available.empty() ? "none" : available.c_str());
    return 1;
  }

  if (!export_prefix.empty()) {
    std::ofstream imc_out(export_prefix + ".imc");
    io::write_imc(imc_out, built.system);
    io::LabelMasks labels;
    for (std::size_t p = 0; p < built.prop_names.size(); ++p) {
      labels.emplace_back(built.prop_names[p], built.prop_masks[p]);
    }
    std::ofstream lab_out(export_prefix + ".lab");
    io::write_labels(lab_out, labels);
    std::printf("exported %s.imc and %s.lab\n", export_prefix.c_str(), export_prefix.c_str());
  }

  UimcAnalysisOptions options;
  options.reachability.epsilon = eps;
  options.reachability.objective = minimize_flag ? Objective::Minimize : Objective::Maximize;
  options.reachability.early_termination = early;
  const auto result = analyze_timed_reachability(built.system, built.mask(goal_name), t, options);
  std::printf("ctmdp: %zu states, %zu transitions\n", result.transformed.ctmdp.num_states(),
              result.transformed.ctmdp.num_transitions());
  std::printf("%s P(reach %s within %g) = %.10f\n", minimize_flag ? "inf" : "sup",
              goal_name.c_str(), t, result.value);
  std::printf("iterations: %llu planned, %llu executed, %.3f s total\n",
              static_cast<unsigned long long>(result.reachability.iterations_planned),
              static_cast<unsigned long long>(result.reachability.iterations_executed),
              total.seconds());
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) usage();
  const std::string kind = argv[1];

  if (kind == "model") {
    if (argc < 4) usage();
    const std::string model_path = argv[2];
    const double t = parse_nonnegative(argv[3], "time bound <t>");
    bool minimize_objective = false, early = false, minimize = true;
    double eps = 1e-6;
    std::string goal_name = "goal", export_prefix;
    for (int i = 4; i < argc; ++i) {
      if (std::strcmp(argv[i], "--min") == 0) {
        minimize_objective = true;
      } else if (std::strcmp(argv[i], "--early") == 0) {
        early = true;
      } else if (std::strcmp(argv[i], "--no-minimize") == 0) {
        minimize = false;
      } else if (std::strcmp(argv[i], "--eps") == 0 && i + 1 < argc) {
        eps = parse_positive(argv[++i], "--eps");
      } else if (std::strcmp(argv[i], "--goal") == 0 && i + 1 < argc) {
        goal_name = argv[++i];
      } else if (std::strcmp(argv[i], "--export") == 0 && i + 1 < argc) {
        export_prefix = argv[++i];
      } else {
        usage();
      }
    }
    try {
      return run_model(model_path, t, goal_name, minimize_objective, minimize, eps, early,
                       export_prefix);
    } catch (const Error& e) {
      std::fprintf(stderr, "error: %s\n", e.what());
      return 1;
    }
  }

  if (argc < 5) usage();
  const std::string model_path = argv[2];
  const std::string goal_path = argv[3];
  const double t = parse_nonnegative(argv[4], "time bound <t>");

  bool minimize = false, early = false, scheduler = false;
  double eps = 1e-6;
  for (int i = 5; i < argc; ++i) {
    if (std::strcmp(argv[i], "--min") == 0) {
      minimize = true;
    } else if (std::strcmp(argv[i], "--early") == 0) {
      early = true;
    } else if (std::strcmp(argv[i], "--scheduler") == 0) {
      scheduler = true;
    } else if (std::strcmp(argv[i], "--eps") == 0 && i + 1 < argc) {
      eps = parse_positive(argv[++i], "--eps");
    } else {
      usage();
    }
  }

  try {
    if (kind == "ctmdp") {
      const Ctmdp model = io::load_ctmdp(model_path);
      const std::vector<bool> goal = load_goal(goal_path, model.num_states());
      TimedReachabilityOptions options;
      options.epsilon = eps;
      options.objective = minimize ? Objective::Minimize : Objective::Maximize;
      options.early_termination = early;
      options.extract_scheduler = scheduler;
      Stopwatch timer;
      const auto result = timed_reachability(model, goal, t, options);
      std::printf("model: %zu states, %zu transitions, uniform rate %.6f\n", model.num_states(),
                  model.num_transitions(), result.uniform_rate);
      std::printf("%s P(reach goal within %g) = %.10f\n", minimize ? "inf" : "sup", t,
                  result.values[model.initial()]);
      std::printf("iterations: %llu planned, %llu executed, %.3f s\n",
                  static_cast<unsigned long long>(result.iterations_planned),
                  static_cast<unsigned long long>(result.iterations_executed), timer.seconds());
      if (scheduler) {
        std::printf("optimal first decisions (states with a real choice):\n");
        for (StateId s = 0; s < model.num_states(); ++s) {
          if (model.num_transitions_of(s) < 2) continue;
          const auto choice = result.initial_decision[s];
          if (choice == kNoTransition) continue;
          std::printf("  %u: %s\n", s,
                      model.words().str(model.label(choice), model.actions()).c_str());
        }
      }
    } else if (kind == "ctmc") {
      const Ctmc model = io::load_ctmc(model_path);
      const std::vector<bool> goal = load_goal(goal_path, model.num_states());
      TransientOptions options;
      options.epsilon = eps;
      options.early_termination = early;
      Stopwatch timer;
      const auto result = timed_reachability(model, goal, t, options);
      std::printf("model: %zu states, %zu transitions, uniformized at %.6f\n", model.num_states(),
                  model.num_transitions(), result.uniform_rate);
      std::printf("P(reach goal within %g) = %.10f\n", t,
                  result.probabilities[model.initial()]);
      std::printf("iterations: %llu planned, %llu executed, %.3f s\n",
                  static_cast<unsigned long long>(result.iterations),
                  static_cast<unsigned long long>(result.iterations_executed), timer.seconds());
    } else {
      usage();
    }
  } catch (const Error& e) {
    std::fprintf(stderr, "error: %s\n", e.what());
    return 1;
  }
  return 0;
}
