#include "props/property.hpp"

#include <cctype>
#include <cmath>
#include <cstdlib>

#include "ctmc/steady_state.hpp"
#include "ctmc/transient.hpp"
#include "ctmdp/unbounded.hpp"
#include "support/errors.hpp"

namespace unicon {

void LabelSet::define(const std::string& name, std::vector<bool> mask) {
  if (mask.size() != num_states_) throw ModelError("LabelSet: mask size mismatch");
  if (name == "true") throw ModelError("LabelSet: 'true' is reserved");
  masks_[name] = std::move(mask);
}

std::vector<bool> LabelSet::mask(const std::string& name) const {
  if (name == "true") return std::vector<bool>(num_states_, true);
  auto it = masks_.find(name);
  if (it == masks_.end()) throw ModelError("LabelSet: unknown label '" + name + "'");
  return it->second;
}

bool LabelSet::contains(const std::string& name) const {
  return name == "true" || masks_.count(name) != 0;
}

// ------------------------------------------------------------- parsing

namespace {

/// A minimal tokenizer: identifiers, quoted identifiers, numbers, and the
/// punctuation of the query syntax.
class Tokens {
 public:
  explicit Tokens(const std::string& text) : text_(text) {}

  std::string next() {
    skip_space();
    if (pos_ >= text_.size()) return "";
    const char c = text_[pos_];
    if (c == '"') {
      const std::size_t end = text_.find('"', pos_ + 1);
      if (end == std::string::npos) throw ParseError("query: unterminated quote");
      std::string token = text_.substr(pos_ + 1, end - pos_ - 1);
      pos_ = end + 1;
      return token.empty() ? std::string("\"\"") : token;
    }
    if (std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.' || c == '-') {
      std::size_t end = pos_;
      while (end < text_.size()) {
        const char e = text_[end];
        if (std::isalnum(static_cast<unsigned char>(e)) || e == '_' || e == '.' || e == '-') {
          ++end;
        } else {
          break;
        }
      }
      std::string token = text_.substr(pos_, end - pos_);
      pos_ = end;
      return token;
    }
    if (c == '<' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '=') {
      pos_ += 2;
      return "<=";
    }
    if (c == '=' && pos_ + 1 < text_.size() && text_[pos_ + 1] == '?') {
      pos_ += 2;
      return "=?";
    }
    ++pos_;
    return std::string(1, c);
  }

  std::string peek() {
    const std::size_t saved = pos_;
    std::string token = next();
    pos_ = saved;
    return token;
  }

  void expect(const std::string& token) {
    const std::string got = next();
    if (got != token) {
      throw ParseError("query: expected '" + token + "', got '" + got + "'");
    }
  }

 private:
  void skip_space() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) ++pos_;
  }
  const std::string& text_;
  std::size_t pos_ = 0;
};

double parse_number(const std::string& token) {
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == token.c_str() || *end != '\0') {
    throw ParseError("query: expected a number, got '" + token + "'");
  }
  return value;
}

bool is_label_token(const std::string& token) {
  return !token.empty() && token != "F" && token != "U" && token != "[" && token != "]";
}

}  // namespace

Query parse_query(const std::string& text) {
  Tokens tokens(text);
  Query q;

  const std::string head = tokens.next();
  bool is_time = false, is_steady = false;
  if (head == "Pmax" || head == "P") {
    q.objective = Objective::Maximize;
  } else if (head == "Pmin") {
    q.objective = Objective::Minimize;
  } else if (head == "Tmax") {
    q.objective = Objective::Maximize;
    is_time = true;
  } else if (head == "Tmin") {
    q.objective = Objective::Minimize;
    is_time = true;
  } else if (head == "S") {
    is_steady = true;
  } else {
    throw ParseError("query: expected Pmax/Pmin/P/Tmax/Tmin/S, got '" + head + "'");
  }
  tokens.expect("=?");
  tokens.expect("[");

  if (is_steady) {
    q.kind = Query::Kind::SteadyState;
    q.goal = tokens.next();
    if (!is_label_token(q.goal)) throw ParseError("query: S=? expects a label");
    tokens.expect("]");
    return q;
  }

  std::string token = tokens.next();
  if (token != "F" && is_label_token(token)) {
    // "left U ... goal" form.
    q.left = token;
    tokens.expect("U");
    token = tokens.next();
  } else if (token == "F") {
    q.left = "true";
    token = tokens.next();
  } else {
    throw ParseError("query: expected 'F' or a label, got '" + token + "'");
  }

  // Optional bound: "<= t" or "[t1,t2]".
  if (token == "<=") {
    q.kind = Query::Kind::ProbBounded;
    q.t1 = 0.0;
    q.t2 = parse_number(tokens.next());
    token = tokens.next();
  } else if (token == "[") {
    q.kind = Query::Kind::ProbInterval;
    q.t1 = parse_number(tokens.next());
    tokens.expect(",");
    q.t2 = parse_number(tokens.next());
    tokens.expect("]");
    token = tokens.next();
  } else {
    q.kind = Query::Kind::ProbUnbounded;
  }

  if (!is_label_token(token)) throw ParseError("query: expected goal label, got '" + token + "'");
  q.goal = token;
  tokens.expect("]");

  if (is_time) {
    if (q.kind != Query::Kind::ProbUnbounded || q.left != "true") {
      throw ParseError("query: T queries support only the form T{max,min}=? [ F goal ]");
    }
    q.kind = Query::Kind::ExpectedTime;
  }
  if (q.kind == Query::Kind::ProbInterval && q.left != "true") {
    throw ParseError("query: interval bounds require the F form");
  }
  return q;
}

// ---------------------------------------------------------- evaluation

namespace {

std::vector<bool> negate(const std::vector<bool>& mask) {
  std::vector<bool> out(mask.size());
  for (std::size_t i = 0; i < mask.size(); ++i) out[i] = !mask[i];
  return out;
}

}  // namespace

QueryResult evaluate(const Ctmdp& model, const LabelSet& labels, const Query& query,
                     const EvaluationOptions& options) {
  if (labels.num_states() != model.num_states()) {
    throw ModelError("evaluate: label set size does not match the model");
  }
  const std::vector<bool> goal = labels.mask(query.goal);
  QueryResult result;

  switch (query.kind) {
    case Query::Kind::ProbBounded: {
      TimedReachabilityOptions reach;
      reach.epsilon = options.epsilon;
      reach.objective = query.objective;
      reach.early_termination = options.early_termination;
      if (query.left != "true") reach.avoid = negate(labels.mask(query.left));
      const auto r = timed_reachability(model, goal, query.t2, reach);
      result.values = r.values;
      result.iterations = r.iterations_executed;
      break;
    }
    case Query::Kind::ProbUnbounded: {
      UnboundedOptions unbounded;
      unbounded.objective = query.objective;
      if (query.left != "true") unbounded.avoid = negate(labels.mask(query.left));
      const auto r = unbounded_reachability(model, goal, unbounded);
      result.values = r.values;
      result.iterations = r.iterations;
      break;
    }
    case Query::Kind::ExpectedTime: {
      UnboundedOptions unbounded;
      unbounded.objective = query.objective;
      const auto r = expected_reachability_time(model, goal, unbounded);
      result.values = r.values;
      result.iterations = r.iterations;
      break;
    }
    case Query::Kind::ProbInterval:
      throw ModelError("evaluate: interval queries require a CTMC (no nondeterminism)");
    case Query::Kind::SteadyState:
      throw ModelError("evaluate: steady-state queries require a CTMC");
  }
  result.value = result.values[model.initial()];
  return result;
}

QueryResult evaluate(const Ctmc& chain, const LabelSet& labels, const Query& query,
                     const EvaluationOptions& options) {
  if (labels.num_states() != chain.num_states()) {
    throw ModelError("evaluate: label set size does not match the model");
  }
  const std::vector<bool> goal = labels.mask(query.goal);
  QueryResult result;

  switch (query.kind) {
    case Query::Kind::ProbBounded: {
      TransientOptions transient;
      transient.epsilon = options.epsilon;
      transient.early_termination = options.early_termination;
      // left U<=t goal: states outside `left` lose — make them absorbing.
      const Ctmc constrained =
          query.left == "true" ? chain : chain.make_absorbing(negate(labels.mask(query.left)));
      auto r = timed_reachability(constrained, goal, query.t2, transient);
      // Absorbed non-left, non-goal states report their (useless) sticky
      // value 0 already; non-left goal states count as immediate hits,
      // matching the CSL convention.
      result.values = std::move(r.probabilities);
      result.iterations = r.iterations_executed;
      break;
    }
    case Query::Kind::ProbInterval: {
      TransientOptions transient;
      transient.epsilon = options.epsilon;
      transient.early_termination = options.early_termination;
      auto r = interval_reachability(chain, goal, query.t1, query.t2, transient);
      result.values = std::move(r.probabilities);
      result.iterations = r.iterations_executed;
      break;
    }
    case Query::Kind::ProbUnbounded:
    case Query::Kind::ExpectedTime: {
      // Expected-time analysis runs on uniform models only; uniformization
      // preserves hitting times, so apply it before embedding.
      const Ctmdp embedded = ctmdp_from_ctmc(
          query.kind == Query::Kind::ExpectedTime ? chain.uniformize() : chain);
      LabelSet relabels(embedded.num_states());
      if (query.left != "true") relabels.define(query.left, labels.mask(query.left));
      if (query.goal != "true") relabels.define(query.goal, goal);
      return evaluate(embedded, relabels, query, options);
    }
    case Query::Kind::SteadyState: {
      SteadyStateOptions steady;
      const auto r = steady_state(chain, steady);
      double mass = 0.0;
      for (StateId s = 0; s < chain.num_states(); ++s) {
        if (goal[s]) mass += r.distribution[s];
      }
      result.value = mass;
      result.iterations = r.iterations;
      return result;
    }
  }
  result.value = result.values[chain.initial()];
  return result;
}

QueryResult check(const Ctmdp& model, const LabelSet& labels, const std::string& query,
                  const EvaluationOptions& options) {
  return evaluate(model, labels, parse_query(query), options);
}

QueryResult check(const Ctmc& chain, const LabelSet& labels, const std::string& query,
                  const EvaluationOptions& options) {
  return evaluate(chain, labels, parse_query(query), options);
}

}  // namespace unicon
