// A small CSL-style query layer over CTMDPs and CTMCs.
//
// Queries are written in a PRISM-like concrete syntax and evaluated against
// a model plus a LabelSet mapping proposition names to state masks:
//
//   Pmax=? [ F<=100 "unsafe" ]          timed reachability (Algorithm 1)
//   Pmin=? [ "up" U<=50 "goal" ]        timed until (avoid !"up")
//   Pmax=? [ F "goal" ]                 unbounded reachability
//   Pmax=? [ "up" U "goal" ]            unbounded until
//   P=?   [ F[10,20] "goal" ]           interval reachability (CTMC only)
//   Tmin=? [ F "goal" ]                 expected reachability time
//   S=?   [ "goal" ]                    steady-state probability (CTMC only)
//
// Labels may be quoted or bare identifiers; `true` denotes all states.
#pragma once

#include <cstdint>
#include <string>
#include <unordered_map>
#include <vector>

#include "ctmc/ctmc.hpp"
#include "ctmdp/ctmdp.hpp"
#include "ctmdp/reachability.hpp"

namespace unicon {

/// Named state masks ("atomic propositions").
class LabelSet {
 public:
  explicit LabelSet(std::size_t num_states) : num_states_(num_states) {}

  /// Defines (or replaces) label @p name.  Mask size must match.
  void define(const std::string& name, std::vector<bool> mask);

  /// Mask of @p name.  "true" is predefined (all states).
  std::vector<bool> mask(const std::string& name) const;

  bool contains(const std::string& name) const;
  std::size_t num_states() const { return num_states_; }

 private:
  std::size_t num_states_;
  std::unordered_map<std::string, std::vector<bool>> masks_;
};

/// A parsed query.
struct Query {
  enum class Kind : std::uint8_t {
    ProbBounded,    // P{max,min}=? [ left U<=t goal ]   (F == true U)
    ProbInterval,   // P=? [ F[t1,t2] goal ]             (CTMC only)
    ProbUnbounded,  // P{max,min}=? [ left U goal ]
    ExpectedTime,   // T{max,min}=? [ F goal ]
    SteadyState,    // S=? [ goal ]                      (CTMC only)
  };
  Kind kind = Kind::ProbBounded;
  Objective objective = Objective::Maximize;
  std::string left = "true";  // until's left argument
  std::string goal;
  double t1 = 0.0;
  double t2 = 0.0;
};

/// Parses the concrete syntax above; throws ParseError with a message
/// pointing at the offending token.
Query parse_query(const std::string& text);

struct QueryResult {
  double value = 0.0;
  /// Per-state values where the query produces them (empty for S=?).
  std::vector<double> values;
  std::uint64_t iterations = 0;
};

struct EvaluationOptions {
  double epsilon = 1e-6;
  bool early_termination = false;
};

/// Evaluates @p query on a CTMDP.  Interval and steady-state queries are
/// rejected (ModelError) — they are only meaningful without nondeterminism.
QueryResult evaluate(const Ctmdp& model, const LabelSet& labels, const Query& query,
                     const EvaluationOptions& options = {});

/// Evaluates @p query on a CTMC (the objective is ignored; unbounded and
/// expected-time queries run on the deterministic CTMDP embedding).
QueryResult evaluate(const Ctmc& chain, const LabelSet& labels, const Query& query,
                     const EvaluationOptions& options = {});

/// Convenience: parse and evaluate in one call.
QueryResult check(const Ctmdp& model, const LabelSet& labels, const std::string& query,
                  const EvaluationOptions& options = {});
QueryResult check(const Ctmc& chain, const LabelSet& labels, const std::string& query,
                  const EvaluationOptions& options = {});

}  // namespace unicon
