// Slow, obviously-correct reference oracles for the differential
// verification subsystem.
//
// Everything here is written independently of the optimized library code
// paths it checks: the naive value iteration uses dense probability rows
// and the lgamma-based reference Poisson pmf (no DiscreteKernel, no
// PoissonWindow, no WorkerPool); the transform oracle re-derives the
// strictly alternating normal form of Sec. 4.1 by plain brute-force
// zero-time-closure enumeration (no worklist interning, no word tables);
// the uniformity auditor recomputes Def. 4 by direct summation.  Agreement
// between these oracles and the production code on machine-generated
// models is the evidence the fuzz driver collects.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "core/transform.hpp"
#include "ctmc/ctmc.hpp"
#include "ctmdp/ctmdp.hpp"
#include "ctmdp/reachability.hpp"
#include "imc/imc.hpp"
#include "support/bit_vector.hpp"

namespace unicon::testing {

/// A dense nondeterministic jump process: per state, a set of choices, each
/// a dense branching-probability row over all states.  The common exit rate
/// turns it back into a uniform CTMDP semantically.
struct DenseModel {
  std::size_t num_states = 0;
  StateId initial = 0;
  double uniform_rate = 0.0;
  /// choices[s][c][s'] = branching probability of choice c in state s.
  std::vector<std::vector<std::vector<double>>> choices;
};

/// Dense copy of a uniform CTMDP (identity state mapping).  Throws
/// UniformityError when exit rates disagree beyond 1e-6.
DenseModel dense_from_ctmdp(const Ctmdp& model);

/// Naive dense Algorithm 1: backward value iteration with reference
/// poisson_pmf weights and a truncation point found by direct summation of
/// the pmf (right tail mass <= eps).  Returns the per-state optimal
/// probability of reaching @p goal within @p t.
std::vector<double> naive_timed_reachability(const DenseModel& model,
                                             const BitVector& goal, double t, double eps,
                                             Objective objective = Objective::Maximize);

/// Naive dense step-bounded reachability (no timing): optimal probability
/// of reaching @p goal within at most @p steps jumps.
std::vector<double> naive_step_bounded(const DenseModel& model, const BitVector& goal,
                                       std::uint64_t steps,
                                       Objective objective = Objective::Maximize);

/// Brute-force re-derivation of the uIMC -> uCTMDP transformation.
struct BruteTransform {
  DenseModel model;
  /// Existential / universal goal transfer (Sec. 4.1), recomputed by direct
  /// closure folds.
  BitVector goal_exists;
  BitVector goal_universal;
  /// Per-state choice counts, sorted — a state-mapping-free fingerprint to
  /// compare against the optimized Ctmdp.
  std::vector<std::size_t> sorted_choice_counts;
  /// Per-choice nonzero target counts, sorted.
  std::vector<std::size_t> sorted_entry_counts;
};

/// Recomputes the three-step normal form of @p closed directly: urgency
/// cut, pair states for Markov->Markov edges, zero-time interactive
/// closure per decision state.  Throws ZenoError / ModelError exactly where
/// transform_to_ctmdp must (interactive cycles, zero-time deadlocks,
/// absorbing initial state).
BruteTransform bruteforce_transform(const Imc& closed, const BitVector& goal);

/// Compares transform_to_ctmdp output against the brute-force oracle on
/// state-mapping-free invariants: state/transition/entry counts, goal-mask
/// cardinalities, uniform rates.  Returns a description of the first
/// mismatch, or nullopt when everything agrees.
std::optional<std::string> check_transform(const Imc& closed, const BitVector& goal,
                                           const TransformResult& transformed);

/// Direct Def.-4 audit: recomputes the exit rate of every constrained
/// reachable state by plain summation (own BFS, no library uniformity
/// helpers).
struct UniformityAudit {
  bool uniform = false;
  double rate = 0.0;           // mean constrained exit rate (0 if none)
  double max_deviation = 0.0;  // largest |E_s - rate| over constrained states
  StateId worst_state = 0;
};
UniformityAudit audit_uniformity(const Imc& m, UniformityView view, double tol = 1e-9);

/// Interprets a CTMDP in which every state has at most one transition as a
/// CTMC (states without transitions become absorbing).  Throws if some
/// state has two or more transitions.
Ctmc ctmc_from_deterministic_ctmdp(const Ctmdp& model);

/// Builds the CTMC induced by a stationary scheduler choice on a CTMDP.
Ctmc induced_ctmc(const Ctmdp& model, const std::vector<std::uint64_t>& choice);

}  // namespace unicon::testing
