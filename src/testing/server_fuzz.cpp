#include "testing/server_fuzz.hpp"

#include <atomic>
#include <bit>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <cstdint>
#include <fstream>
#include <future>
#include <map>
#include <optional>
#include <set>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "io/tra.hpp"
#include "server/server.hpp"
#include "server/service.hpp"
#include "support/errors.hpp"
#include "support/json.hpp"
#include "support/rng.hpp"
#include "support/run_guard.hpp"
#include "testing/generate.hpp"

namespace unicon::testing {

namespace {

using server::AnalysisService;
using server::HorizonAnswer;
using server::ModelKind;
using server::QueryRequest;
using server::QueryResponse;
using server::ServiceOptions;
using server::SessionOptions;

// Independent derive_seed streams so adding draws to one stage never
// shifts another.
constexpr std::uint64_t kStreamWireFixture = 0x5e01;
constexpr std::uint64_t kStreamWireMutate = 0x5e02;
constexpr std::uint64_t kStreamChaosModel = 0x5e03;
constexpr std::uint64_t kStreamChaosPlan = 0x5e04;
constexpr std::uint64_t kStreamChaosTear = 0x5e05;

/// Line cap handed to the fuzzed sessions — small enough that the
/// oversized-line mutation stays cheap, large enough for every fixture.
constexpr std::size_t kFuzzMaxLineBytes = std::size_t{1} << 16;

struct Ctx {
  std::uint64_t seed = 0;
  ServerFuzzReport* report = nullptr;
  const ServerFuzzLogFn* log = nullptr;
  std::optional<ServerFuzzFailure> failure;

  void fail(const std::string& scenario, const std::string& message) {
    if (failure) return;  // keep the first failure per seed
    failure = ServerFuzzFailure{seed, scenario, message};
  }
  void check(bool ok, const std::string& scenario, const std::string& message) {
    ++report->checks_run;
    if (!ok) fail(scenario, message);
  }
  void flush() {
    if (!failure) return;
    if (log != nullptr && *log) (*log)(*failure);
    report->failures.push_back(*failure);
    failure.reset();
  }
};

std::uint64_t bits(double x) { return std::bit_cast<std::uint64_t>(x); }

// ---------------------------------------------------------------------------
// Wire-protocol mutation fuzz
// ---------------------------------------------------------------------------

struct WireModel {
  std::string kind;  ///< "ctmdp" | "ctmc"
  std::string source;
  std::string labels;
};

WireModel make_wire_model(Rng& rng) {
  WireModel m;
  std::ostringstream source, labels;
  if (rng.next_below(2) == 0) {
    RandomCtmdpConfig config;
    config.num_states = 6 + rng.next_below(8);
    const Ctmdp model = random_uniform_ctmdp(rng, config);
    io::write_ctmdp(source, model);
    io::write_goal(labels, random_goal(rng, model.num_states(), 0.3));
    m.kind = "ctmdp";
  } else {
    RandomCtmcConfig config;
    config.num_states = 6 + rng.next_below(8);
    const Ctmc chain = random_ctmc(rng, config);
    io::write_ctmc(source, chain);
    io::write_goal(labels, random_goal(rng, chain.num_states(), 0.3));
    m.kind = "ctmc";
  }
  m.source = source.str();
  m.labels = labels.str();
  return m;
}

std::string make_query_line(Rng& rng, const std::string& id) {
  const WireModel wire = make_wire_model(rng);
  Json model;
  model.set("kind", Json(wire.kind));
  model.set("source", Json(wire.source));
  model.set("labels", Json(wire.labels));

  Json request;
  request.set("id", Json(id));
  request.set("op", Json(std::string("query")));
  request.set("model", std::move(model));
  JsonArray times;
  const std::uint64_t count = 1 + rng.next_below(3);
  for (std::uint64_t j = 0; j < count; ++j) {
    times.push_back(Json(0.3 + 0.7 * static_cast<double>(rng.next_below(4))));
  }
  request.set("times", Json(std::move(times)));
  if (wire.kind == "ctmdp") {
    request.set("objective", Json(std::string(rng.next_below(2) == 0 ? "max" : "min")));
  }
  request.set("epsilon", Json(1e-6));
  return request.dump();
}

struct StreamLine {
  std::string text;
  std::string clean_id;  ///< id of the pristine request ("" for inserted lines)
  bool touched = false;
};

/// One seeded mutation: either damages an existing line in place (bit flip,
/// truncation, NUL byte) or inserts a hostile line (random garbage,
/// pathological nesting, an oversized line, unknown / mistyped fields).
void apply_mutation(Rng& rng, std::vector<StreamLine>& lines, unsigned serial) {
  auto insert_line = [&](std::string text) {
    StreamLine inserted;
    inserted.text = std::move(text);
    inserted.touched = true;
    const std::size_t at = rng.next_below(lines.size() + 1);
    lines.insert(lines.begin() + static_cast<std::ptrdiff_t>(at), std::move(inserted));
  };
  switch (rng.next_below(8)) {
    case 0: {  // flip one bit
      StreamLine& line = lines[rng.next_below(lines.size())];
      if (line.text.empty()) return;
      const std::size_t pos = rng.next_below(line.text.size());
      line.text[pos] = static_cast<char>(line.text[pos] ^ (1u << rng.next_below(8)));
      // A flip landing on '\n' would split the line in two; keep the
      // one-request-per-line framing and exercise the NUL path instead.
      if (line.text[pos] == '\n') line.text[pos] = '\0';
      line.touched = true;
      return;
    }
    case 1: {  // truncate mid-request
      StreamLine& line = lines[rng.next_below(lines.size())];
      if (line.text.empty()) return;
      line.text.resize(rng.next_below(line.text.size()));
      line.touched = true;
      return;
    }
    case 2: {  // embedded NUL byte
      StreamLine& line = lines[rng.next_below(lines.size())];
      line.text.insert(rng.next_below(line.text.size() + 1), 1, '\0');
      line.touched = true;
      return;
    }
    case 3: {  // random garbage bytes (frequently invalid UTF-8)
      std::string junk(1 + rng.next_below(64), '\0');
      for (char& c : junk) {
        c = static_cast<char>(1 + rng.next_below(255));
        if (c == '\n') c = '\0';
      }
      insert_line(std::move(junk));
      return;
    }
    case 4:  // nesting far beyond the parser's 128-level cap
      insert_line(std::string(512, '['));
      return;
    case 5:  // exceeds the session's line byte cap
      insert_line(std::string(kFuzzMaxLineBytes + 4096, 'a'));
      return;
    case 6:  // unknown envelope field
      insert_line("{\"id\":\"mut-" + std::to_string(serial) +
                  "\",\"op\":\"query\",\"bogus\":true}");
      return;
    default:  // mistyped field
      insert_line("{\"id\":\"mut-" + std::to_string(serial) +
                  "\",\"op\":\"query\",\"model\":{\"kind\":\"ctmdp\",\"source\":7},"
                  "\"times\":[1]}");
      return;
  }
}

/// Reference answers from one clean replay: id -> (results JSON, model hash).
struct ReferenceAnswer {
  std::string results;
  std::string model_hash;
};

std::string run_stream(const std::string& stream) {
  AnalysisService service(ServiceOptions{.workers = 2, .default_deadline = 10.0});
  SessionOptions options;
  options.client = "fuzz";
  options.timing = false;
  options.max_line_bytes = kFuzzMaxLineBytes;
  std::istringstream in(stream);
  std::ostringstream out;
  server::run_session(in, out, service, options);
  return out.str();
}

std::vector<std::string> split_lines(const std::string& text) {
  std::vector<std::string> lines;
  std::istringstream in(text);
  std::string line;
  while (std::getline(in, line)) lines.push_back(line);
  return lines;
}

void fuzz_one_stream(Ctx& ctx, const ServerFuzzConfig& config) {
  Rng fixture_rng(derive_seed(ctx.seed, kStreamWireFixture));
  Rng mutate_rng(derive_seed(ctx.seed, kStreamWireMutate));

  std::vector<StreamLine> lines;
  const std::uint64_t num_queries = 2 + fixture_rng.next_below(3);
  for (std::uint64_t i = 0; i < num_queries; ++i) {
    StreamLine line;
    line.clean_id = "q" + std::to_string(i);
    line.text = make_query_line(fixture_rng, line.clean_id);
    lines.push_back(std::move(line));
  }
  const std::string tail =
      "{\"id\":\"stats-end\",\"op\":\"stats\"}\n{\"id\":\"end\",\"op\":\"shutdown\"}\n";

  // Clean replay: the oracle for every line the mutations leave alone.
  std::string clean_stream;
  for (const StreamLine& line : lines) clean_stream += line.text + "\n";
  clean_stream += tail;
  std::map<std::string, ReferenceAnswer> reference;
  for (const std::string& out : split_lines(run_stream(clean_stream))) {
    const Json parsed = Json::parse(out);
    if (parsed.find("hello") != nullptr) continue;
    const std::string id = parsed.get_string("id", "");
    if (!parsed.get_bool("ok", false)) continue;
    const Json* results = parsed.find("results");
    if (results == nullptr) continue;
    reference[id] = ReferenceAnswer{results->dump(), parsed.get_string("model_hash", "")};
  }
  ctx.check(reference.size() == num_queries, "wire",
            "clean replay failed: only " + std::to_string(reference.size()) + " of " +
                std::to_string(num_queries) + " fixture queries answered ok");

  for (unsigned m = 0; m < config.mutations_per_stream; ++m) {
    apply_mutation(mutate_rng, lines, m);
    ++ctx.report->faults_injected;
  }

  // A mutated line forfeits its oracle — and if the damage happens to
  // produce a *valid* request claiming some other id (a bit flip inside the
  // id string), that id's oracle is forfeit too.
  std::set<std::string> touched;
  for (const StreamLine& line : lines) {
    if (!line.touched) continue;
    if (!line.clean_id.empty()) touched.insert(line.clean_id);
    try {
      const Json parsed = Json::parse(line.text);
      const Json* id = parsed.find("id");
      if (id != nullptr && id->is_string()) touched.insert(id->as_string());
    } catch (const std::exception&) {
      // Unparseable mutant: it can only ever be answered with id "".
    }
  }

  std::string mutated_stream;
  for (const StreamLine& line : lines) mutated_stream += line.text + "\n";
  mutated_stream += tail;
  const std::string output = run_stream(mutated_stream);

  bool hello_seen = false;
  bool bye_seen = false;
  bool stats_ok = false;
  std::map<std::string, int> answered;
  for (const std::string& out : split_lines(output)) {
    Json parsed;
    try {
      parsed = Json::parse(out);
    } catch (const std::exception& e) {
      ctx.fail("wire", std::string("output line is not valid JSON (") + e.what() +
                           "): " + out.substr(0, 160));
      continue;
    }
    ++ctx.report->checks_run;  // the line parsed
    if (parsed.find("hello") != nullptr) {
      hello_seen = true;
      continue;
    }
    const Json* ok = parsed.find("ok");
    ctx.check(ok != nullptr && ok->is_bool(), "wire",
              "response without a bool 'ok': " + out.substr(0, 160));
    if (ok == nullptr || !ok->is_bool()) continue;
    const Json* id_field = parsed.find("id");
    const std::string id =
        id_field != nullptr && id_field->is_string() ? id_field->as_string() : "";
    ++answered[id];

    if (!ok->as_bool()) {
      const Json* error = parsed.find("error");
      const bool typed = error != nullptr && error->is_object() &&
                         error->find("code") != nullptr && error->find("code")->is_string() &&
                         error->find("message") != nullptr;
      ctx.check(typed, "wire", "failure response without a typed error object: " +
                                   out.substr(0, 160));
      continue;
    }
    if (id == "stats-end") stats_ok = true;
    if (id == "end" && parsed.get_bool("bye", false)) bye_seen = true;
    const auto ref = reference.find(id);
    if (ref == reference.end() || touched.count(id) > 0) continue;
    const Json* results = parsed.find("results");
    ctx.check(results != nullptr && results->dump() == ref->second.results, "wire",
              "untouched request '" + id + "' answered with different results than the clean replay");
    ctx.check(parsed.get_string("model_hash", "") == ref->second.model_hash, "wire",
              "untouched request '" + id + "' answered with a different model hash");
  }

  ctx.check(hello_seen, "wire", "session did not open with the hello line");
  for (const StreamLine& line : lines) {
    if (line.touched || line.clean_id.empty()) continue;
    const auto it = answered.find(line.clean_id);
    ctx.check(it != answered.end() && it->second == 1, "wire",
              "untouched request '" + line.clean_id + "' answered " +
                  std::to_string(it == answered.end() ? 0 : it->second) +
                  " times (want exactly 1)");
  }
  ctx.check(stats_ok, "wire", "trailing stats op was not answered ok");
  ctx.check(bye_seen, "wire",
            "trailing shutdown was not acknowledged — the session never re-synchronized");
}

// ---------------------------------------------------------------------------
// Chaos harness
// ---------------------------------------------------------------------------

std::string serialize_ctmdp(const Ctmdp& model) {
  std::ostringstream out;
  io::write_ctmdp(out, model);
  return out.str();
}

std::string serialize_ctmc(const Ctmc& chain) {
  std::ostringstream out;
  io::write_ctmc(out, chain);
  return out.str();
}

std::string serialize_goal(const BitVector& goal) {
  std::ostringstream out;
  io::write_goal(out, goal);
  return out.str();
}

QueryRequest make_ctmdp_request(Rng& rng, std::string id) {
  RandomCtmdpConfig config;
  config.num_states = 8 + rng.next_below(8);
  const Ctmdp model = random_uniform_ctmdp(rng, config);
  const BitVector goal = random_goal(rng, model.num_states(), 0.3);

  QueryRequest request;
  request.client = "chaos";
  request.id = std::move(id);
  request.kind = ModelKind::CtmdpFile;
  request.source = serialize_ctmdp(model);
  request.labels = serialize_goal(goal);
  request.times = {0.4, 1.3};
  request.objective = rng.next_below(2) == 0 ? Objective::Maximize : Objective::Minimize;
  request.backend = Backend::Serial;
  return request;
}

QueryRequest make_ctmc_request(Rng& rng, std::string id) {
  RandomCtmcConfig config;
  config.num_states = 8 + rng.next_below(8);
  const Ctmc chain = random_ctmc(rng, config);
  const BitVector goal = random_goal(rng, chain.num_states(), 0.3);

  QueryRequest request;
  request.client = "chaos";
  request.id = std::move(id);
  request.kind = ModelKind::CtmcFile;
  request.source = serialize_ctmc(chain);
  request.labels = serialize_goal(goal);
  request.times = {0.7};
  request.backend = Backend::Serial;
  return request;
}

/// A request sized to occupy a worker for >= ~100 ms (same shape as the
/// server_test blocker), pinning queue contents while others are submitted.
QueryRequest make_blocker() {
  Rng rng(0xb10cce5u);
  RandomCtmdpConfig config;
  config.num_states = 600;
  config.uniform_rate = 3.0;
  const Ctmdp model = random_uniform_ctmdp(rng, config);
  const BitVector goal = random_goal(rng, model.num_states(), 0.1);

  QueryRequest request;
  request.client = "chaos";
  request.id = "blocker";
  request.kind = ModelKind::CtmdpFile;
  request.source = serialize_ctmdp(model);
  request.labels = serialize_goal(goal);
  request.times = {400.0, 401.0, 402.0, 403.0};
  request.epsilon = 1e-12;
  request.backend = Backend::Serial;
  return request;
}

bool same_answers(const std::vector<HorizonAnswer>& a, const std::vector<HorizonAnswer>& b) {
  if (a.size() != b.size()) return false;
  for (std::size_t j = 0; j < a.size(); ++j) {
    if (bits(a[j].time) != bits(b[j].time) || bits(a[j].value) != bits(b[j].value) ||
        bits(a[j].residual_bound) != bits(b[j].residual_bound) ||
        a[j].iterations_planned != b[j].iterations_planned ||
        a[j].iterations_executed != b[j].iterations_executed || a[j].status != b[j].status) {
      return false;
    }
  }
  return true;
}

void submit_async(AnalysisService& service, QueryRequest request,
                  std::future<QueryResponse>& out) {
  auto promise = std::make_shared<std::promise<QueryResponse>>();
  out = promise->get_future();
  service.submit(std::move(request), [promise](QueryResponse r) {
    promise->set_value(std::move(r));
  });
}

bool wait_for_batches(AnalysisService& service, std::uint64_t batches) {
  for (int i = 0; i < 200000; ++i) {
    if (service.stats().batches >= batches) return true;
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  return false;
}

std::string read_file(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  std::ostringstream out;
  out << in.rdbuf();
  return out.str();
}

void write_file(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

/// Scenario 1: cancel-mid-sweep.  The faulted request must be answered with
/// a sound partial (or a typed Cancelled error) and its clean co-request —
/// running on the second worker — must be answered bit-identically to the
/// undisturbed reference.
void chaos_cancel(Ctx& ctx, Rng& plan, const QueryRequest& base,
                  const std::vector<HorizonAnswer>& expected) {
  AnalysisService service(ServiceOptions{.workers = 2});
  QueryRequest faulted = base;
  faulted.id = "fault";
  faulted.cancel_after_polls = 1 + plan.next_below(8);
  std::future<QueryResponse> fault_done, clean_done;
  submit_async(service, std::move(faulted), fault_done);
  QueryRequest clean = base;
  clean.id = "clean";
  submit_async(service, std::move(clean), clean_done);
  const QueryResponse fault = fault_done.get();
  const QueryResponse survivor = clean_done.get();
  ++ctx.report->faults_injected;

  ctx.check(survivor.error == ErrorCode::Ok && same_answers(survivor.results, expected),
            "cancel", "clean co-request was not answered bit-identically to the reference");
  if (fault.error == ErrorCode::Cancelled) return;  // typed abort: sound
  ctx.check(fault.error == ErrorCode::Ok, "cancel",
            "cancelled request answered with unexpected error: " + fault.message);
  if (fault.error != ErrorCode::Ok) return;
  ctx.check(fault.results.size() == expected.size(), "cancel",
            "cancelled request answered with the wrong horizon count");
  if (fault.results.size() != expected.size()) return;
  for (std::size_t j = 0; j < fault.results.size(); ++j) {
    const HorizonAnswer& h = fault.results[j];
    if (h.status == RunStatus::Converged) {
      ctx.check(bits(h.value) == bits(expected[j].value), "cancel",
                "converged horizon of a cancelled request differs from the reference — "
                "unsound answer");
    } else {
      ctx.check(std::isfinite(h.value) && h.value >= -1e-9 && h.value <= 1.0 + 1e-9 &&
                    h.iterations_executed <= h.iterations_planned,
                "cancel", "partial horizon of a cancelled request is out of range");
    }
  }
}

/// Scenario 2: allocation failure mid-solve.  Typed OutOfMemory (or a full,
/// bit-identical answer when the fault never fires) — and the service must
/// answer the next clean request bit-identically (no poisoned cache).
void chaos_alloc(Ctx& ctx, Rng& plan, const QueryRequest& base,
                 const std::vector<HorizonAnswer>& expected) {
  AnalysisService service(ServiceOptions{.workers = 1});
  QueryRequest faulted = base;
  faulted.id = "fault";
  faulted.fault_alloc_nth = 1 + plan.next_below(40);
  const QueryResponse fault = service.query(std::move(faulted));
  ++ctx.report->faults_injected;
  const bool sound = fault.error == ErrorCode::OutOfMemory ||
                     (fault.error == ErrorCode::Ok && same_answers(fault.results, expected));
  ctx.check(sound, "alloc",
            "allocation-faulted request neither failed typed nor answered bit-identically "
            "(error " +
                std::to_string(static_cast<int>(fault.error)) + ": " + fault.message + ")");

  QueryRequest clean = base;
  clean.id = "after";
  const QueryResponse after = service.query(std::move(clean));
  ctx.check(after.error == ErrorCode::Ok && same_answers(after.results, expected), "alloc",
            "service did not recover after an allocation fault: " + after.message);
}

/// Scenario 3: NaN-poisoned iterate.  The damage must stay in this request:
/// typed Numeric error, NaN in its own answer, or a bit-identical value the
/// poison never reached — never a *finite but different* value.
void chaos_poison(Ctx& ctx, Rng& plan, const QueryRequest& base,
                  const std::vector<HorizonAnswer>& expected) {
  AnalysisService service(ServiceOptions{.workers = 1});
  QueryRequest faulted = base;
  faulted.id = "fault";
  faulted.fault_poison_step = 1 + plan.next_below(6);
  const QueryResponse fault = service.query(std::move(faulted));
  ++ctx.report->faults_injected;
  if (fault.error != ErrorCode::Numeric) {
    ctx.check(fault.error == ErrorCode::Ok && fault.results.size() == expected.size(), "poison",
              "poisoned request answered with unexpected error: " + fault.message);
    if (fault.error == ErrorCode::Ok && fault.results.size() == expected.size()) {
      for (std::size_t j = 0; j < fault.results.size(); ++j) {
        const double v = fault.results[j].value;
        ctx.check(std::isnan(v) || bits(v) == bits(expected[j].value), "poison",
                  "poisoned request produced a finite value that differs from the "
                  "reference — silent corruption");
      }
    }
  }

  QueryRequest clean = base;
  clean.id = "after";
  const QueryResponse after = service.query(std::move(clean));
  ctx.check(after.error == ErrorCode::Ok && same_answers(after.results, expected), "poison",
            "service did not recover after a poisoned solve: " + after.message);
}

/// Scenario 4: simulated worker death.  Typed Internal answer, clean
/// co-request unharmed, worker pool still alive afterwards.
void chaos_worker_throw(Ctx& ctx, const QueryRequest& base,
                        const std::vector<HorizonAnswer>& expected) {
  AnalysisService service(ServiceOptions{.workers = 2});
  QueryRequest faulted = base;
  faulted.id = "fault";
  faulted.fault_throw = true;
  std::future<QueryResponse> fault_done, clean_done;
  submit_async(service, std::move(faulted), fault_done);
  QueryRequest clean = base;
  clean.id = "clean";
  submit_async(service, std::move(clean), clean_done);
  const QueryResponse fault = fault_done.get();
  const QueryResponse survivor = clean_done.get();
  ++ctx.report->faults_injected;

  ctx.check(fault.error == ErrorCode::Internal &&
                fault.message.find("fault plan") != std::string::npos,
            "worker-throw", "worker fault was not answered as a typed Internal error");
  ctx.check(survivor.error == ErrorCode::Ok && same_answers(survivor.results, expected),
            "worker-throw", "clean co-request was damaged by a worker fault");

  QueryRequest again = base;
  again.id = "after";
  const QueryResponse after = service.query(std::move(again));
  ctx.check(after.error == ErrorCode::Ok && same_answers(after.results, expected),
            "worker-throw", "worker pool did not survive an injected fault");
}

/// Scenarios 5+6: snapshot warm restart and torn snapshot.  A warm-started
/// service must answer bit-identically out of the cache and re-snapshot to
/// byte-identical bytes; a torn/corrupted snapshot must be detected and
/// degrade to a cold start with correct answers.
void chaos_snapshot(Ctx& ctx, Rng& tear, const ServerFuzzConfig& config,
                    const QueryRequest& req_a, const std::vector<HorizonAnswer>& expected_a,
                    const QueryRequest& req_c, const std::vector<HorizonAnswer>& expected_c) {
  const std::string stem =
      config.scratch_dir + "/unicon_server_chaos_" + std::to_string(ctx.seed);
  const std::string snap_path = stem + ".snap";
  const std::string resnap_path = stem + ".resnap";
  const std::string torn_path = stem + ".torn";

  std::string snapshot_bytes;
  std::size_t entries_written = 0;
  {
    AnalysisService warm_source(ServiceOptions{.workers = 1});
    const QueryResponse a = warm_source.query(req_a);
    const QueryResponse c = warm_source.query(req_c);
    ctx.check(a.error == ErrorCode::Ok && same_answers(a.results, expected_a) &&
                  c.error == ErrorCode::Ok && same_answers(c.results, expected_c),
              "snapshot-warm", "cold service disagrees with the reference service");
    try {
      const auto saved = warm_source.save_cache(snap_path);
      entries_written = saved.entries_written;
      ctx.check(saved.entries_written == 2, "snapshot-warm",
                "expected 2 snapshot entries, wrote " + std::to_string(saved.entries_written));
    } catch (const std::exception& e) {
      ctx.fail("snapshot-warm", std::string("save_cache threw: ") + e.what());
      return;
    }
    snapshot_bytes = read_file(snap_path);
  }

  {
    AnalysisService restarted(ServiceOptions{.workers = 1});
    const auto loaded = restarted.load_cache(snap_path);
    ctx.check(loaded.entries_loaded == entries_written && loaded.entries_corrupt == 0 &&
                  !loaded.truncated,
              "snapshot-warm", "pristine snapshot did not load cleanly");
    const QueryResponse a = restarted.query(req_a);
    const QueryResponse c = restarted.query(req_c);
    ctx.check(a.error == ErrorCode::Ok && same_answers(a.results, expected_a) && a.cache_hit &&
                  c.error == ErrorCode::Ok && same_answers(c.results, expected_c) && c.cache_hit,
              "snapshot-warm",
              "warm restart did not answer bit-identically out of the loaded cache");
    try {
      restarted.save_cache(resnap_path);
      ctx.check(read_file(resnap_path) == snapshot_bytes, "snapshot-warm",
                "re-snapshot of a warm-started cache is not byte-identical");
    } catch (const std::exception& e) {
      ctx.fail("snapshot-warm", std::string("re-snapshot threw: ") + e.what());
    }
  }

  // Tear the snapshot three ways (rotating by seed): truncation, a single
  // flipped bit, a stomped byte range.
  std::string torn = snapshot_bytes;
  switch (ctx.seed % 3) {
    case 0:
      torn.resize(1 + tear.next_below(torn.size() - 1));
      break;
    case 1: {
      const std::size_t pos = tear.next_below(torn.size());
      torn[pos] = static_cast<char>(torn[pos] ^ (1u << tear.next_below(8)));
      break;
    }
    default: {
      const std::size_t pos = tear.next_below(torn.size() > 8 ? torn.size() - 8 : 1);
      for (std::size_t j = 0; j < 8 && pos + j < torn.size(); ++j) {
        torn[pos + j] = static_cast<char>(0xFF);
      }
      break;
    }
  }
  write_file(torn_path, torn);
  ++ctx.report->faults_injected;
  {
    AnalysisService cold(ServiceOptions{.workers = 1});
    const auto loaded = cold.load_cache(torn_path);  // must not throw
    ctx.check(loaded.entries_corrupt > 0 || loaded.truncated ||
                  loaded.entries_loaded < entries_written,
              "snapshot-torn", "corruption was not detected by the snapshot loader");
    const QueryResponse a = cold.query(req_a);
    const QueryResponse c = cold.query(req_c);
    ctx.check(a.error == ErrorCode::Ok && same_answers(a.results, expected_a) &&
                  c.error == ErrorCode::Ok && same_answers(c.results, expected_c),
              "snapshot-torn",
              "service with a torn snapshot did not degrade to correct cold answers");
  }

  std::remove(snap_path.c_str());
  std::remove(resnap_path.c_str());
  std::remove(torn_path.c_str());
}

/// Scenario 7: overload and drain.  Overflow answered Overloaded with a
/// retry hint, drain refuses new work naming the reason, admitted work
/// still completes and every callback fires.
void chaos_overload_drain(Ctx& ctx, const QueryRequest& base) {
  AnalysisService service(ServiceOptions{.workers = 1, .max_pending = 2});

  std::future<QueryResponse> blocker_done;
  submit_async(service, make_blocker(), blocker_done);
  if (!wait_for_batches(service, 1)) {
    ctx.fail("overload", "blocker was never dispatched");
    return;
  }

  // The worker is pinned on the blocker; these two fill the queue exactly.
  std::vector<std::future<QueryResponse>> fillers(2);
  for (std::size_t i = 0; i < fillers.size(); ++i) {
    QueryRequest filler = base;
    filler.id = "fill" + std::to_string(i);
    filler.epsilon = 1e-6 * static_cast<double>(i + 1);  // distinct solve keys
    submit_async(service, std::move(filler), fillers[i]);
  }

  QueryRequest overflow = base;
  overflow.id = "overflow";
  const QueryResponse rejected = service.query(std::move(overflow));
  ctx.check(rejected.error == ErrorCode::Overloaded, "overload",
            "overflow past max_pending was not answered Overloaded: " + rejected.message);
  ctx.check(rejected.retry_after_ms >= 100 && rejected.retry_after_ms <= 60000, "overload",
            "Overloaded answer carries no usable retry_after_ms (" +
                std::to_string(rejected.retry_after_ms) + ")");

  service.begin_drain();
  QueryRequest late = base;
  late.id = "late";
  const QueryResponse refused = service.query(std::move(late));
  ctx.check(refused.error == ErrorCode::Overloaded &&
                refused.message.find("draining") != std::string::npos &&
                refused.retry_after_ms > 0,
            "drain", "submission during drain was not refused with a draining hint");

  service.wait_drained();
  const QueryResponse blocker = blocker_done.get();
  ctx.check(blocker.error == ErrorCode::Ok, "drain",
            "blocker did not complete across the drain: " + blocker.message);
  for (auto& filler : fillers) {
    const QueryResponse r = filler.get();
    ctx.check(r.error == ErrorCode::Ok && r.results.size() == base.times.size(), "drain",
              "queued request was not completed across the drain: " + r.message);
  }
  const auto stats = service.stats();
  ctx.check(stats.rejected == 2 && stats.draining && stats.pending == 0, "drain",
            "post-drain stats inconsistent (rejected " + std::to_string(stats.rejected) +
                ", draining " + std::to_string(stats.draining) + ", pending " +
                std::to_string(stats.pending) + ")");
}

void chaos_one_seed(Ctx& ctx, const ServerFuzzConfig& config) {
  Rng model_rng(derive_seed(ctx.seed, kStreamChaosModel));
  Rng plan_rng(derive_seed(ctx.seed, kStreamChaosPlan));
  Rng tear_rng(derive_seed(ctx.seed, kStreamChaosTear));

  const QueryRequest req_a = make_ctmdp_request(model_rng, "ref");
  const QueryRequest req_c = make_ctmc_request(model_rng, "ref");

  // The undisturbed reference: a dedicated service nothing is injected into.
  std::vector<HorizonAnswer> expected_a, expected_c;
  {
    AnalysisService reference(ServiceOptions{.workers = 1});
    const QueryResponse a = reference.query(req_a);
    const QueryResponse c = reference.query(req_c);
    if (a.error != ErrorCode::Ok || c.error != ErrorCode::Ok) {
      ctx.fail("reference", "reference solve failed: " + a.message + c.message);
      return;
    }
    expected_a = a.results;
    expected_c = c.results;
  }

  chaos_cancel(ctx, plan_rng, req_a, expected_a);
  chaos_alloc(ctx, plan_rng, req_a, expected_a);
  chaos_poison(ctx, plan_rng, req_a, expected_a);
  chaos_worker_throw(ctx, req_a, expected_a);
  chaos_snapshot(ctx, tear_rng, config, req_a, expected_a, req_c, expected_c);
  chaos_overload_drain(ctx, req_a);
}

}  // namespace

ServerFuzzReport run_server_fuzz(const ServerFuzzConfig& config, const ServerFuzzLogFn& log) {
  ServerFuzzReport report;
  for (std::uint64_t s = 0; s < config.num_seeds; ++s) {
    Ctx ctx;
    ctx.seed = config.base_seed + s;
    ctx.report = &report;
    ctx.log = &log;
    fuzz_one_stream(ctx, config);
    ctx.flush();
    ++report.seeds_run;
  }
  return report;
}

ServerFuzzReport run_server_chaos(const ServerFuzzConfig& config, const ServerFuzzLogFn& log) {
  ServerFuzzReport report;
  for (std::uint64_t s = 0; s < config.num_seeds; ++s) {
    Ctx ctx;
    ctx.seed = config.base_seed + s;
    ctx.report = &report;
    ctx.log = &log;
    chaos_one_seed(ctx, config);
    ctx.flush();
    ++report.seeds_run;
  }
  return report;
}

}  // namespace unicon::testing
