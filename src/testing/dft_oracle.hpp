// Independent brute-force oracle and differential fuzzer for the DFT
// frontend (src/dft/).
//
// The production path lowers every element to an IMC leaf and runs the
// generic machinery: CSP multiway composition, urgency-pruned on-the-fly
// exploration, hide_all, bisimulation minimization, Sec. 4.1 transform,
// Algorithm 1.  The oracle here shares *none* of that: it enumerates the
// product state space directly from per-element status words (BE phases,
// gate counters, spare holder/failed-set, fdep kill cursor), applying
// signal deliveries as joint updates across emitter and listeners.  The
// resulting raw tau-labeled IMC then flows through the oracle-side chain
// of oracle.hpp (bruteforce_transform -> naive_timed_reachability), so a
// production-vs-oracle match certifies the gate lowering end to end
// without trusting compose/explore/minimize/transform/solver.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "ctmdp/reachability.hpp"
#include "dft/sema.hpp"
#include "imc/imc.hpp"
#include "support/backend.hpp"
#include "support/bit_vector.hpp"
#include "testing/differential.hpp"

namespace unicon::testing {

/// Direct product enumeration of @p dft's semantics: a closed tau-labeled
/// IMC, uniform at E = sum of lambdas by per-state rate padding.  When
/// @p failed is non-null it receives the "top element failed" mask.
Imc dft_oracle_imc(const dft::CheckedDft& dft, BitVector* failed = nullptr);

/// Unreliability at the initial state through the oracle-only chain
/// (dft_oracle_imc -> bruteforce_transform -> naive_timed_reachability).
double dft_oracle_unreliability(const dft::CheckedDft& dft, double t, double eps,
                                Objective objective);

/// Seeded random Galileo source.  @p level walks the shrink ladder: 0 is
/// the full generator (up to 7 basic events, nested gates, optionally a
/// spare gate and an fdep), higher levels generate strictly smaller trees.
std::string generate_dft_source(std::uint64_t seed, int level);
constexpr int kDftShrinkLevels = 3;

struct DftFuzzConfig {
  std::uint64_t base_seed = 1;
  std::uint64_t num_seeds = 25;
  double time = 1.0;
  /// Truncation precision for solver and oracle.
  double epsilon = 1e-12;
  /// Production-vs-oracle agreement tolerance.
  double tolerance = 1e-9;
  /// Backend forced into the production solves (thread-count bit-identity
  /// is checked inside regardless).
  Backend backend = Backend::Auto;
  /// Injected solver bug (mutation testing): PerturbValue and SwapObjective
  /// are supported; the run must then fail.
  Mutation mutation = Mutation::None;
  bool shrink = true;
  /// Directory for failing .dft sources ("" disables writing).
  std::string artifact_dir;
};

struct DftFuzzFailure {
  std::uint64_t seed = 0;
  int level = 0;
  std::string message;
  /// Galileo source of the (shrunk) failing tree.
  std::string source;
  std::vector<std::string> artifacts;
};

struct DftFuzzReport {
  std::uint64_t seeds_run = 0;
  std::uint64_t checks_run = 0;
  std::vector<DftFuzzFailure> failures;
  bool ok() const { return failures.empty(); }
};

using DftLogFn = std::function<void(const std::string&)>;

/// A fixed tree whose inf and sup genuinely differ: an fdep kills both
/// inputs of a pand at once, so the delivery order of the two fail signals
/// (scheduler-resolved) decides between gate failure and failsafe.  Used
/// by the fuzz self-check to prove the swap-objective mutation is caught.
std::string dft_nondeterministic_showcase();

/// Runs the full differential check battery on one Galileo source; returns
/// the first failure description, or an empty string when everything
/// agrees.  @p checks (optional) accumulates the number of checks run.
std::string check_dft_source(const std::string& source, const DftFuzzConfig& config,
                             std::uint64_t* checks = nullptr);

/// Per seed: generate a tree, run production max/min (plus a 1-vs-2-thread
/// bit-identity check and a minimized-vs-unminimized check) against the
/// oracle chain.  Failing seeds are shrunk down the generator ladder.
DftFuzzReport run_dft_fuzz(const DftFuzzConfig& config, const DftLogFn& log = {});

}  // namespace unicon::testing
