#include "testing/fault_injection.hpp"

#include <cmath>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <limits>
#include <new>
#include <optional>
#include <sstream>
#include <string>

#include "core/analysis.hpp"
#include "ctmdp/reachability.hpp"
#include "io/tra.hpp"
#include "lang/build.hpp"
#include "lang/fuzz.hpp"
#include "lang/parser.hpp"
#include "lang/printer.hpp"
#include "support/errors.hpp"
#include "support/rng.hpp"
#include "support/run_guard.hpp"
#include "testing/generate.hpp"

namespace unicon::testing {

namespace {

// Independent derive_seed streams per scenario, so adding draws to one
// scenario never shifts another.
constexpr std::uint64_t kStreamModel = 0xfa01;
constexpr std::uint64_t kStreamCancel = 0xfa02;
constexpr std::uint64_t kStreamAlloc = 0xfa03;
constexpr std::uint64_t kStreamPoison = 0xfa04;
constexpr std::uint64_t kStreamPipeline = 0xfa05;
constexpr std::uint64_t kStreamCorrupt = 0xfa06;

struct Ctx {
  std::uint64_t seed = 0;
  const FaultConfig* config = nullptr;
  FaultReport* report = nullptr;
  std::optional<FaultFailure> failure;

  void fail(const std::string& scenario, const std::string& message) {
    if (failure) return;  // keep the first failure per seed
    failure = FaultFailure{seed, scenario, message, {}};
  }
  void check(bool ok, const std::string& scenario, const std::string& message) {
    ++report->checks_run;
    if (!ok) fail(scenario, message);
  }
};

bool bitwise_equal(const std::vector<double>& a, const std::vector<double>& b) {
  if (a.size() != b.size()) return false;
  return a.empty() ||
         std::memcmp(a.data(), b.data(), a.size() * sizeof(double)) == 0;
}

/// Max |a - b|, NaN-latching (a NaN deviation never compares small).
double max_deviation(const std::vector<double>& a, const std::vector<double>& b) {
  double dev = 0.0;
  for (std::size_t i = 0; i < a.size() && i < b.size(); ++i) {
    const double d = std::abs(a[i] - b[i]);
    if (!(d <= dev)) dev = d;
  }
  return dev;
}

/// The guarded test model of a seed: a random uniform CTMDP with a goal
/// mask, plus its unfaulted reference solve.
struct SolveCase {
  Ctmdp model;
  BitVector goal;
  TimedReachabilityOptions options;
  TimedReachabilityResult reference;
};

SolveCase make_solve_case(const Ctx& ctx) {
  Rng rng(derive_seed(ctx.seed, kStreamModel));
  RandomCtmdpConfig model_config;
  model_config.num_states = 8 + rng.next_below(25);
  SolveCase c;
  c.model = random_uniform_ctmdp(rng, model_config);
  c.goal = random_goal(rng, c.model.num_states());
  c.options.epsilon = ctx.config->epsilon;
  c.options.threads = ctx.config->threads;
  c.options.backend = ctx.config->backend;
  // The reference run records the full scheduler artifact so the cancel
  // scenario can assert that a resumed run reconstructs it exactly
  // (pre-interruption decision rows included).
  c.options.extract_scheduler = true;
  c.options.objective = rng.next_below(2) == 0 ? Objective::Maximize : Objective::Minimize;
  c.reference = timed_reachability(c.model, c.goal, ctx.config->time, c.options);
  return c;
}

// --- cancel: deterministic mid-iteration cancellation + resume -------------

void run_cancel(Ctx& ctx, const SolveCase& c) {
  const std::uint64_t k = c.reference.iterations_planned;
  if (k == 0) return;
  Rng rng(derive_seed(ctx.seed, kStreamCancel));
  // First poll, a random interior poll, the last poll, and one past the end
  // (which must not fire at all).
  const std::uint64_t points[] = {1, 1 + rng.next_below(k), k, k + 3};
  for (const std::uint64_t p : points) {
    RunGuard guard;
    guard.cancel_after_polls(p);
    TimedReachabilityOptions options = c.options;
    options.guard = &guard;
    TimedReachabilityResult partial;
    try {
      partial = timed_reachability(c.model, c.goal, ctx.config->time, options);
    } catch (const Error& e) {
      ctx.fail("cancel", "typed error from a solver cancellation (partial result expected): " +
                             std::string(e.what()));
      return;
    }
    if (p > k) {
      ctx.check(partial.status == RunStatus::Converged &&
                    bitwise_equal(partial.values, c.reference.values),
                "cancel", "un-triggered cancel plan changed the result");
      continue;
    }
    ++ctx.report->faults_injected;
    ctx.check(partial.status == RunStatus::Cancelled, "cancel",
              "expected Cancelled status at poll " + std::to_string(p) + ", got " +
                  run_status_name(partial.status));
    if (partial.status != RunStatus::Cancelled) continue;
    const double dev = max_deviation(partial.values, c.reference.values);
    ctx.check(dev <= partial.residual_bound + ctx.config->tolerance, "cancel",
              "partial result violates its residual bound: |partial - ref| = " +
                  std::to_string(dev) + " > " + std::to_string(partial.residual_bound));
    // Resume must complete bit-identically to the uninterrupted run.
    TimedReachabilityOptions resume_options = c.options;
    resume_options.resume = &partial;
    const TimedReachabilityResult resumed =
        timed_reachability(c.model, c.goal, ctx.config->time, resume_options);
    ctx.check(resumed.status == RunStatus::Converged &&
                  bitwise_equal(resumed.values, c.reference.values),
              "cancel", "resume from poll " + std::to_string(p) +
                            " is not bit-identical to the uninterrupted run");
    // Regression: the resumed run must merge the partial result's decision
    // table — without the merge, rows recorded before the interruption
    // (steps [start, k)) would come back empty and the extracted scheduler
    // would silently disagree with an uninterrupted run.
    ctx.check(resumed.initial_decision == c.reference.initial_decision, "cancel",
              "resumed initial_decision differs from the uninterrupted run");
    ctx.check(resumed.decisions == c.reference.decisions, "cancel",
              "resumed decision table dropped or altered pre-interruption rows (poll " +
                  std::to_string(p) + ")");
    if (ctx.failure) return;
  }
}

// --- alloc: the Nth heap allocation throws std::bad_alloc ------------------

void run_alloc(Ctx& ctx, const SolveCase& c) {
  Rng rng(derive_seed(ctx.seed, kStreamAlloc));
  // Probe: count the allocations of one accounted (but unfaulted) solve, so
  // the fault points below actually land inside the run.
  RunGuard probe_guard;
  std::uint64_t total_allocs = 0;
  {
    MemoryAccountingScope scope(probe_guard);
    const TimedReachabilityResult probed =
        timed_reachability(c.model, c.goal, ctx.config->time, c.options);
    total_allocs = accounted_allocations();
    ctx.check(bitwise_equal(probed.values, c.reference.values), "alloc",
              "memory accounting alone changed the result");
  }
  if (total_allocs == 0) return;

  for (int round = 0; round < 3; ++round) {
    // ~4/5 of the draws land inside the run; the rest beyond it (clean run).
    const std::uint64_t nth = 1 + rng.next_below(total_allocs + total_allocs / 4 + 1);
    RunGuard guard;
    bool oom = false;
    std::optional<TimedReachabilityResult> completed;
    try {
      MemoryAccountingScope scope(guard);
      arm_allocation_failure(nth);
      completed = timed_reachability(c.model, c.goal, ctx.config->time, c.options);
    } catch (const std::bad_alloc&) {
      oom = true;
    } catch (const Error& e) {
      ctx.fail("alloc", "allocation fault surfaced as " +
                            std::string(error_code_name(e.code())) + ": " + e.what());
      return;
    }
    if (oom) {
      ++ctx.report->faults_injected;
      ++ctx.report->checks_run;  // typed failure is the accepted outcome
    } else {
      ctx.check(completed && bitwise_equal(completed->values, c.reference.values), "alloc",
                "run that dodged allocation fault #" + std::to_string(nth) +
                    " is not bit-identical to the reference");
    }
    if (ctx.failure) return;
  }
}

// --- poison: NaN/Inf written into the live iterate via the checkpoint ------

void run_poison(Ctx& ctx, const SolveCase& c) {
  const std::uint64_t k = c.reference.iterations_planned;
  const std::size_t n = c.model.num_states();
  if (k == 0 || n == 0) return;
  Rng rng(derive_seed(ctx.seed, kStreamPoison));
  const double payloads[] = {std::numeric_limits<double>::quiet_NaN(),
                             std::numeric_limits<double>::infinity(),
                             -std::numeric_limits<double>::infinity()};
  // A random interior step (poison may wash out if the entry has no backward
  // readers) and the final step (the pre-clamp finiteness scan must always
  // catch that one).
  const std::uint64_t steps[] = {1 + rng.next_below(k), k};
  for (const std::uint64_t step : steps) {
    const double payload = payloads[rng.next_below(3)];
    const std::size_t index = rng.next_below(n);
    RunGuard guard;
    guard.set_checkpoint([&](const RunCheckpoint& cp) {
      if (cp.step == step && index < cp.values.size()) cp.values[index] = payload;
    });
    TimedReachabilityOptions options = c.options;
    options.guard = &guard;
    ++ctx.report->faults_injected;
    try {
      const TimedReachabilityResult poisoned =
          timed_reachability(c.model, c.goal, ctx.config->time, options);
      // No NumericError: only acceptable when the poison provably washed out
      // of an interior step, i.e. the result is bit-identical anyway.
      ctx.check(step < k && bitwise_equal(poisoned.values, c.reference.values), "poison",
                "poisoned iterate (step " + std::to_string(step) + "/" + std::to_string(k) +
                    ") was neither detected nor washed out");
    } catch (const NumericError&) {
      ++ctx.report->checks_run;  // detection is the expected outcome
    } catch (const Error& e) {
      ctx.fail("poison", "poisoned iterate raised " +
                             std::string(error_code_name(e.code())) +
                             " instead of NumericError: " + e.what());
    }
    if (ctx.failure) return;
  }
}

// --- pipeline: cancellation raced against the full lang pipeline -----------

struct PipelineOutcome {
  double value = 0.0;
  RunStatus status = RunStatus::Converged;
  double residual_bound = 0.0;
};

PipelineOutcome run_pipeline_once(const lang::Model& m, const Ctx& ctx, RunGuard* guard) {
  lang::BuildOptions build;
  build.max_states = 200000;
  build.guard = guard;
  const lang::BuiltModel built = lang::build_model(m, build);
  const lang::BuiltModel minimized = lang::minimize_model(built, guard);
  UimcAnalysisOptions analysis;
  analysis.reachability.epsilon = ctx.config->epsilon;
  analysis.reachability.threads = ctx.config->threads;
  analysis.reachability.guard = guard;
  const UimcAnalysisResult r = analyze_timed_reachability(
      minimized.system, minimized.mask("goal"), ctx.config->time, analysis);
  PipelineOutcome out;
  out.value = r.value;
  out.status = r.reachability.status;
  out.residual_bound = r.reachability.residual_bound;
  return out;
}

void run_pipeline(Ctx& ctx) {
  const lang::Model m = lang::random_model(ctx.seed);
  const PipelineOutcome reference = run_pipeline_once(m, ctx, nullptr);

  // Probe with an idle guard: counts the polls of a full pipeline run and
  // doubles as a "guard presence changes nothing" check.
  RunGuard probe;
  const PipelineOutcome probed = run_pipeline_once(m, ctx, &probe);
  const std::uint64_t total_polls = probe.polls();
  ctx.check(probed.value == reference.value && probed.status == RunStatus::Converged,
            "pipeline", "idle guard changed the pipeline result");
  if (total_polls == 0) return;

  Rng rng(derive_seed(ctx.seed, kStreamPipeline));
  const std::uint64_t p = 1 + rng.next_below(total_polls);
  RunGuard guard;
  guard.cancel_after_polls(p);
  ++ctx.report->faults_injected;
  try {
    const PipelineOutcome faulted = run_pipeline_once(m, ctx, &guard);
    // The cancel fired inside the solver: a sound partial value is required.
    ctx.check(faulted.status == RunStatus::Cancelled &&
                  std::abs(faulted.value - reference.value) <=
                      faulted.residual_bound + ctx.config->tolerance,
              "pipeline",
              "cancel at poll " + std::to_string(p) + "/" + std::to_string(total_polls) +
                  " produced neither a typed error nor a sound partial result (status " +
                  run_status_name(faulted.status) + ")");
  } catch (const BudgetError& e) {
    // The cancel fired inside a structural stage.
    ctx.check(e.code() == ErrorCode::Cancelled, "pipeline",
              "structural cancel carried code " + std::string(error_code_name(e.code())));
  } catch (const Error& e) {
    ctx.fail("pipeline", "cancel surfaced as " + std::string(error_code_name(e.code())) +
                             ": " + e.what());
  }
}

// --- corrupt: truncated / bit-flipped model files --------------------------

std::string corrupt(std::string text, Rng& rng) {
  if (text.empty()) return text;
  switch (rng.next_below(3)) {
    case 0:  // truncate
      text.resize(rng.next_below(text.size()));
      return text;
    case 1: {  // flip one bit
      const std::size_t pos = rng.next_below(text.size());
      text[pos] = static_cast<char>(text[pos] ^ (1u << rng.next_below(8)));
      return text;
    }
    default: {  // overwrite one byte
      const std::size_t pos = rng.next_below(text.size());
      text[pos] = static_cast<char>(rng.next_below(256));
      return text;
    }
  }
}

std::vector<std::string> write_corrupt_artifact(const Ctx& ctx, const std::string& format,
                                                const std::string& text) {
  if (ctx.config->artifact_dir.empty()) return {};
  namespace fs = std::filesystem;
  fs::create_directories(ctx.config->artifact_dir);
  const std::string path = ctx.config->artifact_dir + "/seed-" + std::to_string(ctx.seed) +
                           "-corrupt." + format;
  std::ofstream out(path, std::ios::binary);
  out << text;
  return {path};
}

void run_corrupt(Ctx& ctx) {
  Rng rng(derive_seed(ctx.seed, kStreamCorrupt));

  // Pristine serialized inputs, one per reader.
  RandomCtmcConfig ctmc_config;
  std::stringstream ctmc_text;
  io::write_ctmc(ctmc_text, random_ctmc(rng, ctmc_config));
  std::stringstream imc_text;
  io::write_imc(imc_text, random_uniform_imc(rng));
  std::stringstream ctmdp_text;
  io::write_ctmdp(ctmdp_text, random_uniform_ctmdp(rng));
  std::stringstream lab_text;
  io::write_goal(lab_text, random_goal(rng, 12));
  const std::string uni_text = lang::print_model(lang::random_model(ctx.seed));

  struct Target {
    const char* format;
    std::string text;
  };
  const Target targets[] = {{"tra", ctmc_text.str()},
                            {"imc", imc_text.str()},
                            {"ctmdp", ctmdp_text.str()},
                            {"lab", lab_text.str()},
                            {"uni", uni_text}};

  for (const Target& target : targets) {
    for (int round = 0; round < 4; ++round) {
      const std::string mutated = corrupt(target.text, rng);
      ++ctx.report->faults_injected;
      const std::string scenario = std::string("corrupt-") + target.format;
      try {
        std::stringstream in(mutated);
        if (std::strcmp(target.format, "tra") == 0) {
          io::read_ctmc(in);
        } else if (std::strcmp(target.format, "imc") == 0) {
          io::read_imc(in);
        } else if (std::strcmp(target.format, "ctmdp") == 0) {
          io::read_ctmdp(in);
        } else if (std::strcmp(target.format, "lab") == 0) {
          io::read_labels(in, 12);
        } else {
          const lang::Model m = lang::parse_and_check(mutated, "<fault>");
          lang::BuildOptions build;
          build.max_states = 50000;
          lang::build_model(m, build);
        }
        ++ctx.report->checks_run;  // parsing a mutant cleanly is acceptable
      } catch (const Error&) {
        ++ctx.report->checks_run;  // typed rejection is the expected outcome
      } catch (const std::exception& e) {
        ctx.fail(scenario, std::string("untyped exception: ") + e.what());
        ctx.failure->artifacts = write_corrupt_artifact(ctx, target.format, mutated);
        return;
      }
    }
  }
}

}  // namespace

FaultReport run_fault_injection(const FaultConfig& config, const FaultLogFn& log) {
  FaultReport report;
  for (std::uint64_t i = 0; i < config.num_seeds; ++i) {
    Ctx ctx;
    ctx.seed = config.base_seed + i;
    ctx.config = &config;
    ctx.report = &report;
    ++report.seeds_run;
    try {
      const SolveCase c = make_solve_case(ctx);
      run_cancel(ctx, c);
      if (!ctx.failure) run_alloc(ctx, c);
      if (!ctx.failure) run_poison(ctx, c);
      if (!ctx.failure) run_pipeline(ctx);
      if (!ctx.failure) run_corrupt(ctx);
    } catch (const std::exception& e) {
      ctx.fail("setup", std::string("unexpected exception: ") + e.what());
    }
    if (ctx.failure) {
      if (log) {
        log("fault seed " + std::to_string(ctx.seed) + ": FAIL [" + ctx.failure->scenario +
            "] " + ctx.failure->message);
      }
      report.failures.push_back(std::move(*ctx.failure));
    } else if (log) {
      log("fault seed " + std::to_string(ctx.seed) + ": ok");
    }
  }
  return report;
}

}  // namespace unicon::testing
