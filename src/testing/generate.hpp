// Seeded random-model generators for the differential verification
// subsystem (and the unit-test suite, which re-exports them).
//
// Three families are produced, mirroring the pipeline stages of the paper:
//
//  * random_uniform_imc      — a direct random *closed* uniform IMC whose
//    uniformity is arranged state-by-state (Markov rows normalized to E,
//    stable interactive states padded with self-loops like the elapse
//    operator's idle states).  Controllable fan-out, rate spread, tau share
//    and — for exercising the Zeno detector — tau-cycle density.
//  * random_composed_uimc    — a uIMC built the way the paper builds them:
//    random LTS skeletons with per-action phase-type time constraints,
//    composed via elapse/compose/hide, so uniformity holds *by
//    construction* (Lemmas 1-3) rather than by normalization.
//  * random_uniform_ctmdp / random_ctmc — direct random models for the
//    solver and io layers, bypassing the transformation.
//
// All generators are deterministic functions of the supplied Rng: replaying
// a seed replays the model bit-for-bit.
#pragma once

#include <cstdint>
#include <vector>

#include "ctmc/ctmc.hpp"
#include "ctmdp/ctmdp.hpp"
#include "imc/imc.hpp"
#include "support/bit_vector.hpp"
#include "support/rng.hpp"

namespace unicon::testing {

struct RandomImcConfig {
  std::size_t num_states = 12;
  double uniform_rate = 3.0;
  /// Probability that a state is interactive (otherwise Markov).
  double interactive_bias = 0.4;
  /// Max outgoing transitions per state.
  unsigned max_fanout = 3;
  /// Emit only one interactive transition per interactive state, making the
  /// scheduler trivial (used for Theorem-1 style cross checks).
  bool deterministic = false;
  /// Share of tau labels among interactive transitions (the rest draw from
  /// a small visible alphabet).
  double tau_bias = 0.5;
  /// Spread of the Markov branching weights: weights are drawn from
  /// [0.1, 0.1 + rate_spread] before normalization to the uniform rate, so
  /// larger values produce more skewed branching distributions.
  double rate_spread = 1.0;
  /// Probability per interactive state of an additional *backward* tau
  /// transition.  Any such edge closes a cycle of interactive transitions,
  /// i.e. injects Zeno behaviour that transform_to_ctmdp must reject.
  /// Leave at 0 for well-formed models.
  double tau_cycle_density = 0.0;
};

/// Generates a random *closed* uniform IMC that is reachable from state 0,
/// free of interactive cycles (interactive transitions only lead to
/// strictly larger state ids, the last state is Markov — unless
/// tau_cycle_density kicks in) and free of zero-time deadlocks.  Every
/// stable state has exit rate exactly config.uniform_rate, so the model is
/// uniform in both views.
Imc random_uniform_imc(Rng& rng, const RandomImcConfig& config = {});

struct RandomComposedConfig {
  /// Length of the action ring of the sequential component (>= 2): LTS
  /// states s_0..s_{m-1} with s_i --act_i--> s_{i+1 mod m}, each act_i
  /// delayed by its own time constraint triggered by act_{i-1} — the m-ary
  /// generalization of the paper's workstation loop (Fig. 2/3).
  unsigned ring_length = 3;
  /// Number of additional self-triggered constrained actions wired into a
  /// second, randomly shaped LTS component that is interleaved with the
  /// ring (0 disables the second component).  Self-triggered constraints
  /// (fire == trigger) can never block, so any LTS shape is sound.
  unsigned extra_actions = 2;
  /// States of the random second component.
  unsigned extra_states = 3;
  /// Max phases per phase-type delay (1 = exponential).
  unsigned max_phases = 2;
  double min_rate = 0.25;
  double max_rate = 2.5;
  /// Hide all visible actions of the composed system (Lemma 1 road).
  bool hide = true;
  /// Density of the random goal mask over composite states.
  double goal_density = 0.25;
  /// Abort exploration beyond this many composite states.
  std::size_t max_states = 20000;
};

struct ComposedModel {
  Imc system;
  BitVector goal;
  /// Common uniform rate the construction guarantees (sum of the
  /// constraint rates) — what Imc::uniform_rate must rediscover.
  double expected_rate = 0.0;
};

/// Builds a closed uIMC via the compositional route: random LTS skeletons,
/// one elapse-generated time constraint per action, parallel composition
/// and optional hiding.  Uniformity holds by construction.
ComposedModel random_composed_uimc(Rng& rng, const RandomComposedConfig& config = {});

struct RandomCtmdpConfig {
  std::size_t num_states = 10;
  double uniform_rate = 2.0;
  /// Max nondeterministic transitions per state (fan-out of the decision).
  unsigned max_transitions_per_state = 3;
  /// Max sparse rate entries per transition.
  unsigned max_entries = 3;
  /// Branching-weight spread as in RandomImcConfig::rate_spread.
  double rate_spread = 3.0;
  /// Probability that a state has no transitions at all (absorbing).
  double absorbing_density = 0.1;
};

/// Generates a random uniform CTMDP: every transition's rate row is
/// normalized to the uniform rate.  State 0 is initial.
Ctmdp random_uniform_ctmdp(Rng& rng, const RandomCtmdpConfig& config = {});

struct RandomCtmcConfig {
  std::size_t num_states = 10;
  unsigned max_fanout = 3;
  double min_rate = 0.2;
  double max_rate = 3.0;
  /// Probability that a state is absorbing (no outgoing rates).
  double absorbing_density = 0.15;
  /// Probability that a state carries a Markov self-loop.
  double self_loop_density = 0.2;
};

/// Generates a random CTMC (not necessarily uniform; exit rates vary within
/// [min_rate, max_fanout * max_rate]).  State 0 is initial.
Ctmc random_ctmc(Rng& rng, const RandomCtmcConfig& config = {});

/// Random goal mask with roughly the given density (at least one goal
/// state, never the initial state).
BitVector random_goal(Rng& rng, std::size_t num_states, double density = 0.25);

}  // namespace unicon::testing
