// Server robustness harnesses: wire-protocol mutation fuzzing and chaos
// injection against a live AnalysisService (unicon_fuzz --server).
//
// Two drivers, both deterministic functions of base_seed:
//
//  * run_server_fuzz — builds a valid JSONL request stream from random
//    models, applies seeded line-granular mutations (bit flips, truncation,
//    NUL bytes, garbage lines, pathological nesting, oversized lines,
//    unknown / mistyped envelope fields) and replays the damaged stream
//    through run_session.  The oracle: the session must terminate, every
//    output line must parse as JSON, every *untouched* request must be
//    answered with results bit-identical to a clean replay of the same
//    stream, and a trailing untouched shutdown op must still be answered —
//    proof the session re-synchronized past every mutation.  No crash, no
//    hang, no unsound answer.
//
//  * run_server_chaos — injects the PR4 fault plans into live service
//    sessions: cancel-mid-sweep next to a clean co-request, allocation
//    failure, NaN-poisoned iterate, simulated worker death, snapshot
//    warm restart (bit-identical answers, byte-identical re-snapshot),
//    torn/corrupted snapshot (detected, degrades to cold start), and
//    overload + drain (Overloaded answers carry retry_after_ms, drain
//    refuses new work and completes the rest).  Surviving requests must be
//    answered bit-identically to an undisturbed reference service.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

namespace unicon::testing {

struct ServerFuzzConfig {
  std::uint64_t base_seed = 1;
  std::uint64_t num_seeds = 20;
  /// Mutations applied per request stream (wire fuzz only).
  unsigned mutations_per_stream = 4;
  /// Directory for the chaos snapshot legs' scratch files.
  std::string scratch_dir = ".";
};

struct ServerFuzzFailure {
  std::uint64_t seed = 0;
  std::string scenario;  ///< "wire", "cancel", "alloc", "poison", ...
  std::string message;
};

struct ServerFuzzReport {
  std::uint64_t seeds_run = 0;
  std::uint64_t checks_run = 0;
  std::uint64_t faults_injected = 0;
  std::vector<ServerFuzzFailure> failures;
  bool ok() const { return failures.empty(); }
};

/// Invoked as each failure is recorded (progress reporting in unicon_fuzz).
using ServerFuzzLogFn = std::function<void(const ServerFuzzFailure&)>;

ServerFuzzReport run_server_fuzz(const ServerFuzzConfig& config,
                                 const ServerFuzzLogFn& log = {});

ServerFuzzReport run_server_chaos(const ServerFuzzConfig& config,
                                  const ServerFuzzLogFn& log = {});

}  // namespace unicon::testing
