#include "testing/dft_oracle.hpp"

#include <cmath>
#include <cstdio>
#include <deque>
#include <filesystem>
#include <fstream>
#include <map>
#include <utility>

#include "core/analysis.hpp"
#include "dft/lower.hpp"
#include "dft/parser.hpp"
#include "lang/build.hpp"
#include "support/errors.hpp"
#include "support/rng.hpp"
#include "testing/oracle.hpp"

namespace unicon::testing {

namespace {

using dft::CheckedDft;
using dft::Element;
using dft::ElementKind;

// Per-element status words of the direct product enumeration:
//   basic event:  0 dormant, 1 active, 2 failure pending, 3 failed
//   and/or/vot:   failed-children count c (0..k-1), k emit-pending, k+1 done
//   pand:         0..n-1 in-order progress, n emit-pending, n+1 done,
//                 n+2 failsafe
//   spare:        mode * 2^28 + index * 2^20 + failed-set mask
//                 (mode 0 normal, 1 activating, 2 emit-pending, 3 done)
//   fdep:         0 idle, c in 1..m next kill = dependent c, m+1 done
constexpr std::uint32_t kBeDormant = 0, kBeActive = 1, kBeFailPre = 2, kBeFailed = 3;

std::uint32_t vot_threshold(const Element& e, std::size_t arity) {
  if (e.kind == ElementKind::And) return static_cast<std::uint32_t>(arity);
  if (e.kind == ElementKind::Or) return 1;
  return e.vot_k;
}

std::uint32_t spare_encode(std::uint32_t mode, std::uint32_t idx, std::uint32_t mask) {
  return mode << 28 | idx << 20 | mask;
}

class ProductEnumerator {
 public:
  explicit ProductEnumerator(const CheckedDft& d) : d_(d) {
    const std::size_t n = d_.ast.elements.size();
    for (std::size_t i = 0; i < n; ++i) {
      const Element& e = d_.ast.elements[i];
      if (e.kind == ElementKind::Spare && d_.children[i].size() > 20) {
        throw ModelError("dft oracle: spare gate wider than 20 children");
      }
    }
    initial_.assign(n, 0);
    for (std::size_t i = 0; i < n; ++i) {
      if (d_.ast.elements[i].kind == ElementKind::BasicEvent) {
        initial_[i] = d_.spare_child[i] ? kBeDormant : kBeActive;
      }
    }
  }

  Imc enumerate(BitVector* failed_out) {
    ImcBuilder b;
    std::map<std::vector<std::uint32_t>, StateId> ids;
    std::deque<const std::vector<std::uint32_t>*> frontier;
    std::vector<bool> failed;
    const auto state = [&](const std::vector<std::uint32_t>& s) {
      const auto [it, inserted] = ids.emplace(s, StateId{});
      if (inserted) {
        if (ids.size() > 500000) throw ModelError("dft oracle: product too large");
        it->second = b.add_state();
        failed.push_back(top_failed(s));
        frontier.push_back(&it->first);
      }
      return it->second;
    };
    state(initial_);
    b.set_initial(0);
    while (!frontier.empty()) {
      const std::vector<std::uint32_t> s = *frontier.front();
      frontier.pop_front();
      const StateId from = ids.at(s);
      bool interactive = false;
      // Fail-signal events: joint update of the emitter, its parents and
      // its fdep triggers.
      for (std::uint32_t x = 0; x < s.size(); ++x) {
        if (!emit_ready(x, s[x])) continue;
        interactive = true;
        std::vector<std::uint32_t> succ = s;
        set_emitted(x, succ[x]);
        for (const std::uint32_t g : d_.parents[x]) deliver(succ, g, x);
        for (const std::uint32_t f : d_.fdep_listeners[x]) {
          if (succ[f] == 0) succ[f] = 1;
        }
        b.add_interactive(from, kTau, state(succ));
      }
      // Activation events: spare gate promotes its candidate, unless the
      // candidate has a failure pending (the fail signal resolves first).
      for (std::uint32_t g = 0; g < s.size(); ++g) {
        if (d_.ast.elements[g].kind != ElementKind::Spare || (s[g] >> 28) != 1) continue;
        const std::uint32_t idx = (s[g] >> 20) & 0xff;
        const std::uint32_t target = d_.children[g][idx];
        if (s[target] == kBeFailPre) continue;
        interactive = true;
        std::vector<std::uint32_t> succ = s;
        succ[g] = spare_encode(0, idx, s[g] & 0xfffff);
        if (succ[target] == kBeDormant) succ[target] = kBeActive;
        b.add_interactive(from, kTau, state(succ));
      }
      // Kill events: fdep forces its next dependent.
      for (std::uint32_t f = 0; f < s.size(); ++f) {
        if (d_.ast.elements[f].kind != ElementKind::Fdep) continue;
        const std::uint32_t cursor = s[f];
        const std::size_t deps = d_.children[f].size() - 1;
        if (cursor == 0 || cursor > deps) continue;
        interactive = true;
        std::vector<std::uint32_t> succ = s;
        succ[f] = cursor + 1;
        const std::uint32_t target = d_.children[f][cursor];
        if (succ[target] == kBeDormant || succ[target] == kBeActive) succ[target] = kBeFailPre;
        b.add_interactive(from, kTau, state(succ));
      }
      if (interactive) continue;  // urgency: no Markov transitions
      // Stable: spontaneous basic-event failures, padded to exit rate E.
      double outflow = 0.0;
      for (std::uint32_t i = 0; i < s.size(); ++i) {
        const Element& e = d_.ast.elements[i];
        if (e.kind != ElementKind::BasicEvent) continue;
        double rate = 0.0;
        if (s[i] == kBeActive) rate = e.lambda;
        if (s[i] == kBeDormant) rate = d_.effective_dorm[i] * e.lambda;
        if (rate <= 0.0) continue;
        std::vector<std::uint32_t> succ = s;
        succ[i] = kBeFailPre;
        b.add_markov(from, rate, state(succ));
        outflow += rate;
      }
      const double pad = d_.total_rate - outflow;
      if (pad > 1e-12 * (d_.total_rate > 1.0 ? d_.total_rate : 1.0)) {
        b.add_markov(from, pad, from);
      }
    }
    Imc closed = b.build();
    if (failed_out != nullptr) {
      *failed_out = BitVector(closed.num_states());
      for (std::size_t i = 0; i < failed.size(); ++i) {
        if (failed[i]) failed_out->set(i);
      }
    }
    return closed;
  }

 private:
  bool emit_ready(std::uint32_t x, std::uint32_t st) const {
    const Element& e = d_.ast.elements[x];
    switch (e.kind) {
      case ElementKind::BasicEvent: return st == kBeFailPre;
      case ElementKind::And:
      case ElementKind::Or:
      case ElementKind::Vot: return st == vot_threshold(e, d_.children[x].size());
      case ElementKind::Pand: return st == d_.children[x].size();
      case ElementKind::Spare: return (st >> 28) == 2;
      case ElementKind::Fdep: return false;
    }
    return false;
  }

  void set_emitted(std::uint32_t x, std::uint32_t& st) const {
    const Element& e = d_.ast.elements[x];
    switch (e.kind) {
      case ElementKind::BasicEvent: st = kBeFailed; break;
      case ElementKind::And:
      case ElementKind::Or:
      case ElementKind::Vot: st = vot_threshold(e, d_.children[x].size()) + 1; break;
      case ElementKind::Pand: st = static_cast<std::uint32_t>(d_.children[x].size()) + 1; break;
      case ElementKind::Spare: st = spare_encode(3, 0, 0); break;
      case ElementKind::Fdep: break;
    }
  }

  /// Gate @p g hears "child @p x failed".
  void deliver(std::vector<std::uint32_t>& s, std::uint32_t g, std::uint32_t x) const {
    const Element& e = d_.ast.elements[g];
    const std::vector<std::uint32_t>& kids = d_.children[g];
    std::uint32_t pos = 0;
    while (kids[pos] != x) ++pos;
    switch (e.kind) {
      case ElementKind::And:
      case ElementKind::Or:
      case ElementKind::Vot: {
        const std::uint32_t k = vot_threshold(e, kids.size());
        if (s[g] < k) ++s[g];
        break;
      }
      case ElementKind::Pand: {
        const std::uint32_t n = static_cast<std::uint32_t>(kids.size());
        if (s[g] >= n) break;  // emitted / done / failsafe latch
        if (s[g] == n + 2) break;
        if (pos == s[g]) {
          ++s[g];
        } else if (pos > s[g]) {
          s[g] = n + 2;  // out-of-order: failsafe
        }
        break;
      }
      case ElementKind::Spare: {
        const std::uint32_t mode = s[g] >> 28;
        const std::uint32_t idx = (s[g] >> 20) & 0xff;
        std::uint32_t mask = s[g] & 0xfffff;
        if (mode >= 2) break;
        mask |= std::uint32_t{1} << pos;
        if ((mode == 0 && pos == idx) || (mode == 1 && pos == idx)) {
          // The holder (normal) or the pending candidate (activating)
          // failed: move to the next non-failed spare or give up.
          std::uint32_t next = 0;
          for (std::uint32_t j = 1; j < kids.size(); ++j) {
            if ((mask & (std::uint32_t{1} << j)) == 0) {
              next = j;
              break;
            }
          }
          s[g] = next == 0 ? spare_encode(2, 0, 0) : spare_encode(1, next, mask);
        } else {
          s[g] = spare_encode(mode, idx, mask);
        }
        break;
      }
      case ElementKind::BasicEvent:
      case ElementKind::Fdep:
        break;  // not fail-signal parents by construction
    }
  }

  bool top_failed(const std::vector<std::uint32_t>& s) const {
    const std::uint32_t top = d_.top;
    const Element& e = d_.ast.elements[top];
    const std::uint32_t st = s[top];
    switch (e.kind) {
      case ElementKind::BasicEvent: return st >= kBeFailPre;
      case ElementKind::And:
      case ElementKind::Or:
      case ElementKind::Vot: return st >= vot_threshold(e, d_.children[top].size());
      case ElementKind::Pand: {
        const std::uint32_t n = static_cast<std::uint32_t>(d_.children[top].size());
        return st == n || st == n + 1;
      }
      case ElementKind::Spare: return (st >> 28) >= 2;
      case ElementKind::Fdep: return false;  // sema forbids fdep toplevel
    }
    return false;
  }

  const CheckedDft& d_;
  std::vector<std::uint32_t> initial_;
};

// ---------------------------------------------------------------------------
// Random Galileo generator.

struct GenLimits {
  std::uint64_t max_be;
  std::uint64_t max_gates;
  bool allow_spare;
  bool allow_fdep;
};

GenLimits limits_for_level(int level) {
  switch (level) {
    case 0: return {6, 4, true, true};
    case 1: return {4, 2, true, false};
    default: return {3, 1, false, false};
  }
}

}  // namespace

Imc dft_oracle_imc(const CheckedDft& dft, BitVector* failed) {
  return ProductEnumerator(dft).enumerate(failed);
}

double dft_oracle_unreliability(const CheckedDft& dft, double t, double eps,
                                Objective objective) {
  BitVector failed;
  const Imc closed = dft_oracle_imc(dft, &failed);
  const BruteTransform bt = bruteforce_transform(closed, failed);
  const BitVector& goal = objective == Objective::Maximize ? bt.goal_exists : bt.goal_universal;
  const std::vector<double> values = naive_timed_reachability(bt.model, goal, t, eps, objective);
  return values[bt.model.initial];
}

std::string generate_dft_source(std::uint64_t seed, int level) {
  Rng rng(derive_seed(seed, 0xdf7 + static_cast<std::uint64_t>(level)));
  const GenLimits lim = limits_for_level(level);
  const std::uint64_t num_be = 2 + rng.next_below(lim.max_be - 1);
  const std::uint64_t num_gates = 1 + rng.next_below(lim.max_gates);

  struct GenElement {
    std::string def;  // full declaration line sans name
    bool reserved = false;  // spare-owned: no further parents allowed
  };
  std::vector<std::string> names;
  std::vector<GenElement> elems;
  std::vector<std::size_t> roots;  // not yet used as a child
  std::string source;

  const auto add_be = [&](bool spare_child, const char* dorm_attr) {
    const std::size_t id = names.size();
    names.push_back("b" + std::to_string(id));
    const double lambda = 0.25 * static_cast<double>(1 + rng.next_below(12));
    std::string def = " lambda=" + std::to_string(lambda);
    if (dorm_attr != nullptr) def += dorm_attr;
    elems.push_back({std::move(def), spare_child});
    if (!spare_child) roots.push_back(id);
    return id;
  };
  for (std::uint64_t i = 0; i < num_be; ++i) add_be(false, nullptr);

  const auto pick_children = [&](std::size_t arity, bool drain_roots) {
    // Prefer unconsumed roots so everything ends up connected; sharing an
    // already-used element is allowed and occasionally exercised.  The
    // final gate drains every remaining root unconditionally, otherwise
    // sema would reject the tree as disconnected.
    std::vector<std::size_t> kids;
    const auto have = [&](std::size_t cand) {
      for (const std::size_t k : kids) {
        if (k == cand) return true;
      }
      return false;
    };
    while (kids.size() < arity) {
      std::size_t cand;
      if (!roots.empty() && (drain_roots || kids.empty() || rng.next_below(4) != 0)) {
        const std::size_t r = drain_roots ? 0 : rng.next_below(roots.size());
        cand = roots[r];
        roots.erase(roots.begin() + static_cast<std::ptrdiff_t>(r));
        if (have(cand)) continue;  // already shared into this gate
      } else {
        cand = rng.next_below(elems.size());
        if (elems[cand].reserved || have(cand)) continue;
      }
      kids.push_back(cand);
    }
    return kids;
  };

  for (std::uint64_t g = 0; g < num_gates; ++g) {
    const bool last = g + 1 == num_gates;
    const std::size_t id = names.size();
    std::uint64_t kind = rng.next_below(lim.allow_spare && !last ? 5 : 4);
    std::string def;
    if (kind == 4) {
      // Spare gate: fresh exclusively-owned basic events.
      const std::uint64_t flavour = rng.next_below(3);
      const std::size_t num_spares = 1 + rng.next_below(2);
      def = flavour == 0 ? " csp" : flavour == 1 ? " hsp" : " wsp";
      std::vector<std::size_t> kids;
      kids.push_back(add_be(false, nullptr));  // primary (active from start)
      roots.pop_back();                        // consumed right here
      for (std::size_t j = 0; j < num_spares; ++j) {
        const char* dorm = nullptr;
        if (flavour == 2) {
          static const char* kDorms[] = {" dorm=0.25", " dorm=0.5", " dorm=0.75"};
          dorm = kDorms[rng.next_below(3)];
        }
        kids.push_back(add_be(true, dorm));
      }
      for (const std::size_t k : kids) def += " \"" + names[k] + "\"";
      names.insert(names.begin() + static_cast<std::ptrdiff_t>(id), "g" + std::to_string(id));
      // names vector got shifted; rebuild def is fine since it referenced
      // child names directly.  Fix bookkeeping: the new BEs were appended
      // after id, so recompute nothing else.
      elems.insert(elems.begin() + static_cast<std::ptrdiff_t>(id), {std::move(def), false});
      roots.push_back(id);
      continue;
    }
    std::size_t arity = 2 + rng.next_below(2);
    if (last) arity = roots.size() > arity ? roots.size() : arity;
    std::size_t eligible = 0;
    for (const GenElement& el : elems) eligible += el.reserved ? 0 : 1;
    if (arity > eligible) arity = eligible;
    std::vector<std::size_t> kids = pick_children(arity, last);
    if (kind == 0) def = " and";
    if (kind == 1) def = " or";
    if (kind == 2) def = " pand";
    if (kind == 3) def = " " + std::to_string(1 + rng.next_below(kids.size())) + "of" +
                         std::to_string(kids.size());
    for (const std::size_t k : kids) def += " \"" + names[k] + "\"";
    names.push_back("g" + std::to_string(id));
    elems.push_back({std::move(def), false});
    roots.push_back(id);
  }

  // The last declared gate is the toplevel; any leftover roots were folded
  // into it above (arity >= remaining roots and pick_children drains roots
  // first).
  const std::size_t top = names.size() - 1;

  std::string fdep_line;
  if (lim.allow_fdep && rng.next_below(5) < 2) {
    // Trigger: any non-reserved element (a fresh environmental BE at times);
    // dependents: basic events distinct from the trigger.
    std::size_t trigger;
    if (rng.next_below(3) == 0) {
      trigger = add_be(false, nullptr);
      roots.pop_back();  // connected through the fdep pull-in rule
    } else {
      do {
        trigger = rng.next_below(elems.size());
      } while (elems[trigger].reserved || trigger == top);
    }
    std::vector<std::size_t> deps;
    for (std::size_t tries = 0; tries < 16 && deps.size() < 1 + rng.next_below(2); ++tries) {
      const std::size_t c = rng.next_below(names.size());
      if (names[c][0] != 'b' || c == trigger) continue;
      bool dup = false;
      for (const std::size_t k : deps) dup |= k == c;
      if (!dup) deps.push_back(c);
    }
    if (!deps.empty()) {
      fdep_line = "\"f0\" fdep \"" + names[trigger] + "\"";
      for (const std::size_t k : deps) fdep_line += " \"" + names[k] + "\"";
      fdep_line += ";\n";
    }
  }

  source = "toplevel \"" + names[top] + "\";\n";
  for (std::size_t i = 0; i < names.size(); ++i) {
    source += "\"" + names[i] + "\"" + elems[i].def + ";\n";
  }
  source += fdep_line;
  return source;
}

namespace {

struct DftChecker {
  const DftFuzzConfig& config;
  std::uint64_t checks = 0;

  /// Empty string = pass.
  std::string check(const std::string& source) {
    dft::CheckedDft checked;
    try {
      checked = dft::parse_and_check_dft(source, "<fuzz>");
    } catch (const Error& e) {
      return std::string("generated tree rejected: ") + e.what();
    }
    try {
      const lang::BuiltModel built = dft::lower_dft(checked);
      const lang::BuiltModel minimized = lang::minimize_model(built);

      const auto goal_of = [](const lang::BuiltModel& m) {
        const std::vector<bool>& mask = m.mask("failed");
        BitVector goal(mask.size());
        for (std::size_t i = 0; i < mask.size(); ++i) {
          if (mask[i]) goal.set(i);
        }
        return goal;
      };
      const BitVector goal = goal_of(minimized);

      const auto solve = [&](const lang::BuiltModel& m, const BitVector& g, Objective obj,
                             unsigned threads) {
        UimcAnalysisOptions o;
        o.reachability.epsilon = config.epsilon;
        o.reachability.objective = obj;
        o.reachability.backend = config.backend;
        o.reachability.threads = threads;
        return analyze_timed_reachability(m.system, g, config.time, o).value;
      };

      Objective omax = Objective::Maximize, omin = Objective::Minimize;
      if (config.mutation == Mutation::SwapObjective) std::swap(omax, omin);
      double vmax = solve(minimized, goal, omax, 1);
      double vmin = solve(minimized, goal, omin, 1);
      if (config.mutation == Mutation::PerturbValue) vmax += 1e-6;

      ++checks;
      const double oracle_max =
          dft_oracle_unreliability(checked, config.time, config.epsilon, Objective::Maximize);
      if (std::fabs(vmax - oracle_max) > config.tolerance) {
        return "sup mismatch: production " + std::to_string(vmax) + " vs oracle " +
               std::to_string(oracle_max);
      }
      ++checks;
      const double oracle_min =
          dft_oracle_unreliability(checked, config.time, config.epsilon, Objective::Minimize);
      if (std::fabs(vmin - oracle_min) > config.tolerance) {
        return "inf mismatch: production " + std::to_string(vmin) + " vs oracle " +
               std::to_string(oracle_min);
      }
      ++checks;
      if (vmin > vmax + config.tolerance) {
        return "inf " + std::to_string(vmin) + " exceeds sup " + std::to_string(vmax);
      }
      // Thread-count bit-identity on the minimized model.
      ++checks;
      const double vmax2 = solve(minimized, goal, omax, 2);
      if (config.mutation == Mutation::None && vmax2 != vmax) {
        return "threads=2 not bit-identical to threads=1";
      }
      // Minimization must preserve the value (up to solver tolerance).
      ++checks;
      const double vmax_unmin = solve(built, goal_of(built), omax, 1);
      if (std::fabs(vmax_unmin - oracle_max) >
          config.tolerance + (config.mutation == Mutation::PerturbValue ? 1e-6 : 0.0)) {
        return "unminimized model disagrees with oracle: " + std::to_string(vmax_unmin) + " vs " +
               std::to_string(oracle_max);
      }
    } catch (const Error& e) {
      return std::string("pipeline error: ") + e.what();
    }
    return {};
  }
};

}  // namespace

std::string dft_nondeterministic_showcase() {
  return
      "// The fdep kills both pand inputs in one shot; the scheduler picks\n"
      "// which fail signal lands on the pand first, so inf < sup.\n"
      "toplevel \"top\";\n"
      "\"top\" pand \"a\" \"b\";\n"
      "\"a\" lambda=1.0;\n"
      "\"b\" lambda=1.0;\n"
      "\"t\" lambda=5.0;\n"
      "\"dep\" fdep \"t\" \"a\" \"b\";\n";
}

std::string check_dft_source(const std::string& source, const DftFuzzConfig& config,
                             std::uint64_t* checks) {
  DftChecker checker{config};
  const std::string message = checker.check(source);
  if (checks) *checks += checker.checks;
  return message;
}

DftFuzzReport run_dft_fuzz(const DftFuzzConfig& config, const DftLogFn& log) {
  DftFuzzReport report;
  DftChecker checker{config};
  // Fixed nondeterministic fixture first: random well-posed trees almost
  // always have inf == sup, so without it an objective-level bug (caught
  // only where the scheduler matters) could slip through a whole corpus.
  {
    const std::string source = dft_nondeterministic_showcase();
    if (log) log("showcase:\n" + source);
    const std::string message = checker.check(source);
    if (!message.empty()) {
      if (log) log("FAIL showcase: " + message);
      report.failures.push_back(DftFuzzFailure{0, 0, "showcase: " + message, source, {}});
    }
  }
  for (std::uint64_t n = 0; n < config.num_seeds; ++n) {
    const std::uint64_t seed = config.base_seed + n;
    ++report.seeds_run;
    std::string source = generate_dft_source(seed, 0);
    if (log) log("seed " + std::to_string(seed) + ":\n" + source);
    std::string message = checker.check(source);
    int level = 0;
    if (!message.empty() && config.shrink) {
      // Walk the ladder from the smallest configuration up; keep the
      // smallest failing instance.
      for (int l = kDftShrinkLevels - 1; l >= 1; --l) {
        const std::string smaller = generate_dft_source(seed, l);
        const std::string m = checker.check(smaller);
        if (!m.empty()) {
          source = smaller;
          message = m;
          level = l;
          break;
        }
      }
    }
    if (!message.empty()) {
      DftFuzzFailure failure{seed, level, message, source, {}};
      if (!config.artifact_dir.empty()) {
        std::filesystem::create_directories(config.artifact_dir);
        const std::string path =
            config.artifact_dir + "/dft_seed" + std::to_string(seed) + ".dft";
        std::ofstream out(path);
        out << source;
        failure.artifacts.push_back(path);
      }
      if (log) log("FAIL seed " + std::to_string(seed) + ": " + message);
      report.failures.push_back(std::move(failure));
    }
  }
  report.checks_run = checker.checks;
  return report;
}

}  // namespace unicon::testing
