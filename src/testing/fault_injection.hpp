// Seeded fault-injection harness for the execution-control layer.
//
// Per seed, the harness replays guarded pipeline runs under deliberately
// injected faults and asserts the robustness contract: every fault must
// yield either (a) a completed result bit-identical to the unfaulted
// reference, (b) a sound partial result (status != Converged and
// |partial - reference| <= residual_bound + tolerance per state, with a
// bit-identical resume-to-completion), or (c) a typed unicon::Error /
// std::bad_alloc — never a crash, hang, or silently wrong answer.
//
// Fault kinds:
//  * cancel      — deterministic mid-iteration cancellation of Algorithm 1
//    (RunGuard::cancel_after_polls), partial-result soundness + resume;
//  * alloc       — the Nth heap allocation throws std::bad_alloc
//    (arm_allocation_failure under a MemoryAccountingScope);
//  * poison      — NaN/±Inf written into the live iterate through the
//    checkpoint span; the solver must either detect it (NumericError) or
//    prove it washed out (bit-identical convergence);
//  * pipeline    — cancellation raced against the full lang pipeline
//    (build -> minimize -> transform -> solve), exercising the BudgetError
//    path of the structural stages;
//  * corrupt     — truncation / bit flips of serialized .tra/.ctmdp/.imc/
//    .lab/.uni files; readers must parse or raise ParseError-family errors.
//
// Everything is a deterministic function of the seed (thread interleaving
// only moves *where* an allocation fault lands, never whether the contract
// holds), so failures replay with --base-seed.
#pragma once

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "support/backend.hpp"

namespace unicon::testing {

struct FaultConfig {
  std::uint64_t base_seed = 1;
  std::uint64_t num_seeds = 100;
  /// Time bound of the guarded reachability solves.
  double time = 1.5;
  /// Truncation precision of reference and faulted solves.
  double epsilon = 1e-10;
  /// Slack on |partial - reference| <= residual_bound + tolerance (covers
  /// the reference's own epsilon truncation).
  double tolerance = 1e-9;
  /// Worker threads for the guarded solves (cancellation must stop a
  /// parallel sweep within one barrier).
  unsigned threads = 2;
  /// Compute backend for the guarded solves (Auto = UNICON_BACKEND /
  /// serial); every backend must uphold the same robustness contract.
  Backend backend = Backend::Auto;
  /// Directory for counterexample artifacts ("" disables writing).
  std::string artifact_dir;
};

struct FaultFailure {
  std::uint64_t seed = 0;
  /// "cancel" | "alloc" | "poison" | "pipeline" | "corrupt-<format>"
  std::string scenario;
  std::string message;
  /// Artifact files written for replay (empty unless artifact_dir set).
  std::vector<std::string> artifacts;
};

struct FaultReport {
  std::uint64_t seeds_run = 0;
  std::uint64_t checks_run = 0;
  /// Faults that actually fired (a plan whose trigger lies beyond the run's
  /// natural end injects nothing and must change nothing).
  std::uint64_t faults_injected = 0;
  std::vector<FaultFailure> failures;
  bool ok() const { return failures.empty(); }
};

using FaultLogFn = std::function<void(const std::string&)>;

/// Runs seeds base_seed .. base_seed + num_seeds - 1.  @p log (optional)
/// receives one progress line per seed.
FaultReport run_fault_injection(const FaultConfig& config, const FaultLogFn& log = {});

}  // namespace unicon::testing
