#include "testing/differential.hpp"

#include <algorithm>
#include <cmath>
#include <filesystem>
#include <fstream>
#include <sstream>

#include "bisim/bisimulation.hpp"
#include "core/transform.hpp"
#include "ctmc/transient.hpp"
#include "ctmdp/reachability.hpp"
#include "ctmdp/simulate.hpp"
#include "io/tra.hpp"
#include "support/errors.hpp"
#include "support/numerics.hpp"
#include "support/rng.hpp"
#include "testing/generate.hpp"
#include "testing/oracle.hpp"

namespace unicon::testing {

const char* mutation_name(Mutation m) {
  switch (m) {
    case Mutation::None: return "none";
    case Mutation::PerturbValue: return "perturb-value";
    case Mutation::SwapObjective: return "swap-objective";
    case Mutation::CoarsePoisson: return "coarse-poisson";
    case Mutation::StaleGoal: return "stale-goal";
  }
  return "?";
}

std::optional<Mutation> parse_mutation(const std::string& name) {
  for (const Mutation m : {Mutation::None, Mutation::PerturbValue, Mutation::SwapObjective,
                           Mutation::CoarsePoisson, Mutation::StaleGoal}) {
    if (name == mutation_name(m)) return m;
  }
  return std::nullopt;
}

namespace {

// Independent derive_seed streams per scenario, so adding draws to one
// generator never shifts another scenario's models for the same seed.
constexpr std::uint64_t kStreamImc = 1;
constexpr std::uint64_t kStreamComposed = 2;
constexpr std::uint64_t kStreamCtmdp = 3;
constexpr std::uint64_t kStreamCtmc = 4;
constexpr std::uint64_t kStreamZeno = 5;
constexpr std::uint64_t kStreamMc = 6;
constexpr std::uint64_t kStreamMcRetry = 7;
constexpr std::uint64_t kStreamBatch = 8;
constexpr std::uint64_t kStreamTruncation = 9;

/// Dense oracles are O(states^2); above this size only the structural and
/// variant checks run (documented in DESIGN.md — not a silent cap).
constexpr std::size_t kDenseOracleLimit = 600;

constexpr int kMaxShrinkLevel = 3;

struct Scaled {
  RandomImcConfig imc;
  RandomComposedConfig composed;
  RandomCtmdpConfig ctmdp;
  RandomCtmcConfig ctmc;
};

Scaled scaled_configs(int level) {
  Scaled s;
  s.imc.num_states = std::max<std::size_t>(3, std::size_t{14} >> level);
  s.imc.max_fanout = static_cast<unsigned>(std::max(1, 3 - level));
  s.imc.rate_spread = level == 0 ? 2.0 : 1.0;
  s.composed.ring_length = static_cast<unsigned>(std::max(2, 3 - level));
  s.composed.extra_actions = level == 0 ? 1u : 0u;
  s.composed.extra_states = 2;
  s.composed.max_phases = level >= 2 ? 1u : 2u;
  s.composed.max_states = 5000;
  s.ctmdp.num_states = std::max<std::size_t>(2, std::size_t{10} >> level);
  s.ctmdp.max_transitions_per_state = static_cast<unsigned>(std::max(1, 3 - level));
  s.ctmdp.max_entries = static_cast<unsigned>(std::max(1, 3 - level));
  s.ctmc.num_states = std::max<std::size_t>(2, std::size_t{10} >> level);
  s.ctmc.max_fanout = static_cast<unsigned>(std::max(1, 3 - level));
  return s;
}

struct CheckFailed {
  std::string message;
};

struct Ctx {
  const DifferentialConfig& config;
  std::uint64_t& checks;
  std::uint64_t seed = 0;
  int level = 0;

  void require(bool ok, const char* check, const std::string& detail) const {
    ++checks;
    if (!ok) throw CheckFailed{std::string(check) + ": " + detail};
  }
};

std::string num(double x) {
  std::ostringstream out;
  out.precision(12);
  out << x;
  return out.str();
}

double vector_diff(const std::vector<double>& a, const std::vector<double>& b) {
  return max_abs_diff(std::span<const double>(a), std::span<const double>(b));
}

/// The optimized solve under test, with the configured bug injected.
TimedReachabilityResult mutated_solve(const Ctmdp& model, BitVector goal, double t,
                                      TimedReachabilityOptions options, Mutation mutation) {
  if (mutation == Mutation::SwapObjective) {
    options.objective = options.objective == Objective::Maximize ? Objective::Minimize
                                                                 : Objective::Maximize;
  }
  if (mutation == Mutation::CoarsePoisson) options.epsilon = 1e-2;
  if (mutation == Mutation::StaleGoal) {
    for (std::size_t s = goal.size(); s-- > 0;) {
      if (goal[s]) {
        goal[s] = false;
        break;
      }
    }
  }
  TimedReachabilityResult result = timed_reachability(model, goal, t, options);
  if (mutation == Mutation::PerturbValue && !result.values.empty()) {
    double& v = result.values[model.initial()];
    v = v < 0.5 ? v + 1e-6 : v - 1e-6;
  }
  return result;
}

/// A stationary choice valid wherever a transition exists, seeded from an
/// extracted scheduler (goal states carry kNoTransition there).
std::vector<std::uint64_t> complete_choice(const Ctmdp& model,
                                           const std::vector<std::uint64_t>& partial) {
  std::vector<std::uint64_t> choice(model.num_states(), kNoTransition);
  for (StateId s = 0; s < model.num_states(); ++s) {
    const auto [first, last] = model.transition_range(s);
    if (first == last) continue;
    const std::uint64_t tr = s < partial.size() ? partial[s] : kNoTransition;
    choice[s] = (tr >= first && tr < last) ? tr : first;
  }
  return choice;
}

/// The full solver battery on one uniform CTMDP.  Returns the primary
/// (mutated) sup result so callers can compare pipeline variants against it.
TimedReachabilityResult solver_checks(const Ctx& ctx, const Ctmdp& model,
                                      const BitVector& goal_sup,
                                      const BitVector& goal_inf, bool with_mc) {
  const DifferentialConfig& config = ctx.config;
  const double t = config.time;
  TimedReachabilityOptions serial;
  serial.epsilon = config.epsilon;
  serial.threads = 1;
  serial.backend = config.backend;

  const TimedReachabilityResult sup = mutated_solve(model, goal_sup, t, serial, config.mutation);

  const bool dense_ok = model.num_states() <= kDenseOracleLimit;
  DenseModel dense;
  if (dense_ok) {
    dense = dense_from_ctmdp(model);
    const std::vector<double> ref =
        naive_timed_reachability(dense, goal_sup, t, config.epsilon, Objective::Maximize);
    const double diff = vector_diff(sup.values, ref);
    ctx.require(diff <= config.tolerance, "sup-vs-oracle", "max deviation " + num(diff));
  }

  TimedReachabilityOptions min_opts = serial;
  min_opts.objective = Objective::Minimize;
  const TimedReachabilityResult inf =
      mutated_solve(model, goal_inf, t, min_opts, config.mutation);
  if (dense_ok) {
    const std::vector<double> ref =
        naive_timed_reachability(dense, goal_inf, t, config.epsilon, Objective::Minimize);
    const double diff = vector_diff(inf.values, ref);
    ctx.require(diff <= config.tolerance, "inf-vs-oracle", "max deviation " + num(diff));
  }
  // goal_inf is a subset of goal_sup (universal vs existential transfer, or
  // the identical mask), so inf(goal_inf) <= sup(goal_sup) pointwise.
  if (config.mutation == Mutation::None) {
    bool ordered = true;
    double worst = 0.0;
    for (std::size_t s = 0; s < sup.values.size(); ++s) {
      const double excess = inf.values[s] - sup.values[s];
      if (excess > config.tolerance) {
        ordered = false;
        worst = std::max(worst, excess);
      }
    }
    ctx.require(ordered, "inf<=sup", "inf exceeds sup by " + num(worst));
  }

  // Serial (mutated) vs. parallel (pristine) must agree bitwise — a check
  // that has teeth even when the model is too large for the dense oracle.
  TimedReachabilityOptions parallel = serial;
  parallel.threads = 4;
  const TimedReachabilityResult sup_par = timed_reachability(model, goal_sup, t, parallel);
  ctx.require(sup.values == sup_par.values, "serial-vs-parallel",
              "values differ by " + num(vector_diff(sup.values, sup_par.values)));

  // Early termination within tolerance of the faithful iteration.
  TimedReachabilityOptions early = serial;
  early.early_termination = true;
  early.early_termination_delta = 1e-12;
  const TimedReachabilityResult sup_early = timed_reachability(model, goal_sup, t, early);
  {
    const double diff = vector_diff(sup.values, sup_early.values);
    ctx.require(config.mutation != Mutation::None || diff <= config.tolerance,
                "early-termination", "max deviation " + num(diff));
  }

  // Step-bounded special case vs. naive oracle, serial vs. parallel.
  const std::uint64_t steps = std::min<std::uint64_t>(sup.iterations_planned, 25);
  const std::vector<double> sb =
      step_bounded_reachability(model, goal_sup, steps, Objective::Maximize, 1);
  if (dense_ok) {
    const std::vector<double> ref = naive_step_bounded(dense, goal_sup, steps);
    const double diff = vector_diff(sb, ref);
    ctx.require(diff <= config.tolerance, "step-bounded-vs-oracle", "max deviation " + num(diff));
  }
  const std::vector<double> sb_par =
      step_bounded_reachability(model, goal_sup, steps, Objective::Maximize, 3);
  ctx.require(sb == sb_par, "step-bounded-serial-vs-parallel",
              "values differ by " + num(vector_diff(sb, sb_par)));

  if (with_mc) {
    // Extracted scheduler: its stationary evaluation is a lower bound on
    // sup, matches the induced CTMC, and is reproduced by simulation.
    TimedReachabilityOptions sched_opts = serial;
    sched_opts.extract_scheduler = true;
    const TimedReachabilityResult sched = timed_reachability(model, goal_sup, t, sched_opts);
    const std::vector<std::uint64_t> choice = complete_choice(model, sched.initial_decision);
    const TimedReachabilityResult eval = evaluate_scheduler(model, goal_sup, t, choice, serial);
    const StateId init = model.initial();
    ctx.require(eval.values[init] <= sched.values[init] + config.tolerance, "scheduler<=sup",
                num(eval.values[init]) + " vs sup " + num(sched.values[init]));

    const Ctmc chain = induced_ctmc(model, choice);
    TransientOptions transient;
    transient.epsilon = config.epsilon;
    transient.threads = 1;
    transient.backend = config.backend;
    const TransientResult chain_result = timed_reachability(chain, goal_sup, t, transient);
    const double chain_diff = vector_diff(chain_result.probabilities, eval.values);
    ctx.require(chain_diff <= config.tolerance, "induced-ctmc",
                "max deviation " + num(chain_diff));

    const double analytic = eval.values[init];
    auto inside_ci = [&](const SimulationResult& sim) {
      const double half =
          config.mc_z * std::sqrt(analytic * (1.0 - analytic) /
                                  static_cast<double>(sim.num_runs)) +
          1.0 / static_cast<double>(sim.num_runs);
      return std::fabs(sim.estimate - analytic) <= half;
    };
    SimulationOptions sim_opts;
    sim_opts.num_runs = config.mc_runs;
    sim_opts.seed = derive_seed(ctx.seed, kStreamMc);
    sim_opts.threads = 2;
    SimulationResult sim = simulate_reachability(model, goal_sup, t, choice, sim_opts);
    if (!inside_ci(sim)) {
      // One in ~10^2 honest estimates lands outside a 99% CI; retry with 4x
      // the runs before declaring a failure.
      sim_opts.num_runs = 4 * config.mc_runs;
      sim_opts.seed = derive_seed(ctx.seed, kStreamMcRetry);
      sim = simulate_reachability(model, goal_sup, t, choice, sim_opts);
    }
    ctx.require(inside_ci(sim), "mc-ci",
                "estimate " + num(sim.estimate) + " vs analytic " + num(analytic) + " (" +
                    std::to_string(sim.num_runs) + " runs)");
  }

  return sup;
}

/// Transforms a pipeline variant of the original uIMC and checks that its
/// initial sup value agrees with the primary's.
void variant_check(const Ctx& ctx, const char* name, const Imc& variant,
                   const BitVector& goal, double primary_value) {
  const TransformResult tr = transform_to_ctmdp(variant, &goal);
  TimedReachabilityOptions options;
  options.epsilon = ctx.config.epsilon;
  options.threads = 1;
  options.backend = ctx.config.backend;
  const TimedReachabilityResult result =
      timed_reachability(tr.ctmdp, tr.goal, ctx.config.time, options);
  const double value = result.values[tr.ctmdp.initial()];
  ctx.require(std::fabs(value - primary_value) <= ctx.config.tolerance, name,
              num(value) + " vs primary " + num(primary_value));
}

void bisim_checks(const Ctx& ctx, const Imc& m, const BitVector& goal,
                  double primary_value) {
  // Label classes preserve the goal mask through minimization.
  std::vector<std::uint32_t> labels(m.num_states(), 0);
  for (StateId s = 0; s < m.num_states(); ++s) labels[s] = goal[s] ? 1u : 0u;

  const Partition strong = strong_bisimulation(m, &labels);
  const Imc strong_q = quotient(m, strong, QuotientStyle::Strong);
  BitVector strong_goal(strong.num_blocks, false);
  for (StateId s = 0; s < m.num_states(); ++s) {
    if (goal[s]) strong_goal[strong.block_of[s]] = true;
  }
  variant_check(ctx, "strong-bisim-minimized", strong_q, strong_goal, primary_value);

  const Partition branching = branching_bisimulation(m, &labels);
  const Imc branching_q = quotient(m, branching, QuotientStyle::Branching);
  BitVector branching_goal(branching.num_blocks, false);
  for (StateId s = 0; s < m.num_states(); ++s) {
    if (goal[s]) branching_goal[branching.block_of[s]] = true;
  }
  variant_check(ctx, "branching-bisim-minimized", branching_q, branching_goal, primary_value);
}

// --- Scenarios ----------------------------------------------------------

void scenario_imc(const Ctx& ctx, const Scaled& cfg) {
  Rng rng(derive_seed(ctx.seed, kStreamImc));
  const Imc m = random_uniform_imc(rng, cfg.imc);
  const BitVector goal = random_goal(rng, m.num_states());

  const UniformityAudit audit = audit_uniformity(m, UniformityView::Closed, 1e-9);
  ctx.require(audit.uniform, "uniformity-audit",
              "state " + std::to_string(audit.worst_state) + " deviates by " +
                  num(audit.max_deviation));
  const auto lib_rate = m.uniform_rate(UniformityView::Closed, 1e-6);
  ctx.require(lib_rate.has_value(), "uniform-rate", "library rejects an audited-uniform model");
  ctx.require(std::fabs(*lib_rate - audit.rate) <= 1e-6, "uniform-rate",
              "library " + num(*lib_rate) + " vs audit " + num(audit.rate));

  const TransformResult tr = transform_to_ctmdp(m, &goal);
  if (tr.ctmdp.num_states() <= kDenseOracleLimit) {
    const auto mismatch = check_transform(m, goal, tr);
    ctx.require(!mismatch, "transform-oracle", mismatch.value_or(""));
  }

  const TimedReachabilityResult sup =
      solver_checks(ctx, tr.ctmdp, tr.goal, tr.goal_universal, /*with_mc=*/true);
  const double primary = sup.values[tr.ctmdp.initial()];

  // Hiding relabels words but not the urgent dynamics of a closed model.
  variant_check(ctx, "hide-all-invariance", m.hide_all(), goal, primary);
  bisim_checks(ctx, m, goal, primary);
}

void scenario_composed(const Ctx& ctx, const Scaled& cfg) {
  Rng rng(derive_seed(ctx.seed, kStreamComposed));
  const ComposedModel cm = random_composed_uimc(rng, cfg.composed);

  // Uniformity must hold *by construction* (Lemmas 1-3), at the rate the
  // construction promised.
  const UniformityAudit audit = audit_uniformity(cm.system, UniformityView::Closed, 1e-6);
  ctx.require(audit.uniform, "composed-uniformity",
              "state " + std::to_string(audit.worst_state) + " deviates by " +
                  num(audit.max_deviation));
  if (audit.rate > 0.0) {
    ctx.require(std::fabs(audit.rate - cm.expected_rate) <= 1e-6, "composed-rate",
                "audit " + num(audit.rate) + " vs constructed " + num(cm.expected_rate));
  }

  const TransformResult tr = transform_to_ctmdp(cm.system, &cm.goal);
  if (tr.ctmdp.num_states() <= kDenseOracleLimit) {
    const auto mismatch = check_transform(cm.system, cm.goal, tr);
    ctx.require(!mismatch, "transform-oracle", mismatch.value_or(""));
  }

  const TimedReachabilityResult sup =
      solver_checks(ctx, tr.ctmdp, tr.goal, tr.goal_universal, /*with_mc=*/false);
  bisim_checks(ctx, cm.system, cm.goal, sup.values[tr.ctmdp.initial()]);
}

void scenario_ctmdp(const Ctx& ctx, const Scaled& cfg) {
  Rng rng(derive_seed(ctx.seed, kStreamCtmdp));
  const Ctmdp model = random_uniform_ctmdp(rng, cfg.ctmdp);
  const BitVector goal = random_goal(rng, model.num_states());
  solver_checks(ctx, model, goal, goal, /*with_mc=*/true);
}

void scenario_ctmc(const Ctx& ctx, const Scaled& cfg) {
  Rng rng(derive_seed(ctx.seed, kStreamCtmc));
  const Ctmc chain = random_ctmc(rng, cfg.ctmc);
  const BitVector goal = random_goal(rng, chain.num_states());
  const double t = ctx.config.time;

  TransientOptions serial;
  serial.epsilon = ctx.config.epsilon;
  serial.threads = 1;
  serial.backend = ctx.config.backend;
  const TransientResult direct = timed_reachability(chain, goal, t, serial);

  // Jensen uniformization is transparent to transient behaviour.
  const Ctmc uniform = chain.uniformize();
  const TransientResult via_uniform = timed_reachability(uniform, goal, t, serial);
  {
    const double diff = vector_diff(direct.probabilities, via_uniform.probabilities);
    ctx.require(diff <= ctx.config.tolerance, "uniformize-invariance",
                "max deviation " + num(diff));
  }

  TransientOptions parallel = serial;
  parallel.threads = 4;
  const TransientResult par = timed_reachability(chain, goal, t, parallel);
  ctx.require(direct.probabilities == par.probabilities, "ctmc-serial-vs-parallel",
              "values differ by " + num(vector_diff(direct.probabilities, par.probabilities)));

  // Algorithm 1 on the embedded chain degenerates to the CTMC solution.
  const Ctmdp embedded = ctmdp_from_ctmc(uniform);
  TimedReachabilityOptions solver;
  solver.epsilon = ctx.config.epsilon;
  solver.threads = 1;
  solver.backend = ctx.config.backend;
  const TimedReachabilityResult alg1 = timed_reachability(embedded, goal, t, solver);
  {
    const double diff = vector_diff(alg1.values, direct.probabilities);
    ctx.require(diff <= ctx.config.tolerance, "ctmc-vs-alg1", "max deviation " + num(diff));
  }
  if (embedded.num_states() <= kDenseOracleLimit) {
    const std::vector<double> ref = naive_timed_reachability(
        dense_from_ctmdp(embedded), goal, t, ctx.config.epsilon, Objective::Maximize);
    const double diff = vector_diff(alg1.values, ref);
    ctx.require(diff <= ctx.config.tolerance, "ctmc-vs-dense-oracle",
                "max deviation " + num(diff));
  }
}

void scenario_zeno(const Ctx& ctx, const Scaled& cfg) {
  Rng rng(derive_seed(ctx.seed, kStreamZeno));
  RandomImcConfig zeno_cfg = cfg.imc;
  zeno_cfg.tau_cycle_density = 0.4;
  const Imc m = random_uniform_imc(rng, zeno_cfg);
  const BitVector goal = random_goal(rng, m.num_states());

  // 0 = accepted, 1 = rejected.  The *first* rejection reason may depend on
  // exploration order, so only acceptance must agree.
  auto classify_library = [&]() -> int {
    try {
      (void)transform_to_ctmdp(m, &goal);
      return 0;
    } catch (const ZenoError&) {
      return 1;
    } catch (const ModelError&) {
      return 1;
    }
  };
  auto classify_oracle = [&]() -> int {
    try {
      (void)bruteforce_transform(m, goal);
      return 0;
    } catch (const ZenoError&) {
      return 1;
    } catch (const ModelError&) {
      return 1;
    }
  };
  const int lib = classify_library();
  const int oracle = classify_oracle();
  ctx.require(lib == oracle, "zeno-agreement",
              std::string("library ") + (lib ? "rejects" : "accepts") + ", oracle " +
                  (oracle ? "rejects" : "accepts"));
  if (lib == 0) {
    const TransformResult tr = transform_to_ctmdp(m, &goal);
    if (tr.ctmdp.num_states() <= kDenseOracleLimit) {
      const auto mismatch = check_transform(m, goal, tr);
      ctx.require(!mismatch, "transform-oracle", mismatch.value_or(""));
    }
  }
}

// --- Batch mode ---------------------------------------------------------

/// One generated multi-horizon instance.  Factored out so the scenario and
/// write_artifacts consume the identical rng draw sequence and can never
/// drift apart.
struct BatchInstance {
  Ctmdp model;
  BitVector goal;
  std::vector<double> times;
  Ctmc chain;
  BitVector chain_goal;
  std::vector<double> chain_times;
};

/// 2..6 bounds, deliberately hostile to horizon bookkeeping: unsorted,
/// with occasional zeros and exact duplicates.
std::vector<double> random_times(Rng& rng) {
  const std::size_t count = 2 + rng.next_below(5);
  std::vector<double> times;
  times.reserve(count);
  for (std::size_t i = 0; i < count; ++i) {
    const std::uint64_t pick = rng.next_below(8);
    if (pick == 0) {
      times.push_back(0.0);
    } else if (pick == 1 && !times.empty()) {
      times.push_back(times[rng.next_below(times.size())]);
    } else {
      times.push_back(0.05 + 3.0 * rng.next_double());
    }
  }
  return times;
}

BatchInstance make_batch_instance(std::uint64_t seed, const Scaled& cfg) {
  Rng rng(derive_seed(seed, kStreamBatch));
  BatchInstance instance;
  instance.model = random_uniform_ctmdp(rng, cfg.ctmdp);
  instance.goal = random_goal(rng, instance.model.num_states());
  instance.times = random_times(rng);
  instance.chain = random_ctmc(rng, cfg.ctmc);
  instance.chain_goal = random_goal(rng, instance.chain.num_states());
  instance.chain_times = random_times(rng);
  return instance;
}

/// The batch solve under test with the configured bug injected — the same
/// injection points as mutated_solve, so --self-check has teeth in batch
/// mode too.
std::vector<TimedReachabilityResult> mutated_batch_solve(const Ctmdp& model, BitVector goal,
                                                         const std::vector<double>& times,
                                                         TimedReachabilityOptions options,
                                                         Mutation mutation) {
  if (mutation == Mutation::SwapObjective) {
    options.objective = options.objective == Objective::Maximize ? Objective::Minimize
                                                                 : Objective::Maximize;
  }
  if (mutation == Mutation::CoarsePoisson) options.epsilon = 1e-2;
  if (mutation == Mutation::StaleGoal) {
    for (std::size_t s = goal.size(); s-- > 0;) {
      if (goal[s]) {
        goal[s] = false;
        break;
      }
    }
  }
  std::vector<TimedReachabilityResult> results =
      timed_reachability_batch(model, goal, times, options);
  if (mutation == Mutation::PerturbValue && !results.empty() &&
      !results.front().values.empty()) {
    double& v = results.front().values[model.initial()];
    v = v < 0.5 ? v + 1e-6 : v - 1e-6;
  }
  return results;
}

void scenario_batch(const Ctx& ctx, const Scaled& cfg) {
  const BatchInstance instance = make_batch_instance(ctx.seed, cfg);
  const DifferentialConfig& config = ctx.config;

  TimedReachabilityOptions options;
  options.epsilon = config.epsilon;
  options.threads = 1;
  options.backend = config.backend;

  const bool dense_ok = instance.model.num_states() <= kDenseOracleLimit;
  DenseModel dense;
  if (dense_ok) dense = dense_from_ctmdp(instance.model);

  for (const Objective objective : {Objective::Maximize, Objective::Minimize}) {
    options.objective = objective;
    const char* tag = objective == Objective::Maximize ? "sup" : "inf";
    const std::vector<TimedReachabilityResult> batch = mutated_batch_solve(
        instance.model, instance.goal, instance.times, options, config.mutation);
    ctx.require(batch.size() == instance.times.size(), "batch-size",
                std::to_string(batch.size()) + " results for " +
                    std::to_string(instance.times.size()) + " bounds");
    for (std::size_t j = 0; j < instance.times.size(); ++j) {
      const double t = instance.times[j];
      // Contract: each horizon is bit-identical to its independent
      // single-t solve — values, iteration counts and residual bound.
      const TimedReachabilityResult single =
          timed_reachability(instance.model, instance.goal, t, options);
      ctx.require(batch[j].values == single.values,
                  (std::string("batch-bitwise-") + tag).c_str(),
                  "t=" + num(t) + " values differ by " +
                      num(vector_diff(batch[j].values, single.values)));
      ctx.require(batch[j].iterations_planned == single.iterations_planned &&
                      batch[j].iterations_executed == single.iterations_executed,
                  (std::string("batch-iterations-") + tag).c_str(),
                  "t=" + num(t) + " batch " + std::to_string(batch[j].iterations_executed) +
                      "/" + std::to_string(batch[j].iterations_planned) + " vs single " +
                      std::to_string(single.iterations_executed) + "/" +
                      std::to_string(single.iterations_planned));
      if (dense_ok) {
        const std::vector<double> ref =
            naive_timed_reachability(dense, instance.goal, t, config.epsilon, objective);
        const double diff = vector_diff(batch[j].values, ref);
        ctx.require(diff <= config.tolerance, (std::string("batch-vs-oracle-") + tag).c_str(),
                    "t=" + num(t) + " max deviation " + num(diff));
      }
    }
  }

  TransientOptions transient;
  transient.epsilon = config.epsilon;
  transient.threads = 1;
  transient.backend = config.backend;
  const std::vector<TransientResult> chain_batch = timed_reachability_batch(
      instance.chain, instance.chain_goal, instance.chain_times, transient);
  ctx.require(chain_batch.size() == instance.chain_times.size(), "ctmc-batch-size",
              std::to_string(chain_batch.size()) + " results for " +
                  std::to_string(instance.chain_times.size()) + " bounds");
  for (std::size_t j = 0; j < instance.chain_times.size(); ++j) {
    const double t = instance.chain_times[j];
    const TransientResult single =
        timed_reachability(instance.chain, instance.chain_goal, t, transient);
    ctx.require(chain_batch[j].probabilities == single.probabilities, "ctmc-batch-bitwise",
                "t=" + num(t) + " values differ by " +
                    num(vector_diff(chain_batch[j].probabilities, single.probabilities)));
    const Ctmdp embedded = ctmdp_from_ctmc(instance.chain.uniformize());
    if (embedded.num_states() <= kDenseOracleLimit) {
      const std::vector<double> ref =
          naive_timed_reachability(dense_from_ctmdp(embedded), instance.chain_goal, t,
                                   config.epsilon, Objective::Maximize);
      const double diff = vector_diff(chain_batch[j].probabilities, ref);
      ctx.require(diff <= config.tolerance, "ctmc-batch-vs-oracle",
                  "t=" + num(t) + " max deviation " + num(diff));
    }
  }
}

// --- Truncation mode ----------------------------------------------------

/// One generated truncation-differential instance.  Factored out so the
/// scenario and write_artifacts consume the identical rng draw sequence.
struct TruncationInstance {
  Ctmdp model;
  BitVector goal;
  Ctmc chain;
  BitVector chain_goal;
};

TruncationInstance make_truncation_instance(std::uint64_t seed, const Scaled& cfg) {
  Rng rng(derive_seed(seed, kStreamTruncation));
  TruncationInstance instance;
  instance.model = random_uniform_ctmdp(rng, cfg.ctmdp);
  instance.goal = random_goal(rng, instance.model.num_states());
  instance.chain = random_ctmc(rng, cfg.ctmc);
  instance.chain_goal = random_goal(rng, instance.chain.num_states());
  return instance;
}

/// lambda * t for the long horizon: far past kLyapunovAutoEngageLeft, so
/// both the explicit and the auto provider run the Lyapunov certificate.
constexpr double kLongHorizonMass = 1500.0;

constexpr Truncation kTruncationModes[] = {Truncation::FoxGlynn, Truncation::Lyapunov,
                                           Truncation::Auto};

void scenario_truncation(const Ctx& ctx, const Scaled& cfg) {
  const TruncationInstance instance = make_truncation_instance(ctx.seed, cfg);
  const DifferentialConfig& config = ctx.config;

  // CTMDP: every provider x locking, both objectives, short and long bound.
  const double ctmdp_long = kLongHorizonMass / cfg.ctmdp.uniform_rate;
  const bool dense_ok = instance.model.num_states() <= kDenseOracleLimit;
  DenseModel dense;
  if (dense_ok) dense = dense_from_ctmdp(instance.model);
  for (const double t : {config.time, ctmdp_long}) {
    const bool long_bound = t == ctmdp_long;
    for (const Objective objective : {Objective::Maximize, Objective::Minimize}) {
      TimedReachabilityOptions base;
      base.epsilon = config.epsilon;
      base.objective = objective;
      base.threads = 1;
      base.backend = config.backend;
      base.locking = false;
      base.truncation = Truncation::FoxGlynn;
      const TimedReachabilityResult ref =
          mutated_solve(instance.model, instance.goal, t, base, config.mutation);
      std::vector<double> oracle;
      if (dense_ok) {
        oracle = naive_timed_reachability(dense, instance.goal, t, config.epsilon, objective);
      }
      for (const Truncation mode : kTruncationModes) {
        TimedReachabilityOptions options = base;
        options.truncation = mode;
        const TimedReachabilityResult off =
            mutated_solve(instance.model, instance.goal, t, options, config.mutation);
        options.locking = true;
        const TimedReachabilityResult on =
            mutated_solve(instance.model, instance.goal, t, options, config.mutation);
        const std::string tag = std::string(truncation_name(mode)) + "/" +
                                (objective == Objective::Maximize ? "sup" : "inf") +
                                " t=" + num(t);
        // Locking is observably invisible: bitwise-equal values.
        ctx.require(off.values == on.values, "truncation-locking-bitwise",
                    tag + " values differ by " + num(vector_diff(off.values, on.values)));
        ctx.require(on.iterations_executed <= off.iterations_executed, "truncation-locking-iters",
                    tag + " locking executed more sweeps (" +
                        std::to_string(on.iterations_executed) + " vs " +
                        std::to_string(off.iterations_executed) + ")");
        if (mode == Truncation::FoxGlynn) {
          ctx.require(off.truncation == Truncation::FoxGlynn, "truncation-resolve",
                      tag + " fox-glynn request resolved to lyapunov");
        }
        if (mode == Truncation::Lyapunov && long_bound) {
          ctx.require(off.truncation == Truncation::Lyapunov, "truncation-resolve",
                      tag + " certificate did not engage at lambda*t=" + num(kLongHorizonMass));
        }
        const double mode_diff = vector_diff(off.values, ref.values);
        ctx.require(mode_diff <= config.tolerance, "truncation-mode-agreement",
                    tag + " max deviation " + num(mode_diff) + " from fox-glynn");
        if (dense_ok) {
          const double diff = vector_diff(off.values, oracle);
          ctx.require(diff <= config.tolerance, "truncation-vs-oracle",
                      tag + " max deviation " + num(diff));
          if (config.mutation == Mutation::None) {
            ctx.require(diff <= off.residual_bound + config.tolerance,
                        "truncation-residual-sound",
                        tag + " deviation " + num(diff) + " exceeds residual bound " +
                            num(off.residual_bound));
          }
        }
      }
    }
  }

  // CTMC: same grid on the transient solver (no objective, no mutation —
  // the CTMDP half above carries the self-check teeth, as in batch mode).
  TransientOptions tbase;
  tbase.epsilon = config.epsilon;
  tbase.threads = 1;
  tbase.backend = config.backend;
  tbase.locking = false;
  tbase.truncation = Truncation::FoxGlynn;
  const TransientResult probe =
      timed_reachability(instance.chain, instance.chain_goal, config.time, tbase);
  const double chain_long =
      probe.uniform_rate > 0.0 ? kLongHorizonMass / probe.uniform_rate : config.time;
  const Ctmdp embedded = ctmdp_from_ctmc(instance.chain.uniformize());
  for (const double t : {config.time, chain_long}) {
    const TransientResult ref = timed_reachability(instance.chain, instance.chain_goal, t, tbase);
    std::vector<double> oracle;
    const bool chain_dense_ok = embedded.num_states() <= kDenseOracleLimit;
    if (chain_dense_ok) {
      oracle = naive_timed_reachability(dense_from_ctmdp(embedded), instance.chain_goal, t,
                                        config.epsilon, Objective::Maximize);
    }
    for (const Truncation mode : kTruncationModes) {
      TransientOptions options = tbase;
      options.truncation = mode;
      const TransientResult off = timed_reachability(instance.chain, instance.chain_goal, t,
                                                     options);
      options.locking = true;
      const TransientResult on = timed_reachability(instance.chain, instance.chain_goal, t,
                                                    options);
      const std::string tag = std::string("ctmc ") + truncation_name(mode) + " t=" + num(t);
      ctx.require(off.probabilities == on.probabilities, "truncation-ctmc-locking-bitwise",
                  tag + " values differ by " +
                      num(vector_diff(off.probabilities, on.probabilities)));
      if (mode == Truncation::FoxGlynn) {
        ctx.require(off.truncation == Truncation::FoxGlynn, "truncation-ctmc-resolve",
                    tag + " fox-glynn request resolved to lyapunov");
      }
      const double mode_diff = vector_diff(off.probabilities, ref.probabilities);
      ctx.require(mode_diff <= config.tolerance, "truncation-ctmc-mode-agreement",
                  tag + " max deviation " + num(mode_diff) + " from fox-glynn");
      if (chain_dense_ok) {
        const double diff = vector_diff(off.probabilities, oracle);
        ctx.require(diff <= config.tolerance, "truncation-ctmc-vs-oracle",
                    tag + " max deviation " + num(diff));
      }
    }
  }
}

struct Scenario {
  const char* name;
  void (*run)(const Ctx&, const Scaled&);
};

constexpr Scenario kScenarios[] = {
    {"imc", scenario_imc},       {"composed", scenario_composed}, {"ctmdp", scenario_ctmdp},
    {"ctmc", scenario_ctmc},     {"zeno", scenario_zeno},
};

std::vector<std::string> write_artifacts(const Failure& failure,
                                         const DifferentialConfig& config) {
  namespace fs = std::filesystem;
  std::vector<std::string> files;
  fs::create_directories(config.artifact_dir);
  const Scaled cfg = scaled_configs(failure.level);
  const std::string stem = config.artifact_dir + "/seed-" + std::to_string(failure.seed) + "-" +
                           failure.scenario;
  auto emit = [&](const std::string& path, auto&& writer) {
    std::ofstream out(path);
    writer(out);
    files.push_back(path);
  };

  if (failure.scenario == "imc" || failure.scenario == "zeno" ||
      failure.scenario == "composed") {
    Rng rng(derive_seed(failure.seed, failure.scenario == "composed" ? kStreamComposed
                        : failure.scenario == "zeno"                 ? kStreamZeno
                                                                     : kStreamImc));
    Imc m;
    BitVector goal;
    if (failure.scenario == "composed") {
      ComposedModel cm = random_composed_uimc(rng, cfg.composed);
      m = std::move(cm.system);
      goal = std::move(cm.goal);
    } else {
      RandomImcConfig imc_cfg = cfg.imc;
      if (failure.scenario == "zeno") imc_cfg.tau_cycle_density = 0.4;
      m = random_uniform_imc(rng, imc_cfg);
      goal = random_goal(rng, m.num_states());
    }
    emit(stem + ".imc", [&](std::ostream& out) { io::write_imc(out, m); });
    emit(stem + ".lab", [&](std::ostream& out) { io::write_goal(out, goal); });
  } else if (failure.scenario == "ctmdp") {
    Rng rng(derive_seed(failure.seed, kStreamCtmdp));
    const Ctmdp model = random_uniform_ctmdp(rng, cfg.ctmdp);
    const BitVector goal = random_goal(rng, model.num_states());
    emit(stem + ".ctmdp", [&](std::ostream& out) { io::write_ctmdp(out, model); });
    emit(stem + ".lab", [&](std::ostream& out) { io::write_goal(out, goal); });
  } else if (failure.scenario == "ctmc") {
    Rng rng(derive_seed(failure.seed, kStreamCtmc));
    const Ctmc chain = random_ctmc(rng, cfg.ctmc);
    const BitVector goal = random_goal(rng, chain.num_states());
    emit(stem + ".tra", [&](std::ostream& out) { io::write_ctmc(out, chain); });
    emit(stem + ".lab", [&](std::ostream& out) { io::write_goal(out, goal); });
  } else if (failure.scenario == "batch") {
    const BatchInstance instance = make_batch_instance(failure.seed, cfg);
    emit(stem + ".ctmdp", [&](std::ostream& out) { io::write_ctmdp(out, instance.model); });
    emit(stem + ".lab", [&](std::ostream& out) { io::write_goal(out, instance.goal); });
    emit(stem + ".tra", [&](std::ostream& out) { io::write_ctmc(out, instance.chain); });
    emit(stem + ".tra.lab",
         [&](std::ostream& out) { io::write_goal(out, instance.chain_goal); });
  } else if (failure.scenario == "truncation") {
    const TruncationInstance instance = make_truncation_instance(failure.seed, cfg);
    emit(stem + ".ctmdp", [&](std::ostream& out) { io::write_ctmdp(out, instance.model); });
    emit(stem + ".lab", [&](std::ostream& out) { io::write_goal(out, instance.goal); });
    emit(stem + ".tra", [&](std::ostream& out) { io::write_ctmc(out, instance.chain); });
    emit(stem + ".tra.lab",
         [&](std::ostream& out) { io::write_goal(out, instance.chain_goal); });
  }

  emit(stem + ".txt", [&](std::ostream& out) {
    out << "seed: " << failure.seed << "\n"
        << "scenario: " << failure.scenario << "\n"
        << "shrink level: " << failure.level << "\n"
        << "failure: " << failure.message << "\n"
        << "replay: unicon_fuzz "
        << (failure.scenario == "batch"        ? "--batch "
            : failure.scenario == "truncation" ? "--truncation "
                                               : "")
        << "--seed " << failure.seed << "\n";
    if (failure.scenario == "batch") {
      const BatchInstance instance = make_batch_instance(failure.seed, cfg);
      out << "ctmdp times:";
      for (const double t : instance.times) out << " " << num(t);
      out << "\nctmc times:";
      for (const double t : instance.chain_times) out << " " << num(t);
      out << "\n";
    }
  });
  return files;
}

}  // namespace

std::optional<Failure> run_seed(std::uint64_t seed, const DifferentialConfig& config, int level,
                                std::uint64_t& checks_run) {
  const Scaled cfg = scaled_configs(level);
  const Ctx ctx{config, checks_run, seed, level};
  const auto run_one = [&](const Scenario& scenario) -> std::optional<Failure> {
    try {
      scenario.run(ctx, cfg);
    } catch (const CheckFailed& failed) {
      return Failure{seed, scenario.name, failed.message, level, {}};
    } catch (const Error& error) {
      return Failure{seed, scenario.name, std::string("unexpected error: ") + error.what(),
                     level, {}};
    }
    return std::nullopt;
  };
  if (config.truncation) return run_one(Scenario{"truncation", scenario_truncation});
  if (config.batch) return run_one(Scenario{"batch", scenario_batch});
  for (const Scenario& scenario : kScenarios) {
    if (std::optional<Failure> failure = run_one(scenario)) return failure;
  }
  return std::nullopt;
}

DifferentialReport run_differential(const DifferentialConfig& config, const LogFn& log) {
  DifferentialReport report;
  for (std::uint64_t i = 0; i < config.num_seeds; ++i) {
    const std::uint64_t seed = config.base_seed + i;
    std::optional<Failure> failure = run_seed(seed, config, 0, report.checks_run);
    ++report.seeds_run;
    if (!failure) {
      if (log && (i + 1) % 50 == 0) {
        log(std::to_string(i + 1) + "/" + std::to_string(config.num_seeds) + " seeds, " +
            std::to_string(report.checks_run) + " checks, " +
            std::to_string(report.failures.size()) + " failures");
      }
      continue;
    }
    if (config.shrink) {
      // Re-run the same seed on ever smaller generator configs; keep the
      // deepest level that still fails the same scenario.
      for (int level = 1; level <= kMaxShrinkLevel; ++level) {
        std::uint64_t scratch = 0;
        std::optional<Failure> smaller = run_seed(seed, config, level, scratch);
        if (!smaller || smaller->scenario != failure->scenario) break;
        failure = std::move(smaller);
      }
    }
    if (!config.artifact_dir.empty()) failure->artifacts = write_artifacts(*failure, config);
    if (log) {
      log("seed " + std::to_string(seed) + " FAILED [" + failure->scenario +
          ", level " + std::to_string(failure->level) + "] " + failure->message);
    }
    report.failures.push_back(std::move(*failure));
  }
  return report;
}

}  // namespace unicon::testing
