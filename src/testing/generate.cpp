#include "testing/generate.hpp"

#include <algorithm>
#include <string>

#include "core/time_constraint.hpp"
#include "ctmc/phase_type.hpp"
#include "imc/compose.hpp"
#include "lts/lts.hpp"
#include "support/errors.hpp"

namespace unicon::testing {

Imc random_uniform_imc(Rng& rng, const RandomImcConfig& config) {
  const std::size_t n = std::max<std::size_t>(config.num_states, 2);
  ImcBuilder b;
  const Action visible_a = b.intern("a");
  const Action visible_b = b.intern("b");
  for (std::size_t s = 0; s < n; ++s) b.add_state("s" + std::to_string(s));
  b.set_initial(0);

  // Decide kinds: last state is Markov so interactive chains terminate.
  BitVector interactive(n, false);
  for (std::size_t s = 0; s + 1 < n; ++s) {
    interactive[s] = rng.next_double() < config.interactive_bias;
  }

  for (std::size_t s = 0; s < n; ++s) {
    if (interactive[s]) {
      // Interactive transitions lead strictly forward (no Zeno cycles).
      const unsigned fanout =
          config.deterministic ? 1u : 1u + static_cast<unsigned>(rng.next_below(config.max_fanout));
      bool has_tau = false;
      for (unsigned i = 0; i < fanout; ++i) {
        const StateId to = static_cast<StateId>(s + 1 + rng.next_below(n - s - 1));
        const Action a = rng.next_double() < config.tau_bias
                             ? kTau
                             : (rng.next_double() < 0.5 ? visible_a : visible_b);
        has_tau = has_tau || a == kTau;
        b.add_interactive(static_cast<StateId>(s), a, to);
      }
      // Optionally close an interactive cycle with a backward tau edge —
      // this deliberately injects Zeno behaviour for detector tests.  Only
      // draws from the Rng when enabled so that default-config streams stay
      // identical to the historical generator.
      if (config.tau_cycle_density > 0.0 && s > 0 &&
          rng.next_double() < config.tau_cycle_density) {
        const StateId back = static_cast<StateId>(rng.next_below(s + 1));
        b.add_interactive(static_cast<StateId>(s), kTau, back);
        has_tau = true;
      }
      // A visible-only interactive state is *stable* (Def. 4) and must
      // carry exit rate E to keep the model uniform — the same device the
      // elapse operator uses for its idle/done states.
      if (!has_tau) {
        b.add_markov(static_cast<StateId>(s), config.uniform_rate, static_cast<StateId>(s));
      }
    } else {
      // Markov state: random targets anywhere, rates normalized to the
      // uniform rate.
      const unsigned fanout = 1u + static_cast<unsigned>(rng.next_below(config.max_fanout));
      std::vector<double> weights(fanout);
      double total = 0.0;
      for (double& w : weights) {
        w = 0.1 + config.rate_spread * rng.next_double();
        total += w;
      }
      for (unsigned i = 0; i < fanout; ++i) {
        const StateId to = static_cast<StateId>(rng.next_below(n));
        b.add_markov(static_cast<StateId>(s), config.uniform_rate * weights[i] / total, to);
      }
    }
  }

  return b.build().reachable();
}

namespace {

double random_rate(Rng& rng, double lo, double hi) { return lo + (hi - lo) * rng.next_double(); }

PhaseType random_phase_type(Rng& rng, const RandomComposedConfig& config) {
  const unsigned phases =
      1u + static_cast<unsigned>(rng.next_below(std::max(config.max_phases, 1u)));
  if (phases == 1) return PhaseType::exponential(random_rate(rng, config.min_rate, config.max_rate));
  if (rng.next_double() < 0.5) {
    return PhaseType::erlang(phases, random_rate(rng, config.min_rate, config.max_rate));
  }
  std::vector<double> rates(phases);
  for (double& r : rates) r = random_rate(rng, config.min_rate, config.max_rate);
  return PhaseType::hypoexponential(rates);
}

}  // namespace

ComposedModel random_composed_uimc(Rng& rng, const RandomComposedConfig& config) {
  const unsigned m = std::max(config.ring_length, 2u);
  auto actions = std::make_shared<ActionTable>();
  // The elapse operator uniformizes each constraint at its maximal phase
  // exit rate; by Lemmas 1-3 the composite is uniform at the sum of those
  // rates.  Accumulated here so callers can audit the construction claim
  // against Imc::uniform_rate without circularity.
  double expected_rate = 0.0;

  // Sequential component: an m-ring of delayed actions, each triggered by
  // its predecessor; constraint 0 runs from time zero so the system moves.
  LtsBuilder ring(actions);
  for (unsigned i = 0; i < m; ++i) ring.add_state("r" + std::to_string(i));
  ring.set_initial(0);
  std::vector<TimeConstraint> ring_constraints;
  for (unsigned i = 0; i < m; ++i) {
    const std::string act = "ring" + std::to_string(i);
    const std::string prev = "ring" + std::to_string((i + m - 1) % m);
    ring.add_transition(i, act, (i + 1) % m);
    PhaseType ph = random_phase_type(rng, config);
    expected_rate += ph.max_exit_rate();
    ring_constraints.emplace_back(std::move(ph), act, prev, /*running=*/i == 0);
  }
  CompositionExpr expr = time_constrained_expr(ring.build(), ring_constraints);

  // Optional second component: a random LTS over self-triggered actions
  // (fire == trigger never blocks: the constraint offers the action from
  // both its idle and done states, and merely delays it while running).
  if (config.extra_actions > 0 && config.extra_states > 0) {
    LtsBuilder extra(actions);
    const unsigned k = std::max(config.extra_states, 2u);
    for (unsigned i = 0; i < k; ++i) extra.add_state("x" + std::to_string(i));
    extra.set_initial(0);
    std::vector<TimeConstraint> extra_constraints;
    for (unsigned a = 0; a < config.extra_actions; ++a) {
      const std::string act = "extra" + std::to_string(a);
      PhaseType ph = random_phase_type(rng, config);
      expected_rate += ph.max_exit_rate();
      extra_constraints.emplace_back(std::move(ph), act, act,
                                     /*running=*/rng.next_double() < 0.5);
      // Wire 1-2 transitions with this action into the component; forward
      // or backward edges are both fine (self-triggered constraints cannot
      // deadlock, at worst an action is never offered again).
      const unsigned uses = 1u + static_cast<unsigned>(rng.next_below(2));
      for (unsigned u = 0; u < uses; ++u) {
        const StateId from = static_cast<StateId>(rng.next_below(k));
        StateId to = static_cast<StateId>(rng.next_below(k));
        if (to == from) to = static_cast<StateId>((to + 1) % k);
        extra.add_transition(from, act, to);
      }
    }
    expr = CompositionExpr::interleave(std::move(expr),
                                       time_constrained_expr(extra.build(), extra_constraints));
  }

  if (config.hide) expr = CompositionExpr::hide_all(std::move(expr));

  ExploreOptions explore;
  explore.urgent = true;
  explore.max_states = config.max_states;
  ComposedModel model;
  model.system = expr.explore(explore);
  model.expected_rate = expected_rate;
  model.goal = random_goal(rng, model.system.num_states(), config.goal_density);
  return model;
}

Ctmdp random_uniform_ctmdp(Rng& rng, const RandomCtmdpConfig& config) {
  const std::size_t n = std::max<std::size_t>(config.num_states, 2);
  CtmdpBuilder b;
  b.ensure_states(n);
  b.set_initial(0);
  const char* const alphabet[] = {"a", "b", "c", "d"};
  for (std::size_t s = 0; s < n; ++s) {
    // State 0 keeps its transitions so the initial state is never trivially
    // absorbing.
    if (s > 0 && rng.next_double() < config.absorbing_density) continue;
    const unsigned fanout =
        1u + static_cast<unsigned>(rng.next_below(std::max(config.max_transitions_per_state, 1u)));
    for (unsigned tr = 0; tr < fanout; ++tr) {
      b.begin_transition(static_cast<StateId>(s), alphabet[tr % 4]);
      const unsigned entries =
          1u + static_cast<unsigned>(rng.next_below(std::max(config.max_entries, 1u)));
      std::vector<double> weights(entries);
      double total = 0.0;
      for (double& w : weights) {
        w = 0.1 + config.rate_spread * rng.next_double();
        total += w;
      }
      for (unsigned j = 0; j < entries; ++j) {
        const StateId to = static_cast<StateId>(rng.next_below(n));
        b.add_rate(to, config.uniform_rate * weights[j] / total);
      }
    }
  }
  return b.build();
}

Ctmc random_ctmc(Rng& rng, const RandomCtmcConfig& config) {
  const std::size_t n = std::max<std::size_t>(config.num_states, 1);
  CtmcBuilder b(n);
  b.ensure_states(n);
  b.set_initial(0);
  for (std::size_t s = 0; s < n; ++s) {
    if (s > 0 && rng.next_double() < config.absorbing_density) continue;
    const unsigned fanout =
        1u + static_cast<unsigned>(rng.next_below(std::max(config.max_fanout, 1u)));
    for (unsigned i = 0; i < fanout; ++i) {
      StateId to = static_cast<StateId>(rng.next_below(n));
      if (to == s && rng.next_double() >= config.self_loop_density) {
        to = static_cast<StateId>((to + 1) % n);
      }
      if (to == s && n == 1) continue;
      b.add_transition(static_cast<StateId>(s), random_rate(rng, config.min_rate, config.max_rate),
                       to);
    }
  }
  return b.build();
}

BitVector random_goal(Rng& rng, std::size_t num_states, double density) {
  BitVector goal(num_states, false);
  bool any = false;
  for (std::size_t s = 1; s < num_states; ++s) {
    if (rng.next_double() < density) {
      goal[s] = true;
      any = true;
    }
  }
  if (!any && num_states > 1) goal[num_states - 1] = true;
  return goal;
}

}  // namespace unicon::testing
