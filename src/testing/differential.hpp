// The differential driver: per seed, generate models, run the optimized
// pipeline in several variants, and cross-check every result against the
// independent oracles of oracle.hpp.
//
// Variants exercised per seed (four model families):
//  * direct uIMC      — Def.-4 audit, transform vs. brute-force oracle,
//    Algorithm 1 vs. dense value iteration (sup and inf), serial vs.
//    parallel bit-identity, early termination, hide_all invariance,
//    branching-bisimulation minimization, step-bounded vs. naive oracle,
//    extracted scheduler <= sup, induced-CTMC cross-check, Monte-Carlo
//    estimate inside its confidence interval;
//  * composed uIMC    — uniformity *by construction* (elapse/compose/hide)
//    audited against the constructed rate, then transform + solver checks;
//  * direct uCTMDP    — solver-only checks, bypassing the transformation;
//  * CTMC             — transient uniformization vs. Algorithm 1 on the
//    embedded chain vs. the dense oracle;
// plus a Zeno family (tau-cycle injection) where the optimized transform
// and the brute-force oracle must agree on acceptance/rejection.
//
// Failing seeds are shrunk by re-running the same seed on a ladder of
// smaller generator configurations; the smallest failing instance can be
// dumped as .imc/.ctmdp/.tra/.lab artifacts for replay.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "support/backend.hpp"

namespace unicon::testing {

/// Deliberate bugs injected into the optimized solve path, used to verify
/// that the differential checks actually have teeth (mutation testing).
enum class Mutation : std::uint8_t {
  None,
  /// Adds 1e-6 to the computed value at the initial state.
  PerturbValue,
  /// Solves the opposite objective (inf instead of sup and vice versa).
  SwapObjective,
  /// Truncates the Poisson series at precision 1e-2 regardless of config.
  CoarsePoisson,
  /// Drops one goal state from the mask before solving.
  StaleGoal,
};

const char* mutation_name(Mutation m);
std::optional<Mutation> parse_mutation(const std::string& name);

struct DifferentialConfig {
  std::uint64_t base_seed = 1;
  std::uint64_t num_seeds = 50;
  /// Time bound of the reachability queries.
  double time = 1.5;
  /// Truncation precision for both the optimized solver and the oracle.
  double epsilon = 1e-12;
  /// Agreement tolerance between optimized results and oracle / variant
  /// results (serial-vs-parallel comparisons remain bitwise).
  double tolerance = 1e-9;
  /// Monte-Carlo runs of the first attempt; a failed CI check is retried
  /// once with 4x the runs and a fresh derived seed before counting.
  std::uint64_t mc_runs = 4000;
  /// Compute backend forced into every solver run (Auto = UNICON_BACKEND /
  /// serial).  Lets the self-check corpus exercise each kernel
  /// implementation against the oracles (unicon_fuzz --backend).
  Backend backend = Backend::Auto;
  /// CI z-score (2.5758 = 99%).
  double mc_z = 2.5758;
  /// Batch mode (unicon_fuzz --batch): instead of the five standard
  /// scenarios, run the multi-horizon differential — random CTMDP and CTMC
  /// instances solved through timed_reachability_batch with a randomly
  /// drawn bound set (unsorted, duplicates, zeros), cross-checked bitwise
  /// against independent single-t solves and, when small enough, against
  /// the dense oracle.  Shrinking and artifacts work as in normal mode.
  bool batch = false;
  /// Truncation mode (unicon_fuzz --truncation): random CTMDP and CTMC
  /// instances solved at a short and a deliberately long horizon under
  /// every truncation provider (fox-glynn, lyapunov, auto) with
  /// convergence locking on and off.  Locking must be observably invisible
  /// (bitwise-equal values per provider), the providers must agree within
  /// tolerance, and every variant must match the dense oracle.  Shrinking
  /// and artifacts work as in normal mode.
  bool truncation = false;
  /// Shrink failing seeds down the config ladder.
  bool shrink = true;
  /// Directory for counterexample artifacts ("" disables writing).
  std::string artifact_dir;
  Mutation mutation = Mutation::None;
};

struct Failure {
  std::uint64_t seed = 0;
  std::string scenario;  // "imc" | "composed" | "ctmdp" | "ctmc" | "zeno" | "batch" | "truncation"
  /// Which check tripped, with the observed discrepancy.
  std::string message;
  /// Shrink level the failure was reduced to (0 = full-size config).
  int level = 0;
  /// Artifact files written for replay (empty unless artifact_dir set).
  std::vector<std::string> artifacts;
};

struct DifferentialReport {
  std::uint64_t seeds_run = 0;
  std::uint64_t checks_run = 0;
  std::vector<Failure> failures;
  bool ok() const { return failures.empty(); }
};

using LogFn = std::function<void(const std::string&)>;

/// Runs every scenario for one seed at shrink level @p level (0 = full
/// size).  Returns the first failure, or nullopt when all checks pass.
/// @p checks_run is incremented per executed check.
std::optional<Failure> run_seed(std::uint64_t seed, const DifferentialConfig& config, int level,
                                std::uint64_t& checks_run);

/// Runs seeds base_seed .. base_seed + num_seeds - 1, shrinking and dumping
/// artifacts for failures.  @p log (optional) receives progress lines.
DifferentialReport run_differential(const DifferentialConfig& config, const LogFn& log = {});

}  // namespace unicon::testing
