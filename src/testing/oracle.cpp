#include "testing/oracle.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <unordered_map>

#include "support/errors.hpp"
#include "support/fox_glynn.hpp"

namespace unicon::testing {

DenseModel dense_from_ctmdp(const Ctmdp& model) {
  DenseModel d;
  d.num_states = model.num_states();
  d.initial = model.initial();
  d.choices.resize(d.num_states);
  bool have_rate = false;
  for (StateId s = 0; s < d.num_states; ++s) {
    const auto [first, last] = model.transition_range(s);
    for (std::uint64_t t = first; t < last; ++t) {
      double exit = 0.0;
      for (const SparseEntry& e : model.rates(t)) exit += e.value;
      if (!have_rate) {
        d.uniform_rate = exit;
        have_rate = true;
      } else if (std::fabs(exit - d.uniform_rate) > 1e-6) {
        throw UniformityError("dense_from_ctmdp: exit rates disagree");
      }
      std::vector<double> row(d.num_states, 0.0);
      for (const SparseEntry& e : model.rates(t)) row[e.col] += e.value / exit;
      d.choices[s].push_back(std::move(row));
    }
  }
  return d;
}

namespace {

/// Smallest k such that the Poisson(lambda) mass above k is <= eps, found
/// by direct summation of the reference pmf.
std::uint64_t naive_truncation_point(double lambda, double eps) {
  if (lambda <= 0.0) return 0;
  double cumulative = 0.0;
  for (std::uint64_t k = 0;; ++k) {
    cumulative += poisson_pmf(k, lambda);
    if (cumulative >= 1.0 - eps) return k;
    if (k > 10 + static_cast<std::uint64_t>(lambda + 200.0 * std::sqrt(lambda + 1.0))) {
      // Far beyond any possible truncation point: cumulative arithmetic
      // has saturated; the remaining mass is below double resolution.
      return k;
    }
  }
}

double sweep_value(const std::vector<std::vector<double>>& state_choices,
                   const std::vector<double>& q, const BitVector& goal, double w,
                   bool maximize) {
  double best = maximize ? -1.0 : 2.0;
  for (const std::vector<double>& row : state_choices) {
    double acc = 0.0;
    for (std::size_t j = 0; j < row.size(); ++j) {
      if (row[j] == 0.0) continue;
      acc += row[j] * q[j];
      if (goal[j]) acc += row[j] * w;
    }
    best = maximize ? std::max(best, acc) : std::min(best, acc);
  }
  return best;
}

}  // namespace

std::vector<double> naive_timed_reachability(const DenseModel& model,
                                             const BitVector& goal, double t, double eps,
                                             Objective objective) {
  if (goal.size() != model.num_states) {
    throw ModelError("naive_timed_reachability: goal vector size mismatch");
  }
  if (t < 0.0) throw ModelError("naive_timed_reachability: negative time bound");
  const double lambda = model.uniform_rate * t;
  const std::uint64_t k = naive_truncation_point(lambda, eps);
  const bool maximize = objective == Objective::Maximize;

  std::vector<double> q(model.num_states, 0.0);
  std::vector<double> q_prev(model.num_states, 0.0);
  for (std::uint64_t i = k; i >= 1; --i) {
    const double w = poisson_pmf(i, lambda);
    q_prev.swap(q);
    for (std::size_t s = 0; s < model.num_states; ++s) {
      if (goal[s]) {
        q[s] = w + q_prev[s];
      } else if (model.choices[s].empty()) {
        q[s] = 0.0;
      } else {
        q[s] = sweep_value(model.choices[s], q_prev, goal, w, maximize);
      }
    }
  }
  for (std::size_t s = 0; s < model.num_states; ++s) {
    if (goal[s]) {
      q[s] = 1.0;
    } else {
      q[s] = std::min(1.0, std::max(0.0, q[s]));
    }
  }
  return q;
}

std::vector<double> naive_step_bounded(const DenseModel& model, const BitVector& goal,
                                       std::uint64_t steps, Objective objective) {
  if (goal.size() != model.num_states) {
    throw ModelError("naive_step_bounded: goal vector size mismatch");
  }
  const bool maximize = objective == Objective::Maximize;
  std::vector<double> v(model.num_states, 0.0);
  std::vector<double> v_prev(model.num_states, 0.0);
  for (std::size_t s = 0; s < model.num_states; ++s) v[s] = goal[s] ? 1.0 : 0.0;
  for (std::uint64_t step = 0; step < steps; ++step) {
    v_prev.swap(v);
    for (std::size_t s = 0; s < model.num_states; ++s) {
      if (goal[s]) {
        v[s] = 1.0;
      } else if (model.choices[s].empty()) {
        v[s] = 0.0;
      } else {
        double best = maximize ? -1.0 : 2.0;
        for (const std::vector<double>& row : model.choices[s]) {
          double acc = 0.0;
          for (std::size_t j = 0; j < row.size(); ++j) acc += row[j] * v_prev[j];
          best = maximize ? std::max(best, acc) : std::min(best, acc);
        }
        v[s] = best;
      }
    }
  }
  return v;
}

namespace {

/// Point keys for the brute-force normal form: plain original states
/// (decision or absorbing), pair states (w, u) for Markov->Markov edges,
/// and a fresh pre-initial point when the initial state is timed.
constexpr std::uint64_t kStateTag = 1ull << 62;
constexpr std::uint64_t kInitTag = 1ull << 63;

std::uint64_t state_key(StateId s) { return kStateTag | s; }
std::uint64_t pair_state_key(StateId w, StateId u) {
  return (static_cast<std::uint64_t>(w) << 32) | u;
}

struct Closure {
  std::vector<StateId> markov_targets;  // sorted, deduplicated
  bool goal_exists = false;
  bool goal_universal = false;
};

}  // namespace

BruteTransform bruteforce_transform(const Imc& closed, const BitVector& goal) {
  if (goal.size() != closed.num_states()) {
    throw ModelError("bruteforce_transform: goal vector size mismatch");
  }
  const Imc& m = closed;
  const std::size_t n = m.num_states();

  // Urgency view of the closed model: any interactive transition preempts
  // Markov delays, so a state is a decision point iff it has interactive
  // transitions, a timed (Markov) state iff it only has Markov transitions.
  auto decision = [&](StateId s) { return m.has_interactive(s); };
  auto timed = [&](StateId s) { return !m.has_interactive(s) && m.has_markov(s); };

  // --- Zero-time closure of every decision state (memoized DFS) ----------
  enum class Color : std::uint8_t { White, Grey, Black };
  std::vector<Color> color(n, Color::White);
  std::vector<Closure> closure(n);

  auto fold_closure = [&](StateId v, auto&& self) -> void {
    if (color[v] == Color::Black) return;
    if (color[v] == Color::Grey) {
      throw ZenoError("bruteforce_transform: cycle of interactive transitions");
    }
    color[v] = Color::Grey;
    Closure& c = closure[v];
    c.goal_exists = goal[v];
    c.goal_universal = true;
    for (const LtsTransition& t : m.out_interactive(v)) {
      if (decision(t.to)) {
        self(t.to, self);
        const Closure& sub = closure[t.to];
        c.markov_targets.insert(c.markov_targets.end(), sub.markov_targets.begin(),
                                sub.markov_targets.end());
        c.goal_exists = c.goal_exists || sub.goal_exists;
        c.goal_universal = c.goal_universal && sub.goal_universal;
      } else if (timed(t.to)) {
        c.markov_targets.push_back(t.to);
        c.goal_exists = c.goal_exists || goal[t.to];
        c.goal_universal = c.goal_universal && goal[t.to];
      } else {
        throw ModelError("bruteforce_transform: zero-time deadlock");
      }
    }
    c.goal_universal = c.goal_universal || goal[v];
    std::sort(c.markov_targets.begin(), c.markov_targets.end());
    c.markov_targets.erase(std::unique(c.markov_targets.begin(), c.markov_targets.end()),
                           c.markov_targets.end());
    color[v] = Color::Black;
  };

  // --- Discover the reachable decision points ----------------------------
  // Point = CTMDP state of the normal form: a decision state, an absorbing
  // original state, a (w, u) pair for a Markov->Markov edge, or the fresh
  // pre-initial point.  Successor points of sojourning in timed state w are
  // read off w's rate row.
  std::unordered_map<std::uint64_t, StateId> point_id;
  std::vector<std::uint64_t> point_key;
  std::deque<std::uint64_t> worklist;
  auto intern = [&](std::uint64_t key) -> StateId {
    auto it = point_id.find(key);
    if (it != point_id.end()) return it->second;
    const StateId id = static_cast<StateId>(point_key.size());
    point_id.emplace(key, id);
    point_key.push_back(key);
    worklist.push_back(key);
    return id;
  };
  auto target_key = [&](StateId w, StateId u) -> std::uint64_t {
    // Successor u of timed state w, as a point key.
    return timed(u) ? pair_state_key(w, u) : state_key(u);
  };

  const StateId s0 = m.initial();
  std::uint64_t initial_key;
  if (decision(s0)) {
    initial_key = state_key(s0);
  } else if (timed(s0)) {
    initial_key = kInitTag;
  } else {
    throw ModelError("bruteforce_transform: initial state is absorbing");
  }
  intern(initial_key);

  // Expand: every point's choice rows reference further points.  Points are
  // interned in FIFO order and processed in that same order, so sojourns[p]
  // lines up with point id p.
  std::vector<std::vector<StateId>> sojourns;  // per point: timed states of its choices
  while (!worklist.empty()) {
    const std::uint64_t key = worklist.front();
    worklist.pop_front();
    std::vector<StateId> rows;
    if (key == kInitTag) {
      rows.push_back(s0);
    } else if (key & kStateTag) {
      const StateId v = static_cast<StateId>(key & ~kStateTag);
      if (decision(v)) {
        fold_closure(v, fold_closure);
        rows = closure[v].markov_targets;
      }  // absorbing original state: no choices
    } else {
      rows.push_back(static_cast<StateId>(key & 0xffffffffu));  // pair (w, u): sojourn in u
    }
    for (const StateId w : rows) {
      for (const MarkovTransition& t : m.out_markov(w)) intern(target_key(w, t.to));
    }
    sojourns.push_back(std::move(rows));
  }

  // --- Materialize the dense model ---------------------------------------
  BruteTransform result;
  DenseModel& d = result.model;
  d.num_states = point_key.size();
  d.initial = point_id.at(initial_key);
  d.choices.resize(d.num_states);
  result.goal_exists.assign(d.num_states, false);
  result.goal_universal.assign(d.num_states, false);

  bool have_rate = false;
  for (StateId p = 0; p < d.num_states; ++p) {
    const std::uint64_t key = point_key[p];
    // Goal transfer.
    if (key == kInitTag) {
      result.goal_exists[p] = goal[s0];
      result.goal_universal[p] = goal[s0];
    } else if (key & kStateTag) {
      const StateId v = static_cast<StateId>(key & ~kStateTag);
      if (decision(v)) {
        result.goal_exists[p] = closure[v].goal_exists;
        result.goal_universal[p] = closure[v].goal_universal;
      } else {
        result.goal_exists[p] = goal[v];
        result.goal_universal[p] = goal[v];
      }
    } else {
      const StateId u = static_cast<StateId>(key & 0xffffffffu);
      result.goal_exists[p] = goal[u];
      result.goal_universal[p] = goal[u];
    }
    // Choice rows.
    for (const StateId w : sojourns[p]) {
      double exit = 0.0;
      for (const MarkovTransition& t : m.out_markov(w)) exit += t.rate;
      if (!have_rate) {
        d.uniform_rate = exit;
        have_rate = true;
      }
      std::vector<double> row(d.num_states, 0.0);
      for (const MarkovTransition& t : m.out_markov(w)) {
        row[point_id.at(target_key(w, t.to))] += t.rate / exit;
      }
      d.choices[p].push_back(std::move(row));
    }
  }

  // Fingerprints for the structural comparison.
  for (StateId p = 0; p < d.num_states; ++p) {
    result.sorted_choice_counts.push_back(d.choices[p].size());
    for (const std::vector<double>& row : d.choices[p]) {
      std::size_t nonzero = 0;
      for (double x : row) nonzero += x != 0.0;
      result.sorted_entry_counts.push_back(nonzero);
    }
  }
  std::sort(result.sorted_choice_counts.begin(), result.sorted_choice_counts.end());
  std::sort(result.sorted_entry_counts.begin(), result.sorted_entry_counts.end());
  return result;
}

std::optional<std::string> check_transform(const Imc& closed, const BitVector& goal,
                                           const TransformResult& transformed) {
  const BruteTransform brute = bruteforce_transform(closed, goal);
  const Ctmdp& c = transformed.ctmdp;

  auto mismatch = [](const std::string& what, double expected, double actual) {
    return what + ": oracle " + std::to_string(expected) + " vs optimized " +
           std::to_string(actual);
  };

  if (brute.model.num_states != c.num_states()) {
    return mismatch("CTMDP state count", static_cast<double>(brute.model.num_states),
                    static_cast<double>(c.num_states()));
  }
  std::vector<std::size_t> choice_counts, entry_counts;
  for (StateId s = 0; s < c.num_states(); ++s) {
    choice_counts.push_back(c.num_transitions_of(s));
  }
  for (std::uint64_t t = 0; t < c.num_transitions(); ++t) {
    entry_counts.push_back(c.rates(t).size());
  }
  std::sort(choice_counts.begin(), choice_counts.end());
  std::sort(entry_counts.begin(), entry_counts.end());
  if (choice_counts != brute.sorted_choice_counts) {
    return std::optional<std::string>("per-state transition count multiset differs");
  }
  if (entry_counts != brute.sorted_entry_counts) {
    return std::optional<std::string>("per-transition entry count multiset differs");
  }

  const auto optimized_rate = c.uniform_rate(1e-6);
  if (!optimized_rate) return std::optional<std::string>("optimized CTMDP is not uniform");
  if (c.num_transitions() > 0 &&
      std::fabs(*optimized_rate - brute.model.uniform_rate) > 1e-9) {
    return mismatch("uniform rate", brute.model.uniform_rate, *optimized_rate);
  }

  auto count = [](const BitVector& mask) { return static_cast<double>(mask.count()); };
  if (count(transformed.goal) != count(brute.goal_exists)) {
    return mismatch("existential goal count", count(brute.goal_exists), count(transformed.goal));
  }
  if (count(transformed.goal_universal) != count(brute.goal_universal)) {
    return mismatch("universal goal count", count(brute.goal_universal),
                    count(transformed.goal_universal));
  }
  return std::nullopt;
}

UniformityAudit audit_uniformity(const Imc& m, UniformityView view, double tol) {
  // Own reachability sweep over both transition relations.
  BitVector reachable(m.num_states(), false);
  std::deque<StateId> queue{m.initial()};
  reachable[m.initial()] = true;
  while (!queue.empty()) {
    const StateId s = queue.front();
    queue.pop_front();
    for (const LtsTransition& t : m.out_interactive(s)) {
      if (!reachable[t.to]) {
        reachable[t.to] = true;
        queue.push_back(t.to);
      }
    }
    for (const MarkovTransition& t : m.out_markov(s)) {
      if (!reachable[t.to]) {
        reachable[t.to] = true;
        queue.push_back(t.to);
      }
    }
  }

  UniformityAudit audit;
  double sum = 0.0;
  std::size_t constrained = 0;
  std::vector<double> exit(m.num_states(), 0.0);
  std::vector<StateId> states;
  for (StateId s = 0; s < m.num_states(); ++s) {
    if (!reachable[s]) continue;
    bool is_constrained;
    if (view == UniformityView::Open) {
      bool tau = false;
      for (const LtsTransition& t : m.out_interactive(s)) tau = tau || t.action == kTau;
      is_constrained = !tau;
    } else {
      is_constrained = m.out_interactive(s).empty();
    }
    if (!is_constrained) continue;
    double e = 0.0;
    for (const MarkovTransition& t : m.out_markov(s)) e += t.rate;
    exit[s] = e;
    states.push_back(s);
    sum += e;
    ++constrained;
  }
  if (constrained == 0) {
    audit.uniform = true;
    return audit;
  }
  audit.rate = sum / static_cast<double>(constrained);
  for (const StateId s : states) {
    const double dev = std::fabs(exit[s] - audit.rate);
    if (dev > audit.max_deviation) {
      audit.max_deviation = dev;
      audit.worst_state = s;
    }
  }
  audit.uniform = audit.max_deviation <= tol;
  return audit;
}

Ctmc ctmc_from_deterministic_ctmdp(const Ctmdp& model) {
  CtmcBuilder b(model.num_states());
  b.ensure_states(model.num_states());
  b.set_initial(model.initial());
  for (StateId s = 0; s < model.num_states(); ++s) {
    const auto [first, last] = model.transition_range(s);
    if (last - first > 1) {
      throw ModelError("ctmc_from_deterministic_ctmdp: state has a choice");
    }
    if (first == last) continue;
    for (const SparseEntry& e : model.rates(first)) b.add_transition(s, e.value, e.col);
  }
  return b.build();
}

Ctmc induced_ctmc(const Ctmdp& model, const std::vector<std::uint64_t>& choice) {
  CtmcBuilder b(model.num_states());
  b.ensure_states(model.num_states());
  b.set_initial(model.initial());
  for (StateId s = 0; s < model.num_states(); ++s) {
    const auto [first, last] = model.transition_range(s);
    if (first == last) continue;
    const std::uint64_t tr = choice[s];
    if (tr < first || tr >= last) throw ModelError("induced_ctmc: bad choice");
    for (const SparseEntry& e : model.rates(tr)) b.add_transition(s, e.value, e.col);
  }
  return b.build();
}

}  // namespace unicon::testing
