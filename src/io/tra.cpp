#include "io/tra.hpp"

#include <algorithm>
#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>
#include <unordered_set>

#include "support/errors.hpp"

namespace unicon::io {

namespace {

/// Whitespace-delimited scanner that remembers the 1-based line each token
/// started on, so every ParseError below can point at the offending line.
class TokenReader {
 public:
  explicit TokenReader(std::istream& in) : in_(in) {}

  /// Extracts the next token; returns false at end of input.  Afterwards
  /// line() is the line the token started on (or, at EOF, the current line).
  bool next(std::string& token) {
    token.clear();
    int c = in_.get();
    while (c != std::char_traits<char>::eof() &&
           std::isspace(static_cast<unsigned char>(c)) != 0) {
      if (c == '\n') ++line_;
      c = in_.get();
    }
    token_line_ = line_;
    if (c == std::char_traits<char>::eof()) return false;
    while (c != std::char_traits<char>::eof() &&
           std::isspace(static_cast<unsigned char>(c)) == 0) {
      token.push_back(static_cast<char>(c));
      c = in_.get();
    }
    if (c == '\n') ++line_;
    return true;
  }

  /// Line of the most recent token (1-based).
  std::size_t line() const { return token_line_; }

 private:
  std::istream& in_;
  std::size_t line_ = 1;
  std::size_t token_line_ = 1;
};

std::string expect_token(TokenReader& r, const std::string& what) {
  std::string token;
  if (!r.next(token)) {
    throw ParseError("unexpected end of file, expected " + what, r.line());
  }
  return token;
}

void expect_keyword(TokenReader& r, const std::string& keyword) {
  const std::string token = expect_token(r, "'" + keyword + "'");
  if (token != keyword) {
    throw ParseError("expected '" + keyword + "', got '" + token + "'", r.line());
  }
}

std::uint64_t read_unsigned(TokenReader& r, const std::string& what) {
  const std::string token = expect_token(r, what);
  std::uint64_t value = 0;
  const auto [ptr, ec] = std::from_chars(token.data(), token.data() + token.size(), value);
  if (ec != std::errc{} || ptr != token.data() + token.size()) {
    throw ParseError("bad " + what + " '" + token + "'", r.line());
  }
  return value;
}

StateId read_state(TokenReader& r, std::size_t num_states, const std::string& what) {
  const std::uint64_t value = read_unsigned(r, what);
  if (value >= num_states) {
    throw ParseError(what + " " + std::to_string(value) + " out of range (file declares " +
                         std::to_string(num_states) + " states)",
                     r.line());
  }
  return static_cast<StateId>(value);
}

/// Reads a rate: must parse completely as a double, be finite (rejects the
/// textual nan/inf strtod accepts) and strictly positive.
double read_rate(TokenReader& r, const std::string& what) {
  const std::string token = expect_token(r, what);
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (token.empty() || end != token.c_str() + token.size()) {
    throw ParseError("bad " + what + " '" + token + "'", r.line());
  }
  if (!std::isfinite(value)) {
    throw ParseError(what + " '" + token + "' is not finite", r.line());
  }
  if (value <= 0.0) {
    throw ParseError(what + " must be positive, got '" + token + "'", r.line());
  }
  return value;
}

std::vector<Action> parse_word(const std::string& label, ActionTable& actions, std::size_t line) {
  std::vector<Action> word;
  std::string token;
  std::istringstream stream(label);
  while (std::getline(stream, token, '.')) {
    if (!token.empty()) word.push_back(actions.intern(token));
  }
  if (word.empty()) throw ParseError("empty transition label", line);
  return word;
}

std::uint64_t state_pair_key(StateId from, StateId to) {
  return (static_cast<std::uint64_t>(from) << 32) | to;
}

}  // namespace

void write_ctmc(std::ostream& out, const Ctmc& chain) {
  out << "STATES " << chain.num_states() << "\n";
  out << "TRANSITIONS " << chain.num_transitions() << "\n";
  out << "INITIAL " << chain.initial() << "\n";
  out << std::setprecision(17);
  for (StateId s = 0; s < chain.num_states(); ++s) {
    for (const SparseEntry& t : chain.out(s)) {
      out << s << ' ' << t.col << ' ' << t.value << "\n";
    }
  }
}

Ctmc read_ctmc(std::istream& in) {
  TokenReader r(in);
  expect_keyword(r, "STATES");
  const std::size_t states = read_unsigned(r, "state count");
  expect_keyword(r, "TRANSITIONS");
  const std::size_t transitions = read_unsigned(r, "transition count");
  expect_keyword(r, "INITIAL");
  const StateId initial = read_state(r, states, "initial state");

  CtmcBuilder b(states);
  b.ensure_states(states);
  b.set_initial(initial);
  std::unordered_set<std::uint64_t> seen;
  seen.reserve(transitions);
  for (std::size_t i = 0; i < transitions; ++i) {
    const StateId from = read_state(r, states, "source state");
    const StateId to = read_state(r, states, "target state");
    const double rate = read_rate(r, "rate");
    if (!seen.insert(state_pair_key(from, to)).second) {
      throw ParseError("duplicate transition " + std::to_string(from) + " -> " +
                           std::to_string(to),
                       r.line());
    }
    b.add_transition(from, rate, to);
  }
  return b.build();
}

void write_imc(std::ostream& out, const Imc& m) {
  out << "STATES " << m.num_states() << "\n";
  out << "INITIAL " << m.initial() << "\n";
  out << std::setprecision(17);
  for (const LtsTransition& t : m.interactive_transitions()) {
    out << "I " << t.from << ' ' << m.actions().name(t.action) << ' ' << t.to << "\n";
  }
  for (const MarkovTransition& t : m.markov_transitions()) {
    out << "M " << t.from << ' ' << t.rate << ' ' << t.to << "\n";
  }
  out << "END\n";
}

Imc read_imc(std::istream& in) {
  TokenReader r(in);
  expect_keyword(r, "STATES");
  const std::size_t states = read_unsigned(r, "state count");
  expect_keyword(r, "INITIAL");
  const StateId initial = read_state(r, states, "initial state");

  ImcBuilder b;
  b.ensure_states(states);
  b.set_initial(initial);
  std::string kind;
  while (r.next(kind)) {
    if (kind == "END") return b.build();
    if (kind == "I") {
      const StateId from = read_state(r, states, "source state");
      const std::string action = expect_token(r, "action name");
      const StateId to = read_state(r, states, "target state");
      b.add_interactive(from, action, to);
    } else if (kind == "M") {
      const StateId from = read_state(r, states, "source state");
      const double rate = read_rate(r, "rate");
      const StateId to = read_state(r, states, "target state");
      b.add_markov(from, rate, to);
    } else {
      throw ParseError("bad IMC line kind: " + kind, r.line());
    }
  }
  throw ParseError("IMC file missing END marker", r.line());
}

void write_ctmdp(std::ostream& out, const Ctmdp& model) {
  out << "STATES " << model.num_states() << "\n";
  out << "TRANSITIONS " << model.num_transitions() << "\n";
  out << "INITIAL " << model.initial() << "\n";
  out << std::setprecision(17);
  for (std::uint64_t t = 0; t < model.num_transitions(); ++t) {
    const auto rates = model.rates(t);
    out << model.source(t) << ' ' << model.words().str(model.label(t), model.actions()) << ' '
        << rates.size();
    for (const SparseEntry& e : rates) out << ' ' << e.col << ' ' << e.value;
    out << "\n";
  }
}

Ctmdp read_ctmdp(std::istream& in) {
  TokenReader r(in);
  expect_keyword(r, "STATES");
  const std::size_t states = read_unsigned(r, "state count");
  expect_keyword(r, "TRANSITIONS");
  const std::size_t transitions = read_unsigned(r, "transition count");
  expect_keyword(r, "INITIAL");
  const StateId initial = read_state(r, states, "initial state");

  CtmdpBuilder b;
  b.ensure_states(states);
  b.set_initial(initial);
  std::unordered_set<StateId> targets;
  for (std::size_t i = 0; i < transitions; ++i) {
    const StateId from = read_state(r, states, "source state");
    const std::string label = expect_token(r, "transition label");
    const std::size_t k = read_unsigned(r, "rate entry count");
    const std::vector<Action> word = parse_word(label, *b.action_table(), r.line());
    b.begin_transition(from, b.intern_word(word));
    targets.clear();
    for (std::size_t j = 0; j < k; ++j) {
      const StateId to = read_state(r, states, "target state");
      const double rate = read_rate(r, "rate");
      if (!targets.insert(to).second) {
        throw ParseError("duplicate rate entry for target " + std::to_string(to), r.line());
      }
      b.add_rate(to, rate);
    }
  }
  return b.build();
}

void write_labels(std::ostream& out, const LabelMasks& labels) {
  std::size_t num_states = 0;
  for (const auto& [name, mask] : labels) num_states = std::max(num_states, mask.size());
  for (std::size_t s = 0; s < num_states; ++s) {
    bool any = false;
    for (const auto& [name, mask] : labels) {
      if (s >= mask.size() || !mask[s]) continue;
      out << (any ? " " : std::to_string(s) + " ") << name;
      any = true;
    }
    if (any) out << "\n";
  }
}

LabelMasks read_labels(std::istream& in, std::size_t num_states) {
  LabelMasks labels;
  std::unordered_map<std::string, std::size_t> index;
  std::string line;
  for (std::size_t lineno = 1; std::getline(in, line); ++lineno) {
    std::istringstream fields(line);
    std::size_t s = 0;
    if (!(fields >> s)) {
      std::string probe;
      if (std::istringstream(line) >> probe) throw ParseError("bad label line: " + line, lineno);
      continue;  // blank line
    }
    if (s >= num_states) {
      throw ParseError("label state " + std::to_string(s) + " out of range (model has " +
                           std::to_string(num_states) + " states)",
                       lineno);
    }
    std::string prop;
    while (fields >> prop) {
      const auto [it, inserted] = index.emplace(prop, labels.size());
      if (inserted) labels.emplace_back(prop, std::vector<bool>(num_states, false));
      labels[it->second].second[s] = true;
    }
  }
  return labels;
}

void write_goal(std::ostream& out, const BitVector& goal) {
  write_labels(out, {{"goal", goal.to_vector_bool()}});
}

BitVector read_goal(std::istream& in, std::size_t num_states) {
  for (auto& [name, mask] : read_labels(in, num_states)) {
    if (name == "goal") return BitVector(mask);
  }
  return BitVector(num_states);
}

namespace {
std::ofstream open_out(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw ParseError("cannot open for writing: " + path);
  return out;
}
std::ifstream open_in(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open for reading: " + path);
  return in;
}
}  // namespace

void save_ctmc(const std::string& path, const Ctmc& chain) {
  auto out = open_out(path);
  write_ctmc(out, chain);
}
Ctmc load_ctmc(const std::string& path) {
  auto in = open_in(path);
  return read_ctmc(in);
}
void save_ctmdp(const std::string& path, const Ctmdp& model) {
  auto out = open_out(path);
  write_ctmdp(out, model);
}
Ctmdp load_ctmdp(const std::string& path) {
  auto in = open_in(path);
  return read_ctmdp(in);
}

}  // namespace unicon::io
