#include "io/tra.hpp"

#include <algorithm>
#include <fstream>
#include <iomanip>
#include <istream>
#include <ostream>
#include <sstream>
#include <unordered_map>

#include "support/errors.hpp"

namespace unicon::io {

namespace {

void expect_keyword(std::istream& in, const std::string& keyword) {
  std::string word;
  if (!(in >> word) || word != keyword) {
    throw ParseError("expected '" + keyword + "', got '" + word + "'");
  }
}

std::vector<Action> parse_word(const std::string& label, ActionTable& actions) {
  std::vector<Action> word;
  std::string token;
  std::istringstream stream(label);
  while (std::getline(stream, token, '.')) {
    if (!token.empty()) word.push_back(actions.intern(token));
  }
  if (word.empty()) throw ParseError("empty transition label");
  return word;
}

}  // namespace

void write_ctmc(std::ostream& out, const Ctmc& chain) {
  out << "STATES " << chain.num_states() << "\n";
  out << "TRANSITIONS " << chain.num_transitions() << "\n";
  out << "INITIAL " << chain.initial() << "\n";
  out << std::setprecision(17);
  for (StateId s = 0; s < chain.num_states(); ++s) {
    for (const SparseEntry& t : chain.out(s)) {
      out << s << ' ' << t.col << ' ' << t.value << "\n";
    }
  }
}

Ctmc read_ctmc(std::istream& in) {
  std::size_t states = 0, transitions = 0;
  StateId initial = 0;
  expect_keyword(in, "STATES");
  in >> states;
  expect_keyword(in, "TRANSITIONS");
  in >> transitions;
  expect_keyword(in, "INITIAL");
  in >> initial;
  if (!in) throw ParseError("bad CTMC header");

  CtmcBuilder b(states);
  b.ensure_states(states);
  b.set_initial(initial);
  for (std::size_t i = 0; i < transitions; ++i) {
    StateId from = 0, to = 0;
    double rate = 0.0;
    if (!(in >> from >> to >> rate)) throw ParseError("bad CTMC transition line");
    b.add_transition(from, rate, to);
  }
  return b.build();
}

void write_imc(std::ostream& out, const Imc& m) {
  out << "STATES " << m.num_states() << "\n";
  out << "INITIAL " << m.initial() << "\n";
  out << std::setprecision(17);
  for (const LtsTransition& t : m.interactive_transitions()) {
    out << "I " << t.from << ' ' << m.actions().name(t.action) << ' ' << t.to << "\n";
  }
  for (const MarkovTransition& t : m.markov_transitions()) {
    out << "M " << t.from << ' ' << t.rate << ' ' << t.to << "\n";
  }
  out << "END\n";
}

Imc read_imc(std::istream& in) {
  std::size_t states = 0;
  StateId initial = 0;
  expect_keyword(in, "STATES");
  in >> states;
  expect_keyword(in, "INITIAL");
  in >> initial;
  if (!in) throw ParseError("bad IMC header");

  ImcBuilder b;
  b.ensure_states(states);
  b.set_initial(initial);
  std::string kind;
  while (in >> kind) {
    if (kind == "END") return b.build();
    StateId from = 0, to = 0;
    if (kind == "I") {
      std::string action;
      if (!(in >> from >> action >> to)) throw ParseError("bad IMC interactive line");
      b.add_interactive(from, action, to);
    } else if (kind == "M") {
      double rate = 0.0;
      if (!(in >> from >> rate >> to)) throw ParseError("bad IMC Markov line");
      b.add_markov(from, rate, to);
    } else {
      throw ParseError("bad IMC line kind: " + kind);
    }
  }
  throw ParseError("IMC file missing END marker");
}

void write_ctmdp(std::ostream& out, const Ctmdp& model) {
  out << "STATES " << model.num_states() << "\n";
  out << "TRANSITIONS " << model.num_transitions() << "\n";
  out << "INITIAL " << model.initial() << "\n";
  out << std::setprecision(17);
  for (std::uint64_t t = 0; t < model.num_transitions(); ++t) {
    const auto rates = model.rates(t);
    out << model.source(t) << ' ' << model.words().str(model.label(t), model.actions()) << ' '
        << rates.size();
    for (const SparseEntry& e : rates) out << ' ' << e.col << ' ' << e.value;
    out << "\n";
  }
}

Ctmdp read_ctmdp(std::istream& in) {
  std::size_t states = 0, transitions = 0;
  StateId initial = 0;
  expect_keyword(in, "STATES");
  in >> states;
  expect_keyword(in, "TRANSITIONS");
  in >> transitions;
  expect_keyword(in, "INITIAL");
  in >> initial;
  if (!in) throw ParseError("bad CTMDP header");

  CtmdpBuilder b;
  b.ensure_states(states);
  b.set_initial(initial);
  for (std::size_t i = 0; i < transitions; ++i) {
    StateId from = 0;
    std::string label;
    std::size_t k = 0;
    if (!(in >> from >> label >> k)) throw ParseError("bad CTMDP transition line");
    const std::vector<Action> word = parse_word(label, *b.action_table());
    b.begin_transition(from, b.intern_word(word));
    for (std::size_t j = 0; j < k; ++j) {
      StateId to = 0;
      double rate = 0.0;
      if (!(in >> to >> rate)) throw ParseError("bad CTMDP rate entry");
      b.add_rate(to, rate);
    }
  }
  return b.build();
}

void write_labels(std::ostream& out, const LabelMasks& labels) {
  std::size_t num_states = 0;
  for (const auto& [name, mask] : labels) num_states = std::max(num_states, mask.size());
  for (std::size_t s = 0; s < num_states; ++s) {
    bool any = false;
    for (const auto& [name, mask] : labels) {
      if (s >= mask.size() || !mask[s]) continue;
      out << (any ? " " : std::to_string(s) + " ") << name;
      any = true;
    }
    if (any) out << "\n";
  }
}

LabelMasks read_labels(std::istream& in, std::size_t num_states) {
  LabelMasks labels;
  std::unordered_map<std::string, std::size_t> index;
  std::string line;
  while (std::getline(in, line)) {
    std::istringstream fields(line);
    std::size_t s = 0;
    if (!(fields >> s)) {
      std::string probe;
      if (std::istringstream(line) >> probe) throw ParseError("bad label line: " + line);
      continue;  // blank line
    }
    if (s >= num_states) throw ParseError("label state out of range: " + std::to_string(s));
    std::string prop;
    while (fields >> prop) {
      const auto [it, inserted] = index.emplace(prop, labels.size());
      if (inserted) labels.emplace_back(prop, std::vector<bool>(num_states, false));
      labels[it->second].second[s] = true;
    }
  }
  return labels;
}

void write_goal(std::ostream& out, const std::vector<bool>& goal) {
  write_labels(out, {{"goal", goal}});
}

std::vector<bool> read_goal(std::istream& in, std::size_t num_states) {
  for (auto& [name, mask] : read_labels(in, num_states)) {
    if (name == "goal") return std::move(mask);
  }
  return std::vector<bool>(num_states, false);
}

namespace {
std::ofstream open_out(const std::string& path) {
  std::ofstream out(path);
  if (!out) throw ParseError("cannot open for writing: " + path);
  return out;
}
std::ifstream open_in(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw ParseError("cannot open for reading: " + path);
  return in;
}
}  // namespace

void save_ctmc(const std::string& path, const Ctmc& chain) {
  auto out = open_out(path);
  write_ctmc(out, chain);
}
Ctmc load_ctmc(const std::string& path) {
  auto in = open_in(path);
  return read_ctmc(in);
}
void save_ctmdp(const std::string& path, const Ctmdp& model) {
  auto out = open_out(path);
  write_ctmdp(out, model);
}
Ctmdp load_ctmdp(const std::string& path) {
  auto in = open_in(path);
  return read_ctmdp(in);
}

}  // namespace unicon::io
