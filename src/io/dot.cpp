#include "io/dot.hpp"

#include <ostream>

namespace unicon::io {

namespace {
std::string node_label(const Imc& m, StateId s) {
  const std::string& name = m.state_name(s);
  return name.empty() ? std::to_string(s) : name;
}
}  // namespace

void write_dot(std::ostream& out, const Imc& m) {
  out << "digraph imc {\n  rankdir=LR;\n";
  out << "  init [shape=point];\n  init -> s" << m.initial() << ";\n";
  for (StateId s = 0; s < m.num_states(); ++s) {
    out << "  s" << s << " [label=\"" << node_label(m, s) << "\"];\n";
  }
  for (const LtsTransition& t : m.interactive_transitions()) {
    out << "  s" << t.from << " -> s" << t.to << " [label=\"" << m.actions().name(t.action)
        << "\"];\n";
  }
  for (const MarkovTransition& t : m.markov_transitions()) {
    out << "  s" << t.from << " -> s" << t.to << " [style=dashed,label=\"" << t.rate << "\"];\n";
  }
  out << "}\n";
}

void write_dot(std::ostream& out, const Ctmdp& model) {
  out << "digraph ctmdp {\n  rankdir=LR;\n";
  out << "  init [shape=point];\n  init -> s" << model.initial() << ";\n";
  for (StateId s = 0; s < model.num_states(); ++s) {
    out << "  s" << s << " [label=\"" << s << "\"];\n";
  }
  for (std::uint64_t t = 0; t < model.num_transitions(); ++t) {
    out << "  t" << t << " [shape=box,label=\""
        << model.words().str(model.label(t), model.actions()) << "\"];\n";
    out << "  s" << model.source(t) << " -> t" << t << ";\n";
    for (const SparseEntry& e : model.rates(t)) {
      out << "  t" << t << " -> s" << e.col << " [style=dashed,label=\"" << e.value << "\"];\n";
    }
  }
  out << "}\n";
}

}  // namespace unicon::io
