// On-disk scheduler artifacts (schema "unicon-scheduler-v1").
//
// Algorithm 1's optimal scheduler is a step-dependent decision table: at
// countdown step i every state names the transition to take.  This module
// makes that a first-class, exchangeable artifact: a single JSON object
// carrying the full table plus enough solve metadata (objective, horizon,
// epsilon, uniform rate) to re-evaluate it independently.  The round trip
// is exact — evaluate_countdown_scheduler on a re-read artifact reproduces
// the optimal value of the originating serial solve bit-identically, which
// is what the scheduler tests assert.
//
// Schema (one JSON object, field order fixed):
//   schema            "unicon-scheduler-v1"
//   objective         "max" | "min"
//   time              horizon t of the solve
//   epsilon           truncation precision of the solve
//   uniform_rate      E
//   lambda            E * t
//   states            number of states n
//   steps             decision rows k (= Poisson right truncation point)
//   value             optimal value at the model's initial state
//   initial_decision  n entries, transition index or -1 (no transition:
//                     goal, avoided or transitionless state)
//   decisions         k rows of n entries each; row j = countdown step j+1
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ctmdp/reachability.hpp"
#include "ctmdp/scheduler.hpp"

namespace unicon::io {

struct SchedulerArtifact {
  Objective objective = Objective::Maximize;
  double time = 0.0;
  double epsilon = 0.0;
  double uniform_rate = 0.0;
  double lambda = 0.0;
  std::uint64_t states = 0;
  std::uint64_t steps = 0;
  /// Optimal value at the initial state of the originating solve.
  double value = 0.0;
  std::vector<std::uint64_t> initial_decision;
  std::vector<std::vector<std::uint64_t>> decisions;

  /// The decision table as an evaluable scheduler object.
  CountdownScheduler scheduler() const { return CountdownScheduler(decisions); }
};

/// Packages a solve result (extract_scheduler must have recorded the full
/// decision table) as an artifact.  @p value is the optimal value at the
/// initial state; throws ModelError when the result has no decision table.
SchedulerArtifact scheduler_artifact_from_result(const TimedReachabilityResult& result,
                                                 Objective objective, double time,
                                                 double epsilon, double value);

/// Single-line JSON serialization (with trailing newline), deterministic
/// byte-for-byte: insertion-ordered fields, kNoTransition encoded as -1.
std::string scheduler_to_json(const SchedulerArtifact& artifact);

/// Strict parse + validation (schema string, row shape, entry ranges).
/// Throws ParseError on malformed input or a schema mismatch.
SchedulerArtifact scheduler_from_json(const std::string& text);

}  // namespace unicon::io
