// Graphviz DOT export for small models (documentation and debugging).
#pragma once

#include <iosfwd>

#include "ctmdp/ctmdp.hpp"
#include "imc/imc.hpp"

namespace unicon::io {

/// Writes @p m as a DOT digraph: solid edges for interactive transitions
/// (labelled with the action), dashed edges for Markov transitions
/// (labelled with the rate).
void write_dot(std::ostream& out, const Imc& m);

/// Writes @p model as a DOT digraph with one intermediate box node per
/// transition (the rate function), mirroring the hyperedge reading of
/// CTMDP transitions.
void write_dot(std::ostream& out, const Ctmdp& model);

}  // namespace unicon::io
