#include "io/scheduler_json.hpp"

#include <cmath>

#include "support/errors.hpp"
#include "support/json.hpp"

namespace unicon::io {

namespace {

Json encode_decision(std::uint64_t tr) {
  if (tr == kNoTransition) return Json(-1);
  return Json(tr);
}

JsonArray encode_row(const std::vector<std::uint64_t>& row) {
  JsonArray out;
  out.reserve(row.size());
  for (const std::uint64_t tr : row) out.push_back(encode_decision(tr));
  return out;
}

std::uint64_t decode_decision(const Json& v, const char* what) {
  if (!v.is_number()) throw ParseError(std::string(what) + ": decision entry is not a number");
  const double d = v.as_number();
  if (d == -1.0) return kNoTransition;
  if (d < 0.0 || d != std::floor(d) || d >= 9007199254740992.0) {
    throw ParseError(std::string(what) + ": decision entry is not -1 or a transition index");
  }
  return static_cast<std::uint64_t>(d);
}

std::vector<std::uint64_t> decode_row(const Json& v, std::uint64_t states, const char* what) {
  if (!v.is_array()) throw ParseError(std::string(what) + ": decision row is not an array");
  const JsonArray& arr = v.as_array();
  if (arr.size() != states) {
    throw ParseError(std::string(what) + ": decision row has " + std::to_string(arr.size()) +
                     " entries, expected " + std::to_string(states));
  }
  std::vector<std::uint64_t> out;
  out.reserve(arr.size());
  for (const Json& e : arr) out.push_back(decode_decision(e, what));
  return out;
}

const Json& require(const Json& root, const std::string& key) {
  const Json* v = root.find(key);
  if (v == nullptr) throw ParseError("scheduler artifact: missing field \"" + key + "\"");
  return *v;
}

}  // namespace

SchedulerArtifact scheduler_artifact_from_result(const TimedReachabilityResult& result,
                                                 Objective objective, double time,
                                                 double epsilon, double value) {
  if (result.decisions.empty()) {
    throw ModelError(
        "scheduler artifact: result has no decision table (enable extract_scheduler and check "
        "max_decision_entries)");
  }
  SchedulerArtifact artifact;
  artifact.objective = objective;
  artifact.time = time;
  artifact.epsilon = epsilon;
  artifact.uniform_rate = result.uniform_rate;
  artifact.lambda = result.lambda;
  artifact.states = result.decisions.front().size();
  artifact.steps = result.decisions.size();
  artifact.value = value;
  artifact.initial_decision = result.initial_decision;
  artifact.decisions = result.decisions;
  return artifact;
}

std::string scheduler_to_json(const SchedulerArtifact& artifact) {
  Json root;
  root.set("schema", "unicon-scheduler-v1");
  root.set("objective", artifact.objective == Objective::Maximize ? "max" : "min");
  root.set("time", artifact.time);
  root.set("epsilon", artifact.epsilon);
  root.set("uniform_rate", artifact.uniform_rate);
  root.set("lambda", artifact.lambda);
  root.set("states", artifact.states);
  root.set("steps", artifact.steps);
  root.set("value", artifact.value);
  root.set("initial_decision", Json(encode_row(artifact.initial_decision)));
  JsonArray rows;
  rows.reserve(artifact.decisions.size());
  for (const auto& row : artifact.decisions) rows.push_back(Json(encode_row(row)));
  root.set("decisions", Json(std::move(rows)));
  return root.dump() + "\n";
}

SchedulerArtifact scheduler_from_json(const std::string& text) {
  const Json root = Json::parse(text);
  if (!root.is_object()) throw ParseError("scheduler artifact: top level is not an object");
  const std::string schema = root.get_string("schema", "");
  if (schema != "unicon-scheduler-v1") {
    throw ParseError("scheduler artifact: unsupported schema \"" + schema + "\"");
  }
  SchedulerArtifact artifact;
  const std::string objective = require(root, "objective").as_string();
  if (objective == "max") {
    artifact.objective = Objective::Maximize;
  } else if (objective == "min") {
    artifact.objective = Objective::Minimize;
  } else {
    throw ParseError("scheduler artifact: objective must be \"max\" or \"min\"");
  }
  artifact.time = require(root, "time").as_number();
  artifact.epsilon = require(root, "epsilon").as_number();
  artifact.uniform_rate = require(root, "uniform_rate").as_number();
  artifact.lambda = require(root, "lambda").as_number();
  artifact.states = static_cast<std::uint64_t>(require(root, "states").as_number());
  artifact.steps = static_cast<std::uint64_t>(require(root, "steps").as_number());
  artifact.value = require(root, "value").as_number();
  artifact.initial_decision =
      decode_row(require(root, "initial_decision"), artifact.states, "initial_decision");
  const Json& rows = require(root, "decisions");
  if (!rows.is_array()) throw ParseError("scheduler artifact: decisions is not an array");
  if (rows.as_array().size() != artifact.steps) {
    throw ParseError("scheduler artifact: decisions has " +
                     std::to_string(rows.as_array().size()) + " rows, expected " +
                     std::to_string(artifact.steps));
  }
  artifact.decisions.reserve(artifact.steps);
  for (const Json& row : rows.as_array()) {
    artifact.decisions.push_back(decode_row(row, artifact.states, "decisions"));
  }
  return artifact;
}

}  // namespace unicon::io
