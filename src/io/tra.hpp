// Plain-text model exchange formats, in the spirit of the .tra/.lab files
// used by ETMCC/MRMC (the tools the paper's implementation plugged into).
//
// CTMC  (.tra):    header "STATES n" / "TRANSITIONS m" / "INITIAL s",
//                  then one "from to rate" line per transition.
// CTMDP (.ctmdp):  header as above plus a transition block per line:
//                  "from label k  to1 rate1 ... tok ratek"
//                  where label is the '.'-separated action word.
// Labels (.lab):   one "s prop1 prop2 ..." line per labeled state; arbitrary
//                  named atomic propositions (the analysis CLI's goal mask is
//                  the proposition "goal").
#pragma once

#include <iosfwd>
#include <string>
#include <utility>
#include <vector>

#include "ctmc/ctmc.hpp"
#include "support/bit_vector.hpp"
#include "ctmdp/ctmdp.hpp"
#include "imc/imc.hpp"

namespace unicon::io {

void write_ctmc(std::ostream& out, const Ctmc& chain);
Ctmc read_ctmc(std::istream& in);

// IMC (.imc): header "STATES n" / "INITIAL s", then one line per
// transition: "I from action to" (interactive) or "M from rate to"
// (Markov), terminated by "END".  Action names must not contain spaces.
void write_imc(std::ostream& out, const Imc& m);
Imc read_imc(std::istream& in);

void write_ctmdp(std::ostream& out, const Ctmdp& model);
Ctmdp read_ctmdp(std::istream& in);

/// Named atomic propositions as (name, per-state mask) pairs; the order is
/// the declaration / first-seen order.  All masks share one state count.
using LabelMasks = std::vector<std::pair<std::string, std::vector<bool>>>;

/// Writes one "s prop1 prop2 ..." line per state carrying at least one
/// proposition.  Proposition names must be whitespace-free.
void write_labels(std::ostream& out, const LabelMasks& labels);

/// Reads a .lab file; every proposition name encountered gets a mask.
/// Throws ParseError on malformed lines or out-of-range states.
LabelMasks read_labels(std::istream& in, std::size_t num_states);

/// Thin wrappers for the single proposition "goal" (the CLI's default):
/// write_goal emits only the goal mask, read_goal extracts it (all-false
/// when the file does not mention "goal").
void write_goal(std::ostream& out, const BitVector& goal);
BitVector read_goal(std::istream& in, std::size_t num_states);

// File-path convenience wrappers (throw ParseError / ModelError).
void save_ctmc(const std::string& path, const Ctmc& chain);
Ctmc load_ctmc(const std::string& path);
void save_ctmdp(const std::string& path, const Ctmdp& model);
Ctmdp load_ctmdp(const std::string& path);

}  // namespace unicon::io
