#include "ctmdp/simulate.hpp"

#include <cmath>
#include <optional>
#include <string>

#include "support/errors.hpp"
#include "support/parallel.hpp"
#include "support/telemetry.hpp"

namespace unicon {

namespace {

/// One trajectory under the stationary scheduler; true iff the goal set is
/// reached within the time bound.
bool simulate_run(const Ctmdp& model, const BitVector& goal, double t,
                  const std::vector<std::uint64_t>& choice, std::uint64_t max_jumps, Rng& rng,
                  std::vector<double>& weights) {
  StateId s = model.initial();
  double clock = 0.0;
  for (std::uint64_t jump = 0; jump < max_jumps; ++jump) {
    if (goal[s]) return true;
    const auto [first, last] = model.transition_range(s);
    if (first == last) return false;  // absorbing non-goal state
    const std::uint64_t tr = choice[s];
    if (tr < first || tr >= last) {
      throw ModelError("simulate_reachability: scheduler choice out of range");
    }
    clock += rng.next_exponential(model.exit_rate(tr));
    if (clock > t) return false;
    const auto rates = model.rates(tr);
    weights.resize(rates.size());
    for (std::size_t j = 0; j < rates.size(); ++j) weights[j] = rates[j].value;
    s = rates[rng.next_discrete(weights)].col;
  }
  return false;
}

}  // namespace

SimulationResult simulate_reachability(const Ctmdp& model, const BitVector& goal,
                                       double t, const std::vector<std::uint64_t>& choice,
                                       const SimulationOptions& options) {
  if (goal.size() != model.num_states()) {
    throw ModelError("simulate_reachability: goal vector size mismatch");
  }
  if (choice.size() != model.num_states()) {
    throw ModelError("simulate_reachability: choice vector size mismatch");
  }

  // Each run is an independent replication with its own derived-seed
  // generator, so the hit count — and hence the estimate — does not depend
  // on how runs are partitioned across workers.
  RunGuard* const guard = options.guard;
  std::optional<Telemetry::Span> span;
  if (options.telemetry != nullptr) span.emplace(options.telemetry->span("simulate"));
  WorkerPool pool = make_worker_pool(options.threads, options.num_runs);
  std::vector<Counter*> run_counters;
  if (options.telemetry != nullptr) {
    run_counters.reserve(pool.size());
    for (unsigned w = 0; w < pool.size(); ++w) {
      run_counters.push_back(
          &options.telemetry->counter("simulate.runs.worker" + std::to_string(w)));
    }
  }
  Counter* const* const runs_out = run_counters.empty() ? nullptr : run_counters.data();
  std::vector<std::uint64_t> worker_hits(pool.size(), 0);
  std::vector<std::uint64_t> worker_completed(pool.size(), 0);
  pool.run(options.num_runs, [&](unsigned worker, std::size_t begin, std::size_t end) {
    std::uint64_t hits = 0;
    std::uint64_t completed = 0;
    std::vector<double> weights;
    for (std::size_t run = begin; run < end; ++run) {
      if (guard != nullptr && guard->should_abort_sweep()) break;
      Rng rng(derive_seed(options.seed, run));
      if (simulate_run(model, goal, t, choice, options.max_jumps, rng, weights)) ++hits;
      ++completed;
    }
    worker_hits[worker] = hits;
    worker_completed[worker] = completed;
    if (runs_out != nullptr) runs_out[worker]->add(completed);
  });

  std::uint64_t hits = 0;
  std::uint64_t completed = 0;
  for (const std::uint64_t h : worker_hits) hits += h;
  for (const std::uint64_t c : worker_completed) completed += c;

  SimulationResult result;
  result.num_runs = completed;
  if (guard != nullptr) result.status = guard->status();
  if (completed != 0) {
    result.estimate = static_cast<double>(hits) / static_cast<double>(completed);
    const double p = result.estimate;
    result.half_width = 1.96 * std::sqrt(p * (1.0 - p) / static_cast<double>(completed));
  } else {
    result.estimate = 0.0;
    result.half_width = 1.0;  // no information
  }
  if (span) {
    span->metric("runs_requested", options.num_runs);
    span->metric("runs_completed", completed);
    span->metric("runs_hit", hits);
    span->metric("threads", pool.size());
    span->metric("estimate", result.estimate);
    span->metric("half_width", result.half_width);
  }
  return result;
}

}  // namespace unicon
