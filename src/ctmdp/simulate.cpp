#include "ctmdp/simulate.hpp"

#include <cmath>

#include "support/errors.hpp"

namespace unicon {

SimulationResult simulate_reachability(const Ctmdp& model, const std::vector<bool>& goal,
                                       double t, const std::vector<std::uint64_t>& choice,
                                       const SimulationOptions& options) {
  if (goal.size() != model.num_states()) {
    throw ModelError("simulate_reachability: goal vector size mismatch");
  }
  if (choice.size() != model.num_states()) {
    throw ModelError("simulate_reachability: choice vector size mismatch");
  }

  Rng rng(options.seed);
  std::uint64_t hits = 0;
  std::vector<double> weights;

  for (std::uint64_t run = 0; run < options.num_runs; ++run) {
    StateId s = model.initial();
    double clock = 0.0;
    for (std::uint64_t jump = 0; jump < options.max_jumps; ++jump) {
      if (goal[s]) {
        ++hits;
        break;
      }
      const auto [first, last] = model.transition_range(s);
      if (first == last) break;  // absorbing non-goal state
      const std::uint64_t tr = choice[s];
      if (tr < first || tr >= last) {
        throw ModelError("simulate_reachability: scheduler choice out of range");
      }
      clock += rng.next_exponential(model.exit_rate(tr));
      if (clock > t) break;
      const auto rates = model.rates(tr);
      weights.resize(rates.size());
      for (std::size_t j = 0; j < rates.size(); ++j) weights[j] = rates[j].value;
      s = rates[rng.next_discrete(weights)].col;
    }
  }

  SimulationResult result;
  result.num_runs = options.num_runs;
  result.estimate = static_cast<double>(hits) / static_cast<double>(options.num_runs);
  const double p = result.estimate;
  result.half_width =
      1.96 * std::sqrt(p * (1.0 - p) / static_cast<double>(options.num_runs));
  return result;
}

}  // namespace unicon
