#include "ctmdp/simulate.hpp"

#include <cmath>

#include "support/errors.hpp"
#include "support/parallel.hpp"

namespace unicon {

namespace {

/// One trajectory under the stationary scheduler; true iff the goal set is
/// reached within the time bound.
bool simulate_run(const Ctmdp& model, const std::vector<bool>& goal, double t,
                  const std::vector<std::uint64_t>& choice, std::uint64_t max_jumps, Rng& rng,
                  std::vector<double>& weights) {
  StateId s = model.initial();
  double clock = 0.0;
  for (std::uint64_t jump = 0; jump < max_jumps; ++jump) {
    if (goal[s]) return true;
    const auto [first, last] = model.transition_range(s);
    if (first == last) return false;  // absorbing non-goal state
    const std::uint64_t tr = choice[s];
    if (tr < first || tr >= last) {
      throw ModelError("simulate_reachability: scheduler choice out of range");
    }
    clock += rng.next_exponential(model.exit_rate(tr));
    if (clock > t) return false;
    const auto rates = model.rates(tr);
    weights.resize(rates.size());
    for (std::size_t j = 0; j < rates.size(); ++j) weights[j] = rates[j].value;
    s = rates[rng.next_discrete(weights)].col;
  }
  return false;
}

}  // namespace

SimulationResult simulate_reachability(const Ctmdp& model, const std::vector<bool>& goal,
                                       double t, const std::vector<std::uint64_t>& choice,
                                       const SimulationOptions& options) {
  if (goal.size() != model.num_states()) {
    throw ModelError("simulate_reachability: goal vector size mismatch");
  }
  if (choice.size() != model.num_states()) {
    throw ModelError("simulate_reachability: choice vector size mismatch");
  }

  // Each run is an independent replication with its own derived-seed
  // generator, so the hit count — and hence the estimate — does not depend
  // on how runs are partitioned across workers.
  WorkerPool pool = make_worker_pool(options.threads, options.num_runs);
  std::vector<std::uint64_t> worker_hits(pool.size(), 0);
  std::vector<std::exception_ptr> errors(pool.size());
  pool.run(options.num_runs, [&](unsigned worker, std::size_t begin, std::size_t end) {
    try {
      std::uint64_t hits = 0;
      std::vector<double> weights;
      for (std::size_t run = begin; run < end; ++run) {
        Rng rng(derive_seed(options.seed, run));
        if (simulate_run(model, goal, t, choice, options.max_jumps, rng, weights)) ++hits;
      }
      worker_hits[worker] = hits;
    } catch (...) {
      errors[worker] = std::current_exception();
    }
  });
  for (const std::exception_ptr& error : errors) {
    if (error) std::rethrow_exception(error);
  }

  std::uint64_t hits = 0;
  for (const std::uint64_t h : worker_hits) hits += h;

  SimulationResult result;
  result.num_runs = options.num_runs;
  result.estimate = static_cast<double>(hits) / static_cast<double>(options.num_runs);
  const double p = result.estimate;
  result.half_width =
      1.96 * std::sqrt(p * (1.0 - p) / static_cast<double>(options.num_runs));
  return result;
}

}  // namespace unicon
