#include "ctmdp/backend.hpp"

#include <cmath>
#include <string>

#include "support/errors.hpp"

namespace unicon {

DiscreteKernel::DiscreteKernel(const Ctmdp& model, const BitVector& goal) {
  const std::size_t n = model.num_states();
  const std::size_t m = model.num_transitions();
  state_first.resize(n + 1);
  entry_first.resize(m + 1);
  prob.reserve(model.num_rate_entries());
  col.reserve(model.num_rate_entries());
  goal_pr.assign(m, 0.0);
  state_first[0] = 0;
  for (StateId s = 0; s < n; ++s) state_first[s + 1] = model.transition_range(s).second;
  for (std::uint64_t t = 0; t < m; ++t) {
    entry_first[t] = prob.size();
    const double e = model.exit_rate(t);
    if (!std::isfinite(e) || e <= 0.0) {
      throw NumericError("DiscreteKernel: non-finite or non-positive exit rate on transition " +
                         std::to_string(t));
    }
    double g = 0.0;
    for (const SparseEntry& entry : model.rates(t)) {
      const double p = entry.value / e;
      if (!std::isfinite(p) || p < 0.0) {
        throw NumericError("DiscreteKernel: non-finite branching probability on transition " +
                           std::to_string(t));
      }
      prob.push_back(p);
      col.push_back(entry.col);
      if (goal[entry.col]) g += p;
    }
    goal_pr[t] = g;
  }
  entry_first[m] = prob.size();
}

DenseKernel::DenseKernel(const Ctmdp& model, const BitVector& goal, const BitVector& avoid) {
  const std::size_t n = model.num_states();
  if (n >= kNotDense) {
    throw ModelError("DenseKernel: state space too large for 32-bit dense columns");
  }
  const auto avoided = [&](StateId s) { return !avoid.empty() && avoid[s] && !goal[s]; };

  dense_index.assign(n, kNotDense);
  for (StateId s = 0; s < n; ++s) {
    if (goal[s] || avoided(s)) continue;
    dense_index[s] = static_cast<std::uint32_t>(dense_state.size());
    dense_state.push_back(static_cast<std::uint32_t>(s));
  }

  row_first.reserve(dense_state.size() + 1);
  row_first.push_back(0);
  orig_trans_first.reserve(dense_state.size());
  for (const std::uint32_t s : dense_state) {
    const auto [first, last] = model.transition_range(s);
    orig_trans_first.push_back(first);
    for (std::uint64_t t = first; t < last; ++t) {
      entry_first.push_back(prob.size());
      const double e = model.exit_rate(t);
      if (!std::isfinite(e) || e <= 0.0) {
        throw NumericError("DenseKernel: non-finite or non-positive exit rate on transition " +
                           std::to_string(t));
      }
      double g = 0.0;
      for (const SparseEntry& entry : model.rates(t)) {
        const double p = entry.value / e;
        if (!std::isfinite(p) || p < 0.0) {
          throw NumericError("DenseKernel: non-finite branching probability on transition " +
                             std::to_string(t));
        }
        if (goal[entry.col]) {
          g += p;
        } else if (avoided(entry.col)) {
          // Avoided states hold exactly +0.0 in every iterate; dropping the
          // entry is bit-equal to multiplying by it.
        } else {
          prob.push_back(p);
          col.push_back(dense_index[entry.col]);
        }
      }
      goal_pr.push_back(g);
    }
    row_first.push_back(goal_pr.size());
  }
  entry_first.push_back(prob.size());
}

}  // namespace unicon
