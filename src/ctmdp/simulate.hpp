// Discrete-event simulation of CTMDPs under a fixed stationary scheduler.
//
// Used to cross-validate the analytic solvers: the empirical frequency of
// reaching the goal set within the time bound must agree with
// evaluate_scheduler() up to Monte-Carlo error.  The semantics simulated
// follows Sec. 2 of the paper: the scheduler picks a transition (s, a, R),
// the sojourn in s is Exp(E_R) distributed, and the successor is drawn with
// probability R(s') / E_R.
#pragma once

#include <cstdint>
#include <vector>

#include "ctmdp/ctmdp.hpp"
#include "support/bit_vector.hpp"
#include "support/rng.hpp"
#include "support/run_guard.hpp"

namespace unicon {

class Telemetry;

struct SimulationOptions {
  std::uint64_t num_runs = 10000;
  std::uint64_t seed = 42;
  /// Safety cap on jumps per run (guards against pathological models).
  std::uint64_t max_jumps = 1u << 22;
  /// Worker threads for the run loop.  0 picks hardware_concurrency, 1 is
  /// the serial path.  Every run r draws from its own generator seeded with
  /// derive_seed(seed, r), so the estimate is a pure function of (seed,
  /// num_runs) — bit-identical for every thread count.
  unsigned threads = 1;
  /// Optional execution control, checked between runs.  On a stop the
  /// estimate is computed over the runs actually completed (still an
  /// unbiased Monte-Carlo estimate — each run is an independent
  /// replication); num_runs and status report the truncation.
  RunGuard* guard = nullptr;
  /// Optional observability: a "simulate" span with runs requested /
  /// completed / hit, plus per-worker run counters
  /// ("simulate.runs.worker<i>") batched once per run loop.
  Telemetry* telemetry = nullptr;
};

struct SimulationResult {
  /// Fraction of runs that reached the goal set within the bound.
  double estimate = 0.0;
  /// 95% confidence half-width (normal approximation); 1 when no run
  /// completed before a guard stop.
  double half_width = 0.0;
  /// Runs actually completed (== requested unless a guard stopped early).
  std::uint64_t num_runs = 0;
  /// Converged, or the RunGuard budget that truncated the run loop.
  RunStatus status = RunStatus::Converged;
};

/// Estimates Pr(reach goal within t) from the initial state under the
/// stationary scheduler @p choice (transition index per state; must be
/// valid for every reachable non-goal state with transitions).
SimulationResult simulate_reachability(const Ctmdp& model, const BitVector& goal,
                                       double t, const std::vector<std::uint64_t>& choice,
                                       const SimulationOptions& options = {});

}  // namespace unicon
