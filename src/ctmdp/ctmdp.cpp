#include "ctmdp/ctmdp.hpp"

#include <algorithm>
#include <cmath>

#include "ctmc/ctmc.hpp"
#include "support/errors.hpp"

namespace unicon {

Ctmdp ctmdp_from_ctmc(const Ctmc& chain) {
  CtmdpBuilder b;
  b.ensure_states(chain.num_states());
  b.set_initial(chain.initial());
  const WordId tau_word = b.word_table()->intern_single(kTau);
  for (StateId s = 0; s < chain.num_states(); ++s) {
    const auto row = chain.out(s);
    if (row.empty()) continue;
    b.begin_transition(s, tau_word);
    for (const SparseEntry& e : row) b.add_rate(e.col, e.value);
  }
  return b.build();
}

std::optional<double> Ctmdp::uniform_rate(double tol) const {
  if (exit_.empty()) return 0.0;
  const double e0 = exit_[0];
  for (double e : exit_) {
    if (std::fabs(e - e0) > tol) return std::nullopt;
  }
  return e0;
}

Ctmdp Ctmdp::uniformize(double rate) const {
  double target = rate;
  if (target == 0.0) {
    for (double e : exit_) target = std::max(target, e);
  }
  CtmdpBuilder b(actions_, words_);
  b.ensure_states(num_states());
  b.set_initial(initial_);
  for (std::uint64_t t = 0; t < num_transitions(); ++t) {
    const StateId s = source_[t];
    b.begin_transition(s, labels_[t]);
    for (const SparseEntry& e : rates(t)) b.add_rate(e.col, e.value);
    const double pad = target - exit_[t];
    if (pad < -1e-9) throw UniformityError("Ctmdp::uniformize: rate below a transition exit rate");
    if (pad > 1e-12) b.add_rate(s, pad);
  }
  return b.build();
}

std::size_t Ctmdp::memory_bytes() const {
  return state_row_.size() * sizeof(std::uint64_t) + source_.size() * sizeof(StateId) +
         labels_.size() * sizeof(WordId) + trans_row_.size() * sizeof(std::uint64_t) +
         entries_.size() * sizeof(SparseEntry) + exit_.size() * sizeof(double);
}

CtmdpBuilder::CtmdpBuilder(std::shared_ptr<ActionTable> actions, std::shared_ptr<WordTable> words)
    : actions_(actions ? std::move(actions) : std::make_shared<ActionTable>()),
      words_(words ? std::move(words) : std::make_shared<WordTable>()) {}

StateId CtmdpBuilder::add_state() { return static_cast<StateId>(num_states_++); }

void CtmdpBuilder::ensure_states(std::size_t n) {
  if (n > num_states_) num_states_ = n;
}

void CtmdpBuilder::flush() {
  if (!current_) return;
  if (current_->entries.empty()) {
    throw ModelError("Ctmdp: transition without rate entries");
  }
  transitions_.push_back(std::move(*current_));
  current_.reset();
}

void CtmdpBuilder::begin_transition(StateId from, WordId word) {
  flush();
  ensure_states(from + 1);
  current_ = PendingTransition{from, word, {}};
}

void CtmdpBuilder::begin_transition(StateId from, std::string_view action) {
  begin_transition(from, words_->intern_single(actions_->intern(action)));
}

void CtmdpBuilder::add_rate(StateId to, double rate) {
  if (!current_) throw ModelError("Ctmdp: add_rate before begin_transition");
  if (!(rate > 0.0) || !std::isfinite(rate)) {
    throw ModelError("Ctmdp: rate must be positive and finite");
  }
  ensure_states(to + 1);
  current_->entries.push_back(SparseEntry{to, rate});
}

Ctmdp CtmdpBuilder::build() {
  flush();
  if (num_states_ == 0) throw ModelError("Ctmdp: at least one state required");
  if (initial_ >= num_states_) throw ModelError("Ctmdp: initial state out of range");

  std::stable_sort(transitions_.begin(), transitions_.end(),
                   [](const PendingTransition& a, const PendingTransition& b) {
                     return a.from < b.from;
                   });

  Ctmdp c;
  c.actions_ = actions_;
  c.words_ = words_;
  c.initial_ = initial_;
  c.state_row_.assign(num_states_ + 1, 0);
  c.source_.reserve(transitions_.size());
  c.labels_.reserve(transitions_.size());
  c.trans_row_.reserve(transitions_.size() + 1);
  c.trans_row_.push_back(0);
  c.exit_.reserve(transitions_.size());

  std::size_t ti = 0;
  for (StateId s = 0; s < num_states_; ++s) {
    c.state_row_[s] = c.labels_.size();
    while (ti < transitions_.size() && transitions_[ti].from == s) {
      PendingTransition& p = transitions_[ti++];
      // Merge duplicate targets within one rate function.
      std::sort(p.entries.begin(), p.entries.end(),
                [](const SparseEntry& a, const SparseEntry& b) { return a.col < b.col; });
      double exit = 0.0;
      const std::size_t first = c.entries_.size();
      for (const SparseEntry& e : p.entries) {
        if (c.entries_.size() > first && c.entries_.back().col == e.col) {
          c.entries_.back().value += e.value;
        } else {
          c.entries_.push_back(e);
        }
        exit += e.value;
      }
      c.source_.push_back(p.from);
      c.labels_.push_back(p.word);
      c.trans_row_.push_back(c.entries_.size());
      c.exit_.push_back(exit);
    }
  }
  c.state_row_[num_states_] = c.labels_.size();

  num_states_ = 0;
  initial_ = 0;
  transitions_.clear();
  return c;
}

}  // namespace unicon
