// Continuous-time Markov decision processes (Def. 1 of the paper).
//
// The "mild variation" of CTMDPs is implemented: a state may have several
// transitions carrying the same action (they arise naturally from the
// uIMC -> uCTMDP transformation, where each Markov state of the strictly
// alternating IMC becomes one transition/rate function).
//
// Storage follows the paper's implementation notes (Sec. 4.2): transitions
// are kept as sparse rows, label (action word) information separately from
// rate information, with transitions in one-to-one correspondence to the
// rate functions.
#pragma once

#include <cstdint>
#include <memory>
#include <optional>
#include <span>
#include <vector>

#include "support/sparse.hpp"
#include "support/symbols.hpp"

namespace unicon {

class CtmdpBuilder;

class Ctmdp {
 public:
  Ctmdp()
      : actions_(std::make_shared<ActionTable>()), words_(std::make_shared<WordTable>()) {}

  std::size_t num_states() const { return state_row_.empty() ? 0 : state_row_.size() - 1; }
  std::size_t num_transitions() const { return labels_.size(); }
  /// Total number of sparse (target, rate) entries over all transitions.
  std::size_t num_rate_entries() const { return entries_.size(); }
  StateId initial() const { return initial_; }

  const ActionTable& actions() const { return *actions_; }
  const WordTable& words() const { return *words_; }
  const std::shared_ptr<ActionTable>& action_table() const { return actions_; }
  const std::shared_ptr<WordTable>& word_table() const { return words_; }

  /// Transition indices emanating from state @p s: [first, last).
  std::pair<std::uint64_t, std::uint64_t> transition_range(StateId s) const {
    return {state_row_[s], state_row_[s + 1]};
  }
  std::size_t num_transitions_of(StateId s) const { return state_row_[s + 1] - state_row_[s]; }

  /// Action word labelling transition @p t.
  WordId label(std::uint64_t t) const { return labels_[t]; }

  /// Rate function R of transition @p t as sparse (target, rate) entries.
  std::span<const SparseEntry> rates(std::uint64_t t) const {
    return std::span<const SparseEntry>(entries_.data() + trans_row_[t],
                                        entries_.data() + trans_row_[t + 1]);
  }

  /// Exit rate E_R of transition @p t (cached cumulative rate).
  double exit_rate(std::uint64_t t) const { return exit_[t]; }

  /// Source state of transition @p t.
  StateId source(std::uint64_t t) const { return source_[t]; }

  /// If all transition exit rates agree up to @p tol, the common rate.
  /// States without transitions and rate-0 models yield 0.
  std::optional<double> uniform_rate(double tol = 1e-9) const;
  bool is_uniform(double tol = 1e-9) const { return uniform_rate(tol).has_value(); }

  /// Pads every transition with a self-loop rate so all exit rates equal
  /// @p rate (0 = maximal exit rate).  NOTE: unlike for CTMCs this is *not*
  /// a behaviour-preserving operation in general — time-abstract schedulers
  /// can observe the extra self-loop steps.  It is provided for the
  /// ablation study and for models known to be insensitive.
  Ctmdp uniformize(double rate = 0.0) const;

  /// Bytes consumed by the transition storage.
  std::size_t memory_bytes() const;

 private:
  friend class CtmdpBuilder;
  std::shared_ptr<ActionTable> actions_;
  std::shared_ptr<WordTable> words_;
  StateId initial_ = 0;
  std::vector<std::uint64_t> state_row_;  // per state: first transition index
  std::vector<StateId> source_;           // per transition
  std::vector<WordId> labels_;            // per transition
  std::vector<std::uint64_t> trans_row_;  // per transition: first entry index
  std::vector<SparseEntry> entries_;      // (target, rate)
  std::vector<double> exit_;              // per transition
};

class Ctmc;

/// Embeds a CTMC as a deterministic CTMDP: every non-absorbing state gets a
/// single tau-labeled transition carrying its rate row.  Lets the CTMDP
/// analyses (unbounded reachability, expected time, ...) run on chains.
Ctmdp ctmdp_from_ctmc(const Ctmc& chain);

/// Builder: transitions are added one at a time; entries of the current
/// transition are accumulated until the next begin_transition/build call.
class CtmdpBuilder {
 public:
  CtmdpBuilder(std::shared_ptr<ActionTable> actions = nullptr,
               std::shared_ptr<WordTable> words = nullptr);

  StateId add_state();
  void ensure_states(std::size_t n);
  void set_initial(StateId s) { initial_ = s; }

  /// Starts a new transition (s, word, .).
  void begin_transition(StateId from, WordId word);
  /// Convenience: starts a transition labelled with the single-action word
  /// of @p action (interning the action name).
  void begin_transition(StateId from, std::string_view action);

  /// Adds rate mass R(to) += rate to the current transition.
  void add_rate(StateId to, double rate);

  Action intern_action(std::string_view name) { return actions_->intern(name); }
  WordId intern_word(std::span<const Action> word) { return words_->intern(word); }
  const std::shared_ptr<ActionTable>& action_table() const { return actions_; }
  const std::shared_ptr<WordTable>& word_table() const { return words_; }

  Ctmdp build();

 private:
  struct PendingTransition {
    StateId from;
    WordId word;
    std::vector<SparseEntry> entries;
  };

  void flush();

  std::shared_ptr<ActionTable> actions_;
  std::shared_ptr<WordTable> words_;
  std::size_t num_states_ = 0;
  StateId initial_ = 0;
  std::vector<PendingTransition> transitions_;
  std::optional<PendingTransition> current_;
};

}  // namespace unicon
