#include "ctmdp/scheduler.hpp"

#include <cmath>

#include "ctmdp/backend.hpp"
#include "support/errors.hpp"
#include "support/fox_glynn.hpp"

namespace unicon {

StationaryScheduler StationaryScheduler::first_transition(const Ctmdp& model) {
  std::vector<std::uint64_t> choice(model.num_states(), kNoTransition);
  for (StateId s = 0; s < model.num_states(); ++s) {
    const auto [first, last] = model.transition_range(s);
    if (first != last) choice[s] = first;
  }
  return StationaryScheduler(std::move(choice));
}

StationaryScheduler StationaryScheduler::from_initial_decisions(
    const Ctmdp& model, const TimedReachabilityResult& result) {
  if (result.initial_decision.size() != model.num_states()) {
    throw ModelError(
        "StationaryScheduler: result has no initial decisions (enable extract_scheduler)");
  }
  StationaryScheduler scheduler = first_transition(model);
  for (StateId s = 0; s < model.num_states(); ++s) {
    if (result.initial_decision[s] != kNoTransition) {
      scheduler.choice_[s] = result.initial_decision[s];
    }
  }
  return scheduler;
}

void StationaryScheduler::validate(const Ctmdp& model) const {
  if (choice_.size() != model.num_states()) {
    throw ModelError("StationaryScheduler: size mismatch");
  }
  for (StateId s = 0; s < model.num_states(); ++s) {
    const auto [first, last] = model.transition_range(s);
    if (first == last) continue;
    if (choice_[s] < first || choice_[s] >= last) {
      throw ModelError("StationaryScheduler: choice out of range for state " + std::to_string(s));
    }
  }
}

Ctmc StationaryScheduler::induced_ctmc(const Ctmdp& model) const {
  validate(model);
  CtmcBuilder b(model.num_states());
  b.ensure_states(model.num_states());
  b.set_initial(model.initial());
  for (StateId s = 0; s < model.num_states(); ++s) {
    const auto [first, last] = model.transition_range(s);
    if (first == last) continue;
    for (const SparseEntry& e : model.rates(choice_[s])) b.add_transition(s, e.value, e.col);
  }
  return b.build();
}

CountdownScheduler CountdownScheduler::from_result(const TimedReachabilityResult& result) {
  if (result.decisions.empty()) {
    throw ModelError(
        "CountdownScheduler: result has no decision table (enable extract_scheduler and check "
        "max_decision_entries)");
  }
  return CountdownScheduler(result.decisions);
}

std::uint64_t CountdownScheduler::choice(std::uint64_t i, StateId s) const {
  if (i == 0) throw ModelError("CountdownScheduler: steps are 1-based");
  const std::size_t row = std::min<std::size_t>(i - 1, decisions_.size() - 1);
  return decisions_[row][s];
}

TimedReachabilityResult evaluate_countdown_scheduler(const Ctmdp& model, const BitVector& goal,
                                                     double t,
                                                     const CountdownScheduler& scheduler,
                                                     const TimedReachabilityOptions& options) {
  if (goal.size() != model.num_states()) {
    throw ModelError("evaluate_countdown_scheduler: goal vector size mismatch");
  }
  if (t < 0.0) throw ModelError("evaluate_countdown_scheduler: negative time bound");
  if (scheduler.num_steps() == 0) {
    throw ModelError("evaluate_countdown_scheduler: scheduler has no decision rows");
  }
  const auto uniform = model.uniform_rate(1e-6);
  if (!uniform) throw UniformityError("evaluate_countdown_scheduler: model is not uniform");
  const double e = *uniform;
  const std::size_t n = model.num_states();

  TimedReachabilityResult result;
  result.uniform_rate = e;
  result.lambda = e * t;
  const PoissonWindow psi = PoissonWindow::compute(e * t, options.epsilon);
  const std::uint64_t k = psi.right();
  result.iterations_planned = k;

  const DiscreteKernel kernel(model, goal);
  std::vector<double> q_next(n, 0.0);
  std::vector<double> q_cur(n, 0.0);
  for (std::uint64_t i = k; i >= 1; --i) {
    const double w = psi.psi(i);
    const double* q = q_next.data();
    for (StateId s = 0; s < n; ++s) {
      if (goal[s]) {
        q_cur[s] = w + q[s];
        continue;
      }
      const std::uint64_t tr = scheduler.choice(i, s);
      if (tr == kNoTransition) {
        // The optimizing sweep records kNoTransition for avoided and
        // transitionless states; both are pinned to exactly 0.
        q_cur[s] = 0.0;
        continue;
      }
      if (tr < kernel.state_first[s] || tr >= kernel.state_first[s + 1]) {
        throw ModelError("evaluate_countdown_scheduler: choice out of range at step " +
                         std::to_string(i) + ", state " + std::to_string(s));
      }
      q_cur[s] = kernel.transition_value(tr, w, q);
    }
    q_cur.swap(q_next);
  }
  result.iterations_executed = k;
  result.residual_bound = options.epsilon;
  for (const double v : q_next) {
    if (!std::isfinite(v)) {
      throw NumericError("evaluate_countdown_scheduler: non-finite value in result");
    }
  }
  result.values = std::move(q_next);
  return result;
}

}  // namespace unicon
