#include "ctmdp/scheduler.hpp"

#include "support/errors.hpp"

namespace unicon {

StationaryScheduler StationaryScheduler::first_transition(const Ctmdp& model) {
  std::vector<std::uint64_t> choice(model.num_states(), kNoTransition);
  for (StateId s = 0; s < model.num_states(); ++s) {
    const auto [first, last] = model.transition_range(s);
    if (first != last) choice[s] = first;
  }
  return StationaryScheduler(std::move(choice));
}

StationaryScheduler StationaryScheduler::from_initial_decisions(
    const Ctmdp& model, const TimedReachabilityResult& result) {
  if (result.initial_decision.size() != model.num_states()) {
    throw ModelError(
        "StationaryScheduler: result has no initial decisions (enable extract_scheduler)");
  }
  StationaryScheduler scheduler = first_transition(model);
  for (StateId s = 0; s < model.num_states(); ++s) {
    if (result.initial_decision[s] != kNoTransition) {
      scheduler.choice_[s] = result.initial_decision[s];
    }
  }
  return scheduler;
}

void StationaryScheduler::validate(const Ctmdp& model) const {
  if (choice_.size() != model.num_states()) {
    throw ModelError("StationaryScheduler: size mismatch");
  }
  for (StateId s = 0; s < model.num_states(); ++s) {
    const auto [first, last] = model.transition_range(s);
    if (first == last) continue;
    if (choice_[s] < first || choice_[s] >= last) {
      throw ModelError("StationaryScheduler: choice out of range for state " + std::to_string(s));
    }
  }
}

Ctmc StationaryScheduler::induced_ctmc(const Ctmdp& model) const {
  validate(model);
  CtmcBuilder b(model.num_states());
  b.ensure_states(model.num_states());
  b.set_initial(model.initial());
  for (StateId s = 0; s < model.num_states(); ++s) {
    const auto [first, last] = model.transition_range(s);
    if (first == last) continue;
    for (const SparseEntry& e : model.rates(choice_[s])) b.add_transition(s, e.value, e.col);
  }
  return b.build();
}

CountdownScheduler CountdownScheduler::from_result(const TimedReachabilityResult& result) {
  if (result.decisions.empty()) {
    throw ModelError(
        "CountdownScheduler: result has no decision table (enable extract_scheduler and check "
        "max_decision_entries)");
  }
  return CountdownScheduler(result.decisions);
}

std::uint64_t CountdownScheduler::choice(std::uint64_t i, StateId s) const {
  if (i == 0) throw ModelError("CountdownScheduler: steps are 1-based");
  const std::size_t row = std::min<std::size_t>(i - 1, decisions_.size() - 1);
  return decisions_[row][s];
}

}  // namespace unicon
