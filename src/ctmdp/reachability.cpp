#include "ctmdp/reachability.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <optional>
#include <string>

#include "ctmdp/backend.hpp"
#include "support/errors.hpp"
#include "support/fox_glynn.hpp"
#include "support/numerics.hpp"
#include "support/parallel.hpp"
#include "support/telemetry.hpp"

namespace unicon {

namespace {

void check_inputs(const Ctmdp& model, const BitVector& goal) {
  if (goal.size() != model.num_states()) {
    throw ModelError("timed_reachability: goal vector size mismatch");
  }
}

/// States checked per should_abort_sweep() probe inside a parallel sweep;
/// the strip-mined block structure leaves the per-state arithmetic (and
/// hence bit-identical results) untouched.  Sized so the probe (an atomic
/// load plus, with a deadline armed, a clock read) stays under ~2% of the
/// sweep cost while still stopping a sweep within tens of microseconds.
constexpr std::size_t kGuardBlock = 4096;

/// Sound per-state error bound when the backward iteration stops before
/// executing step index @p next_i, leaving the iterate q_{next_i+1} in hand.
/// Unrolling the recurrence, q_{next_i+1} weights the m-th future jump by
/// psi(m + next_i) where the completed iteration q_1 weights it by psi(m):
/// the partial iterate is a *shifted-weight* sum, not a truncated prefix,
/// so the naive "unconsumed mass" sum_{m <= next_i} psi(m) is NOT sound
/// (the fault-injection harness exhibits mid-run cancellations violating
/// it).  The per-scheduler deviation is bounded by the total weight
/// displacement plus the dropped window tail plus the outside-window
/// epsilon, capped at the trivial bound 1:
///   sum_{m=1}^{k-next_i} |psi(m) - psi(m+next_i)| + tail_mass(k-next_i+1)
///   + epsilon.
double partial_residual(const PoissonWindow& psi, std::uint64_t next_i, double epsilon) {
  if (next_i == 0) return epsilon;
  const std::uint64_t k = psi.right();
  double bound = epsilon + psi.tail_mass(k - next_i + 1);
  for (std::uint64_t m = 1; m + next_i <= k; ++m) {
    bound += std::abs(psi.psi(m) - psi.psi(m + next_i));
  }
  return std::min(bound, 1.0);
}

/// Pre-resolved per-worker row counters ("<prefix><worker>"), so the sweep
/// lambdas touch the registry lock-free: one relaxed fetch_add per worker
/// per sweep.  Empty (nullptr data) when telemetry is off.
std::vector<Counter*> worker_row_counters(Telemetry* telemetry, const std::string& prefix,
                                          unsigned workers) {
  std::vector<Counter*> out;
  if (telemetry == nullptr) return out;
  out.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    out.push_back(&telemetry->counter(prefix + std::to_string(w)));
  }
  return out;
}

void require_finite_values(const std::vector<double>& values, const char* where) {
  for (std::size_t s = 0; s < values.size(); ++s) {
    if (!std::isfinite(values[s])) {
      throw NumericError(std::string(where) + ": non-finite value in iterate at state " +
                         std::to_string(s));
    }
  }
}

/// The dense (simd) engine's bridge between its compacted iterate and the
/// full-state vectors of the external contract (checkpoint spans, resume
/// iterates, final values).  The dense iterate holds only the relaxed rows;
/// all goal states share the scalar goal value G (uniform by construction,
/// see DenseKernel's header comment) and avoided states are pinned 0.0.
struct DenseBridge {
  const DenseKernel& kernel;
  const BitVector& goal;

  /// full[s] = G for goal states, dq[row(s)] for dense states, 0 otherwise.
  void materialize(const std::vector<double>& dq, double goal_value,
                   std::vector<double>& full) const {
    const std::size_t n = kernel.dense_index.size();
    for (std::size_t s = 0; s < n; ++s) full[s] = goal[s] ? goal_value : 0.0;
    for (std::uint64_t r = 0; r < kernel.num_rows(); ++r) {
      full[kernel.dense_state[r]] = dq[r];
    }
  }

  /// Inverse of materialize on an externally writable full vector (resume
  /// input, post-checkpoint iterate).  The goal value is read back from the
  /// lowest-indexed goal state: the engine maintains the goal iterate as a
  /// single scalar, so a checkpoint writer that splits the goal states
  /// apart is collapsed onto that representative (the serial engine would
  /// propagate such a split per state; DESIGN.md Sec. 10 records this
  /// contract difference).
  double ingest(const std::vector<double>& full, std::vector<double>& dq) const {
    for (std::uint64_t r = 0; r < kernel.num_rows(); ++r) {
      dq[r] = full[kernel.dense_state[r]];
    }
    const std::size_t g0 = goal.next_set(0);
    return g0 == BitVector::npos ? 0.0 : full[g0];
  }

  /// Scatters a dense decision row (original transition ids) into a
  /// full-state row; goal/avoided states keep kNoTransition.
  std::vector<std::uint64_t> expand_decisions(const std::vector<std::uint64_t>& ddec) const {
    std::vector<std::uint64_t> full(kernel.dense_index.size(), kNoTransition);
    for (std::uint64_t r = 0; r < kernel.num_rows(); ++r) {
      full[kernel.dense_state[r]] = ddec[r];
    }
    return full;
  }
};

}  // namespace

TimedReachabilityResult timed_reachability(const Ctmdp& model, const BitVector& goal,
                                           double t, const TimedReachabilityOptions& options) {
  check_inputs(model, goal);
  if (t < 0.0) throw ModelError("timed_reachability: negative time bound");
  const auto uniform = model.uniform_rate(1e-6);
  if (!uniform) {
    throw UniformityError(
        "timed_reachability: model is not uniform; construct it uniformly or uniformize first");
  }
  const double e = *uniform;
  const std::size_t n = model.num_states();
  const bool maximize = options.objective == Objective::Maximize;
  const Backend backend = resolve_backend(options.backend);

  TimedReachabilityResult result;
  result.uniform_rate = e;
  result.lambda = e * t;

  std::optional<Telemetry::Span> span;
  if (options.telemetry != nullptr) span.emplace(options.telemetry->span("reachability"));

  const PoissonWindow psi = PoissonWindow::compute(e * t, options.epsilon);
  const std::uint64_t k = psi.right();
  result.iterations_planned = k;

  if (!options.avoid.empty() && options.avoid.size() != n) {
    throw ModelError("timed_reachability: avoid vector size mismatch");
  }
  auto avoided = [&](StateId s) {
    return !options.avoid.empty() && options.avoid[s] && !goal[s];
  };

  // The product k * n can overflow for pathological horizons (k grows with
  // lambda without bound); a wrapped product below the cap would commit to
  // allocating the astronomically large true table, so saturate instead.
  const bool record_all_decisions =
      options.extract_scheduler &&
      saturating_mul(k, static_cast<std::uint64_t>(n)) <= options.max_decision_entries;
  if (options.extract_scheduler) {
    result.initial_decision.assign(n, kNoTransition);
    if (record_all_decisions) result.decisions.resize(k);
  }

  RunGuard* const guard = options.guard;
  std::uint64_t executed = 0;
  std::uint64_t start_i = k;
  if (options.resume != nullptr) {
    const TimedReachabilityResult& prior = *options.resume;
    if (prior.status == RunStatus::Converged || prior.iterate.size() != n) {
      throw ModelError("timed_reachability: resume requires a partial result for this model");
    }
    if (prior.iterations_planned != k || prior.iterations_executed >= k) {
      throw ModelError("timed_reachability: resume horizon mismatch (model, t or epsilon changed)");
    }
    executed = prior.iterations_executed;
    start_i = k - executed;
    // The steps the prior run already executed recorded their decision rows
    // into its partial result; a resumed run only sweeps i = start_i..1, so
    // without this merge the resumed scheduler artifact would silently lose
    // every pre-interruption row (indices [start_i, k)) and disagree with
    // an uninterrupted run.
    if (record_all_decisions && prior.decisions.size() == k) {
      for (std::uint64_t j = start_i; j < k; ++j) result.decisions[j] = prior.decisions[j];
    }
  }

  std::atomic<bool> sweep_aborted{false};
  bool stopped = false;
  bool early_fired = false;
  std::uint64_t early_step = 0;
  unsigned pool_size = 0;

  if (backend == Backend::Serial) {
    // ---- Serial engine: the historical flat sweep, bit-identical to the
    // pre-backend solver (strictly sequential per-transition accumulation).
    const DiscreteKernel kernel(model, goal);

    // q_next = q_{i+1}, q_cur = q_i.
    std::vector<double> q_next(n, 0.0);
    std::vector<double> q_cur(n, 0.0);
    std::vector<std::uint64_t> decision(options.extract_scheduler ? n : 0, kNoTransition);
    if (options.resume != nullptr) {
      q_next = options.resume->iterate;
      // A resume iterate is external input just like a checkpoint write; a
      // non-finite entry would corrupt the result without tripping the
      // per-sweep delta check (see the checkpoint validation below).
      require_finite_values(q_next, "timed_reachability resume");
    }

    WorkerPool pool = make_worker_pool(options.threads, n);
    pool_size = pool.size();
    std::vector<WorkerPool::Slot> delta_slot(pool.size());
    const std::vector<Counter*> row_counters =
        worker_row_counters(options.telemetry, "reachability.rows.worker", pool.size());
    Counter* const* const rows_out = row_counters.empty() ? nullptr : row_counters.data();

    for (std::uint64_t i = start_i; i >= 1; --i) {
      if (guard != nullptr && guard->poll() != RunStatus::Converged) {
        stopped = true;
        result.residual_bound = partial_residual(psi, i, options.epsilon);
        break;
      }
      const double w = psi.psi(i);
      pool.run(n, [&](unsigned worker, std::size_t begin, std::size_t end) {
        const double* q = q_next.data();
        double local_delta = 0.0;
        std::uint64_t rows = 0;
        for (std::size_t blk = begin; blk < end; blk += kGuardBlock) {
          if (guard != nullptr && guard->should_abort_sweep()) {
            sweep_aborted.store(true, std::memory_order_relaxed);
            break;
          }
          const std::size_t blk_end = std::min(end, blk + kGuardBlock);
          rows += blk_end - blk;
          for (StateId s = blk; s < blk_end; ++s) {
            if (goal[s]) {
              q_cur[s] = w + q[s];
              if (options.extract_scheduler) decision[s] = kNoTransition;
            } else if (avoided(s)) {
              q_cur[s] = 0.0;
              if (options.extract_scheduler) decision[s] = kNoTransition;
            } else {
              const std::uint64_t first = kernel.state_first[s];
              const std::uint64_t last = kernel.state_first[s + 1];
              double best = first == last ? 0.0 : (maximize ? -1.0 : 2.0);
              std::uint64_t best_t = kNoTransition;
              for (std::uint64_t tr = first; tr < last; ++tr) {
                const double acc = kernel.transition_value(tr, w, q);
                if (maximize ? acc > best : acc < best) {
                  best = acc;
                  best_t = tr;
                }
              }
              // NaN-capturing max: identical to std::max for finite deltas
              // (bit-identical results) but latches NaN, which std::max
              // would silently drop.
              const double dev = std::fabs(best - q[s]);
              if (!(dev <= local_delta)) local_delta = dev;
              q_cur[s] = best;
              if (options.extract_scheduler) decision[s] = best_t;
            }
          }
        }
        delta_slot[worker].value = local_delta;
        if (rows_out != nullptr) rows_out[worker]->add(rows);
      });
      if (guard != nullptr && sweep_aborted.load(std::memory_order_relaxed)) {
        // The sweep for step i was abandoned mid-flight: q_cur is partially
        // written, so the partial result is the last *completed* iterate in
        // q_next and step i counts as unconsumed.
        stopped = true;
        result.residual_bound = partial_residual(psi, i, options.epsilon);
        break;
      }
      const double delta = WorkerPool::reduce_max(delta_slot);
      if (!std::isfinite(delta)) {
        throw NumericError("timed_reachability: non-finite update at step " + std::to_string(i) +
                           " (NaN/Inf reached the iterate)");
      }
      q_cur.swap(q_next);  // q_next now holds q_i for the next round
      ++executed;

      if (record_all_decisions) result.decisions[i - 1] = decision;
      if (options.extract_scheduler && i == 1) result.initial_decision = decision;

      if (guard != nullptr && guard->wants_checkpoint(executed)) {
        guard->checkpoint("timed_reachability", executed, k,
                          partial_residual(psi, i - 1, options.epsilon),
                          std::span<double>(q_next.data(), q_next.size()));
        // The callback writes through the span (checkpoint persistence, fault
        // injection), so the iterate is untrusted on return.  A non-finite
        // entry would be silently dropped by the action comparisons above —
        // NaN compares false both ways — leaving finite wrong values, so it
        // must be rejected here at the trust boundary.
        require_finite_values(q_next, "timed_reachability checkpoint");
      }

      if (options.early_termination && i > 1) {
        // Below the Poisson window no further psi mass arrives; once the
        // vector stops moving the remaining iterations are no-ops up to
        // early_termination_delta.  Gate on the window bound only: inside
        // the window every stored weight is strictly positive by
        // construction (PoissonWindow::compute throws at the underflow
        // frontier), so a psi(i-1) == 0.0 test is at best redundant — and
        // if an interior weight ever *could* underflow, firing on it would
        // silently skip steps that still carry mass, widening the achieved
        // epsilon without being reported in residual_bound.
        if (i - 1 < psi.left()) {
          if (delta <= options.early_termination_delta) {
            if (options.extract_scheduler) result.initial_decision = decision;
            early_fired = true;
            early_step = i;
            break;
          }
        }
      }
    }
    result.iterations_executed = executed;

    if (stopped) {
      result.status = guard->status();
      result.iterate = q_next;  // raw iterate, resumable
    } else {
      result.residual_bound =
          options.epsilon + (early_fired ? options.early_termination_delta : 0.0);
    }

    require_finite_values(q_next, "timed_reachability");
    result.values = std::move(q_next);
  } else {
    // ---- Dense (simd) engine: sweep only the non-goal, non-avoided rows
    // with the branching mass into B folded into the scalar goal iterate
    // G_i = psi(i) + G_{i+1} (see DenseKernel).  Same guard blocks,
    // checkpoint points and delta semantics as the serial engine; the
    // external contract (checkpoint spans, resume iterates) stays in
    // full-state vectors via DenseBridge, so partial results interoperate
    // across backends.
    const DenseKernel kernel(model, goal, options.avoid);
    const KernelOps& ops = kernel_ops(backend);
    const DenseKernelView view = kernel.view();
    const DenseBridge bridge{kernel, goal};
    const std::uint64_t rows = kernel.num_rows();

    std::vector<double> dq_next(rows, 0.0);
    std::vector<double> dq_cur(rows, 0.0);
    std::vector<std::uint64_t> ddec(options.extract_scheduler ? rows : 0, kNoTransition);
    std::uint64_t* const ddec_ptr = options.extract_scheduler ? ddec.data() : nullptr;
    std::vector<double> q_full(n, 0.0);
    double goal_value = 0.0;  // G_{i+1}, starting from q_{k+1} = 0

    if (options.resume != nullptr) {
      q_full = options.resume->iterate;
      require_finite_values(q_full, "timed_reachability resume");
      goal_value = bridge.ingest(q_full, dq_next);
    }

    WorkerPool pool = make_worker_pool(options.threads, rows);
    pool_size = pool.size();
    std::vector<WorkerPool::Slot> delta_slot(pool.size());
    const std::vector<Counter*> row_counters =
        worker_row_counters(options.telemetry, "reachability.rows.worker", pool.size());
    Counter* const* const rows_out = row_counters.empty() ? nullptr : row_counters.data();

    for (std::uint64_t i = start_i; i >= 1; --i) {
      if (guard != nullptr && guard->poll() != RunStatus::Converged) {
        stopped = true;
        result.residual_bound = partial_residual(psi, i, options.epsilon);
        break;
      }
      const double gi = psi.psi(i) + goal_value;  // G_i, the goal value of q_i
      pool.run(rows, [&](unsigned worker, std::size_t begin, std::size_t end) {
        const double* q = dq_next.data();
        double local_delta = 0.0;
        std::uint64_t swept = 0;
        for (std::size_t blk = begin; blk < end; blk += kGuardBlock) {
          if (guard != nullptr && guard->should_abort_sweep()) {
            sweep_aborted.store(true, std::memory_order_relaxed);
            break;
          }
          const std::size_t blk_end = std::min(end, blk + kGuardBlock);
          swept += blk_end - blk;
          const double d =
              ops.relax_rows(view, gi, maximize, q, dq_cur.data(), ddec_ptr, blk, blk_end);
          if (!(d <= local_delta)) local_delta = d;  // NaN-capturing max
        }
        delta_slot[worker].value = local_delta;
        if (rows_out != nullptr) rows_out[worker]->add(swept);
      });
      if (guard != nullptr && sweep_aborted.load(std::memory_order_relaxed)) {
        stopped = true;
        result.residual_bound = partial_residual(psi, i, options.epsilon);
        break;
      }
      const double delta = WorkerPool::reduce_max(delta_slot);
      if (!std::isfinite(delta)) {
        throw NumericError("timed_reachability: non-finite update at step " + std::to_string(i) +
                           " (NaN/Inf reached the iterate)");
      }
      dq_cur.swap(dq_next);
      goal_value = gi;
      ++executed;

      if (record_all_decisions) result.decisions[i - 1] = bridge.expand_decisions(ddec);
      if (options.extract_scheduler && i == 1) {
        result.initial_decision = bridge.expand_decisions(ddec);
      }

      if (guard != nullptr && guard->wants_checkpoint(executed)) {
        bridge.materialize(dq_next, goal_value, q_full);
        guard->checkpoint("timed_reachability", executed, k,
                          partial_residual(psi, i - 1, options.epsilon),
                          std::span<double>(q_full.data(), q_full.size()));
        // Same trust boundary as the serial engine: the span is writable by
        // external code, so validate and re-ingest whatever came back.
        require_finite_values(q_full, "timed_reachability checkpoint");
        goal_value = bridge.ingest(q_full, dq_next);
      }

      // Window-bound-only gate; see the serial engine for why psi == 0 must
      // not participate.
      if (options.early_termination && i > 1 && i - 1 < psi.left() &&
          delta <= options.early_termination_delta) {
        if (options.extract_scheduler) result.initial_decision = bridge.expand_decisions(ddec);
        early_fired = true;
        early_step = i;
        break;
      }
    }
    result.iterations_executed = executed;

    bridge.materialize(dq_next, goal_value, q_full);
    if (stopped) {
      result.status = guard->status();
      result.iterate = q_full;  // full-state raw iterate, resumable by any backend
    } else {
      result.residual_bound =
          options.epsilon + (early_fired ? options.early_termination_delta : 0.0);
    }

    require_finite_values(q_full, "timed_reachability");
    result.values = std::move(q_full);
    if (span) span->metric("dense_rows", rows);
  }

  for (StateId s = 0; s < n; ++s) {
    result.values[s] = goal[s] ? 1.0 : clamp01(result.values[s]);
  }
  if (span) {
    span->metric("states", n);
    span->metric("transitions", model.num_transitions());
    span->metric("uniform_rate", e);
    span->metric("lambda", result.lambda);
    span->metric("poisson_left", psi.left());
    span->metric("poisson_right", k);
    span->metric("poisson_width", k - psi.left() + 1);
    span->metric("iterations_planned", k);
    span->metric("iterations_executed", executed);
    span->metric("early_termination_step", early_step);
    span->metric("threads", pool_size);
    span->metric("residual_bound", result.residual_bound);
  }
  return result;
}

TimedReachabilityResult evaluate_scheduler(const Ctmdp& model, const BitVector& goal,
                                           double t, const std::vector<std::uint64_t>& choice,
                                           const TimedReachabilityOptions& options) {
  check_inputs(model, goal);
  if (choice.size() != model.num_states()) {
    throw ModelError("evaluate_scheduler: choice vector size mismatch");
  }
  const auto uniform = model.uniform_rate(1e-6);
  if (!uniform) throw UniformityError("evaluate_scheduler: model is not uniform");
  const double e = *uniform;
  const std::size_t n = model.num_states();
  const Backend backend = resolve_backend(options.backend);

  for (StateId s = 0; s < n; ++s) {
    if (goal[s]) continue;
    const auto [first, last] = model.transition_range(s);
    if (first == last) continue;
    if (choice[s] < first || choice[s] >= last) {
      throw ModelError("evaluate_scheduler: choice out of range for state");
    }
  }

  TimedReachabilityResult result;
  result.uniform_rate = e;
  result.lambda = e * t;

  std::optional<Telemetry::Span> span;
  if (options.telemetry != nullptr) span.emplace(options.telemetry->span("evaluate_scheduler"));

  const PoissonWindow psi = PoissonWindow::compute(e * t, options.epsilon);
  const std::uint64_t k = psi.right();
  result.iterations_planned = k;

  RunGuard* const guard = options.guard;
  std::atomic<bool> sweep_aborted{false};
  bool stopped = false;
  bool early_fired = false;
  std::uint64_t early_step = 0;
  std::uint64_t executed = 0;
  unsigned pool_size = 0;

  if (backend == Backend::Serial) {
    const DiscreteKernel kernel(model, goal);

    std::vector<double> q_next(n, 0.0);
    std::vector<double> q_cur(n, 0.0);

    WorkerPool pool = make_worker_pool(options.threads, n);
    pool_size = pool.size();
    std::vector<WorkerPool::Slot> delta_slot(pool.size());
    const std::vector<Counter*> row_counters =
        worker_row_counters(options.telemetry, "evaluate_scheduler.rows.worker", pool.size());
    Counter* const* const rows_out = row_counters.empty() ? nullptr : row_counters.data();

    for (std::uint64_t i = k; i >= 1; --i) {
      if (guard != nullptr && guard->poll() != RunStatus::Converged) {
        stopped = true;
        result.residual_bound = partial_residual(psi, i, options.epsilon);
        break;
      }
      const double w = psi.psi(i);
      pool.run(n, [&](unsigned worker, std::size_t begin, std::size_t end) {
        const double* q = q_next.data();
        double local_delta = 0.0;
        std::uint64_t rows = 0;
        for (std::size_t blk = begin; blk < end; blk += kGuardBlock) {
          if (guard != nullptr && guard->should_abort_sweep()) {
            sweep_aborted.store(true, std::memory_order_relaxed);
            break;
          }
          const std::size_t blk_end = std::min(end, blk + kGuardBlock);
          rows += blk_end - blk;
          for (StateId s = blk; s < blk_end; ++s) {
            if (goal[s]) {
              q_cur[s] = w + q[s];
              continue;
            }
            if (kernel.state_first[s] == kernel.state_first[s + 1]) {
              q_cur[s] = 0.0;
              continue;
            }
            const double acc = kernel.transition_value(choice[s], w, q);
            const double dev = std::fabs(acc - q[s]);
            if (!(dev <= local_delta)) local_delta = dev;  // NaN-capturing max
            q_cur[s] = acc;
          }
        }
        delta_slot[worker].value = local_delta;
        if (rows_out != nullptr) rows_out[worker]->add(rows);
      });
      if (guard != nullptr && sweep_aborted.load(std::memory_order_relaxed)) {
        stopped = true;
        result.residual_bound = partial_residual(psi, i, options.epsilon);
        break;
      }
      const double delta = WorkerPool::reduce_max(delta_slot);
      if (!std::isfinite(delta)) {
        throw NumericError("evaluate_scheduler: non-finite update at step " + std::to_string(i) +
                           " (NaN/Inf reached the iterate)");
      }
      q_cur.swap(q_next);
      ++executed;
      if (guard != nullptr && guard->wants_checkpoint(executed)) {
        guard->checkpoint("evaluate_scheduler", executed, k,
                          partial_residual(psi, i - 1, options.epsilon),
                          std::span<double>(q_next.data(), q_next.size()));
        // Same trust boundary as in timed_reachability: the span is writable
        // by external code, so reject non-finite entries immediately.
        require_finite_values(q_next, "evaluate_scheduler checkpoint");
      }
      // Window-bound-only gate (see timed_reachability): an interior
      // psi == 0 cannot occur by construction, and firing on one would
      // silently skip mass-carrying steps.
      if (options.early_termination && i > 1 && i - 1 < psi.left() &&
          delta <= options.early_termination_delta) {
        early_fired = true;
        early_step = i;
        break;
      }
    }
    result.iterations_executed = executed;
    if (stopped) {
      result.status = guard->status();
      result.iterate = q_next;
    } else {
      result.residual_bound =
          options.epsilon + (early_fired ? options.early_termination_delta : 0.0);
    }
    require_finite_values(q_next, "evaluate_scheduler");
    result.values = std::move(q_next);
  } else {
    // Dense engine: evaluate ignores `avoid` exactly as the serial path
    // does, so the kernel is built without an avoid mask.
    const DenseKernel kernel(model, goal, BitVector{});
    const KernelOps& ops = kernel_ops(backend);
    const DenseKernelView view = kernel.view();
    const DenseBridge bridge{kernel, goal};
    const std::uint64_t rows = kernel.num_rows();

    // Map the per-state choice onto dense transition indices once;
    // transitionless states keep the 0-pinned sentinel.
    std::vector<std::uint64_t> dchoice(rows, kNoTransition);
    for (std::uint64_t r = 0; r < rows; ++r) {
      const StateId s = kernel.dense_state[r];
      const auto [first, last] = model.transition_range(s);
      if (first == last) continue;
      dchoice[r] = kernel.row_first[r] + (choice[s] - first);
    }

    std::vector<double> dq_next(rows, 0.0);
    std::vector<double> dq_cur(rows, 0.0);
    std::vector<double> q_full(n, 0.0);
    double goal_value = 0.0;

    WorkerPool pool = make_worker_pool(options.threads, rows);
    pool_size = pool.size();
    std::vector<WorkerPool::Slot> delta_slot(pool.size());
    const std::vector<Counter*> row_counters =
        worker_row_counters(options.telemetry, "evaluate_scheduler.rows.worker", pool.size());
    Counter* const* const rows_out = row_counters.empty() ? nullptr : row_counters.data();

    for (std::uint64_t i = k; i >= 1; --i) {
      if (guard != nullptr && guard->poll() != RunStatus::Converged) {
        stopped = true;
        result.residual_bound = partial_residual(psi, i, options.epsilon);
        break;
      }
      const double gi = psi.psi(i) + goal_value;
      pool.run(rows, [&](unsigned worker, std::size_t begin, std::size_t end) {
        const double* q = dq_next.data();
        double local_delta = 0.0;
        std::uint64_t swept = 0;
        for (std::size_t blk = begin; blk < end; blk += kGuardBlock) {
          if (guard != nullptr && guard->should_abort_sweep()) {
            sweep_aborted.store(true, std::memory_order_relaxed);
            break;
          }
          const std::size_t blk_end = std::min(end, blk + kGuardBlock);
          swept += blk_end - blk;
          const double d =
              ops.choice_rows(view, gi, q, dchoice.data(), dq_cur.data(), blk, blk_end);
          if (!(d <= local_delta)) local_delta = d;  // NaN-capturing max
        }
        delta_slot[worker].value = local_delta;
        if (rows_out != nullptr) rows_out[worker]->add(swept);
      });
      if (guard != nullptr && sweep_aborted.load(std::memory_order_relaxed)) {
        stopped = true;
        result.residual_bound = partial_residual(psi, i, options.epsilon);
        break;
      }
      const double delta = WorkerPool::reduce_max(delta_slot);
      if (!std::isfinite(delta)) {
        throw NumericError("evaluate_scheduler: non-finite update at step " + std::to_string(i) +
                           " (NaN/Inf reached the iterate)");
      }
      dq_cur.swap(dq_next);
      goal_value = gi;
      ++executed;
      if (guard != nullptr && guard->wants_checkpoint(executed)) {
        bridge.materialize(dq_next, goal_value, q_full);
        guard->checkpoint("evaluate_scheduler", executed, k,
                          partial_residual(psi, i - 1, options.epsilon),
                          std::span<double>(q_full.data(), q_full.size()));
        require_finite_values(q_full, "evaluate_scheduler checkpoint");
        goal_value = bridge.ingest(q_full, dq_next);
      }
      if (options.early_termination && i > 1 && i - 1 < psi.left() &&
          delta <= options.early_termination_delta) {
        early_fired = true;
        early_step = i;
        break;
      }
    }
    result.iterations_executed = executed;
    bridge.materialize(dq_next, goal_value, q_full);
    if (stopped) {
      result.status = guard->status();
      result.iterate = q_full;
    } else {
      result.residual_bound =
          options.epsilon + (early_fired ? options.early_termination_delta : 0.0);
    }
    require_finite_values(q_full, "evaluate_scheduler");
    result.values = std::move(q_full);
    if (span) span->metric("dense_rows", rows);
  }

  for (StateId s = 0; s < n; ++s) {
    result.values[s] = goal[s] ? 1.0 : clamp01(result.values[s]);
  }
  if (span) {
    span->metric("states", n);
    span->metric("transitions", model.num_transitions());
    span->metric("uniform_rate", e);
    span->metric("lambda", result.lambda);
    span->metric("poisson_left", psi.left());
    span->metric("poisson_right", k);
    span->metric("poisson_width", k - psi.left() + 1);
    span->metric("iterations_planned", k);
    span->metric("iterations_executed", executed);
    span->metric("early_termination_step", early_step);
    span->metric("threads", pool_size);
    span->metric("residual_bound", result.residual_bound);
  }
  return result;
}

std::vector<double> step_bounded_reachability(const Ctmdp& model, const BitVector& goal,
                                              std::uint64_t steps, Objective objective,
                                              unsigned threads, RunGuard* guard,
                                              Backend backend_option) {
  check_inputs(model, goal);
  const std::size_t n = model.num_states();
  const bool maximize = objective == Objective::Maximize;
  const Backend backend = resolve_backend(backend_option);

  if (backend == Backend::Serial) {
    const DiscreteKernel kernel(model, goal);

    std::vector<double> v(n, 0.0);
    std::vector<double> next(n, 0.0);
    for (StateId s = 0; s < n; ++s) v[s] = goal[s] ? 1.0 : 0.0;

    WorkerPool pool = make_worker_pool(threads, n);
    for (std::uint64_t step = 0; step < steps; ++step) {
      if (guard != nullptr) guard->check("step_bounded_reachability");
      pool.run(n, [&](unsigned, std::size_t begin, std::size_t end) {
        const double* q = v.data();
        for (StateId s = begin; s < end; ++s) {
          if (goal[s]) {
            next[s] = 1.0;
            continue;
          }
          const std::uint64_t first = kernel.state_first[s];
          const std::uint64_t last = kernel.state_first[s + 1];
          double best = first == last ? 0.0 : (maximize ? -1.0 : 2.0);
          for (std::uint64_t tr = first; tr < last; ++tr) {
            const double acc = kernel.transition_value(tr, 0.0, q);
            best = maximize ? std::max(best, acc) : std::min(best, acc);
          }
          next[s] = best;
        }
      });
      v.swap(next);
    }
    return v;
  }

  // Dense engine: goal states are pinned at 1.0 for every step, so the goal
  // iterate is the constant 1 and the psi weight is 0 — relax with
  // gval = 1.0 reproduces transition_value(tr, 0.0, q) with the goal mass
  // folded.
  const DenseKernel kernel(model, goal, BitVector{});
  const KernelOps& ops = kernel_ops(backend);
  const DenseKernelView view = kernel.view();
  const DenseBridge bridge{kernel, goal};
  const std::uint64_t rows = kernel.num_rows();

  std::vector<double> dq(rows, 0.0);
  std::vector<double> dnext(rows, 0.0);

  WorkerPool pool = make_worker_pool(threads, rows);
  for (std::uint64_t step = 0; step < steps; ++step) {
    if (guard != nullptr) guard->check("step_bounded_reachability");
    pool.run(rows, [&](unsigned, std::size_t begin, std::size_t end) {
      ops.relax_rows(view, 1.0, maximize, dq.data(), dnext.data(), nullptr, begin, end);
    });
    dq.swap(dnext);
  }

  std::vector<double> v(n, 0.0);
  bridge.materialize(dq, 1.0, v);
  return v;
}

}  // namespace unicon
