#include "ctmdp/reachability.hpp"

#include <algorithm>
#include <cmath>

#include "support/errors.hpp"
#include "support/fox_glynn.hpp"
#include "support/numerics.hpp"
#include "support/parallel.hpp"

namespace unicon {

namespace {

/// Flat, precomputed discrete kernel of the uniform CTMDP: the branching
/// probabilities Pr_R(s, s') = R(s') / E_R fused with their target columns,
/// per-transition entry ranges, per-state transition ranges, and the
/// per-transition goal mass Pr_R(s, B).  Built once per solve; the sweeps
/// then run on plain index arithmetic instead of re-deriving span offsets
/// from the model's entry storage each iteration (which also dereferenced
/// `rates(0)` as a base pointer — out of range on a model without
/// transitions).
struct DiscreteKernel {
  std::vector<std::uint64_t> state_first;  // per state: first transition index
  std::vector<std::uint64_t> entry_first;  // per transition: first prob/col index
  std::vector<double> prob;                // fused branching probabilities
  std::vector<std::uint32_t> col;          // fused target states
  std::vector<double> goal_pr;             // per transition

  DiscreteKernel(const Ctmdp& model, const std::vector<bool>& goal) {
    const std::size_t n = model.num_states();
    const std::size_t m = model.num_transitions();
    state_first.resize(n + 1);
    entry_first.resize(m + 1);
    prob.reserve(model.num_rate_entries());
    col.reserve(model.num_rate_entries());
    goal_pr.assign(m, 0.0);
    state_first[0] = 0;
    for (StateId s = 0; s < n; ++s) state_first[s + 1] = model.transition_range(s).second;
    for (std::uint64_t t = 0; t < m; ++t) {
      entry_first[t] = prob.size();
      const double e = model.exit_rate(t);
      double g = 0.0;
      for (const SparseEntry& entry : model.rates(t)) {
        const double p = entry.value / e;
        prob.push_back(p);
        col.push_back(entry.col);
        if (goal[entry.col]) g += p;
      }
      goal_pr[t] = g;
    }
    entry_first[m] = prob.size();
  }

  /// psi-weighted one-step value of transition @p tr against values @p q.
  double transition_value(std::uint64_t tr, double w, const double* q) const {
    double acc = w * goal_pr[tr];
    const std::uint64_t last = entry_first[tr + 1];
    for (std::uint64_t j = entry_first[tr]; j < last; ++j) acc += prob[j] * q[col[j]];
    return acc;
  }
};

void check_inputs(const Ctmdp& model, const std::vector<bool>& goal) {
  if (goal.size() != model.num_states()) {
    throw ModelError("timed_reachability: goal vector size mismatch");
  }
}

}  // namespace

TimedReachabilityResult timed_reachability(const Ctmdp& model, const std::vector<bool>& goal,
                                           double t, const TimedReachabilityOptions& options) {
  check_inputs(model, goal);
  if (t < 0.0) throw ModelError("timed_reachability: negative time bound");
  const auto uniform = model.uniform_rate(1e-6);
  if (!uniform) {
    throw UniformityError(
        "timed_reachability: model is not uniform; construct it uniformly or uniformize first");
  }
  const double e = *uniform;
  const std::size_t n = model.num_states();
  const bool maximize = options.objective == Objective::Maximize;

  TimedReachabilityResult result;
  result.uniform_rate = e;
  result.lambda = e * t;

  const PoissonWindow psi = PoissonWindow::compute(e * t, options.epsilon);
  const std::uint64_t k = psi.right();
  result.iterations_planned = k;

  if (!options.avoid.empty() && options.avoid.size() != n) {
    throw ModelError("timed_reachability: avoid vector size mismatch");
  }
  auto avoided = [&](StateId s) {
    return !options.avoid.empty() && options.avoid[s] && !goal[s];
  };

  const DiscreteKernel kernel(model, goal);

  const bool record_all_decisions =
      options.extract_scheduler &&
      k * static_cast<std::uint64_t>(n) <= options.max_decision_entries;
  if (options.extract_scheduler) {
    result.initial_decision.assign(n, kNoTransition);
    if (record_all_decisions) result.decisions.resize(k);
  }

  // q_next = q_{i+1}, q_cur = q_i.
  std::vector<double> q_next(n, 0.0);
  std::vector<double> q_cur(n, 0.0);
  std::vector<std::uint64_t> decision(options.extract_scheduler ? n : 0, kNoTransition);

  WorkerPool pool = make_worker_pool(options.threads, n);
  std::vector<WorkerPool::Slot> delta_slot(pool.size());

  std::uint64_t executed = 0;
  for (std::uint64_t i = k; i >= 1; --i) {
    const double w = psi.psi(i);
    pool.run(n, [&](unsigned worker, std::size_t begin, std::size_t end) {
      const double* q = q_next.data();
      double local_delta = 0.0;
      for (StateId s = begin; s < end; ++s) {
        if (goal[s]) {
          q_cur[s] = w + q[s];
          if (options.extract_scheduler) decision[s] = kNoTransition;
        } else if (avoided(s)) {
          q_cur[s] = 0.0;
          if (options.extract_scheduler) decision[s] = kNoTransition;
        } else {
          const std::uint64_t first = kernel.state_first[s];
          const std::uint64_t last = kernel.state_first[s + 1];
          double best = first == last ? 0.0 : (maximize ? -1.0 : 2.0);
          std::uint64_t best_t = kNoTransition;
          for (std::uint64_t tr = first; tr < last; ++tr) {
            const double acc = kernel.transition_value(tr, w, q);
            if (maximize ? acc > best : acc < best) {
              best = acc;
              best_t = tr;
            }
          }
          local_delta = std::max(local_delta, std::fabs(best - q[s]));
          q_cur[s] = best;
          if (options.extract_scheduler) decision[s] = best_t;
        }
      }
      delta_slot[worker].value = local_delta;
    });
    const double delta = WorkerPool::reduce_max(delta_slot);
    q_cur.swap(q_next);  // q_next now holds q_i for the next round
    ++executed;

    if (record_all_decisions) result.decisions[i - 1] = decision;
    if (options.extract_scheduler && i == 1) result.initial_decision = decision;

    if (options.early_termination && i > 1) {
      // Below the Poisson window no further psi mass arrives; once the
      // vector stops moving the remaining iterations are no-ops up to
      // early_termination_delta.
      if (i - 1 < psi.left() || psi.psi(i - 1) == 0.0) {
        if (delta <= options.early_termination_delta) {
          if (options.extract_scheduler) result.initial_decision = decision;
          break;
        }
      }
    }
  }
  result.iterations_executed = executed;

  result.values = std::move(q_next);
  for (StateId s = 0; s < n; ++s) {
    result.values[s] = goal[s] ? 1.0 : clamp01(result.values[s]);
  }
  return result;
}

TimedReachabilityResult evaluate_scheduler(const Ctmdp& model, const std::vector<bool>& goal,
                                           double t, const std::vector<std::uint64_t>& choice,
                                           const TimedReachabilityOptions& options) {
  check_inputs(model, goal);
  if (choice.size() != model.num_states()) {
    throw ModelError("evaluate_scheduler: choice vector size mismatch");
  }
  const auto uniform = model.uniform_rate(1e-6);
  if (!uniform) throw UniformityError("evaluate_scheduler: model is not uniform");
  const double e = *uniform;
  const std::size_t n = model.num_states();

  for (StateId s = 0; s < n; ++s) {
    if (goal[s]) continue;
    const auto [first, last] = model.transition_range(s);
    if (first == last) continue;
    if (choice[s] < first || choice[s] >= last) {
      throw ModelError("evaluate_scheduler: choice out of range for state");
    }
  }

  TimedReachabilityResult result;
  result.uniform_rate = e;
  result.lambda = e * t;
  const PoissonWindow psi = PoissonWindow::compute(e * t, options.epsilon);
  const std::uint64_t k = psi.right();
  result.iterations_planned = k;

  const DiscreteKernel kernel(model, goal);

  std::vector<double> q_next(n, 0.0);
  std::vector<double> q_cur(n, 0.0);

  WorkerPool pool = make_worker_pool(options.threads, n);
  std::vector<WorkerPool::Slot> delta_slot(pool.size());

  std::uint64_t executed = 0;
  for (std::uint64_t i = k; i >= 1; --i) {
    const double w = psi.psi(i);
    pool.run(n, [&](unsigned worker, std::size_t begin, std::size_t end) {
      const double* q = q_next.data();
      double local_delta = 0.0;
      for (StateId s = begin; s < end; ++s) {
        if (goal[s]) {
          q_cur[s] = w + q[s];
          continue;
        }
        if (kernel.state_first[s] == kernel.state_first[s + 1]) {
          q_cur[s] = 0.0;
          continue;
        }
        const double acc = kernel.transition_value(choice[s], w, q);
        local_delta = std::max(local_delta, std::fabs(acc - q[s]));
        q_cur[s] = acc;
      }
      delta_slot[worker].value = local_delta;
    });
    const double delta = WorkerPool::reduce_max(delta_slot);
    q_cur.swap(q_next);
    ++executed;
    if (options.early_termination && i > 1 && (i - 1 < psi.left() || psi.psi(i - 1) == 0.0) &&
        delta <= options.early_termination_delta) {
      break;
    }
  }
  result.iterations_executed = executed;
  result.values = std::move(q_next);
  for (StateId s = 0; s < n; ++s) {
    result.values[s] = goal[s] ? 1.0 : clamp01(result.values[s]);
  }
  return result;
}

std::vector<double> step_bounded_reachability(const Ctmdp& model, const std::vector<bool>& goal,
                                              std::uint64_t steps, Objective objective,
                                              unsigned threads) {
  check_inputs(model, goal);
  const std::size_t n = model.num_states();
  const bool maximize = objective == Objective::Maximize;
  const DiscreteKernel kernel(model, goal);

  std::vector<double> v(n, 0.0);
  std::vector<double> next(n, 0.0);
  for (StateId s = 0; s < n; ++s) v[s] = goal[s] ? 1.0 : 0.0;

  WorkerPool pool = make_worker_pool(threads, n);
  for (std::uint64_t step = 0; step < steps; ++step) {
    pool.run(n, [&](unsigned, std::size_t begin, std::size_t end) {
      const double* q = v.data();
      for (StateId s = begin; s < end; ++s) {
        if (goal[s]) {
          next[s] = 1.0;
          continue;
        }
        const std::uint64_t first = kernel.state_first[s];
        const std::uint64_t last = kernel.state_first[s + 1];
        double best = first == last ? 0.0 : (maximize ? -1.0 : 2.0);
        for (std::uint64_t tr = first; tr < last; ++tr) {
          const double acc = kernel.transition_value(tr, 0.0, q);
          best = maximize ? std::max(best, acc) : std::min(best, acc);
        }
        next[s] = best;
      }
    });
    v.swap(next);
  }
  return v;
}

}  // namespace unicon
