#include "ctmdp/reachability.hpp"

#include <algorithm>
#include <atomic>
#include <cmath>
#include <cstring>
#include <optional>
#include <string>

#include "ctmdp/backend.hpp"
#include "support/errors.hpp"
#include "support/fox_glynn.hpp"
#include "support/numerics.hpp"
#include "support/parallel.hpp"
#include "support/telemetry.hpp"

namespace unicon {

namespace {

void check_inputs(const Ctmdp& model, const BitVector& goal) {
  if (goal.size() != model.num_states()) {
    throw ModelError("timed_reachability: goal vector size mismatch");
  }
}

/// States checked per should_abort_sweep() probe inside a parallel sweep;
/// the strip-mined block structure leaves the per-state arithmetic (and
/// hence bit-identical results) untouched.  Sized so the probe (an atomic
/// load plus, with a deadline armed, a clock read) stays under ~2% of the
/// sweep cost while still stopping a sweep within tens of microseconds.
constexpr std::size_t kGuardBlock = 4096;

/// Sound per-state error bound when the backward iteration stops before
/// executing step index @p next_i, leaving the iterate q_{next_i+1} in hand.
/// Unrolling the recurrence, q_{next_i+1} weights the m-th future jump by
/// psi(m + next_i) where the completed iteration q_1 weights it by psi(m):
/// the partial iterate is a *shifted-weight* sum, not a truncated prefix,
/// so the naive "unconsumed mass" sum_{m <= next_i} psi(m) is NOT sound
/// (the fault-injection harness exhibits mid-run cancellations violating
/// it).  The per-scheduler deviation is bounded by the total weight
/// displacement plus the dropped window tail plus the outside-window
/// epsilon, capped at the trivial bound 1:
///   sum_{m=1}^{k-next_i} |psi(m) - psi(m+next_i)| + tail_mass(k-next_i+1)
///   + epsilon.
double partial_residual(const PoissonWindow& psi, std::uint64_t next_i, double epsilon) {
  if (next_i == 0) return epsilon;
  const std::uint64_t k = psi.right();
  double bound = epsilon + psi.tail_mass(k - next_i + 1);
  for (std::uint64_t m = 1; m + next_i <= k; ++m) {
    bound += std::abs(psi.psi(m) - psi.psi(m + next_i));
  }
  return std::min(bound, 1.0);
}

/// Pre-resolved per-worker row counters ("<prefix><worker>"), so the sweep
/// lambdas touch the registry lock-free: one relaxed fetch_add per worker
/// per sweep.  Empty (nullptr data) when telemetry is off.
std::vector<Counter*> worker_row_counters(Telemetry* telemetry, const std::string& prefix,
                                          unsigned workers) {
  std::vector<Counter*> out;
  if (telemetry == nullptr) return out;
  out.reserve(workers);
  for (unsigned w = 0; w < workers; ++w) {
    out.push_back(&telemetry->counter(prefix + std::to_string(w)));
  }
  return out;
}

void require_finite_values(const std::vector<double>& values, const char* where) {
  for (std::size_t s = 0; s < values.size(); ++s) {
    if (!std::isfinite(values[s])) {
      throw NumericError(std::string(where) + ": non-finite value in iterate at state " +
                         std::to_string(s));
    }
  }
}

/// The dense (simd) engine's bridge between its compacted iterate and the
/// full-state vectors of the external contract (checkpoint spans, resume
/// iterates, final values).  The dense iterate holds only the relaxed rows;
/// all goal states share the scalar goal value G (uniform by construction,
/// see DenseKernel's header comment) and avoided states are pinned 0.0.
struct DenseBridge {
  const DenseKernel& kernel;
  const BitVector& goal;

  /// full[s] = G for goal states, dq[row(s)] for dense states, 0 otherwise.
  void materialize(const std::vector<double>& dq, double goal_value,
                   std::vector<double>& full) const {
    const std::size_t n = kernel.dense_index.size();
    for (std::size_t s = 0; s < n; ++s) full[s] = goal[s] ? goal_value : 0.0;
    for (std::uint64_t r = 0; r < kernel.num_rows(); ++r) {
      full[kernel.dense_state[r]] = dq[r];
    }
  }

  /// Inverse of materialize on an externally writable full vector (resume
  /// input, post-checkpoint iterate).  The goal value is read back from the
  /// lowest-indexed goal state: the engine maintains the goal iterate as a
  /// single scalar, so a checkpoint writer that splits the goal states
  /// apart is collapsed onto that representative (the serial engine would
  /// propagate such a split per state; DESIGN.md Sec. 10 records this
  /// contract difference).
  double ingest(const std::vector<double>& full, std::vector<double>& dq) const {
    for (std::uint64_t r = 0; r < kernel.num_rows(); ++r) {
      dq[r] = full[kernel.dense_state[r]];
    }
    const std::size_t g0 = goal.next_set(0);
    return g0 == BitVector::npos ? 0.0 : full[g0];
  }

  /// Scatters a dense decision row (original transition ids) into a
  /// full-state row; goal/avoided states keep kNoTransition.
  std::vector<std::uint64_t> expand_decisions(const std::vector<std::uint64_t>& ddec) const {
    std::vector<std::uint64_t> full(kernel.dense_index.size(), kNoTransition);
    for (std::uint64_t r = 0; r < kernel.num_rows(); ++r) {
      full[kernel.dense_state[r]] = ddec[r];
    }
    return full;
  }
};

/// Bit-exact double comparison for the locking criterion.  `==` is not
/// enough: +0.0 == -0.0 compares true while the two buffers would hold
/// different bit patterns, breaking the no-copy invariant that a locked
/// row's value is identical in both double-buffers forever after.
bool same_bits(double a, double b) {
  std::uint64_t x = 0;
  std::uint64_t y = 0;
  std::memcpy(&x, &a, sizeof(x));
  std::memcpy(&y, &b, sizeof(y));
  return x == y;
}

/// NaN-latching max over per-worker slots.  WorkerPool::reduce_max drops
/// NaN (a > comparison); the survival sup must propagate it so a poisoned
/// certificate can never certify a stop.
double reduce_max_latch(const std::vector<WorkerPool::Slot>& slots) {
  double value = 0.0;
  for (const WorkerPool::Slot& slot : slots) {
    if (!(slot.value <= value)) value = slot.value;
  }
  return value;
}

/// Advances the Lyapunov survival iterate u <- N u over the serial kernel
/// and returns sup u.  N maximizes over every transition regardless of the
/// solve's objective: |opt_a f_a - opt_a g_a| <= max_a |f_a - g_a| for
/// both optimizations, so the max operator dominates the displacement
/// either one can propagate.  Goal/avoided entries stay exactly 0 (their
/// rows are pinned and u starts 0 there).
double survival_step_serial(const DiscreteKernel& kernel, const BitVector& goal,
                            const BitVector& avoid, WorkerPool& pool,
                            std::vector<WorkerPool::Slot>& slots, const std::vector<double>& u,
                            std::vector<double>& u_next) {
  pool.run(u.size(), [&](unsigned worker, std::size_t begin, std::size_t end) {
    const double* x = u.data();
    double local = 0.0;
    for (std::size_t s = begin; s < end; ++s) {
      if (goal[s] || (!avoid.empty() && avoid[s])) {
        u_next[s] = 0.0;
        continue;
      }
      const std::uint64_t first = kernel.state_first[s];
      const std::uint64_t last = kernel.state_first[s + 1];
      double best = 0.0;
      for (std::uint64_t tr = first; tr < last; ++tr) {
        const double acc = kernel.transition_value(tr, 0.0, x);
        if (!(acc <= best)) best = acc;  // NaN-latching
      }
      u_next[s] = best;
      if (!(best <= local)) local = best;
    }
    slots[worker].value = local;
  });
  return reduce_max_latch(slots);
}

/// Dense-engine survival step: relax with zero goal weight, always
/// maximizing, then sup-reduce the advanced iterate (relax_rows reports a
/// delta, not a sup, hence the explicit pass).
double survival_step_dense(const KernelOps& ops, const DenseKernelView& view, WorkerPool& pool,
                           std::vector<WorkerPool::Slot>& slots, const std::vector<double>& u,
                           std::vector<double>& u_next) {
  pool.run(u.size(), [&](unsigned worker, std::size_t begin, std::size_t end) {
    if (begin < end) {
      ops.relax_rows(view, 0.0, true, u.data(), u_next.data(), nullptr, begin, end);
    }
    double local = 0.0;
    for (std::size_t r = begin; r < end; ++r) {
      if (!(u_next[r] <= local)) local = u_next[r];
    }
    slots[worker].value = local;
  });
  return reduce_max_latch(slots);
}

/// Closure half of the locking criterion for a serial row: every successor
/// lies in locked or is the row itself.  Together with bitwise value
/// equality (and a zero Poisson weight below the window) the row's next
/// relaxation provably reproduces the same bits, so it can be skipped.
bool serial_row_closed(const DiscreteKernel& kernel, const BitVector& locked, StateId s) {
  const std::uint64_t t_first = kernel.state_first[s];
  const std::uint64_t t_last = kernel.state_first[s + 1];
  for (std::uint64_t tr = t_first; tr < t_last; ++tr) {
    const std::uint64_t last = kernel.entry_first[tr + 1];
    for (std::uint64_t j = kernel.entry_first[tr]; j < last; ++j) {
      const std::uint32_t c = kernel.col[j];
      if (c != s && !locked[c]) return false;
    }
  }
  return true;
}

/// Dense-row variant of serial_row_closed (columns are dense indices).
bool dense_row_closed(const DenseKernelView& view, const BitVector& locked, std::size_t r) {
  const std::uint64_t t_first = view.row_first[r];
  const std::uint64_t t_last = view.row_first[r + 1];
  for (std::uint64_t tr = t_first; tr < t_last; ++tr) {
    const std::uint64_t last = view.entry_first[tr + 1];
    for (std::uint64_t j = view.entry_first[tr]; j < last; ++j) {
      const std::uint32_t c = view.col[j];
      if (c != r && !locked[c]) return false;
    }
  }
  return true;
}

/// Relaxes the unlocked rows of [blk, blk_end), splitting the block around
/// locked runs — skipped rows get no writes at all (the no-copy invariant
/// keeps both buffers on their frozen bits) and contribute exactly 0 to
/// the delta.  Per-row results are unchanged by the split: the kernels
/// process rows independently, exactly as the existing guard blocks and
/// worker partitions already assume.  When @p cand is non-null (a
/// below-window sweep with locking on), rows meeting the locking criterion
/// are appended for the post-barrier application.
double relax_dense_block(const KernelOps& ops, const DenseKernelView& view, double gval,
                         bool maximize, const double* q, double* out, std::uint64_t* dec,
                         std::size_t blk, std::size_t blk_end, const BitVector* locked,
                         std::vector<StateId>* cand, std::uint64_t& swept) {
  double local = 0.0;
  std::size_t r = blk;
  while (r < blk_end) {
    if (locked != nullptr && (*locked)[r]) {
      ++r;
      continue;
    }
    std::size_t run_end = r + 1;
    if (locked != nullptr) {
      while (run_end < blk_end && !(*locked)[run_end]) ++run_end;
    } else {
      run_end = blk_end;
    }
    const double d = ops.relax_rows(view, gval, maximize, q, out, dec, r, run_end);
    if (!(d <= local)) local = d;  // NaN-capturing max
    swept += run_end - r;
    if (cand != nullptr) {
      for (std::size_t x = r; x < run_end; ++x) {
        if (same_bits(out[x], q[x]) && dense_row_closed(view, *locked, x)) {
          cand->push_back(static_cast<StateId>(x));
        }
      }
    }
    r = run_end;
  }
  return local;
}

}  // namespace

TimedReachabilityResult timed_reachability(const Ctmdp& model, const BitVector& goal,
                                           double t, const TimedReachabilityOptions& options) {
  check_inputs(model, goal);
  if (t < 0.0) throw ModelError("timed_reachability: negative time bound");
  const auto uniform = model.uniform_rate(1e-6);
  if (!uniform) {
    throw UniformityError(
        "timed_reachability: model is not uniform; construct it uniformly or uniformize first");
  }
  const double e = *uniform;
  const std::size_t n = model.num_states();
  const bool maximize = options.objective == Objective::Maximize;
  const Backend backend = resolve_backend(options.backend);

  TimedReachabilityResult result;
  result.uniform_rate = e;
  result.lambda = e * t;

  std::optional<Telemetry::Span> span;
  if (options.telemetry != nullptr) span.emplace(options.telemetry->span("reachability"));

  // Truncation policy (DESIGN.md Sec. 14).  extract_scheduler pins the
  // pure Fox-Glynn schedule: the decision table must hold one faithful row
  // per planned step, which a certified stop would leave unfilled.
  const TruncationPlan plan = plan_truncation(
      options.extract_scheduler ? Truncation::FoxGlynn : options.truncation, e * t,
      options.epsilon);
  const PoissonWindow& psi = plan.window;
  const std::uint64_t k = psi.right();
  result.iterations_planned = k;
  result.truncation = plan.resolved;

  if (!options.avoid.empty() && options.avoid.size() != n) {
    throw ModelError("timed_reachability: avoid vector size mismatch");
  }
  auto avoided = [&](StateId s) {
    return !options.avoid.empty() && options.avoid[s] && !goal[s];
  };

  // The product k * n can overflow for pathological horizons (k grows with
  // lambda without bound); a wrapped product below the cap would commit to
  // allocating the astronomically large true table, so saturate instead.
  const bool record_all_decisions =
      options.extract_scheduler &&
      saturating_mul(k, static_cast<std::uint64_t>(n)) <= options.max_decision_entries;
  if (options.extract_scheduler) {
    result.initial_decision.assign(n, kNoTransition);
    if (record_all_decisions) result.decisions.resize(k);
  }

  RunGuard* const guard = options.guard;
  std::uint64_t executed = 0;
  std::uint64_t start_i = k;
  if (options.resume != nullptr) {
    const TimedReachabilityResult& prior = *options.resume;
    if (prior.status == RunStatus::Converged || prior.iterate.size() != n) {
      throw ModelError("timed_reachability: resume requires a partial result for this model");
    }
    if (prior.iterations_planned != k || prior.iterations_executed >= k) {
      throw ModelError("timed_reachability: resume horizon mismatch (model, t or epsilon changed)");
    }
    executed = prior.iterations_executed;
    start_i = k - executed;
    // The steps the prior run already executed recorded their decision rows
    // into its partial result; a resumed run only sweeps i = start_i..1, so
    // without this merge the resumed scheduler artifact would silently lose
    // every pre-interruption row (indices [start_i, k)) and disagree with
    // an uninterrupted run.
    if (record_all_decisions && prior.decisions.size() == k) {
      for (std::uint64_t j = start_i; j < k; ++j) result.decisions[j] = prior.decisions[j];
    }
  }

  std::atomic<bool> sweep_aborted{false};
  bool stopped = false;
  bool early_fired = false;
  std::uint64_t early_step = 0;
  unsigned pool_size = 0;

  if (backend == Backend::Serial) {
    // ---- Serial engine: the historical flat sweep, bit-identical to the
    // pre-backend solver (strictly sequential per-transition accumulation).
    std::optional<DiscreteKernel> own_kernel;
    if (options.discrete_kernel == nullptr) own_kernel.emplace(model, goal);
    const DiscreteKernel& kernel =
        options.discrete_kernel != nullptr ? *options.discrete_kernel : *own_kernel;
    if (kernel.state_first.size() != n + 1) {
      throw ModelError("timed_reachability: injected discrete kernel does not fit the model");
    }

    // q_next = q_{i+1}, q_cur = q_i.
    std::vector<double> q_next(n, 0.0);
    std::vector<double> q_cur(n, 0.0);
    std::vector<std::uint64_t> decision(options.extract_scheduler ? n : 0, kNoTransition);
    if (options.resume != nullptr) {
      q_next = options.resume->iterate;
      // A resume iterate is external input just like a checkpoint write; a
      // non-finite entry would corrupt the result without tripping the
      // per-sweep delta check (see the checkpoint validation below).
      require_finite_values(q_next, "timed_reachability resume");
    }

    WorkerPool pool = make_worker_pool(options.threads, n);
    pool_size = pool.size();
    std::vector<WorkerPool::Slot> delta_slot(pool.size());
    const std::vector<Counter*> row_counters =
        worker_row_counters(options.telemetry, "reachability.rows.worker", pool.size());
    Counter* const* const rows_out = row_counters.empty() ? nullptr : row_counters.data();

    // On-the-fly convergence locking (DESIGN.md Sec. 14): below the window
    // a row whose value came back bit-identical with every successor
    // already locked is an exact fixpoint of its own update.  At lock time
    // both double-buffers hold the same bits, so skipped rows need no
    // copies, contribute exactly 0 to the sweep delta, and reported values
    // are bit-identical with locking on or off.  Candidates are staged
    // per worker and applied after the barrier, so the locked set is a
    // deterministic function of the iterate for every thread count.
    const bool locking = options.locking && !options.extract_scheduler;
    BitVector locked;
    std::size_t locked_count = 0;
    std::vector<std::vector<StateId>> cand;
    if (locking) {
      locked.assign(n, false);
      cand.resize(pool.size());
    }
    std::vector<std::uint64_t> upd_slots(pool.size() * std::size_t{8}, 0);

    // Lyapunov certificate (engaged plans only): survival iterate u and
    // its scalar contraction record.
    LyapunovSeries series(plan.stop_epsilon);
    bool cert_active = plan.engaged();
    bool lyap_fired = false;
    double lyap_error = 0.0;
    std::vector<double> u;
    std::vector<double> u_next;
    std::vector<WorkerPool::Slot> u_slot;
    if (cert_active) {
      u.assign(n, 0.0);
      u_next.assign(n, 0.0);
      for (StateId s = 0; s < n; ++s) u[s] = (goal[s] || avoided(s)) ? 0.0 : 1.0;
      u_slot.resize(pool.size());
      // Resume catch-up: replay the ages an uninterrupted run would have
      // recorded by now, so a resumed run reaches every stop decision at
      // the identical step (the record is a pure function of the kernel).
      // The probe cap bounds the replay on non-contracting models.
      const std::uint64_t replay = psi.left() > start_i + 1 ? psi.left() - start_i - 1 : 0;
      for (std::uint64_t j = 0; j < replay && cert_active; ++j) {
        series.record(survival_step_serial(kernel, goal, options.avoid, pool, u_slot, u, u_next));
        u.swap(u_next);
        if (series.should_disengage(series.size())) {
          cert_active = false;
          u = std::vector<double>();
          u_next = std::vector<double>();
        }
      }
    }

    for (std::uint64_t i = start_i; i >= 1; --i) {
      if (guard != nullptr && guard->poll() != RunStatus::Converged) {
        stopped = true;
        result.residual_bound = partial_residual(psi, i, plan.window_epsilon);
        break;
      }
      const double w = psi.psi(i);
      // Candidacy only below the window: there w == 0, so a row's update
      // no longer depends on the step index and bitwise-stable means
      // stable forever.
      const bool lock_sweep = locking && i < psi.left();
      pool.run(n, [&](unsigned worker, std::size_t begin, std::size_t end) {
        const double* q = q_next.data();
        double local_delta = 0.0;
        std::uint64_t rows = 0;
        std::vector<StateId>* const my_cand = lock_sweep ? &cand[worker] : nullptr;
        for (std::size_t blk = begin; blk < end; blk += kGuardBlock) {
          if (guard != nullptr && guard->should_abort_sweep()) {
            sweep_aborted.store(true, std::memory_order_relaxed);
            break;
          }
          const std::size_t blk_end = std::min(end, blk + kGuardBlock);
          for (StateId s = blk; s < blk_end; ++s) {
            if (locked_count != 0 && locked[s]) continue;  // frozen: both buffers agree
            ++rows;
            if (goal[s]) {
              q_cur[s] = w + q[s];
              if (options.extract_scheduler) decision[s] = kNoTransition;
              if (my_cand != nullptr && same_bits(q_cur[s], q[s])) my_cand->push_back(s);
            } else if (avoided(s)) {
              q_cur[s] = 0.0;
              if (options.extract_scheduler) decision[s] = kNoTransition;
              if (my_cand != nullptr && same_bits(0.0, q[s])) my_cand->push_back(s);
            } else {
              const std::uint64_t first = kernel.state_first[s];
              const std::uint64_t last = kernel.state_first[s + 1];
              double best = first == last ? 0.0 : (maximize ? -1.0 : 2.0);
              std::uint64_t best_t = kNoTransition;
              for (std::uint64_t tr = first; tr < last; ++tr) {
                const double acc = kernel.transition_value(tr, w, q);
                if (maximize ? acc > best : acc < best) {
                  best = acc;
                  best_t = tr;
                }
              }
              // NaN-capturing max: identical to std::max for finite deltas
              // (bit-identical results) but latches NaN, which std::max
              // would silently drop.
              const double dev = std::fabs(best - q[s]);
              if (!(dev <= local_delta)) local_delta = dev;
              q_cur[s] = best;
              if (options.extract_scheduler) decision[s] = best_t;
              if (my_cand != nullptr && same_bits(best, q[s]) &&
                  serial_row_closed(kernel, locked, s)) {
                my_cand->push_back(s);
              }
            }
          }
        }
        delta_slot[worker].value = local_delta;
        upd_slots[worker * std::size_t{8}] += rows;
        if (rows_out != nullptr) rows_out[worker]->add(rows);
      });
      if (guard != nullptr && sweep_aborted.load(std::memory_order_relaxed)) {
        // The sweep for step i was abandoned mid-flight: q_cur is partially
        // written, so the partial result is the last *completed* iterate in
        // q_next and step i counts as unconsumed.
        stopped = true;
        result.residual_bound = partial_residual(psi, i, plan.window_epsilon);
        break;
      }
      const double delta = WorkerPool::reduce_max(delta_slot);
      if (!std::isfinite(delta)) {
        throw NumericError("timed_reachability: non-finite update at step " + std::to_string(i) +
                           " (NaN/Inf reached the iterate)");
      }
      q_cur.swap(q_next);  // q_next now holds q_i for the next round
      ++executed;

      if (lock_sweep) {
        // Applied only after the barrier and the NaN check: candidacy was
        // judged against the pre-sweep locked set on every worker, so the
        // resulting set is identical for every thread count.
        for (std::vector<StateId>& c : cand) {
          for (const StateId s : c) locked.set(s);
          locked_count += c.size();
          c.clear();
        }
      }

      if (record_all_decisions) result.decisions[i - 1] = decision;
      if (options.extract_scheduler && i == 1) result.initial_decision = decision;

      if (guard != nullptr && guard->wants_checkpoint(executed)) {
        guard->checkpoint("timed_reachability", executed, k,
                          partial_residual(psi, i - 1, plan.window_epsilon),
                          std::span<double>(q_next.data(), q_next.size()));
        // The callback writes through the span (checkpoint persistence, fault
        // injection), so the iterate is untrusted on return.  A non-finite
        // entry would be silently dropped by the action comparisons above —
        // NaN compares false both ways — leaving finite wrong values, so it
        // must be rejected here at the trust boundary.
        require_finite_values(q_next, "timed_reachability checkpoint");
        // The writer may also have changed a locked row, whose twin buffer
        // would then be stale — drop every lock and let candidacy
        // re-establish them from the (possibly rewritten) iterate.
        if (locked_count != 0) {
          locked.assign(n, false);
          locked_count = 0;
        }
      }

      if (options.early_termination && i > 1) {
        // Below the Poisson window no further psi mass arrives; once the
        // vector stops moving the remaining iterations are no-ops up to
        // early_termination_delta.  Gate on the window bound only: inside
        // the window every stored weight is strictly positive by
        // construction (PoissonWindow::compute throws at the underflow
        // frontier), so a psi(i-1) == 0.0 test is at best redundant — and
        // if an interior weight ever *could* underflow, firing on it would
        // silently skip steps that still carry mass, widening the achieved
        // epsilon without being reported in residual_bound.
        if (i - 1 < psi.left()) {
          if (delta <= options.early_termination_delta) {
            if (options.extract_scheduler) result.initial_decision = decision;
            early_fired = true;
            early_step = i;
            break;
          }
        }
      }

      // Exact fixpoint below the window: delta == 0 means q_i and q_{i+1}
      // are bit-identical, and with w == 0 every remaining sweep applies
      // the same operator to the same vector — provable no-ops.  Zero
      // extra error, so the converged residual stays untouched.
      if (locking && i > 1 && i <= psi.left() && delta == 0.0) {
        result.exact_fixpoint = true;
        break;
      }

      // Lyapunov certificate: advance the survival iterate, and below the
      // window test whether the forfeited tail delta * series_bound fits
      // under stop_epsilon.  i == 1 is excluded (nothing left to skip).
      if (cert_active && i > 1 && i < psi.left()) {
        series.record(survival_step_serial(kernel, goal, options.avoid, pool, u_slot, u, u_next));
        u.swap(u_next);
        const std::uint64_t age = psi.left() - i;
        if (series.should_disengage(age)) {
          cert_active = false;
          u = std::vector<double>();
          u_next = std::vector<double>();
        } else if (series.certifies(delta, age)) {
          lyap_fired = true;
          lyap_error = series.stop_error(delta, age);
          result.k_lyapunov = executed;
          break;
        }
      }
    }
    result.iterations_executed = executed;
    result.state_updates = 0;
    for (std::size_t wkr = 0; wkr < pool.size(); ++wkr) {
      result.state_updates += upd_slots[wkr * std::size_t{8}];
    }
    result.locked_final = locked_count;

    if (stopped) {
      result.status = guard->status();
      result.iterate = q_next;  // raw iterate, resumable
    } else if (lyap_fired) {
      result.residual_bound = plan.window_epsilon + lyap_error;
    } else {
      result.residual_bound =
          plan.window_epsilon + (early_fired ? options.early_termination_delta : 0.0);
    }

    require_finite_values(q_next, "timed_reachability");
    result.values = std::move(q_next);
  } else {
    // ---- Dense (simd) engine: sweep only the non-goal, non-avoided rows
    // with the branching mass into B folded into the scalar goal iterate
    // G_i = psi(i) + G_{i+1} (see DenseKernel).  Same guard blocks,
    // checkpoint points and delta semantics as the serial engine; the
    // external contract (checkpoint spans, resume iterates) stays in
    // full-state vectors via DenseBridge, so partial results interoperate
    // across backends.
    std::optional<DenseKernel> own_kernel;
    if (options.dense_kernel == nullptr) own_kernel.emplace(model, goal, options.avoid);
    const DenseKernel& kernel =
        options.dense_kernel != nullptr ? *options.dense_kernel : *own_kernel;
    if (kernel.dense_index.size() != n) {
      throw ModelError("timed_reachability: injected dense kernel does not fit the model");
    }
    const KernelOps& ops = kernel_ops(backend);
    const DenseKernelView view = kernel.view();
    const DenseBridge bridge{kernel, goal};
    const std::uint64_t rows = kernel.num_rows();

    std::vector<double> dq_next(rows, 0.0);
    std::vector<double> dq_cur(rows, 0.0);
    std::vector<std::uint64_t> ddec(options.extract_scheduler ? rows : 0, kNoTransition);
    std::uint64_t* const ddec_ptr = options.extract_scheduler ? ddec.data() : nullptr;
    std::vector<double> q_full(n, 0.0);
    double goal_value = 0.0;  // G_{i+1}, starting from q_{k+1} = 0

    if (options.resume != nullptr) {
      q_full = options.resume->iterate;
      require_finite_values(q_full, "timed_reachability resume");
      goal_value = bridge.ingest(q_full, dq_next);
    }

    WorkerPool pool = make_worker_pool(options.threads, rows);
    pool_size = pool.size();
    std::vector<WorkerPool::Slot> delta_slot(pool.size());
    const std::vector<Counter*> row_counters =
        worker_row_counters(options.telemetry, "reachability.rows.worker", pool.size());
    Counter* const* const rows_out = row_counters.empty() ? nullptr : row_counters.data();

    // Locking + certificate state over *dense* rows; same invariants as the
    // serial engine (goal/avoided rows are not materialized here, so the
    // big goal-plateau freeze is a serial-engine property — dense already
    // never sweeps those rows).  Below the window the folded goal value
    // G_i stays constant (psi == 0), so bitwise-stable closed rows are
    // exact fixpoints of their relaxation.
    const bool locking = options.locking && !options.extract_scheduler;
    BitVector locked;
    std::size_t locked_count = 0;
    std::vector<std::vector<StateId>> cand;
    if (locking) {
      locked.assign(rows, false);
      cand.resize(pool.size());
    }
    std::vector<std::uint64_t> upd_slots(pool.size() * std::size_t{8}, 0);

    LyapunovSeries series(plan.stop_epsilon);
    bool cert_active = plan.engaged();
    bool lyap_fired = false;
    double lyap_error = 0.0;
    std::vector<double> u;
    std::vector<double> u_next;
    std::vector<WorkerPool::Slot> u_slot;
    if (cert_active) {
      u.assign(rows, 1.0);  // dense rows are exactly the non-goal, non-avoided states
      u_next.assign(rows, 0.0);
      u_slot.resize(pool.size());
      const std::uint64_t replay = psi.left() > start_i + 1 ? psi.left() - start_i - 1 : 0;
      for (std::uint64_t j = 0; j < replay && cert_active; ++j) {
        series.record(survival_step_dense(ops, view, pool, u_slot, u, u_next));
        u.swap(u_next);
        if (series.should_disengage(series.size())) {
          cert_active = false;
          u = std::vector<double>();
          u_next = std::vector<double>();
        }
      }
    }

    for (std::uint64_t i = start_i; i >= 1; --i) {
      if (guard != nullptr && guard->poll() != RunStatus::Converged) {
        stopped = true;
        result.residual_bound = partial_residual(psi, i, plan.window_epsilon);
        break;
      }
      const double gi = psi.psi(i) + goal_value;  // G_i, the goal value of q_i
      const bool lock_sweep = locking && i < psi.left();
      pool.run(rows, [&](unsigned worker, std::size_t begin, std::size_t end) {
        const double* q = dq_next.data();
        double local_delta = 0.0;
        std::uint64_t swept = 0;
        const BitVector* const lockp = locked_count != 0 || lock_sweep ? &locked : nullptr;
        std::vector<StateId>* const my_cand = lock_sweep ? &cand[worker] : nullptr;
        for (std::size_t blk = begin; blk < end; blk += kGuardBlock) {
          if (guard != nullptr && guard->should_abort_sweep()) {
            sweep_aborted.store(true, std::memory_order_relaxed);
            break;
          }
          const std::size_t blk_end = std::min(end, blk + kGuardBlock);
          double d;
          if (lockp != nullptr) {
            d = relax_dense_block(ops, view, gi, maximize, q, dq_cur.data(), ddec_ptr, blk,
                                  blk_end, lockp, my_cand, swept);
          } else {
            swept += blk_end - blk;
            d = ops.relax_rows(view, gi, maximize, q, dq_cur.data(), ddec_ptr, blk, blk_end);
          }
          if (!(d <= local_delta)) local_delta = d;  // NaN-capturing max
        }
        delta_slot[worker].value = local_delta;
        upd_slots[worker * std::size_t{8}] += swept;
        if (rows_out != nullptr) rows_out[worker]->add(swept);
      });
      if (guard != nullptr && sweep_aborted.load(std::memory_order_relaxed)) {
        stopped = true;
        result.residual_bound = partial_residual(psi, i, plan.window_epsilon);
        break;
      }
      const double delta = WorkerPool::reduce_max(delta_slot);
      if (!std::isfinite(delta)) {
        throw NumericError("timed_reachability: non-finite update at step " + std::to_string(i) +
                           " (NaN/Inf reached the iterate)");
      }
      dq_cur.swap(dq_next);
      goal_value = gi;
      ++executed;

      if (lock_sweep) {
        for (std::vector<StateId>& c : cand) {
          for (const StateId s : c) locked.set(s);
          locked_count += c.size();
          c.clear();
        }
      }

      if (record_all_decisions) result.decisions[i - 1] = bridge.expand_decisions(ddec);
      if (options.extract_scheduler && i == 1) {
        result.initial_decision = bridge.expand_decisions(ddec);
      }

      if (guard != nullptr && guard->wants_checkpoint(executed)) {
        bridge.materialize(dq_next, goal_value, q_full);
        guard->checkpoint("timed_reachability", executed, k,
                          partial_residual(psi, i - 1, plan.window_epsilon),
                          std::span<double>(q_full.data(), q_full.size()));
        // Same trust boundary as the serial engine: the span is writable by
        // external code, so validate and re-ingest whatever came back.
        require_finite_values(q_full, "timed_reachability checkpoint");
        goal_value = bridge.ingest(q_full, dq_next);
        // Re-ingesting rewrites dq_next wholesale, so every lock's
        // both-buffers-agree invariant is void — drop them all.
        if (locked_count != 0) {
          locked.assign(rows, false);
          locked_count = 0;
        }
      }

      // Window-bound-only gate; see the serial engine for why psi == 0 must
      // not participate.
      if (options.early_termination && i > 1 && i - 1 < psi.left() &&
          delta <= options.early_termination_delta) {
        if (options.extract_scheduler) result.initial_decision = bridge.expand_decisions(ddec);
        early_fired = true;
        early_step = i;
        break;
      }

      // Exact fixpoint / Lyapunov certificate — same derivations as the
      // serial engine (below the window G stays constant, so the dense
      // relaxation is the same operator every remaining sweep).
      if (locking && i > 1 && i <= psi.left() && delta == 0.0) {
        result.exact_fixpoint = true;
        break;
      }
      if (cert_active && i > 1 && i < psi.left()) {
        series.record(survival_step_dense(ops, view, pool, u_slot, u, u_next));
        u.swap(u_next);
        const std::uint64_t age = psi.left() - i;
        if (series.should_disengage(age)) {
          cert_active = false;
          u = std::vector<double>();
          u_next = std::vector<double>();
        } else if (series.certifies(delta, age)) {
          lyap_fired = true;
          lyap_error = series.stop_error(delta, age);
          result.k_lyapunov = executed;
          break;
        }
      }
    }
    result.iterations_executed = executed;
    result.state_updates = 0;
    for (std::size_t wkr = 0; wkr < pool.size(); ++wkr) {
      result.state_updates += upd_slots[wkr * std::size_t{8}];
    }
    result.locked_final = locked_count;

    bridge.materialize(dq_next, goal_value, q_full);
    if (stopped) {
      result.status = guard->status();
      result.iterate = q_full;  // full-state raw iterate, resumable by any backend
    } else if (lyap_fired) {
      result.residual_bound = plan.window_epsilon + lyap_error;
    } else {
      result.residual_bound =
          plan.window_epsilon + (early_fired ? options.early_termination_delta : 0.0);
    }

    require_finite_values(q_full, "timed_reachability");
    result.values = std::move(q_full);
    if (span) span->metric("dense_rows", rows);
  }

  for (StateId s = 0; s < n; ++s) {
    result.values[s] = goal[s] ? 1.0 : clamp01(result.values[s]);
  }
  if (span) {
    span->metric("states", n);
    span->metric("transitions", model.num_transitions());
    span->metric("uniform_rate", e);
    span->metric("lambda", result.lambda);
    span->metric("poisson_left", psi.left());
    span->metric("poisson_right", k);
    span->metric("poisson_width", k - psi.left() + 1);
    span->metric("iterations_planned", k);
    span->metric("iterations_executed", executed);
    span->metric("early_termination_step", early_step);
    span->metric("threads", pool_size);
    span->metric("residual_bound", result.residual_bound);
    span->metric("truncation.k_fox_glynn", plan.fox_glynn_right);
    span->metric("truncation.k_effective", executed);
    span->metric("truncation.k_lyapunov", result.k_lyapunov);
    span->metric("truncation.locked_final", result.locked_final);
    span->metric("truncation.state_updates", result.state_updates);
  }
  return result;
}

std::vector<TimedReachabilityResult> timed_reachability_batch(
    const Ctmdp& model, const BitVector& goal, const std::vector<double>& times,
    const TimedReachabilityOptions& options) {
  check_inputs(model, goal);
  if (options.resume != nullptr) {
    throw ModelError(
        "timed_reachability_batch: resume is not supported for batch solves; resume the "
        "interrupted horizon via timed_reachability");
  }
  for (const double t : times) {
    if (!(t >= 0.0)) throw ModelError("timed_reachability_batch: negative time bound");
  }
  const auto uniform = model.uniform_rate(1e-6);
  if (!uniform) {
    throw UniformityError(
        "timed_reachability_batch: model is not uniform; construct it uniformly or uniformize "
        "first");
  }
  const double e = *uniform;
  const std::size_t n = model.num_states();
  const bool maximize = options.objective == Objective::Maximize;
  const Backend backend = resolve_backend(options.backend);
  if (!options.avoid.empty() && options.avoid.size() != n) {
    throw ModelError("timed_reachability_batch: avoid vector size mismatch");
  }
  auto avoided = [&](StateId s) {
    return !options.avoid.empty() && options.avoid[s] && !goal[s];
  };

  const std::size_t num_horizons = times.size();
  std::vector<TimedReachabilityResult> results(num_horizons);
  if (num_horizons == 0) return results;

  std::optional<Telemetry::Span> span;
  if (options.telemetry != nullptr) span.emplace(options.telemetry->span("reachability_batch"));

  // Every horizon keeps its own window and iterate: the iterate of a larger
  // horizon is *not* reusable for a smaller one (it weights the m-th future
  // jump by psi(m + i, lambda_max) where the smaller bound needs
  // psi(m, lambda_j) — a shifted-weight sum, the same observation behind
  // partial_residual above).  What the batch shares is everything around
  // the per-horizon arithmetic: the kernel (built and streamed once per
  // block for all active horizons), the worker pool, and the guard.
  struct Horizon {
    std::size_t idx = 0;  // position in `times` (and the delta-slot index)
    PoissonWindow psi;
    std::uint64_t k = 0;
    bool record_all = false;
    bool done = false;
    bool early_fired = false;
    std::uint64_t early_step = 0;
    std::uint64_t executed = 0;
    double weight = 0.0;      // serial: psi(g); dense: G_g
    double goal_value = 0.0;  // dense engine: G_{g+1}
    std::vector<double> q_next, q_cur;    // per-horizon iterates
    std::vector<std::uint64_t> decision;  // per-sweep scheduler scratch
    // Per-horizon truncation plan (each horizon has its own window and may
    // or may not engage the certificate) — see DESIGN.md Sec. 14.
    double window_epsilon = 0.0;
    std::uint64_t fox_glynn_right = 0;
    bool engaged = false;
    bool cert_ok = true;  // certificate still live for this horizon
    bool lyap_fired = false;
    double lyap_error = 0.0;
    bool fixpoint = false;
    // Per-horizon locking state (each horizon has its own iterate, hence
    // its own frozen set).
    BitVector locked;
    std::size_t locked_count = 0;
    std::vector<std::vector<StateId>> cand;  // per-worker staging
  };

  std::vector<Horizon> horizons(num_horizons);
  std::uint64_t k_max = 0;
  for (std::size_t j = 0; j < num_horizons; ++j) {
    Horizon& h = horizons[j];
    h.idx = j;
    const TruncationPlan hplan = plan_truncation(
        options.extract_scheduler ? Truncation::FoxGlynn : options.truncation, e * times[j],
        options.epsilon);
    h.psi = hplan.window;
    h.k = h.psi.right();
    h.window_epsilon = hplan.window_epsilon;
    h.fox_glynn_right = hplan.fox_glynn_right;
    h.engaged = hplan.engaged();
    results[j].truncation = hplan.resolved;
    k_max = std::max(k_max, h.k);
    h.record_all =
        options.extract_scheduler &&
        saturating_mul(h.k, static_cast<std::uint64_t>(n)) <= options.max_decision_entries;
    TimedReachabilityResult& r = results[j];
    r.uniform_rate = e;
    r.lambda = e * times[j];
    r.iterations_planned = h.k;
    if (options.extract_scheduler) {
      r.initial_decision.assign(n, kNoTransition);
      if (h.record_all) r.decisions.resize(h.k);
    }
  }

  // Bottom-aligned fusion: all horizons end at step 1 together, so horizon
  // j participates in global steps g = k_j .. 1 and its local step index
  // *is* g — its per-state operation sequence is exactly its single-t
  // run's.  Descending-k order makes the set of started horizons a prefix.
  std::vector<Horizon*> by_k(num_horizons);
  for (std::size_t j = 0; j < num_horizons; ++j) by_k[j] = &horizons[j];
  std::stable_sort(by_k.begin(), by_k.end(),
                   [](const Horizon* a, const Horizon* b) { return a->k > b->k; });

  RunGuard* const guard = options.guard;
  std::atomic<bool> sweep_aborted{false};
  bool stopped = false;
  std::uint64_t stop_step = 0;
  unsigned pool_size = 0;
  std::vector<Horizon*> active;
  active.reserve(num_horizons);

  if (backend == Backend::Serial) {
    std::optional<DiscreteKernel> own_kernel;
    if (options.discrete_kernel == nullptr) own_kernel.emplace(model, goal);
    const DiscreteKernel& kernel =
        options.discrete_kernel != nullptr ? *options.discrete_kernel : *own_kernel;
    if (kernel.state_first.size() != n + 1) {
      throw ModelError("timed_reachability_batch: injected discrete kernel does not fit the model");
    }

    for (Horizon& h : horizons) {
      h.q_next.assign(n, 0.0);
      h.q_cur.assign(n, 0.0);
      if (options.extract_scheduler) h.decision.assign(n, kNoTransition);
    }

    WorkerPool pool = make_worker_pool(options.threads, n);
    pool_size = pool.size();
    std::vector<std::vector<WorkerPool::Slot>> delta_slot(num_horizons);
    for (auto& slots : delta_slot) slots.resize(pool.size());
    const std::vector<Counter*> row_counters =
        worker_row_counters(options.telemetry, "reachability.rows.worker", pool.size());
    Counter* const* const rows_out = row_counters.empty() ? nullptr : row_counters.data();

    // Locking (per horizon — each has its own iterate) and the shared
    // Lyapunov record: the survival sup sequence is a pure function of the
    // kernel, not of the horizon, so one iterate serves every engaged
    // horizon at its own age (left_h - g).  Stop decisions are therefore
    // bit-identical to each horizon's single-t run.
    const bool locking = options.locking && !options.extract_scheduler;
    bool any_engaged = false;
    for (Horizon& h : horizons) {
      if (locking) {
        h.locked.assign(n, false);
        h.cand.resize(pool.size());
      }
      any_engaged = any_engaged || h.engaged;
    }
    std::vector<std::vector<std::uint64_t>> upd_slots(
        num_horizons, std::vector<std::uint64_t>(pool.size() * std::size_t{8}, 0));
    LyapunovSeries series(options.epsilon / 2.0);
    bool cert_disengaged = false;
    std::vector<double> u;
    std::vector<double> u_next;
    std::vector<WorkerPool::Slot> u_slot;
    if (any_engaged) {
      u.assign(n, 0.0);
      u_next.assign(n, 0.0);
      for (StateId s = 0; s < n; ++s) u[s] = (goal[s] || avoided(s)) ? 0.0 : 1.0;
      u_slot.resize(pool.size());
    }

    std::size_t started = 0;  // prefix of by_k with k >= g
    for (std::uint64_t g = k_max; g >= 1; --g) {
      while (started < num_horizons && by_k[started]->k >= g) ++started;
      active.clear();
      for (std::size_t a = 0; a < started; ++a) {
        if (!by_k[a]->done) active.push_back(by_k[a]);
      }
      if (active.empty()) {
        // Everything in flight terminated early; fast-forward to the next
        // (strictly smaller) horizon start, or stop when none remain.
        if (started == num_horizons) break;
        g = by_k[started]->k + 1;
        continue;
      }
      if (guard != nullptr && guard->poll() != RunStatus::Converged) {
        stopped = true;
        stop_step = g;
        break;
      }
      for (Horizon* h : active) h->weight = h->psi.psi(g);
      Horizon* const* const act = active.data();
      const std::size_t num_active = active.size();
      pool.run(n, [&](unsigned worker, std::size_t begin, std::size_t end) {
        std::uint64_t rows = 0;
        for (std::size_t a = 0; a < num_active; ++a) {
          delta_slot[act[a]->idx][worker].value = 0.0;
        }
        for (std::size_t blk = begin; blk < end; blk += kGuardBlock) {
          if (guard != nullptr && guard->should_abort_sweep()) {
            sweep_aborted.store(true, std::memory_order_relaxed);
            break;
          }
          const std::size_t blk_end = std::min(end, blk + kGuardBlock);
          // Kernel rows for this block stay cache-hot across the horizon
          // loop — the batch streams the kernel once per block, not once
          // per horizon.
          for (std::size_t a = 0; a < num_active; ++a) {
            Horizon& h = *act[a];
            const double w = h.weight;
            const double* q = h.q_next.data();
            double* out = h.q_cur.data();
            std::uint64_t* dec = options.extract_scheduler ? h.decision.data() : nullptr;
            const bool skip_locked = h.locked_count != 0;
            std::vector<StateId>* const my_cand =
                locking && g < h.psi.left() ? &h.cand[worker] : nullptr;
            double local_delta = delta_slot[h.idx][worker].value;
            std::uint64_t h_rows = 0;
            for (StateId s = blk; s < blk_end; ++s) {
              if (skip_locked && h.locked[s]) continue;  // frozen: both buffers agree
              ++h_rows;
              if (goal[s]) {
                out[s] = w + q[s];
                if (dec != nullptr) dec[s] = kNoTransition;
                if (my_cand != nullptr && same_bits(out[s], q[s])) my_cand->push_back(s);
              } else if (avoided(s)) {
                out[s] = 0.0;
                if (dec != nullptr) dec[s] = kNoTransition;
                if (my_cand != nullptr && same_bits(0.0, q[s])) my_cand->push_back(s);
              } else {
                const std::uint64_t first = kernel.state_first[s];
                const std::uint64_t last = kernel.state_first[s + 1];
                double best = first == last ? 0.0 : (maximize ? -1.0 : 2.0);
                std::uint64_t best_t = kNoTransition;
                for (std::uint64_t tr = first; tr < last; ++tr) {
                  const double acc = kernel.transition_value(tr, w, q);
                  if (maximize ? acc > best : acc < best) {
                    best = acc;
                    best_t = tr;
                  }
                }
                // NaN-capturing max, as in the single-horizon engine.
                const double dev = std::fabs(best - q[s]);
                if (!(dev <= local_delta)) local_delta = dev;
                out[s] = best;
                if (dec != nullptr) dec[s] = best_t;
                if (my_cand != nullptr && same_bits(best, q[s]) &&
                    serial_row_closed(kernel, h.locked, s)) {
                  my_cand->push_back(s);
                }
              }
            }
            delta_slot[h.idx][worker].value = local_delta;
            upd_slots[h.idx][worker * std::size_t{8}] += h_rows;
            rows += h_rows;
          }
        }
        if (rows_out != nullptr) rows_out[worker]->add(rows);
      });
      if (guard != nullptr && sweep_aborted.load(std::memory_order_relaxed)) {
        stopped = true;
        stop_step = g;
        break;
      }
      // Advance the shared survival record to the deepest age any engaged
      // horizon checks this step.  Entries are horizon-independent, so the
      // record (and the probe-cap disengage at its tail) replays exactly
      // what each single-t run would compute.
      if (any_engaged && !cert_disengaged && g > 1) {
        std::uint64_t needed = 0;
        for (Horizon* hp : active) {
          const Horizon& h = *hp;
          if (h.engaged && h.cert_ok && g < h.psi.left()) {
            needed = std::max(needed, h.psi.left() - g);
          }
        }
        while (!cert_disengaged && series.size() < needed) {
          series.record(survival_step_serial(kernel, goal, options.avoid, pool, u_slot, u, u_next));
          u.swap(u_next);
          if (series.should_disengage(series.size())) {
            cert_disengaged = true;
            u = std::vector<double>();
            u_next = std::vector<double>();
          }
        }
      }
      for (Horizon* hp : active) {
        Horizon& h = *hp;
        const double delta = WorkerPool::reduce_max(delta_slot[h.idx]);
        if (!std::isfinite(delta)) {
          throw NumericError("timed_reachability: non-finite update at step " +
                             std::to_string(g) + " (NaN/Inf reached the iterate)");
        }
        h.q_cur.swap(h.q_next);
        ++h.executed;
        if (locking && g < h.psi.left()) {
          for (std::vector<StateId>& c : h.cand) {
            for (const StateId s : c) h.locked.set(s);
            h.locked_count += c.size();
            c.clear();
          }
        }
        if (h.record_all) results[h.idx].decisions[g - 1] = h.decision;
        if (options.extract_scheduler && g == 1) results[h.idx].initial_decision = h.decision;
        if (options.early_termination && g > 1 && g - 1 < h.psi.left() &&
            delta <= options.early_termination_delta) {
          if (options.extract_scheduler) results[h.idx].initial_decision = h.decision;
          h.early_fired = true;
          h.early_step = g;
          h.done = true;
        }
        // Same check order as the single-horizon engine: early termination,
        // then exact fixpoint, then certificate.
        if (!h.done && locking && g > 1 && g <= h.psi.left() && delta == 0.0) {
          h.fixpoint = true;
          h.done = true;
        }
        if (!h.done && h.engaged && h.cert_ok && g > 1 && g < h.psi.left()) {
          const std::uint64_t age = h.psi.left() - g;
          if (age > series.size() || series.should_disengage(age)) {
            // The record stopped at the probe cap (or this age is past it):
            // the single-t run disengaged at exactly this point too.
            h.cert_ok = false;
          } else if (series.certifies(delta, age)) {
            h.lyap_fired = true;
            h.lyap_error = series.stop_error(delta, age);
            results[h.idx].k_lyapunov = h.executed;
            h.done = true;
          }
        }
      }
    }

    for (Horizon& h : horizons) {
      TimedReachabilityResult& r = results[h.idx];
      r.iterations_executed = h.executed;
      r.exact_fixpoint = h.fixpoint;
      r.locked_final = h.locked_count;
      for (std::size_t wkr = 0; wkr < pool.size(); ++wkr) {
        r.state_updates += upd_slots[h.idx][wkr * std::size_t{8}];
      }
      if (!h.done && stopped) {
        r.status = guard->status();
        r.residual_bound = partial_residual(h.psi, std::min(stop_step, h.k), h.window_epsilon);
        r.iterate = h.q_next;
      } else if (h.lyap_fired) {
        r.residual_bound = h.window_epsilon + h.lyap_error;
      } else {
        r.residual_bound =
            h.window_epsilon + (h.early_fired ? options.early_termination_delta : 0.0);
      }
      require_finite_values(h.q_next, "timed_reachability");
      r.values = std::move(h.q_next);
      for (StateId s = 0; s < n; ++s) {
        r.values[s] = goal[s] ? 1.0 : clamp01(r.values[s]);
      }
      h.q_cur = std::vector<double>();
    }
  } else {
    std::optional<DenseKernel> own_kernel;
    if (options.dense_kernel == nullptr) own_kernel.emplace(model, goal, options.avoid);
    const DenseKernel& kernel =
        options.dense_kernel != nullptr ? *options.dense_kernel : *own_kernel;
    if (kernel.dense_index.size() != n) {
      throw ModelError("timed_reachability_batch: injected dense kernel does not fit the model");
    }
    const KernelOps& ops = kernel_ops(backend);
    const DenseKernelView view = kernel.view();
    const DenseBridge bridge{kernel, goal};
    const std::uint64_t rows = kernel.num_rows();

    for (Horizon& h : horizons) {
      h.q_next.assign(rows, 0.0);
      h.q_cur.assign(rows, 0.0);
      if (options.extract_scheduler) h.decision.assign(rows, kNoTransition);
    }

    WorkerPool pool = make_worker_pool(options.threads, rows);
    pool_size = pool.size();
    std::vector<std::vector<WorkerPool::Slot>> delta_slot(num_horizons);
    for (auto& slots : delta_slot) slots.resize(pool.size());
    const std::vector<Counter*> row_counters =
        worker_row_counters(options.telemetry, "reachability.rows.worker", pool.size());
    Counter* const* const rows_out = row_counters.empty() ? nullptr : row_counters.data();

    // Locking and shared certificate state, as in the serial batch engine
    // but over dense rows.
    const bool locking = options.locking && !options.extract_scheduler;
    bool any_engaged = false;
    for (Horizon& h : horizons) {
      if (locking) {
        h.locked.assign(rows, false);
        h.cand.resize(pool.size());
      }
      any_engaged = any_engaged || h.engaged;
    }
    std::vector<std::vector<std::uint64_t>> upd_slots(
        num_horizons, std::vector<std::uint64_t>(pool.size() * std::size_t{8}, 0));
    LyapunovSeries series(options.epsilon / 2.0);
    bool cert_disengaged = false;
    std::vector<double> u;
    std::vector<double> u_next;
    std::vector<WorkerPool::Slot> u_slot;
    if (any_engaged) {
      u.assign(rows, 1.0);
      u_next.assign(rows, 0.0);
      u_slot.resize(pool.size());
    }

    std::size_t started = 0;
    for (std::uint64_t g = k_max; g >= 1; --g) {
      while (started < num_horizons && by_k[started]->k >= g) ++started;
      active.clear();
      for (std::size_t a = 0; a < started; ++a) {
        if (!by_k[a]->done) active.push_back(by_k[a]);
      }
      if (active.empty()) {
        if (started == num_horizons) break;
        g = by_k[started]->k + 1;
        continue;
      }
      if (guard != nullptr && guard->poll() != RunStatus::Converged) {
        stopped = true;
        stop_step = g;
        break;
      }
      for (Horizon* h : active) h->weight = h->psi.psi(g) + h->goal_value;  // G_g
      Horizon* const* const act = active.data();
      const std::size_t num_active = active.size();
      pool.run(rows, [&](unsigned worker, std::size_t begin, std::size_t end) {
        std::uint64_t swept = 0;
        for (std::size_t a = 0; a < num_active; ++a) {
          delta_slot[act[a]->idx][worker].value = 0.0;
        }
        for (std::size_t blk = begin; blk < end; blk += kGuardBlock) {
          if (guard != nullptr && guard->should_abort_sweep()) {
            sweep_aborted.store(true, std::memory_order_relaxed);
            break;
          }
          const std::size_t blk_end = std::min(end, blk + kGuardBlock);
          for (std::size_t a = 0; a < num_active; ++a) {
            Horizon& h = *act[a];
            std::uint64_t* const dec = options.extract_scheduler ? h.decision.data() : nullptr;
            const bool lock_sweep_h = locking && g < h.psi.left();
            double d;
            std::uint64_t h_swept = 0;
            if (h.locked_count != 0 || lock_sweep_h) {
              d = relax_dense_block(ops, view, h.weight, maximize, h.q_next.data(),
                                    h.q_cur.data(), dec, blk, blk_end, &h.locked,
                                    lock_sweep_h ? &h.cand[worker] : nullptr, h_swept);
            } else {
              h_swept = blk_end - blk;
              d = ops.relax_rows(view, h.weight, maximize, h.q_next.data(), h.q_cur.data(), dec,
                                 blk, blk_end);
            }
            WorkerPool::Slot& slot = delta_slot[h.idx][worker];
            if (!(d <= slot.value)) slot.value = d;  // NaN-capturing max
            upd_slots[h.idx][worker * std::size_t{8}] += h_swept;
            swept += h_swept;
          }
        }
        if (rows_out != nullptr) rows_out[worker]->add(swept);
      });
      if (guard != nullptr && sweep_aborted.load(std::memory_order_relaxed)) {
        stopped = true;
        stop_step = g;
        break;
      }
      if (any_engaged && !cert_disengaged && g > 1) {
        std::uint64_t needed = 0;
        for (Horizon* hp : active) {
          const Horizon& h = *hp;
          if (h.engaged && h.cert_ok && g < h.psi.left()) {
            needed = std::max(needed, h.psi.left() - g);
          }
        }
        while (!cert_disengaged && series.size() < needed) {
          series.record(survival_step_dense(ops, view, pool, u_slot, u, u_next));
          u.swap(u_next);
          if (series.should_disengage(series.size())) {
            cert_disengaged = true;
            u = std::vector<double>();
            u_next = std::vector<double>();
          }
        }
      }
      for (Horizon* hp : active) {
        Horizon& h = *hp;
        const double delta = WorkerPool::reduce_max(delta_slot[h.idx]);
        if (!std::isfinite(delta)) {
          throw NumericError("timed_reachability: non-finite update at step " +
                             std::to_string(g) + " (NaN/Inf reached the iterate)");
        }
        h.q_cur.swap(h.q_next);
        h.goal_value = h.weight;
        ++h.executed;
        if (locking && g < h.psi.left()) {
          for (std::vector<StateId>& c : h.cand) {
            for (const StateId s : c) h.locked.set(s);
            h.locked_count += c.size();
            c.clear();
          }
        }
        if (h.record_all) results[h.idx].decisions[g - 1] = bridge.expand_decisions(h.decision);
        if (options.extract_scheduler && g == 1) {
          results[h.idx].initial_decision = bridge.expand_decisions(h.decision);
        }
        if (options.early_termination && g > 1 && g - 1 < h.psi.left() &&
            delta <= options.early_termination_delta) {
          if (options.extract_scheduler) {
            results[h.idx].initial_decision = bridge.expand_decisions(h.decision);
          }
          h.early_fired = true;
          h.early_step = g;
          h.done = true;
        }
        if (!h.done && locking && g > 1 && g <= h.psi.left() && delta == 0.0) {
          h.fixpoint = true;
          h.done = true;
        }
        if (!h.done && h.engaged && h.cert_ok && g > 1 && g < h.psi.left()) {
          const std::uint64_t age = h.psi.left() - g;
          if (age > series.size() || series.should_disengage(age)) {
            h.cert_ok = false;
          } else if (series.certifies(delta, age)) {
            h.lyap_fired = true;
            h.lyap_error = series.stop_error(delta, age);
            results[h.idx].k_lyapunov = h.executed;
            h.done = true;
          }
        }
      }
    }

    for (Horizon& h : horizons) {
      TimedReachabilityResult& r = results[h.idx];
      r.iterations_executed = h.executed;
      r.exact_fixpoint = h.fixpoint;
      r.locked_final = h.locked_count;
      for (std::size_t wkr = 0; wkr < pool.size(); ++wkr) {
        r.state_updates += upd_slots[h.idx][wkr * std::size_t{8}];
      }
      if (!h.done && stopped) {
        r.status = guard->status();
        r.residual_bound = partial_residual(h.psi, std::min(stop_step, h.k), h.window_epsilon);
        std::vector<double> q_full(n, 0.0);
        bridge.materialize(h.q_next, h.goal_value, q_full);
        require_finite_values(q_full, "timed_reachability");
        r.iterate = q_full;
        r.values = std::move(q_full);
        for (StateId s = 0; s < n; ++s) {
          r.values[s] = goal[s] ? 1.0 : clamp01(r.values[s]);
        }
      } else {
        r.residual_bound =
            h.lyap_fired
                ? h.window_epsilon + h.lyap_error
                : h.window_epsilon + (h.early_fired ? options.early_termination_delta : 0.0);
        // Finite check on the dense iterate plus the goal scalar covers every
        // value the fused write below composes, at dense-row cost instead of
        // full-state cost.
        require_finite_values(h.q_next, "timed_reachability");
        if (!std::isfinite(h.goal_value)) {
          throw NumericError("timed_reachability: non-finite goal iterate");
        }
        // Fused materialize + clamp.  Every state is goal, avoided or a
        // dense row (DenseKernel's partition), so: fill 1.0 (the clamped
        // goal value — a vectorized store stream, and on goal-heavy models
        // like FTWC that is nearly the whole vector), scatter the clamped
        // dense iterate, then zero the avoided states if a mask exists.
        // Per converged horizon this is the only full-state pass of the
        // batch, which matters when 16 horizons finalize against a dense
        // sweep that touched a few percent of the states.
        r.values.assign(n, 1.0);
        double* const out = r.values.data();
        const std::uint32_t* const dense_state = kernel.dense_state.data();
        const double* const dq = h.q_next.data();
        for (std::uint64_t row = 0; row < rows; ++row) {
          out[dense_state[row]] = clamp01(dq[row]);
        }
        if (!options.avoid.empty()) {
          for (StateId s = 0; s < n; ++s) {
            if (options.avoid[s] && !goal[s]) out[s] = 0.0;
          }
        }
      }
      h.q_next = std::vector<double>();
      h.q_cur = std::vector<double>();
    }
    if (span) span->metric("dense_rows", rows);
  }
  if (span) {
    span->metric("states", n);
    span->metric("transitions", model.num_transitions());
    span->metric("uniform_rate", e);
    span->metric("horizons", num_horizons);
    span->metric("iterations_planned_max", k_max);
    span->metric("threads", pool_size);
    // Per-horizon child spans in input order, emitted after the fused loop
    // (the registry's span stack is coordinating-thread-only, so horizon
    // spans must not interleave with sweeps).
    for (std::size_t j = 0; j < num_horizons; ++j) {
      const Horizon& h = horizons[j];
      Telemetry::Span hspan = options.telemetry->span("reachability_batch.horizon");
      hspan.metric("t", times[j]);
      hspan.metric("lambda", results[j].lambda);
      hspan.metric("poisson_left", h.psi.left());
      hspan.metric("poisson_right", h.k);
      hspan.metric("iterations_planned", h.k);
      hspan.metric("iterations_executed", h.executed);
      hspan.metric("early_termination_step", h.early_step);
      hspan.metric("residual_bound", results[j].residual_bound);
      hspan.metric("truncation.k_fox_glynn", h.fox_glynn_right);
      hspan.metric("truncation.k_effective", h.executed);
      hspan.metric("truncation.k_lyapunov", results[j].k_lyapunov);
      hspan.metric("truncation.locked_final", h.locked_count);
      hspan.metric("truncation.state_updates", results[j].state_updates);
    }
  }
  return results;
}

TimedReachabilityResult evaluate_scheduler(const Ctmdp& model, const BitVector& goal,
                                           double t, const std::vector<std::uint64_t>& choice,
                                           const TimedReachabilityOptions& options) {
  check_inputs(model, goal);
  if (choice.size() != model.num_states()) {
    throw ModelError("evaluate_scheduler: choice vector size mismatch");
  }
  const auto uniform = model.uniform_rate(1e-6);
  if (!uniform) throw UniformityError("evaluate_scheduler: model is not uniform");
  const double e = *uniform;
  const std::size_t n = model.num_states();
  const Backend backend = resolve_backend(options.backend);

  for (StateId s = 0; s < n; ++s) {
    if (goal[s]) continue;
    const auto [first, last] = model.transition_range(s);
    if (first == last) continue;
    if (choice[s] < first || choice[s] >= last) {
      throw ModelError("evaluate_scheduler: choice out of range for state");
    }
  }

  TimedReachabilityResult result;
  result.uniform_rate = e;
  result.lambda = e * t;

  std::optional<Telemetry::Span> span;
  if (options.telemetry != nullptr) span.emplace(options.telemetry->span("evaluate_scheduler"));

  const PoissonWindow psi = PoissonWindow::compute(e * t, options.epsilon);
  const std::uint64_t k = psi.right();
  result.iterations_planned = k;

  RunGuard* const guard = options.guard;
  std::atomic<bool> sweep_aborted{false};
  bool stopped = false;
  bool early_fired = false;
  std::uint64_t early_step = 0;
  std::uint64_t executed = 0;
  unsigned pool_size = 0;

  if (backend == Backend::Serial) {
    const DiscreteKernel kernel(model, goal);

    std::vector<double> q_next(n, 0.0);
    std::vector<double> q_cur(n, 0.0);

    WorkerPool pool = make_worker_pool(options.threads, n);
    pool_size = pool.size();
    std::vector<WorkerPool::Slot> delta_slot(pool.size());
    const std::vector<Counter*> row_counters =
        worker_row_counters(options.telemetry, "evaluate_scheduler.rows.worker", pool.size());
    Counter* const* const rows_out = row_counters.empty() ? nullptr : row_counters.data();

    for (std::uint64_t i = k; i >= 1; --i) {
      if (guard != nullptr && guard->poll() != RunStatus::Converged) {
        stopped = true;
        result.residual_bound = partial_residual(psi, i, options.epsilon);
        break;
      }
      const double w = psi.psi(i);
      pool.run(n, [&](unsigned worker, std::size_t begin, std::size_t end) {
        const double* q = q_next.data();
        double local_delta = 0.0;
        std::uint64_t rows = 0;
        for (std::size_t blk = begin; blk < end; blk += kGuardBlock) {
          if (guard != nullptr && guard->should_abort_sweep()) {
            sweep_aborted.store(true, std::memory_order_relaxed);
            break;
          }
          const std::size_t blk_end = std::min(end, blk + kGuardBlock);
          rows += blk_end - blk;
          for (StateId s = blk; s < blk_end; ++s) {
            if (goal[s]) {
              q_cur[s] = w + q[s];
              continue;
            }
            if (kernel.state_first[s] == kernel.state_first[s + 1]) {
              q_cur[s] = 0.0;
              continue;
            }
            const double acc = kernel.transition_value(choice[s], w, q);
            const double dev = std::fabs(acc - q[s]);
            if (!(dev <= local_delta)) local_delta = dev;  // NaN-capturing max
            q_cur[s] = acc;
          }
        }
        delta_slot[worker].value = local_delta;
        if (rows_out != nullptr) rows_out[worker]->add(rows);
      });
      if (guard != nullptr && sweep_aborted.load(std::memory_order_relaxed)) {
        stopped = true;
        result.residual_bound = partial_residual(psi, i, options.epsilon);
        break;
      }
      const double delta = WorkerPool::reduce_max(delta_slot);
      if (!std::isfinite(delta)) {
        throw NumericError("evaluate_scheduler: non-finite update at step " + std::to_string(i) +
                           " (NaN/Inf reached the iterate)");
      }
      q_cur.swap(q_next);
      ++executed;
      if (guard != nullptr && guard->wants_checkpoint(executed)) {
        guard->checkpoint("evaluate_scheduler", executed, k,
                          partial_residual(psi, i - 1, options.epsilon),
                          std::span<double>(q_next.data(), q_next.size()));
        // Same trust boundary as in timed_reachability: the span is writable
        // by external code, so reject non-finite entries immediately.
        require_finite_values(q_next, "evaluate_scheduler checkpoint");
      }
      // Window-bound-only gate (see timed_reachability): an interior
      // psi == 0 cannot occur by construction, and firing on one would
      // silently skip mass-carrying steps.
      if (options.early_termination && i > 1 && i - 1 < psi.left() &&
          delta <= options.early_termination_delta) {
        early_fired = true;
        early_step = i;
        break;
      }
    }
    result.iterations_executed = executed;
    if (stopped) {
      result.status = guard->status();
      result.iterate = q_next;
    } else {
      result.residual_bound =
          options.epsilon + (early_fired ? options.early_termination_delta : 0.0);
    }
    require_finite_values(q_next, "evaluate_scheduler");
    result.values = std::move(q_next);
  } else {
    // Dense engine: evaluate ignores `avoid` exactly as the serial path
    // does, so the kernel is built without an avoid mask.
    const DenseKernel kernel(model, goal, BitVector{});
    const KernelOps& ops = kernel_ops(backend);
    const DenseKernelView view = kernel.view();
    const DenseBridge bridge{kernel, goal};
    const std::uint64_t rows = kernel.num_rows();

    // Map the per-state choice onto dense transition indices once;
    // transitionless states keep the 0-pinned sentinel.
    std::vector<std::uint64_t> dchoice(rows, kNoTransition);
    for (std::uint64_t r = 0; r < rows; ++r) {
      const StateId s = kernel.dense_state[r];
      const auto [first, last] = model.transition_range(s);
      if (first == last) continue;
      dchoice[r] = kernel.row_first[r] + (choice[s] - first);
    }

    std::vector<double> dq_next(rows, 0.0);
    std::vector<double> dq_cur(rows, 0.0);
    std::vector<double> q_full(n, 0.0);
    double goal_value = 0.0;

    WorkerPool pool = make_worker_pool(options.threads, rows);
    pool_size = pool.size();
    std::vector<WorkerPool::Slot> delta_slot(pool.size());
    const std::vector<Counter*> row_counters =
        worker_row_counters(options.telemetry, "evaluate_scheduler.rows.worker", pool.size());
    Counter* const* const rows_out = row_counters.empty() ? nullptr : row_counters.data();

    for (std::uint64_t i = k; i >= 1; --i) {
      if (guard != nullptr && guard->poll() != RunStatus::Converged) {
        stopped = true;
        result.residual_bound = partial_residual(psi, i, options.epsilon);
        break;
      }
      const double gi = psi.psi(i) + goal_value;
      pool.run(rows, [&](unsigned worker, std::size_t begin, std::size_t end) {
        const double* q = dq_next.data();
        double local_delta = 0.0;
        std::uint64_t swept = 0;
        for (std::size_t blk = begin; blk < end; blk += kGuardBlock) {
          if (guard != nullptr && guard->should_abort_sweep()) {
            sweep_aborted.store(true, std::memory_order_relaxed);
            break;
          }
          const std::size_t blk_end = std::min(end, blk + kGuardBlock);
          swept += blk_end - blk;
          const double d =
              ops.choice_rows(view, gi, q, dchoice.data(), dq_cur.data(), blk, blk_end);
          if (!(d <= local_delta)) local_delta = d;  // NaN-capturing max
        }
        delta_slot[worker].value = local_delta;
        if (rows_out != nullptr) rows_out[worker]->add(swept);
      });
      if (guard != nullptr && sweep_aborted.load(std::memory_order_relaxed)) {
        stopped = true;
        result.residual_bound = partial_residual(psi, i, options.epsilon);
        break;
      }
      const double delta = WorkerPool::reduce_max(delta_slot);
      if (!std::isfinite(delta)) {
        throw NumericError("evaluate_scheduler: non-finite update at step " + std::to_string(i) +
                           " (NaN/Inf reached the iterate)");
      }
      dq_cur.swap(dq_next);
      goal_value = gi;
      ++executed;
      if (guard != nullptr && guard->wants_checkpoint(executed)) {
        bridge.materialize(dq_next, goal_value, q_full);
        guard->checkpoint("evaluate_scheduler", executed, k,
                          partial_residual(psi, i - 1, options.epsilon),
                          std::span<double>(q_full.data(), q_full.size()));
        require_finite_values(q_full, "evaluate_scheduler checkpoint");
        goal_value = bridge.ingest(q_full, dq_next);
      }
      if (options.early_termination && i > 1 && i - 1 < psi.left() &&
          delta <= options.early_termination_delta) {
        early_fired = true;
        early_step = i;
        break;
      }
    }
    result.iterations_executed = executed;
    bridge.materialize(dq_next, goal_value, q_full);
    if (stopped) {
      result.status = guard->status();
      result.iterate = q_full;
    } else {
      result.residual_bound =
          options.epsilon + (early_fired ? options.early_termination_delta : 0.0);
    }
    require_finite_values(q_full, "evaluate_scheduler");
    result.values = std::move(q_full);
    if (span) span->metric("dense_rows", rows);
  }

  for (StateId s = 0; s < n; ++s) {
    result.values[s] = goal[s] ? 1.0 : clamp01(result.values[s]);
  }
  if (span) {
    span->metric("states", n);
    span->metric("transitions", model.num_transitions());
    span->metric("uniform_rate", e);
    span->metric("lambda", result.lambda);
    span->metric("poisson_left", psi.left());
    span->metric("poisson_right", k);
    span->metric("poisson_width", k - psi.left() + 1);
    span->metric("iterations_planned", k);
    span->metric("iterations_executed", executed);
    span->metric("early_termination_step", early_step);
    span->metric("threads", pool_size);
    span->metric("residual_bound", result.residual_bound);
  }
  return result;
}

std::vector<double> step_bounded_reachability(const Ctmdp& model, const BitVector& goal,
                                              std::uint64_t steps, Objective objective,
                                              unsigned threads, RunGuard* guard,
                                              Backend backend_option) {
  check_inputs(model, goal);
  const std::size_t n = model.num_states();
  const bool maximize = objective == Objective::Maximize;
  const Backend backend = resolve_backend(backend_option);

  if (backend == Backend::Serial) {
    const DiscreteKernel kernel(model, goal);

    std::vector<double> v(n, 0.0);
    std::vector<double> next(n, 0.0);
    for (StateId s = 0; s < n; ++s) v[s] = goal[s] ? 1.0 : 0.0;

    WorkerPool pool = make_worker_pool(threads, n);
    for (std::uint64_t step = 0; step < steps; ++step) {
      if (guard != nullptr) guard->check("step_bounded_reachability");
      pool.run(n, [&](unsigned, std::size_t begin, std::size_t end) {
        const double* q = v.data();
        for (StateId s = begin; s < end; ++s) {
          if (goal[s]) {
            next[s] = 1.0;
            continue;
          }
          const std::uint64_t first = kernel.state_first[s];
          const std::uint64_t last = kernel.state_first[s + 1];
          double best = first == last ? 0.0 : (maximize ? -1.0 : 2.0);
          for (std::uint64_t tr = first; tr < last; ++tr) {
            const double acc = kernel.transition_value(tr, 0.0, q);
            best = maximize ? std::max(best, acc) : std::min(best, acc);
          }
          next[s] = best;
        }
      });
      v.swap(next);
    }
    return v;
  }

  // Dense engine: goal states are pinned at 1.0 for every step, so the goal
  // iterate is the constant 1 and the psi weight is 0 — relax with
  // gval = 1.0 reproduces transition_value(tr, 0.0, q) with the goal mass
  // folded.
  const DenseKernel kernel(model, goal, BitVector{});
  const KernelOps& ops = kernel_ops(backend);
  const DenseKernelView view = kernel.view();
  const DenseBridge bridge{kernel, goal};
  const std::uint64_t rows = kernel.num_rows();

  std::vector<double> dq(rows, 0.0);
  std::vector<double> dnext(rows, 0.0);

  WorkerPool pool = make_worker_pool(threads, rows);
  for (std::uint64_t step = 0; step < steps; ++step) {
    if (guard != nullptr) guard->check("step_bounded_reachability");
    pool.run(rows, [&](unsigned, std::size_t begin, std::size_t end) {
      ops.relax_rows(view, 1.0, maximize, dq.data(), dnext.data(), nullptr, begin, end);
    });
    dq.swap(dnext);
  }

  std::vector<double> v(n, 0.0);
  bridge.materialize(dq, 1.0, v);
  return v;
}

}  // namespace unicon
