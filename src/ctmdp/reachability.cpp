#include "ctmdp/reachability.hpp"

#include <algorithm>
#include <cmath>

#include "support/errors.hpp"
#include "support/fox_glynn.hpp"
#include "support/numerics.hpp"

namespace unicon {

namespace {

/// Precomputed discrete branching structure shared by the solvers:
/// probability entries Pr_R(s, s') = R(s') / E_R and per-transition goal
/// mass Pr_R(s, B).
struct DiscreteModel {
  std::vector<double> prob;     // parallel to Ctmdp entry storage
  std::vector<double> goal_pr;  // per transition

  DiscreteModel(const Ctmdp& model, const std::vector<bool>& goal) {
    prob.reserve(model.num_transitions());
    goal_pr.assign(model.num_transitions(), 0.0);
    for (std::uint64_t t = 0; t < model.num_transitions(); ++t) {
      const double e = model.exit_rate(t);
      double g = 0.0;
      for (const SparseEntry& entry : model.rates(t)) {
        const double p = entry.value / e;
        prob.push_back(p);
        if (goal[entry.col]) g += p;
      }
      goal_pr[t] = g;
    }
  }
};

void check_inputs(const Ctmdp& model, const std::vector<bool>& goal) {
  if (goal.size() != model.num_states()) {
    throw ModelError("timed_reachability: goal vector size mismatch");
  }
}

}  // namespace

TimedReachabilityResult timed_reachability(const Ctmdp& model, const std::vector<bool>& goal,
                                           double t, const TimedReachabilityOptions& options) {
  check_inputs(model, goal);
  if (t < 0.0) throw ModelError("timed_reachability: negative time bound");
  const auto uniform = model.uniform_rate(1e-6);
  if (!uniform) {
    throw UniformityError(
        "timed_reachability: model is not uniform; construct it uniformly or uniformize first");
  }
  const double e = *uniform;
  const std::size_t n = model.num_states();
  const bool maximize = options.objective == Objective::Maximize;

  TimedReachabilityResult result;
  result.uniform_rate = e;
  result.lambda = e * t;

  const PoissonWindow psi = PoissonWindow::compute(e * t, options.epsilon);
  const std::uint64_t k = psi.right();
  result.iterations_planned = k;

  if (!options.avoid.empty() && options.avoid.size() != n) {
    throw ModelError("timed_reachability: avoid vector size mismatch");
  }
  auto avoided = [&](StateId s) {
    return !options.avoid.empty() && options.avoid[s] && !goal[s];
  };

  const DiscreteModel discrete(model, goal);

  const bool record_all_decisions =
      options.extract_scheduler &&
      k * static_cast<std::uint64_t>(n) <= options.max_decision_entries;
  if (options.extract_scheduler) {
    result.initial_decision.assign(n, kNoTransition);
    if (record_all_decisions) result.decisions.resize(k);
  }

  // q_next = q_{i+1}, q_cur = q_i.
  std::vector<double> q_next(n, 0.0);
  std::vector<double> q_cur(n, 0.0);
  std::vector<std::uint64_t> decision(options.extract_scheduler ? n : 0, kNoTransition);

  std::uint64_t executed = 0;
  for (std::uint64_t i = k; i >= 1; --i) {
    const double w = psi.psi(i);
    double delta = 0.0;
    for (StateId s = 0; s < n; ++s) {
      if (goal[s]) {
        q_cur[s] = w + q_next[s];
        if (options.extract_scheduler) decision[s] = kNoTransition;
      } else if (avoided(s)) {
        q_cur[s] = 0.0;
        if (options.extract_scheduler) decision[s] = kNoTransition;
      } else {
        const auto [first, last] = model.transition_range(s);
        double best = first == last ? 0.0 : (maximize ? -1.0 : 2.0);
        std::uint64_t best_t = kNoTransition;
        for (std::uint64_t tr = first; tr < last; ++tr) {
          double acc = w * discrete.goal_pr[tr];
          const auto rates = model.rates(tr);
          const std::size_t base = static_cast<std::size_t>(
              rates.data() - model.rates(0).data());
          for (std::size_t j = 0; j < rates.size(); ++j) {
            acc += discrete.prob[base + j] * q_next[rates[j].col];
          }
          if (maximize ? acc > best : acc < best) {
            best = acc;
            best_t = tr;
          }
        }
        delta = std::max(delta, std::fabs(best - q_next[s]));
        q_cur[s] = best;
        if (options.extract_scheduler) decision[s] = best_t;
      }
    }
    q_cur.swap(q_next);  // q_next now holds q_i for the next round
    ++executed;

    if (record_all_decisions) result.decisions[i - 1] = decision;
    if (options.extract_scheduler && i == 1) result.initial_decision = decision;

    if (options.early_termination && i > 1) {
      // Below the Poisson window no further psi mass arrives; once the
      // vector stops moving the remaining iterations are no-ops up to
      // early_termination_delta.
      if (i - 1 < psi.left() || psi.psi(i - 1) == 0.0) {
        if (delta <= options.early_termination_delta) {
          if (options.extract_scheduler) result.initial_decision = decision;
          break;
        }
      }
    }
  }
  result.iterations_executed = executed;

  result.values = std::move(q_next);
  for (StateId s = 0; s < n; ++s) {
    result.values[s] = goal[s] ? 1.0 : clamp01(result.values[s]);
  }
  return result;
}

TimedReachabilityResult evaluate_scheduler(const Ctmdp& model, const std::vector<bool>& goal,
                                           double t, const std::vector<std::uint64_t>& choice,
                                           const TimedReachabilityOptions& options) {
  check_inputs(model, goal);
  if (choice.size() != model.num_states()) {
    throw ModelError("evaluate_scheduler: choice vector size mismatch");
  }
  const auto uniform = model.uniform_rate(1e-6);
  if (!uniform) throw UniformityError("evaluate_scheduler: model is not uniform");
  const double e = *uniform;
  const std::size_t n = model.num_states();

  for (StateId s = 0; s < n; ++s) {
    if (goal[s]) continue;
    const auto [first, last] = model.transition_range(s);
    if (first == last) continue;
    if (choice[s] < first || choice[s] >= last) {
      throw ModelError("evaluate_scheduler: choice out of range for state");
    }
  }

  TimedReachabilityResult result;
  result.uniform_rate = e;
  result.lambda = e * t;
  const PoissonWindow psi = PoissonWindow::compute(e * t, options.epsilon);
  const std::uint64_t k = psi.right();
  result.iterations_planned = k;

  const DiscreteModel discrete(model, goal);

  std::vector<double> q_next(n, 0.0);
  std::vector<double> q_cur(n, 0.0);
  std::uint64_t executed = 0;
  for (std::uint64_t i = k; i >= 1; --i) {
    const double w = psi.psi(i);
    double delta = 0.0;
    for (StateId s = 0; s < n; ++s) {
      if (goal[s]) {
        q_cur[s] = w + q_next[s];
        continue;
      }
      const auto [first, last] = model.transition_range(s);
      if (first == last) {
        q_cur[s] = 0.0;
        continue;
      }
      const std::uint64_t tr = choice[s];
      double acc = w * discrete.goal_pr[tr];
      const auto rates = model.rates(tr);
      const std::size_t base = static_cast<std::size_t>(rates.data() - model.rates(0).data());
      for (std::size_t j = 0; j < rates.size(); ++j) {
        acc += discrete.prob[base + j] * q_next[rates[j].col];
      }
      delta = std::max(delta, std::fabs(acc - q_next[s]));
      q_cur[s] = acc;
    }
    q_cur.swap(q_next);
    ++executed;
    if (options.early_termination && i > 1 && (i - 1 < psi.left() || psi.psi(i - 1) == 0.0) &&
        delta <= options.early_termination_delta) {
      break;
    }
  }
  result.iterations_executed = executed;
  result.values = std::move(q_next);
  for (StateId s = 0; s < n; ++s) {
    result.values[s] = goal[s] ? 1.0 : clamp01(result.values[s]);
  }
  return result;
}

std::vector<double> step_bounded_reachability(const Ctmdp& model, const std::vector<bool>& goal,
                                              std::uint64_t steps, Objective objective) {
  check_inputs(model, goal);
  const std::size_t n = model.num_states();
  const bool maximize = objective == Objective::Maximize;
  const DiscreteModel discrete(model, goal);

  std::vector<double> v(n, 0.0);
  std::vector<double> next(n, 0.0);
  for (StateId s = 0; s < n; ++s) v[s] = goal[s] ? 1.0 : 0.0;

  for (std::uint64_t step = 0; step < steps; ++step) {
    for (StateId s = 0; s < n; ++s) {
      if (goal[s]) {
        next[s] = 1.0;
        continue;
      }
      const auto [first, last] = model.transition_range(s);
      double best = first == last ? 0.0 : (maximize ? -1.0 : 2.0);
      for (std::uint64_t tr = first; tr < last; ++tr) {
        double acc = 0.0;
        const auto rates = model.rates(tr);
        const std::size_t base = static_cast<std::size_t>(rates.data() - model.rates(0).data());
        for (std::size_t j = 0; j < rates.size(); ++j) {
          acc += discrete.prob[base + j] * v[rates[j].col];
        }
        best = maximize ? std::max(best, acc) : std::min(best, acc);
      }
      next[s] = best;
    }
    v.swap(next);
  }
  return v;
}

}  // namespace unicon
