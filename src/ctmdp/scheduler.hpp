// Scheduler objects for CTMDPs.
//
// Algorithm 1 constructs an optimal *step-dependent* scheduler D_0 (the
// transition to pick at each countdown step i); stationary schedulers pick
// per state only.  This module makes both first-class: they can be
// evaluated, simulated, and — for stationary ones — used to build the
// induced CTMC.
#pragma once

#include <cstdint>
#include <vector>

#include "ctmc/ctmc.hpp"
#include "ctmdp/ctmdp.hpp"
#include "ctmdp/reachability.hpp"

namespace unicon {

/// A stationary (memoryless, time-abstract) scheduler: one transition
/// index per state (kNoTransition for states without transitions).
class StationaryScheduler {
 public:
  StationaryScheduler() = default;
  explicit StationaryScheduler(std::vector<std::uint64_t> choice) : choice_(std::move(choice)) {}

  /// The scheduler that always picks the first transition of each state.
  static StationaryScheduler first_transition(const Ctmdp& model);

  /// Extracts the decisions Algorithm 1 makes at step i = 1 (the choice
  /// relevant at time 0) as a stationary scheduler; states without a
  /// recorded decision fall back to their first transition.
  static StationaryScheduler from_initial_decisions(const Ctmdp& model,
                                                    const TimedReachabilityResult& result);

  std::uint64_t choice(StateId s) const { return choice_[s]; }
  std::vector<std::uint64_t>& choices() { return choice_; }
  const std::vector<std::uint64_t>& choices() const { return choice_; }

  /// Validates against @p model (every state with transitions has a choice
  /// within its range); throws ModelError otherwise.
  void validate(const Ctmdp& model) const;

  /// The CTMC induced by following this scheduler forever.
  Ctmc induced_ctmc(const Ctmdp& model) const;

 private:
  std::vector<std::uint64_t> choice_;
};

/// The step-dependent scheduler of Algorithm 1: decisions[j] holds the
/// per-state choices at countdown step i = j + 1.  Requires
/// extract_scheduler with a full decision table.
class CountdownScheduler {
 public:
  explicit CountdownScheduler(std::vector<std::vector<std::uint64_t>> decisions)
      : decisions_(std::move(decisions)) {}

  static CountdownScheduler from_result(const TimedReachabilityResult& result);

  std::uint64_t num_steps() const { return decisions_.size(); }

  /// Choice at countdown step i (1-based, i <= num_steps()); steps beyond
  /// the table fall back to the last recorded row.
  std::uint64_t choice(std::uint64_t i, StateId s) const;

 private:
  std::vector<std::vector<std::uint64_t>> decisions_;
};

/// Policy evaluation of a step-dependent scheduler: Algorithm 1's backward
/// iteration with the per-step transition fixed by @p scheduler instead of
/// optimized.  The arithmetic mirrors the serial solver exactly — per state
/// and step it evaluates the same kernel.transition_value() expression the
/// optimizing sweep used to score that transition — so feeding back a
/// decision table extracted by a serial timed_reachability solve reproduces
/// its values *bit-identically* (the round-trip the scheduler-artifact
/// tests rely on).  A kNoTransition choice pins the state to 0 (matching
/// avoided and transitionless states).  Honours options.epsilon only;
/// throws UniformityError on non-uniform models, ModelError on out-of-range
/// choices.
TimedReachabilityResult evaluate_countdown_scheduler(const Ctmdp& model, const BitVector& goal,
                                                     double t,
                                                     const CountdownScheduler& scheduler,
                                                     const TimedReachabilityOptions& options = {});

}  // namespace unicon
