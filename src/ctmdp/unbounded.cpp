#include "ctmdp/unbounded.hpp"

#include <algorithm>
#include <cmath>
#include <limits>

#include "support/errors.hpp"

namespace unicon {

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

void check_inputs(const Ctmdp& model, const BitVector& goal) {
  if (goal.size() != model.num_states()) {
    throw ModelError("unbounded analysis: goal vector size mismatch");
  }
}

/// One optimizing sweep of the embedded jump chain; returns the sup-norm
/// change over finite entries.
double sweep(const Ctmdp& model, const BitVector& goal, const BitVector& frozen,
             bool maximize, double step_cost, std::vector<double>& x) {
  double delta = 0.0;
  const std::size_t n = model.num_states();
  for (StateId s = 0; s < n; ++s) {
    if (goal[s] || frozen[s]) continue;
    const auto [first, last] = model.transition_range(s);
    if (first == last) continue;  // frozen covers these; defensive
    double best = maximize ? -kInf : kInf;
    for (std::uint64_t tr = first; tr < last; ++tr) {
      const double e = model.exit_rate(tr);
      double acc = step_cost;
      for (const SparseEntry& entry : model.rates(tr)) {
        acc += (entry.value / e) * x[entry.col];
      }
      best = maximize ? std::max(best, acc) : std::min(best, acc);
    }
    if (std::isfinite(best) && std::isfinite(x[s])) {
      delta = std::max(delta, std::fabs(best - x[s]));
    } else if (std::isfinite(best) != std::isfinite(x[s])) {
      delta = std::max(delta, 1.0);
    }
    x[s] = best;
  }
  return delta;
}

}  // namespace

BitVector zero_states(const Ctmdp& model, const BitVector& goal,
                              Objective objective) {
  check_inputs(model, goal);
  const std::size_t n = model.num_states();

  if (objective == Objective::Maximize) {
    // Backward reachability: states with some path into B have positive
    // maximal probability; the rest are zero.
    BitVector can_reach = goal;
    bool changed = true;
    while (changed) {
      changed = false;
      for (StateId s = 0; s < n; ++s) {
        if (can_reach[s]) continue;
        const auto [first, last] = model.transition_range(s);
        for (std::uint64_t tr = first; tr < last && !can_reach[s]; ++tr) {
          for (const SparseEntry& e : model.rates(tr)) {
            if (can_reach[e.col]) {
              can_reach[s] = true;
              changed = true;
              break;
            }
          }
        }
      }
    }
    BitVector zero(n);
    for (StateId s = 0; s < n; ++s) zero[s] = !can_reach[s];
    return zero;
  }

  // Minimize: greatest fixpoint of "can stay outside B forever": a state
  // avoids B if it is not in B and either has no transitions or some
  // transition whose entire support avoids B.
  BitVector avoid(n);
  for (StateId s = 0; s < n; ++s) avoid[s] = !goal[s];
  bool changed = true;
  while (changed) {
    changed = false;
    for (StateId s = 0; s < n; ++s) {
      if (!avoid[s]) continue;
      const auto [first, last] = model.transition_range(s);
      if (first == last) continue;  // absorbing non-goal: avoids trivially
      bool ok = false;
      for (std::uint64_t tr = first; tr < last && !ok; ++tr) {
        bool support_avoids = true;
        for (const SparseEntry& e : model.rates(tr)) {
          if (!avoid[e.col]) {
            support_avoids = false;
            break;
          }
        }
        ok = support_avoids;
      }
      if (!ok) {
        avoid[s] = false;
        changed = true;
      }
    }
  }
  return avoid;
}

BitVector almost_sure_states(const Ctmdp& model, const BitVector& goal,
                                     Objective objective) {
  check_inputs(model, goal);
  const std::size_t n = model.num_states();

  if (objective == Objective::Minimize) {
    // Prob1A: P_min(s) = 1 iff no scheduler can, with positive probability
    // and without touching B, enter the avoid-forever region (from which B
    // is dodged surely).  Positive probability of such an excursion only
    // needs a B-free path in the transition graph.
    const BitVector bad = zero_states(model, goal, Objective::Minimize);
    BitVector can_escape = bad;  // B-free path into `bad`
    bool changed = true;
    while (changed) {
      changed = false;
      for (StateId s = 0; s < n; ++s) {
        if (can_escape[s] || goal[s]) continue;
        const auto [first, last] = model.transition_range(s);
        for (std::uint64_t tr = first; tr < last && !can_escape[s]; ++tr) {
          for (const SparseEntry& e : model.rates(tr)) {
            if (can_escape[e.col] && !goal[e.col]) {
              can_escape[s] = true;
              changed = true;
              break;
            }
          }
        }
      }
    }
    BitVector result(n);
    for (StateId s = 0; s < n; ++s) result[s] = goal[s] || !can_escape[s];
    return result;
  }

  // Prob1E (de Alfaro): greatest fixpoint over candidate sets U.  Inside
  // the loop a least fixpoint R collects the states that can reach B while
  // staying in U with some transition whose entire support remains in U.
  BitVector u(n, true);
  for (;;) {
    BitVector r = goal;
    bool grew = true;
    while (grew) {
      grew = false;
      for (StateId s = 0; s < n; ++s) {
        if (r[s] || !u[s]) continue;
        const auto [first, last] = model.transition_range(s);
        for (std::uint64_t tr = first; tr < last && !r[s]; ++tr) {
          bool stays = true;
          bool touches = false;
          for (const SparseEntry& e : model.rates(tr)) {
            stays = stays && u[e.col];
            touches = touches || r[e.col];
          }
          if (stays && touches) {
            r[s] = true;
            grew = true;
          }
        }
      }
    }
    if (r == u) return u;
    u = std::move(r);
  }
}

UnboundedResult unbounded_reachability(const Ctmdp& model, const BitVector& goal,
                                       const UnboundedOptions& options) {
  check_inputs(model, goal);
  const std::size_t n = model.num_states();
  if (!options.avoid.empty() && options.avoid.size() != n) {
    throw ModelError("unbounded_reachability: avoid vector size mismatch");
  }
  const bool maximize = options.objective == Objective::Maximize;
  const BitVector zero = zero_states(model, goal, options.objective);

  UnboundedResult result;
  result.values.assign(n, 0.0);
  for (StateId s = 0; s < n; ++s) {
    if (goal[s]) result.values[s] = 1.0;
  }

  // Freeze goal, zero and avoided states; also freeze transitionless
  // states (their value is the indicator already set above).
  BitVector frozen(n, false);
  for (StateId s = 0; s < n; ++s) {
    const auto [first, last] = model.transition_range(s);
    frozen[s] = zero[s] || first == last ||
                (!options.avoid.empty() && options.avoid[s] && !goal[s]);
  }

  for (std::uint64_t i = 0; i < options.max_iterations; ++i) {
    const double delta = sweep(model, goal, frozen, maximize, 0.0, result.values);
    ++result.iterations;
    if (delta <= options.tolerance) break;
  }
  for (double& v : result.values) v = std::min(1.0, std::max(0.0, v));
  return result;
}

ExpectedTimeResult expected_reachability_time(const Ctmdp& model, const BitVector& goal,
                                              const UnboundedOptions& options) {
  check_inputs(model, goal);
  const auto uniform = model.uniform_rate(1e-6);
  if (!uniform || *uniform <= 0.0) {
    throw UniformityError("expected_reachability_time: requires a uniform CTMDP with E > 0");
  }
  const double e = *uniform;
  const std::size_t n = model.num_states();
  const bool maximize = options.objective == Objective::Maximize;

  // Finiteness region, decided graph-theoretically: sup E[time] is finite
  // iff even the *minimizing* reachability scheduler hits B almost surely
  // (Prob1A); inf E[time] is finite iff some scheduler does (Prob1E).
  const BitVector almost_sure = almost_sure_states(
      model, goal, maximize ? Objective::Minimize : Objective::Maximize);

  ExpectedTimeResult result;
  result.values.assign(n, 0.0);
  BitVector frozen(n, false);
  for (StateId s = 0; s < n; ++s) {
    if (goal[s]) continue;
    const auto [first, last] = model.transition_range(s);
    if (!almost_sure[s] || first == last) {
      result.values[s] = kInf;
      frozen[s] = true;
    }
  }

  // Value iteration on expected jump counts (step cost 1), then scale by
  // the uniform sojourn mean 1/E.
  for (std::uint64_t i = 0; i < options.max_iterations; ++i) {
    const double delta = sweep(model, goal, frozen, maximize, 1.0, result.values);
    ++result.iterations;
    if (delta <= options.tolerance) {
      result.converged = true;
      break;
    }
  }
  for (double& v : result.values) {
    if (std::isfinite(v)) v /= e;
  }
  return result;
}

}  // namespace unicon
