// Timed reachability in uniform CTMDPs — Algorithm 1 of the paper,
// originally due to Baier, Haverkort, Hermanns and Katoen [2].
//
// Computes, for every state s, the supremum (or infimum) over all
// randomized time-abstract history-dependent schedulers of the probability
// to reach a goal set B within t time units:
//
//     sup_D Pr_D(s, reach B within t).
//
// The greedy backward value iteration runs k = k(epsilon, E, t) steps where
// k is the right truncation point of the Poisson(E t) distribution at
// precision epsilon: q_{k+1} := 0 and for i = k..1
//
//     q_i(s) = max_{(s,a,R)} [ psi(i) Pr_R(s,B) + sum_{s'} Pr_R(s,s') q_{i+1}(s') ]
//     q_i(s) = psi(i) + q_{i+1}(s)                                for s in B.
//
// The variant of Def. 1 (multiple transitions per action) only means the
// maximum ranges over all emanating transitions instead of all actions.
#pragma once

#include <cstdint>
#include <vector>

#include "ctmdp/ctmdp.hpp"
#include "support/backend.hpp"
#include "support/bit_vector.hpp"
#include "support/lyapunov_bound.hpp"
#include "support/run_guard.hpp"

namespace unicon {

class Telemetry;
struct DiscreteKernel;
struct DenseKernel;

enum class Objective : std::uint8_t { Maximize, Minimize };

struct TimedReachabilityResult;

struct TimedReachabilityOptions {
  /// Truncation precision (paper: 0.000001).
  double epsilon = 1e-6;
  Objective objective = Objective::Maximize;
  /// Truncation-bound provider (DESIGN.md Sec. 14).  `FoxGlynn` keeps the
  /// historical pure Poisson-window schedule.  `Lyapunov` splits epsilon:
  /// the window is computed at epsilon/2 and the survival certificate may
  /// stop the below-window iteration once the forfeited error is provably
  /// under the other epsilon/2.  `Auto` engages the certificate only for
  /// long horizons (window left point > kLyapunovAutoEngageLeft), so short
  /// queries stay bit-identical to FoxGlynn.  The certificate never fires
  /// when extract_scheduler is set (the decision table must stay faithful).
  Truncation truncation = Truncation::Auto;
  /// On-the-fly convergence locking: states whose recomputed value is
  /// bitwise unchanged and whose successors are all locked are skipped in
  /// subsequent sweeps.  Locked values are *exact* fixpoints of their row,
  /// so reported values are bit-identical with locking on or off (the
  /// backend tests prove it); only the amount of work per sweep — and,
  /// via the exact-fixpoint break, iterations_executed — changes.
  /// Disabled internally when extract_scheduler is set.
  bool locking = true;
  /// Optional "until"-style constraint: states flagged here must not be
  /// visited before the goal (their value is pinned to 0, the absorbing
  /// treatment of phi U<=t psi model checking).  Goal membership wins when
  /// a state is flagged in both.  Must be empty or num_states() long.
  BitVector avoid;
  /// Compute backend for the sweep.  Auto resolves via UNICON_BACKEND
  /// (else Serial).  Serial is the historical scalar engine, bit-identical
  /// to the pre-backend solver; Simd runs the dense goal-folded kernel
  /// (AVX2 inner loop when available, portable striped lanes otherwise)
  /// and differs from Serial by FP reassociation only — see DESIGN.md
  /// Sec. 10 for the exact contract.  Each backend is bit-identical to
  /// itself across all thread counts.
  Backend backend = Backend::Auto;
  /// Stop iterating once the Poisson window is exhausted (no further psi
  /// mass below the current step) and the value vector has converged to
  /// within early_termination_delta in sup norm.  The faithful iteration
  /// count k is still reported in iterations_planned.
  bool early_termination = false;
  double early_termination_delta = 1e-9;
  /// Record the optimal decision (transition index) per state for the first
  /// step (i = 1) — e.g. which component the optimal FTWC policy repairs
  /// first.  Also records full per-step decisions if the table stays below
  /// max_decision_entries.
  bool extract_scheduler = false;
  std::uint64_t max_decision_entries = 1u << 24;
  /// Worker threads for the per-iteration state sweep.  0 picks
  /// hardware_concurrency, 1 is the serial path (no threads spawned).  The
  /// sweep partitions states into contiguous per-worker slices, so results
  /// — including the early-termination delta, a max-reduction over
  /// disjoint slices — are bit-identical for every thread count.
  unsigned threads = 0;
  /// Optional execution control.  Polled once per value-iteration step on
  /// the coordinating thread and every ~2k states inside parallel sweeps,
  /// so a budget stop takes effect within one barrier.  On a stop the
  /// solver returns a *partial* result: `status` names the cause and
  /// `residual_bound` soundly bounds |reported - true| per state (see
  /// partial_residual in reachability.cpp for the derivation).  Null =
  /// unguarded; the unguarded path is bit-identical to pre-guard behaviour.
  RunGuard* guard = nullptr;
  /// Optional resume from a prior *partial* result of the same solve (same
  /// model, goal, t, epsilon; validated via iterations_planned and the
  /// iterate size).  Iteration continues from the saved raw iterate; an
  /// uninterrupted and a resumed run produce bit-identical values.
  const TimedReachabilityResult* resume = nullptr;
  /// Optional observability: a "reachability" (or "evaluate_scheduler")
  /// span with states/transitions, the Poisson window (left/right/width),
  /// iterations planned/executed and the early-termination step, plus
  /// per-worker row counters ("reachability.rows.worker<i>") batched once
  /// per sweep.  A live registry only observes — results stay bit-identical
  /// with telemetry on or off.
  Telemetry* telemetry = nullptr;
  /// Optional pre-built kernels (the analysis-server cache amortizes kernel
  /// construction across queries).  A supplied kernel MUST have been built
  /// from exactly this (model, goal) — and, for the dense kernel, this
  /// avoid mask — or the solve is silently wrong; the solver only validates
  /// the cheap size invariants.  The kernel a backend does not use is
  /// ignored.  Null = build internally (bit-identical either way).
  const DiscreteKernel* discrete_kernel = nullptr;
  const DenseKernel* dense_kernel = nullptr;
};

struct TimedReachabilityResult {
  /// q(s): optimal probability to reach B within t from s (1 for s in B).
  std::vector<double> values;
  /// k — the faithful number of value-iteration steps (Table 1 column).
  std::uint64_t iterations_planned = 0;
  /// Steps actually executed (== planned unless early termination fired).
  std::uint64_t iterations_executed = 0;
  /// Uniform rate E of the model.
  double uniform_rate = 0.0;
  /// Poisson parameter E * t.
  double lambda = 0.0;
  /// Optimal transition index per state at step i = 1 (empty unless
  /// extract_scheduler; kNoTransition for goal/transitionless states).
  std::vector<std::uint64_t> initial_decision;
  /// Full step-dependent decision table, decisions[j] = choices at step
  /// i = j+1 (empty if disabled or above max_decision_entries).
  std::vector<std::vector<std::uint64_t>> decisions;
  /// Converged, or the RunGuard budget that stopped the solve early.
  RunStatus status = RunStatus::Converged;
  /// Sound per-state bound on |values[s] - true value|: epsilon (plus the
  /// early-termination delta when that fired) for a Converged run; for a
  /// partial run, the Poisson-weight displacement bound of the unfinished
  /// backward iteration (partial_residual in reachability.cpp).
  double residual_bound = 0.0;
  /// Resolved truncation provider (never Auto).
  Truncation truncation = Truncation::FoxGlynn;
  /// Step count at which the Lyapunov certificate stopped the iteration
  /// (the effective truncation k_lyapunov); 0 when it never fired.
  std::uint64_t k_lyapunov = 0;
  /// True when the iteration reached an exact fixpoint below the Poisson
  /// window (sweep delta exactly 0) and the remaining sweeps were skipped
  /// as provable no-ops.
  bool exact_fixpoint = false;
  /// Row relaxations actually performed (sum over executed sweeps of the
  /// states not skipped by convergence locking).  state_updates /
  /// num_states is the "effective sweeps" metric of the truncation
  /// ablation.
  std::uint64_t state_updates = 0;
  /// States locked by on-the-fly convergence detection at the end.
  std::uint64_t locked_final = 0;
  /// Raw (unclamped) iterate at the stop point, for checkpoint/resume.
  /// Populated only when status != Converged.
  std::vector<double> iterate;
};

inline constexpr std::uint64_t kNoTransition = static_cast<std::uint64_t>(-1);

/// Runs Algorithm 1.  Requires a uniform CTMDP (throws UniformityError
/// otherwise) and goal.size() == num_states().
TimedReachabilityResult timed_reachability(const Ctmdp& model, const BitVector& goal,
                                           double t, const TimedReachabilityOptions& options = {});

/// Multi-horizon Algorithm 1: one fused solve answering every time bound in
/// @p times against the same (model, goal, options).  Results are returned
/// in input order and each is *bit-identical* — values, residual bounds,
/// iteration counts, scheduler tables, early-termination behaviour — to an
/// independent `timed_reachability(model, goal, times[j], options)` call,
/// by construction: every horizon keeps its own iterate and Poisson window
/// and performs exactly the per-state operation sequence of its single-t
/// run.  The horizons are fused bottom-aligned (all end at step 1
/// together), so one pass over the shared kernel relaxes every active
/// horizon per block — the kernel is built and streamed once per step
/// instead of once per horizon, which is where the batch speedup comes
/// from (DESIGN.md Sec. 11).
///
/// Guard stops produce per-horizon partial results: horizons that already
/// finished stay Converged, the rest carry their own sound residual bound
/// and resumable iterate.  options.resume is rejected (resume a horizon via
/// a single-t call); guard checkpoints are not published from batch solves
/// (there is no single iterate to publish).
std::vector<TimedReachabilityResult> timed_reachability_batch(
    const Ctmdp& model, const BitVector& goal, const std::vector<double>& times,
    const TimedReachabilityOptions& options = {});

/// Policy evaluation: the same backward iteration but following the fixed
/// stationary scheduler @p choice (a transition index per state; entries for
/// goal or transitionless states are ignored).  The induced process is a
/// uniform CTMC, so this equals CTMC timed reachability and serves as a
/// cross-check in the tests.  Honours options.guard (partial results as in
/// timed_reachability) but not options.resume.
TimedReachabilityResult evaluate_scheduler(const Ctmdp& model, const BitVector& goal,
                                           double t, const std::vector<std::uint64_t>& choice,
                                           const TimedReachabilityOptions& options = {});

/// Discrete step-bounded reachability: optimal probability to reach B
/// within at most @p steps jumps (no timing).  Used by unit tests as an
/// independently checkable special case.  @p threads as in
/// TimedReachabilityOptions (0 = hardware_concurrency, 1 = serial).  The
/// step count carries no Poisson mass, so there is no partial-result
/// story: a guard stop raises BudgetError instead.  @p backend as in
/// TimedReachabilityOptions.
std::vector<double> step_bounded_reachability(const Ctmdp& model, const BitVector& goal,
                                              std::uint64_t steps,
                                              Objective objective = Objective::Maximize,
                                              unsigned threads = 0, RunGuard* guard = nullptr,
                                              Backend backend = Backend::Auto);

}  // namespace unicon
