// Time-unbounded analyses for CTMDPs: eventual reachability probabilities
// and expected reachability times.
//
// These complement the paper's time-bounded Algorithm 1 with the classical
// MDP machinery:
//  * qualitative precomputation (the states reaching B with probability 0
//    under every / some scheduler) via graph fixpoints,
//  * value iteration for sup/inf Pr(eventually B) on the embedded DTMDP,
//  * expected time to B — in a *uniform* CTMDP every jump takes 1/E
//    expected time regardless of the transition chosen, so the expected
//    hitting time is the expected jump count divided by E.
#pragma once

#include <cstdint>
#include <vector>

#include "ctmdp/ctmdp.hpp"
#include "ctmdp/reachability.hpp"
#include "support/bit_vector.hpp"

namespace unicon {

struct UnboundedOptions {
  Objective objective = Objective::Maximize;
  /// Value-iteration stopping threshold (sup-norm).
  double tolerance = 1e-12;
  std::uint64_t max_iterations = 1u << 22;
  /// Optional until-style constraint: states flagged here (and not in the
  /// goal) are losing — their value is pinned to 0.  Empty or
  /// num_states() long.
  BitVector avoid;
};

struct UnboundedResult {
  std::vector<double> values;
  std::uint64_t iterations = 0;
};

/// States from which B is reached with probability zero under the
/// objective: for Maximize, no scheduler reaches B at all (no path into B);
/// for Minimize, some scheduler avoids B forever.
BitVector zero_states(const Ctmdp& model, const BitVector& goal,
                              Objective objective);

/// Qualitative almost-sure reachability:
///  - Maximize: Prob1E — SOME scheduler reaches B with probability 1
///    (classical nested fixpoint).
///  - Minimize: Prob1A — EVERY scheduler reaches B with probability 1
///    (equivalently: no B-free path into the avoid-forever region).
BitVector almost_sure_states(const Ctmdp& model, const BitVector& goal,
                                     Objective objective);

/// sup/inf over schedulers of Pr(eventually reach B), by value iteration
/// over the embedded jump chain with qualitative precomputation.
UnboundedResult unbounded_reachability(const Ctmdp& model, const BitVector& goal,
                                       const UnboundedOptions& options = {});

struct ExpectedTimeResult {
  /// Expected time to reach B from each state; infinity when B is not
  /// reached almost surely under the optimizing scheduler (decided
  /// graph-theoretically via almost_sure_states, not numerically).
  std::vector<double> values;
  std::uint64_t iterations = 0;
  /// Value iteration reached the tolerance.  Expected-step iteration
  /// converges at the time scale of the expected value itself; for
  /// stiff models raise max_iterations or accept the (monotone
  /// lower-bound) truncation this flag reports.
  bool converged = false;
};

/// sup/inf expected time until B in a *uniform* CTMDP (throws
/// UniformityError otherwise).  Maximize gives the worst-case expected
/// hitting time; states that can avoid B (Maximize) or cannot reach it
/// (either) get infinity.
ExpectedTimeResult expected_reachability_time(const Ctmdp& model, const BitVector& goal,
                                              const UnboundedOptions& options = {});

}  // namespace unicon
