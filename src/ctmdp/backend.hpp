// Solver-facing side of the backend interface (see support/backend.hpp for
// the Backend enum, KernelOps table and array views — re-exported here).
//
// Two kernel representations feed the Algorithm-1 sweep:
//
//  - DiscreteKernel: the flat kernel over *all* states, one entry per rate
//    entry of the model.  The serial backend iterates it exactly as the
//    historical solver did — bit-identical results, including the strictly
//    sequential accumulation order.
//
//  - DenseKernel: the kernel restricted to the states the sweep actually
//    relaxes.  Goal states all carry the same iterate value G_i (the goal
//    update q_i = psi(i) + q_{i+1} starts from 0 everywhere in B, so
//    G_i = sum_{m=i..k} psi(m) uniformly — uniformity by construction once
//    more), which lets the mass into B fold into a per-transition scalar
//    goal_pr instead of per-entry gathers; avoided states are pinned to
//    exactly +0.0, so entries into them are dropped outright.  On
//    goal-heavy models (the FTWC fleet at N=64 is ~94% goal states) this
//    shrinks the gathered iterate by an order of magnitude and makes it
//    cache-resident — that, not the vector ALU, is where most of the simd
//    backend's speedup comes from.
#pragma once

#include <cstdint>
#include <vector>

#include "ctmdp/ctmdp.hpp"
#include "support/backend.hpp"
#include "support/bit_vector.hpp"

namespace unicon {

/// Flat, precomputed discrete kernel of the uniform CTMDP: the branching
/// probabilities Pr_R(s, s') = R(s') / E_R fused with their target columns,
/// per-transition entry ranges, per-state transition ranges, and the
/// per-transition goal mass Pr_R(s, B).  Built once per solve; the sweeps
/// then run on plain index arithmetic instead of re-deriving span offsets
/// from the model's entry storage each iteration (which also dereferenced
/// `rates(0)` as a base pointer — out of range on a model without
/// transitions).
struct DiscreteKernel {
  std::vector<std::uint64_t> state_first;  // per state: first transition index
  std::vector<std::uint64_t> entry_first;  // per transition: first prob/col index
  std::vector<double> prob;                // fused branching probabilities
  std::vector<std::uint32_t> col;          // fused target states
  std::vector<double> goal_pr;             // per transition

  DiscreteKernel(const Ctmdp& model, const BitVector& goal);

  /// psi-weighted one-step value of transition @p tr against values @p q.
  double transition_value(std::uint64_t tr, double w, const double* q) const {
    double acc = w * goal_pr[tr];
    const std::uint64_t last = entry_first[tr + 1];
    for (std::uint64_t j = entry_first[tr]; j < last; ++j) acc += prob[j] * q[col[j]];
    return acc;
  }
};

/// Dense (non-goal, non-avoided rows only) kernel for the simd backends;
/// owns the arrays a DenseKernelView points into.  Column indices address
/// dense rows, so the iterate the kernels gather from has num_rows()
/// entries, not num_states().
struct DenseKernel {
  /// dense_index value for states that have no dense row (goal/avoided).
  static constexpr std::uint32_t kNotDense = static_cast<std::uint32_t>(-1);

  std::vector<std::uint32_t> dense_index;       // [num_states] -> row or kNotDense
  std::vector<std::uint32_t> dense_state;       // [num_rows] -> state
  std::vector<std::uint64_t> row_first;         // [num_rows + 1] -> dense transition
  std::vector<std::uint64_t> orig_trans_first;  // [num_rows] -> model transition
  std::vector<std::uint64_t> entry_first;       // [num_trans + 1] -> dense entry
  std::vector<double> goal_pr;                  // [num_trans] mass into goal
  std::vector<double> prob;                     // [num_entries]
  std::vector<std::uint32_t> col;               // [num_entries] -> dense row

  /// @p avoid may be empty (no avoid constraint) or num_states() long;
  /// a state flagged in both goal and avoid counts as goal, matching the
  /// solver's precedence.  Validates rates exactly as DiscreteKernel.
  DenseKernel(const Ctmdp& model, const BitVector& goal, const BitVector& avoid);

  std::uint64_t num_rows() const { return dense_state.size(); }

  DenseKernelView view() const {
    DenseKernelView v;
    v.num_rows = num_rows();
    v.row_first = row_first.data();
    v.entry_first = entry_first.data();
    v.goal_pr = goal_pr.data();
    v.prob = prob.data();
    v.col = col.data();
    v.orig_trans_first = orig_trans_first.data();
    return v;
  }
};

}  // namespace unicon
