#include "ftwc/parameters.hpp"

#include "support/errors.hpp"

namespace unicon::ftwc {

const char* tag(Component c) {
  switch (c) {
    case Component::WsLeft: return "wsL";
    case Component::WsRight: return "wsR";
    case Component::SwLeft: return "swL";
    case Component::SwRight: return "swR";
    case Component::Backbone: return "bb";
  }
  throw ModelError("ftwc: bad component");
}

double Parameters::fail_rate(Component c) const {
  switch (c) {
    case Component::WsLeft:
    case Component::WsRight: return ws_fail;
    case Component::SwLeft:
    case Component::SwRight: return sw_fail;
    case Component::Backbone: return bb_fail;
  }
  throw ModelError("ftwc: bad component");
}

double Parameters::repair_rate(Component c) const {
  switch (c) {
    case Component::WsLeft:
    case Component::WsRight: return ws_repair;
    case Component::SwLeft:
    case Component::SwRight: return sw_repair;
    case Component::Backbone: return bb_repair;
  }
  throw ModelError("ftwc: bad component");
}

bool quality(const Config& c, unsigned n, unsigned k) {
  const unsigned left_ok = n - c.failed_left;
  const unsigned right_ok = n - c.failed_right;
  if (c.sw_left_up && left_ok >= k) return true;
  if (c.sw_right_up && right_ok >= k) return true;
  return c.sw_left_up && c.sw_right_up && c.backbone_up && left_ok + right_ok >= k;
}

bool premium(const Config& c, unsigned n) { return quality(c, n, n); }

}  // namespace unicon::ftwc
