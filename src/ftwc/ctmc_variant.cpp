#include "ftwc/ctmc_variant.hpp"

#include <deque>
#include <unordered_map>

#include "support/errors.hpp"

namespace unicon::ftwc {

namespace {

struct SemState {
  Config config;
  bool busy = false;
  Component repairing = Component::WsLeft;
};

std::uint64_t encode(const SemState& s) {
  std::uint64_t k = s.config.failed_left;
  k = (k << 16) | s.config.failed_right;
  k = (k << 1) | (s.config.sw_left_up ? 1 : 0);
  k = (k << 1) | (s.config.sw_right_up ? 1 : 0);
  k = (k << 1) | (s.config.backbone_up ? 1 : 0);
  k = (k << 1) | (s.busy ? 1 : 0);
  k = (k << 3) | static_cast<std::uint64_t>(s.repairing);
  return k;
}

bool class_failed(const Config& c, Component comp) {
  switch (comp) {
    case Component::WsLeft: return c.failed_left > 0;
    case Component::WsRight: return c.failed_right > 0;
    case Component::SwLeft: return !c.sw_left_up;
    case Component::SwRight: return !c.sw_right_up;
    case Component::Backbone: return !c.backbone_up;
  }
  return false;
}

void repair_one(Config& c, Component comp) {
  switch (comp) {
    case Component::WsLeft: --c.failed_left; break;
    case Component::WsRight: --c.failed_right; break;
    case Component::SwLeft: c.sw_left_up = true; break;
    case Component::SwRight: c.sw_right_up = true; break;
    case Component::Backbone: c.backbone_up = true; break;
  }
}

}  // namespace

CtmcResult build_ctmc_variant(const Parameters& params) {
  const unsigned n = params.n;
  if (n == 0) throw ModelError("ftwc: n must be positive");
  if (!(params.decision_rate > 0.0)) throw ModelError("ftwc: decision rate must be positive");

  CtmcBuilder builder;
  CtmcResult result;
  std::unordered_map<std::uint64_t, StateId> ids;
  std::deque<SemState> frontier;

  auto intern_state = [&](const SemState& s) -> StateId {
    const std::uint64_t key = encode(s);
    auto it = ids.find(key);
    if (it != ids.end()) return it->second;
    const StateId id = builder.add_state();
    ids.emplace(key, id);
    result.configs.push_back(s.config);
    result.goal.push_back(!premium(s.config, n));
    frontier.push_back(s);
    return id;
  };

  const SemState initial{};
  builder.set_initial(intern_state(initial));

  while (!frontier.empty()) {
    const SemState s = frontier.front();
    frontier.pop_front();
    const StateId from = ids.at(encode(s));

    // Failures of operational components (these race with everything,
    // including the decision transitions — the source of the modeling flaw
    // discussed in Sec. 5).
    if (s.config.failed_left < n) {
      SemState next = s;
      ++next.config.failed_left;
      builder.add_transition(from, (n - s.config.failed_left) * params.ws_fail,
                             intern_state(next));
    }
    if (s.config.failed_right < n) {
      SemState next = s;
      ++next.config.failed_right;
      builder.add_transition(from, (n - s.config.failed_right) * params.ws_fail,
                             intern_state(next));
    }
    if (s.config.sw_left_up) {
      SemState next = s;
      next.config.sw_left_up = false;
      builder.add_transition(from, params.sw_fail, intern_state(next));
    }
    if (s.config.sw_right_up) {
      SemState next = s;
      next.config.sw_right_up = false;
      builder.add_transition(from, params.sw_fail, intern_state(next));
    }
    if (s.config.backbone_up) {
      SemState next = s;
      next.config.backbone_up = false;
      builder.add_transition(from, params.bb_fail, intern_state(next));
    }

    if (s.busy) {
      // Repair completion frees the repair unit immediately.
      SemState next = s;
      repair_one(next.config, s.repairing);
      next.busy = false;
      builder.add_transition(from, params.repair_rate(s.repairing), intern_state(next));
    } else {
      // Probabilistic repair-unit assignment: a race of rate-Gamma
      // transitions, one per failed component class.
      for (int i = 0; i < kNumComponents; ++i) {
        const auto c = static_cast<Component>(i);
        if (!class_failed(s.config, c)) continue;
        SemState next = s;
        next.busy = true;
        next.repairing = c;
        builder.add_transition(from, params.decision_rate, intern_state(next));
      }
    }
  }

  result.ctmc = builder.build();
  return result;
}

}  // namespace unicon::ftwc
